// Datascience: the paper's Dask study (Section VII-B) as a library user
// would run it — a distributed cuPy-style transpose-sum across workers
// communicating through the compression-enabled MPI runtime, swept over
// worker counts with and without ZFP-OPT.
//
//	go run ./examples/datascience
package main

import (
	"fmt"
	"log"
	"os"

	"mpicomp/internal/cli"
	"mpicomp/internal/core"
	"mpicomp/internal/dask"
	"mpicomp/internal/hw"
	"mpicomp/internal/mpi"
)

func main() {
	matrix := dask.Matrix{Dim: 8192, ChunkDim: 1024} // 256 MB array, 4 MB chunks
	fmt.Printf("y = x + x.T over a %dx%d float32 array (%d chunks of %s) on %s\n\n",
		matrix.Dim, matrix.Dim, matrix.Chunks()*matrix.Chunks(),
		cli.FormatBytes(matrix.ChunkBytes()), hw.RI2().Name)

	t := cli.NewTable("Workers", "Baseline (ms)", "ZFP-OPT r8 (ms)", "Speedup", "Agg GB/s (ZFP)", "Max err")
	for _, workers := range []int{2, 4, 8} {
		run := func(cfg core.Config) dask.Result {
			w, err := mpi.NewWorld(mpi.Options{Cluster: hw.RI2(), Nodes: workers, PPN: 1, Engine: cfg})
			if err != nil {
				log.Fatal(err)
			}
			res, err := dask.TransposeSum(w, matrix)
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		base := run(core.Config{})
		comp := run(core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 8})
		t.Row(workers,
			fmt.Sprintf("%.2f", base.ExecTime.Milliseconds()),
			fmt.Sprintf("%.2f", comp.ExecTime.Milliseconds()),
			fmt.Sprintf("%.2fx", float64(base.ExecTime)/float64(comp.ExecTime)),
			fmt.Sprintf("%.1f", comp.ThroughputGBps),
			fmt.Sprintf("%.2g", comp.MaxErr))
	}
	t.Write(os.Stdout)
	fmt.Println("\nZFP is lossy: Max err shows the largest deviation of y from the")
	fmt.Println("exact result — bounded by the fixed rate, as the paper discusses.")
}
