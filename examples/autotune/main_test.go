package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpicomp/internal/tune"
)

// TestRunPersistsAndNamesTable asserts the example builds (this test
// compiles it), writes a parseable tuning table to the requested path,
// and names that path in its output.
func TestRunPersistsAndNamesTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "autotune_table.json")
	var out bytes.Buffer
	if err := run(&out, path); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), path) {
		t.Errorf("output does not name the persisted table path %s:\n%s", path, out.String())
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("table not written: %v", err)
	}
	if _, err := tune.ParseTable(blob); err != nil {
		t.Errorf("persisted table does not parse: %v", err)
	}
}
