// Autotune: the dynamic-selection extension (the paper's future work
// made real), now driven by the first-class internal/tune package. A
// seeded deterministic tuner watches live allreduce timings on a world,
// explores the candidate schedules (ring / recursive doubling /
// Rabenseifner), converges on the fastest per message size, and
// persists a versioned tuning table. A second tuner warm-started from
// that table answers immediately: no compressibility probe, no
// re-exploration.
//
//	go run ./examples/autotune [-table autotune_table.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"mpicomp/internal/cli"
	"mpicomp/internal/core"
	"mpicomp/internal/hw"
	"mpicomp/internal/mpi"
	"mpicomp/internal/omb"
	"mpicomp/internal/tune"
)

const (
	nodes = 8
	ppn   = 1
	seed  = 7
)

// epoch runs one measured allreduce, then folds the engine counters and
// the epoch's observations into the tuner at the world-synchronous
// point — the same loop ombrun drives.
func epoch(w *mpi.World, tn *tune.Tuner, bytes int) error {
	if _, err := omb.AllreduceLatency(w, bytes, 1, 2, nil); err != nil {
		return err
	}
	var c tune.Counters
	for r := 0; r < w.Size(); r++ {
		e := w.Rank(r).Engine
		c.Compressions += int64(e.Compressions)
		c.Bypasses += int64(e.Bypasses)
		c.PoolFallbacks += int64(e.PoolFallbacks)
		c.CacheHits += int64(e.CacheHits)
		c.CacheMisses += int64(e.CacheMisses)
		c.PipelinedChunks += int64(e.PipelinedChunks)
	}
	tn.NoteCounters(c)
	tn.Advance()
	return nil
}

func main() {
	tablePath := flag.String("table", "autotune_table.json", "where to persist the tuning table")
	flag.Parse()
	if err := run(os.Stdout, *tablePath); err != nil {
		log.Fatal(err)
	}
}

// run drives the demo and writes the tuning table to tablePath. Split
// from main so the example's test can assert on the output.
func run(out io.Writer, tablePath string) error {
	fmt.Fprintln(out, "Online algorithm autotuning: explore, converge, persist, warm-start")
	fmt.Fprintf(out, "(%dx%d Longhorn, MPC-OPT, 128K chunks, seed %d)\n\n", nodes, ppn, seed)

	cfg := core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, PipelineChunkBytes: 128 << 10}
	tn := tune.NewTuner(tune.Options{Seed: seed, Cluster: hw.Longhorn()})
	w, err := mpi.NewWorld(mpi.Options{Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn, Engine: cfg, Tuner: tn})
	if err != nil {
		return err
	}

	sizes := []int{32 << 10, 4 << 20}
	t := cli.NewTable("Size", "Epoch", "Pick", "Predicted")
	for _, bytes := range sizes {
		p := mpi.TunePoint{Bytes: bytes, Ranks: nodes * ppn, Nodes: nodes, PPN: ppn}
		for e := 0; e < 5; e++ {
			if err := epoch(w, tn, bytes); err != nil {
				return err
			}
			pick := tn.PickAllreduce(p)
			t.Row(fmt.Sprintf("%d KB", bytes>>10), fmt.Sprintf("%d", e+1),
				pick.String(), fmt.Sprintf("%d us", tn.PredictNanos(pick, p)/1000))
		}
	}
	t.Write(out)
	fmt.Fprintln(out)
	fmt.Fprintln(out, tn.StatsLine())

	blob, err := tn.Snapshot().Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(tablePath, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "tuning table written to %s\n\n", tablePath)

	// Warm start: a fresh tuner loaded from the persisted table knows
	// every key already — no probe, no exploration, same picks.
	tab, err := tune.ParseTable(blob)
	if err != nil {
		return err
	}
	warm := tune.NewTuner(tune.Options{Seed: seed, Cluster: hw.Longhorn(), Table: tab})
	for _, bytes := range sizes {
		p := mpi.TunePoint{Bytes: bytes, Ranks: nodes * ppn, Nodes: nodes, PPN: ppn}
		fmt.Fprintf(out, "warm start at %4d KB: pick=%s reprobe=%v\n",
			bytes>>10, warm.PickAllreduce(p), warm.NeedProbe(p))
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "Small messages converge on recursive doubling (log2 P rounds),")
	fmt.Fprintln(out, "large ones on a bandwidth-optimal schedule; the persisted table")
	fmt.Fprintln(out, "makes the next run skip straight to the answer.")
	return nil
}
