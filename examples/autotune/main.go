// Autotune: the dynamic-selection extension (the paper's future work made
// real). One engine configuration, two interconnects: the cost model of
// Section II-A decides per message whether compression pays, so the same
// binary compresses over InfiniBand EDR but bypasses over NVLink —
// reproducing the Figure 9(a)-vs-9(c) dichotomy automatically.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"os"

	"mpicomp/internal/cli"
	"mpicomp/internal/core"
	"mpicomp/internal/datasets"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/mpi"
	"mpicomp/internal/simtime"
)

// exchange sends an 8 MB compressible message between ranks 0 and 1 of a
// freshly built world and reports the latency plus engine decisions.
func exchange(nodes, ppn int, cfg core.Config) (simtime.Duration, int, int) {
	world, err := mpi.NewWorld(mpi.Options{Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn, Engine: cfg})
	if err != nil {
		log.Fatal(err)
	}
	values := datasets.Dummy(2 << 20)
	times, err := world.Run(func(r *mpi.Rank) error {
		buf := &gpusim.Buffer{Data: core.FloatsToBytes(nil, values), Loc: gpusim.Device, Dev: r.Dev}
		if r.ID() == 0 {
			return r.Send(1, 0, buf)
		}
		if r.ID() == 1 {
			return r.Recv(0, 0, buf)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	e := world.Rank(0).Engine
	return simtime.Duration(mpi.MaxTime(times)), e.Compressions, e.Bypasses
}

func main() {
	fmt.Println("Dynamic compression selection: same engine, different links")
	fmt.Println("(8 MB dummy-data message, MPC-OPT, Longhorn)")
	fmt.Println()

	dynamic := core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, Dynamic: true}
	static := core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}
	baseline := core.Config{}

	t := cli.NewTable("Path", "Engine", "Latency", "Compressed?", "Decision")
	for _, route := range []struct {
		name       string
		nodes, ppn int
	}{
		{"inter-node (IB EDR 12.5 GB/s)", 2, 1},
		{"intra-node (NVLink 75 GB/s)", 1, 2},
	} {
		for _, eng := range []struct {
			name string
			cfg  core.Config
		}{
			{"baseline", baseline},
			{"static MPC-OPT", static},
			{"dynamic MPC-OPT", dynamic},
		} {
			lat, comps, bypasses := exchange(route.nodes, route.ppn, eng.cfg)
			did := "no"
			if comps > 0 {
				did = "yes"
			}
			decision := "-"
			if eng.cfg.Dynamic {
				if comps > 0 {
					decision = "model predicted a win"
				} else if bypasses > 0 {
					decision = "model predicted a loss -> bypass"
				}
			}
			t.Row(route.name, eng.name, lat, did, decision)
		}
	}
	t.Write(os.Stdout)

	fmt.Println()
	fmt.Println("The dynamic engine matches the best static choice on both paths:")
	fmt.Println("it compresses over the slow network and stays out of NVLink's way.")
}
