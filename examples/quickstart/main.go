// Quickstart: send a large GPU-resident float32 message between two ranks
// with on-the-fly MPC compression and verify the transfer is lossless.
//
// This is the minimal end-to-end use of the library: build a world on a
// cluster model, configure the compression engine, and exchange device
// buffers with Send/Recv. The rendezvous protocol compresses on the fly,
// piggybacks the header on the RTS packet, and decompresses on arrival.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpicomp/internal/core"
	"mpicomp/internal/datasets"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/mpi"
	"mpicomp/internal/simtime"
)

func main() {
	// Two nodes of TACC Longhorn (V100 GPUs, InfiniBand EDR), one rank
	// per node, MPC-OPT compression.
	world, err := mpi.NewWorld(mpi.Options{
		Cluster: hw.Longhorn(),
		Nodes:   2,
		PPN:     1,
		Engine: core.Config{
			Mode:      core.ModeOpt,
			Algorithm: core.AlgoMPC,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 8 MB of smooth scientific data (the compressible case).
	values := datasets.Smooth(2<<20, 42, 1e-4)

	times, err := world.Run(func(r *mpi.Rank) error {
		switch r.ID() {
		case 0:
			// Device-resident send buffer, as a CUDA-aware MPI
			// application would pass to MPI_Send.
			buf := &gpusim.Buffer{
				Data: core.FloatsToBytes(nil, values),
				Loc:  gpusim.Device,
				Dev:  r.Dev,
			}
			return r.Send(1, 0, buf)

		case 1:
			buf := &gpusim.Buffer{
				Data: make([]byte, len(values)*4),
				Loc:  gpusim.Device,
				Dev:  r.Dev,
			}
			if err := r.Recv(0, 0, buf); err != nil {
				return err
			}
			got := core.BytesToFloats(buf.Data)
			for i := range values {
				if got[i] != values[i] {
					return fmt.Errorf("value %d corrupted: %v != %v", i, got[i], values[i])
				}
			}
			fmt.Println("transfer verified bit-exact (MPC is lossless)")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	sender := world.Rank(0).Engine
	fmt.Printf("message:            %d bytes\n", len(values)*4)
	fmt.Printf("compression ratio:  %.2fx\n", sender.RatioAchieved())
	fmt.Printf("simulated latency:  %v\n", simtime.Duration(mpi.MaxTime(times)))
	fmt.Printf("engine activity:    %d compressions, %d decompressions\n",
		sender.Compressions, world.Rank(1).Engine.Decompressions)
	fmt.Printf("send-side phases:   %s\n", sender.Stats.String())
}
