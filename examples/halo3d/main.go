// Halo3d: the AWP-ODC motif — a 3-D wave simulation whose ranks exchange
// multi-megabyte halo planes every step, run three ways (no compression,
// MPC-OPT, ZFP-OPT) to show the application-level effect the paper reports
// in Figures 12/13: higher sustained GPU computing FLOPS purely from
// cheaper communication.
//
// The halo travels as typed sends of Subarray3D boundary views — the
// gather rides the compression kernel's read pass — so no staging
// buffers and no pack/unpack kernels exist. A final staged-path run
// (HaloPacked) shows what that fusion saves.
//
//	go run ./examples/halo3d
package main

import (
	"fmt"
	"log"
	"os"

	"mpicomp/internal/awpodc"
	"mpicomp/internal/cli"
	"mpicomp/internal/core"
	"mpicomp/internal/hw"
	"mpicomp/internal/mpi"
	"mpicomp/internal/simtime"
)

func main() {
	const (
		nodes = 4
		ppn   = 4 // 16 GPUs in a 4x4 process grid
	)
	app := awpodc.Config{NX: 256, NY: 256, NZ: 96, Fields: 9, Steps: 3}
	px, py := awpodc.ProcessGrid(nodes * ppn)
	fmt.Printf("AWP-ODC proxy: %d GPUs (%dx%d grid) on %s, halo %s per face\n\n",
		nodes*ppn, px, py, hw.Lassen().Name, cli.FormatBytes(app.HaloBytesX()))

	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"baseline (no compression)", core.Config{}},
		{"MPC-OPT static (lossless)", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}},
		{"MPC-OPT dynamic (lossless)", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, Dynamic: true}},
		{"ZFP-OPT rate 8 (lossy)", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 8}},
	}

	t := cli.NewTable("Configuration", "TFLOPS", "ms/step", "comm/step", "ratio", "checksum")
	var baseline awpodc.Result
	var zfpComm simtime.Duration
	for i, c := range configs {
		world, err := mpi.NewWorld(mpi.Options{Cluster: hw.Lassen(), Nodes: nodes, PPN: ppn, Engine: c.cfg})
		if err != nil {
			log.Fatal(err)
		}
		res, err := awpodc.Run(world, app)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = res
		}
		if i == len(configs)-1 {
			zfpComm = res.CommTime
		}
		t.Row(c.name,
			fmt.Sprintf("%.2f", res.TFlops),
			fmt.Sprintf("%.2f", res.TimePerStep.Milliseconds()),
			res.CommTime.String(),
			fmt.Sprintf("%.1f", res.Ratio),
			fmt.Sprintf("%.6g", res.Checksum))
	}
	t.Write(os.Stdout)

	fmt.Println()
	fmt.Println("Notes: the MPC rows' checksums equal the baseline's — lossless")
	fmt.Println("compression cannot change the physics; ZFP's differs slightly")
	fmt.Printf("(rate-8 quantization, baseline checksum %.6g).\n", baseline.Checksum)
	fmt.Println("At this halo size MPC's kernels cost more than they save on both")
	fmt.Println("NVLink and EDR edges, so static MPC-OPT loses (the paper's Fig. 9c")
	fmt.Println("effect) while the dynamic engine detects this per message, bypasses,")
	fmt.Println("and matches the baseline. ZFP-OPT's cheaper kernels win outright —")
	fmt.Println("the paper's conclusion that ZFP-OPT helps almost everywhere.")

	// The staged arm: identical physics and wire bytes, but every face
	// is packed into a staging buffer (one kernel per wavefield
	// component) before sending and unpacked after receiving.
	stagedApp := app
	stagedApp.HaloPacked = true
	world, err := mpi.NewWorld(mpi.Options{Cluster: hw.Lassen(), Nodes: nodes, PPN: ppn,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 8}})
	if err != nil {
		log.Fatal(err)
	}
	staged, err := awpodc.Run(world, stagedApp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("Typed halo (Subarray3D views) vs staged pack+send, ZFP-OPT rate 8:\n")
	fmt.Printf("  staging copies eliminated: %s (%s per step)\n",
		cli.FormatBytes(int(staged.StagingBytes)), cli.FormatBytes(int(staged.StagingBytes)/app.Steps))
	fmt.Printf("  comm/step: staged %v -> typed %v\n", staged.CommTime, zfpComm)
}
