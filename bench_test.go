// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment on the
// simulated cluster and reports the simulated metrics via b.ReportMetric:
//
//	sim-us        simulated latency in microseconds
//	sim-gbps      simulated bandwidth in GB/s
//	ratio         achieved compression ratio
//	tflops        aggregate GPU computing TFLOPS (AWP-ODC)
//	speedup       improvement factor over the baseline
//
// Wall-clock ns/op mostly measures the host running the codecs and the
// discrete-event simulation; the paper's results correspond to the
// sim-* metrics. Message sizes are scaled down from the paper's 32 MB
// maxima to keep the suite fast; cmd/figures runs the full sweeps.
package mpicomp_test

import (
	"testing"

	"mpicomp/internal/awpodc"
	"mpicomp/internal/core"
	"mpicomp/internal/dask"
	"mpicomp/internal/datasets"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/mpc"
	"mpicomp/internal/mpi"
	"mpicomp/internal/omb"
	"mpicomp/internal/simtime"
	"mpicomp/internal/zfp"
)

func mustWorld(b *testing.B, c hw.Cluster, nodes, ppn int, cfg core.Config) *mpi.World {
	b.Helper()
	w, err := mpi.NewWorld(mpi.Options{Cluster: c, Nodes: nodes, PPN: ppn, Engine: cfg})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkTable3 regenerates Table III: MPC and ZFP compression of the
// eight datasets, reporting the measured compression ratio per dataset.
func BenchmarkTable3(b *testing.B) {
	const n = 1 << 20 // 4 MB per dataset
	for _, d := range datasets.All() {
		d := d
		b.Run("MPC/"+d.Name, func(b *testing.B) {
			vals := d.Values(n)
			b.SetBytes(int64(n * 4))
			var ratio float64
			for i := 0; i < b.N; i++ {
				comp, err := mpc.CompressFloat32(nil, vals, d.Dim)
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(n*4) / float64(len(comp))
			}
			b.ReportMetric(ratio, "ratio")
			b.ReportMetric(d.PaperCRMPC, "paper-ratio")
		})
		b.Run("ZFP16/"+d.Name, func(b *testing.B) {
			vals := d.Values(n)
			b.SetBytes(int64(n * 4))
			for i := 0; i < b.N; i++ {
				if _, err := zfp.Compress(nil, vals, 16); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(zfp.Ratio(16), "ratio")
			b.ReportMetric(d.PaperCRZFP, "paper-ratio")
		})
	}
}

// BenchmarkFig2aBandwidth regenerates Figure 2(a): inter-node D-D
// bandwidth at 8 MB on Longhorn's EDR network.
func BenchmarkFig2aBandwidth(b *testing.B) {
	var bw float64
	for i := 0; i < b.N; i++ {
		w := mustWorld(b, hw.Longhorn(), 2, 1, core.Config{})
		res, err := omb.Bandwidth(w, []int{8 << 20}, 1, 2, 16, 0)
		if err != nil {
			b.Fatal(err)
		}
		bw = res[0].BandwidthGBps
	}
	b.ReportMetric(bw, "sim-gbps")
	b.ReportMetric(hw.Longhorn().InterNode.BandwidthGBps, "peak-gbps")
}

// BenchmarkFig2bAWPBreakdown regenerates Figure 2(b): the AWP-ODC
// compute/communication split at 16 GPUs.
func BenchmarkFig2bAWPBreakdown(b *testing.B) {
	var commShare float64
	for i := 0; i < b.N; i++ {
		w := mustWorld(b, hw.Longhorn(), 4, 4, core.Config{})
		res, err := awpodc.Run(w, awpodc.Config{NX: 160, NY: 160, NZ: 64, Steps: 2})
		if err != nil {
			b.Fatal(err)
		}
		commShare = float64(res.CommTime) / float64(res.CommTime+res.ComputeTime)
	}
	b.ReportMetric(100*commShare, "comm-pct")
}

// latencyAt measures one osu_latency point.
func latencyAt(b *testing.B, c hw.Cluster, nodes, ppn int, cfg core.Config, size int) (simtime.Duration, float64) {
	w := mustWorld(b, c, nodes, ppn, cfg)
	res, err := omb.Latency(w, []int{size}, 1, 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	return res[0].Latency, res[0].Ratio
}

// BenchmarkFig5NaiveIntegration regenerates Figure 5: the naive
// integration's latency penalty at 1 MB against the baseline.
func BenchmarkFig5NaiveIntegration(b *testing.B) {
	const size = 1 << 20
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"Baseline", core.Config{}},
		{"NaiveMPC", core.Config{Mode: core.ModeNaive, Algorithm: core.AlgoMPC}},
		{"NaiveZFP16", core.Config{Mode: core.ModeNaive, Algorithm: core.AlgoZFP, ZFPRate: 16}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var lat simtime.Duration
			for i := 0; i < b.N; i++ {
				lat, _ = latencyAt(b, hw.Longhorn(), 2, 1, c.cfg, size)
			}
			b.ReportMetric(lat.Microseconds(), "sim-us")
		})
	}
}

// breakdownBench measures one scheme's latency and per-phase split at 4 MB
// (Figures 6 and 8).
func breakdownBench(b *testing.B, c hw.Cluster, cfg core.Config, phase core.Phase) {
	const size = 4 << 20
	var lat simtime.Duration
	var phaseShare float64
	for i := 0; i < b.N; i++ {
		w := mustWorld(b, c, 2, 1, cfg)
		res, err := omb.Latency(w, []int{size}, 1, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
		lat = res[0].Latency
		var sum core.Breakdown
		for r := 0; r < w.Size(); r++ {
			sum.AddAll(&w.Rank(r).Engine.Stats)
		}
		per := sum.Scale(3) // warmup + iters
		phaseShare = per.Get(phase).Microseconds()
	}
	b.ReportMetric(lat.Microseconds(), "sim-us")
	b.ReportMetric(phaseShare, "phase-us")
}

// BenchmarkFig6MPCBreakdown regenerates Figure 6: memory allocation
// dominates the naive MPC path and vanishes under MPC-OPT.
func BenchmarkFig6MPCBreakdown(b *testing.B) {
	b.Run("Naive/MemAlloc", func(b *testing.B) {
		breakdownBench(b, hw.Longhorn(), core.Config{Mode: core.ModeNaive, Algorithm: core.AlgoMPC}, core.PhaseMemAlloc)
	})
	b.Run("Opt/MemAlloc", func(b *testing.B) {
		breakdownBench(b, hw.Longhorn(), core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}, core.PhaseMemAlloc)
	})
	b.Run("Opt/Combine", func(b *testing.B) {
		breakdownBench(b, hw.Longhorn(), core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}, core.PhaseCombine)
	})
}

// BenchmarkFig8ZFPBreakdown regenerates Figure 8: get_max_grid_dims
// dominates the naive ZFP path and vanishes under ZFP-OPT.
func BenchmarkFig8ZFPBreakdown(b *testing.B) {
	b.Run("Naive/GridQuery", func(b *testing.B) {
		breakdownBench(b, hw.FronteraLiquid(), core.Config{Mode: core.ModeNaive, Algorithm: core.AlgoZFP}, core.PhaseGridQuery)
	})
	b.Run("Opt/GridQuery", func(b *testing.B) {
		breakdownBench(b, hw.FronteraLiquid(), core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP}, core.PhaseGridQuery)
	})
}

// BenchmarkFig9PointToPoint regenerates Figure 9: the four latency sweeps
// at the 8 MB point for every scheme.
func BenchmarkFig9PointToPoint(b *testing.B) {
	const size = 8 << 20
	subs := []struct {
		name       string
		c          hw.Cluster
		nodes, ppn int
	}{
		{"LonghornInter", hw.Longhorn(), 2, 1},
		{"FronteraInter", hw.FronteraLiquid(), 2, 1},
		{"LonghornIntra", hw.Longhorn(), 1, 2},
		{"FronteraIntra", hw.FronteraLiquid(), 1, 2},
	}
	schemes := []struct {
		name string
		cfg  core.Config
	}{
		{"Baseline", core.Config{}},
		{"MPC-OPT", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}},
		{"ZFP-OPT-r16", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 16}},
		{"ZFP-OPT-r8", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 8}},
		{"ZFP-OPT-r4", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 4}},
	}
	for _, sub := range subs {
		for _, sc := range schemes {
			sub, sc := sub, sc
			b.Run(sub.name+"/"+sc.name, func(b *testing.B) {
				var lat simtime.Duration
				var ratio float64
				for i := 0; i < b.N; i++ {
					lat, ratio = latencyAt(b, sub.c, sub.nodes, sub.ppn, sc.cfg, size)
				}
				b.ReportMetric(lat.Microseconds(), "sim-us")
				b.ReportMetric(ratio, "ratio")
			})
		}
	}
}

// BenchmarkFig10Breakdown regenerates Figure 10: the compression /
// decompression / communication split for the two OPT schemes at 8 MB.
func BenchmarkFig10Breakdown(b *testing.B) {
	schemes := []struct {
		name string
		cfg  core.Config
	}{
		{"MPC-OPT", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}},
		{"ZFP-OPT-r4", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 4}},
	}
	for _, sc := range schemes {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			var comprUS, decomprUS, totalUS float64
			for i := 0; i < b.N; i++ {
				w := mustWorld(b, hw.FronteraLiquid(), 2, 1, sc.cfg)
				res, err := omb.Latency(w, []int{8 << 20}, 1, 2, nil)
				if err != nil {
					b.Fatal(err)
				}
				var sum core.Breakdown
				for r := 0; r < w.Size(); r++ {
					sum.AddAll(&w.Rank(r).Engine.Stats)
				}
				per := sum.Scale(3)
				comprUS = (per.Get(core.PhaseCompressKernel) + per.Get(core.PhaseDataCopy) + per.Get(core.PhaseCombine)).Microseconds()
				decomprUS = per.Get(core.PhaseDecompressKernel).Microseconds()
				totalUS = (2 * res[0].Latency).Microseconds()
			}
			b.ReportMetric(comprUS, "compr-us")
			b.ReportMetric(decomprUS, "decompr-us")
			b.ReportMetric(totalUS-comprUS-decomprUS, "comm-us")
		})
	}
}

// BenchmarkFig11Collectives regenerates Figure 11: MPI_Bcast and
// MPI_Allgather with real dataset payloads on Frontera Liquid.
func BenchmarkFig11Collectives(b *testing.B) {
	gen, err := omb.DatasetData("msg_sppm")
	if err != nil {
		b.Fatal(err)
	}
	schemes := []struct {
		name string
		cfg  core.Config
	}{
		{"Baseline", core.Config{}},
		{"MPC-OPT", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}},
		{"ZFP-OPT-r4", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 4}},
	}
	for _, sc := range schemes {
		sc := sc
		b.Run("Bcast/"+sc.name, func(b *testing.B) {
			var lat simtime.Duration
			for i := 0; i < b.N; i++ {
				w := mustWorld(b, hw.FronteraLiquid(), 4, 2, sc.cfg)
				res, err := omb.BcastLatency(w, 2<<20, 1, 2, gen)
				if err != nil {
					b.Fatal(err)
				}
				lat = res.Latency
			}
			b.ReportMetric(lat.Microseconds(), "sim-us")
		})
		b.Run("Allgather/"+sc.name, func(b *testing.B) {
			var lat simtime.Duration
			for i := 0; i < b.N; i++ {
				w := mustWorld(b, hw.FronteraLiquid(), 4, 2, sc.cfg)
				res, err := omb.AllgatherLatency(w, 2<<20, 1, 2, gen)
				if err != nil {
					b.Fatal(err)
				}
				lat = res.Latency
			}
			b.ReportMetric(lat.Microseconds(), "sim-us")
		})
	}
}

// awpBench runs the AWP-ODC proxy at one scale and reports TFLOPS and the
// speedup of each scheme over the baseline. dynamicMPC gates MPC through
// the cost model, used when the benchmark's scaled-down halos sit below
// MPC's break-even size (see EXPERIMENTS.md on Figure 13).
func awpBench(b *testing.B, c hw.Cluster, nodes, ppn int, cfg awpodc.Config, dynamicMPC bool) {
	mpcName := "MPC-OPT"
	if dynamicMPC {
		mpcName = "MPC-OPT-dyn"
	}
	schemes := []struct {
		name string
		cfg  core.Config
	}{
		{"Baseline", core.Config{}},
		{mpcName, core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, Dynamic: dynamicMPC}},
		{"ZFP-OPT-r16", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 16}},
		{"ZFP-OPT-r8", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 8}},
	}
	var base float64
	for _, sc := range schemes {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			var res awpodc.Result
			for i := 0; i < b.N; i++ {
				w := mustWorld(b, c, nodes, ppn, sc.cfg)
				var err error
				res, err = awpodc.Run(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TFlops, "tflops")
			b.ReportMetric(res.TimePerStep.Milliseconds(), "ms-per-step")
			if sc.name == "Baseline" {
				base = res.TFlops
			} else if base > 0 {
				b.ReportMetric(res.TFlops/base, "speedup")
			}
		})
	}
}

// BenchmarkFig12AWPFrontera regenerates Figure 12: AWP-ODC weak scaling on
// Frontera Liquid (16 GPUs, 4 GPUs/node).
func BenchmarkFig12AWPFrontera(b *testing.B) {
	awpBench(b, hw.FronteraLiquid(), 4, 4, awpodc.Config{NX: 320, NY: 320, NZ: 128, Steps: 2}, false)
}

// BenchmarkFig13AWPLassen regenerates Figure 13: AWP-ODC on Lassen at a
// larger scale (32 GPUs, 4 GPUs/node; cmd/figures goes to 512).
func BenchmarkFig13AWPLassen(b *testing.B) {
	awpBench(b, hw.Lassen(), 8, 4, awpodc.Config{NX: 160, NY: 160, NZ: 128, Steps: 2}, true)
}

// BenchmarkFig14Dask regenerates Figure 14: the Dask transpose-sum with 4
// workers on RI2.
func BenchmarkFig14Dask(b *testing.B) {
	m := dask.Matrix{Dim: 4096, ChunkDim: 1024}
	schemes := []struct {
		name string
		cfg  core.Config
	}{
		{"Baseline", core.Config{}},
		{"ZFP-OPT-r16", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 16}},
		{"ZFP-OPT-r8", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 8}},
	}
	var base simtime.Duration
	for _, sc := range schemes {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			var res dask.Result
			for i := 0; i < b.N; i++ {
				w := mustWorld(b, hw.RI2(), 4, 1, sc.cfg)
				var err error
				res, err = dask.TransposeSum(w, m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ExecTime.Milliseconds(), "sim-ms")
			b.ReportMetric(res.ThroughputGBps, "sim-gbps")
			if sc.name == "Baseline" {
				base = res.ExecTime
			} else if base > 0 {
				b.ReportMetric(float64(base)/float64(res.ExecTime), "speedup")
			}
		})
	}
}

// BenchmarkAblationPartitions quantifies MPC-OPT's multi-stream
// decomposition (Section IV-B): latency at 8 MB with 1, 2, 4 and 8
// partitions — the design-choice ablation DESIGN.md calls out.
func BenchmarkAblationPartitions(b *testing.B) {
	for _, parts := range []int{1, 2, 4, 8} {
		parts := parts
		b.Run(map[int]string{1: "P1", 2: "P2", 4: "P4", 8: "P8"}[parts], func(b *testing.B) {
			var lat simtime.Duration
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, MaxPartitions: parts}
				lat, _ = latencyAt(b, hw.Longhorn(), 2, 1, cfg, 8<<20)
			}
			b.ReportMetric(lat.Microseconds(), "sim-us")
		})
	}
}

// BenchmarkAblationGDRCopy quantifies the GDRCopy size-readback
// optimization alone (Section IV-B optimization 3) by comparing the
// engine-side data-copy phase between naive and OPT at 4 MB.
func BenchmarkAblationGDRCopy(b *testing.B) {
	b.Run("NaiveMemcpy", func(b *testing.B) {
		breakdownBench(b, hw.Longhorn(), core.Config{Mode: core.ModeNaive, Algorithm: core.AlgoMPC}, core.PhaseDataCopy)
	})
	b.Run("OptGDRCopy", func(b *testing.B) {
		breakdownBench(b, hw.Longhorn(), core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}, core.PhaseDataCopy)
	})
}

// BenchmarkAblationPipeline quantifies the pipelined-rendezvous extension:
// 32 MB MPC transfer, whole-message vs chunked at several chunk sizes.
func BenchmarkAblationPipeline(b *testing.B) {
	vals := datasets.Smooth(8<<20, 19, 1e-4)
	cases := []struct {
		name  string
		chunk int
	}{
		{"Whole", 0},
		{"Chunk1M", 1 << 20},
		{"Chunk2M", 2 << 20},
		{"Chunk4M", 4 << 20},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var lat simtime.Duration
			for i := 0; i < b.N; i++ {
				w := mustWorld(b, hw.Longhorn(), 2, 1, core.Config{
					Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
					PipelineChunkBytes: c.chunk,
				})
				times, err := w.Run(func(r *mpi.Rank) error {
					buf := &gpusim.Buffer{Data: core.FloatsToBytes(nil, vals), Loc: gpusim.Device, Dev: r.Dev}
					if r.ID() == 0 {
						return r.Send(1, 0, buf)
					}
					return r.Recv(0, 0, buf)
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = simtime.Duration(mpi.MaxTime(times))
			}
			b.ReportMetric(lat.Microseconds(), "sim-us")
		})
	}
}

// BenchmarkAblationDynamic quantifies the dynamic-selection extension: an
// 8 MB dummy-data exchange on two link classes, static MPC-OPT vs the
// cost-model-gated engine vs baseline.
func BenchmarkAblationDynamic(b *testing.B) {
	vals := datasets.Dummy(2 << 20)
	run := func(b *testing.B, nodes, ppn int, cfg core.Config) simtime.Duration {
		var lat simtime.Duration
		for i := 0; i < b.N; i++ {
			w := mustWorld(b, hw.Longhorn(), nodes, ppn, cfg)
			times, err := w.Run(func(r *mpi.Rank) error {
				buf := &gpusim.Buffer{Data: core.FloatsToBytes(nil, vals), Loc: gpusim.Device, Dev: r.Dev}
				if r.ID() == 0 {
					return r.Send(1, 0, buf)
				}
				return r.Recv(0, 0, buf)
			})
			if err != nil {
				b.Fatal(err)
			}
			lat = simtime.Duration(mpi.MaxTime(times))
		}
		return lat
	}
	static := core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}
	dynamic := core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, Dynamic: true}
	cases := []struct {
		name       string
		nodes, ppn int
		cfg        core.Config
	}{
		{"EDR/Baseline", 2, 1, core.Config{}},
		{"EDR/Static", 2, 1, static},
		{"EDR/Dynamic", 2, 1, dynamic},
		{"NVLink/Baseline", 1, 2, core.Config{}},
		{"NVLink/Static", 1, 2, static},
		{"NVLink/Dynamic", 1, 2, dynamic},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			lat := run(b, c.nodes, c.ppn, c.cfg)
			b.ReportMetric(lat.Microseconds(), "sim-us")
		})
	}
}
