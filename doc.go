// Package mpicomp is a reproduction of "Designing High-Performance MPI
// Libraries with On-the-fly Compression for Modern GPU Clusters" (Zhou et
// al., IPDPS 2021): a GPU-aware MPI runtime with on-the-fly MPC (lossless)
// and ZFP (fixed-rate lossy) message compression, running on a simulated
// GPU cluster substrate.
//
// The public surface lives in the internal packages (this module is a
// self-contained research artifact):
//
//   - internal/core:   the compression framework (MPC-OPT, ZFP-OPT,
//     naive integration, dynamic selection)
//   - internal/mpi:    the message-passing runtime (rendezvous protocol,
//     collectives)
//   - internal/mpc:    the lossless MPC codec
//   - internal/zfp:    the fixed-rate ZFP codec
//   - internal/omb:    OSU microbenchmark workloads
//   - internal/awpodc: the AWP-ODC proxy application
//   - internal/dask:   the Dask data-science workload
//
// See README.md for a tour, DESIGN.md for the architecture, and
// EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation; cmd/figures and cmd/tables print them as text tables.
package mpicomp
