// Autotuner acceptance benchmark: evidence that internal/tune's
// deterministic online selector converges to (near-)oracle algorithm
// choices from live measurements.
//
// TestWriteBenchTune (env-gated: BENCH_TUNE=1) sweeps a grid of
// (message size, world shape) cells. For each cell it measures every
// candidate schedule in a pinned world — the oracle is the fastest —
// then runs a tuner-driven world for enough epochs to explore all
// candidates and settle. Gates, per cell: the tuner's converged pick
// must land within 10% of the oracle-best latency. Globally: the
// tuner's committed snapshot must be byte-identical across codec
// worker counts 1/2/8 for a fixed seed on every entry inside the
// strict determinism envelope (flat and single-node layouts —
// hierarchical ppn>1 timings can shift by more than the tuner's
// quantum when ragged compressed transfers race a shared intra-node
// adapter calendar, DESIGN.md §13), every cell's pick — hierarchical
// included — must agree across worker counts, and a tuner
// warm-started from the persisted table must answer every cell
// without re-probing and with the same pick. Results go to
// BENCH_tune.json.
package mpicomp_test

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/hw"
	"mpicomp/internal/mpi"
	"mpicomp/internal/netsim"
	"mpicomp/internal/omb"
	"mpicomp/internal/tune"
)

const benchTuneSeed = 7

// benchTuneCell is one grid point.
type benchTuneCell struct {
	Bytes int `json:"bytes"`
	Nodes int `json:"nodes"`
	PPN   int `json:"ppn"`
}

// benchTuneCells is the sweep grid: the small-message latency regime,
// the mid regime, and the bandwidth regime, on a flat and a
// hierarchical shape.
var benchTuneCells = []benchTuneCell{
	{32 << 10, 8, 1},
	{1 << 20, 8, 1},
	{4 << 20, 8, 1},
	{32 << 10, 4, 2},
	{1 << 20, 4, 2},
	{4 << 20, 4, 2},
}

// benchTuneCandidates mirrors the tuner's schedule space for a shape.
func benchTuneCandidates(nodes, ppn int) []mpi.AllreduceAlgo {
	cands := []mpi.AllreduceAlgo{
		mpi.AllreduceRing, mpi.AllreduceRecursiveDoubling, mpi.AllreduceRabenseifner,
	}
	if netsim.ClassifyTopo(nodes, ppn) == netsim.TopoHierarchical {
		cands = append(cands, mpi.AllreduceTwoLevel)
	}
	return cands
}

func benchTuneConfig(workers int) core.Config {
	return core.Config{
		Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
		PipelineChunkBytes: 128 << 10, Workers: workers,
	}
}

// benchTuneMeasure measures one pinned schedule for a cell on a fresh
// world (workers=1) and returns the simulated latency in microseconds.
func benchTuneMeasure(t *testing.T, cell benchTuneCell, algo mpi.AllreduceAlgo) float64 {
	t.Helper()
	w, err := mpi.NewWorld(mpi.Options{
		Cluster: hw.Longhorn(), Nodes: cell.Nodes, PPN: cell.PPN,
		Engine: benchTuneConfig(1), Allreduce: algo,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := omb.AllreduceLatency(w, cell.Bytes, 1, 2, nil)
	if err != nil {
		t.Fatalf("%s at %dB on %dx%d: %v", algo, cell.Bytes, cell.Nodes, cell.PPN, err)
	}
	return res.Latency.Microseconds()
}

// benchTuneRun drives one tuner through the whole grid the way ombrun
// does — per cell, one epoch per measurement run, counters folded at
// each world-synchronous Advance — for enough epochs that every
// candidate is explored and the EMA settles. Returns the tuner.
func benchTuneRun(t *testing.T, workers int) *tune.Tuner {
	t.Helper()
	tn := tune.NewTuner(tune.Options{Seed: benchTuneSeed, Cluster: hw.Longhorn()})
	for _, cell := range benchTuneCells {
		w, err := mpi.NewWorld(mpi.Options{
			Cluster: hw.Longhorn(), Nodes: cell.Nodes, PPN: cell.PPN,
			Engine: benchTuneConfig(workers), Tuner: tn,
		})
		if err != nil {
			t.Fatal(err)
		}
		epochs := len(benchTuneCandidates(cell.Nodes, cell.PPN)) + 2
		for e := 0; e < epochs; e++ {
			if _, err := omb.AllreduceLatency(w, cell.Bytes, 1, 2, nil); err != nil {
				t.Fatalf("tuned allreduce at %dB on %dx%d: %v", cell.Bytes, cell.Nodes, cell.PPN, err)
			}
			var c tune.Counters
			for r := 0; r < w.Size(); r++ {
				eng := w.Rank(r).Engine
				c.Compressions += int64(eng.Compressions)
				c.Bypasses += int64(eng.Bypasses)
				c.PoolFallbacks += int64(eng.PoolFallbacks)
				c.CacheHits += int64(eng.CacheHits)
				c.CacheMisses += int64(eng.CacheMisses)
				c.PipelinedChunks += int64(eng.PipelinedChunks)
			}
			tn.NoteCounters(c)
			tn.Advance()
		}
	}
	return tn
}

// envelopeOnly strips table entries outside the strict worker-count
// determinism envelope: hierarchical (ppn>1 multi-node) layouts, where
// ragged compressed transfers racing a shared intra-node adapter
// calendar can shift collective timings by more than the tuner's
// latency quantum (DESIGN.md §13). Flat and single-node entries must
// still match byte for byte across worker counts.
func envelopeOnly(tab *tune.Table) *tune.Table {
	out := &tune.Table{Version: tab.Version, Seed: tab.Seed}
	for _, e := range tab.Entries {
		if e.Topo != string(netsim.TopoHierarchical) {
			out.Entries = append(out.Entries, e)
		}
	}
	return out
}

type benchTuneEntry struct {
	Bytes     int                `json:"bytes"`
	Nodes     int                `json:"nodes"`
	PPN       int                `json:"ppn"`
	Ranks     int                `json:"ranks"`
	Topo      string             `json:"topo"`
	LatencyUs map[string]float64 `json:"latency_us"`
	Oracle    string             `json:"oracle"`
	Pick      string             `json:"pick"`
	OracleUs  float64            `json:"oracle_us"`
	PickUs    float64            `json:"pick_us"`
	GapPct    float64            `json:"gap_pct"`
}

type benchTuneDoc struct {
	Seed                 int64            `json:"seed"`
	GoMaxProcs           int              `json:"gomaxprocs"`
	NumCPU               int              `json:"num_cpu"`
	Note                 string           `json:"note"`
	WorkersDeterministic bool             `json:"workers_deterministic"`
	WarmStartNoReprobe   bool             `json:"warm_start_no_reprobe"`
	Results              []benchTuneEntry `json:"results"`
}

func TestWriteBenchTune(t *testing.T) {
	if os.Getenv("BENCH_TUNE") == "" {
		t.Skip("set BENCH_TUNE=1 to run the autotuner sweep and write BENCH_tune.json")
	}
	doc := benchTuneDoc{
		Seed:       benchTuneSeed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "tuner pick vs per-cell oracle, MPC opt, 128K chunks, dummy data, Longhorn; " +
			"oracle = fastest pinned schedule; gap = pick latency over oracle latency",
	}

	// One tuner per worker count; fixed seed. Inside the determinism
	// envelope (flat and single-node layouts) the committed snapshots
	// must agree byte for byte — virtual time and the fold are both
	// worker-count invariant there. Hierarchical entries carry the
	// documented timing-plane wiggle (DESIGN.md §13), so they are held
	// to pick equality in the per-cell loop below, not byte equality.
	tuners := map[int]*tune.Tuner{}
	for _, workers := range []int{1, 2, 8} {
		tuners[workers] = benchTuneRun(t, workers)
	}
	snap1, err := tuners[1].Snapshot().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env1, err := envelopeOnly(tuners[1].Snapshot()).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	doc.WorkersDeterministic = true
	for _, workers := range []int{2, 8} {
		envN, err := envelopeOnly(tuners[workers].Snapshot()).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(env1, envN) {
			doc.WorkersDeterministic = false
			t.Errorf("envelope tuner snapshot differs between workers=1 and workers=%d:\n%s\nvs\n%s", workers, env1, envN)
		}
	}

	// Warm start from the persisted table: no re-probing, same picks.
	tab, err := tune.ParseTable(snap1)
	if err != nil {
		t.Fatalf("snapshot table does not round-trip: %v", err)
	}
	warm := tune.NewTuner(tune.Options{Seed: benchTuneSeed, Cluster: hw.Longhorn(), Table: tab})
	doc.WarmStartNoReprobe = true

	for _, cell := range benchTuneCells {
		p := mpi.TunePoint{Bytes: cell.Bytes, Ranks: cell.Nodes * cell.PPN, Nodes: cell.Nodes, PPN: cell.PPN}
		entry := benchTuneEntry{
			Bytes: cell.Bytes, Nodes: cell.Nodes, PPN: cell.PPN, Ranks: p.Ranks,
			Topo:      string(netsim.ClassifyTopo(cell.Nodes, cell.PPN)),
			LatencyUs: map[string]float64{},
		}
		oracleUs := -1.0
		for _, algo := range benchTuneCandidates(cell.Nodes, cell.PPN) {
			us := benchTuneMeasure(t, cell, algo)
			entry.LatencyUs[algo.String()] = us
			if oracleUs < 0 || us < oracleUs {
				oracleUs, entry.Oracle = us, algo.String()
			}
		}
		pick := tuners[1].PickAllreduce(p)
		entry.Pick = pick.String()
		// Every cell — hierarchical included — must converge to the
		// same pick regardless of codec worker count.
		for _, workers := range []int{2, 8} {
			if wp := tuners[workers].PickAllreduce(p); wp != pick {
				doc.WorkersDeterministic = false
				t.Errorf("cell %dB %dx%d: workers=%d pick %s != workers=1 pick %s",
					cell.Bytes, cell.Nodes, cell.PPN, workers, wp, pick)
			}
		}
		entry.OracleUs = oracleUs
		entry.PickUs = entry.LatencyUs[pick.String()]
		entry.GapPct = (entry.PickUs - oracleUs) / oracleUs * 100
		if entry.GapPct > 10 {
			t.Errorf("cell %dB %dx%d: pick %s is %.1f%% over oracle %s (%.1fus vs %.1fus), want <= 10%%",
				cell.Bytes, cell.Nodes, cell.PPN, entry.Pick, entry.GapPct, entry.Oracle, entry.PickUs, entry.OracleUs)
		}
		if warm.NeedProbe(p) {
			doc.WarmStartNoReprobe = false
			t.Errorf("cell %dB %dx%d: warm-started tuner wants to re-probe", cell.Bytes, cell.Nodes, cell.PPN)
		}
		if wp := warm.PickAllreduce(p); wp != pick {
			t.Errorf("cell %dB %dx%d: warm pick %s != converged pick %s", cell.Bytes, cell.Nodes, cell.PPN, wp, pick)
		}
		doc.Results = append(doc.Results, entry)
		t.Logf("%dB %dx%d: oracle=%s (%.1fus) pick=%s (%.1fus, +%.1f%%)",
			cell.Bytes, cell.Nodes, cell.PPN, entry.Oracle, oracleUs, entry.Pick, entry.PickUs, entry.GapPct)
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_tune.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
