// Collective fast-path benchmarks: before/after evidence for the
// compress-once cache, the pipelined/relay ring allreduce, and the
// datatype-aware pack+compress fusion.
//
// TestWriteBenchColl (env-gated: BENCH_COLL=1) measures simulated
// latency and host wall-clock for bcast, hierarchical bcast, allgather,
// alltoallv, and ring-allreduce at 1 MB and 8 MB on an 8-rank (4x2)
// Longhorn world, writing BENCH_coll.json. "Before" arms run with the
// compress-once cache disabled — and, for the ring, the blocking
// whole-block algorithm — i.e. the code paths as they were before the
// fast paths landed; "after" arms run the defaults. The ring row at
// 8 MB also differentially verifies that the pipelined/relay ring and
// its blocking oracle produce byte-identical reductions.
//
// rd-allreduce and rab-allreduce rows measure the algorithm crossover
// against the pipelined ring at 32 KB and 4 MB: recursive doubling
// (log2 P rounds, whole vector per round) must win the small-message
// latency regime, the bandwidth-optimal ring the large regime, and
// both new schedules must be payload-bit-identical to their blocking
// oracles.
//
// A final awpodc-halo row compares the staged halo exchange (pack and
// unpack kernels charged honestly, HaloPacked=true) against the fused
// typed path (Subarray3D boundary views, zero staging copies): the
// typed arm must be bit-identical on the wire and >= 15% faster on
// per-step halo latency.
package mpicomp_test

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"mpicomp/internal/awpodc"
	"mpicomp/internal/core"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/mpi"
	"mpicomp/internal/omb"
)

const (
	benchCollNodes  = 4
	benchCollPPN    = 2
	benchCollWarmup = 1
	benchCollIters  = 3
)

// benchCollWorld builds the measurement world. cacheEntries <0 disables
// the compress-once cache (the "before" configuration).
func benchCollWorld(t *testing.T, cacheEntries int) *mpi.World {
	t.Helper()
	w, err := mpi.NewWorld(mpi.Options{
		Cluster: hw.Longhorn(), Nodes: benchCollNodes, PPN: benchCollPPN,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			CacheEntries: cacheEntries},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// benchCollChunkedWorld is benchCollWorld with 128K chunk pipelining —
// the configuration the algorithm-crossover rows run under, so the
// pipelined ring comparator overlaps chunks the way production sweeps
// configure it.
func benchCollChunkedWorld(t *testing.T, cacheEntries int) *mpi.World {
	t.Helper()
	w, err := mpi.NewWorld(mpi.Options{
		Cluster: hw.Longhorn(), Nodes: benchCollNodes, PPN: benchCollPPN,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			CacheEntries: cacheEntries, PipelineChunkBytes: 128 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// benchCollEntry is one (collective, size) row of BENCH_coll.json.
type benchCollEntry struct {
	Coll  string `json:"coll"`
	Bytes int    `json:"bytes"`
	// Simulated (virtual-clock) latencies.
	BeforeUs   float64 `json:"before_us"`
	AfterUs    float64 `json:"after_us"`
	SpeedupPct float64 `json:"speedup_pct"`
	// Host wall-clock of the whole measurement (non-deterministic,
	// recorded so regressions in real codec work stay visible).
	BeforeWallMs float64 `json:"before_wall_ms"`
	AfterWallMs  float64 `json:"after_wall_ms"`
	// Cache/relay activity of the after arm.
	CacheHits       int   `json:"cache_hits"`
	CacheMisses     int   `json:"cache_misses"`
	RelayedBytes    int64 `json:"relayed_bytes"`
	BitIdentical    *bool `json:"bit_identical,omitempty"`
	PipelinedChunks int   `json:"pipelined_chunks"`
}

type benchCollDoc struct {
	Ranks      int              `json:"ranks"`
	GoMaxProcs int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Note       string           `json:"note"`
	Results    []benchCollEntry `json:"results"`
}

// benchCollBitIdentical runs a pipelined allreduce schedule and its
// blocking oracle on identical inputs in one world and reports whether
// every rank's outputs match byte for byte (they must: MPC is lossless
// and both run the per-element additions in the same order).
func benchCollBitIdentical(t *testing.T, bytesN int, chunked bool,
	fastFn, slowFn func(*mpi.Rank, *gpusim.Buffer, *gpusim.Buffer) error) bool {
	t.Helper()
	w := benchCollWorld(t, 0)
	if chunked {
		w = benchCollChunkedWorld(t, 0)
	}
	identical := true
	_, err := w.Run(func(r *mpi.Rank) error {
		vals := make([]float32, bytesN/4)
		for i := range vals {
			vals[i] = float32(r.ID()+1) + float32(i%4093)*0.125
		}
		send := (&gpusim.Buffer{Data: core.FloatsToBytes(nil, vals), Loc: gpusim.Device, Dev: r.Dev}).Track()
		fast := &gpusim.Buffer{Data: make([]byte, bytesN), Loc: gpusim.Device, Dev: r.Dev}
		slow := &gpusim.Buffer{Data: make([]byte, bytesN), Loc: gpusim.Device, Dev: r.Dev}
		if err := fastFn(r, send, fast); err != nil {
			return err
		}
		if err := slowFn(r, send, slow); err != nil {
			return err
		}
		if !bytes.Equal(fast.Data, slow.Data) {
			identical = false
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatalf("bit-identity run: %v", err)
	}
	return identical
}

// TestWriteBenchColl runs the before/after collective sweep and writes
// BENCH_coll.json. Gated behind BENCH_COLL=1; CI's bench job sets it
// and uploads the artifact. Two acceptance gates run inline: the 8 MB
// ring-allreduce must improve simulated latency by >=25% over the
// blocking path with byte-identical results, and the 8-rank
// hierarchical bcast must record compress-once cache hits.
func TestWriteBenchColl(t *testing.T) {
	if os.Getenv("BENCH_COLL") == "" {
		t.Skip("set BENCH_COLL=1 to run the collective sweep and write BENCH_coll.json")
	}
	type arm struct {
		before func(w *mpi.World, bytes, warmup, iters int, gen omb.DataGen) (omb.CollResult, error)
		after  func(w *mpi.World, bytes, warmup, iters int, gen omb.DataGen) (omb.CollResult, error)
	}
	colls := []struct {
		name    string
		arm     arm
		sizes   []int // nil = the default {1 MB, 8 MB} sweep
		chunked bool  // run both arms with 128K chunk pipelining
	}{
		{"bcast", arm{before: omb.BcastLatency, after: omb.BcastLatency}, nil, false},
		{"bcast-hier", arm{before: omb.BcastHierarchicalLatency, after: omb.BcastHierarchicalLatency}, nil, false},
		{"allgather", arm{before: omb.AllgatherLatency, after: omb.AllgatherLatency}, nil, false},
		{"alltoallv", arm{before: omb.AlltoallvLatency, after: omb.AlltoallvLatency}, nil, false},
		{"ring-allreduce", arm{before: omb.RingAllreduceBlockingLatency, after: omb.RingAllreduceLatency}, nil, false},
		// Algorithm-crossover rows: the "before" arm is the pipelined
		// ring (the previous best), the "after" arm the new schedule, so
		// SpeedupPct > 0 means the new schedule beats the ring at that
		// size. Sized to straddle the latency/bandwidth crossover, and
		// run with chunk pipelining on BOTH arms — without chunking the
		// ring serialises whole blocks and loses even the bandwidth
		// regime, which is not the comparison production sweeps make.
		{"rd-allreduce", arm{before: omb.RingAllreduceLatency, after: omb.RecursiveDoublingAllreduceLatency},
			[]int{32 << 10, 4 << 20}, true},
		{"rab-allreduce", arm{before: omb.RingAllreduceLatency, after: omb.RabenseifnerAllreduceLatency},
			[]int{32 << 10, 4 << 20}, true},
	}
	doc := benchCollDoc{
		Ranks:      benchCollNodes * benchCollPPN,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "simulated collective latency, MPC opt, dummy data, 4x2 Longhorn; before = compress-once cache " +
			"disabled (and blocking whole-block ring); after = default fast paths; wall-clock is real host time",
	}
	for _, coll := range colls {
		sizes := coll.sizes
		if sizes == nil {
			sizes = []int{1 << 20, 8 << 20}
		}
		for _, size := range sizes {
			wallStart := time.Now()
			before := benchCollWorld(t, -1)
			if coll.chunked {
				before = benchCollChunkedWorld(t, -1)
			}
			resB, err := coll.arm.before(before, size, benchCollWarmup, benchCollIters, nil)
			if err != nil {
				t.Fatalf("%s before: %v", coll.name, err)
			}
			beforeWall := time.Since(wallStart)

			wallStart = time.Now()
			after := benchCollWorld(t, 0)
			if coll.chunked {
				after = benchCollChunkedWorld(t, 0)
			}
			resA, err := coll.arm.after(after, size, benchCollWarmup, benchCollIters, nil)
			if err != nil {
				t.Fatalf("%s after: %v", coll.name, err)
			}
			afterWall := time.Since(wallStart)

			var cs core.CacheStats
			for i := 0; i < after.Size(); i++ {
				cs.Add(after.Rank(i).Engine.CacheSnapshot())
			}
			e := benchCollEntry{
				Coll:            coll.name,
				Bytes:           size,
				BeforeUs:        resB.Latency.Microseconds(),
				AfterUs:         resA.Latency.Microseconds(),
				BeforeWallMs:    float64(beforeWall.Microseconds()) / 1e3,
				AfterWallMs:     float64(afterWall.Microseconds()) / 1e3,
				CacheHits:       cs.Hits,
				CacheMisses:     cs.Misses,
				RelayedBytes:    cs.RelayedBytes,
				PipelinedChunks: cs.PipelinedChunks,
			}
			if e.BeforeUs > 0 {
				e.SpeedupPct = (e.BeforeUs - e.AfterUs) / e.BeforeUs * 100
			}
			if coll.name == "ring-allreduce" {
				ok := benchCollBitIdentical(t, size, false, (*mpi.Rank).RingAllreduceSum, (*mpi.Rank).RingAllreduceSumBlocking)
				e.BitIdentical = &ok
				if !ok {
					t.Errorf("%s %dB: pipelined and blocking results differ", coll.name, size)
				}
				if size == 8<<20 && e.SpeedupPct < 25 {
					t.Errorf("ring-allreduce at 8 MB: %.1f%% improvement, want >= 25%% (before %.1fus, after %.1fus)",
						e.SpeedupPct, e.BeforeUs, e.AfterUs)
				}
			}
			if coll.name == "rd-allreduce" {
				ok := benchCollBitIdentical(t, size, true,
					(*mpi.Rank).RecursiveDoublingAllreduceSum, (*mpi.Rank).RecursiveDoublingAllreduceSumBlocking)
				e.BitIdentical = &ok
				if !ok {
					t.Errorf("%s %dB: pipelined and blocking results differ", coll.name, size)
				}
				// The crossover: log2-depth rd wins the latency regime,
				// the bandwidth-optimal ring wins the large regime.
				if size == 32<<10 && e.SpeedupPct <= 0 {
					t.Errorf("rd at 32 KB: %.1f%% vs pipelined ring, want a win (ring %.1fus, rd %.1fus)",
						e.SpeedupPct, e.BeforeUs, e.AfterUs)
				}
				if size == 4<<20 && e.SpeedupPct >= 0 {
					t.Errorf("rd at 4 MB: %.1f%% vs pipelined ring, expected the ring to win (ring %.1fus, rd %.1fus)",
						e.SpeedupPct, e.BeforeUs, e.AfterUs)
				}
			}
			if coll.name == "rab-allreduce" {
				ok := benchCollBitIdentical(t, size, true,
					(*mpi.Rank).RabenseifnerAllreduceSum, (*mpi.Rank).RabenseifnerAllreduceSumBlocking)
				e.BitIdentical = &ok
				if !ok {
					t.Errorf("%s %dB: pipelined and blocking results differ", coll.name, size)
				}
			}
			if coll.name == "bcast-hier" && cs.Hits == 0 {
				t.Errorf("hierarchical bcast at %dB recorded no cache hits: %+v", size, cs)
			}
			doc.Results = append(doc.Results, e)
			t.Logf("%s %dB: before %.1fus after %.1fus (%.1f%%), hits=%d relayed=%dB",
				coll.name, size, e.BeforeUs, e.AfterUs, e.SpeedupPct, cs.Hits, cs.RelayedBytes)
		}
	}
	// Fused typed halo vs the staged baseline. Same world shape as the
	// collectives above; the halo is the awpodc X/Y face exchange, the
	// per-row metric the slowest rank's per-step halo latency.
	haloCfg := awpodc.Config{NX: 128, NY: 128, NZ: 64, Fields: 9, Steps: 4}
	stagedCfg := haloCfg
	stagedCfg.HaloPacked = true

	wallStart := time.Now()
	resB, err := awpodc.Run(benchCollWorld(t, 0), stagedCfg)
	if err != nil {
		t.Fatalf("awpodc-halo staged: %v", err)
	}
	beforeWall := time.Since(wallStart)

	wallStart = time.Now()
	after := benchCollWorld(t, 0)
	resA, err := awpodc.Run(after, haloCfg)
	if err != nil {
		t.Fatalf("awpodc-halo typed: %v", err)
	}
	afterWall := time.Since(wallStart)

	var cs core.CacheStats
	for i := 0; i < after.Size(); i++ {
		cs.Add(after.Rank(i).Engine.CacheSnapshot())
	}
	halo := benchCollEntry{
		Coll:         "awpodc-halo",
		Bytes:        haloCfg.HaloBytesX(),
		BeforeUs:     resB.CommTime.Microseconds(),
		AfterUs:      resA.CommTime.Microseconds(),
		BeforeWallMs: float64(beforeWall.Microseconds()) / 1e3,
		AfterWallMs:  float64(afterWall.Microseconds()) / 1e3,
		CacheHits:    cs.Hits,
		CacheMisses:  cs.Misses,
	}
	if halo.BeforeUs > 0 {
		halo.SpeedupPct = (halo.BeforeUs - halo.AfterUs) / halo.BeforeUs * 100
	}
	identical := resA.Checksum == resB.Checksum && resA.WireBytes == resB.WireBytes
	halo.BitIdentical = &identical
	if !identical {
		t.Errorf("awpodc-halo: typed path not bit-identical to staged (checksum %v vs %v, wire %d vs %d)",
			resA.Checksum, resB.Checksum, resA.WireBytes, resB.WireBytes)
	}
	if halo.SpeedupPct < 15 {
		t.Errorf("awpodc-halo: %.1f%% improvement, want >= 15%% (staged %.1fus, typed %.1fus)",
			halo.SpeedupPct, halo.BeforeUs, halo.AfterUs)
	}
	if resA.StagingBytes != 0 {
		t.Errorf("awpodc-halo: typed path moved %d staging bytes, want 0", resA.StagingBytes)
	}
	doc.Results = append(doc.Results, halo)
	t.Logf("awpodc-halo: staged %.1fus typed %.1fus (%.1f%%), staging saved %dB",
		halo.BeforeUs, halo.AfterUs, halo.SpeedupPct, resB.StagingBytes)

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_coll.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
