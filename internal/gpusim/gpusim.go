// Package gpusim simulates a CUDA GPU at the granularity the paper's
// analysis needs: device memory with allocation costs, streams with
// asynchronous kernel execution, driver-call overheads (cudaMalloc,
// cudaMemcpy, cudaGetDeviceProperties, cudaDeviceGetAttribute), GDRCopy,
// and pre-allocated buffer pools.
//
// Data is real — a device Buffer wraps actual bytes that flow through the
// compressors and the network — while time is virtual: every operation
// advances the calling rank's logical clock according to the cost model in
// package hw.
package gpusim

import (
	"fmt"
	"sync/atomic"

	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
)

// Location tells where a buffer's memory lives.
type Location int

const (
	// Host memory (CPU DRAM).
	Host Location = iota
	// Device memory (GPU HBM).
	Device
)

// String implements fmt.Stringer.
func (l Location) String() string {
	if l == Device {
		return "device"
	}
	return "host"
}

// Buffer is a region of simulated host or device memory holding real bytes.
type Buffer struct {
	// Data is the live content of the buffer.
	Data []byte
	// Loc is where the buffer resides.
	Loc Location
	// Dev is the owning device for Loc == Device buffers.
	Dev *GPUDevice

	pooled bool // came from a BufferPool; returned via pool.Put

	// trk is the content-version tracker of the root allocation this
	// buffer belongs to (nil for untracked buffers), and trkOff the
	// buffer's byte offset within that allocation. Views made with Slice
	// share the parent's tracker, so a write marked through any view
	// invalidates cached derivations over the whole allocation.
	trk    *tracker
	trkOff int
}

// tracker carries a process-unique identity plus a monotonically
// increasing content epoch for one tracked allocation. The epoch is
// atomic only for memory-safety under -race when collectives on
// different rank goroutines read versions concurrently; cache behavior
// depends on equality of (id, epoch), never on the numeric values, so
// scheduling cannot leak into results.
type tracker struct {
	id    uint64
	epoch atomic.Uint64
}

// trackerIDs hands out process-unique tracker identities.
var trackerIDs atomic.Uint64

// Len returns the buffer's size in bytes.
func (b *Buffer) Len() int { return len(b.Data) }

// Track opts the buffer into content-version tracking, enabling the
// engine's compress-once cache to key compressed blocks by
// (allocation, range, epoch). Idempotent; a no-op on views of an
// already-tracked allocation. Callers that Track a buffer take on the
// obligation to MarkDirty after every write that bypasses the tracked
// APIs (the MPI runtime does this at each receive/reduce site).
func (b *Buffer) Track() *Buffer {
	if b.trk == nil {
		b.trk = &tracker{id: trackerIDs.Add(1)}
	}
	return b
}

// MarkDirty bumps the allocation's content epoch, invalidating any
// cached compressed form of any range of it. No-op for untracked
// buffers.
func (b *Buffer) MarkDirty() {
	if b.trk != nil {
		b.trk.epoch.Add(1)
	}
}

// Version reports the buffer's cache identity: the root allocation's id,
// the buffer's byte offset within it, and the current content epoch.
// ok is false for untracked buffers, which cache layers must treat as
// always-changing.
func (b *Buffer) Version() (id uint64, off int, epoch uint64, ok bool) {
	if b.trk == nil {
		return 0, 0, 0, false
	}
	return b.trk.id, b.trkOff, b.trk.epoch.Load(), true
}

// Slice returns a view of n bytes starting at off, sharing the underlying
// memory (used by collectives to address blocks of a larger buffer).
// Views inherit the parent's content-version tracker.
func (b *Buffer) Slice(off, n int) *Buffer {
	return &Buffer{Data: b.Data[off : off+n], Loc: b.Loc, Dev: b.Dev, trk: b.trk, trkOff: b.trkOff + off}
}

// Float32Len returns the number of float32 values the buffer holds.
func (b *Buffer) Float32Len() int { return len(b.Data) / 4 }

// Stream is a CUDA stream: an in-order queue of device work. Work on
// different streams may overlap.
type Stream struct {
	tl  *simtime.Timeline
	dev *GPUDevice
	id  int
}

// ID returns the stream's index on its device.
func (s *Stream) ID() int { return s.id }

// GPUDevice is one simulated GPU.
type GPUDevice struct {
	Spec hw.GPU

	streams []*Stream
	// attrsCached reflects ZFP-OPT's fix: once the maximum grid
	// dimensions have been queried via cudaDeviceGetAttribute, they are
	// cached as static values.
	attrsCached bool

	memUsed int64
	// MallocCount / FreeCount track allocator traffic so tests can
	// assert that OPT paths stay off the allocator.
	MallocCount int
	FreeCount   int
}

// NewDevice creates a device with nStreams streams (minimum 1).
func NewDevice(spec hw.GPU, nStreams int) *GPUDevice {
	if nStreams < 1 {
		nStreams = 1
	}
	d := &GPUDevice{Spec: spec}
	for i := 0; i < nStreams; i++ {
		d.streams = append(d.streams, &Stream{tl: simtime.NewTimeline(), dev: d, id: i})
	}
	return d
}

// Stream returns stream i, creating streams up to i if needed.
func (d *GPUDevice) Stream(i int) *Stream {
	for len(d.streams) <= i {
		d.streams = append(d.streams, &Stream{tl: simtime.NewTimeline(), dev: d, id: len(d.streams)})
	}
	return d.streams[i]
}

// NumStreams reports how many streams exist.
func (d *GPUDevice) NumStreams() int { return len(d.streams) }

// MemUsed reports current simulated device-memory usage in bytes.
func (d *GPUDevice) MemUsed() int64 { return d.memUsed }

// Malloc allocates n bytes of device memory, charging the caller the
// cudaMalloc cost (base + per-MB component). This is the expensive
// operation the paper's buffer pool removes from the critical path.
func (d *GPUDevice) Malloc(clk *simtime.Clock, n int) *Buffer {
	cost := d.Spec.CudaMallocBase + simtime.Duration(float64(d.Spec.CudaMallocPerMB)*float64(n)/(1<<20))
	clk.Advance(cost)
	d.memUsed += int64(n)
	d.MallocCount++
	return &Buffer{Data: make([]byte, n), Loc: Device, Dev: d}
}

// Free releases a device buffer, charging the cudaFree cost.
func (d *GPUDevice) Free(clk *simtime.Clock, b *Buffer) {
	if b == nil || b.Loc != Device {
		return
	}
	clk.Advance(d.Spec.CudaFree)
	d.memUsed -= int64(len(b.Data))
	d.FreeCount++
	b.Data = nil
}

// NewHostBuffer wraps n bytes of host memory (no device cost).
func NewHostBuffer(n int) *Buffer {
	return &Buffer{Data: make([]byte, n), Loc: Host}
}

// HostBufferFrom wraps existing host bytes without copying.
func HostBufferFrom(data []byte) *Buffer {
	return &Buffer{Data: data, Loc: Host}
}

// MemcpyD2HSmall copies a few bytes (e.g. the compressed-size word) from
// device to host using cudaMemcpy, paying the ~20us driver/synchronization
// cost the paper profiles in Section IV-A.
func (d *GPUDevice) MemcpyD2HSmall(clk *simtime.Clock, dst, src []byte) {
	clk.Advance(d.Spec.MemcpyD2HSmall)
	copy(dst, src)
}

// GDRCopyD2HSmall is the low-latency GDRCopy alternative (1-5us) MPC-OPT
// switches to (Section IV-B, optimization 3).
func (d *GPUDevice) GDRCopyD2HSmall(clk *simtime.Clock, dst, src []byte) {
	clk.Advance(d.Spec.GDRCopySmall)
	copy(dst, src)
}

// MemcpyD2D copies device memory on a stream at device memory bandwidth
// (used by MPC-OPT's partition-combine step).
func (d *GPUDevice) MemcpyD2D(clk *simtime.Clock, s *Stream, dst, src []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	// A D2D copy reads and writes HBM: effective bandwidth is half peak.
	dur := simtime.TransferTime(n, d.Spec.MemBWGBps/2)
	d.launch(clk, s, dur)
	copy(dst, src[:n])
}

// KernelSpec describes one kernel launch for the cost model.
type KernelSpec struct {
	// Blocks is the number of thread blocks the kernel uses. MPC always
	// uses one block per SM; MPC-OPT's partitioning reduces this.
	Blocks int
	// Bytes of input the kernel processes.
	Bytes int
	// ThroughputGbps is the kernel's data throughput when enough blocks
	// are resident (Gb/s, as in Table III).
	ThroughputGbps float64
	// BusyWaitSync enables MPC's inter-block busy-wait synchronization
	// penalty, proportional to Blocks.
	BusyWaitSync bool
}

// KernelTime returns the modeled execution duration of spec on this GPU.
//
// Compression kernels are memory-bound: the paper observes that half the
// SMs already saturate throughput, so effective throughput scales linearly
// only below SMs/2 resident blocks. MPC's busy-wait inter-block
// synchronization adds a per-block cost, which is why decomposing one
// full-GPU kernel into several smaller concurrent kernels wins.
func (d *GPUDevice) KernelTime(spec KernelSpec) simtime.Duration {
	blocks := spec.Blocks
	if blocks < 1 {
		blocks = 1
	}
	half := d.Spec.SMs / 2
	eff := spec.ThroughputGbps
	if half > 0 && blocks < half {
		eff = spec.ThroughputGbps * float64(blocks) / float64(half)
	}
	dur := simtime.ThroughputTime(spec.Bytes, eff)
	if spec.BusyWaitSync {
		dur += simtime.Duration(blocks) * d.Spec.BlockSyncPerSM
	}
	return dur
}

// launch places dur of work on stream s, charging the CPU the kernel
// launch overhead. The CPU does not wait for the kernel (async).
func (d *GPUDevice) launch(clk *simtime.Clock, s *Stream, dur simtime.Duration) {
	clk.Advance(d.Spec.KernelLaunch)
	s.tl.Reserve(clk.Now(), dur)
}

// LaunchKernel enqueues a kernel described by spec on stream s.
func (d *GPUDevice) LaunchKernel(clk *simtime.Clock, s *Stream, spec KernelSpec) {
	d.launch(clk, s, d.KernelTime(spec))
}

// StreamSync blocks the CPU until all work on s completes
// (cudaStreamSynchronize).
func (d *GPUDevice) StreamSync(clk *simtime.Clock, s *Stream) {
	clk.AdvanceTo(s.tl.BusyUntil())
	clk.Advance(d.Spec.StreamSync)
}

// DeviceSync blocks the CPU until all streams complete
// (cudaDeviceSynchronize).
func (d *GPUDevice) DeviceSync(clk *simtime.Clock) {
	var last simtime.Time
	for _, s := range d.streams {
		if bu := s.tl.BusyUntil(); bu > last {
			last = bu
		}
	}
	clk.AdvanceTo(last)
	clk.Advance(d.Spec.StreamSync)
}

// GetDeviceProperties models cudaGetDeviceProperties: the ~1840us driver
// round trip ZFP's get_max_grid_dims pays per message before ZFP-OPT
// (Section V-A).
func (d *GPUDevice) GetDeviceProperties(clk *simtime.Clock) {
	clk.Advance(d.Spec.DevicePropsQuery)
}

// MaxGridDims returns the device's maximum grid dimensions. With ZFP-OPT's
// caching (Section V-B) the first call costs one cudaDeviceGetAttribute
// (~1us) and subsequent calls are free; without caching each call pays the
// full cudaGetDeviceProperties price.
func (d *GPUDevice) MaxGridDims(clk *simtime.Clock, cached bool) int {
	if cached {
		if !d.attrsCached {
			clk.Advance(d.Spec.AttributeQuery)
			d.attrsCached = true
		}
	} else {
		d.GetDeviceProperties(clk)
	}
	return 65535
}

// ResetAttributeCache clears the cached device attributes (used by tests).
func (d *GPUDevice) ResetAttributeCache() { d.attrsCached = false }

// ResetStreams clears all stream timelines (used between benchmark runs).
func (d *GPUDevice) ResetStreams() {
	for _, s := range d.streams {
		s.tl.Reset()
	}
}

// BufferPool is the pre-allocated device buffer pool of MPC-OPT
// (Section IV-B, optimizations 1 and 2): buffers are allocated once at
// initialization (MPI_Init) and reused, keeping cudaMalloc/cudaFree off
// the critical path. The pool grows on demand; growth pays the cudaMalloc
// price, so a warmed pool serves from free buffers at negligible cost.
type BufferPool struct {
	dev      *GPUDevice
	bufBytes int
	free     []*Buffer
	// Gets/Misses count accesses for tests and for the paper's
	// "dynamically increased on demand" behavior.
	Gets   int
	Misses int
}

// NewBufferPool creates a pool of n device buffers of bufBytes each,
// paying allocation cost against clk (initialization time, off the
// critical path).
//
// Simulated device memory is reserved up front (that is the point of the
// design), but the backing host memory of each buffer materializes lazily
// on first Get and grows only to the sizes actually used — so a large
// simulation whose ranks never compress costs the host nothing.
func NewBufferPool(clk *simtime.Clock, dev *GPUDevice, n, bufBytes int) *BufferPool {
	p := &BufferPool{dev: dev, bufBytes: bufBytes}
	for i := 0; i < n; i++ {
		cost := dev.Spec.CudaMallocBase + simtime.Duration(float64(dev.Spec.CudaMallocPerMB)*float64(bufBytes)/(1<<20))
		clk.Advance(cost)
		dev.memUsed += int64(bufBytes)
		dev.MallocCount++
		p.free = append(p.free, &Buffer{Loc: Device, Dev: dev, pooled: true})
	}
	return p
}

// BufBytes reports the fixed size of the pool's buffers.
func (p *BufferPool) BufBytes() int { return p.bufBytes }

// FreeCount reports how many buffers are currently available.
func (p *BufferPool) FreeCount() int { return len(p.free) }

// Get returns a pooled buffer of at least n bytes. If the pool is empty or
// n exceeds the pooled buffer size, it falls back to cudaMalloc (a miss).
// Pool hits cost a fixed sub-microsecond bookkeeping charge.
func (p *BufferPool) Get(clk *simtime.Clock, n int) *Buffer {
	p.Gets++
	if n <= p.bufBytes && len(p.free) > 0 {
		b := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		if len(b.Data) < n {
			// Materialize (or grow) the host backing lazily; the
			// simulated VRAM was reserved at pool construction, so
			// this costs no simulated time.
			b.Data = make([]byte, n)
		}
		clk.Advance(simtime.FromMicroseconds(0.2))
		return b
	}
	p.Misses++
	size := n
	if size < p.bufBytes {
		size = p.bufBytes
	}
	b := p.dev.Malloc(clk, size)
	b.pooled = true
	return b
}

// Put returns a buffer to the pool.
func (p *BufferPool) Put(b *Buffer) {
	if b == nil || !b.pooled {
		return
	}
	p.free = append(p.free, b)
}

// String summarizes pool state.
func (p *BufferPool) String() string {
	return fmt.Sprintf("pool{%d free x %d B, %d gets, %d misses}", len(p.free), p.bufBytes, p.Gets, p.Misses)
}
