package gpusim

import (
	"testing"

	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
)

func v100() hw.GPU { return hw.TeslaV100() }

func TestMallocCost(t *testing.T) {
	d := NewDevice(v100(), 1)
	clk := simtime.NewClock(0)
	b := d.Malloc(clk, 32<<20)
	// base 95us + 32 MB * 9us/MB = 383us.
	want := simtime.FromMicroseconds(95 + 32*9)
	if clk.Now() != simtime.Time(want) {
		t.Fatalf("malloc cost: got %v want %v", clk.Now(), want)
	}
	if b.Len() != 32<<20 || b.Loc != Device {
		t.Fatalf("buffer wrong: %d %v", b.Len(), b.Loc)
	}
	if d.MemUsed() != 32<<20 || d.MallocCount != 1 {
		t.Fatalf("accounting wrong: %d used, %d mallocs", d.MemUsed(), d.MallocCount)
	}
	d.Free(clk, b)
	if d.MemUsed() != 0 || d.FreeCount != 1 {
		t.Fatalf("free accounting wrong")
	}
}

func TestCopyCosts(t *testing.T) {
	d := NewDevice(v100(), 1)
	clk := simtime.NewClock(0)
	src := []byte{1, 2, 3, 4}
	dst := make([]byte, 4)
	d.MemcpyD2HSmall(clk, dst, src)
	if clk.Now() != simtime.Time(simtime.FromMicroseconds(20)) {
		t.Fatalf("cudaMemcpy small should cost 20us, got %v", clk.Now())
	}
	if dst[0] != 1 || dst[3] != 4 {
		t.Fatal("data not copied")
	}
	start := clk.Now()
	d.GDRCopyD2HSmall(clk, dst, src)
	if clk.Now().Sub(start) != simtime.FromMicroseconds(2) {
		t.Fatalf("GDRCopy should cost 2us, got %v", clk.Now().Sub(start))
	}
}

func TestKernelTimeMemoryBoundScaling(t *testing.T) {
	d := NewDevice(v100(), 1)
	full := d.KernelTime(KernelSpec{Blocks: 80, Bytes: 1 << 20, ThroughputGbps: 200})
	half := d.KernelTime(KernelSpec{Blocks: 40, Bytes: 1 << 20, ThroughputGbps: 200})
	quarter := d.KernelTime(KernelSpec{Blocks: 20, Bytes: 1 << 20, ThroughputGbps: 200})
	// The paper's observation: half the SMs achieve the same throughput
	// as the full GPU.
	if full != half {
		t.Fatalf("half SMs should match full throughput: %v vs %v", half, full)
	}
	// Below half, throughput scales down.
	if quarter <= half {
		t.Fatalf("quarter SMs should be slower: %v vs %v", quarter, half)
	}
}

func TestKernelBusyWaitPenalty(t *testing.T) {
	d := NewDevice(v100(), 1)
	without := d.KernelTime(KernelSpec{Blocks: 80, Bytes: 1 << 20, ThroughputGbps: 200})
	with := d.KernelTime(KernelSpec{Blocks: 80, Bytes: 1 << 20, ThroughputGbps: 200, BusyWaitSync: true})
	wantDelta := simtime.Duration(80) * d.Spec.BlockSyncPerSM
	if with-without != wantDelta {
		t.Fatalf("busy-wait penalty: got %v want %v", with-without, wantDelta)
	}
}

func TestAsyncKernelAndStreamSync(t *testing.T) {
	d := NewDevice(v100(), 2)
	clk := simtime.NewClock(0)
	spec := KernelSpec{Blocks: 80, Bytes: 8 << 20, ThroughputGbps: 200}
	kt := d.KernelTime(spec)
	d.LaunchKernel(clk, d.Stream(0), spec)
	// CPU only paid the launch overhead.
	if clk.Now() != simtime.Time(d.Spec.KernelLaunch) {
		t.Fatalf("launch should be async: clock %v", clk.Now())
	}
	d.StreamSync(clk, d.Stream(0))
	want := simtime.Time(d.Spec.KernelLaunch).Add(kt).Add(d.Spec.StreamSync)
	if clk.Now() != want {
		t.Fatalf("after sync: got %v want %v", clk.Now(), want)
	}
}

func TestMultiStreamOverlap(t *testing.T) {
	d := NewDevice(v100(), 4)
	clk := simtime.NewClock(0)
	spec := KernelSpec{Blocks: 20, Bytes: 4 << 20, ThroughputGbps: 200}
	for i := 0; i < 4; i++ {
		d.LaunchKernel(clk, d.Stream(i), spec)
	}
	d.DeviceSync(clk)
	// Four kernels on four streams overlap: total ≈ one kernel time
	// plus 4 launches, far less than 4 serialized kernels.
	serialized := 4 * d.KernelTime(spec)
	if clk.Now() >= simtime.Time(serialized) {
		t.Fatalf("streams failed to overlap: %v vs serialized %v", clk.Now(), serialized)
	}
	// Same-stream kernels serialize.
	clk2 := simtime.NewClock(0)
	d2 := NewDevice(v100(), 1)
	for i := 0; i < 4; i++ {
		d2.LaunchKernel(clk2, d2.Stream(0), spec)
	}
	d2.DeviceSync(clk2)
	if clk2.Now() < simtime.Time(4*d2.KernelTime(spec)) {
		t.Fatalf("same-stream kernels should serialize: %v", clk2.Now())
	}
}

func TestDevicePropertiesVsAttributeCache(t *testing.T) {
	d := NewDevice(v100(), 1)
	clk := simtime.NewClock(0)
	// Uncached path pays cudaGetDeviceProperties every call.
	d.MaxGridDims(clk, false)
	d.MaxGridDims(clk, false)
	want := 2 * d.Spec.DevicePropsQuery
	if clk.Now() != simtime.Time(want) {
		t.Fatalf("uncached: got %v want %v", clk.Now(), want)
	}
	// Cached path pays one cudaDeviceGetAttribute total.
	d.ResetAttributeCache()
	clk2 := simtime.NewClock(0)
	for i := 0; i < 100; i++ {
		d.MaxGridDims(clk2, true)
	}
	if clk2.Now() != simtime.Time(d.Spec.AttributeQuery) {
		t.Fatalf("cached: got %v want %v", clk2.Now(), d.Spec.AttributeQuery)
	}
}

func TestMemcpyD2DMovesData(t *testing.T) {
	d := NewDevice(v100(), 1)
	clk := simtime.NewClock(0)
	src := []byte{9, 8, 7}
	dst := make([]byte, 3)
	d.MemcpyD2D(clk, d.Stream(0), dst, src)
	d.StreamSync(clk, d.Stream(0))
	if dst[0] != 9 || dst[2] != 7 {
		t.Fatal("D2D copy lost data")
	}
	if clk.Now() == 0 {
		t.Fatal("D2D copy should take time")
	}
}

func TestBufferPoolHitAvoidsMalloc(t *testing.T) {
	d := NewDevice(v100(), 1)
	init := simtime.NewClock(0)
	p := NewBufferPool(init, d, 4, 1<<20)
	if d.MallocCount != 4 {
		t.Fatalf("pool should preallocate 4 buffers, got %d mallocs", d.MallocCount)
	}
	clk := simtime.NewClock(0)
	b := p.Get(clk, 512<<10)
	if d.MallocCount != 4 {
		t.Fatal("pool hit must not malloc")
	}
	if clk.Now() >= simtime.Time(simtime.FromMicroseconds(1)) {
		t.Fatalf("pool hit should be sub-microsecond, got %v", clk.Now())
	}
	p.Put(b)
	if p.FreeCount() != 4 {
		t.Fatalf("put should return buffer: %d free", p.FreeCount())
	}
}

func TestBufferPoolGrowsOnDemand(t *testing.T) {
	d := NewDevice(v100(), 1)
	init := simtime.NewClock(0)
	p := NewBufferPool(init, d, 1, 1<<20)
	clk := simtime.NewClock(0)
	b1 := p.Get(clk, 100)
	b2 := p.Get(clk, 100) // pool exhausted -> malloc
	if p.Misses != 1 {
		t.Fatalf("expected 1 miss, got %d", p.Misses)
	}
	if d.MallocCount != 2 {
		t.Fatalf("expected 2 mallocs total, got %d", d.MallocCount)
	}
	p.Put(b1)
	p.Put(b2)
	if p.FreeCount() != 2 {
		t.Fatalf("pool should now hold 2 buffers, got %d", p.FreeCount())
	}
	// Oversized request also mallocs.
	b3 := p.Get(clk, 4<<20)
	if p.Misses != 2 || b3.Len() != 4<<20 {
		t.Fatalf("oversized get should miss: misses=%d len=%d", p.Misses, b3.Len())
	}
}

func TestSliceSharesMemory(t *testing.T) {
	b := NewHostBuffer(16)
	v := b.Slice(4, 8)
	v.Data[0] = 42
	if b.Data[4] != 42 {
		t.Fatal("slice must alias parent memory")
	}
	if v.Len() != 8 {
		t.Fatalf("slice length: %d", v.Len())
	}
}

func TestHostBufferFrom(t *testing.T) {
	raw := []byte{1, 2, 3}
	b := HostBufferFrom(raw)
	if b.Loc != Host || &b.Data[0] != &raw[0] {
		t.Fatal("HostBufferFrom must wrap without copying")
	}
	if b.Float32Len() != 0 {
		t.Fatalf("3 bytes = 0 float32s, got %d", b.Float32Len())
	}
}

func TestLocationString(t *testing.T) {
	if Host.String() != "host" || Device.String() != "device" {
		t.Fatal("Location.String wrong")
	}
}

func TestStreamGrowthAndIDs(t *testing.T) {
	d := NewDevice(v100(), 2)
	if d.NumStreams() != 2 {
		t.Fatalf("initial streams: %d", d.NumStreams())
	}
	s5 := d.Stream(5) // grows on demand
	if s5.ID() != 5 || d.NumStreams() != 6 {
		t.Fatalf("growth wrong: id=%d n=%d", s5.ID(), d.NumStreams())
	}
	if d.Stream(0).ID() != 0 {
		t.Fatal("stream 0 id wrong")
	}
	// Zero streams clamps to one.
	if NewDevice(v100(), 0).NumStreams() != 1 {
		t.Fatal("minimum one stream")
	}
}

func TestResetStreams(t *testing.T) {
	d := NewDevice(v100(), 1)
	clk := simtime.NewClock(0)
	d.LaunchKernel(clk, d.Stream(0), KernelSpec{Blocks: 80, Bytes: 8 << 20, ThroughputGbps: 200})
	d.ResetStreams()
	clk2 := simtime.NewClock(0)
	d.StreamSync(clk2, d.Stream(0))
	if clk2.Now() > simtime.Time(d.Spec.StreamSync) {
		t.Fatalf("reset should clear stream work: %v", clk2.Now())
	}
}

func TestPoolMiscellany(t *testing.T) {
	d := NewDevice(v100(), 1)
	p := NewBufferPool(simtime.NewClock(0), d, 2, 4096)
	if p.BufBytes() != 4096 {
		t.Fatalf("BufBytes: %d", p.BufBytes())
	}
	if p.String() == "" {
		t.Fatal("String empty")
	}
	// Put of nil and non-pooled buffers is a no-op.
	p.Put(nil)
	p.Put(NewHostBuffer(4096))
	if p.FreeCount() != 2 {
		t.Fatalf("stray puts should be ignored: %d", p.FreeCount())
	}
	// Undersized pooled buffers are fine: Get grows them lazily.
	b := &Buffer{Data: make([]byte, 10), pooled: true}
	p.Put(b)
	clk := simtime.NewClock(0)
	got := p.Get(clk, 2048)
	if got.Len() < 2048 {
		t.Fatalf("Get should grow lazily: %d", got.Len())
	}
}

func TestPoolLazyMaterialization(t *testing.T) {
	d := NewDevice(v100(), 1)
	p := NewBufferPool(simtime.NewClock(0), d, 4, 32<<20)
	// Simulated VRAM is reserved up front...
	if d.MemUsed() != 4*32<<20 {
		t.Fatalf("VRAM should be reserved: %d", d.MemUsed())
	}
	// ...but no host memory is committed until a Get asks for it.
	for _, b := range p.free {
		if b.Data != nil {
			t.Fatal("pool buffers must materialize lazily")
		}
	}
	clk := simtime.NewClock(0)
	b := p.Get(clk, 1<<20)
	if b.Len() != 1<<20 {
		t.Fatalf("Get should materialize exactly the requested size: %d", b.Len())
	}
}

func TestFreeHostBufferNoop(t *testing.T) {
	d := NewDevice(v100(), 1)
	clk := simtime.NewClock(0)
	d.Free(clk, NewHostBuffer(10)) // host buffer: no device accounting
	d.Free(clk, nil)
	if clk.Now() != 0 || d.FreeCount != 0 {
		t.Fatal("freeing host/nil buffers must be free")
	}
}
