// Package codecpool runs host-side codec work — MPC partition
// compression, ZFP block rows, per-hop decompress work in collectives —
// across a pool of worker goroutines with per-worker reusable scratch
// arenas.
//
// The simulation models the paper's multi-stream kernel decomposition in
// *virtual* time (package gpusim charges concurrent kernels to overlapping
// stream timelines), but until this package existed the *real* codec work
// backing those kernels ran serially on one goroutine, so wall-clock was
// bottlenecked on a single core. The pool executes the real work of
// already-independent units (MPC partitions, ZFP blocks) concurrently,
// exactly as FZ-GPU and cuSZ+ execute chunk-parallel (de)compression with
// preallocated workspaces. It is a wall-clock optimization only: callers
// keep all virtual-clock accounting on their own goroutine, and outputs
// are bit-identical for any pool size because every part writes to state
// it alone owns, at a position that depends only on the input.
//
// Invariants the engine relies on:
//
//   - Run(n, job) executes job.RunPart(i, scratch) exactly once for every
//     i in [0, n), with no ordering guarantee, and returns after all parts
//     finish.
//   - A part may use its *Scratch freely during RunPart but must not
//     retain it: the same arena is handed to whatever part the worker
//     executes next.
//   - Run performs no heap allocations, so steady-state compression over
//     a warmed pool allocates nothing.
//   - Jobs must not call back into the pool (Run does not nest).
package codecpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Scratch is one worker's reusable arena. Buffers grow to the high-water
// mark of the work they serve and are then reused allocation-free; the
// contents are garbage on entry to every part.
type Scratch struct {
	words  []uint32
	floats []float32
	bytes  []byte
}

// Words returns a length-n uint32 buffer, reusing capacity when possible.
func (s *Scratch) Words(n int) []uint32 {
	if cap(s.words) < n {
		s.words = make([]uint32, n)
	}
	s.words = s.words[:n]
	return s.words
}

// Floats returns a length-n float32 buffer, reusing capacity when possible.
func (s *Scratch) Floats(n int) []float32 {
	if cap(s.floats) < n {
		s.floats = make([]float32, n)
	}
	s.floats = s.floats[:n]
	return s.floats
}

// Bytes returns a length-n byte buffer, reusing capacity when possible.
func (s *Scratch) Bytes(n int) []byte {
	if cap(s.bytes) < n {
		s.bytes = make([]byte, n)
	}
	s.bytes = s.bytes[:n]
	return s.bytes
}

// Job is one parallelizable codec operation, split into independent parts.
// RunPart(i, s) must touch only state owned by part i (plus the worker
// scratch); that is what makes outputs independent of scheduling.
//
// Hot paths keep a persistent Job value (a pointer to a reused struct) so
// that submitting work allocates nothing; building a fresh closure per
// message would put an allocation back on every send.
type Job interface {
	RunPart(part int, s *Scratch)
}

// JobFunc adapts a function to Job. Note that a closure capturing
// per-message state generally heap-allocates; use persistent Job structs
// on allocation-sensitive paths.
type JobFunc func(part int, s *Scratch)

// RunPart implements Job.
func (f JobFunc) RunPart(part int, s *Scratch) { f(part, s) }

// Pool is a fixed set of worker goroutines, each owning a Scratch.
// Concurrent Run calls from different engines serialize on an internal
// mutex: each Run already fans its parts across every worker, so
// admitting one batch at a time preserves total throughput while keeping
// Run allocation-free (the batch state is pool-owned and reused).
type Pool struct {
	scratches []*Scratch
	wake      chan struct{}

	runMu  sync.Mutex // one batch at a time; protects cur/n
	cur    Job
	n      int32
	next   atomic.Int32
	wg     sync.WaitGroup
	inline Scratch // used when a batch runs on the caller's goroutine
}

// New creates a pool with the given number of workers; workers <= 0
// selects GOMAXPROCS. A one-worker pool executes every batch inline on
// the caller's goroutine — the serial reference path.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{wake: make(chan struct{}, workers)}
	for i := 0; i < workers; i++ {
		s := &Scratch{}
		p.scratches = append(p.scratches, s)
		go p.worker(s)
	}
	return p
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool, sized to GOMAXPROCS at first use.
// Engines default to it so that many simulated ranks on one host share
// one set of workers instead of oversubscribing the machine.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = New(0) })
	return sharedPool
}

var (
	sizedMu sync.Mutex
	sized   = map[int]*Pool{}
)

// Sized returns a process-wide pool with exactly the given worker count,
// creating it on first use; workers <= 0 returns Shared. Engines
// configured with an explicit worker count share one pool per count
// instead of spawning goroutines per engine (many simulated ranks are
// built and torn down over a test run; pools are never torn down).
func Sized(workers int) *Pool {
	if workers <= 0 {
		return Shared()
	}
	sizedMu.Lock()
	defer sizedMu.Unlock()
	if p := sized[workers]; p != nil {
		return p
	}
	p := New(workers)
	sized[workers] = p
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return len(p.scratches) }

func (p *Pool) worker(s *Scratch) {
	for range p.wake {
		// cur and n are stable for the whole batch: they were stored
		// before the wake-up send (channel happens-before) and are not
		// touched again until after wg.Wait returns.
		job, n := p.cur, p.n
		for {
			i := p.next.Add(1) - 1
			if i >= n {
				break
			}
			job.RunPart(int(i), s)
		}
		p.wg.Done()
	}
}

// Run executes job's n parts across the workers and returns when all have
// finished. Batches of one part, and every batch on a one-worker pool,
// run inline on the caller's goroutine (no handoff latency). Run must not
// be called from within a RunPart.
func (p *Pool) Run(n int, job Job) {
	if n <= 0 {
		return
	}
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if n == 1 || len(p.scratches) == 1 {
		for i := 0; i < n; i++ {
			job.RunPart(i, &p.inline)
		}
		return
	}
	p.cur = job
	p.n = int32(n)
	p.next.Store(0)
	k := len(p.scratches)
	if n < k {
		k = n
	}
	p.wg.Add(k)
	for i := 0; i < k; i++ {
		p.wake <- struct{}{}
	}
	p.wg.Wait()
	p.cur = nil
}
