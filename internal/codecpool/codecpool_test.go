package codecpool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// countJob records which parts ran and how often.
type countJob struct {
	hits []atomic.Int32
}

func (j *countJob) RunPart(i int, s *Scratch) { j.hits[i].Add(1) }

func TestRunExecutesEveryPartOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			p := New(workers)
			j := &countJob{hits: make([]atomic.Int32, n)}
			p.Run(n, j)
			for i := range j.hits {
				if got := j.hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: part %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// sumJob writes a deterministic value into a disjoint slot per part.
type sumJob struct {
	out []int
}

func (j *sumJob) RunPart(i int, s *Scratch) {
	w := s.Words(64)
	for k := range w {
		w[k] = uint32(i + k)
	}
	total := 0
	for _, v := range w {
		total += int(v)
	}
	j.out[i] = total
}

// TestDeterministicAcrossPoolSizes runs the same job on pools of size
// 1, 2 and 8 and requires identical results: parts own disjoint output
// slots, so scheduling cannot perturb the outcome.
func TestDeterministicAcrossPoolSizes(t *testing.T) {
	const n = 137
	var ref []int
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		j := &sumJob{out: make([]int, n)}
		p.Run(n, j)
		if ref == nil {
			ref = j.out
			continue
		}
		for i := range ref {
			if ref[i] != j.out[i] {
				t.Fatalf("workers=%d: part %d = %d, serial = %d", workers, i, j.out[i], ref[i])
			}
		}
	}
}

func TestScratchReuse(t *testing.T) {
	var s Scratch
	a := s.Words(100)
	b := s.Words(50)
	if &a[0] != &b[0] {
		t.Fatal("Words did not reuse capacity")
	}
	if len(b) != 50 {
		t.Fatalf("Words(50) has len %d", len(b))
	}
	f := s.Floats(10)
	g := s.Floats(10)
	if &f[0] != &g[0] {
		t.Fatal("Floats did not reuse capacity")
	}
	x := s.Bytes(8)
	y := s.Bytes(4)
	if &x[0] != &y[0] {
		t.Fatal("Bytes did not reuse capacity")
	}
}

// TestRunZeroAlloc asserts the steady-state guarantee the engine builds
// on: after warm-up, submitting a batch allocates nothing.
func TestRunZeroAlloc(t *testing.T) {
	p := New(4)
	j := &sumJob{out: make([]int, 16)}
	p.Run(16, j) // warm worker scratches
	allocs := testing.AllocsPerRun(50, func() {
		p.Run(16, j)
	})
	if allocs != 0 {
		t.Fatalf("Run allocated %.1f objects per batch, want 0", allocs)
	}
}

// TestConcurrentRuns hammers one pool from many goroutines (the shape of
// several ranks compressing at once); correctness under -race is the
// point.
func TestConcurrentRuns(t *testing.T) {
	p := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				j := &sumJob{out: make([]int, 33)}
				p.Run(33, j)
				for i, v := range j.out {
					want := 0
					for k := 0; k < 64; k++ {
						want += i + k
					}
					if v != want {
						t.Errorf("goroutine %d iter %d part %d: got %d want %d", g, iter, i, v, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSharedPoolSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared returned different pools")
	}
	if Shared().Workers() < 1 {
		t.Fatal("shared pool has no workers")
	}
}

func TestJobFunc(t *testing.T) {
	p := New(2)
	var hits [8]atomic.Int32
	p.Run(8, JobFunc(func(i int, s *Scratch) { hits[i].Add(1) }))
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("part %d ran %d times", i, hits[i].Load())
		}
	}
}
