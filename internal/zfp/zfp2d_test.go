package zfp

import (
	"math"
	"math/rand"
	"testing"
)

// field2D builds a smooth 2-D field (sum of plane waves).
func field2D(nx, ny int) []float32 {
	out := make([]float32, nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			out[y*nx+x] = float32(math.Sin(float64(x)*0.05) + math.Cos(float64(y)*0.07))
		}
	}
	return out
}

func TestCompressedSize2DExact(t *testing.T) {
	cases := []struct{ nx, ny, rate, want int }{
		{4, 4, 16, 32},     // 1 block x 256 bits
		{8, 8, 16, 128},    // 4 blocks
		{5, 5, 16, 4 * 32}, // 2x2 blocks with padding
		{4, 4, 1, 2},       // 16 bits
		{0, 0, 8, 0},
	}
	for _, c := range cases {
		got, err := CompressedSize2D(c.nx, c.ny, c.rate)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("CompressedSize2D(%d,%d,%d)=%d want %d", c.nx, c.ny, c.rate, got, c.want)
		}
	}
	if _, err := CompressedSize2D(-1, 4, 8); err == nil {
		t.Fatal("negative dims should fail")
	}
}

func TestRoundTrip2DAccuracy(t *testing.T) {
	for _, dims := range [][2]int{{64, 64}, {61, 47}, {4, 4}, {128, 32}} {
		nx, ny := dims[0], dims[1]
		src := field2D(nx, ny)
		comp, err := Compress2D(nil, src, nx, ny, 16)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := CompressedSize2D(nx, ny, 16)
		if len(comp) != want {
			t.Fatalf("%dx%d: size %d want %d", nx, ny, len(comp), want)
		}
		got, err := Decompress2D(nil, comp, nx, ny, 16)
		if err != nil {
			t.Fatal(err)
		}
		var maxErr float64
		for i := range src {
			if e := math.Abs(float64(got[i] - src[i])); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 1e-3 {
			t.Fatalf("%dx%d: max error %g", nx, ny, maxErr)
		}
	}
}

func TestRoundTrip2DErrorDecreasesWithRate(t *testing.T) {
	src := field2D(64, 64)
	prev := math.Inf(1)
	for _, rate := range []int{2, 4, 8, 16, 24} {
		comp, _ := Compress2D(nil, src, 64, 64, rate)
		got, _ := Decompress2D(nil, comp, 64, 64, rate)
		var e float64
		for i := range src {
			if d := math.Abs(float64(got[i] - src[i])); d > e {
				e = d
			}
		}
		if e > prev*1.2 {
			t.Fatalf("rate %d error %g regressed vs %g", rate, e, prev)
		}
		prev = e
	}
}

func Test2DBeats1DOnSmoothFields(t *testing.T) {
	// At the same (low) rate, exploiting both axes gives lower error than
	// treating the field as a 1-D stream — the reason multidimensional
	// support matters (Table I).
	const nx, ny, rate = 64, 64, 6
	src := field2D(nx, ny)
	c2, err := Compress2D(nil, src, nx, ny, rate)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Decompress2D(nil, c2, nx, ny, rate)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Compress(nil, src, rate)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Decompress(nil, c1, len(src), rate)
	if err != nil {
		t.Fatal(err)
	}
	var e1, e2 float64
	for i := range src {
		if d := math.Abs(float64(g1[i] - src[i])); d > e1 {
			e1 = d
		}
		if d := math.Abs(float64(g2[i] - src[i])); d > e2 {
			e2 = d
		}
	}
	if e2 >= e1 {
		t.Fatalf("2-D (err %g) should beat 1-D (err %g) at rate %d", e2, e1, rate)
	}
}

func TestLift2DInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		var b, orig [16]int32
		for i := range b {
			b[i] = int32(rng.Uint32()) >> 2
		}
		orig = b
		fwdLift2D(&b)
		invLift2D(&b)
		for i := range b {
			d := int64(orig[i]) - int64(b[i])
			if d < -64 || d > 64 {
				t.Fatalf("2-D lift pair diverges at %d: %d", i, d)
			}
		}
	}
}

func TestCompress2DValidation(t *testing.T) {
	if _, err := Compress2D(nil, make([]float32, 10), 3, 4, 8); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	if _, err := Compress2D(nil, nil, 0, 0, 99); err == nil {
		t.Fatal("bad rate should fail")
	}
	if _, err := Decompress2D(nil, []byte{1}, 8, 8, 16); err == nil {
		t.Fatal("short buffer should fail")
	}
}
