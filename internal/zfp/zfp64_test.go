package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smooth64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := 1.0
	for i := range out {
		v += rng.NormFloat64() * 0.01
		out[i] = v
	}
	return out
}

func TestCompressedSize64Exact(t *testing.T) {
	cases := []struct{ n, rate, want int }{
		{0, 16, 0},
		{4, 16, 8},  // 1 block x 64 bits
		{5, 32, 32}, // 2 blocks x 128 bits
		{1024, 8, 1024},
		{1024, 64, 8192},
	}
	for _, c := range cases {
		got, err := CompressedSize64(c.n, c.rate)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("CompressedSize64(%d,%d)=%d want %d", c.n, c.rate, got, c.want)
		}
	}
}

func TestCompress64MatchesSize(t *testing.T) {
	for _, rate := range []int{4, 8, 16, 32, 64} {
		for _, n := range []int{0, 1, 5, 100, 1023} {
			src := smooth64(n, int64(n+rate))
			comp, err := Compress64(nil, src, rate)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := CompressedSize64(n, rate)
			if len(comp) != want {
				t.Fatalf("n=%d rate=%d: len=%d want %d", n, rate, len(comp), want)
			}
		}
	}
}

func TestRate32Float64Error(t *testing.T) {
	src := smooth64(4096, 3)
	comp, err := Compress64(nil, src, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress64(nil, comp, len(src), 32)
	if err != nil {
		t.Fatal(err)
	}
	var maxRel float64
	for i := range src {
		rel := math.Abs(got[i]-src[i]) / math.Abs(src[i])
		if rel > maxRel {
			maxRel = rel
		}
	}
	// 32 bits/value on doubles ~ rate 16 on floats: small relative error.
	if maxRel > 1e-6 {
		t.Fatalf("rate 32 relative error too large: %g", maxRel)
	}
}

func TestFloat64ErrorDecreasesWithRate(t *testing.T) {
	src := smooth64(2048, 9)
	prev := math.Inf(1)
	for _, rate := range []int{8, 16, 32, 64} {
		comp, _ := Compress64(nil, src, rate)
		got, _ := Decompress64(nil, comp, len(src), rate)
		var e float64
		for i := range src {
			if d := math.Abs(got[i] - src[i]); d > e {
				e = d
			}
		}
		if e > prev*1.2 {
			t.Fatalf("error at rate %d (%g) regressed vs previous (%g)", rate, e, prev)
		}
		prev = e
	}
	if prev > 1e-12 {
		t.Fatalf("rate 64 should be near-lossless, max err %g", prev)
	}
}

func TestZeroBlocks64(t *testing.T) {
	src := make([]float64, 64)
	comp, _ := Compress64(nil, src, 8)
	got, _ := Decompress64(nil, comp, len(src), 8)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("zero block corrupted at %d: %v", i, v)
		}
	}
}

func TestBadRate64(t *testing.T) {
	if _, err := Compress64(nil, []float64{1}, 2); err == nil {
		t.Fatal("rate 2 should fail for doubles")
	}
	if _, err := Compress64(nil, []float64{1}, 65); err == nil {
		t.Fatal("rate 65 should fail")
	}
	if _, err := Decompress64(nil, nil, 4, 8); err == nil {
		t.Fatal("short buffer should fail")
	}
	if Ratio64(16) != 4 || Ratio64(32) != 2 {
		t.Fatal("Ratio64 wrong")
	}
}

func TestLift64Inverse(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		in := [4]int64{a >> 2, b >> 2, c >> 2, d >> 2}
		blk := in
		fwdLift64(&blk)
		invLift64(&blk)
		for i := range in {
			diff := in[i] - blk[i]
			if diff < -8 || diff > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNegabinary64Inverse(t *testing.T) {
	f := func(v int64) bool { return nb2int64(int2nb64(v)) == v }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: block-relative error bounded at rate 32 for finite doubles.
func TestBlock64ErrorBoundProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			if v != 0 && math.Abs(v) < 1e-300 {
				return true // denormal-tiny rounds to zero by design
			}
		}
		src := []float64{a, b, c, d}
		comp, err := Compress64(nil, src, 32)
		if err != nil {
			return false
		}
		got, err := Decompress64(nil, comp, 4, 32)
		if err != nil {
			return false
		}
		var blockMax, blockErr float64
		for i := range src {
			if m := math.Abs(src[i]); m > blockMax {
				blockMax = m
			}
			if e := math.Abs(src[i] - got[i]); e > blockErr {
				blockErr = e
			}
		}
		if blockMax == 0 {
			return blockErr == 0
		}
		return blockErr/blockMax <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
