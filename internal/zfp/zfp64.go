package zfp

import (
	"errors"
	"fmt"
	"math"

	"mpicomp/internal/bitstream"
)

// Double-precision fixed-rate ZFP (1-D). The pipeline matches the float32
// path with the double-precision parameters of the zfp format: 64-bit
// block integers (Q3.60), an 11-bit exponent plus marker bit, and 64 bit
// planes.

const (
	ebits64   = 12   // 11 exponent bits + 1 marker bit
	ebias64   = 1023 // float64 exponent bias
	intprec64 = 64
)

const nbmask64 uint64 = 0xaaaaaaaaaaaaaaaa

// MinRate64 is the smallest double-precision rate: a block must hold its
// 12-bit exponent field within 4*rate bits.
const MinRate64 = 4

// MaxRate64 caps the double-precision rate at full precision.
const MaxRate64 = 64

// ErrBadRate64 reports a double-precision rate outside the valid range.
var ErrBadRate64 = errors.New("zfp: float64 rate out of range")

func checkRate64(rate int) error {
	if rate < MinRate64 || rate > MaxRate64 {
		return fmt.Errorf("%w: %d (want %d..%d)", ErrBadRate64, rate, MinRate64, MaxRate64)
	}
	return nil
}

// CompressedSize64 returns the exact compressed size in bytes of n float64
// values at the given rate.
func CompressedSize64(n, rate int) (int, error) {
	if err := checkRate64(rate); err != nil {
		return 0, err
	}
	blocks := (n + BlockValues - 1) / BlockValues
	bits := uint64(blocks) * uint64(BlockValues*rate)
	return int((bits + 7) / 8), nil
}

// Ratio64 returns the fixed double-precision compression ratio.
func Ratio64(rate int) float64 { return 64.0 / float64(rate) }

func fwdLift64(p *[4]int64) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0], p[1], p[2], p[3] = x, y, z, w
}

func invLift64(p *[4]int64) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0], p[1], p[2], p[3] = x, y, z, w
}

func int2nb64(v int64) uint64 { return (uint64(v) + nbmask64) ^ nbmask64 }
func nb2int64(v uint64) int64 { return int64((v ^ nbmask64) - nbmask64) }
func exponent64(f float64) int {
	if f == 0 {
		return -ebias64
	}
	_, e := math.Frexp(f)
	return e
}

func blockExponent64(b *[4]float64) int {
	emax := -ebias64
	for _, f := range b {
		if f != 0 {
			if e := exponent64(math.Abs(f)); e > emax {
				emax = e
			}
		}
	}
	return emax
}

func fwdCast64(dst *[4]int64, src *[4]float64, emax int) {
	scale := math.Ldexp(1, intprec64-2-emax)
	for i, f := range src {
		dst[i] = int64(f * scale)
	}
}

func invCast64(dst *[4]float64, src *[4]int64, emax int) {
	scale := math.Ldexp(1, emax-(intprec64-2))
	for i, v := range src {
		f := float64(v) * scale
		if f > math.MaxFloat64 {
			f = math.MaxFloat64
		} else if f < -math.MaxFloat64 {
			f = -math.MaxFloat64
		}
		dst[i] = f
	}
}

// encodeInts64 is the embedded group-testing coder over 64 bit planes.
func encodeInts64(w *bitstream.Writer, maxbits uint, data *[4]uint64) uint {
	const size = BlockValues
	bits := maxbits
	n := uint(0)
	for k := intprec64; bits != 0 && k > 0; {
		k--
		var x uint64
		for i := 0; i < size; i++ {
			x += ((data[i] >> uint(k)) & 1) << uint(i)
		}
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		x = w.WriteBits(x, m)
		for n < size && bits != 0 {
			bits--
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 && bits != 0 {
				bits--
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
	return maxbits - bits
}

func decodeInts64(r *bitstream.Reader, maxbits uint, data *[4]uint64) {
	const size = BlockValues
	for i := range data {
		data[i] = 0
	}
	bits := maxbits
	n := uint(0)
	for k := intprec64; bits != 0 && k > 0; {
		k--
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		x := r.ReadBits(m)
		for n < size && bits != 0 {
			bits--
			if r.ReadBit() == 0 {
				break
			}
			for n < size-1 && bits != 0 {
				bits--
				if r.ReadBit() != 0 {
					break
				}
				n++
			}
			x += uint64(1) << n
			n++
		}
		for i := 0; x != 0; i, x = i+1, x>>1 {
			data[i] += (x & 1) << uint(k)
		}
	}
}

func encodeBlock64(w *bitstream.Writer, maxbits uint, block *[4]float64) {
	startBits := w.BitLen()
	emax := blockExponent64(block)
	if emax+ebias64 < 1 {
		w.WriteBit(0)
	} else {
		e := uint64(emax + ebias64)
		w.WriteBits(2*e+1, ebits64)
		var iblock [4]int64
		fwdCast64(&iblock, block, emax)
		fwdLift64(&iblock)
		var ublock [4]uint64
		for i, v := range iblock {
			ublock[i] = int2nb64(v)
		}
		encodeInts64(w, maxbits-ebits64, &ublock)
	}
	w.PadToBit(startBits + uint64(maxbits))
}

func decodeBlock64(r *bitstream.Reader, maxbits uint, block *[4]float64) {
	startBits := r.BitPos()
	if r.ReadBit() == 0 {
		for i := range block {
			block[i] = 0
		}
	} else {
		e := r.ReadBits(ebits64 - 1) // (2e+1)>>1
		emax := int(e) - ebias64
		var ublock [4]uint64
		decodeInts64(r, maxbits-ebits64, &ublock)
		var iblock [4]int64
		for i, v := range ublock {
			iblock[i] = nb2int64(v)
		}
		invLift64(&iblock)
		invCast64(block, &iblock, emax)
	}
	r.SkipToBit(startBits + uint64(maxbits))
}

// Compress64 compresses double-precision data at the given fixed rate
// (bits per value), appending to dst.
func Compress64(dst []byte, src []float64, rate int) ([]byte, error) {
	if err := checkRate64(rate); err != nil {
		return dst, err
	}
	maxbits := uint(BlockValues * rate)
	w := bitstream.NewWriter()
	var block [4]float64
	n := len(src)
	for base := 0; base < n; base += BlockValues {
		for i := 0; i < BlockValues; i++ {
			if base+i < n {
				block[i] = src[base+i]
			} else if base+i > 0 {
				block[i] = block[i-1]
			} else {
				block[i] = 0
			}
		}
		encodeBlock64(w, maxbits, &block)
	}
	return append(dst, w.Bytes()...), nil
}

// Decompress64 reconstructs exactly n float64 values from comp.
func Decompress64(dst []float64, comp []byte, n, rate int) ([]float64, error) {
	if err := checkRate64(rate); err != nil {
		return dst, err
	}
	want, _ := CompressedSize64(n, rate)
	if len(comp) < want {
		return dst, fmt.Errorf("%w: have %d bytes, want %d", ErrShortBuffer, len(comp), want)
	}
	maxbits := uint(BlockValues * rate)
	r := bitstream.NewReader(comp)
	var block [4]float64
	for base := 0; base < n; base += BlockValues {
		decodeBlock64(r, maxbits, &block)
		for i := 0; i < BlockValues && base+i < n; i++ {
			dst = append(dst, block[i])
		}
	}
	return dst, nil
}
