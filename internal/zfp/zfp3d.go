package zfp

import (
	"fmt"
	"math"

	"mpicomp/internal/bitstream"
)

// Three-dimensional fixed-rate ZFP (float32): 4x4x4 = 64-value blocks
// with the separable lifting transform applied along x, then y, then z.
// This is the natural mode for volumetric fields like the AWP-ODC wave
// state; the paper's integration uses the 1-D mode, so 3-D is an
// extension for completeness of the format.

// Block3DValues is the number of values per 3-D block (4^3).
const Block3DValues = 64

// MinRate3D is the smallest 3-D rate (the exponent field always fits).
const MinRate3D = 1

func checkRate3D(rate int) error {
	if rate < MinRate3D || rate > MaxRate {
		return fmt.Errorf("%w: %d (want %d..%d)", ErrBadRate, rate, MinRate3D, MaxRate)
	}
	return nil
}

// CompressedSize3D returns the exact compressed size in bytes of an
// nx-by-ny-by-nz float32 volume at the given rate.
func CompressedSize3D(nx, ny, nz, rate int) (int, error) {
	if err := checkRate3D(rate); err != nil {
		return 0, err
	}
	if nx < 0 || ny < 0 || nz < 0 {
		return 0, fmt.Errorf("zfp: negative dimensions %dx%dx%d", nx, ny, nz)
	}
	bx := (nx + 3) / 4
	by := (ny + 3) / 4
	bz := (nz + 3) / 4
	bits := uint64(bx) * uint64(by) * uint64(bz) * uint64(Block3DValues*rate)
	return int((bits + 7) / 8), nil
}

// fwdLift3D applies the 4-point transform along all three axes of a
// 4x4x4 block stored x-fastest.
func fwdLift3D(b *[64]int32) {
	var v [4]int32
	// X lines.
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			base := 16*z + 4*y
			copy(v[:], b[base:base+4])
			fwdLift(&v)
			copy(b[base:base+4], v[:])
		}
	}
	// Y lines.
	for z := 0; z < 4; z++ {
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				v[y] = b[16*z+4*y+x]
			}
			fwdLift(&v)
			for y := 0; y < 4; y++ {
				b[16*z+4*y+x] = v[y]
			}
		}
	}
	// Z lines.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			for z := 0; z < 4; z++ {
				v[z] = b[16*z+4*y+x]
			}
			fwdLift(&v)
			for z := 0; z < 4; z++ {
				b[16*z+4*y+x] = v[z]
			}
		}
	}
}

// invLift3D inverts fwdLift3D (z, then y, then x).
func invLift3D(b *[64]int32) {
	var v [4]int32
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			for z := 0; z < 4; z++ {
				v[z] = b[16*z+4*y+x]
			}
			invLift(&v)
			for z := 0; z < 4; z++ {
				b[16*z+4*y+x] = v[z]
			}
		}
	}
	for z := 0; z < 4; z++ {
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				v[y] = b[16*z+4*y+x]
			}
			invLift(&v)
			for y := 0; y < 4; y++ {
				b[16*z+4*y+x] = v[y]
			}
		}
	}
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			base := 16*z + 4*y
			copy(v[:], b[base:base+4])
			invLift(&v)
			copy(b[base:base+4], v[:])
		}
	}
}

// encodeInts64Planes is the group-testing coder over 64-value planes
// (plane words are 64 bits wide here).
func encodeInts64Planes(w *bitstream.Writer, maxbits uint, data *[64]uint32) uint {
	const size = Block3DValues
	bits := maxbits
	n := uint(0)
	for k := intprec; bits != 0 && k > 0; {
		k--
		var x uint64
		for i := 0; i < size; i++ {
			x += uint64((data[i]>>uint(k))&1) << uint(i)
		}
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		x = w.WriteBits(x, m)
		for n < size && bits != 0 {
			bits--
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 && bits != 0 {
				bits--
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
	return maxbits - bits
}

func decodeInts64Planes(r *bitstream.Reader, maxbits uint, data *[64]uint32) {
	const size = Block3DValues
	for i := range data {
		data[i] = 0
	}
	bits := maxbits
	n := uint(0)
	for k := intprec; bits != 0 && k > 0; {
		k--
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		x := r.ReadBits(m)
		for n < size && bits != 0 {
			bits--
			if r.ReadBit() == 0 {
				break
			}
			for n < size-1 && bits != 0 {
				bits--
				if r.ReadBit() != 0 {
					break
				}
				n++
			}
			x += uint64(1) << n
			n++
		}
		for i := 0; x != 0; i, x = i+1, x>>1 {
			data[i] += uint32(x&1) << uint(k)
		}
	}
}

func encodeBlock3D(w *bitstream.Writer, maxbits uint, block *[64]float32) {
	startBits := w.BitLen()
	emax := -ebias
	for _, f := range block {
		if f != 0 {
			a := f
			if a < 0 {
				a = -a
			}
			if e := exponent(a); e > emax {
				emax = e
			}
		}
	}
	if emax+ebias < 1 {
		w.WriteBit(0)
	} else {
		e := uint64(emax + ebias)
		w.WriteBits(2*e+1, ebits)
		var iblock [64]int32
		scale := math.Ldexp(1, intprec-2-emax)
		for i, f := range block {
			iblock[i] = int32(float64(f) * scale)
		}
		fwdLift3D(&iblock)
		var ublock [64]uint32
		for i, v := range iblock {
			ublock[i] = int2nb(v)
		}
		encodeInts64Planes(w, maxbits-ebits, &ublock)
	}
	w.PadToBit(startBits + uint64(maxbits))
}

func decodeBlock3D(r *bitstream.Reader, maxbits uint, block *[64]float32) {
	startBits := r.BitPos()
	if r.ReadBit() == 0 {
		for i := range block {
			block[i] = 0
		}
	} else {
		e := r.ReadBits(ebits - 1)
		emax := int(e) - ebias
		var ublock [64]uint32
		decodeInts64Planes(r, maxbits-ebits, &ublock)
		var iblock [64]int32
		for i, v := range ublock {
			iblock[i] = nb2int(v)
		}
		invLift3D(&iblock)
		scale := math.Ldexp(1, emax-(intprec-2))
		for i, v := range iblock {
			f := float64(v) * scale
			if f > math.MaxFloat32 {
				f = math.MaxFloat32
			} else if f < -math.MaxFloat32 {
				f = -math.MaxFloat32
			}
			block[i] = float32(f)
		}
	}
	r.SkipToBit(startBits + uint64(maxbits))
}

// Compress3D compresses an nx-by-ny-by-nz volume (x fastest) at the given
// fixed rate, appending to dst.
func Compress3D(dst []byte, src []float32, nx, ny, nz, rate int) ([]byte, error) {
	if err := checkRate3D(rate); err != nil {
		return dst, err
	}
	if nx*ny*nz != len(src) {
		return dst, fmt.Errorf("zfp: %dx%dx%d does not match %d values", nx, ny, nz, len(src))
	}
	maxbits := uint(Block3DValues * rate)
	w := bitstream.NewWriter()
	var block [64]float32
	for bz := 0; bz < nz; bz += 4 {
		for by := 0; by < ny; by += 4 {
			for bx := 0; bx < nx; bx += 4 {
				for k := 0; k < 4; k++ {
					z := clampIdx(bz+k, nz)
					for j := 0; j < 4; j++ {
						y := clampIdx(by+j, ny)
						for i := 0; i < 4; i++ {
							x := clampIdx(bx+i, nx)
							block[16*k+4*j+i] = src[(z*ny+y)*nx+x]
						}
					}
				}
				encodeBlock3D(w, maxbits, &block)
			}
		}
	}
	return append(dst, w.Bytes()...), nil
}

// Decompress3D reconstructs an nx-by-ny-by-nz volume from comp.
func Decompress3D(dst []float32, comp []byte, nx, ny, nz, rate int) ([]float32, error) {
	if err := checkRate3D(rate); err != nil {
		return dst, err
	}
	want, err := CompressedSize3D(nx, ny, nz, rate)
	if err != nil {
		return dst, err
	}
	if len(comp) < want {
		return dst, fmt.Errorf("%w: have %d bytes, want %d", ErrShortBuffer, len(comp), want)
	}
	out := make([]float32, nx*ny*nz)
	maxbits := uint(Block3DValues * rate)
	r := bitstream.NewReader(comp)
	var block [64]float32
	for bz := 0; bz < nz; bz += 4 {
		for by := 0; by < ny; by += 4 {
			for bx := 0; bx < nx; bx += 4 {
				decodeBlock3D(r, maxbits, &block)
				for k := 0; k < 4 && bz+k < nz; k++ {
					for j := 0; j < 4 && by+j < ny; j++ {
						for i := 0; i < 4 && bx+i < nx; i++ {
							out[((bz+k)*ny+by+j)*nx+bx+i] = block[16*k+4*j+i]
						}
					}
				}
			}
		}
	}
	return append(dst, out...), nil
}

func clampIdx(i, n int) int {
	if i >= n {
		return n - 1
	}
	return i
}
