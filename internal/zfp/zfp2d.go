package zfp

import (
	"fmt"
	"math"

	"mpicomp/internal/bitstream"
)

// Two-dimensional fixed-rate ZFP (float32). Blocks are 4x4 = 16 values;
// the decorrelating transform is applied separably (rows then columns),
// exactly as in the zfp format. 2-D blocks exploit smoothness along both
// axes, which is why Table I lists multidimensional support as a feature
// of ZFP-class codecs. Partial edge blocks are padded by replicating the
// last row/column.

// Block2DValues is the number of values per 2-D block (4^2).
const Block2DValues = 16

// MinRate2D is the smallest 2-D rate: the 9-bit exponent plus one plane
// bit must fit in 16*rate bits, so even rate 1 works.
const MinRate2D = 1

func checkRate2D(rate int) error {
	if rate < MinRate2D || rate > MaxRate {
		return fmt.Errorf("%w: %d (want %d..%d)", ErrBadRate, rate, MinRate2D, MaxRate)
	}
	return nil
}

// CompressedSize2D returns the exact compressed size in bytes of an
// nx-by-ny float32 array at the given rate.
func CompressedSize2D(nx, ny, rate int) (int, error) {
	if err := checkRate2D(rate); err != nil {
		return 0, err
	}
	if nx < 0 || ny < 0 {
		return 0, fmt.Errorf("zfp: negative dimensions %dx%d", nx, ny)
	}
	bx := (nx + 3) / 4
	by := (ny + 3) / 4
	bits := uint64(bx) * uint64(by) * uint64(Block2DValues*rate)
	return int((bits + 7) / 8), nil
}

// fwdLift2D applies the 4-point lifting transform along both axes of a
// 4x4 block stored row-major.
func fwdLift2D(b *[16]int32) {
	var v [4]int32
	// Rows.
	for r := 0; r < 4; r++ {
		copy(v[:], b[4*r:4*r+4])
		fwdLift(&v)
		copy(b[4*r:4*r+4], v[:])
	}
	// Columns.
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			v[r] = b[4*r+c]
		}
		fwdLift(&v)
		for r := 0; r < 4; r++ {
			b[4*r+c] = v[r]
		}
	}
}

// invLift2D inverts fwdLift2D (columns then rows).
func invLift2D(b *[16]int32) {
	var v [4]int32
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			v[r] = b[4*r+c]
		}
		invLift(&v)
		for r := 0; r < 4; r++ {
			b[4*r+c] = v[r]
		}
	}
	for r := 0; r < 4; r++ {
		copy(v[:], b[4*r:4*r+4])
		invLift(&v)
		copy(b[4*r:4*r+4], v[:])
	}
}

// encodeInts16 is the embedded group-testing coder over 16-value planes.
func encodeInts16(w *bitstream.Writer, maxbits uint, data *[16]uint32) uint {
	const size = Block2DValues
	bits := maxbits
	n := uint(0)
	for k := intprec; bits != 0 && k > 0; {
		k--
		var x uint64
		for i := 0; i < size; i++ {
			x += uint64((data[i]>>uint(k))&1) << uint(i)
		}
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		x = w.WriteBits(x, m)
		for n < size && bits != 0 {
			bits--
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 && bits != 0 {
				bits--
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
	return maxbits - bits
}

func decodeInts16(r *bitstream.Reader, maxbits uint, data *[16]uint32) {
	const size = Block2DValues
	for i := range data {
		data[i] = 0
	}
	bits := maxbits
	n := uint(0)
	for k := intprec; bits != 0 && k > 0; {
		k--
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		x := r.ReadBits(m)
		for n < size && bits != 0 {
			bits--
			if r.ReadBit() == 0 {
				break
			}
			for n < size-1 && bits != 0 {
				bits--
				if r.ReadBit() != 0 {
					break
				}
				n++
			}
			x += uint64(1) << n
			n++
		}
		for i := 0; x != 0; i, x = i+1, x>>1 {
			data[i] += uint32(x&1) << uint(k)
		}
	}
}

func encodeBlock2D(w *bitstream.Writer, maxbits uint, block *[16]float32) {
	startBits := w.BitLen()
	emax := -ebias
	for _, f := range block {
		if f != 0 {
			a := f
			if a < 0 {
				a = -a
			}
			if e := exponent(a); e > emax {
				emax = e
			}
		}
	}
	if emax+ebias < 1 {
		w.WriteBit(0)
	} else {
		e := uint64(emax + ebias)
		w.WriteBits(2*e+1, ebits)
		var iblock [16]int32
		scale := math.Ldexp(1, intprec-2-emax)
		for i, f := range block {
			iblock[i] = int32(float64(f) * scale)
		}
		fwdLift2D(&iblock)
		var ublock [16]uint32
		for i, v := range iblock {
			ublock[i] = int2nb(v)
		}
		encodeInts16(w, maxbits-ebits, &ublock)
	}
	w.PadToBit(startBits + uint64(maxbits))
}

func decodeBlock2D(r *bitstream.Reader, maxbits uint, block *[16]float32) {
	startBits := r.BitPos()
	if r.ReadBit() == 0 {
		for i := range block {
			block[i] = 0
		}
	} else {
		e := r.ReadBits(ebits - 1)
		emax := int(e) - ebias
		var ublock [16]uint32
		decodeInts16(r, maxbits-ebits, &ublock)
		var iblock [16]int32
		for i, v := range ublock {
			iblock[i] = nb2int(v)
		}
		invLift2D(&iblock)
		scale := math.Ldexp(1, emax-(intprec-2))
		for i, v := range iblock {
			f := float64(v) * scale
			if f > math.MaxFloat32 {
				f = math.MaxFloat32
			} else if f < -math.MaxFloat32 {
				f = -math.MaxFloat32
			}
			block[i] = float32(f)
		}
	}
	r.SkipToBit(startBits + uint64(maxbits))
}

// Compress2D compresses an nx-by-ny row-major float32 array at the given
// fixed rate, appending to dst.
func Compress2D(dst []byte, src []float32, nx, ny, rate int) ([]byte, error) {
	if err := checkRate2D(rate); err != nil {
		return dst, err
	}
	if nx*ny != len(src) {
		return dst, fmt.Errorf("zfp: %dx%d does not match %d values", nx, ny, len(src))
	}
	maxbits := uint(Block2DValues * rate)
	w := bitstream.NewWriter()
	var block [16]float32
	for by := 0; by < ny; by += 4 {
		for bx := 0; bx < nx; bx += 4 {
			for j := 0; j < 4; j++ {
				y := by + j
				if y >= ny {
					y = ny - 1
				}
				for i := 0; i < 4; i++ {
					x := bx + i
					if x >= nx {
						x = nx - 1
					}
					block[4*j+i] = src[y*nx+x]
				}
			}
			encodeBlock2D(w, maxbits, &block)
		}
	}
	return append(dst, w.Bytes()...), nil
}

// Decompress2D reconstructs an nx-by-ny array from comp.
func Decompress2D(dst []float32, comp []byte, nx, ny, rate int) ([]float32, error) {
	if err := checkRate2D(rate); err != nil {
		return dst, err
	}
	want, err := CompressedSize2D(nx, ny, rate)
	if err != nil {
		return dst, err
	}
	if len(comp) < want {
		return dst, fmt.Errorf("%w: have %d bytes, want %d", ErrShortBuffer, len(comp), want)
	}
	out := make([]float32, nx*ny)
	maxbits := uint(Block2DValues * rate)
	r := bitstream.NewReader(comp)
	var block [16]float32
	for by := 0; by < ny; by += 4 {
		for bx := 0; bx < nx; bx += 4 {
			decodeBlock2D(r, maxbits, &block)
			for j := 0; j < 4 && by+j < ny; j++ {
				for i := 0; i < 4 && bx+i < nx; i++ {
					out[(by+j)*nx+bx+i] = block[4*j+i]
				}
			}
		}
	}
	return append(dst, out...), nil
}
