package zfp_test

import (
	"fmt"

	"mpicomp/internal/zfp"
)

// Fixed-rate compression: the output size is exactly predictable from the
// element count and rate — the property that lets the MPI framework skip
// the compressed-size readback for ZFP.
func ExampleCompressedSize() {
	n := 1 << 20 // 1M float32 values = 4 MB
	for _, rate := range []int{4, 8, 16} {
		size, _ := zfp.CompressedSize(n, rate)
		fmt.Printf("rate %2d: %d bytes (ratio %.0fx)\n", rate, size, zfp.Ratio(rate))
	}
	// Output:
	// rate  4: 524288 bytes (ratio 8x)
	// rate  8: 1048576 bytes (ratio 4x)
	// rate 16: 2097152 bytes (ratio 2x)
}

// Lossy round trip: reconstruction error is bounded by the rate.
func ExampleCompress() {
	data := make([]float32, 64)
	for i := range data {
		data[i] = float32(i) * 0.5
	}
	comp, _ := zfp.Compress(nil, data, 16)
	restored, _ := zfp.Decompress(nil, comp, len(data), 16)

	var maxErr float64
	for i := range data {
		e := float64(restored[i] - data[i])
		if e < 0 {
			e = -e
		}
		if e > maxErr {
			maxErr = e
		}
	}
	fmt.Println("error below 0.01:", maxErr < 0.01)
	fmt.Println("half the size:", len(comp) == len(data)*2)
	// Output:
	// error below 0.01: true
	// half the size: true
}
