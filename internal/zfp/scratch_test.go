package zfp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func genFloats(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	src := make([]float32, n)
	phase := rng.Float64()
	for i := range src {
		src[i] = float32(100*phase + float64(i)*0.01 + rng.NormFloat64()*0.1)
	}
	return src
}

// TestAppendCompressIdentical asserts the in-place encoder produces
// byte-identical output to the historical Writer.Bytes copy path. The
// reference is reconstructed inline the way Compress used to work:
// encode into a fresh writer and snapshot with Bytes.
func TestAppendCompressIdentical(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 8, 1024, 4096 + 3} {
		for _, rate := range []int{4, 8, 16, 32} {
			src := genFloats(n, int64(n*100+rate))
			ref, err := Compress(nil, src, rate)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := CompressedSize(n, rate)
			if len(ref) != want {
				t.Fatalf("n=%d rate=%d: compressed %d bytes, want %d", n, rate, len(ref), want)
			}
			got, err := AppendCompress(make([]byte, 0, want), src, rate)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("n=%d rate=%d: AppendCompress differs from Compress", n, rate)
			}
		}
	}
}

// TestAppendCompressChunked asserts that compressing 8-value-aligned
// chunks independently and concatenating yields the same bytes as one
// whole-message call — the property the parallel block-row path relies
// on (every 2-block chunk is byte-aligned: 8*rate bits = rate bytes).
func TestAppendCompressChunked(t *testing.T) {
	const n = 4096 + 5
	for _, rate := range []int{3, 7, 16} {
		src := genFloats(n, int64(rate))
		whole, err := Compress(nil, src, rate)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunkVals := range []int{8, 64, 1000 - 1000%8} {
			var cat []byte
			for base := 0; base < n; base += chunkVals {
				end := base + chunkVals
				if end > n {
					end = n
				}
				cat, err = AppendCompress(cat, src[base:end], rate)
				if err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(whole, cat) {
				t.Fatalf("rate=%d chunk=%d: chunked output differs from whole-message output", rate, chunkVals)
			}
		}
	}
}

// TestDecompressIntoIdentical asserts the in-place decoder matches the
// appending decoder.
func TestDecompressIntoIdentical(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 8, 1024, 4096 + 3} {
		for _, rate := range []int{4, 8, 16, 32} {
			src := genFloats(n, int64(n*100+rate))
			comp, err := Compress(nil, src, rate)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Decompress(nil, comp, n, rate)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float32, n)
			if err := DecompressInto(got, comp, rate); err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if ref[i] != got[i] {
					t.Fatalf("n=%d rate=%d: value %d differs: %v vs %v", n, rate, i, ref[i], got[i])
				}
			}
		}
	}
}

func TestDecompressIntoShortBuffer(t *testing.T) {
	src := genFloats(64, 3)
	comp, err := Compress(nil, src, 8)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 64)
	if err := DecompressInto(dst, comp[:len(comp)-1], 8); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("truncated input: got %v, want ErrShortBuffer", err)
	}
	if err := DecompressInto(dst, comp, 99); !errors.Is(err, ErrBadRate) {
		t.Fatalf("bad rate: got %v, want ErrBadRate", err)
	}
}

// TestScratchRoundTripZeroAlloc asserts that with warmed caller buffers a
// compress+decompress round trip allocates nothing.
func TestScratchRoundTripZeroAlloc(t *testing.T) {
	src := genFloats(4096, 9)
	want, _ := CompressedSize(len(src), 16)
	comp := make([]byte, 0, want)
	dst := make([]float32, len(src))
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		comp, err = AppendCompress(comp[:0], src, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecompressInto(dst, comp, 16); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("round trip allocated %.1f objects, want 0", allocs)
	}
}
