// Package zfp implements the fixed-rate, 1-D, single-precision mode of the
// ZFP compressed floating-point array format (Lindstrom, IEEE TVCG 2014) —
// the exact configuration the IPDPS'21 paper uses ("the 1D array type with
// the number of total floating-point values as dimension size", CUDA
// fixed-rate mode).
//
// Each block of 4 consecutive values is coded independently in exactly
// maxbits = 4*rate bits (rate = compressed bits per value), so the
// compressed size of n values is ceil(n/4)*4*rate bits — fully predictable,
// which is why the framework never needs to read the compressed size back
// from the GPU for ZFP (Section III-A of the paper).
//
// The per-block pipeline is the real ZFP algorithm:
//
//  1. Block-floating-point: align all 4 values to the block-wide maximum
//     exponent and convert to Q1.30 two's-complement integers.
//  2. Decorrelating lifting transform (the non-orthogonal 4-point
//     transform from the zfp codec).
//  3. Negabinary mapping so magnitude ordering matches bit-plane ordering.
//  4. Embedded bit-plane coding with group testing (zfp's encode_ints):
//     planes are emitted most-significant first; within a plane, bits for
//     values already "active" are emitted verbatim and the remainder is
//     unary run-length coded. The stream is truncated/padded to maxbits.
//
// Decompression inverts each stage; with rate 16 the typical relative
// error is ~1e-4, and reconstruction error decreases monotonically with
// rate, which the tests verify.
package zfp

import (
	"errors"
	"fmt"
	"math"

	"mpicomp/internal/bitstream"
)

// BlockValues is the number of values per 1-D block (4^1).
const BlockValues = 4

// ebits is the number of bits used to encode the common block exponent:
// 8 exponent bits + 1 marker bit, as in zfp for float32.
const ebits = 9

// ebias is the float32 exponent bias.
const ebias = 127

// intprec is the precision of the block-integer representation.
const intprec = 32

// nbmask is the negabinary conversion mask for 32-bit integers.
const nbmask uint32 = 0xaaaaaaaa

// MinRate and MaxRate bound the supported fixed rates (bits per value).
// MinRate is 3 because a block must at least hold its 9-bit exponent field
// within the 4*rate-bit budget.
const (
	MinRate = 3
	MaxRate = 32
)

var (
	// ErrBadRate reports a rate outside [MinRate, MaxRate].
	ErrBadRate = errors.New("zfp: rate out of range")
	// ErrShortBuffer reports a compressed buffer too small for the
	// stated element count and rate.
	ErrShortBuffer = errors.New("zfp: compressed buffer too short")
)

func checkRate(rate int) error {
	if rate < MinRate || rate > MaxRate {
		return fmt.Errorf("%w: %d (want %d..%d)", ErrBadRate, rate, MinRate, MaxRate)
	}
	return nil
}

// CompressedSize returns the exact compressed size in bytes of n float32
// values at the given rate. This is the property that lets the framework
// skip the device-to-host size readback for ZFP.
func CompressedSize(n, rate int) (int, error) {
	if err := checkRate(rate); err != nil {
		return 0, err
	}
	blocks := (n + BlockValues - 1) / BlockValues
	bits := uint64(blocks) * uint64(BlockValues*rate)
	return int((bits + 7) / 8), nil
}

// Ratio returns the fixed compression ratio at the given rate (original
// bits per value / rate).
func Ratio(rate int) float64 { return 32.0 / float64(rate) }

// fwdLift is zfp's forward non-orthogonal decorrelating transform:
//
//	       ( 4  4  4  4) (x)
//	1/16 * ( 5  1 -1 -5) (y)
//	       (-4  4  4 -4) (z)
//	       (-2  6 -6  2) (w)
func fwdLift(p *[4]int32) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// invLift is the matching inverse transform:
//
//	      ( 4  6 -4 -1) (x)
//	1/4 * ( 4  2  4  5) (y)
//	      ( 4 -2  4 -5) (z)
//	      ( 4 -6 -4  1) (w)
func invLift(p *[4]int32) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// Compile-time note: fwdLift/invLift are exact structural inverses of the
// zfp codec's fwd_lift/inv_lift; the lossy >>1 steps pair with <<1 steps in
// the inverse so that inv(fwd(v)) differs from v by at most a few ULPs,
// which TestLiftInverse verifies.

// int2nb maps a two's-complement integer to negabinary.
func int2nb(v int32) uint32 { return (uint32(v) + nbmask) ^ nbmask }

// nb2int maps negabinary back to two's complement.
func nb2int(v uint32) int32 { return int32((v ^ nbmask) - nbmask) }

// exponent extracts the unbiased binary exponent of |f|, with the zfp
// convention that 0 maps to the minimum exponent.
func exponent(f float32) int {
	if f == 0 {
		return -ebias
	}
	_, e := math.Frexp(float64(f))
	// Frexp normalizes to [0.5, 1): f = frac * 2^e. zfp uses the same
	// convention (FREXP then no adjustment) for its block exponent.
	return e
}

// blockExponent returns the maximum exponent over the block, considering
// only finite values.
func blockExponent(b *[4]float32) int {
	emax := -ebias
	for _, f := range b {
		if f != 0 {
			if e := exponent(float32(math.Abs(float64(f)))); e > emax {
				emax = e
			}
		}
	}
	return emax
}

// fwdCast converts the block to Q1.30 fixed point relative to emax.
func fwdCast(dst *[4]int32, src *[4]float32, emax int) {
	scale := math.Ldexp(1, intprec-2-emax)
	for i, f := range src {
		dst[i] = int32(float64(f) * scale)
	}
}

// invCast converts Q1.30 fixed point back to float32. Quantization can
// overshoot by a fraction of an ULP at the extreme of the exponent range,
// so the result is clamped to the finite float32 domain.
func invCast(dst *[4]float32, src *[4]int32, emax int) {
	scale := math.Ldexp(1, emax-(intprec-2))
	for i, v := range src {
		f := float64(v) * scale
		if f > math.MaxFloat32 {
			f = math.MaxFloat32
		} else if f < -math.MaxFloat32 {
			f = -math.MaxFloat32
		}
		dst[i] = float32(f)
	}
}

// encodeInts is zfp's embedded group-testing bit-plane coder (a literal
// translation of encode_ints from the zfp codec, specialized to 4-value
// blocks). It writes at most maxbits bits of the 4 negabinary integers to
// w, most significant plane first, and returns the number of bits written.
//
// n persists across planes: it counts the values whose significance has
// been established, and those values' plane bits are emitted verbatim while
// the rest of each plane is unary run-length coded (group testing).
func encodeInts(w *bitstream.Writer, maxbits uint, data *[4]uint32) uint {
	const size = BlockValues
	bits := maxbits
	n := uint(0)
	for k := intprec; bits != 0 && k > 0; {
		k--
		// Step 1: extract bit plane k to x (bit i of x = bit k of data[i]).
		var x uint64
		for i := 0; i < size; i++ {
			x += uint64((data[i]>>uint(k))&1) << uint(i)
		}
		// Step 2: encode the first n bits of the plane verbatim.
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		x = w.WriteBits(x, m)
		// Step 3: unary run-length encode the remainder of the plane.
		for n < size && bits != 0 {
			bits--
			if x == 0 {
				w.WriteBit(0) // group test: nothing significant remains
				break
			}
			w.WriteBit(1)
			for n < size-1 && bits != 0 {
				bits--
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				n++
			}
			// Skip past the 1 bit just coded (or implied, when the
			// scan reached the final value).
			x >>= 1
			n++
		}
	}
	return maxbits - bits
}

// decodeInts inverts encodeInts, reading at most maxbits bits.
func decodeInts(r *bitstream.Reader, maxbits uint, data *[4]uint32) {
	const size = BlockValues
	for i := range data {
		data[i] = 0
	}
	bits := maxbits
	n := uint(0)
	for k := intprec; bits != 0 && k > 0; {
		k--
		// Step 1: decode the verbatim prefix of the plane.
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		x := r.ReadBits(m)
		// Step 2: unary run-length decode the remainder.
		for n < size && bits != 0 {
			bits--
			if r.ReadBit() == 0 {
				break
			}
			for n < size-1 && bits != 0 {
				bits--
				if r.ReadBit() != 0 {
					break
				}
				n++
			}
			x += uint64(1) << n
			n++
		}
		// Step 3: deposit bit plane k.
		for i := 0; x != 0; i, x = i+1, x>>1 {
			data[i] += uint32(x&1) << uint(k)
		}
	}
}

// encodeBlock writes one block in exactly maxbits bits.
func encodeBlock(w *bitstream.Writer, maxbits uint, block *[4]float32) {
	startBits := w.BitLen()
	emax := blockExponent(block)
	// Blocks that are all zero — or all denormal-tiny, whose biased
	// exponent would underflow the 8-bit field — are coded as a single
	// 0 bit plus padding and reconstruct to exact zeros.
	if emax+ebias < 1 {
		w.WriteBit(0)
	} else {
		e := uint64(emax + ebias)
		w.WriteBits(2*e+1, ebits)
		var iblock [4]int32
		fwdCast(&iblock, block, emax)
		fwdLift(&iblock)
		var ublock [4]uint32
		for i, v := range iblock {
			ublock[i] = int2nb(v)
		}
		budget := maxbits - ebits
		encodeInts(w, budget, &ublock)
	}
	w.PadToBit(startBits + uint64(maxbits))
}

// decodeBlock reads one block of exactly maxbits bits.
func decodeBlock(r *bitstream.Reader, maxbits uint, block *[4]float32) {
	startBits := r.BitPos()
	first := r.ReadBit()
	if first == 0 {
		for i := range block {
			block[i] = 0
		}
	} else {
		// Re-read the full exponent field: the first bit we consumed
		// is the LSB of 2*e+1 (always 1).
		rest := r.ReadBits(ebits - 1)
		e := rest // (2*e+1)>>1 == e
		emax := int(e) - ebias
		var ublock [4]uint32
		decodeInts(r, maxbits-ebits, &ublock)
		var iblock [4]int32
		for i, v := range ublock {
			iblock[i] = nb2int(v)
		}
		invLift(&iblock)
		invCast(block, &iblock, emax)
	}
	r.SkipToBit(startBits + uint64(maxbits))
}

// Compress compresses src at the given fixed rate, appending the encoded
// stream to dst. A final partial block is padded with the block's last
// value (standard zfp edge extension for partial blocks).
func Compress(dst []byte, src []float32, rate int) ([]byte, error) {
	return AppendCompress(dst, src, rate)
}

// AppendCompress is the scratch-reuse entry point: it encodes directly
// into dst through a stack bit writer (no intermediate stream buffer, no
// final copy), so when the caller passes a reused buffer with cap(dst)
// sized by CompressedSize the call performs zero heap allocations.
// Output bytes are identical to what Compress has always produced —
// every block codes to exactly 4*rate bits at a position fixed by its
// index, so the encoding is independent of how the input is chunked.
func AppendCompress(dst []byte, src []float32, rate int) ([]byte, error) {
	if err := checkRate(rate); err != nil {
		return dst, err
	}
	maxbits := uint(BlockValues * rate)
	var w bitstream.Writer
	w.Reset(dst)
	var block [4]float32
	n := len(src)
	for base := 0; base < n; base += BlockValues {
		for i := 0; i < BlockValues; i++ {
			if base+i < n {
				block[i] = src[base+i]
			} else if base+i > 0 {
				block[i] = block[i-1]
			} else {
				block[i] = 0
			}
		}
		encodeBlock(&w, maxbits, &block)
	}
	return w.Final(), nil
}

// Decompress reconstructs exactly n values from comp at the given rate,
// appending to dst.
func Decompress(dst []float32, comp []byte, n, rate int) ([]float32, error) {
	if err := checkRate(rate); err != nil {
		return dst, err
	}
	start := len(dst)
	if cap(dst)-start < n {
		grown := make([]float32, start+n)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:start+n]
	}
	if err := DecompressInto(dst[start:], comp, rate); err != nil {
		return dst[:start], err
	}
	return dst, nil
}

// DecompressInto reconstructs exactly len(dst) values from comp at the
// given rate, overwriting dst in place — the zero-allocation counterpart
// of Decompress for callers that pre-slice a reused destination (e.g.
// parallel block-row decode writing disjoint ranges of one buffer).
func DecompressInto(dst []float32, comp []byte, rate int) error {
	if err := checkRate(rate); err != nil {
		return err
	}
	n := len(dst)
	want, _ := CompressedSize(n, rate)
	if len(comp) < want {
		return fmt.Errorf("%w: have %d bytes, want %d", ErrShortBuffer, len(comp), want)
	}
	maxbits := uint(BlockValues * rate)
	var r bitstream.Reader
	r.Reset(comp)
	var block [4]float32
	for base := 0; base < n; base += BlockValues {
		decodeBlock(&r, maxbits, &block)
		for i := 0; i < BlockValues && base+i < n; i++ {
			dst[base+i] = block[i]
		}
	}
	return nil
}

// MaxError returns an upper bound estimate of the absolute reconstruction
// error for values with magnitude <= 2^emax at the given rate. It follows
// the fixed-rate error model: roughly one ULP at the truncated bit plane.
func MaxError(emax, rate int) float64 {
	if rate >= 32 {
		rate = 30
	}
	// ebits bits go to the exponent; the rest cover bit planes from
	// intprec-1 downward across 4 values.
	planes := (BlockValues*rate - ebits) / BlockValues
	if planes < 0 {
		planes = 0
	}
	return math.Ldexp(1, emax-planes+2)
}
