package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func maxAbs(xs []float32) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(float64(x)); a > m {
			m = a
		}
	}
	return m
}

func maxErr(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		if e := math.Abs(float64(a[i]) - float64(b[i])); e > m {
			m = e
		}
	}
	return m
}

func smoothData(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	v := 1.0
	for i := range out {
		v += rng.NormFloat64() * 0.01
		out[i] = float32(v)
	}
	return out
}

func TestCompressedSizeExact(t *testing.T) {
	cases := []struct {
		n, rate, want int
	}{
		{0, 16, 0},
		{1, 16, 8},  // 1 block * 64 bits
		{4, 16, 8},  // 1 block
		{5, 16, 16}, // 2 blocks
		{8, 16, 16}, // 2 blocks
		{1024, 16, 2048},
		{1024, 8, 1024},
		{1024, 4, 512},
		{1024, 32, 4096},
		{6, 4, 4}, // 2 blocks * 16 bits = 4 bytes
	}
	for _, c := range cases {
		got, err := CompressedSize(c.n, c.rate)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("CompressedSize(%d,%d)=%d want %d", c.n, c.rate, got, c.want)
		}
	}
}

func TestCompressMatchesCompressedSize(t *testing.T) {
	for _, rate := range []int{3, 4, 8, 16, 31, 32} {
		for _, n := range []int{0, 1, 3, 4, 5, 100, 1023} {
			src := smoothData(n, int64(n)+int64(rate))
			comp, err := Compress(nil, src, rate)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := CompressedSize(n, rate)
			if len(comp) != want {
				t.Fatalf("n=%d rate=%d: len=%d want %d", n, rate, len(comp), want)
			}
		}
	}
}

func TestZeroDataReconstructsExactly(t *testing.T) {
	src := make([]float32, 100)
	comp, err := Compress(nil, src, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(nil, comp, len(src), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("value %d: got %v want 0", i, v)
		}
	}
}

func TestRate16RelativeError(t *testing.T) {
	src := smoothData(4096, 5)
	comp, err := Compress(nil, src, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(nil, comp, len(src), 16)
	if err != nil {
		t.Fatal(err)
	}
	rel := maxErr(src, got) / maxAbs(src)
	if rel > 1e-3 {
		t.Fatalf("rate 16 relative error too large: %g", rel)
	}
}

func TestErrorDecreasesWithRate(t *testing.T) {
	src := smoothData(4096, 6)
	prev := math.Inf(1)
	for _, rate := range []int{4, 8, 12, 16, 24, 32} {
		comp, err := Compress(nil, src, rate)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decompress(nil, comp, len(src), rate)
		if err != nil {
			t.Fatal(err)
		}
		e := maxErr(src, got)
		if e > prev*1.2 { // allow slight non-monotonic noise
			t.Fatalf("error at rate %d (%g) regressed vs previous (%g)", rate, e, prev)
		}
		prev = e
	}
	if prev > 1e-5 {
		t.Fatalf("rate 32 should be near-lossless, max err %g", prev)
	}
}

func TestRate32NearLossless(t *testing.T) {
	src := smoothData(1000, 7)
	comp, _ := Compress(nil, src, 32)
	got, _ := Decompress(nil, comp, len(src), 32)
	rel := maxErr(src, got) / maxAbs(src)
	if rel > 1e-6 {
		t.Fatalf("rate 32 relative error %g too large", rel)
	}
}

func TestMixedSignsAndMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := make([]float32, 512)
	for i := range src {
		src[i] = float32((rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(7)-3)))
	}
	comp, err := Compress(nil, src, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(nil, comp, len(src), 16)
	if err != nil {
		t.Fatal(err)
	}
	// Per-block error scales with the block max; check block-relative error.
	for b := 0; b < len(src); b += BlockValues {
		end := b + BlockValues
		blockMax := maxAbs(src[b:end])
		if blockMax == 0 {
			continue
		}
		if e := maxErr(src[b:end], got[b:end]); e/blockMax > 2e-3 {
			t.Fatalf("block %d relative error %g", b/4, e/blockMax)
		}
	}
}

func TestPartialBlockTail(t *testing.T) {
	for tail := 1; tail <= 3; tail++ {
		src := smoothData(32+tail, int64(tail))
		comp, err := Compress(nil, src, 16)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decompress(nil, comp, len(src), 16)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(src) {
			t.Fatalf("tail %d: got %d values want %d", tail, len(got), len(src))
		}
		rel := maxErr(src, got) / maxAbs(src)
		if rel > 1e-3 {
			t.Fatalf("tail %d: relative error %g", tail, rel)
		}
	}
}

func TestDecompressRejectsShortBuffer(t *testing.T) {
	src := smoothData(64, 1)
	comp, _ := Compress(nil, src, 16)
	if _, err := Decompress(nil, comp[:len(comp)-1], 64, 16); err == nil {
		t.Fatal("short buffer should fail")
	}
}

func TestBadRates(t *testing.T) {
	if _, err := Compress(nil, []float32{1}, 0); err == nil {
		t.Fatal("rate 0 should fail")
	}
	if _, err := Compress(nil, []float32{1}, 33); err == nil {
		t.Fatal("rate 33 should fail")
	}
	if _, err := Decompress(nil, nil, 1, -5); err == nil {
		t.Fatal("negative rate should fail")
	}
	if _, err := CompressedSize(10, 99); err == nil {
		t.Fatal("CompressedSize with bad rate should fail")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(16) != 2 || Ratio(8) != 4 || Ratio(4) != 8 || Ratio(32) != 1 {
		t.Fatalf("fixed ratios wrong: %v %v %v %v", Ratio(16), Ratio(8), Ratio(4), Ratio(32))
	}
}

// Property: the reconstruction error of any finite block is bounded
// relative to the block magnitude at rate >= 16.
func TestBlockErrorBoundProperty(t *testing.T) {
	f := func(a, b, c, d float32) bool {
		for _, v := range []float32{a, b, c, d} {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return true // lossy codec semantics undefined for non-finite
			}
			if v != 0 && math.Abs(float64(v)) < 1e-30 {
				return true // denormal-tiny blocks round to zero by design
			}
		}
		src := []float32{a, b, c, d}
		comp, err := Compress(nil, src, 16)
		if err != nil {
			return false
		}
		got, err := Decompress(nil, comp, 4, 16)
		if err != nil {
			return false
		}
		blockMax := maxAbs(src)
		if blockMax == 0 {
			return maxErr(src, got) == 0
		}
		return maxErr(src, got)/blockMax <= 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode of the integer coder are exact inverses when the
// full bit budget (no truncation) is available.
func TestLiftInverse(t *testing.T) {
	f := func(a, b, c, d int32) bool {
		// Constrain to Q1.30 domain as in real blocks.
		in := [4]int32{a >> 2, b >> 2, c >> 2, d >> 2}
		blk := in
		fwdLift(&blk)
		invLift(&blk)
		// The lifting pair loses at most 1 ulp per stage in the low
		// bits; zfp guarantees |error| bounded by a few ulps.
		for i := range in {
			diff := int64(in[i]) - int64(blk[i])
			if diff < -8 || diff > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestNegabinaryInverse(t *testing.T) {
	f := func(v int32) bool { return nb2int(int2nb(v)) == v }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Negabinary must order magnitudes by MSB position: small values use
	// few bits.
	if int2nb(0) != 0 {
		t.Fatal("nb(0) != 0")
	}
}

func TestDecompressAppendsToDst(t *testing.T) {
	src := smoothData(8, 2)
	comp, _ := Compress(nil, src, 16)
	out, err := Decompress([]float32{99}, comp, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 9 || out[0] != 99 {
		t.Fatalf("append semantics broken")
	}
}

func BenchmarkCompressRate16_1MB(b *testing.B) {
	src := smoothData(1<<18, 1)
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(nil, src, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressRate16_1MB(b *testing.B) {
	src := smoothData(1<<18, 1)
	comp, err := Compress(nil, src, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(make([]float32, 0, len(src)), comp, len(src), 16); err != nil {
			b.Fatal(err)
		}
	}
}
