package zfp

import (
	"math"
	"testing"
)

// field3D is a smooth volume (superposed plane waves).
func field3D(nx, ny, nz int) []float32 {
	out := make([]float32, nx*ny*nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				out[(z*ny+y)*nx+x] = float32(
					math.Sin(float64(x)*0.05) + math.Cos(float64(y)*0.07) + math.Sin(float64(z)*0.06))
			}
		}
	}
	return out
}

func TestCompressedSize3DExact(t *testing.T) {
	cases := []struct{ nx, ny, nz, rate, want int }{
		{4, 4, 4, 16, 128},   // 1 block x 1024 bits
		{8, 4, 4, 16, 256},   // 2 blocks
		{5, 5, 5, 8, 8 * 64}, // 2x2x2 blocks x 512 bits
		{0, 0, 0, 8, 0},
	}
	for _, c := range cases {
		got, err := CompressedSize3D(c.nx, c.ny, c.nz, c.rate)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("CompressedSize3D(%d,%d,%d,%d)=%d want %d", c.nx, c.ny, c.nz, c.rate, got, c.want)
		}
	}
	if _, err := CompressedSize3D(-1, 4, 4, 8); err == nil {
		t.Fatal("negative dims should fail")
	}
}

func TestRoundTrip3DAccuracy(t *testing.T) {
	for _, dims := range [][3]int{{16, 16, 16}, {13, 9, 21}, {4, 4, 4}, {32, 8, 16}} {
		nx, ny, nz := dims[0], dims[1], dims[2]
		src := field3D(nx, ny, nz)
		comp, err := Compress3D(nil, src, nx, ny, nz, 16)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := CompressedSize3D(nx, ny, nz, 16)
		if len(comp) != want {
			t.Fatalf("%v: size %d want %d", dims, len(comp), want)
		}
		got, err := Decompress3D(nil, comp, nx, ny, nz, 16)
		if err != nil {
			t.Fatal(err)
		}
		var maxErr float64
		for i := range src {
			if e := math.Abs(float64(got[i] - src[i])); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 2e-3 {
			t.Fatalf("%v: max error %g", dims, maxErr)
		}
	}
}

func Test3DBeats1DOnSmoothVolumes(t *testing.T) {
	const nx, ny, nz, rate = 32, 32, 32, 4
	src := field3D(nx, ny, nz)
	c3, err := Compress3D(nil, src, nx, ny, nz, rate)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := Decompress3D(nil, c3, nx, ny, nz, rate)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := Compress(nil, src, rate)
	g1, _ := Decompress(nil, c1, len(src), rate)
	var e1, e3 float64
	for i := range src {
		if d := math.Abs(float64(g1[i] - src[i])); d > e1 {
			e1 = d
		}
		if d := math.Abs(float64(g3[i] - src[i])); d > e3 {
			e3 = d
		}
	}
	if e3 >= e1 {
		t.Fatalf("3-D (err %g) should beat 1-D (err %g) at rate %d", e3, e1, rate)
	}
}

func TestLift3DInversePair(t *testing.T) {
	var b, orig [64]int32
	seed := int32(12345)
	for i := range b {
		seed = seed*1103515245 + 12347
		b[i] = seed >> 2
	}
	orig = b
	fwdLift3D(&b)
	invLift3D(&b)
	for i := range b {
		d := int64(orig[i]) - int64(b[i])
		if d < -512 || d > 512 {
			t.Fatalf("3-D lift pair diverges at %d: %d", i, d)
		}
	}
}

func TestCompress3DValidation(t *testing.T) {
	if _, err := Compress3D(nil, make([]float32, 10), 2, 2, 2, 8); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	if _, err := Compress3D(nil, nil, 0, 0, 0, 99); err == nil {
		t.Fatal("bad rate should fail")
	}
	if _, err := Decompress3D(nil, []byte{1}, 4, 4, 4, 16); err == nil {
		t.Fatal("short buffer should fail")
	}
}
