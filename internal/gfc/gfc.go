// Package gfc implements the GFC GPU floating-point compressor of O'Neil
// and Burtscher ("Floating-Point Data Compression at 75 Gb/s on a GPU",
// GPGPU-4 2011) — one of the prior GPU compressors the paper's Table I
// compares against (lossless, double-precision, high-throughput, but with
// no on-the-fly MPI integration).
//
// The algorithm, per warp-sized chunk of doubles:
//
//  1. Delta: each value is predicted by its predecessor (the last value
//     of the previous chunk seeds the first).
//  2. Sign-magnitude: the residual's sign is separated from |residual|.
//  3. Leading-zero-byte elimination: |residual| is stored in 8 minus z
//     bytes, where z is its count of leading zero bytes; a 4-bit header
//     per value records the sign and z. Two headers pack per byte.
//
// The format is self-framing given the element count, and compression is
// bit-lossless (property-tested).
package gfc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ChunkValues is the number of doubles per chunk (one CUDA warp).
const ChunkValues = 32

// ErrCorrupt reports a buffer that cannot decode to the stated count.
var ErrCorrupt = errors.New("gfc: corrupt compressed data")

// Bound returns the maximum compressed size for n doubles: half a byte of
// header plus up to 8 payload bytes per value.
func Bound(n int) int { return (n+1)/2 + 8*n }

// header nibble layout: bit 3 = sign of the residual, bits 0-2 = number
// of leading zero bytes (clamped to 7, so a zero residual still stores
// one zero byte — matching GFC's design tradeoff).

// Compress compresses src, appending to dst.
func Compress(dst []byte, src []float64) []byte {
	n := len(src)
	var prev uint64
	for base := 0; base < n; base += ChunkValues {
		end := base + ChunkValues
		if end > n {
			end = n
		}
		count := end - base
		headers := make([]byte, (count+1)/2)
		var payload []byte
		chunkPrev := prev
		for i := 0; i < count; i++ {
			cur := math.Float64bits(src[base+i])
			d := int64(cur - chunkPrev)
			chunkPrev = cur
			var sign byte
			m := uint64(d)
			if d < 0 {
				sign = 8
				m = uint64(-d)
			}
			z := bits.LeadingZeros64(m) / 8
			if z > 7 {
				z = 7
			}
			nib := sign | byte(z)
			if i%2 == 0 {
				headers[i/2] = nib << 4
			} else {
				headers[i/2] |= nib
			}
			// Store 8-z bytes of m, little-endian.
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], m)
			payload = append(payload, tmp[:8-z]...)
		}
		dst = append(dst, headers...)
		dst = append(dst, payload...)
		prev = chunkPrev
	}
	return dst
}

// Decompress reconstructs exactly n doubles from comp, appending to dst.
func Decompress(dst []float64, comp []byte, n int) ([]float64, error) {
	pos := 0
	var prev uint64
	for base := 0; base < n; base += ChunkValues {
		end := base + ChunkValues
		if end > n {
			end = n
		}
		count := end - base
		hdrLen := (count + 1) / 2
		if pos+hdrLen > len(comp) {
			return dst, fmt.Errorf("%w: truncated header at value %d", ErrCorrupt, base)
		}
		headers := comp[pos : pos+hdrLen]
		pos += hdrLen
		for i := 0; i < count; i++ {
			nib := headers[i/2]
			if i%2 == 0 {
				nib >>= 4
			} else {
				nib &= 0x0f
			}
			sign := nib&8 != 0
			z := int(nib & 7)
			nBytes := 8 - z
			if pos+nBytes > len(comp) {
				return dst, fmt.Errorf("%w: truncated payload at value %d", ErrCorrupt, base+i)
			}
			var tmp [8]byte
			copy(tmp[:], comp[pos:pos+nBytes])
			pos += nBytes
			m := binary.LittleEndian.Uint64(tmp[:])
			d := int64(m)
			if sign {
				d = -d
			}
			cur := prev + uint64(d)
			dst = append(dst, math.Float64frombits(cur))
			prev = cur
		}
	}
	if pos != len(comp) {
		return dst, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(comp)-pos)
	}
	return dst, nil
}

// CompressedSize returns the compressed size of src in bytes.
func CompressedSize(src []float64) int {
	return len(Compress(nil, src)) // GFC is cheap enough to just run
}

// Ratio reports original/compressed size for src.
func Ratio(src []float64) float64 {
	if len(src) == 0 {
		return 1
	}
	return float64(len(src)*8) / float64(len(Compress(nil, src)))
}
