package gfc

import (
	"math/rand"
	"testing"
)

// FuzzDecompress: arbitrary bytes must decode fully or error — no panics.
func FuzzDecompress(f *testing.F) {
	good := Compress(nil, []float64{1, 2, 3})
	f.Add(good, 3)
	f.Add([]byte{}, 0)
	f.Add([]byte{0x70}, 1)
	f.Fuzz(func(t *testing.T, comp []byte, n int) {
		if n < 0 || n > 1<<14 {
			return
		}
		out, err := Decompress(nil, comp, n)
		if err == nil && len(out) != n {
			t.Fatalf("decoded %d values, want %d", len(out), n)
		}
	})
}

func TestDecompressRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		comp := make([]byte, rng.Intn(400))
		rng.Read(comp)
		n := rng.Intn(200)
		out, err := Decompress(nil, comp, n)
		if err == nil && len(out) != n {
			t.Fatal("silent mis-size on garbage input")
		}
	}
}
