package gfc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []float64) []byte {
	t.Helper()
	comp := Compress(nil, src)
	got, err := Decompress(nil, comp, len(src))
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if len(got) != len(src) {
		t.Fatalf("length %d want %d", len(got), len(src))
	}
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d: got %v want %v", i, got[i], src[i])
		}
	}
	return comp
}

func TestRoundTripShapes(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []float64{3.14})
	roundTrip(t, make([]float64, 31))
	roundTrip(t, make([]float64, 32))
	roundTrip(t, make([]float64, 33))
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	roundTrip(t, vals)
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 500
		src := make([]float64, n)
		for i := range src {
			switch rng.Intn(3) {
			case 0:
				src[i] = rng.NormFloat64()
			case 1:
				src[i] = math.Float64frombits(rng.Uint64()) // arbitrary bits
			default:
				if i > 0 {
					src[i] = src[i-1] + 1e-9
				}
			}
			if math.IsNaN(src[i]) {
				src[i] = 0 // NaN payloads round-trip too, but keep compare simple
			}
		}
		comp := Compress(nil, src)
		if len(comp) > Bound(n) {
			return false
		}
		got, err := Decompress(nil, comp, n)
		if err != nil {
			return false
		}
		for i := range src {
			if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressesSmoothData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]float64, 1<<16)
	v := 100.0
	for i := range src {
		v += rng.NormFloat64() * 1e-9
		src[i] = v
	}
	r := Ratio(src)
	if r < 1.3 {
		t.Fatalf("smooth doubles should compress: ratio %.3f", r)
	}
	// Constant data compresses hard: 0.5 header + 1 payload byte per value.
	constant := make([]float64, 4096)
	for i := range constant {
		constant[i] = 42
	}
	if rc := Ratio(constant); rc < 5 {
		t.Fatalf("constant data ratio too low: %.3f", rc)
	}
}

func TestRandomDataBoundedExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := make([]float64, 4096)
	for i := range src {
		src[i] = math.Float64frombits(rng.Uint64())
	}
	r := Ratio(src)
	// Worst case: 0.5 header + 8 payload bytes per 8-byte value -> ~0.94.
	if r < 0.93 {
		t.Fatalf("random data expands too much: %.3f", r)
	}
}

func TestCorruptRejected(t *testing.T) {
	src := make([]float64, 64)
	for i := range src {
		src[i] = float64(i)
	}
	comp := Compress(nil, src)
	if _, err := Decompress(nil, comp[:len(comp)-1], 64); err == nil {
		t.Fatal("truncated should fail")
	}
	if _, err := Decompress(nil, append(comp, 9), 64); err == nil {
		t.Fatal("trailing bytes should fail")
	}
	if _, err := Decompress(nil, nil, 10); err == nil {
		t.Fatal("empty buffer should fail for n>0")
	}
}

func BenchmarkCompress1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float64, 1<<17)
	v := 1.0
	for i := range src {
		v += rng.NormFloat64() * 1e-9
		src[i] = v
	}
	b.SetBytes(int64(len(src) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(nil, src)
	}
}
