package mpc

import (
	"encoding/binary"
	"fmt"
)

// Double-precision component pipelines (the MPC paper's native domain):
// the same algebra as components.go over 64-bit words with 64-word
// chunks.

// Pipeline64 is an ordered sequence of stages over 64-bit words,
// terminated by zero-word elimination.
type Pipeline64 struct {
	Stages []Stage
	Dim    int
}

// Canonical64 returns the canonical double-precision pipeline
// (CompressWords64's fused implementation).
func Canonical64(dim int) Pipeline64 {
	return Pipeline64{Stages: []Stage{StageLNV, StageSGN, StageBIT}, Dim: dim}
}

// String renders the pipeline in the paper's notation.
func (p Pipeline64) String() string {
	out := ""
	for _, s := range p.Stages {
		out += s.String() + "|"
	}
	return fmt.Sprintf("%sZE64(dim=%d)", out, p.Dim)
}

func (p Pipeline64) validate() error {
	if err := checkDim(p.Dim); err != nil {
		return err
	}
	seen := map[Stage]bool{}
	for _, s := range p.Stages {
		if s >= numStages {
			return fmt.Errorf("mpc: unknown stage %d", s)
		}
		if seen[s] {
			return fmt.Errorf("mpc: stage %v repeated", s)
		}
		seen[s] = true
	}
	return nil
}

func applyStage64(s Stage, words []uint64, dim int) {
	switch s {
	case StageLNV:
		for i := len(words) - 1; i >= dim; i-- {
			words[i] -= words[i-dim]
		}
	case StageSGN:
		for i, v := range words {
			words[i] = zigzag64(v)
		}
	case StageBIT:
		var chunk [64]uint64
		for base := 0; base+ChunkWords64 <= len(words); base += ChunkWords64 {
			copy(chunk[:], words[base:base+ChunkWords64])
			transpose64(&chunk)
			copy(words[base:base+ChunkWords64], chunk[:])
		}
	}
}

func invertStage64(s Stage, words []uint64, dim int) {
	switch s {
	case StageLNV:
		for i := dim; i < len(words); i++ {
			words[i] += words[i-dim]
		}
	case StageSGN:
		for i, v := range words {
			words[i] = unzigzag64(v)
		}
	case StageBIT:
		applyStage64(StageBIT, words, dim)
	}
}

func zeEncode64(dst []byte, words []uint64) []byte {
	n := len(words)
	for base := 0; base+ChunkWords64 <= n; base += ChunkWords64 {
		var bitmap uint64
		for j := 0; j < ChunkWords64; j++ {
			if words[base+j] != 0 {
				bitmap |= 1 << uint(j)
			}
		}
		dst = binary.LittleEndian.AppendUint64(dst, bitmap)
		for j := 0; j < ChunkWords64; j++ {
			if words[base+j] != 0 {
				dst = binary.LittleEndian.AppendUint64(dst, words[base+j])
			}
		}
	}
	for i := n - n%ChunkWords64; i < n; i++ {
		dst = binary.LittleEndian.AppendUint64(dst, words[i])
	}
	return dst
}

func zeDecode64(comp []byte, n int) ([]uint64, error) {
	out := make([]uint64, 0, n)
	pos := 0
	full := n / ChunkWords64
	for c := 0; c < full; c++ {
		if pos+8 > len(comp) {
			return nil, fmt.Errorf("%w: truncated bitmap at chunk %d", ErrCorrupt, c)
		}
		bitmap := binary.LittleEndian.Uint64(comp[pos:])
		pos += 8
		for j := 0; j < ChunkWords64; j++ {
			if bitmap&(1<<uint(j)) != 0 {
				if pos+8 > len(comp) {
					return nil, fmt.Errorf("%w: truncated plane at chunk %d", ErrCorrupt, c)
				}
				out = append(out, binary.LittleEndian.Uint64(comp[pos:]))
				pos += 8
			} else {
				out = append(out, 0)
			}
		}
	}
	for i := full * ChunkWords64; i < n; i++ {
		if pos+8 > len(comp) {
			return nil, fmt.Errorf("%w: truncated tail", ErrCorrupt)
		}
		out = append(out, binary.LittleEndian.Uint64(comp[pos:]))
		pos += 8
	}
	if pos != len(comp) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(comp)-pos)
	}
	return out, nil
}

// Compress runs the pipeline over 64-bit words, appending to dst.
func (p Pipeline64) Compress(dst []byte, src []uint64) ([]byte, error) {
	if err := p.validate(); err != nil {
		return dst, err
	}
	work := append([]uint64(nil), src...)
	for _, s := range p.Stages {
		applyStage64(s, work, p.Dim)
	}
	return zeEncode64(dst, work), nil
}

// Decompress inverts Compress into exactly n words.
func (p Pipeline64) Decompress(dst []uint64, comp []byte, n int) ([]uint64, error) {
	if err := p.validate(); err != nil {
		return dst, err
	}
	work, err := zeDecode64(comp, n)
	if err != nil {
		return dst, err
	}
	for i := len(p.Stages) - 1; i >= 0; i-- {
		invertStage64(p.Stages[i], work, p.Dim)
	}
	return append(dst, work...), nil
}

// SearchPipeline64 evaluates every stage ordering and dimensionality on a
// double-precision sample, returning the best pipeline and its ratio.
func SearchPipeline64(sample []uint64, maxDim int) (Pipeline64, float64, error) {
	if maxDim < 1 || maxDim > MaxDim {
		return Pipeline64{}, 0, checkDim(maxDim)
	}
	best := Pipeline64{Dim: 1}
	bestSize := int(^uint(0) >> 1)
	for _, stages := range permutedSubsets([]Stage{StageLNV, StageSGN, StageBIT}) {
		usesLNV := false
		for _, s := range stages {
			if s == StageLNV {
				usesLNV = true
			}
		}
		dims := []int{1}
		if usesLNV {
			dims = dims[:0]
			for d := 1; d <= maxDim; d++ {
				dims = append(dims, d)
			}
		}
		for _, dim := range dims {
			p := Pipeline64{Stages: stages, Dim: dim}
			out, err := p.Compress(nil, sample)
			if err != nil {
				return Pipeline64{}, 0, err
			}
			if len(out) < bestSize {
				best, bestSize = p, len(out)
			}
		}
	}
	ratio := 1.0
	if bestSize > 0 {
		ratio = float64(len(sample)*8) / float64(bestSize)
	}
	return best, ratio, nil
}
