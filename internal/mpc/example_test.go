package mpc_test

import (
	"fmt"

	"mpicomp/internal/mpc"
)

// Compress smooth simulation data losslessly and restore it bit-exactly.
func ExampleCompressFloat32() {
	data := make([]float32, 256)
	for i := range data {
		data[i] = 1.0 + float32(i)*1e-4 // smooth field
	}

	comp, _ := mpc.CompressFloat32(nil, data, 1)
	restored, _ := mpc.DecompressFloat32(nil, comp, len(data), 1)

	exact := true
	for i := range data {
		if restored[i] != data[i] {
			exact = false
		}
	}
	fmt.Println("lossless:", exact)
	fmt.Println("compressed smaller:", len(comp) < len(data)*4)
	// Output:
	// lossless: true
	// compressed smaller: true
}

// Interleaved multi-component data compresses best at its true
// dimensionality, which TuneDim discovers automatically.
func ExampleTuneDimFloat32() {
	data := make([]float32, 4096)
	for i := range data {
		component := i % 3
		data[i] = float32(component*1000) + float32(i/3)*1e-3
	}
	dim, _ := mpc.TuneDimFloat32(data, 8)
	fmt.Println("tuned dimensionality:", dim)
	// Output:
	// tuned dimensionality: 3
}
