package mpc

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEveryPipelineRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	src := make([]uint32, 137) // chunk + tail
	for i := range src {
		if i > 0 && rng.Intn(2) == 0 {
			src[i] = src[i-1] + uint32(rng.Intn(8))
		} else {
			src[i] = rng.Uint32()
		}
	}
	for _, stages := range permutedSubsets([]Stage{StageLNV, StageSGN, StageBIT}) {
		for _, dim := range []int{1, 3} {
			p := Pipeline{Stages: stages, Dim: dim}
			comp, err := p.Compress(nil, src)
			if err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			got, err := p.Decompress(nil, comp, len(src))
			if err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			for i := range src {
				if got[i] != src[i] {
					t.Fatalf("%v: word %d differs", p, i)
				}
			}
		}
	}
}

// The canonical component pipeline must produce byte-identical output to
// the fused CompressWords implementation on chunk-aligned input.
func TestCanonicalPipelineMatchesCompressWords(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := make([]uint32, 256)
	v := float32(1)
	for i := range src {
		v += float32(rng.NormFloat64()) * 0.01
		src[i] = math.Float32bits(v)
	}
	for _, dim := range []int{1, 2, 5} {
		fused, err := CompressWords(nil, src, dim)
		if err != nil {
			t.Fatal(err)
		}
		composed, err := Canonical(dim).Compress(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fused, composed) {
			t.Fatalf("dim %d: fused and composed outputs differ (%d vs %d bytes)",
				dim, len(fused), len(composed))
		}
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := (Pipeline{Stages: []Stage{StageLNV, StageLNV}, Dim: 1}).Compress(nil, nil); err == nil {
		t.Fatal("repeated stage should fail")
	}
	if _, err := (Pipeline{Stages: []Stage{Stage(9)}, Dim: 1}).Compress(nil, nil); err == nil {
		t.Fatal("unknown stage should fail")
	}
	if _, err := (Pipeline{Dim: 0}).Compress(nil, nil); err == nil {
		t.Fatal("bad dim should fail")
	}
	if _, err := (Pipeline{Dim: 1}).Decompress(nil, []byte{1, 2}, 32); err == nil {
		t.Fatal("corrupt stream should fail")
	}
}

func TestSearchFindsCanonicalOnSmoothData(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	src := make([]uint32, 4096)
	v := float32(100)
	for i := range src {
		v += float32(rng.NormFloat64()) * 0.01
		src[i] = math.Float32bits(v)
	}
	best, ratio, err := SearchPipeline(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 1.1 {
		t.Fatalf("search should find a compressive pipeline: ratio %.3f (%v)", ratio, best)
	}
	// The winner must include the delta predictor and the transpose —
	// the components that make MPC work on smooth data.
	has := map[Stage]bool{}
	for _, s := range best.Stages {
		has[s] = true
	}
	if !has[StageLNV] || !has[StageBIT] {
		t.Fatalf("search winner %v should use LNV and BIT", best)
	}
	// And it must beat the empty pipeline (raw ZE).
	rawSize, _ := (Pipeline{Dim: 1}).CompressedSize(src)
	bestSize, _ := best.CompressedSize(src)
	if bestSize >= rawSize {
		t.Fatalf("winner %v (%d) should beat raw ZE (%d)", best, bestSize, rawSize)
	}
}

func TestSearchOnRunsPrefersPlainDelta(t *testing.T) {
	// Long runs of identical values: LNV alone already zeroes chunks, so
	// the search must find a pipeline at the format ceiling.
	src := make([]uint32, 2048)
	for i := range src {
		src[i] = 0x3f800000
	}
	best, ratio, err := SearchPipeline(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 15 {
		t.Fatalf("constant data should approach the ZE ceiling: %.2f (%v)", ratio, best)
	}
}

func TestSearchPropertyAlwaysRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(200)
		src := make([]uint32, n)
		for i := range src {
			src[i] = rng.Uint32() >> uint(rng.Intn(24))
		}
		best, _, err := SearchPipeline(src, 3)
		if err != nil {
			return false
		}
		comp, err := best.Compress(nil, src)
		if err != nil {
			return false
		}
		got, err := best.Decompress(nil, comp, n)
		if err != nil {
			return false
		}
		for i := range src {
			if got[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineString(t *testing.T) {
	p := Canonical(5)
	if p.String() != "LNV|SGN|BIT|ZE(dim=5)" {
		t.Fatalf("String: %q", p.String())
	}
}
