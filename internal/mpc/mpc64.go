package mpc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Double-precision MPC. The original MPC paper targets 64-bit data: the
// pipeline is identical to the 32-bit path (LNV delta -> sign fold ->
// bit transpose -> zero-word elimination) but operates on 64-bit words in
// chunks of 64 (two warps' worth in the CUDA mapping), with a 64-bit
// occupancy bitmap per chunk.

// ChunkWords64 is the number of 64-bit words per transpose chunk.
const ChunkWords64 = 64

// Bound64 returns the maximum compressed size in bytes for n 64-bit words.
func Bound64(n int) int {
	full := n / ChunkWords64
	tail := n % ChunkWords64
	return full*(8+ChunkWords64*8) + tail*8
}

func zigzag64(v uint64) uint64   { return (v << 1) ^ uint64(int64(v)>>63) }
func unzigzag64(v uint64) uint64 { return (v >> 1) ^ (-(v & 1)) }

// transpose64 performs an in-place 64x64 bit-matrix transpose (recursive
// block swaps, the 64-bit analogue of transpose32).
func transpose64(a *[64]uint64) {
	var m uint64 = 0x00000000ffffffff
	for j := uint(32); j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
			t := (a[k] ^ (a[k+int(j)] >> j)) & m
			a[k] ^= t
			a[k+int(j)] ^= t << j
		}
		m ^= m << (j >> 1)
	}
}

// CompressWords64 compresses len(src) 64-bit words with the given
// dimensionality, appending to dst.
func CompressWords64(dst []byte, src []uint64, dim int) ([]byte, error) {
	if err := checkDim(dim); err != nil {
		return dst, err
	}
	n := len(src)
	var chunk [64]uint64
	for base := 0; base+ChunkWords64 <= n; base += ChunkWords64 {
		for i := 0; i < ChunkWords64; i++ {
			idx := base + i
			var pred uint64
			if idx >= dim {
				pred = src[idx-dim]
			}
			chunk[i] = zigzag64(src[idx] - pred)
		}
		transpose64(&chunk)
		var bitmap uint64
		for j := 0; j < ChunkWords64; j++ {
			if chunk[j] != 0 {
				bitmap |= 1 << uint(j)
			}
		}
		dst = binary.LittleEndian.AppendUint64(dst, bitmap)
		for j := 0; j < ChunkWords64; j++ {
			if chunk[j] != 0 {
				dst = binary.LittleEndian.AppendUint64(dst, chunk[j])
			}
		}
	}
	for i := n - n%ChunkWords64; i < n; i++ {
		dst = binary.LittleEndian.AppendUint64(dst, src[i])
	}
	return dst, nil
}

// DecompressWords64 decompresses comp into exactly n 64-bit words.
func DecompressWords64(dst []uint64, comp []byte, n, dim int) ([]uint64, error) {
	if err := checkDim(dim); err != nil {
		return dst, err
	}
	out := dst
	start := len(out)
	var chunk [64]uint64
	pos := 0
	full := n / ChunkWords64
	for c := 0; c < full; c++ {
		if pos+8 > len(comp) {
			return dst, fmt.Errorf("%w: truncated bitmap at chunk %d", ErrCorrupt, c)
		}
		bitmap := binary.LittleEndian.Uint64(comp[pos:])
		pos += 8
		for j := 0; j < ChunkWords64; j++ {
			if bitmap&(1<<uint(j)) != 0 {
				if pos+8 > len(comp) {
					return dst, fmt.Errorf("%w: truncated plane at chunk %d", ErrCorrupt, c)
				}
				chunk[j] = binary.LittleEndian.Uint64(comp[pos:])
				pos += 8
			} else {
				chunk[j] = 0
			}
		}
		transpose64(&chunk)
		base := start + c*ChunkWords64
		for i := 0; i < ChunkWords64; i++ {
			idx := base + i
			var pred uint64
			if idx-start >= dim {
				pred = out[idx-dim]
			}
			out = append(out, unzigzag64(chunk[i])+pred)
		}
	}
	for i := full * ChunkWords64; i < n; i++ {
		if pos+8 > len(comp) {
			return dst, fmt.Errorf("%w: truncated tail", ErrCorrupt)
		}
		out = append(out, binary.LittleEndian.Uint64(comp[pos:]))
		pos += 8
	}
	if pos != len(comp) {
		return dst, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(comp)-pos)
	}
	return out, nil
}

// CompressFloat64 losslessly compresses double-precision data.
func CompressFloat64(dst []byte, src []float64, dim int) ([]byte, error) {
	words := make([]uint64, len(src))
	for i, f := range src {
		words[i] = math.Float64bits(f)
	}
	return CompressWords64(dst, words, dim)
}

// DecompressFloat64 decompresses comp into exactly n float64 values.
func DecompressFloat64(dst []float64, comp []byte, n, dim int) ([]float64, error) {
	words, err := DecompressWords64(make([]uint64, 0, n), comp, n, dim)
	if err != nil {
		return dst, err
	}
	for _, w := range words {
		dst = append(dst, math.Float64frombits(w))
	}
	return dst, nil
}

// CompressedSize64 returns the compressed size of src without
// materializing the output.
func CompressedSize64(src []uint64, dim int) (int, error) {
	if err := checkDim(dim); err != nil {
		return 0, err
	}
	n := len(src)
	size := 0
	var chunk [64]uint64
	for base := 0; base+ChunkWords64 <= n; base += ChunkWords64 {
		for i := 0; i < ChunkWords64; i++ {
			idx := base + i
			var pred uint64
			if idx >= dim {
				pred = src[idx-dim]
			}
			chunk[i] = zigzag64(src[idx] - pred)
		}
		transpose64(&chunk)
		size += 8
		for j := 0; j < ChunkWords64; j++ {
			if chunk[j] != 0 {
				size += 8
			}
		}
	}
	size += (n % ChunkWords64) * 8
	return size, nil
}

// Ratio64 reports the compression ratio of 64-bit data at dim.
func Ratio64(src []uint64, dim int) (float64, error) {
	cs, err := CompressedSize64(src, dim)
	if err != nil {
		return 0, err
	}
	if cs == 0 {
		return 1, nil
	}
	return float64(len(src)*8) / float64(cs), nil
}
