package mpc

import (
	"encoding/binary"
	"fmt"
)

// Component framework. The MPC paper does not present one fixed
// algorithm: it defines an algebra of word transformations (value
// predictors, sign folds, bit shuffles) and *synthesizes* the best
// pipeline per data class by exhaustive search, terminating every
// pipeline with zero-word elimination. CompressWords is the canonical
// single-precision pipeline (LNV -> SGN -> BIT -> ZE); this file exposes
// the algebra itself so alternative pipelines can be built, verified and
// searched exactly as in the original work.

// Stage identifies one reversible word transformation.
type Stage uint8

const (
	// StageLNV subtracts the value dim positions earlier (the "last
	// n-th value" predictor; dim is the pipeline's dimensionality).
	StageLNV Stage = iota
	// StageSGN folds the sign bit into the LSB (zig-zag), mapping small
	// negative residuals to small codes.
	StageSGN
	// StageBIT transposes each 32-word chunk's bit matrix so that bit
	// planes become words.
	StageBIT
	numStages
)

// String implements fmt.Stringer with the MPC paper's component names.
func (s Stage) String() string {
	switch s {
	case StageLNV:
		return "LNV"
	case StageSGN:
		return "SGN"
	case StageBIT:
		return "BIT"
	default:
		return fmt.Sprintf("Stage(%d)", uint8(s))
	}
}

// Pipeline is an ordered sequence of stages terminated by zero-word
// elimination. Each stage appears at most once.
type Pipeline struct {
	Stages []Stage
	Dim    int
}

// String renders the pipeline in the MPC paper's "A|B|C|ZE" notation.
func (p Pipeline) String() string {
	out := ""
	for _, s := range p.Stages {
		out += s.String() + "|"
	}
	return fmt.Sprintf("%sZE(dim=%d)", out, p.Dim)
}

// Canonical returns the pipeline CompressWords implements.
func Canonical(dim int) Pipeline {
	return Pipeline{Stages: []Stage{StageLNV, StageSGN, StageBIT}, Dim: dim}
}

func (p Pipeline) validate() error {
	if err := checkDim(p.Dim); err != nil {
		return err
	}
	seen := map[Stage]bool{}
	for _, s := range p.Stages {
		if s >= numStages {
			return fmt.Errorf("mpc: unknown stage %d", s)
		}
		if seen[s] {
			return fmt.Errorf("mpc: stage %v repeated", s)
		}
		seen[s] = true
	}
	return nil
}

// applyStage transforms words in place (forward direction).
func applyStage(s Stage, words []uint32, dim int) {
	switch s {
	case StageLNV:
		// Reverse order so each subtraction sees the original values.
		for i := len(words) - 1; i >= dim; i-- {
			words[i] -= words[i-dim]
		}
	case StageSGN:
		for i, v := range words {
			words[i] = zigzag(v)
		}
	case StageBIT:
		var chunk [32]uint32
		for base := 0; base+ChunkWords <= len(words); base += ChunkWords {
			copy(chunk[:], words[base:base+ChunkWords])
			transpose32(&chunk)
			copy(words[base:base+ChunkWords], chunk[:])
		}
	}
}

// invertStage undoes applyStage.
func invertStage(s Stage, words []uint32, dim int) {
	switch s {
	case StageLNV:
		for i := dim; i < len(words); i++ {
			words[i] += words[i-dim]
		}
	case StageSGN:
		for i, v := range words {
			words[i] = unzigzag(v)
		}
	case StageBIT:
		// The transpose is an involution.
		applyStage(StageBIT, words, dim)
	}
}

// zeEncode is the terminal zero-word-elimination coder: per 32-word chunk
// a bitmap plus the nonzero words; the tail is stored raw.
func zeEncode(dst []byte, words []uint32) []byte {
	n := len(words)
	for base := 0; base+ChunkWords <= n; base += ChunkWords {
		var bitmap uint32
		for j := 0; j < ChunkWords; j++ {
			if words[base+j] != 0 {
				bitmap |= 1 << uint(j)
			}
		}
		dst = binary.LittleEndian.AppendUint32(dst, bitmap)
		for j := 0; j < ChunkWords; j++ {
			if words[base+j] != 0 {
				dst = binary.LittleEndian.AppendUint32(dst, words[base+j])
			}
		}
	}
	for i := n - n%ChunkWords; i < n; i++ {
		dst = binary.LittleEndian.AppendUint32(dst, words[i])
	}
	return dst
}

// zeDecode inverts zeEncode into exactly n words.
func zeDecode(comp []byte, n int) ([]uint32, error) {
	out := make([]uint32, 0, n)
	pos := 0
	full := n / ChunkWords
	for c := 0; c < full; c++ {
		if pos+4 > len(comp) {
			return nil, fmt.Errorf("%w: truncated bitmap at chunk %d", ErrCorrupt, c)
		}
		bitmap := binary.LittleEndian.Uint32(comp[pos:])
		pos += 4
		for j := 0; j < ChunkWords; j++ {
			if bitmap&(1<<uint(j)) != 0 {
				if pos+4 > len(comp) {
					return nil, fmt.Errorf("%w: truncated plane at chunk %d", ErrCorrupt, c)
				}
				out = append(out, binary.LittleEndian.Uint32(comp[pos:]))
				pos += 4
			} else {
				out = append(out, 0)
			}
		}
	}
	for i := full * ChunkWords; i < n; i++ {
		if pos+4 > len(comp) {
			return nil, fmt.Errorf("%w: truncated tail", ErrCorrupt)
		}
		out = append(out, binary.LittleEndian.Uint32(comp[pos:]))
		pos += 4
	}
	if pos != len(comp) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(comp)-pos)
	}
	return out, nil
}

// Compress runs the pipeline over src, appending the encoded stream to dst.
func (p Pipeline) Compress(dst []byte, src []uint32) ([]byte, error) {
	if err := p.validate(); err != nil {
		return dst, err
	}
	work := append([]uint32(nil), src...)
	for _, s := range p.Stages {
		applyStage(s, work, p.Dim)
	}
	return zeEncode(dst, work), nil
}

// Decompress inverts Compress into exactly n words.
func (p Pipeline) Decompress(dst []uint32, comp []byte, n int) ([]uint32, error) {
	if err := p.validate(); err != nil {
		return dst, err
	}
	work, err := zeDecode(comp, n)
	if err != nil {
		return dst, err
	}
	for i := len(p.Stages) - 1; i >= 0; i-- {
		invertStage(p.Stages[i], work, p.Dim)
	}
	return append(dst, work...), nil
}

// CompressedSize reports the pipeline's output size on src without
// keeping the buffer.
func (p Pipeline) CompressedSize(src []uint32) (int, error) {
	out, err := p.Compress(nil, src)
	if err != nil {
		return 0, err
	}
	return len(out), nil
}

// SearchPipeline exhaustively evaluates every stage ordering (each stage
// used at most once) and every dimensionality up to maxDim on the sample,
// returning the pipeline with the smallest output — the MPC paper's
// synthesis procedure. The returned ratio is original/compressed on the
// sample.
func SearchPipeline(sample []uint32, maxDim int) (Pipeline, float64, error) {
	if maxDim < 1 || maxDim > MaxDim {
		return Pipeline{}, 0, checkDim(maxDim)
	}
	stageSets := permutedSubsets([]Stage{StageLNV, StageSGN, StageBIT})
	best := Pipeline{Dim: 1}
	bestSize := int(^uint(0) >> 1)
	for _, stages := range stageSets {
		usesLNV := false
		for _, s := range stages {
			if s == StageLNV {
				usesLNV = true
			}
		}
		dims := []int{1}
		if usesLNV {
			dims = dims[:0]
			for d := 1; d <= maxDim; d++ {
				dims = append(dims, d)
			}
		}
		for _, dim := range dims {
			p := Pipeline{Stages: stages, Dim: dim}
			size, err := p.CompressedSize(sample)
			if err != nil {
				return Pipeline{}, 0, err
			}
			if size < bestSize {
				best, bestSize = p, size
			}
		}
	}
	ratio := 1.0
	if bestSize > 0 {
		ratio = float64(len(sample)*4) / float64(bestSize)
	}
	return best, ratio, nil
}

// permutedSubsets enumerates all orderings of all subsets of stages.
func permutedSubsets(stages []Stage) [][]Stage {
	var out [][]Stage
	var rec func(remaining, current []Stage)
	rec = func(remaining, current []Stage) {
		out = append(out, append([]Stage(nil), current...))
		for i, s := range remaining {
			rest := make([]Stage, 0, len(remaining)-1)
			rest = append(rest, remaining[:i]...)
			rest = append(rest, remaining[i+1:]...)
			rec(rest, append(current, s))
		}
	}
	rec(stages, nil)
	return out
}
