package mpc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func genWords(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	src := make([]uint32, n)
	acc := uint32(0x12345678)
	for i := range src {
		// Smooth-ish data with occasional jumps, so chunks mix dense
		// and sparse bit planes.
		if rng.Intn(17) == 0 {
			acc = rng.Uint32()
		} else {
			acc += uint32(rng.Intn(64)) - 32
		}
		src[i] = acc
	}
	return src
}

// TestAppendCompressWordsIdentical asserts the scratch-reuse entry point
// produces byte-identical output to CompressWords.
func TestAppendCompressWordsIdentical(t *testing.T) {
	for _, n := range []int{0, 1, 5, 31, 32, 33, 64, 1024, 4096 + 7} {
		for _, dim := range []int{1, 2, 4, 8} {
			src := genWords(n, int64(n*100+dim))
			ref, err := CompressWords(nil, src, dim)
			if err != nil {
				t.Fatal(err)
			}
			got, err := AppendCompressWords(make([]byte, 0, Bound(n)), src, dim)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("n=%d dim=%d: AppendCompressWords differs from CompressWords", n, dim)
			}
		}
	}
}

// TestDecompressWordsIntoIdentical asserts the in-place decoder matches
// the appending decoder for all sizes including raw tails.
func TestDecompressWordsIntoIdentical(t *testing.T) {
	for _, n := range []int{0, 1, 5, 31, 32, 33, 64, 1024, 4096 + 7} {
		for _, dim := range []int{1, 2, 4, 8} {
			src := genWords(n, int64(n*100+dim))
			comp, err := CompressWords(nil, src, dim)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := DecompressWords(nil, comp, n, dim)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]uint32, n)
			if err := DecompressWordsInto(got, comp, dim); err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if ref[i] != got[i] {
					t.Fatalf("n=%d dim=%d: word %d differs", n, dim, i)
				}
			}
		}
	}
}

func TestDecompressWordsIntoCorrupt(t *testing.T) {
	src := genWords(128, 7)
	comp, err := CompressWords(nil, src, 2)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]uint32, 128)
	if err := DecompressWordsInto(dst, comp[:len(comp)-3], 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated input: got %v, want ErrCorrupt", err)
	}
	if err := DecompressWordsInto(dst, append(append([]byte(nil), comp...), 0), 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: got %v, want ErrCorrupt", err)
	}
	if err := DecompressWordsInto(dst, comp, 0); !errors.Is(err, ErrBadDim) {
		t.Fatalf("bad dim: got %v, want ErrBadDim", err)
	}
}

// TestScratchRoundTripZeroAlloc asserts that with warmed caller buffers a
// compress+decompress round trip allocates nothing.
func TestScratchRoundTripZeroAlloc(t *testing.T) {
	src := genWords(4096, 11)
	comp := make([]byte, 0, Bound(len(src)))
	dst := make([]uint32, len(src))
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		comp, err = AppendCompressWords(comp[:0], src, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecompressWordsInto(dst, comp, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("round trip allocated %.1f objects, want 0", allocs)
	}
}
