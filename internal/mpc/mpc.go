// Package mpc implements the Massively Parallel Compression (MPC) lossless
// floating-point compressor of Yang, Mukka, Hesaaraki and Burtscher (IEEE
// Cluster 2015), the lossless algorithm the IPDPS'21 paper integrates into
// MVAPICH2.
//
// The pipeline is the canonical MPC chain for GPU execution:
//
//  1. LNV delta: each word is predicted by the word `dim` positions earlier
//     (the "dimensionality" control parameter of the paper), and the
//     residual is the difference. Multidimensional data with interleaved
//     components compresses best when dim equals the component count.
//  2. Sign fold (zig-zag): small negative residuals become small positive
//     words so that similar consecutive values yield residuals whose high
//     bits are zero.
//  3. 32x32 bit transpose per chunk: bit plane j of the 32 residuals in a
//     chunk becomes output word j. Smooth data concentrates entropy in the
//     low planes, so most high-plane words become zero. (A chunk maps to
//     one warp in the CUDA implementation.)
//  4. Zero-word elimination: each chunk emits a 32-bit occupancy bitmap
//     followed by only the nonzero plane words.
//
// The format is self-framing given the original word count: chunks of 32
// words are encoded as [bitmap][nonzero planes...]; a final partial chunk
// (fewer than 32 words) is stored verbatim.
//
// Compression is lossless: Decompress(Compress(x)) == x bit-for-bit, for
// any input, which the property tests verify.
package mpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ChunkWords is the number of 32-bit words per transpose chunk; it matches
// the CUDA warp width the original implementation is built around.
const ChunkWords = 32

// MaxDim is the largest supported dimensionality. The MPC paper explores
// small dimensionalities (typically 1-8); 32 is a generous cap that keeps
// the predictor within one chunk of history.
const MaxDim = 32

var (
	// ErrCorrupt reports a compressed buffer that cannot have been
	// produced by Compress for the stated element count.
	ErrCorrupt = errors.New("mpc: corrupt compressed data")
	// ErrBadDim reports an out-of-range dimensionality.
	ErrBadDim = errors.New("mpc: dimensionality out of range")
)

// Bound returns the maximum compressed size in bytes for n 32-bit words:
// every chunk could be incompressible (bitmap + 32 words) and the tail is
// stored raw.
func Bound(n int) int {
	full := n / ChunkWords
	tail := n % ChunkWords
	return full*(4+ChunkWords*4) + tail*4
}

func checkDim(dim int) error {
	if dim < 1 || dim > MaxDim {
		return fmt.Errorf("%w: %d (want 1..%d)", ErrBadDim, dim, MaxDim)
	}
	return nil
}

// zigzag folds the sign bit into the LSB so small-magnitude residuals of
// either sign have small unsigned representations.
func zigzag(v uint32) uint32 { return (v << 1) ^ uint32(int32(v)>>31) }

// unzigzag inverts zigzag.
func unzigzag(v uint32) uint32 { return (v >> 1) ^ (-(v & 1)) }

// transpose32 performs an in-place 32x32 bit-matrix transpose using the
// classic Hacker's Delight block-swap network. After the call, word j holds
// bit plane j of the original words (bit i of output word j = bit j of
// input word i).
func transpose32(a *[32]uint32) {
	var m uint32 = 0x0000ffff
	for j := uint(16); j != 0; j >>= 1 {
		for k := 0; k < 32; k = (k + int(j) + 1) &^ int(j) {
			t := (a[k] ^ (a[k+int(j)] >> j)) & m
			a[k] ^= t
			a[k+int(j)] ^= t << j
		}
		// The mask for the next (halved) swap distance.
		m ^= m << (j >> 1)
	}
}

// CompressWords compresses n=len(src) 32-bit words with the given
// dimensionality, appending to dst and returning the extended slice.
func CompressWords(dst []byte, src []uint32, dim int) ([]byte, error) {
	if err := checkDim(dim); err != nil {
		return dst, err
	}
	n := len(src)
	var chunk [32]uint32
	for base := 0; base+ChunkWords <= n; base += ChunkWords {
		// Stage 1+2: residuals for this chunk. The predictor may
		// reach into the previous chunk (base+i-dim >= 0).
		for i := 0; i < ChunkWords; i++ {
			idx := base + i
			var pred uint32
			if idx >= dim {
				pred = src[idx-dim]
			}
			chunk[i] = zigzag(src[idx] - pred)
		}
		// Stage 3: bit transpose.
		transpose32(&chunk)
		// Stage 4: zero-word elimination.
		var bitmap uint32
		for j := 0; j < ChunkWords; j++ {
			if chunk[j] != 0 {
				bitmap |= 1 << uint(j)
			}
		}
		dst = binary.LittleEndian.AppendUint32(dst, bitmap)
		for j := 0; j < ChunkWords; j++ {
			if chunk[j] != 0 {
				dst = binary.LittleEndian.AppendUint32(dst, chunk[j])
			}
		}
	}
	// Tail: stored verbatim.
	for i := n - n%ChunkWords; i < n; i++ {
		dst = binary.LittleEndian.AppendUint32(dst, src[i])
	}
	return dst, nil
}

// AppendCompressWords is the scratch-reuse entry point for hot paths: it
// compresses src into dst with no internal temporaries (the transpose
// chunk lives on the stack), so when the caller passes a reused buffer
// with cap(dst) >= Bound(len(src)) the call performs zero heap
// allocations. Output bytes are identical to CompressWords, which shares
// the implementation.
func AppendCompressWords(dst []byte, src []uint32, dim int) ([]byte, error) {
	return CompressWords(dst, src, dim)
}

// DecompressWordsInto decompresses comp into exactly len(dst) words,
// overwriting dst in place with no appends and no internal temporaries —
// the zero-allocation counterpart of DecompressWords for callers that
// pre-slice their destination (e.g. parallel partition decode writing
// disjoint ranges of one buffer). dim must match compression time.
func DecompressWordsInto(dst []uint32, comp []byte, dim int) error {
	if err := checkDim(dim); err != nil {
		return err
	}
	n := len(dst)
	var chunk [32]uint32
	pos := 0
	full := n / ChunkWords
	for c := 0; c < full; c++ {
		if pos+4 > len(comp) {
			return fmt.Errorf("%w: truncated bitmap at chunk %d", ErrCorrupt, c)
		}
		bitmap := binary.LittleEndian.Uint32(comp[pos:])
		pos += 4
		for j := 0; j < ChunkWords; j++ {
			if bitmap&(1<<uint(j)) != 0 {
				if pos+4 > len(comp) {
					return fmt.Errorf("%w: truncated plane at chunk %d", ErrCorrupt, c)
				}
				chunk[j] = binary.LittleEndian.Uint32(comp[pos:])
				pos += 4
			} else {
				chunk[j] = 0
			}
		}
		transpose32(&chunk)
		base := c * ChunkWords
		for i := 0; i < ChunkWords; i++ {
			idx := base + i
			var pred uint32
			if idx >= dim {
				pred = dst[idx-dim]
			}
			dst[idx] = unzigzag(chunk[i]) + pred
		}
	}
	for i := full * ChunkWords; i < n; i++ {
		if pos+4 > len(comp) {
			return fmt.Errorf("%w: truncated tail", ErrCorrupt)
		}
		dst[i] = binary.LittleEndian.Uint32(comp[pos:])
		pos += 4
	}
	if pos != len(comp) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(comp)-pos)
	}
	return nil
}

// DecompressWords decompresses comp into exactly n words, appending to dst.
// dim must match the value used at compression time.
func DecompressWords(dst []uint32, comp []byte, n, dim int) ([]uint32, error) {
	if err := checkDim(dim); err != nil {
		return dst, err
	}
	out := dst
	start := len(out)
	var chunk [32]uint32
	pos := 0
	full := n / ChunkWords
	for c := 0; c < full; c++ {
		if pos+4 > len(comp) {
			return dst, fmt.Errorf("%w: truncated bitmap at chunk %d", ErrCorrupt, c)
		}
		bitmap := binary.LittleEndian.Uint32(comp[pos:])
		pos += 4
		for j := 0; j < ChunkWords; j++ {
			if bitmap&(1<<uint(j)) != 0 {
				if pos+4 > len(comp) {
					return dst, fmt.Errorf("%w: truncated plane at chunk %d", ErrCorrupt, c)
				}
				chunk[j] = binary.LittleEndian.Uint32(comp[pos:])
				pos += 4
			} else {
				chunk[j] = 0
			}
		}
		transpose32(&chunk)
		base := start + c*ChunkWords
		for i := 0; i < ChunkWords; i++ {
			idx := base + i
			var pred uint32
			if idx-start >= dim {
				pred = out[idx-dim]
			}
			out = append(out, unzigzag(chunk[i])+pred)
		}
	}
	for i := full * ChunkWords; i < n; i++ {
		if pos+4 > len(comp) {
			return dst, fmt.Errorf("%w: truncated tail", ErrCorrupt)
		}
		out = append(out, binary.LittleEndian.Uint32(comp[pos:]))
		pos += 4
	}
	if pos != len(comp) {
		return dst, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(comp)-pos)
	}
	return out, nil
}

// CompressFloat32 compresses a float32 slice. The float bits are processed
// as 32-bit words; the transform is fully lossless.
func CompressFloat32(dst []byte, src []float32, dim int) ([]byte, error) {
	words := make([]uint32, len(src))
	for i, f := range src {
		words[i] = math.Float32bits(f)
	}
	return CompressWords(dst, words, dim)
}

// DecompressFloat32 decompresses comp into exactly n float32 values.
func DecompressFloat32(dst []float32, comp []byte, n, dim int) ([]float32, error) {
	words, err := DecompressWords(make([]uint32, 0, n), comp, n, dim)
	if err != nil {
		return dst, err
	}
	for _, w := range words {
		dst = append(dst, math.Float32frombits(w))
	}
	return dst, nil
}

// CompressedSize returns the compressed size in bytes of src at the given
// dimensionality without materializing the output buffer.
func CompressedSize(src []uint32, dim int) (int, error) {
	if err := checkDim(dim); err != nil {
		return 0, err
	}
	n := len(src)
	size := 0
	var chunk [32]uint32
	for base := 0; base+ChunkWords <= n; base += ChunkWords {
		for i := 0; i < ChunkWords; i++ {
			idx := base + i
			var pred uint32
			if idx >= dim {
				pred = src[idx-dim]
			}
			chunk[i] = zigzag(src[idx] - pred)
		}
		transpose32(&chunk)
		size += 4
		for j := 0; j < ChunkWords; j++ {
			if chunk[j] != 0 {
				size += 4
			}
		}
	}
	size += (n % ChunkWords) * 4
	return size, nil
}

// Ratio reports the compression ratio (original/compressed) of src at the
// given dimensionality.
func Ratio(src []uint32, dim int) (float64, error) {
	cs, err := CompressedSize(src, dim)
	if err != nil {
		return 0, err
	}
	if cs == 0 {
		return 1, nil
	}
	return float64(len(src)*4) / float64(cs), nil
}

// TuneDim trials dimensionalities 1..maxDim on src and returns the one with
// the smallest compressed size, reproducing the paper's "fine-tuned
// dimensionality" per dataset (Table III). Ties favor the smaller dim.
func TuneDim(src []uint32, maxDim int) (int, error) {
	if maxDim < 1 || maxDim > MaxDim {
		return 0, checkDim(maxDim)
	}
	best, bestSize := 1, int(^uint(0)>>1)
	for d := 1; d <= maxDim; d++ {
		cs, err := CompressedSize(src, d)
		if err != nil {
			return 0, err
		}
		if cs < bestSize {
			best, bestSize = d, cs
		}
	}
	return best, nil
}

// TuneDimFloat32 is TuneDim over float32 data.
func TuneDimFloat32(src []float32, maxDim int) (int, error) {
	words := make([]uint32, len(src))
	for i, f := range src {
		words[i] = math.Float32bits(f)
	}
	return TuneDim(words, maxDim)
}
