package mpc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTripWords(t *testing.T, src []uint32, dim int) {
	t.Helper()
	comp, err := CompressWords(nil, src, dim)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	got, err := DecompressWords(nil, comp, len(src), dim)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if len(got) != len(src) {
		t.Fatalf("length: got %d want %d", len(got), len(src))
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("word %d: got %#x want %#x (dim=%d)", i, got[i], src[i], dim)
		}
	}
}

func TestRoundTripEmpty(t *testing.T)      { roundTripWords(t, nil, 1) }
func TestRoundTripOneWord(t *testing.T)    { roundTripWords(t, []uint32{0xdeadbeef}, 1) }
func TestRoundTripTailOnly(t *testing.T)   { roundTripWords(t, []uint32{1, 2, 3, 4, 5}, 2) }
func TestRoundTripExactChunk(t *testing.T) { roundTripWords(t, seq(32), 1) }
func TestRoundTripChunkPlusTail(t *testing.T) {
	roundTripWords(t, seq(35), 1)
	roundTripWords(t, seq(63), 3)
	roundTripWords(t, seq(97), 7)
}

func seq(n int) []uint32 {
	s := make([]uint32, n)
	for i := range s {
		s[i] = uint32(i) * 1000003
	}
	return s
}

func TestRoundTripAllDims(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := make([]uint32, 257)
	for i := range src {
		src[i] = rng.Uint32()
	}
	for dim := 1; dim <= MaxDim; dim++ {
		roundTripWords(t, src, dim)
	}
}

func TestRoundTripFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := make([]float32, 1000)
	v := float32(1.0)
	for i := range src {
		v += float32(rng.NormFloat64()) * 0.01
		src[i] = v
	}
	comp, err := CompressFloat32(nil, src, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressFloat32(nil, comp, len(src), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
			t.Fatalf("value %d: got %v want %v", i, got[i], src[i])
		}
	}
}

// Lossless round-trip must hold for arbitrary bit patterns, including NaN
// payloads and infinities, because MPC operates on raw words.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, dimRaw uint8, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + int(dimRaw)%MaxDim
		n := int(nRaw) % 600
		src := make([]uint32, n)
		for i := range src {
			// Mix smooth and random regions to exercise both
			// compressible and incompressible chunks.
			if i > 0 && rng.Intn(2) == 0 {
				src[i] = src[i-1] + uint32(rng.Intn(16))
			} else {
				src[i] = rng.Uint32()
			}
		}
		comp, err := CompressWords(nil, src, dim)
		if err != nil {
			return false
		}
		got, err := DecompressWords(nil, comp, n, dim)
		if err != nil {
			return false
		}
		for i := range src {
			if got[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantDataCompressesHard(t *testing.T) {
	src := make([]uint32, 4096)
	for i := range src {
		src[i] = 0x3f800000 // 1.0f repeated
	}
	cs, err := CompressedSize(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(src)*4) / float64(cs)
	// Constant data should approach the format ceiling of 32x
	// (one bitmap word per 32 input words, one residual plane word for
	// the chunk-leading value at most).
	if ratio < 15 {
		t.Fatalf("constant data ratio too low: %.2f", ratio)
	}
}

func TestSmoothDataBeatsRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8192
	smooth := make([]uint32, n)
	random := make([]uint32, n)
	v := float32(100)
	for i := 0; i < n; i++ {
		v += float32(rng.NormFloat64()) * 0.001
		smooth[i] = math.Float32bits(v)
		random[i] = rng.Uint32()
	}
	rs, err := Ratio(smooth, 1)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Ratio(random, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rs <= rr {
		t.Fatalf("smooth ratio %.3f should beat random ratio %.3f", rs, rr)
	}
	if rs < 1.2 {
		t.Fatalf("smooth data should compress at least 1.2x, got %.3f", rs)
	}
	// Random data should cost at most the bitmap overhead (~3%).
	if rr < 0.96 {
		t.Fatalf("random data expands too much: %.3f", rr)
	}
}

// Dimensionality must matter: data interleaved with stride d compresses
// best at dim=d.
func TestDimensionalitySelectsInterleaving(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const d = 4
	n := 4096
	src := make([]uint32, n)
	walks := [d]float32{10, 2000, -5, 0.5}
	for i := 0; i < n; i++ {
		c := i % d
		walks[c] += float32(rng.NormFloat64()) * 0.001
		src[i] = math.Float32bits(walks[c])
	}
	best, err := TuneDim(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if best != d {
		t.Fatalf("TuneDim picked %d, want %d", best, d)
	}
	rBest, _ := Ratio(src, d)
	r1, _ := Ratio(src, 1)
	if rBest <= r1 {
		t.Fatalf("dim=%d ratio %.3f should beat dim=1 ratio %.3f", d, rBest, r1)
	}
}

func TestCompressedSizeMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(500)
		src := make([]uint32, n)
		for i := range src {
			if rng.Intn(3) > 0 && i > 0 {
				src[i] = src[i-1] + 1
			} else {
				src[i] = rng.Uint32()
			}
		}
		dim := 1 + rng.Intn(MaxDim)
		comp, err := CompressWords(nil, src, dim)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := CompressedSize(src, dim)
		if err != nil {
			t.Fatal(err)
		}
		if cs != len(comp) {
			t.Fatalf("CompressedSize=%d but len(comp)=%d (n=%d dim=%d)", cs, len(comp), n, dim)
		}
		if len(comp) > Bound(n) {
			t.Fatalf("compressed %d exceeds Bound %d", len(comp), Bound(n))
		}
	}
}

func TestBadDimRejected(t *testing.T) {
	if _, err := CompressWords(nil, seq(10), 0); err == nil {
		t.Fatal("dim=0 should fail")
	}
	if _, err := CompressWords(nil, seq(10), MaxDim+1); err == nil {
		t.Fatal("dim too large should fail")
	}
	if _, err := DecompressWords(nil, nil, 0, -1); err == nil {
		t.Fatal("negative dim should fail")
	}
}

func TestCorruptDataRejected(t *testing.T) {
	src := seq(64)
	comp, err := CompressWords(nil, src, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressWords(nil, comp[:len(comp)-2], 64, 1); err == nil {
		t.Fatal("truncated buffer should fail")
	}
	if _, err := DecompressWords(nil, append(comp, 0, 0, 0, 0), 64, 1); err == nil {
		t.Fatal("trailing bytes should fail")
	}
	if _, err := DecompressWords(nil, nil, 64, 1); err == nil {
		t.Fatal("empty buffer should fail for n>0")
	}
}

func TestDecompressAppendsToDst(t *testing.T) {
	src := seq(40)
	comp, _ := CompressWords(nil, src, 1)
	prefix := []uint32{111, 222}
	out, err := DecompressWords(append([]uint32(nil), prefix...), comp, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 42 || out[0] != 111 || out[1] != 222 || out[2] != src[0] {
		t.Fatalf("append semantics broken: %v...", out[:3])
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b [32]uint32
		for i := range a {
			a[i] = rng.Uint32()
		}
		b = a
		transpose32(&b)
		transpose32(&b)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeMovesBits(t *testing.T) {
	// The Hacker's Delight network uses MSB-first orientation: bit j of
	// word i lands at bit (31-i) of word (31-j). Any fixed bit
	// permutation works for zero-word elimination; this test pins the
	// orientation so encode and decode cannot silently diverge.
	var a [32]uint32
	a[5] = 1 << 17
	transpose32(&a)
	for i, w := range a {
		want := uint32(0)
		if i == 31-17 {
			want = 1 << (31 - 5)
		}
		if w != want {
			t.Fatalf("word %d: got %#x want %#x", i, w, want)
		}
	}
}

func TestZigzagInverse(t *testing.T) {
	cases := []uint32{0, 1, 0xffffffff, 0x80000000, 0x7fffffff, 12345, ^uint32(12344)}
	for _, v := range cases {
		if unzigzag(zigzag(v)) != v {
			t.Fatalf("zigzag round-trip failed for %#x", v)
		}
	}
	// Small magnitudes must map to small codes.
	if zigzag(1) != 2 || zigzag(^uint32(0)) != 1 || zigzag(0) != 0 {
		t.Fatalf("zigzag ordering wrong: z(1)=%d z(-1)=%d z(0)=%d", zigzag(1), zigzag(^uint32(0)), zigzag(0))
	}
}

func BenchmarkCompressSmooth1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]uint32, 1<<18) // 1 MiB
	v := float32(1)
	for i := range src {
		v += float32(rng.NormFloat64()) * 0.01
		src[i] = math.Float32bits(v)
	}
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := CompressWords(nil, src, 1)
		if err != nil {
			b.Fatal(err)
		}
		_ = buf
	}
}

func BenchmarkDecompressSmooth1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]uint32, 1<<18)
	v := float32(1)
	for i := range src {
		v += float32(rng.NormFloat64()) * 0.01
		src[i] = math.Float32bits(v)
	}
	comp, err := CompressWords(nil, src, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := DecompressWords(make([]uint32, 0, len(src)), comp, len(src), 1)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}
