package mpc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTripWords64(t *testing.T, src []uint64, dim int) {
	t.Helper()
	comp, err := CompressWords64(nil, src, dim)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	got, err := DecompressWords64(nil, comp, len(src), dim)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if len(got) != len(src) {
		t.Fatalf("length: got %d want %d", len(got), len(src))
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("word %d: got %#x want %#x (dim=%d)", i, got[i], src[i], dim)
		}
	}
}

func seq64(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	return s
}

func TestRoundTrip64Shapes(t *testing.T) {
	roundTripWords64(t, nil, 1)
	roundTripWords64(t, seq64(1), 1)
	roundTripWords64(t, seq64(63), 2)
	roundTripWords64(t, seq64(64), 1)
	roundTripWords64(t, seq64(129), 7)
}

func TestRoundTrip64Property(t *testing.T) {
	f := func(seed int64, dimRaw uint8, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + int(dimRaw)%MaxDim
		n := int(nRaw) % 400
		src := make([]uint64, n)
		for i := range src {
			if i > 0 && rng.Intn(2) == 0 {
				src[i] = src[i-1] + uint64(rng.Intn(16))
			} else {
				src[i] = rng.Uint64()
			}
		}
		comp, err := CompressWords64(nil, src, dim)
		if err != nil {
			return false
		}
		got, err := DecompressWords64(nil, comp, n, dim)
		if err != nil {
			return false
		}
		for i := range src {
			if got[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := make([]float64, 999)
	v := 1.0
	for i := range src {
		v += rng.NormFloat64() * 1e-6
		src[i] = v
	}
	comp, err := CompressFloat64(nil, src, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressFloat64(nil, comp, len(src), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d differs", i)
		}
	}
	// Smooth doubles should compress well (MPC's native domain).
	if ratio := float64(len(src)*8) / float64(len(comp)); ratio < 1.5 {
		t.Fatalf("smooth float64 ratio too low: %.3f", ratio)
	}
}

func TestTranspose64Involution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b [64]uint64
		for i := range a {
			a[i] = rng.Uint64()
		}
		b = a
		transpose64(&b)
		transpose64(&b)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZigzag64Inverse(t *testing.T) {
	for _, v := range []uint64{0, 1, math.MaxUint64, 1 << 63, 12345} {
		if unzigzag64(zigzag64(v)) != v {
			t.Fatalf("zigzag64 round-trip failed for %#x", v)
		}
	}
}

func TestCompressedSize64Matches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(300)
		src := make([]uint64, n)
		for i := range src {
			src[i] = rng.Uint64() >> uint(rng.Intn(40))
		}
		dim := 1 + rng.Intn(MaxDim)
		comp, err := CompressWords64(nil, src, dim)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := CompressedSize64(src, dim)
		if err != nil {
			t.Fatal(err)
		}
		if cs != len(comp) || cs > Bound64(n) {
			t.Fatalf("size mismatch: cs=%d len=%d bound=%d", cs, len(comp), Bound64(n))
		}
	}
}

func TestCorrupt64Rejected(t *testing.T) {
	src := seq64(128)
	comp, _ := CompressWords64(nil, src, 1)
	if _, err := DecompressWords64(nil, comp[:len(comp)-3], 128, 1); err == nil {
		t.Fatal("truncated should fail")
	}
	if _, err := DecompressWords64(nil, append(comp, 1, 2, 3, 4, 5, 6, 7, 8), 128, 1); err == nil {
		t.Fatal("trailing bytes should fail")
	}
	if _, err := CompressWords64(nil, src, 0); err == nil {
		t.Fatal("bad dim should fail")
	}
	if _, err := Ratio64(src, -1); err == nil {
		t.Fatal("bad dim should fail in Ratio64")
	}
}
