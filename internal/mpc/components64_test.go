package mpc

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestEveryPipeline64RoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	src := make([]uint64, 150) // 2 chunks + tail
	for i := range src {
		if i > 0 && rng.Intn(2) == 0 {
			src[i] = src[i-1] + uint64(rng.Intn(8))
		} else {
			src[i] = rng.Uint64()
		}
	}
	for _, stages := range permutedSubsets([]Stage{StageLNV, StageSGN, StageBIT}) {
		p := Pipeline64{Stages: stages, Dim: 2}
		comp, err := p.Compress(nil, src)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		got, err := p.Decompress(nil, comp, len(src))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		for i := range src {
			if got[i] != src[i] {
				t.Fatalf("%v: word %d differs", p, i)
			}
		}
	}
}

func TestCanonical64MatchesCompressWords64(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	src := make([]uint64, 256)
	v := 1.0
	for i := range src {
		v += rng.NormFloat64() * 1e-9
		src[i] = math.Float64bits(v)
	}
	for _, dim := range []int{1, 3} {
		fused, err := CompressWords64(nil, src, dim)
		if err != nil {
			t.Fatal(err)
		}
		composed, err := Canonical64(dim).Compress(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fused, composed) {
			t.Fatalf("dim %d: fused (%d B) and composed (%d B) differ", dim, len(fused), len(composed))
		}
	}
}

func TestSearchPipeline64FindsCompressive(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	src := make([]uint64, 2048)
	v := 1000.0
	for i := range src {
		v += rng.NormFloat64() * 1e-8
		src[i] = math.Float64bits(v)
	}
	best, ratio, err := SearchPipeline64(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 1.3 {
		t.Fatalf("smooth doubles should compress: ratio %.3f (%v)", ratio, best)
	}
	comp, err := best.Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := best.Decompress(nil, comp, len(src))
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("search winner not lossless at %d", i)
		}
	}
	if best.String() == "" {
		t.Fatal("String empty")
	}
}

func TestPipeline64Validation(t *testing.T) {
	if _, err := (Pipeline64{Stages: []Stage{StageBIT, StageBIT}, Dim: 1}).Compress(nil, nil); err == nil {
		t.Fatal("repeated stage should fail")
	}
	if _, err := (Pipeline64{Dim: 99}).Compress(nil, nil); err == nil {
		t.Fatal("bad dim should fail")
	}
	if _, err := (Pipeline64{Dim: 1}).Decompress(nil, []byte{1}, 64); err == nil {
		t.Fatal("corrupt stream should fail")
	}
	if _, _, err := SearchPipeline64(nil, 0); err == nil {
		t.Fatal("bad maxDim should fail")
	}
}
