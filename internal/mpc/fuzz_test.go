package mpc

import (
	"math/rand"
	"testing"
)

// FuzzDecompressWords: arbitrary bytes must either decode into exactly n
// words or return an error — never panic, never mis-size.
func FuzzDecompressWords(f *testing.F) {
	good, _ := CompressWords(nil, seq(100), 3)
	f.Add(good, 100, 3)
	f.Add([]byte{}, 0, 1)
	f.Add([]byte{1, 2, 3}, 32, 1)
	f.Fuzz(func(t *testing.T, comp []byte, n, dim int) {
		if n < 0 || n > 1<<16 {
			return
		}
		out, err := DecompressWords(nil, comp, n, dim)
		if err == nil && len(out) != n {
			t.Fatalf("decoded %d words, want %d", len(out), n)
		}
	})
}

func FuzzDecompressWords64(f *testing.F) {
	good, _ := CompressWords64(nil, seq64(100), 2)
	f.Add(good, 100, 2)
	f.Add([]byte{0xff}, 64, 1)
	f.Fuzz(func(t *testing.T, comp []byte, n, dim int) {
		if n < 0 || n > 1<<15 {
			return
		}
		out, err := DecompressWords64(nil, comp, n, dim)
		if err == nil && len(out) != n {
			t.Fatalf("decoded %d words, want %d", len(out), n)
		}
	})
}

// TestDecompressRandomBytes drives the decoder over random garbage as a
// plain test so the property is exercised on every `go test` run.
func TestDecompressRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(300)
		comp := make([]byte, rng.Intn(600))
		rng.Read(comp)
		dim := 1 + rng.Intn(MaxDim)
		out, err := DecompressWords(nil, comp, n, dim)
		if err == nil && len(out) != n {
			t.Fatalf("silent mis-size on garbage input")
		}
		out64, err := DecompressWords64(nil, comp, n, dim)
		if err == nil && len(out64) != n {
			t.Fatalf("silent mis-size on garbage input (64)")
		}
	}
}
