// Package linttest is an analysistest-style golden runner for the
// simlint analyzers. Test packages live under a GOPATH-shaped tree
// (testdata/src/<importpath>/*.go) and mark expected diagnostics with
// trailing comments of the form
//
//	x := bad() // want "regexp matching the message"
//
// Multiple expectations on one line are multiple quoted regexps. Local
// imports resolve against sibling testdata/src directories (so golden
// packages can model codecpool/mpi shims without importing the real
// module); standard-library imports resolve through compiler export
// data exactly like the module driver.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"mpicomp/internal/simlint/analysis"
	"mpicomp/internal/simlint/loader"
)

// Run loads each named package from testdata/src and checks the
// analyzer's diagnostics against the // want expectations. The
// analyzer's Requires dependencies run first on each package, and the
// analyzer itself also runs over every testdata-local dependency of the
// target (in dependency order, diagnostics discarded) with a shared
// fact store, so golden packages exercise the cross-package facts path
// exactly as the module drivers do.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	for _, pkgpath := range pkgpaths {
		t.Run(pkgpath, func(t *testing.T) {
			t.Helper()
			ld, err := newPkgLoader(src)
			if err != nil {
				t.Fatal(err)
			}
			target, err := ld.load(pkgpath)
			if err != nil {
				t.Fatal(err)
			}
			if len(target.typeErrors) > 0 {
				t.Fatalf("type errors in %s: %v", pkgpath, target.typeErrors)
			}
			store := analysis.NewFactStore([]*analysis.Analyzer{a})
			var got []analysis.Diagnostic
			// ld.order lists every loaded package with dependencies
			// before importers; the target is last.
			for _, loaded := range ld.order {
				loaded := loaded
				unit := analysis.Unit{Fset: ld.fset, Files: loaded.files, Pkg: loaded.pkg, Info: loaded.info}
				err := analysis.RunUnit(unit, []*analysis.Analyzer{a}, store, func(_ *analysis.Analyzer, d analysis.Diagnostic) {
					if loaded == target {
						got = append(got, d)
					}
				})
				if err != nil {
					t.Fatalf("analyzer %s: %v", a.Name, err)
				}
			}
			checkExpectations(t, ld.fset, target.files, got)
		})
	}
}

// expectation is one `// want "rx"` clause.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, got []analysis.Diagnostic) {
	t.Helper()
	var wants []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				rxs, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, rx := range rxs {
					wants = append(wants, expectation{pos.Filename, pos.Line, rx})
				}
			}
		}
	}
	matched := make([]bool, len(got))
	for _, w := range wants {
		found := false
		for i, d := range got {
			if matched[i] {
				continue
			}
			p := fset.Position(d.Pos)
			if p.Filename == w.file && p.Line == w.line && w.rx.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
	for i, d := range got {
		if !matched[i] {
			p := fset.Position(d.Pos)
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
}

// parseWant extracts the regexps from a `// want "a" "b"` comment, or
// nil if the comment is not a want clause.
func parseWant(text string) ([]*regexp.Regexp, error) {
	body, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, nil
	}
	var rxs []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			return nil, fmt.Errorf("malformed want clause near %q", rest)
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == rest[0] && (rest[0] == '`' || rest[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated string in want clause %q", rest)
		}
		lit, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad want string %q: %v", rest[:end+1], err)
		}
		rx, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		rxs = append(rxs, rx)
		rest = strings.TrimSpace(rest[end+1:])
	}
	return rxs, nil
}

// pkgLoader type-checks testdata packages, resolving local fakes from
// source and everything else from compiler export data.
type pkgLoader struct {
	srcRoot string
	fset    *token.FileSet
	gc      types.Importer
	cache   map[string]*loadedPkg
	// order records packages in load-completion order: every testdata
	// dependency precedes its importers.
	order []*loadedPkg
}

type loadedPkg struct {
	pkg        *types.Package
	files      []*ast.File
	info       *types.Info
	typeErrors []error
}

func newPkgLoader(srcRoot string) (*pkgLoader, error) {
	l := &pkgLoader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		cache:   make(map[string]*loadedPkg),
	}
	std, err := stdlibImports(srcRoot)
	if err != nil {
		return nil, err
	}
	exports, err := stdlibExports(std)
	if err != nil {
		return nil, err
	}
	l.gc = loader.ExportImporter(l.fset, exports)
	return l, nil
}

// stdlibImports walks every testdata package and collects the imports
// that do not resolve to local testdata directories.
func stdlibImports(srcRoot string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.Walk(srcRoot, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p == "" {
				continue
			}
			if fi, err := os.Stat(filepath.Join(srcRoot, p)); err == nil && fi.IsDir() {
				continue // local fake
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// stdlibExports maps the transitive closure of the given stdlib
// packages to their compiled export data files.
func stdlibExports(pkgs []string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	listed, err := loader.ListExports(pkgs)
	if err != nil {
		return nil, err
	}
	return listed, nil
}

// Import implements types.Importer: testdata-local packages are
// type-checked from source (memoized), all others come from export data.
func (l *pkgLoader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p.pkg, nil
	}
	dir := filepath.Join(l.srcRoot, path)
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.gc.Import(path)
}

// load parses and type-checks the testdata package at srcRoot/path.
func (l *pkgLoader) load(path string) (*loadedPkg, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	lp := &loadedPkg{info: loader.NewInfo(), files: files}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { lp.typeErrors = append(lp.typeErrors, err) },
	}
	pkg, err := conf.Check(path, l.fset, files, lp.info)
	if err != nil && pkg == nil {
		return nil, err
	}
	lp.pkg = pkg
	l.cache[path] = lp
	l.order = append(l.order, lp)
	return lp, nil
}
