// Package simlint bundles the repository's custom static analyzers:
// compile-time enforcement of the simulator's determinism, virtual-
// clock, and arena-aliasing invariants. See DESIGN.md §10 for the
// contract each analyzer guards.
//
// The suite runs three ways: standalone via cmd/simlint, under
// `go vet -vettool=$(which simlint) ./...`, and in-process from tests
// (TestTreeIsSimlintClean keeps the tree at zero diagnostics).
package simlint

import (
	"fmt"
	"go/token"
	"sort"

	"mpicomp/internal/simlint/analysis"
	"mpicomp/internal/simlint/arenaescape"
	"mpicomp/internal/simlint/detrange"
	"mpicomp/internal/simlint/errwrap"
	"mpicomp/internal/simlint/loader"
	"mpicomp/internal/simlint/seedrand"
	"mpicomp/internal/simlint/vclockpurity"
)

// Analyzers returns the full simlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		vclockpurity.Analyzer,
		detrange.Analyzer,
		seedrand.Analyzer,
		arenaescape.Analyzer,
		errwrap.Analyzer,
	}
}

// ByName returns the named analyzers, erroring on unknown names.
func ByName(names []string) ([]*analysis.Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Diagnostic is one resolved finding.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Run loads the packages matching patterns under dir and applies the
// analyzers, returning findings sorted by position. Type-check errors
// in the tree are returned as an error: analyzers need sound type
// information to be trusted.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("type errors in %s (simlint needs a compiling tree): %v",
				pkg.ImportPath, pkg.TypeErrors[0])
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Position: pkg.Fset.Position(d.Pos),
					Analyzer: name,
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
