// Package simlint bundles the repository's custom static analyzers:
// compile-time enforcement of the simulator's determinism, virtual-
// clock, and arena-aliasing invariants. See DESIGN.md §10 for the
// contract each analyzer guards.
//
// The suite runs three ways: standalone via cmd/simlint, under
// `go vet -vettool=$(which simlint) ./...`, and in-process from tests
// (TestTreeIsSimlintClean keeps the tree at zero diagnostics).
package simlint

import (
	"fmt"
	"go/token"
	"sort"

	"mpicomp/internal/simlint/analysis"
	"mpicomp/internal/simlint/arenaescape"
	"mpicomp/internal/simlint/creditbalance"
	"mpicomp/internal/simlint/detrange"
	"mpicomp/internal/simlint/errwrap"
	"mpicomp/internal/simlint/loader"
	"mpicomp/internal/simlint/lockorder"
	"mpicomp/internal/simlint/phasecharge"
	"mpicomp/internal/simlint/seedrand"
	"mpicomp/internal/simlint/vclockpurity"
	"mpicomp/internal/simlint/wireparity"
)

// Analyzers returns the full simlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		vclockpurity.Analyzer,
		detrange.Analyzer,
		seedrand.Analyzer,
		arenaescape.Analyzer,
		errwrap.Analyzer,
		creditbalance.Analyzer,
		lockorder.Analyzer,
		wireparity.Analyzer,
		phasecharge.Analyzer,
	}
}

// ByName returns the named analyzers, erroring on unknown names.
func ByName(names []string) ([]*analysis.Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Diagnostic is one resolved finding.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Run loads the packages matching patterns under dir and applies the
// analyzers, returning findings sorted by position. Packages are
// processed in dependency order with one shared fact store, so facts an
// analyzer exports over a dependency are visible while its importers
// are analyzed. Type-check errors in the tree are returned as an error:
// analyzers need sound type information to be trusted.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	store := analysis.NewFactStore(analyzers)
	var diags []Diagnostic
	for _, pkg := range depOrder(pkgs) {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("type errors in %s (simlint needs a compiling tree): %v",
				pkg.ImportPath, pkg.TypeErrors[0])
		}
		unit := analysis.Unit{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
		err := analysis.RunUnit(unit, analyzers, store, func(a *analysis.Analyzer, d analysis.Diagnostic) {
			diags = append(diags, Diagnostic{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// depOrder returns the target packages with every dependency before its
// importers (ties broken by the loader's deterministic name order), the
// processing order the facts layer requires.
func depOrder(pkgs []*loader.Package) []*loader.Package {
	byPath := make(map[string]*loader.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	visited := make(map[string]bool, len(pkgs))
	out := make([]*loader.Package, 0, len(pkgs))
	var visit func(p *loader.Package)
	visit = func(p *loader.Package) {
		if visited[p.ImportPath] {
			return
		}
		visited[p.ImportPath] = true
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
