package loader

import (
	"go/types"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot walks up from this source file to the directory holding go.mod.
func moduleRoot(t *testing.T) string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

func TestLoadTypeChecksModulePackages(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "./internal/simtime", "./internal/faults")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: type errors: %v", p.ImportPath, p.TypeErrors)
		}
		if len(p.Files) == 0 {
			t.Errorf("%s: no files parsed", p.ImportPath)
		}
	}
	st := byPath["mpicomp/internal/simtime"]
	if st == nil {
		t.Fatalf("simtime not loaded; got %v", byPath)
	}
	obj := st.Types.Scope().Lookup("Clock")
	if obj == nil {
		t.Fatal("simtime.Clock not found in type info")
	}
	if _, ok := obj.Type().(*types.Named); !ok {
		t.Fatalf("simtime.Clock is %T, want *types.Named", obj.Type())
	}
}

// TestLoadResolvesInternalDeps loads a package that imports other module
// packages (mpi -> core, faults, netsim, …) purely from export data.
func TestLoadResolvesInternalDeps(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "./internal/mpi")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if len(p.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	if p.Types.Scope().Lookup("World") == nil {
		t.Fatal("mpi.World not found")
	}
}
