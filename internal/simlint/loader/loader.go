// Package loader turns `go list -export` output into type-checked
// packages for the simlint analyzers, using nothing but the standard
// library. Dependencies — stdlib and module-internal alike — are
// imported from the compiler's cached export data, so only the target
// packages themselves are parsed from source. This is the same strategy
// x/tools' go/packages uses in LoadTypes mode, reimplemented here
// because the repository vendors no third-party modules.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	// Imports lists the package's direct imports (as import paths), so
	// drivers can process targets in dependency order — a requirement
	// of the facts layer, where analyzing an importer must see the
	// facts its dependencies exported.
	Imports []string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// TypeErrors holds type-checker soft failures. Analyzers still run
	// over partially checked packages; drivers surface these separately.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (a directory inside the module), compiles
// export data for every dependency, and returns the matched packages
// parsed and type-checked. Test files are not included: simlint guards
// the production wire path, and `go list`'s GoFiles field is exactly
// that set.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Imports,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if !lp.DepOnly && !lp.Standard && lp.Name != "" {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ListExports maps the transitive closure of the given packages
// (typically standard-library imports of golden-test files) to their
// compiled export data files, building them if needed. It runs in the
// current directory, which must lie inside a Go module.
func ListExports(pkgs []string) (map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, pkgs...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -export %v: %v\n%s", pkgs, err, stderr.Bytes())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(&stdout)
	for {
		var lp struct{ ImportPath, Export string }
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through compiler export data files (as produced by `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func check(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Imports:    lp.Imports,
		Fset:       fset,
		Info:       NewInfo(),
	}
	pkg.Files = files
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, pkg.Info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
