// Package wireparity keeps the fixed-layout wire codecs honest: for
// every control-packet struct T with an `Encode*` method and a
// `Decode*` function (core's Header, ChunkHeader, ChunkNack, Heartbeat,
// RouteUpdate), the two directions must agree field-for-field, the
// fixed byte count the encoder appends must match the declared size
// constant, and every decoder must be exercised by a fuzz target — the
// repo's standing rule that anything parsing bytes off the simulated
// wire survives arbitrary corruption.
//
// Checks, each at the declaration it indicts:
//
//   - an Encode* method with no Decode* returning T, and vice versa;
//   - a field the encoder serializes that the decoder never assigns
//     (silently zeroed on receive — the classic new-field regression),
//     and a field the decoder fills that the encoder never reads;
//   - a struct field missing from both directions (extend the codec,
//     or mark the field `//simlint:nowire <reason>` if it is
//     deliberately host-only);
//   - the sum of fixed bytes appended outside loops differing from the
//     `<T>Size` / `<t>Fixed` constant the decoder bounds-checks with;
//   - a Decode* function no `Fuzz*` target in the package's _test.go
//     files references (suppress with `//simlint:nofuzz <reason>`).
//
// Suppress any other finding with `//simlint:wireok <reason>`.
package wireparity

import (
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"unicode"

	"mpicomp/internal/simlint/analysis"
)

const (
	directive       = "wireok"
	nowireDirective = "nowire"
	nofuzzDirective = "nofuzz"
)

// Analyzer is the wireparity check.
var Analyzer = &analysis.Analyzer{
	Name: "wireparity",
	Doc: "check Encode*/Decode* wire-codec pairs for field parity, size-constant agreement, and fuzz coverage; " +
		"suppress with //simlint:wireok, exclude fields with //simlint:nowire, waive fuzz with //simlint:nofuzz",
	Run: run,
}

// codecSide is one direction of a codec with its declaring file.
type codecSide struct {
	decl *ast.FuncDecl
	file *ast.File
}

type checker struct {
	pass     *analysis.Pass
	encoders map[*types.TypeName]codecSide
	decoders map[*types.TypeName]codecSide
	// fields maps each codec type to the file and position of its
	// struct fields, for nowire directives and field-level reports.
	fieldPos  map[*types.TypeName]map[string]token.Pos
	fieldFile map[*types.TypeName]*ast.File
	fuzzRefs  map[string]map[string]bool // test-file dir -> idents referenced inside Fuzz* funcs
}

func run(pass *analysis.Pass) (any, error) {
	cb := &checker{
		pass:      pass,
		encoders:  make(map[*types.TypeName]codecSide),
		decoders:  make(map[*types.TypeName]codecSide),
		fieldPos:  make(map[*types.TypeName]map[string]token.Pos),
		fieldFile: make(map[*types.TypeName]*ast.File),
		fuzzRefs:  make(map[string]map[string]bool),
	}
	cb.discover()

	tns := make([]*types.TypeName, 0, len(cb.encoders)+len(cb.decoders))
	seen := make(map[*types.TypeName]bool)
	for tn := range cb.encoders {
		if !seen[tn] {
			seen[tn] = true
			tns = append(tns, tn)
		}
	}
	for tn := range cb.decoders {
		if !seen[tn] {
			seen[tn] = true
			tns = append(tns, tn)
		}
	}
	sort.Slice(tns, func(i, j int) bool { return tns[i].Name() < tns[j].Name() })

	for _, tn := range tns {
		cb.checkCodec(tn)
	}
	return nil, nil
}

// discover finds the package's Encode*/Decode* pairs and the struct
// field positions of their types. Test files are skipped: codecs live
// in production code, fuzz targets in _test.go.
func (cb *checker) discover() {
	for _, file := range cb.pass.Files {
		if analysis.IsTestFile(cb.pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				cb.discoverFunc(file, d)
			case *ast.GenDecl:
				if d.Tok == token.TYPE {
					cb.discoverType(file, d)
				}
			}
		}
	}
}

func (cb *checker) discoverFunc(file *ast.File, fd *ast.FuncDecl) {
	fn, _ := cb.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	switch {
	case fd.Recv != nil && strings.HasPrefix(fn.Name(), "Encode"):
		// An encoder returns the serialized bytes.
		if sig.Results().Len() != 1 || !isByteSlice(sig.Results().At(0).Type()) {
			return
		}
		if tn := localStructName(cb.pass, sig.Recv().Type()); tn != nil {
			cb.encoders[tn] = codecSide{fd, file}
		}
	case fd.Recv == nil && strings.HasPrefix(fn.Name(), "Decode"):
		// A decoder's first result is the decoded struct.
		if sig.Results().Len() == 0 {
			return
		}
		if tn := localStructName(cb.pass, sig.Results().At(0).Type()); tn != nil {
			cb.decoders[tn] = codecSide{fd, file}
		}
	}
}

func (cb *checker) discoverType(file *ast.File, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		tn, _ := cb.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if tn == nil {
			continue
		}
		pos := make(map[string]token.Pos)
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				pos[name.Name] = name.Pos()
			}
		}
		cb.fieldPos[tn] = pos
		cb.fieldFile[tn] = file
	}
}

func (cb *checker) checkCodec(tn *types.TypeName) {
	enc, hasEnc := cb.encoders[tn]
	dec, hasDec := cb.decoders[tn]
	switch {
	case hasEnc && !hasDec:
		cb.report(enc.file, enc.decl.Name.Pos(),
			"%s has no matching Decode* function returning %s: a wire writer without a reader", enc.decl.Name.Name, tn.Name())
		return
	case hasDec && !hasEnc:
		cb.report(dec.file, dec.decl.Name.Pos(),
			"%s has no matching Encode* method on %s: a wire reader without a writer", dec.decl.Name.Name, tn.Name())
		cb.checkFuzz(tn, dec)
		return
	}

	encReads := cb.fieldsRead(enc.decl)
	decSets := cb.fieldsSet(dec.decl, tn)
	if encReads != nil {
		for _, f := range sortedDiff(encReads, decSets) {
			cb.report(dec.file, dec.decl.Name.Pos(),
				"%s serializes %s.%s but %s never sets it: the field arrives zeroed", enc.decl.Name.Name, tn.Name(), f, dec.decl.Name.Name)
		}
		for _, f := range sortedDiff(decSets, encReads) {
			cb.report(enc.file, enc.decl.Name.Pos(),
				"%s sets %s.%s but %s never reads it: the decoder invents the field", dec.decl.Name.Name, tn.Name(), f, enc.decl.Name.Name)
		}
		cb.checkUnserialized(tn, encReads, decSets)
	}

	if declared, ok := cb.sizeConst(tn); ok {
		if fixed := cb.fixedBytes(enc.decl); fixed > 0 && fixed != declared {
			cb.report(enc.file, enc.decl.Name.Pos(),
				"%s appends %d fixed bytes but the declared size constant is %d: decoder bounds checks disagree with the writer",
				enc.decl.Name.Name, fixed, declared)
		}
	}
	cb.checkFuzz(tn, dec)
}

// checkUnserialized flags struct fields missing from both directions.
func (cb *checker) checkUnserialized(tn *types.TypeName, encReads, decSets map[string]bool) {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	file := cb.fieldFile[tn]
	positions := cb.fieldPos[tn]
	if file == nil || positions == nil {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		name := st.Field(i).Name()
		if encReads[name] || decSets[name] {
			continue
		}
		pos, ok := positions[name]
		if !ok {
			continue
		}
		if cb.pass.DirectivesFor(file).Allows(nowireDirective, pos) {
			continue
		}
		if cb.pass.DirectivesFor(file).Allows(directive, pos) {
			continue
		}
		cb.pass.Reportf(pos, "field %s.%s is in neither the encoder nor the decoder: extend the codec or mark it //simlint:nowire", tn.Name(), name)
	}
}

// fieldsRead returns the receiver fields the encoder reads, or nil when
// the receiver is unnamed (parity cannot be tracked).
func (cb *checker) fieldsRead(enc *ast.FuncDecl) map[string]bool {
	if enc.Recv == nil || len(enc.Recv.List) != 1 || len(enc.Recv.List[0].Names) != 1 {
		return nil
	}
	recvObj := cb.pass.TypesInfo.Defs[enc.Recv.List[0].Names[0]]
	if recvObj == nil {
		return nil
	}
	reads := make(map[string]bool)
	ast.Inspect(enc.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || cb.pass.TypesInfo.Uses[base] != recvObj {
			return true
		}
		if s, ok := cb.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			reads[sel.Sel.Name] = true
		}
		return true
	})
	return reads
}

// fieldsSet returns the fields of tn the decoder assigns, through
// composite literals and field assignments.
func (cb *checker) fieldsSet(dec *ast.FuncDecl, tn *types.TypeName) map[string]bool {
	sets := make(map[string]bool)
	ast.Inspect(dec.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := cb.pass.TypesInfo.Types[n].Type
			if localStructName(cb.pass, t) != tn {
				return true
			}
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						sets[key.Name] = true
					}
				} else if st, ok := tn.Type().Underlying().(*types.Struct); ok {
					// Positional literal: every field is set.
					for i := 0; i < st.NumFields(); i++ {
						sets[st.Field(i).Name()] = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s, ok := cb.pass.TypesInfo.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					continue
				}
				if localStructName(cb.pass, s.Recv()) == tn {
					sets[sel.Sel.Name] = true
				}
			}
		}
		return true
	})
	return sets
}

// sizeConst finds the declared fixed-size constant of tn: <T>Size, or
// <t>Fixed for codecs with a variable tail.
func (cb *checker) sizeConst(tn *types.TypeName) (int64, bool) {
	for _, name := range []string{tn.Name() + "Size", lowerFirst(tn.Name()) + "Fixed", lowerFirst(tn.Name()) + "Size"} {
		c, ok := cb.pass.Pkg.Scope().Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if v, ok := constInt64(c); ok {
			return v, true
		}
	}
	return 0, false
}

// fixedBytes sums the bytes the encoder appends outside loops: 1 per
// byte-typed append argument, plus the width of each
// binary.<Endian>.AppendUintN. Returns 0 (skip the check) when the body
// appends something it cannot size.
func (cb *checker) fixedBytes(enc *ast.FuncDecl) int64 {
	// Loop bodies hold the variable part; exclude their spans.
	var loops []ast.Node
	ast.Inspect(enc.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.Pos() <= pos && pos < l.End() {
				return true
			}
		}
		return false
	}

	var total int64
	ok := true
	ast.Inspect(enc.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || inLoop(call.Pos()) {
			return true
		}
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "append" {
			if _, builtin := cb.pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
				if call.Ellipsis.IsValid() {
					ok = false // variable-length splice outside a loop
					return true
				}
				for _, a := range call.Args[1:] {
					if isByte(cb.pass.TypesInfo.Types[a].Type) {
						total++
					} else {
						ok = false
					}
				}
			}
			return true
		}
		if callee := analysis.Callee(cb.pass.TypesInfo, call); callee != nil && callee.Pkg() != nil &&
			callee.Pkg().Path() == "encoding/binary" {
			switch callee.Name() {
			case "AppendUint64":
				total += 8
			case "AppendUint32":
				total += 4
			case "AppendUint16":
				total += 2
			}
		}
		return true
	})
	if !ok {
		return 0
	}
	return total
}

// checkFuzz requires a Fuzz* function in the decoder's package
// directory to reference the decoder.
func (cb *checker) checkFuzz(tn *types.TypeName, dec codecSide) {
	name := dec.decl.Name.Name
	if cb.pass.DirectivesFor(dec.file).Allows(nofuzzDirective, dec.decl.Pos()) {
		return
	}
	dir := filepath.Dir(cb.pass.Position(dec.file.Pos()).Filename)
	refs := cb.fuzzRefsFor(dir)
	if refs[name] {
		return
	}
	cb.report(dec.file, dec.decl.Name.Pos(),
		"no Fuzz* target references %s: every wire decoder needs a fuzz target (or //simlint:nofuzz <reason>)", name)
}

// fuzzRefsFor parses the directory's _test.go files (syntax only) and
// collects every identifier referenced inside Fuzz* functions.
func (cb *checker) fuzzRefsFor(dir string) map[string]bool {
	if refs, ok := cb.fuzzRefs[dir]; ok {
		return refs
	}
	refs := make(map[string]bool)
	cb.fuzzRefs[dir] = refs
	entries, err := os.ReadDir(dir)
	if err != nil {
		return refs
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Fuzz") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					refs[id.Name] = true
				}
				return true
			})
		}
	}
	return refs
}

func (cb *checker) report(file *ast.File, pos token.Pos, format string, args ...any) {
	if cb.pass.DirectivesFor(file).Allows(directive, pos) {
		return
	}
	cb.pass.Reportf(pos, format, args...)
}

// --- helpers --------------------------------------------------------

// localStructName returns the TypeName of t (through one pointer) when
// t is a struct type declared in the package under analysis.
func localStructName(pass *analysis.Pass, t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() != pass.Pkg {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	return n.Obj()
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isByte(s.Elem())
}

func isByte(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

func constInt64(c *types.Const) (int64, bool) {
	val := c.Val()
	if val == nil || val.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(val)
}

func sortedDiff(a, b map[string]bool) []string {
	var out []string
	for f := range a {
		if !b[f] {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	r := []rune(s)
	r[0] = unicode.ToLower(r[0])
	return string(r)
}
