package wireparity_test

import (
	"testing"

	"mpicomp/internal/simlint/linttest"
	"mpicomp/internal/simlint/wireparity"
)

func TestWireParity(t *testing.T) {
	linttest.Run(t, "testdata", wireparity.Analyzer, "wirepar")
}
