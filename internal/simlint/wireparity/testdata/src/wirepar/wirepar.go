// Package wirepar is the golden input for the wireparity analyzer:
// paired codecs with full parity, dropped and invented fields, a field
// in neither direction, size-constant drift, unpaired halves, missing
// fuzz coverage, and directive suppressions.
package wirepar

import (
	"encoding/binary"
	"errors"
)

var errShort = errors.New("short buffer")

// --- fully paired codec ---------------------------------------------

// GoodSize is the wire size of Good: kind byte, seq, count.
const GoodSize = 13

type Good struct {
	Seq  uint64
	Kind byte
	N    uint32
}

func (g Good) EncodeGood() []byte {
	buf := make([]byte, 0, GoodSize)
	buf = append(buf, g.Kind)
	buf = binary.LittleEndian.AppendUint64(buf, g.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, g.N)
	return buf
}

func DecodeGood(b []byte) (Good, error) {
	var g Good
	if len(b) < GoodSize {
		return g, errShort
	}
	g.Kind = b[0]
	g.Seq = binary.LittleEndian.Uint64(b[1:])
	g.N = binary.LittleEndian.Uint32(b[9:])
	return g, nil
}

// --- decoder drops a field ------------------------------------------

type Drop struct{ A, B uint32 }

func (d Drop) EncodeDrop() []byte {
	buf := binary.LittleEndian.AppendUint32(nil, d.A)
	return binary.LittleEndian.AppendUint32(buf, d.B)
}

func DecodeDrop(b []byte) (Drop, error) { // want "serializes Drop.B but DecodeDrop never sets it"
	var d Drop
	d.A = binary.LittleEndian.Uint32(b)
	return d, nil
}

// --- decoder invents a field ----------------------------------------

type Invent struct{ A, B uint32 }

func (v Invent) EncodeInvent() []byte { // want "sets Invent.B but EncodeInvent never reads it"
	return binary.LittleEndian.AppendUint32(nil, v.A)
}

func DecodeInvent(b []byte) (Invent, error) {
	return Invent{A: binary.LittleEndian.Uint32(b), B: 7}, nil
}

// --- field in neither direction -------------------------------------

type Partial struct {
	A    uint32
	Note string // want "field Partial.Note is in neither the encoder nor the decoder"
	Skip string //simlint:nowire host-side diagnostic, never crosses the wire
}

func (p Partial) EncodePartial() []byte {
	return binary.LittleEndian.AppendUint32(nil, p.A)
}

func DecodePartial(b []byte) (Partial, error) {
	var p Partial
	p.A = binary.LittleEndian.Uint32(b)
	return p, nil
}

// --- size-constant drift --------------------------------------------

// BadSize claims more bytes than EncodeBad writes.
const BadSize = 9

type Bad struct {
	A uint32
	F byte
}

func (x Bad) EncodeBad() []byte { // want "appends 5 fixed bytes but the declared size constant is 9"
	buf := make([]byte, 0, BadSize)
	buf = append(buf, x.F)
	return binary.LittleEndian.AppendUint32(buf, x.A)
}

func DecodeBad(b []byte) (Bad, error) {
	var x Bad
	x.F = b[0]
	x.A = binary.LittleEndian.Uint32(b[1:])
	return x, nil
}

// --- variable tail with a Fixed constant ----------------------------

// tailFixed is the fixed prefix of Tail before the view entries.
const tailFixed = 6

type Tail struct {
	Kind uint16
	View []uint32
}

func (t Tail) EncodeTail() []byte {
	buf := make([]byte, 0, tailFixed+4*len(t.View))
	buf = binary.LittleEndian.AppendUint16(buf, t.Kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.View)))
	for _, v := range t.View {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	return buf
}

func DecodeTail(b []byte) (Tail, error) {
	var t Tail
	if len(b) < tailFixed {
		return t, errShort
	}
	t.Kind = binary.LittleEndian.Uint16(b)
	n := binary.LittleEndian.Uint32(b[2:])
	t.View = make([]uint32, n)
	for i := range t.View {
		t.View[i] = binary.LittleEndian.Uint32(b[tailFixed+4*i:])
	}
	return t, nil
}

// --- unpaired halves -------------------------------------------------

type Lonely struct{ A uint32 }

func (l Lonely) EncodeLonely() []byte { // want "no matching Decode"
	return binary.LittleEndian.AppendUint32(nil, l.A)
}

type Orphan struct{ A uint32 }

func DecodeOrphan(b []byte) (Orphan, error) { // want "no matching Encode"
	return Orphan{A: binary.LittleEndian.Uint32(b)}, nil
}

// --- fuzz coverage ---------------------------------------------------

type Quiet struct{ A uint32 }

func (q Quiet) EncodeQuiet() []byte {
	return binary.LittleEndian.AppendUint32(nil, q.A)
}

func DecodeQuiet(b []byte) (Quiet, error) { // want "no Fuzz. target references DecodeQuiet"
	return Quiet{A: binary.LittleEndian.Uint32(b)}, nil
}

type Waived struct{ A uint32 }

func (w Waived) EncodeWaived() []byte {
	return binary.LittleEndian.AppendUint32(nil, w.A)
}

//simlint:nofuzz exercised through DecodeGood's target via the shared header path
func DecodeWaived(b []byte) (Waived, error) {
	return Waived{A: binary.LittleEndian.Uint32(b)}, nil
}

// --- suppression -----------------------------------------------------

type Muted struct{ A, B uint32 }

func (m Muted) EncodeMuted() []byte {
	buf := binary.LittleEndian.AppendUint32(nil, m.A)
	return binary.LittleEndian.AppendUint32(buf, m.B)
}

//simlint:wireok B is rederived by the caller, the wire omits it deliberately
func DecodeMuted(b []byte) (Muted, error) {
	return Muted{A: binary.LittleEndian.Uint32(b)}, nil
}
