package wirepar

import "testing"

// FuzzDecoders gives every decoder except DecodeQuiet (the golden
// "missing fuzz target" case) and DecodeWaived (waived by directive)
// its required fuzz coverage.
func FuzzDecoders(f *testing.F) {
	f.Fuzz(func(t *testing.T, b []byte) {
		DecodeGood(b)
		DecodeDrop(b)
		DecodeInvent(b)
		DecodePartial(b)
		DecodeBad(b)
		DecodeTail(b)
		DecodeOrphan(b)
		DecodeMuted(b)
	})
}
