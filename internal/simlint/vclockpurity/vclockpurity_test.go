package vclockpurity_test

import (
	"testing"

	"mpicomp/internal/simlint/linttest"
	"mpicomp/internal/simlint/vclockpurity"
)

func TestVClockPurity(t *testing.T) {
	linttest.Run(t, "testdata", vclockpurity.Analyzer, "vclockpurity")
}
