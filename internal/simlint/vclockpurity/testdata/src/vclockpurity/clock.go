// Package vclockpurity is the golden test for the analyzer of the same
// name: wall-clock reads are forbidden outside annotated functions.
package vclockpurity

import (
	"fmt"
	"time"
)

// Latency is simulated state; holding durations is fine.
var Latency time.Duration

func charge() time.Duration {
	start := time.Now()          // want "wall-clock call time.Now in simulation code"
	time.Sleep(time.Millisecond) // want "wall-clock call time.Sleep in simulation code"
	return time.Since(start) // want "wall-clock call time.Since in simulation code"
}

func schedule() {
	_ = time.NewTimer(time.Second) // want "wall-clock call time.NewTimer in simulation code"
	<-time.After(time.Second)      // want "wall-clock call time.After in simulation code"
}

func sleepy() {
	time.Sleep(Latency) // want "wall-clock call time.Sleep in simulation code"
}

// hostAccounting measures real codec throughput, the blessed use case.
//
//simlint:wallclock measures real host codec throughput for HostStats
func hostAccounting() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func lineDirective() time.Time {
	t := time.Now() //simlint:wallclock one-off capture for a log banner
	return t
}

// pureDurations exercises the negative space: arithmetic, formatting,
// and conversions on time.Duration never touch the host clock.
func pureDurations(d time.Duration) string {
	d += 3 * time.Millisecond
	return fmt.Sprintf("%v and %s", d, d.String())
}
