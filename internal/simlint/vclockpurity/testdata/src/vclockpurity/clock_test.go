package vclockpurity

import "time"

// Test files may time things for real: benchmarks and soak tests
// legitimately measure the host.
func timeInTests() time.Duration {
	start := time.Now()
	return time.Since(start)
}
