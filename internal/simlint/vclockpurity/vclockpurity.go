// Package vclockpurity forbids wall-clock reads in simulation code.
//
// Every latency in the repository is expressed in simulated nanoseconds
// (package simtime); results_table3.txt and every baseline depend on
// runs being bit-identical across hosts and schedulers. A single stray
// time.Now() feeding a charge, a header field, or a fault fate would
// tie results to the machine's speed and break replay silently.
//
// The analyzer flags calls to the wall-clock functions of package time
// (Now, Since, Until, Sleep, After, AfterFunc, Tick, NewTimer,
// NewTicker) everywhere except:
//
//   - test files (_test.go), where wall-clock timing is benign;
//   - functions annotated `//simlint:wallclock <reason>` in their doc
//     comment, the blessed escape hatch for host-side accounting such
//     as core.HostStats (which measures real codec throughput, a
//     quantity that is *about* the wall clock);
//   - individual lines carrying the same directive as a trailing
//     comment.
package vclockpurity

import (
	"go/ast"

	"mpicomp/internal/simlint/analysis"
)

// Directive is the annotation that blesses a wall-clock site.
const Directive = "wallclock"

// wallFuncs are the package-level functions of "time" that read or
// schedule against the host clock. Conversions and arithmetic on
// time.Duration values are untouched: holding a duration is fine,
// minting one from the host clock is not.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// Analyzer is the vclockpurity pass.
var Analyzer = &analysis.Analyzer{
	Name: "vclockpurity",
	Doc:  "forbid wall-clock reads (time.Now etc.) outside //simlint:wallclock functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass, file) {
			continue
		}
		dirs := pass.DirectivesFor(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if !wallFuncs[fn.Name()] || analysis.ReceiverNamed(fn) != nil {
				return true
			}
			if dirs.Allows(Directive, call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"wall-clock call time.%s in simulation code: derive timing from simtime (or annotate the function //simlint:wallclock with a reason)",
				fn.Name())
			return true
		})
	}
	return nil, nil
}
