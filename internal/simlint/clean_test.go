package simlint

import (
	"path/filepath"
	"runtime"
	"testing"
)

// TestTreeIsSimlintClean is the acceptance gate for the analyzer suite:
// the repository's own production code must carry zero diagnostics.
// Every legitimate wall-clock or order-insensitive site is expected to
// carry a //simlint:wallclock or //simlint:orderok annotation with a
// reason, so a failure here is either a real invariant violation or a
// new site that needs an explicit, reviewed exemption.
func TestTreeIsSimlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	root := filepath.Clean(filepath.Join(filepath.Dir(file), "..", ".."))
	diags, err := Run(root, Analyzers(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d simlint diagnostics on the tree; fix or annotate with a reasoned //simlint directive", len(diags))
	}
}
