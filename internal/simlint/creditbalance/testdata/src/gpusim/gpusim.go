// Package gpusim is a golden-test fake of the staging-pool surface the
// creditbalance analyzer roots on: BufferPool.Get/Put and
// GPUDevice.Malloc/Free with the real module's shapes.
package gpusim

type Clock struct{ Now int64 }

type Buffer struct {
	Data []byte
}

type BufferPool struct{ free []*Buffer }

func (p *BufferPool) Get(clk *Clock, n int) *Buffer { return &Buffer{Data: make([]byte, n)} }

func (p *BufferPool) Put(b *Buffer) {}

type GPUDevice struct{ used int64 }

func (d *GPUDevice) Malloc(clk *Clock, n int) *Buffer { return &Buffer{Data: make([]byte, n)} }

func (d *GPUDevice) Free(clk *Clock, b *Buffer) {}
