// Package creditbal is the golden input for the creditbalance
// analyzer: leaks on some paths, balanced pairs, hand-offs, loop
// leaks, interprocedural wrappers (intra- and cross-package), and
// directive suppressions.
package creditbal

import (
	"gpusim"
	"stagecore"
)

var pool *gpusim.BufferPool
var dev *gpusim.GPUDevice
var clk *gpusim.Clock

func cond() bool { return true }

func use([]byte) {}

// --- leaks ----------------------------------------------------------

func leakOnEarlyReturn() {
	b := pool.Get(clk, 64) // want "not released on every path"
	if cond() {
		return
	}
	pool.Put(b)
}

func leakAtEnd() {
	b := dev.Malloc(clk, 64) // want "not released on every path"
	use(b.Data)
}

func loopLeak() {
	for cond() {
		b := pool.Get(clk, 8) // want "acquired inside the loop"
		if cond() {
			continue
		}
		pool.Put(b)
	}
}

func reacquire() {
	b := pool.Get(clk, 8) // want "reacquired while the previous buffer is still held"
	b = pool.Get(clk, 8)
	pool.Put(b)
}

// --- balanced -------------------------------------------------------

func balancedBranches() {
	b := dev.Malloc(clk, 128)
	if cond() {
		dev.Free(clk, b)
		return
	}
	dev.Free(clk, b)
}

func balancedDefer() {
	b := pool.Get(clk, 64)
	defer pool.Put(b)
	if cond() {
		return
	}
	use(b.Data)
}

func balancedDeferClosure() {
	b := pool.Get(clk, 64)
	defer func() { pool.Put(b) }()
	use(b.Data)
}

func balancedLoop() {
	for cond() {
		b := pool.Get(clk, 8)
		if cond() {
			pool.Put(b)
			continue
		}
		pool.Put(b)
	}
}

func fatalPath() {
	b := pool.Get(clk, 8)
	if cond() {
		panic("corrupt staging header")
	}
	pool.Put(b)
}

func switchBalanced() {
	b := pool.Get(clk, 8)
	switch {
	case cond():
		pool.Put(b)
	default:
		dev.Free(clk, b)
	}
}

// --- interprocedural ------------------------------------------------

func relHelper(b *gpusim.Buffer) {
	pool.Put(b)
}

func viaHelper() {
	b := pool.Get(clk, 8)
	relHelper(b)
}

func stage() *gpusim.Buffer {
	return pool.Get(clk, 16)
}

func wrapperLeak() {
	b := stage() // want "not released on every path"
	if cond() {
		return
	}
	pool.Put(b)
}

func crossLeak() {
	b := stagecore.StageRecv(clk, 32) // want "not released on every path"
	if cond() {
		return
	}
	stagecore.Release(clk, b)
}

func crossBalanced() {
	b := stagecore.StageRecv(clk, 32)
	stagecore.Release(clk, b)
}

// --- hand-offs ------------------------------------------------------

type holder struct{ b *gpusim.Buffer }

func handoffs(h *holder, ch chan *gpusim.Buffer, all []*gpusim.Buffer) []*gpusim.Buffer {
	a := pool.Get(clk, 8)
	h.b = a // stored: obligation moves to the holder
	b := pool.Get(clk, 8)
	all = append(all, b) // appended: obligation moves to the slice
	c := pool.Get(clk, 8)
	ch <- c // sent: obligation moves to the receiver
	d := pool.Get(clk, 8)
	return append(all, d) // returned: obligation moves to the caller
}

// --- suppressions ---------------------------------------------------

// suppressedDoc parks its buffer in a global harness on purpose.
//
//simlint:creditok harness keeps the buffer for the whole run
func suppressedDoc() {
	b := pool.Get(clk, 8)
	use(b.Data)
}

func suppressedLine() {
	b := pool.Get(clk, 8) //simlint:creditok ownership documented at the call site
	use(b.Data)
}
