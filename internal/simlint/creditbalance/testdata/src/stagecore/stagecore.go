// Package stagecore is a golden-test fake of core's staging wrappers.
// The analyzer exports facts over it — StageRecv acquires, Release
// releases parameter 1 — and importing golden packages inherit them
// through the shared fact store, exercising the cross-package path.
package stagecore

import "gpusim"

var pool *gpusim.BufferPool

func StageRecv(clk *gpusim.Clock, n int) *gpusim.Buffer {
	return pool.Get(clk, n)
}

func Release(clk *gpusim.Clock, b *gpusim.Buffer) {
	pool.Put(b)
}
