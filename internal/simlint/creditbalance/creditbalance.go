// Package creditbalance checks that every staging-buffer acquire is
// balanced by a release on all paths out of the acquiring function.
//
// The simulator's compression engines stage payloads through
// gpusim.BufferPool (Get/Put) and raw device memory (Malloc/Free); a
// buffer that misses its release on one error path silently shrinks the
// pool until staging falls back to cudaMalloc and the modeled overlap
// collapses — exactly the regression the paper's pooled-staging design
// exists to avoid. The analyzer tracks each local bound to an acquire
// call through the function's control flow and reports acquires that a
// path can leave behind neither released nor handed off.
//
// Interprocedural layer: a function that returns an acquired buffer
// (core's Engine.StageRecv) exports an acquires fact, so its callers
// inherit the obligation; a function that releases one of its
// parameters (Engine.ReleaseRecv, or any local Put/Free wrapper)
// exports a releases fact naming the parameter indices, so passing a
// tracked buffer to it counts as the release. Facts cross package
// boundaries through the shared fact store (and the .vetx files on the
// `go vet -vettool` path).
//
// Ownership hand-offs end tracking without a report: returning the
// buffer, storing it into a field/element/global, appending it to a
// slice, sending it on a channel, passing it to a goroutine, or
// capturing it in a closure all transfer the obligation to a structure
// the analyzer cannot see; the runtime accounting in gpusim remains the
// backstop there. A path ending in panic() is fatal by construction and
// carries no obligation.
//
// Suppress a finding with `//simlint:creditok <reason>` on the acquire
// line (or the acquiring function's doc comment).
package creditbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mpicomp/internal/simlint/analysis"
	"mpicomp/internal/simlint/callgraph"
)

const directive = "creditok"

// Analyzer is the creditbalance check.
var Analyzer = &analysis.Analyzer{
	Name: "creditbalance",
	Doc: "check that every staging-buffer acquire (BufferPool.Get, GPUDevice.Malloc, or a function with an acquires fact) " +
		"is released on all paths — via Put/Free, a function with a releases fact, a defer, or an ownership hand-off; " +
		"suppress with //simlint:creditok <reason>",
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*acquiresFact)(nil), (*releasesFact)(nil)},
	Run:       run,
}

// acquiresFact marks a function whose (single) result is an acquired
// staging buffer the caller becomes responsible for.
type acquiresFact struct{}

func (*acquiresFact) AFact() {}

// releasesFact marks a function that releases the arguments at the
// given parameter indices (receiver excluded from the numbering).
type releasesFact struct {
	Params []int
}

func (*releasesFact) AFact() {}

// summary is the intra-package interprocedural knowledge about one
// declared function, computed to fixpoint before the path walk.
type summary struct {
	acquiresRet bool
	releases    map[int]bool
}

type checker struct {
	pass      *analysis.Pass
	graph     *callgraph.Graph
	summaries map[*types.Func]*summary
}

func run(pass *analysis.Pass) (any, error) {
	cb := &checker{
		pass:      pass,
		graph:     pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph),
		summaries: make(map[*types.Func]*summary),
	}
	cb.buildSummaries()
	cb.exportFacts()

	// The pool/device implementation owns its buffers structurally
	// (free lists, arena bookkeeping); the balance obligation starts at
	// its callers.
	if analysis.PkgPathIs(pass.Pkg, "gpusim") {
		return nil, nil
	}

	for _, file := range pass.Files {
		// Test files reach the analyzer only on the vet-tool path (the
		// standalone loader skips them); keep the two modes agreeing.
		if analysis.IsTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cb.checkScope(file, fd.Body)
		}
	}
	return nil, nil
}

// --- interprocedural summaries -------------------------------------

// buildSummaries iterates the package's functions to fixpoint: a
// helper that forwards its parameter to a releasing callee becomes a
// releaser itself, and a wrapper returning an acquiring callee's result
// becomes an acquirer.
func (cb *checker) buildSummaries() {
	for fn := range cb.graph.Nodes {
		cb.summaries[fn] = &summary{releases: make(map[int]bool)}
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range cb.graph.Nodes {
			if cb.updateSummary(fn, node) {
				changed = true
			}
		}
	}
}

func (cb *checker) updateSummary(fn *types.Func, node *callgraph.Node) bool {
	s := cb.summaries[fn]
	changed := false
	params := paramIndex(cb.pass.TypesInfo, node.Decl)

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := analysis.Callee(cb.pass.TypesInfo, n)
			for _, idx := range cb.releaseParams(callee) {
				if idx >= len(n.Args) {
					continue
				}
				obj := identVar(cb.pass.TypesInfo, n.Args[idx])
				if obj == nil {
					continue
				}
				if pidx, ok := params[obj]; ok && !s.releases[pidx] {
					s.releases[pidx] = true
					changed = true
				}
			}
		case *ast.ReturnStmt:
			if s.acquiresRet || len(n.Results) != 1 {
				return true
			}
			r := ast.Unparen(n.Results[0])
			if call, ok := r.(*ast.CallExpr); ok && cb.isAcquireCall(call) {
				s.acquiresRet = true
				changed = true
			} else if obj := identVar(cb.pass.TypesInfo, r); obj != nil && cb.acquiredLocal(node, obj) {
				s.acquiresRet = true
				changed = true
			}
		}
		return true
	})
	return changed
}

// acquiredLocal reports whether obj is somewhere in the function bound
// 1:1 to an acquire call's result.
func (cb *checker) acquiredLocal(node *callgraph.Node, obj *types.Var) bool {
	found := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i := range a.Lhs {
			call, ok := ast.Unparen(a.Rhs[i]).(*ast.CallExpr)
			if !ok || !cb.isAcquireCall(call) {
				continue
			}
			if lhsVar(cb.pass.TypesInfo, a.Lhs[i], a.Tok) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func (cb *checker) exportFacts() {
	fns := make([]*types.Func, 0, len(cb.summaries))
	for fn := range cb.summaries {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		s := cb.summaries[fn]
		if s.acquiresRet {
			cb.pass.ExportObjectFact(fn, &acquiresFact{})
		}
		if len(s.releases) > 0 {
			cb.pass.ExportObjectFact(fn, &releasesFact{Params: sortedParams(s.releases)})
		}
	}
}

// sortedParams flattens a release-parameter set into sorted indices.
func sortedParams(releases map[int]bool) []int {
	params := make([]int, 0, len(releases))
	for i := range releases {
		params = append(params, i)
	}
	sort.Ints(params)
	return params
}

// isAcquireCall reports whether the call's result is an acquired
// staging buffer: a pool/device root, a local function whose summary
// says so, or an imported function with an acquires fact.
func (cb *checker) isAcquireCall(call *ast.CallExpr) bool {
	return cb.isAcquireFn(analysis.Callee(cb.pass.TypesInfo, call))
}

func (cb *checker) isAcquireFn(f *types.Func) bool {
	if f == nil {
		return false
	}
	if recv := analysis.ReceiverNamed(f); recv != nil && recv.Obj().Pkg() != nil && analysis.PkgPathIs(recv.Obj().Pkg(), "gpusim") {
		switch recv.Obj().Name() + "." + f.Name() {
		case "BufferPool.Get", "GPUDevice.Malloc":
			return true
		}
	}
	if s := cb.summaries[f]; s != nil {
		return s.acquiresRet
	}
	return cb.pass.ImportObjectFact(f, new(acquiresFact))
}

// releaseParams returns the parameter indices (receiver excluded) that
// calling f releases, or nil.
func (cb *checker) releaseParams(f *types.Func) []int {
	if f == nil {
		return nil
	}
	if recv := analysis.ReceiverNamed(f); recv != nil && recv.Obj().Pkg() != nil && analysis.PkgPathIs(recv.Obj().Pkg(), "gpusim") {
		switch recv.Obj().Name() + "." + f.Name() {
		case "BufferPool.Put":
			return []int{0}
		case "GPUDevice.Free":
			return []int{1}
		}
	}
	if s := cb.summaries[f]; s != nil {
		if len(s.releases) == 0 {
			return nil
		}
		return sortedParams(s.releases)
	}
	fact := new(releasesFact)
	if cb.pass.ImportObjectFact(f, fact) {
		return fact.Params
	}
	return nil
}

// --- path-sensitive balance walk -----------------------------------

// status is the possibility set of one tracked buffer on the paths
// reaching a program point.
type status uint8

const (
	stHeld status = 1 << iota // some path still owns the buffer
	stDone                    // some path released it or handed it off
)

type state map[*types.Var]status

func clone(st state) state {
	out := make(state, len(st))
	for o, b := range st {
		out[o] = b
	}
	return out
}

func union(dst, src state) state {
	for o, b := range src { //simlint:orderok per-key bitwise OR; keys are distinct, order-independent
		dst[o] |= b
	}
	return dst
}

func unionAll(states []state) state {
	out := make(state)
	for _, st := range states {
		union(out, st)
	}
	return out
}

// blockCtx is one enclosing breakable construct on the walker's stack.
type blockCtx struct {
	loop      bool
	breaks    []state
	continues []state
}

type walker struct {
	cb       *checker
	file     *ast.File
	site     map[*types.Var]token.Pos
	deferred map[*types.Var]bool
	reported map[*types.Var]bool
	ctxs     []*blockCtx
}

// checkScope runs the balance walk over one function (or closure)
// body, then recurses into the function literals it contains — each
// closure is its own scope with its own obligations.
func (cb *checker) checkScope(file *ast.File, body *ast.BlockStmt) {
	w := &walker{
		cb:       cb,
		file:     file,
		site:     make(map[*types.Var]token.Pos),
		deferred: make(map[*types.Var]bool),
		reported: make(map[*types.Var]bool),
	}
	st, term := w.walkStmts(body.List, make(state))
	if !term {
		w.exitCheck(st, body.End())
	}
	for _, lit := range topFuncLits(body) {
		cb.checkScope(file, lit.Body)
	}
}

// topFuncLits returns the function literals of body that are not nested
// inside another literal.
func topFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		return true
	})
	return lits
}

func (w *walker) walkStmts(list []ast.Stmt, st state) (state, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *walker) stmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case nil:
		return st, false
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.AssignStmt:
		w.assign(s, st)
		return st, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.valueSpec(vs, st)
				}
			}
		}
		return st, false
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isPanic(w.cb.pass.TypesInfo, call) {
			w.scanExpr(s.X, st)
			return st, true // fatal by construction; no balance obligation
		}
		w.scanExpr(s.X, st)
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, st)
			if obj := identVar(w.cb.pass.TypesInfo, r); obj != nil {
				if _, ok := st[obj]; ok {
					st[obj] = stDone // ownership transfers to the caller
				}
			}
		}
		w.exitCheck(st, s.Pos())
		return st, true
	case *ast.DeferStmt:
		w.deferCall(s.Call, st)
		return st, false
	case *ast.GoStmt:
		w.scanExpr(s.Call.Fun, st)
		for _, a := range s.Call.Args {
			w.scanExpr(a, st)
			w.handoff(a, st)
		}
		return st, false
	case *ast.SendStmt:
		w.scanExpr(s.Chan, st)
		w.scanExpr(s.Value, st)
		w.handoff(s.Value, st)
		return st, false
	case *ast.IfStmt:
		st, _ = w.stmt(s.Init, st)
		w.scanExpr(s.Cond, st)
		thenSt, thenTerm := w.walkStmts(s.Body.List, clone(st))
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, clone(st))
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return union(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		st, _ = w.stmt(s.Init, st)
		w.scanExpr(s.Cond, st)
		return w.loop(st, s.Cond != nil, func(body state) (state, bool) {
			body, term := w.walkStmts(s.Body.List, body)
			if !term {
				body, _ = w.stmt(s.Post, body)
			}
			return body, term
		})
	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		return w.loop(st, true, func(body state) (state, bool) {
			return w.walkStmts(s.Body.List, body)
		})
	case *ast.SwitchStmt:
		st, _ = w.stmt(s.Init, st)
		w.scanExpr(s.Tag, st)
		return w.switchBody(st, s.Body, nil)
	case *ast.TypeSwitchStmt:
		st, _ = w.stmt(s.Init, st)
		return w.switchBody(st, s.Body, func() { _, _ = w.stmt(s.Assign, st) })
	case *ast.SelectStmt:
		w.push(&blockCtx{})
		var ends []state
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cst := clone(st)
			cst, _ = w.stmt(cc.Comm, cst)
			cst, term := w.walkStmts(cc.Body, cst)
			if !term {
				ends = append(ends, cst)
			}
		}
		ctx := w.pop()
		ends = append(ends, ctx.breaks...)
		if len(ends) == 0 {
			return st, len(s.Body.List) > 0 // all clauses terminate (empty select blocks forever too)
		}
		return unionAll(ends), false
	case *ast.BranchStmt:
		return w.branch(s, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	default:
		// ExprStmt-free statements (IncDec, Empty, ...) may still nest
		// calls; scan them.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.scanExpr(e, st)
				return false
			}
			return true
		})
		return st, false
	}
}

// loop walks one loop body. mayskip says the loop can run zero times
// (it has a condition or ranges over a possibly-empty sequence).
func (w *walker) loop(entry state, mayskip bool, body func(state) (state, bool)) (state, bool) {
	w.push(&blockCtx{loop: true})
	bodySt, bodyTerm := body(clone(entry))
	ctx := w.pop()

	// States reaching the back edge: a normal body completion plus
	// every continue. A buffer first acquired inside the body that is
	// possibly still held there leaks once per iteration.
	var back []state
	if !bodyTerm {
		back = append(back, bodySt)
	}
	back = append(back, ctx.continues...)
	backSt := unionAll(back)
	for _, obj := range sortedVars(backSt) {
		if _, preexisting := entry[obj]; preexisting {
			continue
		}
		if backSt[obj]&stHeld != 0 {
			w.report(obj, "staging buffer acquired inside the loop may still be held when the iteration ends (release it before the next acquire)")
		}
	}

	// States after the loop: the back-edge state exiting through the
	// condition, every break, and (if the body can be skipped) the
	// entry state.
	outs := append([]state{backSt}, ctx.breaks...)
	if mayskip {
		outs = append(outs, entry)
	}
	out := unionAll(outs)
	if !mayskip && len(ctx.breaks) == 0 {
		return out, true // for{} with no break never falls through
	}
	return out, false
}

func (w *walker) switchBody(st state, body *ast.BlockStmt, assign func()) (state, bool) {
	if assign != nil {
		assign()
	}
	w.push(&blockCtx{})
	var ends []state
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.scanExpr(e, st)
		}
		cst, term := w.walkStmts(cc.Body, clone(st))
		if !term {
			ends = append(ends, cst)
		}
	}
	ctx := w.pop()
	ends = append(ends, ctx.breaks...)
	if !hasDefault {
		ends = append(ends, st)
	}
	if len(ends) == 0 {
		return st, true
	}
	return unionAll(ends), false
}

func (w *walker) branch(s *ast.BranchStmt, st state) (state, bool) {
	if s.Label != nil || s.Tok == token.GOTO {
		// Labeled jumps and gotos: give up on this path without an
		// exit check (conservative: no false positives, possible
		// misses).
		return st, true
	}
	switch s.Tok {
	case token.BREAK:
		if ctx := w.top(false); ctx != nil {
			ctx.breaks = append(ctx.breaks, clone(st))
		}
		return st, true
	case token.CONTINUE:
		if ctx := w.top(true); ctx != nil {
			ctx.continues = append(ctx.continues, clone(st))
		}
		return st, true
	}
	return st, false // fallthrough: case bodies already merge
}

func (w *walker) push(ctx *blockCtx) { w.ctxs = append(w.ctxs, ctx) }
func (w *walker) pop() *blockCtx {
	ctx := w.ctxs[len(w.ctxs)-1]
	w.ctxs = w.ctxs[:len(w.ctxs)-1]
	return ctx
}

// top returns the innermost context, or the innermost loop context when
// loopOnly is set (continue skips switch/select levels).
func (w *walker) top(loopOnly bool) *blockCtx {
	for i := len(w.ctxs) - 1; i >= 0; i-- {
		if !loopOnly || w.ctxs[i].loop {
			return w.ctxs[i]
		}
	}
	return nil
}

// --- expression effects --------------------------------------------

func (w *walker) assign(a *ast.AssignStmt, st state) {
	for _, r := range a.Rhs {
		w.scanExpr(r, st)
	}
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i := range a.Lhs {
		lhs, rhs := a.Lhs[i], a.Rhs[i]
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && w.cb.isAcquireCall(call) {
			obj := lhsVar(w.cb.pass.TypesInfo, lhs, a.Tok)
			if obj == nil || !isFuncLocal(w.cb.pass, obj) {
				continue // acquired straight into a structure; untracked hand-off
			}
			if st[obj] == stHeld && !w.deferred[obj] {
				w.report(obj, "staging buffer reacquired while the previous buffer is still held")
			}
			st[obj] = stHeld
			w.site[obj] = call.Pos()
			continue
		}
		// A tracked buffer copied anywhere — a field, an element, an
		// alias — is a hand-off; the obligation leaves this scope.
		w.handoff(rhs, st)
	}
}

func (w *walker) valueSpec(vs *ast.ValueSpec, st state) {
	for _, v := range vs.Values {
		w.scanExpr(v, st)
	}
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		call, ok := ast.Unparen(vs.Values[i]).(*ast.CallExpr)
		if !ok || !w.cb.isAcquireCall(call) {
			continue
		}
		obj, _ := w.cb.pass.TypesInfo.Defs[name].(*types.Var)
		if obj == nil || !isFuncLocal(w.cb.pass, obj) {
			continue
		}
		st[obj] = stHeld
		w.site[obj] = call.Pos()
	}
}

// scanExpr applies release and hand-off effects of every call nested in
// e. Function literals are boundaries: outer buffers they capture are
// handed off, and their own bodies are checked as separate scopes.
func (w *walker) scanExpr(e ast.Expr, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.call(n, st)
		case *ast.FuncLit:
			w.closure(n, st)
			return false
		}
		return true
	})
}

func (w *walker) call(c *ast.CallExpr, st state) {
	// append(s, b) stores the buffer in the slice: hand-off.
	if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, builtin := w.cb.pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
			for _, a := range c.Args[1:] {
				w.handoff(a, st)
			}
			return
		}
	}
	callee := analysis.Callee(w.cb.pass.TypesInfo, c)
	for _, idx := range w.cb.releaseParams(callee) {
		if idx < len(c.Args) {
			w.release(c.Args[idx], st)
		}
	}
	// Other call arguments are uses, not transfers: kernel launches and
	// codecs borrow the staging buffer and the owner still releases it.
}

func (w *walker) deferCall(c *ast.CallExpr, st state) {
	// A deferred release (direct or via closure) covers every later
	// exit of the scope.
	before := make(map[*types.Var]status, len(st))
	for o, b := range st {
		before[o] = b
	}
	w.scanExpr(c.Fun, st)
	w.call(c, st)
	if lit, ok := ast.Unparen(c.Fun).(*ast.FuncLit); ok {
		w.closure(lit, st)
	}
	for _, a := range c.Args {
		w.scanExpr(a, st)
	}
	for o := range st {
		if before[o]&stHeld != 0 && st[o] == stDone {
			w.deferred[o] = true
		}
	}
}

func (w *walker) closure(lit *ast.FuncLit, st state) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := w.cb.pass.TypesInfo.Uses[id].(*types.Var); ok {
			if _, tracked := st[obj]; tracked {
				st[obj] = stDone // captured: the closure owns it now
			}
		}
		return true
	})
}

func (w *walker) release(e ast.Expr, st state) {
	if obj := identVar(w.cb.pass.TypesInfo, e); obj != nil {
		if _, tracked := st[obj]; tracked {
			st[obj] = stDone
		}
	}
}

func (w *walker) handoff(e ast.Expr, st state) {
	if obj := identVar(w.cb.pass.TypesInfo, e); obj != nil {
		if _, tracked := st[obj]; tracked {
			st[obj] = stDone
		}
	}
}

// exitCheck reports every buffer some path still holds at an exit.
func (w *walker) exitCheck(st state, exit token.Pos) {
	for _, obj := range sortedVars(st) {
		if st[obj]&stHeld == 0 || w.deferred[obj] {
			continue
		}
		line := w.cb.pass.Position(exit).Line
		w.report(obj, "staging buffer acquired here is not released on every path (path exiting at line %d still holds it)", line)
	}
}

// sortedVars returns st's keys in declaration order, so diagnostics
// cannot flap between runs.
func sortedVars(st state) []*types.Var {
	vars := make([]*types.Var, 0, len(st))
	for o := range st {
		vars = append(vars, o)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	return vars
}

func (w *walker) report(obj *types.Var, format string, args ...any) {
	if w.reported[obj] {
		return
	}
	site, ok := w.site[obj]
	if !ok {
		return
	}
	if w.cb.pass.DirectivesFor(w.file).Allows(directive, site) {
		w.reported[obj] = true
		return
	}
	w.reported[obj] = true
	w.cb.pass.Reportf(site, format, args...)
}

// --- small helpers --------------------------------------------------

func identVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func lhsVar(info *types.Info, e ast.Expr, tok token.Token) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if tok == token.DEFINE {
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// isFuncLocal reports whether v is a function-scoped variable of the
// package under analysis (not a field, global, or imported object).
func isFuncLocal(pass *analysis.Pass, v *types.Var) bool {
	return v.Pkg() == pass.Pkg && !v.IsField() && v.Parent() != pass.Pkg.Scope()
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func paramIndex(info *types.Info, decl *ast.FuncDecl) map[*types.Var]int {
	params := make(map[*types.Var]int)
	if decl.Type.Params == nil {
		return params
	}
	i := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				params[v] = i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return params
}
