package creditbalance_test

import (
	"testing"

	"mpicomp/internal/simlint/creditbalance"
	"mpicomp/internal/simlint/linttest"
)

func TestCreditBalance(t *testing.T) {
	linttest.Run(t, "testdata", creditbalance.Analyzer, "creditbal")
}
