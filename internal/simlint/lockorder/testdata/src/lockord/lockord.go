// Package lockord is the golden input for the lockorder analyzer:
// guarded-field accesses with and without the lock, leaf-lock nesting,
// sends under the lock, loop-iteration holds, lockheld contracts, and
// directive suppressions.
package lockord

import "sync"

// box models the transport mailbox: every field is lock-guarded except
// the construction-time backlink.
//
//simlint:guarded
type box struct {
	mu       sync.Mutex
	posted   []int
	dead     bool
	backlink *world //simlint:unguarded set once at construction
}

type world struct {
	boxes []*box
	wake  chan int
}

// misconfigured lacks the mutex the directive promises.
//
//simlint:guarded
type misconfigured struct { // want "no mu sync.Mutex field"
	n int
}

// --- guarded-field accesses ----------------------------------------

func readLocked(b *box) int {
	b.mu.Lock()
	n := len(b.posted)
	b.mu.Unlock()
	return n
}

func readUnlocked(b *box) int {
	return len(b.posted) // want "accessed without holding b.mu"
}

func readBacklink(b *box) *world {
	return b.backlink // unguarded by directive: fine
}

func writeAfterUnlock(b *box) {
	b.mu.Lock()
	b.posted = append(b.posted, 1)
	b.mu.Unlock()
	b.dead = true // want "accessed without holding b.mu"
}

func branchMustHold(b *box, c bool) {
	if c {
		b.mu.Lock()
	}
	b.posted = nil // want "accessed without holding b.mu"
	if c {
		b.mu.Unlock()
	}
}

func deferUnlock(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.posted)
}

// --- lockheld contract ----------------------------------------------

// drainLocked runs with b.mu held (naming convention).
func (b *box) drainLocked() {
	b.posted = nil
	b.dead = true
}

// publish records a quit under the lock.
//
//simlint:lockheld called from the sweep with b.mu held
func (b *box) publish(n int) {
	b.posted = append(b.posted, n)
}

func callsLockedHelpers(b *box) {
	b.mu.Lock()
	b.drainLocked()
	b.publish(1)
	b.mu.Unlock()
}

func callsWithoutLock(b *box) {
	b.drainLocked() // want "requires b.mu held"
	b.publish(1)    // want "requires b.mu held"
}

// --- leaf-lock discipline -------------------------------------------

func nested(a, b *box) {
	a.mu.Lock()
	b.mu.Lock() // want "leaf locks"
	b.mu.Unlock()
	a.mu.Unlock()
}

func sequential(a, b *box) {
	a.mu.Lock()
	a.posted = nil
	a.mu.Unlock()
	b.mu.Lock()
	b.posted = nil
	b.mu.Unlock()
}

func locksInternally(b *box) {
	b.mu.Lock()
	b.posted = nil
	b.mu.Unlock()
}

func callWhileHolding(a, b *box) {
	a.mu.Lock()
	locksInternally(b) // want "acquires a mailbox lock while a.mu may be held"
	a.mu.Unlock()
}

// --- sends and loops ------------------------------------------------

func sendUnderLock(b *box, w *world) {
	b.mu.Lock()
	w.wake <- 1 // want "channel send while b.mu may be held"
	b.mu.Unlock()
}

func sendAfterUnlock(b *box, w *world) {
	b.mu.Lock()
	n := len(b.posted)
	b.mu.Unlock()
	w.wake <- n
}

func heldAcrossIteration(w *world, c bool) {
	for _, b := range w.boxes {
		b.mu.Lock() // want "held when the loop iteration ends"
		if c {
			continue
		}
		b.mu.Unlock()
	}
}

func releasedEachIteration(w *world) {
	for _, b := range w.boxes {
		b.mu.Lock()
		b.posted = nil
		b.mu.Unlock()
	}
}

// --- suppression ----------------------------------------------------

func suppressed(b *box) int {
	return len(b.posted) //simlint:lockok read-only race tolerated in stats
}
