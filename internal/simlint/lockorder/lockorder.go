// Package lockorder enforces the mailbox-lock discipline of the
// transport layer.
//
// A struct opts in with `//simlint:guarded` on its type declaration; it
// must then have a `mu sync.Mutex` field, and every other field is
// lock-guarded unless its line carries `//simlint:unguarded <reason>`.
// For mpi's mailbox this encodes the documented invariant: quit-record
// publication, posted/unexpected scans, and failure bookkeeping happen
// only under the owning lock, while the construction-time world
// backlink stays lock-free.
//
// The analyzer tracks the set of held guarded locks through each
// function's control flow and reports:
//
//   - a guarded field accessed without its struct's lock definitely
//     held (methods named *Locked or carrying `//simlint:lockheld`
//     assume their receiver's lock at entry, matching the repo's
//     naming convention);
//   - a second guarded lock acquired — directly or through a callee
//     that locks one — while any guarded lock may be held: mailbox
//     locks are leaf locks, taken one at a time, which is what makes
//     the fixed acquisition order trivially deadlock-free;
//   - a channel send while a guarded lock may be held: wakeups go out
//     after unlocking so receivers never block on the mailbox lock;
//   - a guarded lock still held when a loop iteration ends: scans over
//     peers must release each mailbox before taking the next;
//   - a call to a *Locked/lockheld method without the receiver's lock
//     definitely held.
//
// Facts carry the guarded field sets, the lockheld contracts, and
// "this function acquires a guarded lock" summaries across package
// boundaries. Suppress a finding with `//simlint:lockok <reason>`.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mpicomp/internal/simlint/analysis"
	"mpicomp/internal/simlint/callgraph"
)

const (
	directive          = "lockok"
	guardedDirective   = "guarded"
	unguardedDirective = "unguarded"
	lockheldDirective  = "lockheld"
	mutexField         = "mu"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "enforce the mailbox-lock discipline on //simlint:guarded structs: guarded fields only under the owning mu, " +
		"one leaf lock at a time, no channel sends while holding, no lock held across a loop iteration; " +
		"suppress with //simlint:lockok <reason>",
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*guardedFact)(nil), (*lockheldFact)(nil), (*locksFact)(nil)},
	Run:       run,
}

// guardedFact marks a type as lock-guarded and lists its guarded fields.
type guardedFact struct {
	Fields []string
}

func (*guardedFact) AFact() {}

// lockheldFact marks a method that must be called with its receiver's
// guarded lock held.
type lockheldFact struct{}

func (*lockheldFact) AFact() {}

// locksFact marks a function that acquires some guarded lock, directly
// or transitively.
type locksFact struct{}

func (*locksFact) AFact() {}

type checker struct {
	pass     *analysis.Pass
	graph    *callgraph.Graph
	guarded  map[*types.TypeName]map[string]bool
	lockheld map[*types.Func]bool
	locks    map[*types.Func]bool
}

func run(pass *analysis.Pass) (any, error) {
	cb := &checker{
		pass:     pass,
		graph:    pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph),
		guarded:  make(map[*types.TypeName]map[string]bool),
		lockheld: make(map[*types.Func]bool),
		locks:    make(map[*types.Func]bool),
	}
	cb.discoverGuarded()
	cb.discoverLockheld()
	cb.computeLocks()
	cb.exportFacts()

	for _, file := range pass.Files {
		// Test files reach the analyzer only on the vet-tool path (the
		// standalone loader skips them); keep the two modes agreeing.
		if analysis.IsTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			entry := make(lockState)
			if fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); fn != nil && cb.lockheld[fn] {
				// A lockheld method runs with its receiver's lock held.
				if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
					entry[fd.Recv.List[0].Names[0].Name] = hold{may: true, must: true}
				}
			}
			cb.checkScope(file, fd.Body, entry)
		}
	}
	return nil, nil
}

// --- discovery and facts -------------------------------------------

func (cb *checker) discoverGuarded() {
	for _, file := range cb.pass.Files {
		dirs := cb.pass.DirectivesFor(file)
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || !dirs.Allows(guardedDirective, ts.Pos()) {
					continue
				}
				cb.addGuarded(file, ts, st)
			}
		}
	}
}

func (cb *checker) addGuarded(file *ast.File, ts *ast.TypeSpec, st *ast.StructType) {
	tn, _ := cb.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if tn == nil {
		return
	}
	dirs := cb.pass.DirectivesFor(file)
	fields := make(map[string]bool)
	hasMu := false
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name == mutexField {
				hasMu = true
				continue
			}
			if dirs.Allows(unguardedDirective, name.Pos()) {
				continue
			}
			fields[name.Name] = true
		}
	}
	if !hasMu {
		cb.pass.Reportf(ts.Pos(), "struct marked //simlint:guarded has no %s sync.Mutex field", mutexField)
		return
	}
	cb.guarded[tn] = fields
}

func (cb *checker) discoverLockheld() {
	for _, file := range cb.pass.Files {
		dirs := cb.pass.DirectivesFor(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			fn, _ := cb.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			recv := analysis.ReceiverNamed(fn)
			if recv == nil || cb.guardedFieldsOf(recv.Obj()) == nil {
				continue
			}
			if hasSuffix(fn.Name(), "Locked") || dirs.Allows(lockheldDirective, fd.Pos()) {
				cb.lockheld[fn] = true
			}
		}
	}
}

func hasSuffix(s, suffix string) bool {
	return len(s) > len(suffix) && s[len(s)-len(suffix):] == suffix
}

// computeLocks finds the functions that acquire a guarded lock,
// propagated to fixpoint through the package call graph (imported
// callees contribute through their locksFact).
func (cb *checker) computeLocks() {
	nodes := cb.sortedNodes()
	for _, node := range nodes {
		locks := false
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, op := cb.lockOp(call); key != "" && op == "Lock" {
					locks = true
				}
			}
			return !locks
		})
		if locks {
			cb.locks[node.Fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range nodes {
			if cb.locks[node.Fn] {
				continue
			}
			for _, c := range node.Calls {
				if cb.fnLocks(c.Callee) {
					cb.locks[node.Fn] = true
					changed = true
					break
				}
			}
		}
	}
}

// sortedNodes returns the call-graph nodes in declaration order, so
// fact export and any diagnostics derived from them are deterministic.
func (cb *checker) sortedNodes() []*callgraph.Node {
	nodes := make([]*callgraph.Node, 0, len(cb.graph.Nodes))
	for _, node := range cb.graph.Nodes {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })
	return nodes
}

func (cb *checker) exportFacts() {
	tns := make([]*types.TypeName, 0, len(cb.guarded))
	for tn := range cb.guarded {
		tns = append(tns, tn)
	}
	sort.Slice(tns, func(i, j int) bool { return tns[i].Pos() < tns[j].Pos() })
	for _, tn := range tns {
		names := make([]string, 0, len(cb.guarded[tn]))
		for f := range cb.guarded[tn] {
			names = append(names, f)
		}
		sort.Strings(names)
		cb.pass.ExportObjectFact(tn, &guardedFact{Fields: names})
	}
	for _, fn := range sortedFuncs(cb.lockheld) {
		cb.pass.ExportObjectFact(fn, &lockheldFact{})
	}
	for _, fn := range sortedFuncs(cb.locks) {
		cb.pass.ExportObjectFact(fn, &locksFact{})
	}
}

// sortedFuncs returns the set's functions in declaration order.
func sortedFuncs(set map[*types.Func]bool) []*types.Func {
	fns := make([]*types.Func, 0, len(set))
	for fn := range set {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	return fns
}

// guardedFieldsOf returns the guarded field set of a type name, or nil.
func (cb *checker) guardedFieldsOf(tn *types.TypeName) map[string]bool {
	if tn == nil {
		return nil
	}
	if fields, ok := cb.guarded[tn]; ok {
		return fields
	}
	fact := new(guardedFact)
	if !cb.pass.ImportObjectFact(tn, fact) {
		return nil
	}
	fields := make(map[string]bool, len(fact.Fields))
	for _, f := range fact.Fields {
		fields[f] = true
	}
	cb.guarded[tn] = fields // memoize
	return fields
}

func (cb *checker) isLockheldFn(f *types.Func) bool {
	if f == nil {
		return false
	}
	if cb.lockheld[f] {
		return true
	}
	return cb.pass.ImportObjectFact(f, new(lockheldFact))
}

func (cb *checker) fnLocks(f *types.Func) bool {
	if f == nil {
		return false
	}
	if cb.locks[f] {
		return true
	}
	if _, local := cb.graph.Nodes[f]; local {
		return false
	}
	return cb.pass.ImportObjectFact(f, new(locksFact))
}

// lockOp recognizes X.mu.Lock()/X.mu.Unlock() on a guarded struct and
// returns the textual key of X plus the operation name.
func (cb *checker) lockOp(call *ast.CallExpr) (key, op string) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (fun.Sel.Name != "Lock" && fun.Sel.Name != "Unlock") {
		return "", ""
	}
	mu, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != mutexField {
		return "", ""
	}
	base := mu.X
	tn := namedTypeName(cb.pass.TypesInfo.Types[base].Type)
	if tn == nil || cb.guardedFieldsOf(tn) == nil {
		return "", ""
	}
	if k := exprKey(base); k != "" {
		return k, fun.Sel.Name
	}
	return "", ""
}

func namedTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	} else if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return n.Obj()
}

// exprKey renders a base expression as a stable textual key ("" when
// the expression is too dynamic to name).
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base, idx := exprKey(e.X), exprKey(e.Index)
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	case *ast.BasicLit:
		return e.Value
	}
	return ""
}

// --- lock-state walk ------------------------------------------------

// hold is the path possibility of one lock: may (held on some path) and
// must (held on all paths).
type hold struct {
	may, must bool
}

type lockState map[string]hold

func cloneLS(st lockState) lockState {
	out := make(lockState, len(st))
	for k, h := range st {
		out[k] = h
	}
	return out
}

func mergeLS(a, b lockState) lockState {
	out := make(lockState)
	for k, ha := range a {
		hb := b[k]
		out[k] = hold{may: ha.may || hb.may, must: ha.must && hb.must}
	}
	for k, hb := range b {
		if _, ok := a[k]; !ok {
			out[k] = hold{may: hb.may, must: false}
		}
	}
	return out
}

func mergeAllLS(states []lockState) lockState {
	if len(states) == 0 {
		return make(lockState)
	}
	out := states[0]
	for _, st := range states[1:] {
		out = mergeLS(out, st)
	}
	return out
}

func anyMay(st lockState) (string, bool) {
	best := ""
	for k, h := range st { //simlint:orderok computes the minimum key, which is order-independent
		if h.may && (best == "" || k < best) {
			best = k
		}
	}
	return best, best != ""
}

type blockCtx struct {
	loop      bool
	breaks    []lockState
	continues []lockState
}

type walker struct {
	cb        *checker
	file      *ast.File
	lockSites map[string]token.Pos
	ctxs      []*blockCtx
}

func (cb *checker) checkScope(file *ast.File, body *ast.BlockStmt, entry lockState) {
	w := &walker{cb: cb, file: file, lockSites: make(map[string]token.Pos)}
	w.walkStmts(body.List, entry)
	for _, lit := range topFuncLits(body) {
		// Closures run later (goroutines, defers, callbacks): their
		// bodies start with no lock held.
		cb.checkScope(file, lit.Body, make(lockState))
	}
}

func topFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		return true
	})
	return lits
}

func (w *walker) walkStmts(list []ast.Stmt, st lockState) (lockState, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *walker) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch s := s.(type) {
	case nil:
		return st, false
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, op := w.cb.lockOp(call); key != "" {
				w.lockEffect(key, op, call.Pos(), st)
				return st, false
			}
			if isPanicCall(w.cb.pass.TypesInfo, call) {
				return st, true
			}
		}
		w.scan(s.X, st)
		return st, false
	case *ast.DeferStmt:
		if key, op := w.cb.lockOp(s.Call); key != "" && op == "Unlock" {
			// defer X.mu.Unlock(): held until scope exit by design;
			// exempt from the loop-iteration check by clearing the
			// acquired-here marker but keep the hold for access checks.
			delete(w.lockSites, key)
			return st, false
		}
		w.scan(s.Call, st)
		return st, false
	case *ast.SendStmt:
		if key, held := anyMay(st); held {
			w.report(s.Pos(), "channel send while %s.%s may be held: wake receivers after unlocking", key, mutexField)
		}
		w.scan(s.Chan, st)
		w.scan(s.Value, st)
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scan(r, st)
		}
		return st, true
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e, st)
		}
		for _, e := range s.Lhs {
			w.scan(e, st)
		}
		return st, false
	case *ast.IfStmt:
		st, _ = w.stmt(s.Init, st)
		w.scan(s.Cond, st)
		thenSt, thenTerm := w.walkStmts(s.Body.List, cloneLS(st))
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, cloneLS(st))
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeLS(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		st, _ = w.stmt(s.Init, st)
		w.scan(s.Cond, st)
		return w.loop(st, s.Cond != nil, func(body lockState) (lockState, bool) {
			body, term := w.walkStmts(s.Body.List, body)
			if !term {
				body, _ = w.stmt(s.Post, body)
			}
			return body, term
		})
	case *ast.RangeStmt:
		w.scan(s.X, st)
		return w.loop(st, true, func(body lockState) (lockState, bool) {
			return w.walkStmts(s.Body.List, body)
		})
	case *ast.SwitchStmt:
		st, _ = w.stmt(s.Init, st)
		w.scan(s.Tag, st)
		return w.switchBody(st, s.Body)
	case *ast.TypeSwitchStmt:
		st, _ = w.stmt(s.Init, st)
		st, _ = w.stmt(s.Assign, st)
		return w.switchBody(st, s.Body)
	case *ast.SelectStmt:
		w.push(&blockCtx{})
		var ends []lockState
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cst := cloneLS(st)
			cst, _ = w.stmt(cc.Comm, cst)
			cst, term := w.walkStmts(cc.Body, cst)
			if !term {
				ends = append(ends, cst)
			}
		}
		ctx := w.pop()
		ends = append(ends, ctx.breaks...)
		if len(ends) == 0 {
			return st, len(s.Body.List) > 0
		}
		return mergeAllLS(ends), false
	case *ast.BranchStmt:
		if s.Label != nil || s.Tok == token.GOTO {
			return st, true
		}
		switch s.Tok {
		case token.BREAK:
			if ctx := w.top(false); ctx != nil {
				ctx.breaks = append(ctx.breaks, cloneLS(st))
			}
			return st, true
		case token.CONTINUE:
			if ctx := w.top(true); ctx != nil {
				ctx.continues = append(ctx.continues, cloneLS(st))
			}
			return st, true
		}
		return st, false
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.GoStmt:
		w.scan(s.Call, st)
		return st, false
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.scan(e, st)
				return false
			}
			return true
		})
		return st, false
	}
}

func (w *walker) loop(entry lockState, mayskip bool, body func(lockState) (lockState, bool)) (lockState, bool) {
	w.push(&blockCtx{loop: true})
	bodySt, bodyTerm := body(cloneLS(entry))
	ctx := w.pop()

	var back []lockState
	if !bodyTerm {
		back = append(back, bodySt)
	}
	back = append(back, ctx.continues...)
	backSt := mergeAllLS(back)
	backKeys := make([]string, 0, len(backSt))
	for key := range backSt {
		backKeys = append(backKeys, key)
	}
	sort.Strings(backKeys)
	for _, key := range backKeys {
		if entry[key].may || !backSt[key].may {
			continue
		}
		if site, ok := w.lockSites[key]; ok {
			w.report(site, "%s.%s may still be held when the loop iteration ends: release each mailbox before taking the next", key, mutexField)
		}
	}

	outs := append([]lockState{backSt}, ctx.breaks...)
	if mayskip {
		outs = append(outs, entry)
	}
	out := mergeAllLS(outs)
	if !mayskip && len(ctx.breaks) == 0 {
		return out, true
	}
	return out, false
}

func (w *walker) switchBody(st lockState, body *ast.BlockStmt) (lockState, bool) {
	w.push(&blockCtx{})
	var ends []lockState
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.scan(e, st)
		}
		cst, term := w.walkStmts(cc.Body, cloneLS(st))
		if !term {
			ends = append(ends, cst)
		}
	}
	ctx := w.pop()
	ends = append(ends, ctx.breaks...)
	if !hasDefault {
		ends = append(ends, st)
	}
	if len(ends) == 0 {
		return st, true
	}
	return mergeAllLS(ends), false
}

func (w *walker) push(ctx *blockCtx) { w.ctxs = append(w.ctxs, ctx) }
func (w *walker) pop() *blockCtx {
	ctx := w.ctxs[len(w.ctxs)-1]
	w.ctxs = w.ctxs[:len(w.ctxs)-1]
	return ctx
}

func (w *walker) top(loopOnly bool) *blockCtx {
	for i := len(w.ctxs) - 1; i >= 0; i-- {
		if !loopOnly || w.ctxs[i].loop {
			return w.ctxs[i]
		}
	}
	return nil
}

// lockEffect applies X.mu.Lock()/Unlock() to the state.
func (w *walker) lockEffect(key, op string, pos token.Pos, st lockState) {
	if op == "Unlock" {
		// Keep lockSites: the loop-iteration check still needs the
		// acquire position when another path kept the lock held.
		delete(st, key)
		return
	}
	if held, any := anyMay(st); any {
		w.report(pos, "acquiring %s.%s while %s.%s may be held: mailbox locks are leaf locks, take one at a time",
			key, mutexField, held, mutexField)
	}
	st[key] = hold{may: true, must: true}
	w.lockSites[key] = pos
}

// scan checks the guarded-field accesses and lock-relevant calls inside
// one expression, without changing the lock state.
func (w *walker) scan(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, walked by checkScope
		case *ast.CallExpr:
			w.callCheck(n, st)
		case *ast.SelectorExpr:
			w.accessCheck(n, st)
		}
		return true
	})
}

func (w *walker) callCheck(c *ast.CallExpr, st lockState) {
	if key, _ := w.cb.lockOp(c); key != "" {
		return // handled as a statement effect; nested forms are rare and benign
	}
	callee := analysis.Callee(w.cb.pass.TypesInfo, c)
	if callee == nil {
		return
	}
	if w.cb.isLockheldFn(callee) {
		if fun, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
			if key := exprKey(fun.X); key != "" && !st[key].must {
				w.report(c.Pos(), "call to %s requires %s.%s held (callee is %s)", callee.Name(), key, mutexField, "*Locked/lockheld")
			}
		}
		return
	}
	if held, any := anyMay(st); any && w.cb.fnLocks(callee) {
		w.report(c.Pos(), "call to %s acquires a mailbox lock while %s.%s may be held: mailbox locks are leaf locks", callee.Name(), held, mutexField)
	}
}

func (w *walker) accessCheck(sel *ast.SelectorExpr, st lockState) {
	selection, ok := w.cb.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	tn := namedTypeName(selection.Recv())
	fields := w.cb.guardedFieldsOf(tn)
	if fields == nil || !fields[field.Name()] {
		return
	}
	key := exprKey(sel.X)
	if key != "" && st[key].must {
		return
	}
	w.report(sel.Pos(), "%s.%s accessed without holding %s.%s (lock it, or mark the accessor //simlint:lockheld)",
		keyOr(key, "mailbox"), field.Name(), keyOr(key, "its"), mutexField)
}

func keyOr(key, alt string) string {
	if key == "" {
		return alt
	}
	return key
}

func (w *walker) report(pos token.Pos, format string, args ...any) {
	if w.cb.pass.DirectivesFor(w.file).Allows(directive, pos) {
		return
	}
	w.cb.pass.Reportf(pos, format, args...)
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
