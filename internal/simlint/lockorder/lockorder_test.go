package lockorder_test

import (
	"testing"

	"mpicomp/internal/simlint/linttest"
	"mpicomp/internal/simlint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata", lockorder.Analyzer, "lockord")
}
