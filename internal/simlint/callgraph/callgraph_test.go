package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"mpicomp/internal/simlint/analysis"
	"mpicomp/internal/simlint/callgraph"
	"mpicomp/internal/simlint/loader"
)

const src = `package cg

type T struct{}

func leaf() {}

func mid() { leaf() }

func top() {
	f := func() { mid() }
	f()
}

func (T) M() { top() }

func alone() {}
`

// buildGraph type-checks src and captures the callgraph result through a
// probe analyzer, the same way the real dependents consume it.
func buildGraph(t *testing.T) (*callgraph.Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cg.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := loader.NewInfo()
	conf := types.Config{}
	pkg, err := conf.Check("cg", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}

	var graph *callgraph.Graph
	probe := &analysis.Analyzer{
		Name:     "probe",
		Doc:      "capture the callgraph result",
		Requires: []*analysis.Analyzer{callgraph.Analyzer},
		Run: func(p *analysis.Pass) (any, error) {
			graph = p.ResultOf[callgraph.Analyzer].(*callgraph.Graph)
			return nil, nil
		},
	}
	unit := analysis.Unit{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
	store := analysis.NewFactStore([]*analysis.Analyzer{probe})
	err = analysis.RunUnit(unit, []*analysis.Analyzer{probe}, store, func(*analysis.Analyzer, analysis.Diagnostic) {})
	if err != nil {
		t.Fatal(err)
	}
	if graph == nil {
		t.Fatal("probe analyzer never ran")
	}
	return graph, pkg
}

func fnOf(t *testing.T, pkg *types.Package, name string) *types.Func {
	t.Helper()
	if obj, ok := pkg.Scope().Lookup(name).(*types.Func); ok {
		return obj
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func TestGraphNodesAndEdges(t *testing.T) {
	g, pkg := buildGraph(t)
	if len(g.Nodes) != 5 {
		t.Errorf("graph has %d nodes, want 5 (leaf, mid, top, T.M, alone)", len(g.Nodes))
	}

	mid := fnOf(t, pkg, "mid")
	node := g.NodeOf(mid)
	if node == nil {
		t.Fatal("mid has no node")
	}
	if len(node.Calls) != 1 || node.Calls[0].Callee.Name() != "leaf" {
		t.Errorf("mid's calls = %v, want one call to leaf", node.Calls)
	}
	if node.Calls[0].Site == nil {
		t.Error("call edge lost its site")
	}

	// Calls inside closures belong to the enclosing declaration.
	top := g.NodeOf(fnOf(t, pkg, "top"))
	found := false
	for _, c := range top.Calls {
		if c.Callee.Name() == "mid" {
			found = true
		}
	}
	if !found {
		t.Errorf("top's calls = %v, want the closure's call to mid included", top.Calls)
	}

	// Methods get nodes keyed by their *types.Func.
	tn := pkg.Scope().Lookup("T").(*types.TypeName)
	m, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, "M")
	if g.NodeOf(m.(*types.Func)) == nil {
		t.Error("method T.M has no node")
	}
}

func TestReaches(t *testing.T) {
	g, pkg := buildGraph(t)
	leaf := fnOf(t, pkg, "leaf")
	top := fnOf(t, pkg, "top")
	alone := fnOf(t, pkg, "alone")
	isLeaf := func(f *types.Func) bool { return f == leaf }

	if !g.Reaches(top, isLeaf) {
		t.Error("top does not reach leaf through mid")
	}
	if !g.Reaches(leaf, isLeaf) {
		t.Error("Reaches must consult the predicate on the root itself")
	}
	if g.Reaches(alone, isLeaf) {
		t.Error("alone reaches leaf")
	}
	if g.Reaches(leaf, func(f *types.Func) bool { return f == top }) {
		t.Error("Reaches followed an edge backwards")
	}
	if g.Reaches(nil, isLeaf) {
		t.Error("Reaches(nil) reported true")
	}
}
