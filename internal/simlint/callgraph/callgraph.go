// Package callgraph builds a per-package call graph for the simlint
// suite: every function or method declared in the package, with the
// statically resolvable calls its body (closures included) makes. It is
// not itself a check — it reports nothing — but the interprocedural
// analyzers (creditbalance, lockorder, phasecharge) declare it in their
// Requires and read the graph from Pass.ResultOf.
//
// Edges to functions declared in the same package point at nodes of the
// graph; edges to imported functions carry only the callee object, which
// the dependent analyzers resolve through facts (the cross-package half
// of the interprocedural story).
package callgraph

import (
	"go/ast"
	"go/types"

	"mpicomp/internal/simlint/analysis"
)

// Analyzer builds the package call graph. Its result is a *Graph.
var Analyzer = &analysis.Analyzer{
	Name: "callgraph",
	Doc:  "build the intra-package call graph consumed by the interprocedural analyzers",
	Run:  run,
}

// Graph is one package's call graph.
type Graph struct {
	// Nodes maps each declared function or method to its node, keyed by
	// the *types.Func the declaration defines.
	Nodes map[*types.Func]*Node
}

// Node is one declared function with its outgoing calls.
type Node struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Calls []Call
}

// Call is one statically resolved call site.
type Call struct {
	Site   *ast.CallExpr
	Callee *types.Func
}

// NodeOf returns the node of a function declared in this package, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn]
}

// Reaches reports whether pred holds for fn or for any callee reachable
// from it through declarations of this package. pred is consulted for
// every callee — local and imported alike — so dependents can recognize
// imported functions through facts; traversal only continues through
// callees that have nodes here.
func (g *Graph) Reaches(fn *types.Func, pred func(*types.Func) bool) bool {
	seen := make(map[*types.Func]bool)
	var visit func(f *types.Func) bool
	visit = func(f *types.Func) bool {
		if f == nil || seen[f] {
			return false
		}
		seen[f] = true
		if pred(f) {
			return true
		}
		node := g.Nodes[f]
		if node == nil {
			return false
		}
		for _, c := range node.Calls {
			if visit(c.Callee) {
				return true
			}
		}
		return false
	}
	return visit(fn)
}

func run(pass *analysis.Pass) (any, error) {
	g := &Graph{Nodes: make(map[*types.Func]*Node)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			node := &Node{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := analysis.Callee(pass.TypesInfo, call); callee != nil {
					node.Calls = append(node.Calls, Call{Site: call, Callee: callee})
				}
				return true
			})
			g.Nodes[fn] = node
		}
	}
	return g, nil
}
