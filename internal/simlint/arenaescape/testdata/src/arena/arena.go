// Package arena is the golden test for the arenaescape analyzer: a
// part may use its codecpool scratch freely but must not retain it.
package arena

import "codecpool"

type job struct {
	held  []uint32
	parts [][]byte
}

var global []byte

func (j *job) RunPart(part int, s *codecpool.Scratch) {
	buf := s.Words(64)
	j.held = buf // want "codecpool scratch buffer stored in field j.held"
	sub := buf[2:8]
	j.held = sub // want "codecpool scratch buffer stored in field j.held"
}

func (j *job) stash(part int, s *codecpool.Scratch) {
	global = s.Bytes(16)       // want "codecpool scratch buffer stored in package variable global"
	j.parts[part] = s.Bytes(8) // want "codecpool scratch buffer stored in element of j.parts"
}

func leakByReturn(s *codecpool.Scratch) []float32 {
	f := s.Floats(32)
	return f // want "codecpool scratch buffer returned"
}

func leakByChannel(s *codecpool.Scratch, ch chan []byte) {
	ch <- s.Bytes(4) // want "codecpool scratch buffer sent on a channel"
}

func leakToGoroutine(s *codecpool.Scratch, sink func([]uint32)) {
	buf := s.Words(8)
	go func() {
		sink(buf) // want "codecpool scratch buffer captured by a goroutine"
	}()
}

func leakIntoCallerSlice(s *codecpool.Scratch, results [][]uint32, part int) {
	results[part] = s.Words(16) // want "codecpool scratch buffer stored in element of results"
}

// transientUse is the contract-respecting shape: scratch is used as
// workspace and only copies of its contents leave the part.
func transientUse(s *codecpool.Scratch, dst []byte, out [][]byte, part int) []byte {
	buf := s.Bytes(128)
	for i := range buf {
		buf[i] = byte(i)
	}
	copy(dst, buf)
	out[part] = append([]byte(nil), buf...) // a copy, not the arena
	local := make(map[int][]byte)
	local[part] = buf // dies with the part
	return dst
}

// annotated is blessed: the pool call's own dispatch plumbing may hold
// a scratch reference by design.
func annotated(s *codecpool.Scratch, hold *[][]uint32) {
	(*hold)[0] = s.Words(4) //simlint:arenaok dispatch plumbing owns the arena lifecycle
}
