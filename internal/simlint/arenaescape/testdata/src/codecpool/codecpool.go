// Package codecpool is a shim of the real mpicomp/internal/codecpool
// API surface, just enough for the arenaescape golden tests to
// type-check: the analyzer matches the Scratch accessors by package
// base name, receiver type, and method name.
package codecpool

// Scratch is one worker's reusable arena.
type Scratch struct {
	words  []uint32
	floats []float32
	bytes  []byte
}

// Words returns a length-n uint32 buffer.
func (s *Scratch) Words(n int) []uint32 {
	if cap(s.words) < n {
		s.words = make([]uint32, n)
	}
	s.words = s.words[:n]
	return s.words
}

// Floats returns a length-n float32 buffer.
func (s *Scratch) Floats(n int) []float32 {
	if cap(s.floats) < n {
		s.floats = make([]float32, n)
	}
	s.floats = s.floats[:n]
	return s.floats
}

// Bytes returns a length-n byte buffer.
func (s *Scratch) Bytes(n int) []byte {
	if cap(s.bytes) < n {
		s.bytes = make([]byte, n)
	}
	s.bytes = s.bytes[:n]
	return s.bytes
}

// Job is one parallelizable codec operation.
type Job interface {
	RunPart(part int, s *Scratch)
}

// Pool runs job parts across workers.
type Pool struct{}

// Run executes job's n parts.
func (p *Pool) Run(n int, job Job) {}
