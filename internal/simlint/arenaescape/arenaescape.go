// Package arenaescape flags codecpool scratch buffers that outlive
// their part.
//
// codecpool.Pool hands every job part a per-worker *Scratch arena; the
// contract (see the codecpool package doc) is that a part may use the
// arena freely during RunPart but must not retain it, because the same
// backing arrays are handed to whatever part the worker runs next. A
// retained slice aliases memory that another partition is about to
// overwrite — a data race the race detector only catches if two parts
// happen to collide in one run, and a silent corruption otherwise.
//
// The analyzer taints every value obtained from Scratch.Words /
// Scratch.Floats / Scratch.Bytes (and local aliases or subslices of
// one) and reports when a tainted value:
//
//   - is returned;
//   - is stored through a field, a dereference, a package-level
//     variable, or an element of caller-provided state;
//   - is sent on a channel;
//   - is captured by a `go` statement's goroutine.
//
// Copying the *contents* out (copy, append to a caller buffer) is
// fine and untouched. The codecpool package itself — whose whole job
// is storing those slices — is exempt, and `//simlint:arenaok` blesses
// a line the analyzer cannot prove safe.
package arenaescape

import (
	"go/ast"
	"go/types"

	"mpicomp/internal/simlint/analysis"
)

// Directive is the annotation that blesses a flagged arena use.
const Directive = "arenaok"

// scratchMethods are the arena accessors whose results must not escape.
var scratchMethods = map[string]bool{"Words": true, "Floats": true, "Bytes": true}

// Analyzer is the arenaescape pass.
var Analyzer = &analysis.Analyzer{
	Name: "arenaescape",
	Doc:  "flag codecpool scratch slices that escape their RunPart (fields, returns, channels, goroutines)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg != nil && analysis.PkgPathIs(pass.Pkg, "codecpool") {
		return nil, nil // the arena implementation stores its own slices
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass, file) {
			continue
		}
		dirs := pass.DirectivesFor(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			f := &fn{pass: pass, dirs: dirs, body: fd.Body, tainted: map[types.Object]bool{}}
			f.collectTaint()
			f.check()
		}
	}
	return nil, nil
}

// fn analyzes one function declaration, closures included: taint flows
// into FuncLits naturally because their bodies are part of the tree.
type fn struct {
	pass    *analysis.Pass
	dirs    *analysis.Directives
	body    *ast.BlockStmt
	tainted map[types.Object]bool
}

func (f *fn) report(n ast.Node, format string, args ...any) {
	if f.dirs.Allows(Directive, n.Pos()) {
		return
	}
	f.pass.Reportf(n.Pos(), format, args...)
}

// isArenaCall reports whether e is a direct Scratch accessor call.
func (f *fn) isArenaCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	m := analysis.Callee(f.pass.TypesInfo, call)
	if m == nil || !scratchMethods[m.Name()] {
		return false
	}
	recv := analysis.ReceiverNamed(m)
	return recv != nil && recv.Obj().Name() == "Scratch" &&
		analysis.PkgPathIs(recv.Obj().Pkg(), "codecpool")
}

// isTainted reports whether e evaluates to (a subslice of) an arena
// buffer: a direct accessor call, a tainted local, or a slice of one.
func (f *fn) isTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return f.tainted[f.objectOf(e)]
	case *ast.SliceExpr:
		return f.isTainted(e.X)
	case *ast.CallExpr:
		return f.isArenaCall(e)
	}
	return false
}

// collectTaint propagates arena-ness through direct local assignments.
// Two passes reach aliases assigned before their source textually only
// in pathological cases; one forward pass per iteration to a small
// fixpoint keeps it exact for straight-line code.
func (f *fn) collectTaint() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(f.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := f.objectOf(id)
				if obj == nil || f.tainted[obj] {
					continue
				}
				if f.isTainted(as.Rhs[i]) {
					f.tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
}

func (f *fn) check() {
	ast.Inspect(f.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if f.isTainted(r) {
					f.report(n, "codecpool scratch buffer returned: the arena is reused by the next part; copy the bytes out instead")
				}
			}
		case *ast.SendStmt:
			if f.isTainted(n.Value) {
				f.report(n, "codecpool scratch buffer sent on a channel: the receiver outlives the part that owns the arena")
			}
		case *ast.GoStmt:
			f.checkGo(n)
		case *ast.AssignStmt:
			f.checkStores(n)
		}
		return true
	})
}

// checkGo flags goroutines that capture or receive a tainted buffer:
// the goroutine may still run after Pool.Run hands the arena to the
// next part.
func (f *fn) checkGo(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if f.isTainted(arg) {
			f.report(arg, "codecpool scratch buffer passed to a goroutine that may outlive the part")
			return
		}
	}
	ast.Inspect(g.Call.Fun, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && f.tainted[f.objectOf(id)] {
			f.report(id, "codecpool scratch buffer captured by a goroutine that may outlive the part")
			return false
		}
		return true
	})
}

// checkStores flags assignments that store a tainted slice where it
// outlives the part: fields, dereferences, globals, and elements of
// caller-provided containers.
func (f *fn) checkStores(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if !f.isTainted(as.Rhs[i]) {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			// Package-level variable?
			if obj := f.objectOf(l); obj != nil && !f.isFuncLocal(obj) {
				f.report(as, "codecpool scratch buffer stored in package variable %s", l.Name)
			}
		case *ast.SelectorExpr:
			f.report(as, "codecpool scratch buffer stored in field %s: the arena is reused by the next part", exprName(l))
		case *ast.StarExpr:
			f.report(as, "codecpool scratch buffer stored through pointer %s", exprName(l))
		case *ast.IndexExpr:
			// results[i] = buf aliases the arena into a container. Local
			// containers die with the part; anything else escapes.
			if root := rootIdent(l); root == nil || !f.isFuncLocal(f.objectOf(root)) {
				f.report(as, "codecpool scratch buffer stored in element of %s, which outlives the part", exprName(l.X))
			}
		}
	}
}

func (f *fn) objectOf(id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if o := f.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return f.pass.TypesInfo.Defs[id]
}

// isFuncLocal reports whether obj is declared inside this function's
// body — not a parameter, receiver, or outer-scope variable.
func (f *fn) isFuncLocal(obj types.Object) bool {
	return obj != nil && obj.Pos() >= f.body.Pos() && obj.Pos() <= f.body.End()
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprName(e.X)
	case *ast.IndexExpr:
		return exprName(e.X) + "[…]"
	default:
		return "expression"
	}
}
