package arenaescape_test

import (
	"testing"

	"mpicomp/internal/simlint/arenaescape"
	"mpicomp/internal/simlint/linttest"
)

func TestArenaEscape(t *testing.T) {
	linttest.Run(t, "testdata", arenaescape.Analyzer, "arena")
}
