// Package mpi is a shim of the real transport's sentinel surface for
// the errwrap golden tests: the analyzer matches package-level Err*
// error variables of a package named mpi.
package mpi

import "errors"

// ErrDeliveryFailed mirrors the transport's retry-budget sentinel.
var ErrDeliveryFailed = errors.New("mpi: message delivery failed (retry budget exhausted)")

// ErrPeerFailed mirrors the health watchdog's peer-failure sentinel.
var ErrPeerFailed = errors.New("mpi: peer rank failed")

// NotASentinel is package-level but not an Err* name.
var NotASentinel = errors.New("mpi: incidental")
