// Package errwrap is the golden test for the analyzer of the same
// name: mpi.Err* sentinels must be wrapped with %w and tested with
// errors.Is.
package errwrap

import (
	"errors"
	"fmt"

	"mpi"
)

func compare(err error) bool {
	if err == mpi.ErrDeliveryFailed { // want "== comparison against sentinel ErrDeliveryFailed"
		return true
	}
	return err != mpi.ErrPeerFailed // want "!= comparison against sentinel ErrPeerFailed"
}

func classify(err error) int {
	switch err {
	case nil:
		return 0
	case mpi.ErrPeerFailed: // want "switch case compares sentinel ErrPeerFailed"
		return 1
	}
	return 2
}

func rewrap(rank int) error {
	return fmt.Errorf("rank %d: %v", rank, mpi.ErrPeerFailed) // want "sentinel ErrPeerFailed formatted without %w"
}

func stringify(attempt int) error {
	return fmt.Errorf("%s after %d attempts", mpi.ErrDeliveryFailed, attempt) // want "sentinel ErrDeliveryFailed formatted without %w"
}

// wrapped is the blessed shape: %w keeps errors.Is seeing the sentinel
// through any number of annotation layers.
func wrapped(kind string, src, dst int, attempt int) error {
	return fmt.Errorf("mpi: %s %d->%d lost after %d attempts: %w",
		kind, src, dst, attempt, mpi.ErrDeliveryFailed)
}

func tested(err error) bool {
	return errors.Is(err, mpi.ErrDeliveryFailed) || errors.Is(err, mpi.ErrPeerFailed)
}

// nilAndOthers: nil comparisons and non-sentinel errors stay untouched.
func nilAndOthers(err error) bool {
	if err == nil {
		return false
	}
	return err == mpi.NotASentinel
}

// starWidth checks the verb scanner: the * consumes an operand, so the
// sentinel still lines up with its %w.
func starWidth(pad int) error {
	return fmt.Errorf("%*d %w", pad, 7, mpi.ErrPeerFailed)
}
