// Package errwrap enforces wrap-and-Is discipline for the transport's
// error sentinels.
//
// The mpi package surfaces failures through sentinel errors —
// ErrDeliveryFailed when a retry budget is exhausted, ErrPeerFailed
// when the health watchdog declares a rank dead — and every layer in
// between annotates them with context (kind, ranks, sequence,
// attempt). That only works if intermediate layers wrap with %w and
// consumers test with errors.Is: a `==` comparison or a %v rewrap
// silently breaks the chain, and callers start treating fatal peer
// failures as retryable delivery noise.
//
// The analyzer reports, for any package-level `Err*` sentinel of a
// package named mpi:
//
//   - `err == mpi.ErrX` / `err != mpi.ErrX` comparisons (use
//     errors.Is);
//   - `switch err { case mpi.ErrX: }` clauses (same);
//   - fmt.Errorf calls that pass a sentinel to a verb other than %w
//     (use %w so errors.Is keeps seeing the sentinel).
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"mpicomp/internal/simlint/analysis"
)

// Analyzer is the errwrap pass.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "require %w wrapping and errors.Is for mpi.Err* sentinels instead of == or %v",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// sentinelOf returns the mpi.Err* sentinel object e refers to, or nil.
func sentinelOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	obj := analysis.UsedIdent(pass.TypesInfo, e)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !analysis.PkgPathIs(v.Pkg(), "mpi") {
		return nil
	}
	// Package-level only: sentinels live in package scope.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Implements(v.Type(), errorInterface(v.Pkg())) && !types.IsInterface(v.Type()) {
		return nil
	}
	return v
}

func errorInterface(pkg *types.Package) *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

func checkCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if s := sentinelOf(pass, side); s != nil {
			pass.Reportf(b.Pos(),
				"%s comparison against sentinel %s misses wrapped errors: use errors.Is(err, %s.%s)",
				b.Op, s.Name(), s.Pkg().Name(), s.Name())
			return
		}
	}
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	if t := pass.TypesInfo.Types[sw.Tag].Type; t == nil || !types.IsInterface(t) {
		return
	}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s := sentinelOf(pass, e); s != nil {
				pass.Reportf(e.Pos(),
					"switch case compares sentinel %s with ==, missing wrapped errors: use errors.Is(err, %s.%s)",
					s.Name(), s.Pkg().Name(), s.Name())
			}
		}
	}
}

// checkErrorf verifies that sentinels passed to fmt.Errorf ride a %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if !analysis.IsPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, exact := scanVerbs(constant.StringVal(tv.Value))
	if !exact {
		return // %[n] indexing etc.: bail rather than misattribute
	}
	for i, arg := range call.Args[1:] {
		s := sentinelOf(pass, arg)
		if s == nil {
			continue
		}
		if i >= len(verbs) || verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel %s formatted without %%w: callers lose errors.Is(err, %s.%s); wrap it with %%w",
				s.Name(), s.Pkg().Name(), s.Name())
		}
	}
}

// scanVerbs returns the operand-consuming verbs of a format string in
// argument order (a '*' width/precision consumes an operand and is
// recorded as '*'). exact is false when the format uses explicit
// argument indexes, which this scanner does not model.
func scanVerbs(format string) (verbs []byte, exact bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.IndexByte("+-# 0123456789.", c) >= 0 {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs, true
}
