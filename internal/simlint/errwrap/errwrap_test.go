package errwrap_test

import (
	"testing"

	"mpicomp/internal/simlint/errwrap"
	"mpicomp/internal/simlint/linttest"
)

func TestErrWrap(t *testing.T) {
	linttest.Run(t, "testdata", errwrap.Analyzer, "errwrap")
}
