package unitcheck

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mpicomp/internal/simlint"
	"mpicomp/internal/simlint/loader"
)

// TestRunUnit drives the vet protocol end-to-end without cmd/go: a
// synthetic .cfg pointing at a package with a wall-clock violation must
// produce exactly that diagnostic and write the vetx facts file.
func TestRunUnit(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	if err := os.WriteFile(src, []byte(
		"package p\n\nimport \"time\"\n\nfunc f() int64 { return time.Now().UnixNano() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	exports, err := loader.ListExports([]string{"time"})
	if err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "p.vetx")
	cfg := Config{
		ID:          "p",
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "p",
		GoFiles:     []string{src},
		ImportMap:   map[string]string{"time": "time"},
		PackageFile: exports,
		VetxOutput:  vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile := filepath.Join(dir, "p.cfg")
	if err := os.WriteFile(cfgFile, data, 0o644); err != nil {
		t.Fatal(err)
	}

	diags, err := Run(cfgFile, simlint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "vclockpurity" {
		t.Errorf("diagnostic from %s, want vclockpurity", diags[0].Analyzer)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx facts file not written: %v", err)
	}

	// A facts-only unit must not analyze, but must still write vetx.
	cfg.VetxOnly = true
	cfg.VetxOutput = filepath.Join(dir, "only.vetx")
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err = Run(cfgFile, simlint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("facts-only unit produced diagnostics: %v", diags)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("facts-only vetx file not written: %v", err)
	}
}
