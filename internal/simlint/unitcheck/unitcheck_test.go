package unitcheck

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mpicomp/internal/simlint"
	"mpicomp/internal/simlint/analysis"
	"mpicomp/internal/simlint/loader"
)

// TestRunUnit drives the vet protocol end-to-end without cmd/go: a
// synthetic .cfg pointing at a package with a wall-clock violation must
// produce exactly that diagnostic and write the vetx facts file.
func TestRunUnit(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	if err := os.WriteFile(src, []byte(
		"package p\n\nimport \"time\"\n\nfunc f() int64 { return time.Now().UnixNano() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	exports, err := loader.ListExports([]string{"time"})
	if err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "p.vetx")
	cfg := Config{
		ID:          "p",
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "p",
		GoFiles:     []string{src},
		ImportMap:   map[string]string{"time": "time"},
		PackageFile: exports,
		VetxOutput:  vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile := filepath.Join(dir, "p.cfg")
	if err := os.WriteFile(cfgFile, data, 0o644); err != nil {
		t.Fatal(err)
	}

	diags, err := Run(cfgFile, simlint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "vclockpurity" {
		t.Errorf("diagnostic from %s, want vclockpurity", diags[0].Analyzer)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx facts file not written: %v", err)
	}

	// A facts-only unit must not analyze, but must still write vetx.
	cfg.VetxOnly = true
	cfg.VetxOutput = filepath.Join(dir, "only.vetx")
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err = Run(cfgFile, simlint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("facts-only unit produced diagnostics: %v", diags)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("facts-only vetx file not written: %v", err)
	}
}

// writeCfg marshals a Config next to the unit's sources and returns its
// path.
func writeCfg(t *testing.T, dir, name string, cfg Config) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCrossUnitFacts proves facts actually flow across compilation
// units through the serialized .cfg/.vetx protocol, the way cmd/go
// drives the tool: unit A (package box, a //simlint:guarded struct)
// writes its vetx; unit B (package user, importing box from compiled
// export data) reads it through PackageVetx and must report the
// unlocked field access — a diagnostic that is impossible without the
// imported guardedFact, as the control run without the vetx shows.
func TestCrossUnitFacts(t *testing.T) {
	dir := t.TempDir()
	boxSrc := filepath.Join(dir, "box.go")
	if err := os.WriteFile(boxSrc, []byte(`package box

import "sync"

//simlint:guarded
type Box struct {
	mu sync.Mutex
	N  int
}

func (b *Box) Set(n int) {
	b.mu.Lock()
	b.N = n
	b.mu.Unlock()
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	userSrc := filepath.Join(dir, "user.go")
	if err := os.WriteFile(userSrc, []byte(`package user

import "box"

func Peek(b *box.Box) int { return b.N }
`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Compile box the way the build would, so unit B can type-check the
	// import from real gc export data.
	exports, err := loader.ListExports([]string{"sync"})
	if err != nil {
		t.Fatal(err)
	}
	var icfg strings.Builder
	paths := make([]string, 0, len(exports))
	for path := range exports {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		fmt.Fprintf(&icfg, "packagefile %s=%s\n", path, exports[path])
	}
	icfgPath := filepath.Join(dir, "importcfg")
	if err := os.WriteFile(icfgPath, []byte(icfg.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	boxA := filepath.Join(dir, "box.a")
	cmd := exec.Command("go", "tool", "compile", "-p", "box", "-importcfg", icfgPath, "-o", boxA, boxSrc)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("compiling box: %v\n%s", err, out)
	}

	// Unit A: analyze box, write its facts.
	boxVetx := filepath.Join(dir, "box.vetx")
	cfgA := writeCfg(t, dir, "box.cfg", Config{
		ID:          "box",
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "box",
		GoFiles:     []string{boxSrc},
		ImportMap:   map[string]string{"sync": "sync"},
		PackageFile: exports,
		VetxOutput:  boxVetx,
	})
	diags, err := Run(cfgA, simlint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("unit A produced diagnostics: %v", diags)
	}
	vetxData, err := os.ReadFile(boxVetx)
	if err != nil {
		t.Fatal(err)
	}
	store := analysis.NewFactStore(simlint.Analyzers())
	if err := store.Decode(vetxData); err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("unit A exported no facts; expected at least the guardedFact for Box")
	}
	if !strings.Contains(string(vetxData), `"object":"Box"`) {
		t.Errorf("vetx payload does not name the Box object: %s", vetxData)
	}

	// Unit B: the importer reads box from export data, the fact store
	// from box.vetx; the unlocked read of b.N must surface.
	exportsB := make(map[string]string, len(exports)+1)
	for k, v := range exports {
		exportsB[k] = v
	}
	exportsB["box"] = boxA
	userVetx := filepath.Join(dir, "user.vetx")
	cfgB := Config{
		ID:          "user",
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "user",
		GoFiles:     []string{userSrc},
		ImportMap:   map[string]string{"box": "box", "sync": "sync"},
		PackageFile: exportsB,
		PackageVetx: map[string]string{"box": boxVetx},
		VetxOutput:  userVetx,
	}
	diags, err = Run(writeCfg(t, dir, "user.cfg", cfgB), simlint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("unit B: got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "lockorder" || !strings.Contains(diags[0].Message, "accessed without holding") {
		t.Errorf("unit B diagnostic = %s: %s, want the lockorder unlocked-access finding", diags[0].Analyzer, diags[0].Message)
	}

	// Unit B re-exports imported facts so the flow stays transitive.
	userData, err := os.ReadFile(userVetx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(userData), `"object":"Box"`) {
		t.Errorf("unit B's vetx does not re-export the Box fact: %s", userData)
	}

	// Control: without the vetx the same unit is silent — the finding
	// above really did come from the serialized fact.
	cfgB.PackageVetx = nil
	cfgB.VetxOutput = ""
	diags, err = Run(writeCfg(t, dir, "user-nofacts.cfg", cfgB), simlint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("control run without facts produced diagnostics: %v", diags)
	}
}
