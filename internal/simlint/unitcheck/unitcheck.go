// Package unitcheck implements the `go vet -vettool` protocol for the
// simlint suite: cmd/go invokes the tool once per package with a
// *.cfg JSON file describing the unit of work — source files, the
// import map, and the export-data file of every dependency the build
// already produced. This mirrors x/tools' go/analysis/unitchecker on
// the standard library only.
package unitcheck

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"mpicomp/internal/simlint/analysis"
	"mpicomp/internal/simlint/loader"
)

// Config is the JSON schema of the .cfg file cmd/go passes to a
// vettool, field-compatible with x/tools' unitchecker.Config.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Diagnostic is one finding with its resolved position.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

// Run processes one vet unit: it always writes the (empty — simlint
// analyzers export no facts) vetx output so cmd/go's cache stays
// coherent, and unless the unit is facts-only it type-checks the
// package from the cfg's export-data map and applies the analyzers.
func Run(cfgFile string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	// Resolve imports through the vendor/importmap indirection, then
	// through the per-package export files the build produced.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if src == canonical {
			continue
		}
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}
	imp := loader.ExportImporter(fset, exports)

	info := loader.NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion(cfg.GoVersion),
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 || (err != nil && pkg == nil) {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		if len(typeErrs) > 0 {
			err = typeErrs[0]
		}
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Position: fset.Position(d.Pos),
					Analyzer: name,
					Message:  d.Message,
				})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, cfg.ImportPath, err)
		}
	}
	return diags, nil
}

// goVersion normalizes cfg.GoVersion ("go1.22.1", "local") to a value
// types.Config accepts, or "" to use the type checker's default.
func goVersion(v string) string {
	if strings.HasPrefix(v, "go1") {
		return v
	}
	return ""
}
