// Package unitcheck implements the `go vet -vettool` protocol for the
// simlint suite: cmd/go invokes the tool once per package with a
// *.cfg JSON file describing the unit of work — source files, the
// import map, the export-data file of every dependency the build
// already produced, and the .vetx fact files of the dependencies'
// earlier runs. This mirrors x/tools' go/analysis/unitchecker on the
// standard library only.
//
// Facts ride the build cache: the facts an analyzer exports while
// processing a dependency are serialized into that unit's VetxOutput
// file; when cmd/go later invokes the tool on an importer, the cfg's
// PackageVetx map names those files and the store is reassembled, so
// interprocedural analyzers see across package boundaries with the
// same incremental caching as compilation itself. Each unit re-exports
// the facts it imported, which keeps the flow transitive through
// direct dependencies.
package unitcheck

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mpicomp/internal/simlint/analysis"
	"mpicomp/internal/simlint/loader"
)

// Config is the JSON schema of the .cfg file cmd/go passes to a
// vettool, field-compatible with x/tools' unitchecker.Config.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Diagnostic is one finding with its resolved position.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

// Run processes one vet unit: it loads the dependency facts named by the
// cfg's PackageVetx map, type-checks the package from the cfg's
// export-data map, applies the analyzers, and writes the resulting fact
// store — imported facts included — to VetxOutput so cmd/go's cache
// stays coherent. Facts-only units (VetxOnly) run just the
// fact-producing analyzers and report nothing.
func Run(cfgFile string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	store := analysis.NewFactStore(analyzers)
	if err := loadDepFacts(store, cfg.PackageVetx); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		analyzers = factProducers(analyzers)
	}

	var diags []Diagnostic
	if len(analyzers) > 0 {
		unit, ok, err := typecheck(cfg)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Tolerated type-check failure: write an empty-but-valid vetx
			// so dependents still load.
			return nil, writeVetx(cfg.VetxOutput, store)
		}
		err = analysis.RunUnit(unit, analyzers, store, func(a *analysis.Analyzer, d analysis.Diagnostic) {
			if cfg.VetxOnly {
				return
			}
			diags = append(diags, Diagnostic{
				Position: unit.Fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		})
		if err != nil {
			return nil, err
		}
	}
	return diags, writeVetx(cfg.VetxOutput, store)
}

// loadDepFacts merges the dependencies' serialized fact stores, in
// deterministic path order so later duplicates (there should be none)
// resolve identically across runs.
func loadDepFacts(store *analysis.FactStore, vetx map[string]string) error {
	paths := make([]string, 0, len(vetx))
	for path := range vetx {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		data, err := os.ReadFile(vetx[path])
		if err != nil {
			if os.IsNotExist(err) {
				continue // dependency produced no facts
			}
			return fmt.Errorf("reading facts of %s: %v", path, err)
		}
		if err := store.Decode(data); err != nil {
			return fmt.Errorf("facts of %s: %v", path, err)
		}
	}
	return nil
}

// factProducers filters to the analyzers that can contribute facts —
// the only work a facts-only dependency unit needs.
func factProducers(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// writeVetx serializes the store to the unit's VetxOutput (if any).
func writeVetx(path string, store *analysis.FactStore) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, store.Encode(), 0o666)
}

// typecheck parses and type-checks the unit's files. ok is false when
// the failure is tolerated per cfg.SucceedOnTypecheckFailure.
func typecheck(cfg *Config) (analysis.Unit, bool, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return analysis.Unit{}, false, nil
			}
			return analysis.Unit{}, false, err
		}
		files = append(files, f)
	}

	// Resolve imports through the vendor/importmap indirection, then
	// through the per-package export files the build produced.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if src == canonical {
			continue
		}
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}
	imp := loader.ExportImporter(fset, exports)

	info := loader.NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion(cfg.GoVersion),
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 || (err != nil && pkg == nil) {
		if cfg.SucceedOnTypecheckFailure {
			return analysis.Unit{}, false, nil
		}
		if len(typeErrs) > 0 {
			err = typeErrs[0]
		}
		return analysis.Unit{}, false, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	return analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, true, nil
}

// goVersion normalizes cfg.GoVersion ("go1.22.1", "local") to a value
// types.Config accepts, or "" to use the type checker's default.
func goVersion(v string) string {
	if strings.HasPrefix(v, "go1") {
		return v
	}
	return ""
}
