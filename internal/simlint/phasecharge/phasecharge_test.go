package phasecharge_test

import (
	"testing"

	"mpicomp/internal/simlint/linttest"
	"mpicomp/internal/simlint/phasecharge"
)

func TestPhaseCharge(t *testing.T) {
	linttest.Run(t, "testdata", phasecharge.Analyzer, "phasechg")
}
