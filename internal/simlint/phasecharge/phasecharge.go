// Package phasecharge keeps the simulator's cost model honest: host
// work on payload bytes must be charged to a Phase. The figures the
// simulator reproduces are built from Breakdown entries and clock
// advances; a memcpy or checksum pass over payload data that no charge
// accompanies is work the model silently performs for free, which
// skews every crossover point the paper's plots depend on.
//
// A payload-work site is a builtin copy with a gpusim.Buffer.Data
// argument, or a call to core.Checksum. The function containing the
// site must reach — itself or through the intra-module call graph,
// crossing package boundaries via facts — one of the charging
// primitives: Breakdown.Add/AddAll, Engine.charge, timer.stop, or
// simtime Clock.Advance/AdvanceTo. Functions that deliberately do
// unaccounted work (a caller charges on their behalf, or the copy
// models a zero-cost scrub) carry `//simlint:nocharge <reason>`.
//
// The gpusim package itself is exempt: it is the device model whose
// primitives the charges are for.
package phasecharge

import (
	"go/ast"
	"go/types"
	"sort"

	"mpicomp/internal/simlint/analysis"
	"mpicomp/internal/simlint/callgraph"
)

const directive = "nocharge"

// Analyzer is the phasecharge check.
var Analyzer = &analysis.Analyzer{
	Name: "phasecharge",
	Doc: "check that host work on payload bytes (copy into gpusim.Buffer.Data, core.Checksum) reaches a Phase charge; " +
		"suppress with //simlint:nocharge",
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*chargesFact)(nil)},
	Run:       run,
}

// chargesFact marks an exported function that (transitively) charges a
// Phase, so cross-package callers count a call to it as accounting.
type chargesFact struct{}

func (*chargesFact) AFact()         {}
func (*chargesFact) String() string { return "charges" }

func run(pass *analysis.Pass) (any, error) {
	// The device model is what the charges pay for, not a client of them.
	if analysis.PkgPathIs(pass.Pkg, "gpusim") {
		return nil, nil
	}
	g := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)
	c := &checker{pass: pass, graph: g}

	// Export before checking so the facts exist regardless of findings.
	fns := make([]*types.Func, 0, len(g.Nodes))
	for fn := range g.Nodes {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		if g.Reaches(fn, c.isCharging) {
			pass.ExportObjectFact(fn, &chargesFact{})
		}
	}

	for _, file := range pass.Files {
		if analysis.IsTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(file, fd)
		}
	}
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	graph *callgraph.Graph
}

func (c *checker) checkFunc(file *ast.File, fd *ast.FuncDecl) {
	sites := c.payloadSites(fd.Body)
	if len(sites) == 0 {
		return
	}
	fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	if c.graph.Reaches(fn, c.isCharging) {
		return
	}
	for _, site := range sites {
		if c.pass.DirectivesFor(file).Allows(directive, site.Pos()) {
			continue
		}
		c.pass.Reportf(site.Pos(),
			"host work on payload bytes is never charged: no path from %s reaches Breakdown.Add, Engine.charge, timer.stop, or Clock.Advance (charge a Phase or mark //simlint:nocharge)",
			fn.Name())
	}
}

// payloadSites collects the body's payload-work call sites, closures
// included (their cost belongs to the enclosing function's account).
func (c *checker) payloadSites(body *ast.BlockStmt) []*ast.CallExpr {
	var sites []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" {
			if _, builtin := c.pass.TypesInfo.Uses[id].(*types.Builtin); builtin && len(call.Args) == 2 {
				if c.isPayloadExpr(call.Args[0]) || c.isPayloadExpr(call.Args[1]) {
					sites = append(sites, call)
				}
			}
			return true
		}
		if callee := analysis.Callee(c.pass.TypesInfo, call); callee != nil &&
			analysis.IsPkgFunc(callee, "core", "Checksum") {
			sites = append(sites, call)
		}
		return true
	})
	return sites
}

// isPayloadExpr reports whether e is (a slice of) a gpusim.Buffer's
// Data field — the simulator's payload bytes.
func (c *checker) isPayloadExpr(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			if x.Sel.Name != "Data" {
				return false
			}
			sel, ok := c.pass.TypesInfo.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return false
			}
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			return ok && named.Obj().Name() == "Buffer" &&
				named.Obj().Pkg() != nil && analysis.PkgPathIs(named.Obj().Pkg(), "gpusim")
		default:
			return false
		}
	}
}

// isCharging reports whether calling fn accounts simulated time: the
// charging roots, or an imported function carrying a charges fact.
func (c *checker) isCharging(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	name := fn.Name()
	if recv := analysis.ReceiverNamed(fn); recv != nil && recv.Obj().Pkg() != nil {
		pkg := recv.Obj().Pkg()
		switch recv.Obj().Name() {
		case "Breakdown":
			if (name == "Add" || name == "AddAll") && analysis.PkgPathIs(pkg, "core") {
				return true
			}
		case "Engine":
			if name == "charge" && analysis.PkgPathIs(pkg, "core") {
				return true
			}
		case "timer":
			if name == "stop" && analysis.PkgPathIs(pkg, "core") {
				return true
			}
		case "Clock":
			if (name == "Advance" || name == "AdvanceTo") && analysis.PkgPathIs(pkg, "simtime") {
				return true
			}
		}
	}
	// Not a root: an imported function still charges if its defining
	// package exported a charges fact for it.
	if fn.Pkg() != nil && fn.Pkg() != c.pass.Pkg {
		return c.pass.ImportObjectFact(fn, &chargesFact{})
	}
	return false
}
