// Package simtime is a minimal fake of the module's simulated clock
// for the phasecharge golden tests.
package simtime

type Duration int64

type Time int64

type Clock struct{ Now Time }

func (c *Clock) Advance(d Duration) Time {
	c.Now += Time(d)
	return c.Now
}

func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.Now {
		c.Now = t
	}
	return c.Now
}
