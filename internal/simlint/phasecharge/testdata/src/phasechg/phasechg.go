// Package phasechg is the golden input for the phasecharge analyzer:
// payload copies and checksums with and without a reachable charge,
// local and cross-package accounting helpers, and suppressions.
package phasechg

import (
	"core"
	"gpusim"
	"simtime"
)

// --- charged payload work -------------------------------------------

func chargedCopy(clk *simtime.Clock, dst *gpusim.Buffer, src []byte) {
	copy(dst.Data, src)
	clk.Advance(simtime.Duration(len(src)))
}

func chargedViaBreakdown(b *core.Breakdown, dst *gpusim.Buffer, src []byte) {
	copy(dst.Data[:len(src)], src)
	b.Add(core.PhaseDataCopy, simtime.Duration(len(src)))
}

func chargedViaLocalHelper(clk *simtime.Clock, dst *gpusim.Buffer, src []byte) {
	copy(dst.Data, src)
	account(clk, len(src))
}

func account(clk *simtime.Clock, n int) {
	clk.Advance(simtime.Duration(n))
}

func chargedViaFact(b *core.Breakdown, dst *gpusim.Buffer, src []byte) {
	copy(dst.Data, src)
	core.ChargeCopy(b, len(src))
}

func chargedViaMethodFact(b *core.Breakdown, dst *gpusim.Buffer, src []byte) {
	copy(dst.Data, src)
	b.Note(len(src))
}

func chargedChecksum(clk *simtime.Clock, payload []byte) uint32 {
	s := core.Checksum(payload)
	clk.Advance(1)
	return s
}

// --- uncharged payload work -----------------------------------------

func unchargedCopy(dst *gpusim.Buffer, src []byte) {
	copy(dst.Data, src) // want "host work on payload bytes is never charged"
}

func unchargedChecksum(payload []byte) uint32 {
	return core.Checksum(payload) // want "host work on payload bytes is never charged"
}

func unchargedInClosure(dst *gpusim.Buffer, src []byte) func() {
	return func() {
		copy(dst.Data, src) // want "host work on payload bytes is never charged"
	}
}

// plainCopy moves host bytes between plain slices: not payload, no charge needed.
func plainCopy(dst, src []byte) {
	copy(dst, src)
}

// --- suppression ----------------------------------------------------

func mirror(dst *gpusim.Buffer, src []byte) {
	copy(dst.Data, src) //simlint:nocharge free-list scrub modeled as zero-cost
}

// scatter's caller charges one pack pass for the whole batch.
//
//simlint:nocharge caller charges the batch
func scatter(dst *gpusim.Buffer, src []byte) {
	copy(dst.Data, src)
}
