// Package core is a minimal fake of the module's engine package for
// the phasecharge golden tests: the Breakdown accounting, the payload
// checksum, and one exported helper that charges (exercising the
// cross-package charges fact).
package core

import "simtime"

type Phase int

const (
	PhaseDataCopy Phase = iota
	PhaseChecksum
	numPhases
)

// Breakdown accumulates simulated time per phase.
type Breakdown struct {
	d [numPhases]simtime.Duration
}

func (b *Breakdown) Add(p Phase, dur simtime.Duration) { b.d[p] += dur }

// Checksum is the payload integrity pass; callers charge PhaseChecksum.
func Checksum(payload []byte) uint32 { return uint32(len(payload)) }

// ChargeCopy accounts one payload copy; importers recognize it through
// the exported charges fact.
func ChargeCopy(b *Breakdown, n int) {
	b.Add(PhaseDataCopy, simtime.Duration(n))
}

// Note charges through Add. It shares Breakdown's receiver with the
// charging root but is not itself one, so importers must recognize it
// by its charges fact, not by name.
func (b *Breakdown) Note(n int) {
	b.Add(PhaseDataCopy, simtime.Duration(n))
}
