// Package gpusim is a minimal fake of the module's device model for
// the phasecharge golden tests: only the payload-carrying Buffer.
package gpusim

type Buffer struct {
	Data []byte
}
