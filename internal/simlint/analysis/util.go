package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the *types.Func a call statically invokes, or nil for
// calls through function values, built-ins, and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // qualified identifier pkg.F
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// PkgPathIs reports whether pkg's import path is path, either exactly
// or as its final path element ("codecpool" matches both the module's
// "mpicomp/internal/codecpool" and a golden-test fake named plain
// "codecpool"). The boundary check keeps "runtime" from matching
// "mpicomp/internal/simruntime".
func PkgPathIs(pkg *types.Package, path string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == path || strings.HasSuffix(p, "/"+path)
}

// IsPkgFunc reports whether f is the package-level function (or method
// value) pkgPath.name, with pkgPath matched by PkgPathIs.
func IsPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Name() == name && PkgPathIs(f.Pkg(), pkgPath)
}

// ReceiverNamed returns the named type of f's receiver (through one
// pointer), or nil for non-methods.
func ReceiverNamed(f *types.Func) *types.Named {
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsTestFile reports whether the file's basename ends in _test.go. The
// module drivers never feed test files to analyzers, but the golden
// tests do, so analyzers with "non-test code" semantics check this.
func IsTestFile(pass *Pass, file *ast.File) bool {
	name := pass.Position(file.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}

// UsedIdent returns the object an identifier or selector expression
// refers to, or nil.
func UsedIdent(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}
