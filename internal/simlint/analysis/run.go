package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Unit is one type-checked package handed to RunUnit — the common
// currency of the three drivers (the standalone multichecker, the
// `go vet -vettool` unitchecker, and the linttest golden runner).
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Expand returns analyzers plus their transitive Requires in an order
// where every dependency precedes its dependents, erroring on a cycle.
func Expand(analyzers []*Analyzer) ([]*Analyzer, error) {
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[*Analyzer]int)
	var order []*Analyzer
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: requirement cycle through %s", a.Name)
		}
		state[a] = visiting
		for _, dep := range a.Requires {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[a] = done
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// RunUnit applies the analyzers — Requires dependencies included, each
// run exactly once, dependencies first — to one package. Results are
// threaded into dependents via Pass.ResultOf, and facts flow through
// store (which may be nil to disable facts). Diagnostics are delivered
// to report only for the analyzers in the requested list, never for
// dependencies pulled in through Requires.
func RunUnit(u Unit, analyzers []*Analyzer, store *FactStore, report func(*Analyzer, Diagnostic)) error {
	order, err := Expand(analyzers)
	if err != nil {
		return err
	}
	requested := make(map[*Analyzer]bool, len(analyzers))
	for _, a := range analyzers {
		requested[a] = true
	}
	results := make(map[*Analyzer]any, len(order))
	for _, a := range order {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			ResultOf:  make(map[*Analyzer]any, len(a.Requires)),
			facts:     store,
			Report: func(d Diagnostic) {
				if requested[a] && report != nil {
					d.Category = a.Name
					report(a, d)
				}
			},
		}
		for _, dep := range a.Requires {
			pass.ResultOf[dep] = results[dep]
		}
		res, err := a.Run(pass)
		if err != nil {
			pkg := "?"
			if u.Pkg != nil {
				pkg = u.Pkg.Path()
			}
			return fmt.Errorf("%s on %s: %v", a.Name, pkg, err)
		}
		results[a] = res
	}
	return nil
}
