package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives indexes the `//simlint:<name>` comments of one file.
//
// A directive can appear in three scopes:
//
//   - on a function declaration's doc comment — applies to the whole
//     function body (the canonical way to bless a wall-clock site);
//   - on the same line as a statement — applies to that line;
//   - alone on the line immediately above a statement — applies to the
//     next line (like a //nolint comment).
//
// The directive name may be followed by a free-text justification,
// e.g. `//simlint:wallclock host codec accounting`, which simlint
// ignores but reviewers should not.
type Directives struct {
	fset *token.FileSet
	// lines maps a directive name to the set of file lines it covers
	// via same-line or line-above placement.
	lines map[string]map[int]bool
	// funcs maps a directive name to the functions whose doc carries it.
	funcs map[string][]*ast.FuncDecl
}

// DirectivesFor returns (building on first use) the directive index for
// the file containing pos, or an empty index if the position is not in
// any of the pass's files.
func (p *Pass) DirectivesFor(file *ast.File) *Directives {
	if p.directives == nil {
		p.directives = make(map[*ast.File]*Directives)
	}
	if d := p.directives[file]; d != nil {
		return d
	}
	d := indexDirectives(p.Fset, file)
	p.directives[file] = d
	return d
}

func indexDirectives(fset *token.FileSet, file *ast.File) *Directives {
	d := &Directives{
		fset:  fset,
		lines: make(map[string]map[int]bool),
		funcs: make(map[string][]*ast.FuncDecl),
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			name := directiveName(c.Text)
			if name == "" {
				continue
			}
			set := d.lines[name]
			if set == nil {
				set = make(map[int]bool)
				d.lines[name] = set
			}
			line := fset.Position(c.Pos()).Line
			// Cover the directive's own line (trailing-comment form)
			// and the following line (comment-above form).
			set[line] = true
			set[line+1] = true
		}
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if name := directiveName(c.Text); name != "" {
				d.funcs[name] = append(d.funcs[name], fd)
			}
		}
	}
	return d
}

// directiveName extracts "wallclock" from "//simlint:wallclock reason…",
// or returns "" for non-directive comments.
func directiveName(text string) string {
	const prefix = "//simlint:"
	if !strings.HasPrefix(text, prefix) {
		return ""
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// Allows reports whether the directive name covers pos: either pos lies
// inside a function whose doc carries the directive, or the directive
// appears on pos's line or the line above.
func (d *Directives) Allows(name string, pos token.Pos) bool {
	if set := d.lines[name]; set != nil && set[d.fset.Position(pos).Line] {
		return true
	}
	for _, fd := range d.funcs[name] {
		if fd.Pos() <= pos && pos <= fd.End() {
			return true
		}
	}
	return false
}
