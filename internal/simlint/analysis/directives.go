package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives indexes the `//simlint:<name>` comments of one file.
//
// A directive can appear in three scopes:
//
//   - on a function declaration's doc comment — applies to the whole
//     function body (the canonical way to bless a wall-clock site);
//   - on the same line as a statement — applies to that line;
//   - alone on the line immediately above a statement — applies to the
//     next line (like a //nolint comment).
//
// The directive name may be followed by a free-text justification,
// e.g. `//simlint:wallclock host codec accounting`, which simlint
// ignores but reviewers should not.
type Directives struct {
	fset *token.FileSet
	// lines maps a directive name to the set of file lines it covers
	// via same-line or line-above placement.
	lines map[string]map[int]bool
	// funcs maps a directive name to the functions whose doc carries it.
	funcs map[string][]*ast.FuncDecl
}

// DirectivesFor returns (building on first use) the directive index for
// the file containing pos, or an empty index if the position is not in
// any of the pass's files.
func (p *Pass) DirectivesFor(file *ast.File) *Directives {
	if p.directives == nil {
		p.directives = make(map[*ast.File]*Directives)
	}
	if d := p.directives[file]; d != nil {
		return d
	}
	d := indexDirectives(p.Fset, file)
	p.directives[file] = d
	return d
}

func indexDirectives(fset *token.FileSet, file *ast.File) *Directives {
	d := &Directives{
		fset:  fset,
		lines: make(map[string]map[int]bool),
		funcs: make(map[string][]*ast.FuncDecl),
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			for _, name := range directiveNames(c.Text) {
				set := d.lines[name]
				if set == nil {
					set = make(map[int]bool)
					d.lines[name] = set
				}
				// Cover every line the comment spans (block comments can
				// span several) plus the following line, so both the
				// trailing-comment and comment-above forms work.
				start := fset.Position(c.Pos()).Line
				end := fset.Position(c.End()).Line
				for line := start; line <= end+1; line++ {
					set[line] = true
				}
			}
		}
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			for _, name := range directiveNames(c.Text) {
				d.funcs[name] = append(d.funcs[name], fd)
			}
		}
	}
	return d
}

// directiveNames extracts every directive name from one comment's text:
// "wallclock" from "//simlint:wallclock reason…", both names from
// "//simlint:orderok …; simlint:arenaok …", and block-comment forms
// like "/*simlint:wallclock reason*/". Non-directive comments yield nil.
// A directive token must start the comment or follow whitespace, so
// prose mentioning "simlint:" mid-word is not a directive.
func directiveNames(text string) []string {
	// Strip the comment markers so both forms scan identically.
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	const marker = "simlint:"
	var names []string
	for i := 0; ; {
		j := strings.Index(text[i:], marker)
		if j < 0 {
			break
		}
		j += i
		// Only at the start of a whitespace-delimited token.
		if j > 0 && !isSpace(text[j-1]) {
			i = j + len(marker)
			continue
		}
		rest := text[j+len(marker):]
		if k := strings.IndexFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' }); k >= 0 {
			rest = rest[:k]
		}
		if rest != "" {
			names = append(names, rest)
		}
		i = j + len(marker)
	}
	return names
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '/' }

// Allows reports whether the directive name covers pos: either pos lies
// inside a function whose doc carries the directive, or the directive
// appears on pos's line or the line above.
func (d *Directives) Allows(name string, pos token.Pos) bool {
	if set := d.lines[name]; set != nil && set[d.fset.Position(pos).Line] {
		return true
	}
	for _, fd := range d.funcs[name] {
		if fd.Pos() <= pos && pos <= fd.End() {
			return true
		}
	}
	return false
}
