// Package analysis is a minimal, dependency-free workalike of
// golang.org/x/tools/go/analysis: just enough surface for the simlint
// suite to express per-package analyzers and for the drivers (the
// standalone multichecker, the `go vet -vettool` unit checker, and the
// linttest golden runner) to execute them.
//
// The repository vendors no third-party modules, so the real x/tools
// framework is out of reach; this clone keeps the same shape (Analyzer,
// Pass, Diagnostic, Reportf) so the analyzers could be ported to the
// upstream API by changing only import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one simlint check. Unlike the x/tools original it
// has no Requires/Facts machinery: every simlint analyzer is a pure
// per-package syntax+types pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the one-paragraph description shown by `simlint help`.
	Doc string

	// Run applies the analyzer to a package. It reports findings via
	// pass.Report/Reportf. The result value is unused by the drivers
	// and exists only for API symmetry with x/tools.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one package's syntax and type information to an
// analyzer's Run function, plus the Report sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// directives caches the per-file //simlint:* directive index.
	directives map[*ast.File]*Directives
}

// Diagnostic is one finding: a position and a message. Category is the
// reporting analyzer's name, filled in by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}
