// Package analysis is a minimal, dependency-free workalike of
// golang.org/x/tools/go/analysis: just enough surface for the simlint
// suite to express per-package analyzers and for the drivers (the
// standalone multichecker, the `go vet -vettool` unit checker, and the
// linttest golden runner) to execute them.
//
// The repository vendors no third-party modules, so the real x/tools
// framework is out of reach; this clone keeps the same shape (Analyzer,
// Pass, Diagnostic, Reportf) so the analyzers could be ported to the
// upstream API by changing only import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one simlint check. Like the x/tools original it
// may depend on other analyzers' results (Requires) and exchange
// serialized facts across package boundaries (FactTypes); drivers are
// expected to run analyzers through RunUnit, which resolves both.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the one-paragraph description shown by `simlint help`.
	Doc string

	// Requires lists analyzers whose Run must complete on the same
	// package first; their results appear in Pass.ResultOf. The graph
	// must be acyclic.
	Requires []*Analyzer

	// FactTypes declares the fact types this analyzer exports or
	// imports. Each entry is a prototype pointer value (e.g.
	// (*releasesFact)(nil)); an analyzer with no FactTypes neither
	// sees nor produces facts.
	FactTypes []Fact

	// Run applies the analyzer to a package. It reports findings via
	// pass.Report/Reportf. The result value is recorded by the drivers
	// and handed to dependents through Pass.ResultOf.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one package's syntax and type information to an
// analyzer's Run function, plus the Report sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// ResultOf holds the results of this pass's Requires analyzers on
	// the same package, keyed by analyzer. Filled by RunUnit.
	ResultOf map[*Analyzer]any

	// facts is the cross-package fact store shared by the whole run,
	// or nil when the driver supplies none (facts silently no-op).
	facts *FactStore

	// directives caches the per-file //simlint:* directive index.
	directives map[*ast.File]*Directives
}

// ExportObjectFact associates fact with obj, visible to later passes of
// the same analyzer over importing packages. obj must be a package-level
// object of the package under analysis; facts on other objects are
// silently dropped (they cannot be named across package boundaries).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	key := ObjectKey(obj)
	if key == "" {
		return // un-nameable object; must not alias the package-fact slot
	}
	p.facts.export(p.Analyzer, p.Pkg.Path(), key, fact)
}

// ImportObjectFact copies into fact the fact of fact's type previously
// exported for obj (by this analyzer, over obj's package), reporting
// whether one existed. obj may belong to any package.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	return p.facts.lookup(p.Analyzer, obj.Pkg().Path(), key, fact)
}

// ExportPackageFact associates fact with the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil || p.Pkg == nil {
		return
	}
	p.facts.export(p.Analyzer, p.Pkg.Path(), "", fact)
}

// ImportPackageFact copies into fact the package fact of fact's type
// previously exported for pkg, reporting whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.facts == nil || pkg == nil {
		return false
	}
	return p.facts.lookup(p.Analyzer, pkg.Path(), "", fact)
}

// Diagnostic is one finding: a position and a message. Category is the
// reporting analyzer's name, filled in by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}
