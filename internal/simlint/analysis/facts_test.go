package analysis

import (
	"bytes"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

type noteFact struct{ Note string }

func (*noteFact) AFact() {}

type countFact struct{ N int }

func (*countFact) AFact() {}

func factAnalyzer(name string, facts ...Fact) *Analyzer {
	return &Analyzer{
		Name:      name,
		Doc:       name,
		FactTypes: facts,
		Run:       func(*Pass) (any, error) { return nil, nil },
	}
}

// TestFactStoreRoundTrip pins the .vetx payload contract: object and
// package facts survive Encode/Decode with their payloads intact, and
// the encoding is deterministic regardless of export order.
func TestFactStoreRoundTrip(t *testing.T) {
	a := factAnalyzer("alpha", (*noteFact)(nil))
	b := factAnalyzer("beta", (*countFact)(nil))
	analyzers := []*Analyzer{a, b}

	store := NewFactStore(analyzers)
	store.export(a, "pkg/x", "Fn", &noteFact{Note: "object fact"})
	store.export(a, "pkg/x", "", &noteFact{Note: "package fact"})
	store.export(b, "pkg/y", "T.M", &countFact{N: 7})
	enc := store.Encode()

	// Same facts exported in the reverse order must encode identically.
	again := NewFactStore(analyzers)
	again.export(b, "pkg/y", "T.M", &countFact{N: 7})
	again.export(a, "pkg/x", "", &noteFact{Note: "package fact"})
	again.export(a, "pkg/x", "Fn", &noteFact{Note: "object fact"})
	if !bytes.Equal(enc, again.Encode()) {
		t.Errorf("encoding depends on export order:\n%s\n%s", enc, again.Encode())
	}

	fresh := NewFactStore(analyzers)
	if err := fresh.Decode(enc); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 3 {
		t.Fatalf("decoded %d facts, want 3", fresh.Len())
	}
	nf := new(noteFact)
	if !fresh.lookup(a, "pkg/x", "Fn", nf) || nf.Note != "object fact" {
		t.Errorf("object fact: got %+v", nf)
	}
	if !fresh.lookup(a, "pkg/x", "", nf) || nf.Note != "package fact" {
		t.Errorf("package fact: got %+v", nf)
	}
	cf := new(countFact)
	if !fresh.lookup(b, "pkg/y", "T.M", cf) || cf.N != 7 {
		t.Errorf("method fact: got %+v", cf)
	}
	if fresh.lookup(a, "pkg/x", "Missing", nf) {
		t.Error("lookup of an absent fact reported true")
	}
	if fresh.lookup(b, "pkg/x", "Fn", cf) {
		t.Error("lookup crossed analyzer boundaries")
	}
}

// TestFactStoreDecodeSkipsUnknownTypes: a payload produced by a larger
// analyzer set decodes cleanly into a store that only registers a
// subset — the unknown facts are skipped, not an error.
func TestFactStoreDecodeSkipsUnknownTypes(t *testing.T) {
	a := factAnalyzer("alpha", (*noteFact)(nil))
	b := factAnalyzer("beta", (*countFact)(nil))
	full := NewFactStore([]*Analyzer{a, b})
	full.export(a, "p", "F", &noteFact{Note: "kept"})
	full.export(b, "p", "G", &countFact{N: 1})

	subset := NewFactStore([]*Analyzer{a})
	if err := subset.Decode(full.Encode()); err != nil {
		t.Fatal(err)
	}
	if subset.Len() != 1 {
		t.Fatalf("subset decoded %d facts, want 1", subset.Len())
	}
	nf := new(noteFact)
	if !subset.lookup(a, "p", "F", nf) || nf.Note != "kept" {
		t.Errorf("registered fact lost in subset decode: %+v", nf)
	}
}

// TestFactStoreDecodeEdgeCases: empty payloads (pre-facts .vetx files)
// decode to nothing, and a future payload version is rejected loudly.
func TestFactStoreDecodeEdgeCases(t *testing.T) {
	s := NewFactStore(nil)
	if err := s.Decode(nil); err != nil {
		t.Errorf("empty payload: %v", err)
	}
	if err := s.Decode([]byte{}); err != nil {
		t.Errorf("zero-length payload: %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("empty payloads produced %d facts", s.Len())
	}
	if err := s.Decode([]byte(`{"version":99,"facts":[]}`)); err == nil {
		t.Error("future version accepted silently")
	}
	if err := s.Decode([]byte(`not json`)); err == nil {
		t.Error("malformed payload accepted silently")
	}
}

// TestObjectKey pins the stable naming of fact-bearing objects:
// package-scope objects by name, methods as Type.Method, everything
// else (locals, fields) unnamed.
func TestObjectKey(t *testing.T) {
	const src = `package q

type T struct{ F int }

func (t *T) M() {}

func Fn() { local := 1; _ = local }

var V int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "q.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{Importer: importer.Default()}
	info := &types.Info{Defs: make(map[*ast.Ident]types.Object)}
	pkg, err := conf.Check("q", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}

	scope := pkg.Scope()
	tn := scope.Lookup("T").(*types.TypeName)
	method, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, "M")
	field, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, "F")

	var local types.Object
	for id, obj := range info.Defs {
		if id.Name == "local" {
			local = obj
		}
	}

	cases := []struct {
		obj  types.Object
		want string
	}{
		{scope.Lookup("Fn"), "Fn"},
		{scope.Lookup("V"), "V"},
		{tn, "T"},
		{method, "T.M"},
		{field, ""},
		{local, ""},
		{nil, ""},
	}
	for _, tc := range cases {
		if got := ObjectKey(tc.obj); got != tc.want {
			t.Errorf("ObjectKey(%v) = %q, want %q", tc.obj, got, tc.want)
		}
	}
}
