package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a serializable observation one analyzer pass records about a
// package-level object (or a whole package) for later passes of the same
// analyzer over importing packages — the mechanism that makes the suite
// interprocedural across package boundaries. Implementations must be
// pointers to JSON-marshalable structs and must be declared in the
// analyzer's FactTypes.
//
// Facts flow through whichever channel the driver uses: in-memory for the
// standalone multichecker and the linttest golden runner, and serialized
// into the build cache's .vetx files on the `go vet -vettool` path
// (internal/simlint/unitcheck), exactly like x/tools' unitchecker.
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// ObjectKey names a package-level object stably across compilations: a
// plain function or variable by name, a method as "Type.Method". Objects
// that cannot be named this way (locals, interface methods, struct
// fields) yield "" and cannot carry facts.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if f, ok := obj.(*types.Func); ok {
		if recv := ReceiverNamed(f); recv != nil {
			if recv.Obj().Pkg() != obj.Pkg() {
				return ""
			}
			return recv.Obj().Name() + "." + f.Name()
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return obj.Name()
}

// factKey identifies one fact slot: the owning analyzer's name, the
// package, the object within it ("" for package facts), and the fact's
// registered type.
type factKey struct {
	analyzer string
	pkg      string
	object   string
	typ      string
}

// FactStore holds the serialized facts of one analysis run. It is shared
// across every package the driver processes, so facts exported while
// analyzing a dependency are visible while analyzing its importers
// (packages must therefore be processed in dependency order). Facts are
// kept JSON-encoded internally: every driver — including the purely
// in-process ones — exercises the same round-trip the unitchecker's
// .vetx files do.
type FactStore struct {
	types map[string]reflect.Type // registered fact type name -> struct type
	facts map[factKey]json.RawMessage
}

// NewFactStore returns an empty store with the fact types of the given
// analyzers (Requires closure included) registered.
func NewFactStore(analyzers []*Analyzer) *FactStore {
	s := &FactStore{
		types: make(map[string]reflect.Type),
		facts: make(map[factKey]json.RawMessage),
	}
	seen := make(map[*Analyzer]bool)
	var walk func(a *Analyzer)
	walk = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if t == nil || t.Kind() != reflect.Pointer {
				panic(fmt.Sprintf("analysis: fact type %T of %s is not a pointer", f, a.Name))
			}
			s.types[factTypeName(t)] = t.Elem()
		}
		for _, dep := range a.Requires {
			walk(dep)
		}
	}
	for _, a := range analyzers {
		walk(a)
	}
	return s
}

// factTypeName names a registered fact type: the pointee's import path
// and type name, stable across builds of the same tool.
func factTypeName(t reflect.Type) string {
	e := t.Elem()
	return e.PkgPath() + "." + e.Name()
}

func (s *FactStore) export(a *Analyzer, pkg, object string, fact Fact) {
	if object == "" && pkg == "" {
		return
	}
	t := reflect.TypeOf(fact)
	name := factTypeName(t)
	if _, ok := s.types[name]; !ok {
		panic(fmt.Sprintf("analysis: analyzer %s exports unregistered fact type %T (add it to FactTypes)", a.Name, fact))
	}
	data, err := json.Marshal(fact)
	if err != nil {
		panic(fmt.Sprintf("analysis: marshaling fact %T: %v", fact, err))
	}
	s.facts[factKey{a.Name, pkg, object, name}] = data
}

func (s *FactStore) lookup(a *Analyzer, pkg, object string, fact Fact) bool {
	data, ok := s.facts[factKey{a.Name, pkg, object, factTypeName(reflect.TypeOf(fact))}]
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, fact); err != nil {
		panic(fmt.Sprintf("analysis: unmarshaling fact %T: %v", fact, err))
	}
	return true
}

// serialFact is the wire form of one fact in an encoded store.
type serialFact struct {
	Analyzer string          `json:"analyzer"`
	Pkg      string          `json:"pkg"`
	Object   string          `json:"object,omitempty"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// serialStore is the wire form of a whole store (one .vetx payload).
type serialStore struct {
	Version int          `json:"version"`
	Facts   []serialFact `json:"facts"`
}

// factsVersion stamps the .vetx payload format.
const factsVersion = 1

// Encode serializes every fact in the store, deterministically ordered,
// for a .vetx file. An empty store encodes to a valid empty payload.
//
//simlint:wireok build-cache payload, not a wire codec; the paired reader is the Decode method
func (s *FactStore) Encode() []byte {
	facts := make([]serialFact, 0, len(s.facts))
	for k, data := range s.facts {
		facts = append(facts, serialFact{
			Analyzer: k.analyzer, Pkg: k.pkg, Object: k.object, Type: k.typ, Data: data,
		})
	}
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Type < b.Type
	})
	out := serialStore{Version: factsVersion, Facts: facts}
	data, err := json.Marshal(out)
	if err != nil {
		panic(fmt.Sprintf("analysis: encoding fact store: %v", err))
	}
	return data
}

// Decode merges a payload produced by Encode into the store. Facts whose
// type is not registered are skipped (a different analyzer subset may
// have produced the payload); an empty payload decodes to no facts, so
// the empty .vetx files of pre-facts tool versions remain readable.
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in serialStore
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("analysis: decoding fact store: %v", err)
	}
	if in.Version != factsVersion {
		return fmt.Errorf("analysis: fact store version %d (want %d)", in.Version, factsVersion)
	}
	for _, f := range in.Facts {
		if _, ok := s.types[f.Type]; !ok {
			continue
		}
		s.facts[factKey{f.Analyzer, f.Pkg, f.Object, f.Type}] = f.Data
	}
	return nil
}

// Len reports the number of facts in the store.
func (s *FactStore) Len() int { return len(s.facts) }
