package detrange_test

import (
	"testing"

	"mpicomp/internal/simlint/detrange"
	"mpicomp/internal/simlint/linttest"
)

func TestDetRange(t *testing.T) {
	linttest.Run(t, "testdata", detrange.Analyzer, "detrange")
}
