// Package detrange flags map iteration whose body has order-dependent
// effects.
//
// Go randomizes map iteration order per run. Everything the simulator
// emits — wire payloads, checksums, simtime charges, accumulated stats,
// event schedules — must be identical across runs, so a `for k := range
// m` that writes to such state in iteration order is a latent
// nondeterminism bug that only an unlucky seed reveals. gZCCL-style
// compression-in-the-loop stacks live or die by reproducible ratio and
// timing accounting; this analyzer makes the property structural.
//
// A map-range loop passes when every statement in its body is
// order-independent:
//
//   - delete from a map, or assignment into a map element;
//   - declarations and writes whose targets live inside the loop body;
//   - commutative integer accumulation (x += e, x++, x |= e, …) where
//     the accumulator is not otherwise read in the body;
//   - append to a function-local slice that a statement after the loop
//     (in the same block) visibly sorts — the "collect keys, sort,
//     iterate" idiom;
//   - assigning a constant to an outer variable (found = true);
//   - if/else and nested blocks built from the above.
//
// Anything else — function calls, channel sends, early return/break,
// float accumulation, writes through fields — is reported unless the
// loop carries a `//simlint:orderok <reason>` directive.
package detrange

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mpicomp/internal/simlint/analysis"
)

// Directive is the annotation that blesses an order-insensitive loop
// the analyzer cannot prove safe.
const Directive = "orderok"

// Analyzer is the detrange pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flag range-over-map loops with order-dependent effects (wire bytes, charges, stats)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass, file) {
			continue
		}
		dirs := pass.DirectivesFor(file)
		// blocks maps every statement to its enclosing block's statement
		// list, so the sorted-guard check can look past the loop.
		inspectWithBlocks(file, func(rng *ast.RangeStmt, after []ast.Stmt) {
			if !isMapType(pass.TypesInfo.Types[rng.X].Type) {
				return
			}
			if dirs.Allows(Directive, rng.Pos()) {
				return
			}
			c := &checker{pass: pass, rng: rng, after: after}
			c.block(rng.Body)
			c.finish()
			for _, v := range c.violations {
				pass.Reportf(v.pos,
					"map iteration order reaches ordered state (%s): iterate sorted keys or annotate //simlint:orderok",
					v.reason)
			}
		})
	}
	return nil, nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// inspectWithBlocks calls fn for every range statement, passing the
// statements that follow it in its innermost enclosing block.
func inspectWithBlocks(file *ast.File, fn func(*ast.RangeStmt, []ast.Stmt)) {
	var walk func(list []ast.Stmt)
	visit := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.BlockStmt:
				walk(m.List)
				return false
			case *ast.RangeStmt:
				fn(m, nil)
				walk(m.Body.List)
				return false
			}
			return true
		})
	}
	walk = func(list []ast.Stmt) {
		for i, s := range list {
			if rng, ok := s.(*ast.RangeStmt); ok {
				fn(rng, list[i+1:])
				walk(rng.Body.List)
				continue
			}
			visit(s)
		}
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			walk(fd.Body.List)
		}
	}
}

type violation struct {
	pos    token.Pos
	reason string
}

// checker classifies one map-range body.
type checker struct {
	pass  *analysis.Pass
	rng   *ast.RangeStmt
	after []ast.Stmt

	violations []violation
	// accums are integer-accumulator objects (x += e); finish()
	// rejects the loop if any is also read elsewhere in the body.
	accums map[types.Object][]ast.Node
	// appends are slice objects appended to; finish() demands a
	// visible sort after the loop for each.
	appends map[types.Object]token.Pos
}

func (c *checker) bad(pos token.Pos, format string, args ...any) {
	c.violations = append(c.violations, violation{pos, fmt.Sprintf(format, args...)})
}

func (c *checker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeclStmt, *ast.EmptyStmt:
		// Local declarations introduce loop-scoped state; harmless.
	case *ast.BlockStmt:
		c.block(s)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.block(s.Body)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE:
			// Skipping an iteration is order-independent.
		default:
			c.bad(s.Pos(), "%s exits the loop at an order-dependent iteration", s.Tok)
		}
	case *ast.ReturnStmt:
		c.bad(s.Pos(), "return exits the loop at an order-dependent iteration")
	case *ast.SendStmt:
		c.bad(s.Pos(), "channel send in iteration order")
	case *ast.GoStmt:
		c.bad(s.Pos(), "goroutine launched in iteration order")
	case *ast.DeferStmt:
		c.bad(s.Pos(), "defer scheduled in iteration order")
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			c.callStmt(call)
		}
	case *ast.IncDecStmt:
		c.accumulate(s.X, s.X, s.Pos())
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.RangeStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
		c.bad(s.Pos(), "nested control flow the analyzer cannot prove order-independent")
	default:
		c.bad(s.Pos(), "statement the analyzer cannot prove order-independent")
	}
}

// callStmt handles a call in statement position: only delete(m, k) is
// order-independent; anything else may write ordered state.
func (c *checker) callStmt(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	c.bad(call.Pos(), "call %s runs in iteration order", exprString(call.Fun))
}

func (c *checker) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			}
			c.assignOne(s, lhs, rhs)
		}
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		c.accumulate(s.Lhs[0], s.Lhs[0], s.Pos())
	default: // -=, /=, %=, <<=, >>=, &^= : not commutative-associative
		c.bad(s.Pos(), "non-commutative accumulation %s", s.Tok)
	}
}

func (c *checker) assignOne(s *ast.AssignStmt, lhs, rhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := c.objectOf(l)
		if obj == nil || c.declaredInLoop(obj) || s.Tok == token.DEFINE && c.pass.TypesInfo.Defs[l] != nil {
			return // loop-local state
		}
		// s = append(s, …) into an outer local: allowed if sorted later.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin &&
					len(call.Args) > 0 && c.objectOf(firstIdent(call.Args[0])) == obj {
					if c.appends == nil {
						c.appends = make(map[types.Object]token.Pos)
					}
					if _, seen := c.appends[obj]; !seen {
						c.appends[obj] = s.Pos()
					}
					return
				}
			}
		}
		// Writing a constant is idempotent (found = true).
		if rhs != nil {
			if tv, ok := c.pass.TypesInfo.Types[rhs]; ok && tv.Value != nil {
				return
			}
		}
		c.bad(s.Pos(), "outer variable %s overwritten in iteration order", l.Name)
	case *ast.IndexExpr:
		// m2[k] = v is order-independent: map keys are distinct.
		if isMapType(c.pass.TypesInfo.Types[l.X].Type) {
			return
		}
		c.bad(s.Pos(), "indexed write %s in iteration order", exprString(l))
	default:
		c.bad(s.Pos(), "write through %s in iteration order", exprString(lhs))
	}
}

// accumulate records x += e / x++ style updates: commutative and
// associative only over integers, and only if x isn't read elsewhere.
func (c *checker) accumulate(target ast.Expr, read ast.Expr, pos token.Pos) {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		c.bad(pos, "accumulation into %s in iteration order", exprString(target))
		return
	}
	obj := c.objectOf(id)
	if obj == nil {
		return
	}
	if c.declaredInLoop(obj) {
		return
	}
	basic, ok := obj.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		c.bad(pos, "non-integer accumulation into %s is ordering-sensitive", id.Name)
		return
	}
	if c.accums == nil {
		c.accums = make(map[types.Object][]ast.Node)
	}
	c.accums[obj] = append(c.accums[obj], read)
}

// finish applies the whole-body checks: accumulators must not be read
// outside their own updates, and appended slices must be sorted after
// the loop. Its own maps are iterated in declaration order — this
// analyzer holds itself to the invariant it enforces, so diagnostic
// order cannot flap between runs.
func (c *checker) finish() {
	var accums []types.Object
	for obj := range c.accums {
		accums = append(accums, obj)
	}
	sortByPos(accums)
	for _, obj := range accums {
		if pos, read := c.readOutside(obj, c.accums[obj]); read {
			c.bad(pos, "accumulator %s is both updated and read in the loop body", obj.Name())
		}
	}
	var appends []types.Object
	for obj := range c.appends {
		appends = append(appends, obj)
	}
	sortByPos(appends)
	for _, obj := range appends {
		if pos2, read := c.readOutsideAppends(obj); read {
			c.bad(pos2, "slice %s is both appended to and read in the loop body", obj.Name())
			continue
		}
		if !c.sortedAfter(obj) {
			c.bad(c.appends[obj], "slice %s collects map keys/values but is not visibly sorted after the loop", obj.Name())
		}
	}
}

func sortByPos(objs []types.Object) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
}

// readOutside reports a use of obj in the loop body outside the given
// accumulation nodes.
func (c *checker) readOutside(obj types.Object, within []ast.Node) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(c.rng.Body, func(n ast.Node) bool {
		for _, w := range within {
			if n == w {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && !found && c.objectOf(id) == obj {
			pos, found = id.Pos(), true
		}
		return !found
	})
	return pos, found
}

// readOutsideAppends reports a use of obj in the body that is not part
// of an `obj = append(obj, …)` statement.
func (c *checker) readOutsideAppends(obj types.Object) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(c.rng.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && c.objectOf(id) == obj {
				return false // the append statement itself
			}
		}
		if id, ok := n.(*ast.Ident); ok && c.objectOf(id) == obj {
			pos, found = id.Pos(), true
		}
		return !found
	})
	return pos, found
}

// sortedAfter scans the statements following the loop in its enclosing
// block for a visible sort of obj: sort.* / slices.Sort* with obj as
// the first argument, or any call whose name mentions "sort" taking obj.
func (c *checker) sortedAfter(obj types.Object) bool {
	for _, s := range c.after {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			name := exprString(call.Fun)
			if !strings.Contains(strings.ToLower(name), "sort") {
				return true
			}
			for _, arg := range call.Args {
				if c.objectOf(firstIdent(arg)) == obj {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func (c *checker) objectOf(id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if o := c.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Defs[id]
}

// declaredInLoop reports whether obj's declaration lies inside the
// range body (loop-scoped state cannot leak ordering).
func (c *checker) declaredInLoop(obj types.Object) bool {
	return obj.Pos() >= c.rng.Body.Pos() && obj.Pos() <= c.rng.Body.End()
}

func firstIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[…]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	default:
		return "expression"
	}
}
