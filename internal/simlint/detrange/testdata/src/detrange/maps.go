// Package detrange is the golden test for the analyzer of the same
// name: map iteration must not feed order-dependent state.
package detrange

import (
	"fmt"
	"hash/crc32"
	"sort"
)

func wireBytes(m map[int][]byte, h *crc32.Table) uint32 {
	var sum uint32
	for _, b := range m {
		sum = crc32.Checksum(b, h) // want "outer variable sum overwritten in iteration order"
	}
	return sum
}

func printer(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "call fmt.Printf runs in iteration order"
	}
}

func firstKey(m map[int]bool) int {
	for k := range m {
		return k // want "return exits the loop at an order-dependent iteration"
	}
	return -1
}

func lastWriter(m map[int]int) int {
	var last int
	for _, v := range m {
		last = v // want "outer variable last overwritten in iteration order"
	}
	return last
}

func floatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "non-integer accumulation into sum is ordering-sensitive"
	}
	return sum
}

func unsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // want "slice keys collects map keys/values but is not visibly sorted after the loop"
	}
	return keys
}

func feedsChannel(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "channel send in iteration order"
	}
}

func readsAccumulator(m map[int]int) int {
	n := 0
	for range m {
		n++
		if n > 3 { // want "accumulator n is both updated and read in the loop body"
			break // want "break exits the loop at an order-dependent iteration"
		}
	}
	return n
}

// sortedKeys is the blessed idiom: collect, sort, then iterate.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// orderFree exercises the order-independent statement forms.
func orderFree(m map[int]int, dead map[int]bool) (int, bool, map[int]int) {
	count := 0
	found := false
	inverse := make(map[int]int, len(m))
	for k, v := range m {
		local := v * 2
		_ = local
		count++
		inverse[v] = k
		delete(dead, k)
		if v > 100 {
			found = true
		}
	}
	return count, found, inverse
}

// annotated is provably order-dependent to the analyzer but blessed
// with a reasoned directive (min-tracking is in fact deterministic).
func annotated(m map[int]int) int {
	best := -1
	//simlint:orderok computes the minimum over keys, which is order-independent
	for k := range m {
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}

// sliceRange is not a map: untouched.
func sliceRange(s []int, ch chan int) {
	for _, v := range s {
		ch <- v
	}
}
