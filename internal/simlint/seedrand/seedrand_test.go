package seedrand_test

import (
	"testing"

	"mpicomp/internal/simlint/linttest"
	"mpicomp/internal/simlint/seedrand"
)

func TestSeedRand(t *testing.T) {
	linttest.Run(t, "testdata", seedrand.Analyzer, "seedrand")
}
