// Package seedrand forbids nondeterministically seeded randomness in
// non-test code.
//
// Fault fates, codec-fault timelines, and breaker jitter must be pure
// functions of event identity and the run seed (see internal/faults):
// that is what lets a crash schedule replay bit-identically under any
// host scheduling. The math/rand package-level functions draw from a
// process-global source that Go 1.20+ seeds randomly at startup, so a
// single rand.Intn on the wire path would make every run unique.
//
// The analyzer flags, outside _test.go files:
//
//   - any call to a package-level function of math/rand or
//     math/rand/v2 (Int, Intn, Float64, Perm, Shuffle, Read, …),
//     including the deprecated rand.Seed;
//
// Constructing a private generator with rand.New(rand.NewSource(seed))
// is allowed: an explicit source makes the seed an auditable input, and
// vclockpurity separately rejects seeding it from the wall clock.
package seedrand

import (
	"go/ast"

	"mpicomp/internal/simlint/analysis"
)

// constructors are the math/rand package-level functions that build
// explicitly seeded values rather than drawing from the global source.
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 source constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the seedrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "seedrand",
	Doc:  "forbid math/rand global functions in non-test code (fates must be pure hashes of event identity)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand values are fine: the generator was
			// built from an explicit source the caller chose.
			if analysis.ReceiverNamed(fn) != nil {
				return true
			}
			if constructors[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"global rand.%s is nondeterministically seeded: derive the value from a pure hash of event identity, or use rand.New(rand.NewSource(seed))",
				fn.Name())
			return true
		})
	}
	return nil, nil
}
