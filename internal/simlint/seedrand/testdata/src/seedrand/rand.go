// Package seedrand is the golden test for the analyzer of the same
// name: global math/rand draws are forbidden in non-test code.
package seedrand

import "math/rand"

func fates(n int) int {
	rand.Seed(42)              // want "global rand.Seed is nondeterministically seeded"
	if rand.Float64() < 0.5 {  // want "global rand.Float64 is nondeterministically seeded"
		return rand.Intn(n) // want "global rand.Intn is nondeterministically seeded"
	}
	rand.Shuffle(n, func(i, j int) {}) // want "global rand.Shuffle is nondeterministically seeded"
	return 0
}

// seeded draws from an explicit, auditable source: allowed. Method
// calls on the private generator are fine too.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) {})
	return rng.Intn(n)
}
