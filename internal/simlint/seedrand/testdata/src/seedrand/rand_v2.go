package seedrand

import randv2 "math/rand/v2"

func fatesV2(n int) int {
	return randv2.IntN(n) // want "global rand.IntN is nondeterministically seeded"
}

func seededV2(n int) int {
	rng := randv2.New(randv2.NewPCG(1, 2))
	return rng.IntN(n)
}
