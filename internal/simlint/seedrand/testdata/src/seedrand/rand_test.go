package seedrand

import "math/rand"

// Tests may use the global source: shuffling inputs for a soak test is
// exactly what it is for.
func noiseInTests(n int) int {
	return rand.Intn(n)
}
