// Package cli holds the flag parsing and text-table rendering shared by
// the repository's executables (cmd/tables, cmd/figures, cmd/ombrun,
// cmd/awpodc, cmd/daskbench).
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mpicomp/internal/core"
	"mpicomp/internal/faults"
	"mpicomp/internal/hw"
	"mpicomp/internal/mpi"
	"mpicomp/internal/simtime"
)

// EngineFlags collects the compression-engine configuration flags.
type EngineFlags struct {
	Mode    *string
	Codec   *string
	Rate    *int
	Dim     *int
	Dynamic *bool
	Workers *int
	Chunk   *string
	Cache   *int
	Credits *int
}

// AddEngineFlags registers -mode/-codec/-rate/-mpcdim/-dynamic/-workers
// on fs. (The compression codec flag used to be called -algo; it was
// renamed so -algo could name the collective algorithm pin.)
func AddEngineFlags(fs *flag.FlagSet) *EngineFlags {
	return &EngineFlags{
		Mode:    fs.String("mode", "opt", "compression integration: off | naive | opt"),
		Codec:   fs.String("codec", "none", "compression codec: none | mpc | zfp"),
		Rate:    fs.Int("rate", 16, "ZFP fixed rate in bits/value (4, 8, 16, ...)"),
		Dim:     fs.Int("mpcdim", 1, "MPC dimensionality"),
		Dynamic: fs.Bool("dynamic", false, "enable cost-model-driven per-message selection"),
		Workers: fs.Int("workers", 0, "host codec worker pool size (0 = GOMAXPROCS, 1 = serial; cannot affect results)"),
		Chunk:   fs.String("chunk", "", "pipelined-rendezvous chunk size, e.g. 256K (empty = off)"),
		Cache:   fs.Int("cache", 0, "compress-once cache entries per engine (0 = default, negative = off)"),
		Credits: fs.Int("credits", 0, "pipeline credit window: max chunks in flight (0 = default, negative = unlimited)"),
	}
}

// Config materializes the engine configuration from the parsed flags.
func (e *EngineFlags) Config() (core.Config, error) {
	cfg := core.Config{
		ZFPRate: *e.Rate, MPCDim: *e.Dim, Dynamic: *e.Dynamic,
		Workers: *e.Workers, CacheEntries: *e.Cache,
		PipelineCredits: *e.Credits,
	}
	if *e.Chunk != "" {
		sizes, err := ParseSizes(*e.Chunk)
		if err != nil || len(sizes) != 1 {
			return cfg, fmt.Errorf("bad -chunk %q", *e.Chunk)
		}
		cfg.PipelineChunkBytes = sizes[0]
	}
	switch strings.ToLower(*e.Mode) {
	case "off":
		cfg.Mode = core.ModeOff
	case "naive":
		cfg.Mode = core.ModeNaive
	case "opt":
		cfg.Mode = core.ModeOpt
	default:
		return cfg, fmt.Errorf("unknown -mode %q", *e.Mode)
	}
	switch strings.ToLower(*e.Codec) {
	case "none", "":
		cfg.Algorithm = core.AlgoNone
	case "mpc":
		cfg.Algorithm = core.AlgoMPC
	case "zfp":
		cfg.Algorithm = core.AlgoZFP
	default:
		return cfg, fmt.Errorf("unknown -codec %q", *e.Codec)
	}
	return cfg, nil
}

// ErrBadAlgo is the sentinel ParseAlgo failures wrap.
var ErrBadAlgo = errors.New("unknown collective algorithm")

// ParseAlgo parses a collective algorithm name (the -algo pin on
// ombrun) into its mpi enum value. Names are the AllreduceAlgo String
// forms: auto, ring, ring-blocking, rd, rab, two-level, reduce-bcast.
func ParseAlgo(s string) (mpi.AllreduceAlgo, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "":
		return mpi.AllreduceAuto, nil
	case "reduce-bcast":
		return mpi.AllreduceReduceBcast, nil
	case "ring":
		return mpi.AllreduceRing, nil
	case "ring-blocking":
		return mpi.AllreduceRingBlocking, nil
	case "rd":
		return mpi.AllreduceRecursiveDoubling, nil
	case "rab":
		return mpi.AllreduceRabenseifner, nil
	case "two-level":
		return mpi.AllreduceTwoLevel, nil
	}
	return 0, fmt.Errorf("%w %q (want auto, ring, ring-blocking, rd, rab, two-level or reduce-bcast)", ErrBadAlgo, s)
}

// ClusterByName resolves a cluster flag value.
func ClusterByName(name string) (hw.Cluster, error) {
	c, ok := hw.Clusters()[strings.ToLower(name)]
	if !ok {
		return hw.Cluster{}, fmt.Errorf("unknown cluster %q (want longhorn, frontera, lassen, ri2, sierra or ampere)", name)
	}
	return c, nil
}

// ParseSizes parses a comma-separated size list with K/M suffixes
// ("256K,1M,32M").
func ParseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		mult := 1
		switch {
		case strings.HasSuffix(part, "K"), strings.HasSuffix(part, "k"):
			mult, part = 1<<10, part[:len(part)-1]
		case strings.HasSuffix(part, "M"), strings.HasSuffix(part, "m"):
			mult, part = 1<<20, part[:len(part)-1]
		case strings.HasSuffix(part, "G"), strings.HasSuffix(part, "g"):
			mult, part = 1<<30, part[:len(part)-1]
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", part, err)
		}
		out = append(out, n*mult)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty size list")
	}
	return out, nil
}

// ParseFaults parses a fault-injection spec of the form
// "seed=7,drop=0.01,corrupt=0.005,degrade=0.1,factor=0.25" into a
// faults.Config. Chunk-granular fates use chunkdrop, chunkcorrupt,
// chunkdup, and chunkreorder. Rates are probabilities in [0,1]; omitted
// keys stay zero. An empty string yields nil (fault injection off).
func ParseFaults(s string) (*faults.Config, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	cfg := &faults.Config{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad fault option %q (want key=value)", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad fault seed %q: %w", val, err)
			}
			cfg.Seed = n
		case "drop", "corrupt", "degrade", "factor",
			"chunkdrop", "chunkcorrupt", "chunkdup", "chunkreorder":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("fault option %s=%q must be a probability in [0,1]", key, val)
			}
			switch key {
			case "drop":
				cfg.DropRate = f
			case "corrupt":
				cfg.CorruptRate = f
			case "degrade":
				cfg.DegradeRate = f
			case "factor":
				cfg.DegradeFactor = f
			case "chunkdrop":
				cfg.ChunkDropRate = f
			case "chunkcorrupt":
				cfg.ChunkCorruptRate = f
			case "chunkdup":
				cfg.ChunkDuplicateRate = f
			case "chunkreorder":
				cfg.ChunkReorderRate = f
			}
		default:
			return nil, fmt.Errorf("unknown fault option %q (want seed, drop, corrupt, degrade, factor, chunkdrop, chunkcorrupt, chunkdup, chunkreorder)", key)
		}
	}
	return cfg, nil
}

// ParseSimDuration parses a simulated duration such as "500us", "2ms",
// "1.5s" or "250ns" into a simtime.Duration.
func ParseSimDuration(s string) (simtime.Duration, error) {
	v := strings.ToLower(strings.TrimSpace(s))
	var unit simtime.Duration
	var num string
	switch {
	case strings.HasSuffix(v, "ns"):
		unit, num = 1, v[:len(v)-2]
	case strings.HasSuffix(v, "us"):
		unit, num = simtime.Microsecond, v[:len(v)-2]
	case strings.HasSuffix(v, "ms"):
		unit, num = simtime.Millisecond, v[:len(v)-2]
	case strings.HasSuffix(v, "s"):
		unit, num = simtime.Second, v[:len(v)-1]
	default:
		return 0, fmt.Errorf("bad duration %q (want a number with ns/us/ms/s suffix, e.g. 500us)", s)
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad duration %q (want a non-negative number with ns/us/ms/s suffix)", s)
	}
	return simtime.Duration(f * float64(unit)), nil
}

// ParseCrash parses a process-failure spec of the form
// "seed=7,crash=0.125,silent=0.06,window=2ms,codec=0.5,until=1ms" and
// merges it into cfg (which may be nil — a Config is allocated then).
// crash/silent/codec are probabilities in [0,1]; window bounds failure
// onsets; until heals codec faults past that simulated instant. An empty
// spec returns cfg unchanged.
func ParseCrash(s string, cfg *faults.Config) (*faults.Config, error) {
	if strings.TrimSpace(s) == "" {
		return cfg, nil
	}
	if cfg == nil {
		cfg = &faults.Config{}
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad crash option %q (want key=value)", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad crash seed %q: %w", val, err)
			}
			cfg.Seed = n
		case "crash", "silent", "codec":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("crash option %s=%q must be a probability in [0,1]", key, val)
			}
			switch key {
			case "crash":
				cfg.CrashRate = f
			case "silent":
				cfg.SilentRate = f
			case "codec":
				cfg.CodecRate = f
			}
		case "window", "until":
			d, err := ParseSimDuration(val)
			if err != nil {
				return nil, fmt.Errorf("crash option %s: %w", key, err)
			}
			if key == "window" {
				cfg.FailWindow = d
			} else {
				cfg.CodecUntil = d
			}
		default:
			return nil, fmt.Errorf("unknown crash option %q (want seed, crash, silent, window, codec, until)", key)
		}
	}
	return cfg, nil
}

// ParsePartition parses a link/partition fault spec of the form
// "seed=3,linkdown=0.25,outage=600us,flap=0.1,period=400us,duty=0.25,
// window=2ms,groups=0:1|2:3,at=200us,heal=1ms" and merges it into cfg
// (which may be nil — a Config is allocated then). linkdown/flap are
// per-node-pair probabilities; groups is a |-separated list of :-separated
// node-id groups naming an explicit partition plan; at/heal bound the
// partition window. An empty spec returns cfg unchanged.
func ParsePartition(s string, cfg *faults.Config) (*faults.Config, error) {
	if strings.TrimSpace(s) == "" {
		return cfg, nil
	}
	if cfg == nil {
		cfg = &faults.Config{}
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad partition option %q (want key=value)", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad partition seed %q: %w", val, err)
			}
			cfg.Seed = n
		case "linkdown", "flap", "duty":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("partition option %s=%q must be in [0,1]", key, val)
			}
			switch key {
			case "linkdown":
				cfg.LinkDownRate = f
			case "flap":
				cfg.LinkFlapRate = f
			case "duty":
				cfg.FlapDuty = f
			}
		case "outage", "period", "window", "at", "heal":
			d, err := ParseSimDuration(val)
			if err != nil {
				return nil, fmt.Errorf("partition option %s: %w", key, err)
			}
			switch key {
			case "outage":
				cfg.LinkOutage = d
			case "period":
				cfg.FlapPeriod = d
			case "window":
				cfg.LinkWindow = d
			case "at":
				cfg.PartitionAt = d
			case "heal":
				cfg.PartitionHeal = d
			}
		case "groups":
			groups, err := parseGroups(val)
			if err != nil {
				return nil, err
			}
			cfg.PartitionGroups = groups
		default:
			return nil, fmt.Errorf("unknown partition option %q (want seed, linkdown, outage, flap, period, duty, window, groups, at, heal)", key)
		}
	}
	return cfg, nil
}

// parseGroups parses a partition plan like "0:1|2:3" into node-id groups.
func parseGroups(s string) ([][]int, error) {
	var groups [][]int
	for _, g := range strings.Split(s, "|") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		var nodes []int
		for _, id := range strings.Split(g, ":") {
			n, err := strconv.Atoi(strings.TrimSpace(id))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad partition group node %q (want a non-negative node id)", id)
			}
			nodes = append(nodes, n)
		}
		groups = append(groups, nodes)
	}
	if len(groups) < 2 {
		return nil, fmt.Errorf("partition groups %q need at least two |-separated groups", s)
	}
	return groups, nil
}

// ParseHeal parses a self-heal spec of the form "on=true,attempts=4" and
// merges it into pol (typically the policy from -health). An empty spec
// returns pol unchanged.
func ParseHeal(s string, pol mpi.HealthPolicy) (mpi.HealthPolicy, error) {
	if strings.TrimSpace(s) == "" {
		return pol, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return pol, fmt.Errorf("bad heal option %q (want key=value)", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		switch key {
		case "on":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return pol, fmt.Errorf("heal option on=%q must be a boolean", val)
			}
			pol.SelfHeal = b
		case "attempts":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return pol, fmt.Errorf("heal option attempts=%q must be a non-negative integer", val)
			}
			pol.MaxAttempts = n
		default:
			return pol, fmt.Errorf("unknown heal option %q (want on, attempts)", key)
		}
	}
	return pol, nil
}

// ParseDetector parses a failure-detector spec of the form
// "lease=200us,confirm=300us" into an mpi.DetectorPolicy. An empty string
// yields the zero policy (detector off).
func ParseDetector(s string) (mpi.DetectorPolicy, error) {
	var pol mpi.DetectorPolicy
	if strings.TrimSpace(s) == "" {
		return pol, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return pol, fmt.Errorf("bad detector option %q (want key=value)", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		switch key {
		case "lease", "confirm":
			d, err := ParseSimDuration(val)
			if err != nil {
				return pol, fmt.Errorf("detector option %s: %w", key, err)
			}
			if key == "lease" {
				pol.Lease = d
			} else {
				pol.Confirm = d
			}
		default:
			return pol, fmt.Errorf("unknown detector option %q (want lease, confirm)", key)
		}
	}
	return pol, nil
}

// ParseHealth parses a failure-handling spec of the form
// "deadline=500us,shrink=true" into an mpi.HealthPolicy. An empty string
// yields the zero policy (library defaults).
func ParseHealth(s string) (mpi.HealthPolicy, error) {
	var pol mpi.HealthPolicy
	if strings.TrimSpace(s) == "" {
		return pol, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return pol, fmt.Errorf("bad health option %q (want key=value)", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		switch key {
		case "deadline":
			d, err := ParseSimDuration(val)
			if err != nil {
				return pol, fmt.Errorf("health option deadline: %w", err)
			}
			pol.Deadline = d
		case "shrink":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return pol, fmt.Errorf("health option shrink=%q must be a boolean", val)
			}
			pol.ShrinkCollectives = b
		default:
			return pol, fmt.Errorf("unknown health option %q (want deadline, shrink)", key)
		}
	}
	return pol, nil
}

// ParseBreaker parses a codec-circuit-breaker spec of the form
// "threshold=3,cooldown=2ms,seed=11" into a core.BreakerPolicy. An empty
// string yields the zero policy (breaker off).
func ParseBreaker(s string) (core.BreakerPolicy, error) {
	var pol core.BreakerPolicy
	if strings.TrimSpace(s) == "" {
		return pol, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return pol, fmt.Errorf("bad breaker option %q (want key=value)", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		switch key {
		case "threshold":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return pol, fmt.Errorf("breaker option threshold=%q must be a non-negative integer", val)
			}
			pol.Threshold = n
		case "cooldown":
			d, err := ParseSimDuration(val)
			if err != nil {
				return pol, fmt.Errorf("breaker option cooldown: %w", err)
			}
			pol.Cooldown = d
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return pol, fmt.Errorf("bad breaker seed %q: %w", val, err)
			}
			pol.Seed = n
		default:
			return pol, fmt.Errorf("unknown breaker option %q (want threshold, cooldown, seed)", key)
		}
	}
	return pol, nil
}

// FormatBytes renders a byte count with a binary suffix ("32M", "256K").
func FormatBytes(n int) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return strconv.Itoa(n)
	}
}

// Table renders aligned text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// Fatal prints the error to stderr and exits with status 1 when err is
// non-nil; it is a no-op otherwise.
func Fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
