package cli

import (
	"bytes"
	"flag"
	"strings"
	"testing"

	"mpicomp/internal/core"
)

func TestEngineFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ef := AddEngineFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	cfg, err := ef.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != core.ModeOpt || cfg.Algorithm != core.AlgoNone || cfg.ZFPRate != 16 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestEngineFlagsParsing(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ef := AddEngineFlags(fs)
	if err := fs.Parse([]string{"-mode", "naive", "-algo", "zfp", "-rate", "8", "-dynamic"}); err != nil {
		t.Fatal(err)
	}
	cfg, err := ef.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != core.ModeNaive || cfg.Algorithm != core.AlgoZFP || cfg.ZFPRate != 8 || !cfg.Dynamic {
		t.Fatalf("parsed wrong: %+v", cfg)
	}
}

func TestEngineFlagsRejectsUnknown(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "bogus"},
		{"-algo", "lz4"},
	} {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		ef := AddEngineFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if _, err := ef.Config(); err == nil {
			t.Fatalf("args %v should be rejected", args)
		}
	}
}

func TestClusterByName(t *testing.T) {
	c, err := ClusterByName("Frontera")
	if err != nil || c.Name != "Frontera Liquid" {
		t.Fatalf("lookup failed: %v %v", c.Name, err)
	}
	if _, err := ClusterByName("summit"); err == nil {
		t.Fatal("unknown cluster should fail")
	}
}

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes("256K, 1M,32M,7")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{256 << 10, 1 << 20, 32 << 20, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sizes: %v", got)
		}
	}
	if _, err := ParseSizes(""); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := ParseSizes("12Q"); err == nil {
		t.Fatal("bad suffix should fail")
	}
	g, err := ParseSizes("1G")
	if err != nil || g[0] != 1<<30 {
		t.Fatalf("G suffix: %v %v", g, err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		7:         "7",
		1 << 10:   "1K",
		256 << 10: "256K",
		32 << 20:  "32M",
		2 << 30:   "2G",
		1500:      "1500",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d)=%q want %q", n, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Name", "Value")
	tbl.Row("alpha", 1)
	tbl.Row("a-much-longer-name", 3.14159)
	var buf bytes.Buffer
	tbl.Write(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Name") || !strings.Contains(lines[3], "3.142") {
		t.Fatalf("rendering wrong:\n%s", out)
	}
	// Columns align: every line has the same prefix width for column 2.
	idx0 := strings.Index(lines[0], "Value")
	idx3 := strings.Index(lines[3], "3.142")
	if idx0 != idx3 {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestFatalNilIsNoop(t *testing.T) {
	Fatal(nil) // must not exit
}

func TestParseFaults(t *testing.T) {
	if cfg, err := ParseFaults(""); err != nil || cfg != nil {
		t.Fatalf("empty spec: cfg=%v err=%v", cfg, err)
	}
	cfg, err := ParseFaults("seed=7, drop=0.01, corrupt=0.005, degrade=0.1, factor=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.DropRate != 0.01 || cfg.CorruptRate != 0.005 ||
		cfg.DegradeRate != 0.1 || cfg.DegradeFactor != 0.25 {
		t.Fatalf("parsed config wrong: %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config should be enabled")
	}
	for _, bad := range []string{"drop=2", "drop=-0.1", "bogus=1", "drop", "seed=x"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
}
