package cli

import (
	"bytes"
	"errors"
	"flag"
	"reflect"
	"strings"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/faults"
	"mpicomp/internal/mpi"
	"mpicomp/internal/simtime"
)

func TestEngineFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ef := AddEngineFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	cfg, err := ef.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != core.ModeOpt || cfg.Algorithm != core.AlgoNone || cfg.ZFPRate != 16 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestEngineFlagsParsing(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ef := AddEngineFlags(fs)
	if err := fs.Parse([]string{"-mode", "naive", "-codec", "zfp", "-rate", "8", "-dynamic"}); err != nil {
		t.Fatal(err)
	}
	cfg, err := ef.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != core.ModeNaive || cfg.Algorithm != core.AlgoZFP || cfg.ZFPRate != 8 || !cfg.Dynamic {
		t.Fatalf("parsed wrong: %+v", cfg)
	}
}

func TestEngineFlagsRejectsUnknown(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "bogus"},
		{"-codec", "lz4"},
	} {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		ef := AddEngineFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if _, err := ef.Config(); err == nil {
			t.Fatalf("args %v should be rejected", args)
		}
	}
}

func TestParseAlgo(t *testing.T) {
	good := map[string]mpi.AllreduceAlgo{
		"auto":          mpi.AllreduceAuto,
		"":              mpi.AllreduceAuto,
		"reduce-bcast":  mpi.AllreduceReduceBcast,
		"ring":          mpi.AllreduceRing,
		"ring-blocking": mpi.AllreduceRingBlocking,
		"rd":            mpi.AllreduceRecursiveDoubling,
		"RAB":           mpi.AllreduceRabenseifner,
		" two-level ":   mpi.AllreduceTwoLevel,
	}
	for in, want := range good {
		got, err := ParseAlgo(in)
		if err != nil {
			t.Errorf("ParseAlgo(%q): %v", in, err)
		} else if got != want {
			t.Errorf("ParseAlgo(%q) = %v, want %v", in, got, want)
		}
	}
	for _, in := range []string{"bogus", "ringz", "recursive-doubling", "rab2", "mpc"} {
		if _, err := ParseAlgo(in); !errors.Is(err, ErrBadAlgo) {
			t.Errorf("ParseAlgo(%q) err = %v, want ErrBadAlgo", in, err)
		}
	}
	// Round trip: every accepted name is the enum's own String form.
	for _, a := range []mpi.AllreduceAlgo{
		mpi.AllreduceAuto, mpi.AllreduceReduceBcast, mpi.AllreduceRing,
		mpi.AllreduceRingBlocking, mpi.AllreduceRecursiveDoubling,
		mpi.AllreduceRabenseifner, mpi.AllreduceTwoLevel,
	} {
		got, err := ParseAlgo(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgo(%q) = %v, %v; want %v", a.String(), got, err, a)
		}
	}
}

func TestClusterByName(t *testing.T) {
	c, err := ClusterByName("Frontera")
	if err != nil || c.Name != "Frontera Liquid" {
		t.Fatalf("lookup failed: %v %v", c.Name, err)
	}
	if _, err := ClusterByName("summit"); err == nil {
		t.Fatal("unknown cluster should fail")
	}
}

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes("256K, 1M,32M,7")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{256 << 10, 1 << 20, 32 << 20, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sizes: %v", got)
		}
	}
	if _, err := ParseSizes(""); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := ParseSizes("12Q"); err == nil {
		t.Fatal("bad suffix should fail")
	}
	g, err := ParseSizes("1G")
	if err != nil || g[0] != 1<<30 {
		t.Fatalf("G suffix: %v %v", g, err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		7:         "7",
		1 << 10:   "1K",
		256 << 10: "256K",
		32 << 20:  "32M",
		2 << 30:   "2G",
		1500:      "1500",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d)=%q want %q", n, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Name", "Value")
	tbl.Row("alpha", 1)
	tbl.Row("a-much-longer-name", 3.14159)
	var buf bytes.Buffer
	tbl.Write(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Name") || !strings.Contains(lines[3], "3.142") {
		t.Fatalf("rendering wrong:\n%s", out)
	}
	// Columns align: every line has the same prefix width for column 2.
	idx0 := strings.Index(lines[0], "Value")
	idx3 := strings.Index(lines[3], "3.142")
	if idx0 != idx3 {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestFatalNilIsNoop(t *testing.T) {
	Fatal(nil) // must not exit
}

func TestParseFaults(t *testing.T) {
	if cfg, err := ParseFaults(""); err != nil || cfg != nil {
		t.Fatalf("empty spec: cfg=%v err=%v", cfg, err)
	}
	cfg, err := ParseFaults("seed=7, drop=0.01, corrupt=0.005, degrade=0.1, factor=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.DropRate != 0.01 || cfg.CorruptRate != 0.005 ||
		cfg.DegradeRate != 0.1 || cfg.DegradeFactor != 0.25 {
		t.Fatalf("parsed config wrong: %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config should be enabled")
	}
	for _, bad := range []string{"drop=2", "drop=-0.1", "bogus=1", "drop", "seed=x"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
}

func TestParseSimDuration(t *testing.T) {
	good := map[string]simtime.Duration{
		"250ns": 250,
		"500us": 500 * simtime.Microsecond,
		"2ms":   2 * simtime.Millisecond,
		"1.5s":  simtime.Duration(1.5 * float64(simtime.Second)),
		"0us":   0,
		" 3ms ": 3 * simtime.Millisecond,
	}
	for in, want := range good {
		got, err := ParseSimDuration(in)
		if err != nil {
			t.Errorf("ParseSimDuration(%q): %v", in, err)
		} else if got != want {
			t.Errorf("ParseSimDuration(%q) = %v, want %v", in, got, want)
		}
	}
	for _, in := range []string{"", "500", "abc", "-2ms", "2 hours", "ms"} {
		if _, err := ParseSimDuration(in); err == nil {
			t.Errorf("ParseSimDuration(%q) accepted", in)
		}
	}
}

func TestParseCrash(t *testing.T) {
	// Empty spec leaves cfg alone, including a nil one.
	if cfg, err := ParseCrash("", nil); err != nil || cfg != nil {
		t.Errorf("empty spec gave cfg=%v err=%v", cfg, err)
	}

	cfg, err := ParseCrash("seed=7,crash=0.125,silent=0.06,window=2ms,codec=0.5,until=1ms", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := faults.Config{
		Seed: 7, CrashRate: 0.125, SilentRate: 0.06,
		FailWindow: 2 * simtime.Millisecond,
		CodecRate:  0.5, CodecUntil: simtime.Millisecond,
	}
	if !reflect.DeepEqual(*cfg, want) {
		t.Errorf("ParseCrash = %+v, want %+v", *cfg, want)
	}

	// Merging into an existing config (from -faults) keeps its fields.
	base := &faults.Config{Seed: 1, DropRate: 0.25}
	cfg, err = ParseCrash("crash=0.5", base)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != base || cfg.DropRate != 0.25 || cfg.CrashRate != 0.5 || cfg.Seed != 1 {
		t.Errorf("merge mangled the base config: %+v", *cfg)
	}

	for _, in := range []string{
		"crash", "crash=2", "crash=-0.1", "silent=x", "codec=1.5",
		"window=5", "until=-1ms", "seed=abc", "bogus=1",
	} {
		if _, err := ParseCrash(in, nil); err == nil {
			t.Errorf("ParseCrash(%q) accepted", in)
		}
	}
}

func TestParsePartition(t *testing.T) {
	// Empty spec leaves cfg alone, including a nil one.
	if cfg, err := ParsePartition("", nil); err != nil || cfg != nil {
		t.Errorf("empty spec gave cfg=%v err=%v", cfg, err)
	}

	cfg, err := ParsePartition(
		"seed=3,linkdown=0.25,outage=600us,flap=0.1,period=400us,duty=0.25,window=2ms,groups=0:1|2:3,at=200us,heal=1ms", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := faults.Config{
		Seed: 3, LinkDownRate: 0.25,
		LinkOutage:      600 * simtime.Microsecond,
		LinkFlapRate:    0.1,
		FlapPeriod:      400 * simtime.Microsecond,
		FlapDuty:        0.25,
		LinkWindow:      2 * simtime.Millisecond,
		PartitionGroups: [][]int{{0, 1}, {2, 3}},
		PartitionAt:     200 * simtime.Microsecond,
		PartitionHeal:   simtime.Millisecond,
	}
	if !reflect.DeepEqual(*cfg, want) {
		t.Errorf("ParsePartition = %+v, want %+v", *cfg, want)
	}
	if !cfg.LinkFaults() {
		t.Error("parsed config should enable link faults")
	}

	// Merging into an existing config (from -faults/-crash) keeps its fields.
	base := &faults.Config{Seed: 1, CrashRate: 0.5}
	cfg, err = ParsePartition("linkdown=0.125", base)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != base || cfg.CrashRate != 0.5 || cfg.LinkDownRate != 0.125 || cfg.Seed != 1 {
		t.Errorf("merge mangled the base config: %+v", *cfg)
	}

	for _, in := range []string{
		"linkdown", "linkdown=2", "flap=-0.1", "duty=x", "outage=5",
		"at=-1ms", "groups=0:1", "groups=0:x|2", "seed=abc", "bogus=1",
	} {
		if _, err := ParsePartition(in, nil); err == nil {
			t.Errorf("ParsePartition(%q) accepted", in)
		}
	}
}

func TestParseHeal(t *testing.T) {
	base := mpi.HealthPolicy{Deadline: 500 * simtime.Microsecond}
	if pol, err := ParseHeal("", base); err != nil || pol != base {
		t.Errorf("empty spec gave %+v err=%v", pol, err)
	}
	pol, err := ParseHeal("on=true,attempts=3", base)
	if err != nil {
		t.Fatal(err)
	}
	if !pol.SelfHeal || pol.MaxAttempts != 3 || pol.Deadline != base.Deadline {
		t.Errorf("ParseHeal = %+v", pol)
	}
	for _, in := range []string{"on=maybe", "attempts=-1", "attempts=x", "on", "retry=2"} {
		if _, err := ParseHeal(in, base); err == nil {
			t.Errorf("ParseHeal(%q) accepted", in)
		}
	}
}

func TestParseDetector(t *testing.T) {
	if pol, err := ParseDetector(""); err != nil || pol.Enabled() {
		t.Errorf("empty spec gave %+v err=%v", pol, err)
	}
	pol, err := ParseDetector("lease=200us,confirm=300us")
	if err != nil {
		t.Fatal(err)
	}
	if pol.Lease != 200*simtime.Microsecond || pol.Confirm != 300*simtime.Microsecond {
		t.Errorf("ParseDetector = %+v", pol)
	}
	if !pol.Enabled() {
		t.Error("parsed detector should be enabled")
	}
	for _, in := range []string{"lease=5", "confirm", "window=1ms"} {
		if _, err := ParseDetector(in); err == nil {
			t.Errorf("ParseDetector(%q) accepted", in)
		}
	}
}

func TestParseHealth(t *testing.T) {
	if pol, err := ParseHealth(""); err != nil || pol != (mpi.HealthPolicy{}) {
		t.Errorf("empty spec gave %+v err=%v", pol, err)
	}
	pol, err := ParseHealth("deadline=500us,shrink=true")
	if err != nil {
		t.Fatal(err)
	}
	if pol.Deadline != 500*simtime.Microsecond || !pol.ShrinkCollectives {
		t.Errorf("ParseHealth = %+v", pol)
	}
	for _, in := range []string{"deadline=5", "shrink=maybe", "deadline", "timeout=1ms"} {
		if _, err := ParseHealth(in); err == nil {
			t.Errorf("ParseHealth(%q) accepted", in)
		}
	}
}

func TestParseBreaker(t *testing.T) {
	if pol, err := ParseBreaker(""); err != nil || pol.Enabled() {
		t.Errorf("empty spec gave %+v err=%v", pol, err)
	}
	pol, err := ParseBreaker("threshold=3,cooldown=2ms,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	want := core.BreakerPolicy{Threshold: 3, Cooldown: 2 * simtime.Millisecond, Seed: 11}
	if pol != want {
		t.Errorf("ParseBreaker = %+v, want %+v", pol, want)
	}
	for _, in := range []string{"threshold=-1", "threshold=x", "cooldown=5", "seed=z", "trip=3"} {
		if _, err := ParseBreaker(in); err == nil {
			t.Errorf("ParseBreaker(%q) accepted", in)
		}
	}
}
