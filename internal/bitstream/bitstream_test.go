package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter()
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		if got := r.ReadBit(); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsReturnsRemainder(t *testing.T) {
	w := NewWriter()
	rest := w.WriteBits(0b1101_0110, 4)
	if rest != 0b1101 {
		t.Fatalf("WriteBits remainder: got %b want 1101", rest)
	}
	r := NewReader(w.Bytes())
	if got := r.ReadBits(4); got != 0b0110 {
		t.Fatalf("ReadBits: got %04b want 0110", got)
	}
}

func TestWriteBitsZeroCount(t *testing.T) {
	w := NewWriter()
	if rest := w.WriteBits(42, 0); rest != 42 {
		t.Fatalf("WriteBits(_,0) should return input, got %d", rest)
	}
	if w.BitLen() != 0 {
		t.Fatalf("no bits should be written, got %d", w.BitLen())
	}
}

func TestWriteBits64(t *testing.T) {
	w := NewWriter()
	const v uint64 = 0xdeadbeefcafebabe
	if rest := w.WriteBits(v, 64); rest != 0 {
		t.Fatalf("full write should leave no remainder, got %x", rest)
	}
	r := NewReader(w.Bytes())
	if got := r.ReadBits(64); got != v {
		t.Fatalf("got %x want %x", got, v)
	}
}

func TestCrossWordBoundary(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0x7f, 7) // 7 bits so later writes straddle words
	for i := 0; i < 10; i++ {
		w.WriteBits(uint64(i)*0x0123456789abcdef, 64)
	}
	r := NewReader(w.Bytes())
	if got := r.ReadBits(7); got != 0x7f {
		t.Fatalf("prefix: got %x", got)
	}
	for i := 0; i < 10; i++ {
		want := uint64(i) * 0x0123456789abcdef
		if got := r.ReadBits(64); got != want {
			t.Fatalf("word %d: got %x want %x", i, got, want)
		}
	}
}

func TestPadToBit(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.PadToBit(128)
	if w.BitLen() != 128 {
		t.Fatalf("BitLen after pad: got %d want 128", w.BitLen())
	}
	r := NewReader(w.Bytes())
	if got := r.ReadBits(3); got != 0b101 {
		t.Fatalf("payload: got %b", got)
	}
	for i := 3; i < 128; i++ {
		if r.ReadBit() != 0 {
			t.Fatalf("padding bit %d not zero", i)
		}
	}
}

func TestPadToBitPanicsWhenTooLong(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w := NewWriter()
	w.WriteBits(0, 10)
	w.PadToBit(5)
}

func TestReadPastEndYieldsZeros(t *testing.T) {
	r := NewReader([]byte{0xff})
	if got := r.ReadBits(8); got != 0xff {
		t.Fatalf("payload: got %x", got)
	}
	if got := r.ReadBits(16); got != 0 {
		t.Fatalf("past-end read should be zero, got %x", got)
	}
	if r.BitPos() != 24 {
		t.Fatalf("BitPos: got %d want 24", r.BitPos())
	}
}

func TestSkipToBit(t *testing.T) {
	w := NewWriter()
	for i := 0; i < 8; i++ {
		w.WriteBits(uint64(i), 16) // blocks of 16 bits
	}
	r := NewReader(w.Bytes())
	r.SkipToBit(5 * 16)
	if got := r.ReadBits(16); got != 5 {
		t.Fatalf("after skip: got %d want 5", got)
	}
	// Skip backwards too.
	r.SkipToBit(2 * 16)
	if got := r.ReadBits(16); got != 2 {
		t.Fatalf("after back-skip: got %d want 2", got)
	}
	if r.BitPos() != 3*16 {
		t.Fatalf("BitPos: got %d", r.BitPos())
	}
}

func TestSkipToUnalignedBit(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0, 13)
	w.WriteBits(0x5a5, 12)
	r := NewReader(w.Bytes())
	r.SkipToBit(13)
	if got := r.ReadBits(12); got != 0x5a5 {
		t.Fatalf("got %x want 5a5", got)
	}
}

// Property: any sequence of variable-width writes reads back identically.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		widths := make([]uint, n)
		values := make([]uint64, n)
		w := NewWriter()
		for i := 0; i < n; i++ {
			widths[i] = uint(1 + rng.Intn(64))
			values[i] = rng.Uint64()
			if widths[i] < 64 {
				values[i] &= (uint64(1) << widths[i]) - 1
			}
			w.WriteBits(values[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			if got := r.ReadBits(widths[i]); got != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving WriteBit and WriteBits agrees with a pure
// bit-at-a-time reference.
func TestMixedWritesMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ref []uint
		w := NewWriter()
		for i := 0; i < 100; i++ {
			if rng.Intn(2) == 0 {
				b := uint(rng.Intn(2))
				w.WriteBit(b)
				ref = append(ref, b)
			} else {
				width := uint(1 + rng.Intn(30))
				v := rng.Uint64() & ((1 << width) - 1)
				w.WriteBits(v, width)
				for j := uint(0); j < width; j++ {
					ref = append(ref, uint((v>>j)&1))
				}
			}
		}
		r := NewReader(w.Bytes())
		for _, want := range ref {
			if r.ReadBit() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesNonDestructive(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1, 1)
	b1 := w.Bytes()
	b2 := w.Bytes()
	if len(b1) != 1 || len(b2) != 1 || b1[0] != b2[0] {
		t.Fatalf("Bytes should be repeatable: %v vs %v", b1, b2)
	}
}
