// Package bitstream implements the word-oriented bit stream used by the ZFP
// codec (and available to any other bit-granular encoder). Semantics mirror
// zfp's bitstream.c: bits are written least-significant-bit first into
// 64-bit words, words are stored little-endian.
package bitstream

import (
	"encoding/binary"
	"fmt"
)

// Writer accumulates bits into a byte buffer.
type Writer struct {
	buf    []byte
	accum  uint64 // bits not yet flushed, LSB-first
	nbits  uint   // number of valid bits in accum (< 64)
	nwrote uint64 // total bits written
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// Reset re-initializes the writer to append bits after the existing
// contents of buf (commonly buf[:0] of a reusable scratch slice). It lets
// callers keep a Writer as a stack value and encode into caller-provided
// storage with no internal allocation — the zero-copy entry the codecs'
// Append variants are built on.
func (w *Writer) Reset(buf []byte) {
	w.buf = buf
	w.accum = 0
	w.nbits = 0
	w.nwrote = 0
}

// Final flushes any partial trailing word to a byte boundary (zero
// padded) and returns the backing buffer. Unlike Bytes it does not copy;
// the writer must be Reset before further use.
func (w *Writer) Final() []byte {
	if w.nbits > 0 {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w.accum)
		n := (w.nbits + 7) / 8
		w.buf = append(w.buf, b[:n]...)
		w.accum = 0
		w.nbits = 0
	}
	return w.buf
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.accum |= uint64(b&1) << w.nbits
	w.nbits++
	w.nwrote++
	if w.nbits == 64 {
		w.flushWord()
	}
}

// WriteBits appends the low n bits of v, LSB first, and returns the bits of
// v that were NOT written (v >> n), matching zfp's stream_write_bits
// contract that encoders rely on for run-length coding.
func (w *Writer) WriteBits(v uint64, n uint) uint64 {
	if n == 0 {
		return v
	}
	if n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d > 64", n))
	}
	rest := uint64(0)
	if n < 64 {
		rest = v >> n
		v &= (uint64(1) << n) - 1
	}
	w.accum |= v << w.nbits
	total := w.nbits + n
	if total >= 64 {
		w.flushWord()
		if shift := 64 - (total - n); shift < 64 {
			w.accum = v >> shift
		}
		w.nbits = total - 64
	} else {
		w.nbits = total
	}
	w.nwrote += uint64(n)
	return rest
}

func (w *Writer) flushWord() {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], w.accum)
	w.buf = append(w.buf, b[:]...)
	w.accum = 0
	w.nbits = 0
}

// PadToBit pads the stream with zero bits until exactly total bits have
// been written. It panics if the stream is already longer than total.
func (w *Writer) PadToBit(total uint64) {
	if w.nwrote > total {
		panic(fmt.Sprintf("bitstream: stream has %d bits, cannot pad down to %d", w.nwrote, total))
	}
	for w.nwrote+64 <= total {
		w.WriteBits(0, 64)
	}
	if rem := total - w.nwrote; rem > 0 {
		w.WriteBits(0, uint(rem))
	}
}

// BitLen reports the number of bits written so far.
func (w *Writer) BitLen() uint64 { return w.nwrote }

// Bytes returns a snapshot of the stream, padding any partial trailing
// word with zero bits to a byte boundary. The writer's state is not
// modified: Bytes may be called repeatedly and writes may continue after.
func (w *Writer) Bytes() []byte {
	out := append([]byte(nil), w.buf...)
	if w.nbits > 0 {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w.accum)
		n := (w.nbits + 7) / 8
		out = append(out, b[:n]...)
	}
	return out
}

// Reader consumes bits from a byte buffer written by Writer.
type Reader struct {
	buf   []byte
	pos   int    // next byte to load
	accum uint64 // loaded bits, LSB-first
	nbits uint   // valid bits in accum
	nread uint64 // total bits read
}

// NewReader returns a reader over buf. The reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset re-initializes the reader over buf, allowing a stack-allocated
// Reader to be reused without going through NewReader.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.accum = 0
	r.nbits = 0
	r.nread = 0
}

func (r *Reader) fill() {
	for r.nbits <= 56 && r.pos < len(r.buf) {
		r.accum |= uint64(r.buf[r.pos]) << r.nbits
		r.pos++
		r.nbits += 8
	}
}

// ReadBit consumes and returns one bit. Reading past the end returns zero
// bits, matching zfp's behavior of treating the tail as zero padding.
func (r *Reader) ReadBit() uint {
	if r.nbits == 0 {
		r.fill()
		if r.nbits == 0 {
			r.nread++
			return 0
		}
	}
	b := uint(r.accum & 1)
	r.accum >>= 1
	r.nbits--
	r.nread++
	return b
}

// ReadBits consumes and returns n bits, LSB first.
func (r *Reader) ReadBits(n uint) uint64 {
	if n == 0 {
		return 0
	}
	if n > 64 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d > 64", n))
	}
	var v uint64
	var got uint
	for got < n {
		if r.nbits == 0 {
			r.fill()
			if r.nbits == 0 {
				// Zero padding past end of stream.
				r.nread += uint64(n - got)
				return v
			}
		}
		take := n - got
		if take > r.nbits {
			take = r.nbits
		}
		chunk := r.accum & ((uint64(1) << take) - 1)
		if take == 64 {
			chunk = r.accum
		}
		v |= chunk << got
		r.accum >>= take
		r.nbits -= take
		got += take
	}
	r.nread += uint64(n)
	return v
}

// SkipToBit positions the reader at absolute bit offset pos (from the start
// of the buffer). Only forward or backward seeks to byte-computable
// positions are supported; the implementation reloads from the buffer.
func (r *Reader) SkipToBit(pos uint64) {
	bytePos := pos / 8
	bitOff := uint(pos % 8)
	if bytePos > uint64(len(r.buf)) {
		bytePos = uint64(len(r.buf))
	}
	r.pos = int(bytePos)
	r.accum = 0
	r.nbits = 0
	r.nread = pos - uint64(bitOff)
	if bitOff > 0 {
		r.ReadBits(bitOff)
	}
}

// BitPos reports the number of bits consumed so far.
func (r *Reader) BitPos() uint64 { return r.nread }
