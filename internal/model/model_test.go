package model

import (
	"testing"

	"mpicomp/internal/simtime"
)

func us(x float64) simtime.Duration { return simtime.FromMicroseconds(x) }

func baseParams() Params {
	return Params{
		Ts:            us(5),
		Tcompr:        us(300),
		Tdecompr:      us(350),
		TohCompr:      us(50),
		TohDecompr:    us(50),
		MsgBytes:      32 << 20,
		BandwidthGBps: 12.5,
		CR:            2,
	}
}

func TestBaselineEquation(t *testing.T) {
	p := baseParams()
	// 32 MB / 12.5 GB/s = 2684us + 5us setup.
	got := Baseline(p)
	want := p.Ts + simtime.TransferTime(32<<20, 12.5)
	if got != want {
		t.Fatalf("Baseline: %v want %v", got, want)
	}
}

func TestCompressionWinsAtHighCR(t *testing.T) {
	p := baseParams()
	p.CR = 8
	if Benefit(p) <= 0 {
		t.Fatalf("CR=8 should win: benefit %v", Benefit(p))
	}
	// And the compressed estimate must always exceed the ideal one.
	if WithCompression(p) <= Ideal(p) {
		t.Fatal("overheads must make eq(2) slower than eq(3)")
	}
}

func TestCompressionLosesAtSmallMessages(t *testing.T) {
	p := baseParams()
	p.MsgBytes = 64 << 10 // 64 KB: transfer 5us, kernels 750us
	if Benefit(p) > 0 {
		t.Fatalf("64KB should lose: benefit %v", Benefit(p))
	}
}

func TestCRBelowOneClamped(t *testing.T) {
	p := baseParams()
	p.CR = 0.5
	if WithCompression(p) < Baseline(p) {
		t.Fatal("CR<1 must not predict a win")
	}
}

func TestBreakEvenCR(t *testing.T) {
	p := baseParams()
	be := BreakEvenCR(p)
	if be <= 1 {
		t.Fatalf("break-even CR must exceed 1: %v", be)
	}
	// At exactly the break-even CR the benefit should be ~zero.
	p.CR = be
	b := Benefit(p)
	if b < -us(2) || b > us(2) {
		t.Fatalf("benefit at break-even should be ~0: %v", b)
	}
	// Just above break-even, compression wins.
	p.CR = be * 1.2
	if Benefit(p) <= 0 {
		t.Fatal("above break-even must win")
	}
	// When kernels exceed the raw transfer, report "never".
	p.MsgBytes = 1 << 10
	if BreakEvenCR(p) < 1e17 {
		t.Fatal("tiny message should report unreachable break-even")
	}
}

func TestMinMessageSize(t *testing.T) {
	// K=750us of kernel time at 12.5 GB/s with CR 2: need S such that
	// (S/B)*(1/2) > K  =>  S > 2*K*B = 18.75e6 bytes.
	k := us(750)
	s := MinMessageSize(k, 12.5, 2)
	if s < 18_700_000 || s > 18_800_000 {
		t.Fatalf("MinMessageSize: %d", s)
	}
	if MinMessageSize(k, 12.5, 1.0) < 1<<60 {
		t.Fatal("CR=1 can never win")
	}
	// Higher CR lowers the threshold.
	if MinMessageSize(k, 12.5, 8) >= s {
		t.Fatal("higher CR should lower the break-even size")
	}
}
