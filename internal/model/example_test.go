package model_test

import (
	"fmt"

	"mpicomp/internal/model"
	"mpicomp/internal/simtime"
)

// The Section II-A cost model: does compressing a 32 MB message pay off
// on an InfiniBand EDR link?
func ExampleBenefit() {
	p := model.Params{
		Tcompr:        simtime.FromMicroseconds(650),
		Tdecompr:      simtime.FromMicroseconds(700),
		TohCompr:      simtime.FromMicroseconds(30),
		TohDecompr:    simtime.FromMicroseconds(30),
		MsgBytes:      32 << 20,
		BandwidthGBps: 12.5, // IB EDR
		CR:            4,
	}
	fmt.Println("compression wins:", model.Benefit(p) > 0)

	p.BandwidthGBps = 75 // 3-lane NVLink
	fmt.Println("still wins on NVLink:", model.Benefit(p) > 0)
	// Output:
	// compression wins: true
	// still wins on NVLink: false
}
