// Package model implements the analytical cost models of Section II-A
// (equations 1-3), which predict when on-the-fly compression pays off.
// The dynamic-selection extension (the paper's future work) uses these
// predictions to choose a codec per message.
package model

import "mpicomp/internal/simtime"

// Params carries the notation of Table II.
type Params struct {
	// Ts is the communication setup time.
	Ts simtime.Duration
	// Tcompr / Tdecompr are the compression and decompression kernel
	// execution times.
	Tcompr   simtime.Duration
	Tdecompr simtime.Duration
	// TohCompr / TohDecompr are the overheads related to compression
	// and decompression (allocation, copies, driver calls).
	TohCompr   simtime.Duration
	TohDecompr simtime.Duration
	// MsgBytes is the original message size S.
	MsgBytes int
	// BandwidthGBps is the network bandwidth B between GPUs.
	BandwidthGBps float64
	// CR is the compression ratio.
	CR float64
}

// Baseline is equation (1): T = Ts + S/B.
func Baseline(p Params) simtime.Duration {
	return p.Ts + simtime.TransferTime(p.MsgBytes, p.BandwidthGBps)
}

// WithCompression is equation (2): the full cost including compression,
// decompression and their overheads, with the payload reduced by CR.
func WithCompression(p Params) simtime.Duration {
	cr := p.CR
	if cr < 1 {
		cr = 1
	}
	payload := int(float64(p.MsgBytes) / cr)
	return p.Ts + p.Tcompr + p.TohCompr +
		simtime.TransferTime(payload, p.BandwidthGBps) +
		p.Tdecompr + p.TohDecompr
}

// Ideal is equation (3): overheads assumed negligible.
func Ideal(p Params) simtime.Duration {
	q := p
	q.TohCompr, q.TohDecompr = 0, 0
	return WithCompression(q)
}

// Benefit reports the predicted latency reduction of compression
// (positive = compression wins).
func Benefit(p Params) simtime.Duration {
	return Baseline(p) - WithCompression(p)
}

// BreakEvenCR returns the minimum compression ratio at which compression
// matches the baseline, given fixed kernel times and overheads. Returns
// +Inf (as a very large ratio) if even infinite compression cannot win.
func BreakEvenCR(p Params) float64 {
	// Baseline = Ts + S/B.
	// Compressed = Ts + K + S/(CR*B), K = kernels + overheads.
	// Break-even: S/B - K = S/(CR*B)  =>  CR = (S/B) / (S/B - K).
	sb := simtime.TransferTime(p.MsgBytes, p.BandwidthGBps)
	k := p.Tcompr + p.TohCompr + p.Tdecompr + p.TohDecompr
	if sb <= k {
		return 1e18 // compression can never win at this size
	}
	return float64(sb) / float64(sb-k)
}

// MinMessageSize returns the smallest message size in bytes at which
// compression with the given per-message fixed overhead K and ratio CR
// beats the baseline: S/B * (1 - 1/CR) > K.
func MinMessageSize(k simtime.Duration, bandwidthGBps, cr float64) int {
	if cr <= 1 {
		return 1 << 62
	}
	frac := 1 - 1/cr
	// S > K * B / frac.
	s := float64(k) / 1e9 * bandwidthGBps * 1e9 / frac
	return int(s) + 1
}
