// Package simtime provides the virtual-time primitives used by the GPU
// cluster simulation. All latencies in the repository are expressed in
// simulated nanoseconds; nothing in the simulation reads the wall clock,
// which keeps every experiment deterministic and independent of the host
// machine's speed.
package simtime

import (
	"fmt"
	"sync"
)

// Time is an absolute instant on the simulation clock, in nanoseconds
// since the start of the run.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Microseconds reports d as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e3 }

// Milliseconds reports d as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e6 }

// String formats the duration with an adaptive unit, e.g. "12.5us".
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

// String formats the instant as a duration since time zero.
func (t Time) String() string { return Duration(t).String() }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MaxDuration returns the longer of a and b.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// FromSeconds converts floating-point seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * 1e9) }

// FromMicroseconds converts floating-point microseconds to a Duration.
func FromMicroseconds(us float64) Duration { return Duration(us * 1e3) }

// TransferTime returns the serialization time for n bytes over a link of
// bwGBps gigabytes per second (1 GB = 1e9 bytes). A non-positive bandwidth
// yields zero, which callers use for "infinitely fast" test fabrics.
func TransferTime(n int, bwGBps float64) Duration {
	if bwGBps <= 0 || n <= 0 {
		return 0
	}
	return Duration(float64(n) / (bwGBps * 1e9) * 1e9)
}

// ThroughputTime returns the execution time to process n bytes at a rate of
// gbps gigaBITS per second. Compressor throughputs in the paper's Table III
// are reported in Gb/s, so this helper keeps the unit conversion in one spot.
func ThroughputTime(n int, gbps float64) Duration {
	if gbps <= 0 || n <= 0 {
		return 0
	}
	bits := float64(n) * 8
	return Duration(bits / (gbps * 1e9) * 1e9)
}

// Clock is a monotonically advancing logical clock. It is the per-rank
// notion of "now". Clock is not safe for concurrent use; each rank owns one.
type Clock struct {
	now Time
}

// NewClock returns a clock starting at t.
func NewClock(t Time) *Clock { return &Clock{now: t} }

// Now reports the current instant.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative d is ignored so that cost
// models returning zero/negative durations cannot move time backwards.
func (c *Clock) Advance(d Duration) Time {
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// AdvanceTo moves the clock to t if t is in the future.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Timeline models a resource that serves work sequentially: a GPU stream,
// a DMA engine, or a network link. Reservations serialize; a reservation
// placed while the resource is busy starts when the resource frees up.
// Timeline is safe for concurrent use.
type Timeline struct {
	mu        sync.Mutex
	busyUntil Time
}

// NewTimeline returns a timeline that is free from time zero.
func NewTimeline() *Timeline { return &Timeline{} }

// Reserve books the resource for duration d at the earliest instant not
// before ready. It returns the actual start and end of the reservation.
func (tl *Timeline) Reserve(ready Time, d Duration) (start, end Time) {
	if d < 0 {
		d = 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	start = Max(ready, tl.busyUntil)
	end = start.Add(d)
	tl.busyUntil = end
	return start, end
}

// BusyUntil reports the instant at which the resource next becomes free.
func (tl *Timeline) BusyUntil() Time {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.busyUntil
}

// Reset makes the timeline free again from time zero. Used between
// benchmark repetitions.
func (tl *Timeline) Reset() {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.busyUntil = 0
}
