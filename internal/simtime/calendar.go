package simtime

import "sync"

// Calendar models a serially-shared resource (a network adapter) whose
// reservations are placed by simulated *ready time*, not by call order:
// Reserve books the earliest idle interval of the requested length at or
// after ready. This matters because rank goroutines reach the fabric in
// arbitrary wall-clock order — a transfer that is ready earlier in
// simulated time must not queue behind one that merely called first.
//
// Calendar is safe for concurrent use.
type Calendar struct {
	mu sync.Mutex
	// busy is the sorted, non-overlapping list of booked intervals.
	busy []interval
}

type interval struct{ start, end Time }

// NewCalendar returns an empty calendar.
func NewCalendar() *Calendar { return &Calendar{} }

// Reserve books d units of resource time at the earliest instant not
// before ready, returning the booked [start, end) interval.
func (c *Calendar) Reserve(ready Time, d Duration) (start, end Time) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	start = ready
	pos := len(c.busy)
	for i, iv := range c.busy {
		if iv.end <= start {
			continue
		}
		// iv is the first interval ending after our candidate start.
		if start.Add(d) <= iv.start {
			pos = i
			break
		}
		start = iv.end
	}
	end = start.Add(d)
	if d == 0 {
		// Zero-length reservations occupy nothing.
		return start, end
	}
	// Insert at pos keeping order, then merge neighbors that touch.
	c.busy = append(c.busy, interval{})
	copy(c.busy[pos+1:], c.busy[pos:])
	c.busy[pos] = interval{start, end}
	c.merge(pos)
	return start, end
}

func (c *Calendar) merge(pos int) {
	// Merge with predecessor.
	if pos > 0 && c.busy[pos-1].end >= c.busy[pos].start {
		c.busy[pos-1].end = maxT(c.busy[pos-1].end, c.busy[pos].end)
		c.busy = append(c.busy[:pos], c.busy[pos+1:]...)
		pos--
	}
	// Merge with successor(s).
	for pos+1 < len(c.busy) && c.busy[pos].end >= c.busy[pos+1].start {
		c.busy[pos].end = maxT(c.busy[pos].end, c.busy[pos+1].end)
		c.busy = append(c.busy[:pos+1], c.busy[pos+2:]...)
	}
}

func maxT(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// BusyUntil reports the end of the last booked interval.
func (c *Calendar) BusyUntil() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.busy) == 0 {
		return 0
	}
	return c.busy[len(c.busy)-1].end
}

// Reset clears all reservations.
func (c *Calendar) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = nil
}
