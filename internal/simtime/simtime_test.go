package simtime

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{-500, "-500ns"},
		{12_500, "12.50us"},
		{3_456_000, "3.456ms"},
		{2_500_000_000, "2.5000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String()=%q want %q", int64(c.d), got, c.want)
		}
	}
}

func TestConversions(t *testing.T) {
	if FromMicroseconds(2.5) != 2500 {
		t.Fatalf("FromMicroseconds: %d", FromMicroseconds(2.5))
	}
	if FromSeconds(0.001) != Millisecond {
		t.Fatalf("FromSeconds: %d", FromSeconds(0.001))
	}
	if d := Duration(1_500_000); d.Milliseconds() != 1.5 {
		t.Fatalf("Milliseconds: %v", d.Milliseconds())
	}
}

func TestTransferTime(t *testing.T) {
	// 1 GB at 1 GB/s = 1 s.
	if got := TransferTime(1e9, 1); got != Second {
		t.Fatalf("TransferTime: %v", got)
	}
	// 12.5 GB/s (IB EDR) moving 32 MB: ~2.68 ms.
	got := TransferTime(32<<20, 12.5)
	if got < 2_600_000 || got > 2_750_000 {
		t.Fatalf("EDR 32MB transfer: %v", got)
	}
	if TransferTime(0, 10) != 0 || TransferTime(100, 0) != 0 {
		t.Fatal("degenerate transfers should be zero")
	}
}

func TestThroughputTime(t *testing.T) {
	// 200 Gb/s over 32 MB = 32*2^20*8 / 200e9 s ~ 1.342 ms.
	got := ThroughputTime(32<<20, 200)
	if got < 1_300_000 || got > 1_400_000 {
		t.Fatalf("ThroughputTime: %v", got)
	}
}

func TestClock(t *testing.T) {
	c := NewClock(0)
	c.Advance(100)
	c.Advance(-50) // ignored
	if c.Now() != 100 {
		t.Fatalf("clock: %v", c.Now())
	}
	c.AdvanceTo(80) // ignored, in the past
	if c.Now() != 100 {
		t.Fatalf("clock after past AdvanceTo: %v", c.Now())
	}
	c.AdvanceTo(300)
	if c.Now() != 300 {
		t.Fatalf("clock after future AdvanceTo: %v", c.Now())
	}
}

func TestTimelineSerializes(t *testing.T) {
	tl := NewTimeline()
	s1, e1 := tl.Reserve(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first: %v %v", s1, e1)
	}
	// Second reservation while busy starts after the first.
	s2, e2 := tl.Reserve(50, 100)
	if s2 != 100 || e2 != 200 {
		t.Fatalf("second: %v %v", s2, e2)
	}
	// Reservation after idle period starts at ready time.
	s3, e3 := tl.Reserve(500, 10)
	if s3 != 500 || e3 != 510 {
		t.Fatalf("third: %v %v", s3, e3)
	}
	if tl.BusyUntil() != 510 {
		t.Fatalf("busyUntil: %v", tl.BusyUntil())
	}
	tl.Reset()
	if tl.BusyUntil() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTimelineNegativeDuration(t *testing.T) {
	tl := NewTimeline()
	s, e := tl.Reserve(10, -5)
	if s != 10 || e != 10 {
		t.Fatalf("negative duration should clamp to zero: %v %v", s, e)
	}
}

func TestTimelineConcurrentTotalTime(t *testing.T) {
	// N concurrent reservations of d each must serialize to exactly N*d.
	tl := NewTimeline()
	const n, d = 64, 10
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tl.Reserve(0, d)
		}()
	}
	wg.Wait()
	if got := tl.BusyUntil(); got != n*d {
		t.Fatalf("serialized end: got %v want %v", got, n*d)
	}
}

func TestMaxHelpers(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Fatal("Max broken")
	}
	if MaxDuration(3, 5) != 5 || MaxDuration(5, 3) != 5 {
		t.Fatal("MaxDuration broken")
	}
}

// Property: Reserve never overlaps and never starts before ready.
func TestReserveProperty(t *testing.T) {
	f := func(durations []uint16) bool {
		tl := NewTimeline()
		var lastEnd Time
		for i, du := range durations {
			ready := Time(i * 3)
			s, e := tl.Reserve(ready, Duration(du))
			if s < ready || s < lastEnd || e != s.Add(Duration(du)) {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
