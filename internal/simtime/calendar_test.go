package simtime

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestCalendarBasicSequence(t *testing.T) {
	c := NewCalendar()
	s1, e1 := c.Reserve(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first: [%v,%v]", s1, e1)
	}
	// Overlapping request queues after.
	s2, e2 := c.Reserve(50, 100)
	if s2 != 100 || e2 != 200 {
		t.Fatalf("second: [%v,%v]", s2, e2)
	}
	if c.BusyUntil() != 200 {
		t.Fatalf("busyUntil: %v", c.BusyUntil())
	}
}

func TestCalendarBackfillsGaps(t *testing.T) {
	c := NewCalendar()
	// A late-ready reservation books far in the future...
	c.Reserve(1000, 100)
	// ...and an early-ready one called LATER still gets the early slot.
	s, e := c.Reserve(0, 100)
	if s != 0 || e != 100 {
		t.Fatalf("early flow should backfill: [%v,%v]", s, e)
	}
	// A mid gap (100..1000) fits a 900 reservation exactly.
	s, e = c.Reserve(0, 900)
	if s != 100 || e != 1000 {
		t.Fatalf("gap fill: [%v,%v]", s, e)
	}
	// Now the calendar is solid 0..1100; next goes after.
	s, _ = c.Reserve(0, 10)
	if s != 1100 {
		t.Fatalf("after solid block: %v", s)
	}
}

func TestCalendarGapTooSmall(t *testing.T) {
	c := NewCalendar()
	c.Reserve(0, 100)   // [0,100)
	c.Reserve(150, 100) // [150,250)
	// A 60-unit request ready at 0 does not fit the 50-unit gap.
	s, e := c.Reserve(0, 60)
	if s != 250 || e != 310 {
		t.Fatalf("should skip small gap: [%v,%v]", s, e)
	}
	// A 50-unit request fits exactly.
	s, e = c.Reserve(0, 50)
	if s != 100 || e != 150 {
		t.Fatalf("exact gap fit: [%v,%v]", s, e)
	}
}

func TestCalendarZeroDuration(t *testing.T) {
	c := NewCalendar()
	c.Reserve(0, 100)
	s, e := c.Reserve(10, 0)
	if s != 100 || e != 100 {
		t.Fatalf("zero-length inside busy should start at gap: [%v,%v]", s, e)
	}
	if c.BusyUntil() != 100 {
		t.Fatal("zero-length must not occupy the calendar")
	}
	s, e = c.Reserve(5, -7)
	if s != e {
		t.Fatal("negative duration should clamp to zero")
	}
}

func TestCalendarReset(t *testing.T) {
	c := NewCalendar()
	c.Reserve(0, 500)
	c.Reset()
	if s, _ := c.Reserve(0, 10); s != 0 {
		t.Fatalf("after reset: %v", s)
	}
}

// Property: no two reservations overlap, each starts at or after its
// ready time, and the total booked time equals the sum of durations.
func TestCalendarNoOverlapProperty(t *testing.T) {
	type iv struct{ s, e Time }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCalendar()
		var got []iv
		var total Duration
		for i := 0; i < 100; i++ {
			ready := Time(rng.Intn(2000))
			d := Duration(1 + rng.Intn(50))
			s, e := c.Reserve(ready, d)
			if s < ready || e != s.Add(d) {
				return false
			}
			got = append(got, iv{s, e})
			total += d
		}
		sort.Slice(got, func(i, j int) bool { return got[i].s < got[j].s })
		for i := 1; i < len(got); i++ {
			if got[i].s < got[i-1].e {
				return false // overlap
			}
		}
		return true && total > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarConcurrentSafety(t *testing.T) {
	c := NewCalendar()
	var wg sync.WaitGroup
	const workers = 32
	results := make([][2]Time, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, e := c.Reserve(Time(i%4)*25, 10)
			results[i] = [2]Time{s, e}
		}(i)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i][0] < results[j][0] })
	for i := 1; i < workers; i++ {
		if results[i][0] < results[i-1][1] {
			t.Fatalf("concurrent reservations overlap: %v and %v", results[i-1], results[i])
		}
	}
	if c.BusyUntil() < Time(workers*10) {
		t.Fatalf("total booked time too small: %v", c.BusyUntil())
	}
}

func TestCalendarMergeAdjacent(t *testing.T) {
	c := NewCalendar()
	c.Reserve(0, 10)
	c.Reserve(10, 10) // touches predecessor
	c.Reserve(20, 10) // touches again
	// Internally merged: a request ready at 0 goes after 30.
	if s, _ := c.Reserve(0, 1); s != 30 {
		t.Fatalf("merge failed: %v", s)
	}
}
