package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCollectAndSort(t *testing.T) {
	c := New()
	c.Add("rank 1", "b", 200, 300)
	c.Add("rank 0", "a", 100, 150)
	c.Add("rank 0", "swapped", 500, 400) // reversed interval normalizes
	evs := c.Events()
	if len(evs) != 3 || c.Len() != 3 {
		t.Fatalf("events: %d", len(evs))
	}
	if evs[0].Name != "a" || evs[1].Name != "b" {
		t.Fatalf("not sorted by start: %+v", evs)
	}
	if evs[2].Start != 400 || evs[2].End != 500 {
		t.Fatalf("reversed interval not normalized: %+v", evs[2])
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.Add("x", "y", 0, 1) // must not panic
	if c.Len() != 0 {
		t.Fatal("nil collector should be empty")
	}
}

func TestChromeTraceExport(t *testing.T) {
	c := New()
	c.Add("rank 0", "Compression Kernel", 1000, 3000)
	c.Add("rank 1", "Decompression Kernel", 4000, 9000)
	c.Add("rank 0", "Comm & Other", 3000, 4000)
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var records []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 3 events + 2 thread-name metadata records.
	if len(records) != 5 {
		t.Fatalf("records: %d", len(records))
	}
	var metas, events int
	for _, r := range records {
		switch r["ph"] {
		case "M":
			metas++
		case "X":
			events++
			if r["ts"] == nil || r["dur"] == nil {
				t.Fatalf("event missing timing: %v", r)
			}
		}
	}
	if metas != 2 || events != 3 {
		t.Fatalf("metas=%d events=%d", metas, events)
	}
}
