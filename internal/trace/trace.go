// Package trace records simulated-time event intervals (compression
// kernels, protocol phases, network transfers) and exports them in the
// Chrome trace-event format, so a run of the simulator can be inspected
// on a timeline (chrome://tracing or https://ui.perfetto.dev).
package trace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"mpicomp/internal/simtime"
)

// Event is one interval on a track.
type Event struct {
	// Track groups events into a timeline row (e.g. "rank 3").
	Track string
	// Name labels the interval (e.g. "Compression Kernel").
	Name string
	// Start and End are simulated instants.
	Start, End simtime.Time
}

// Collector accumulates events; safe for concurrent use. The zero value
// is ready.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// Add records one interval. Nil collectors ignore the call, so callers
// can trace unconditionally.
func (c *Collector) Add(track, name string, start, end simtime.Time) {
	if c == nil {
		return
	}
	if end < start {
		start, end = end, start
	}
	c.mu.Lock()
	c.events = append(c.events, Event{Track: track, Name: name, Start: start, End: end})
	c.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	out := append([]Event(nil), c.events...)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len reports the number of recorded events.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Reset discards all events.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// chromeEvent is the trace-event JSON schema ("X" = complete event).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Cat  string  `json:"cat"`
}

type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteChromeTrace serializes the events as a Chrome trace JSON array.
// Each track becomes a thread with a metadata name record.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	events := c.Events()
	tracks := map[string]int{}
	var records []interface{}
	for _, e := range events {
		tid, ok := tracks[e.Track]
		if !ok {
			tid = len(tracks)
			tracks[e.Track] = tid
			records = append(records, chromeMeta{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]string{"name": e.Track},
			})
		}
		records = append(records, chromeEvent{
			Name: e.Name, Ph: "X", Cat: "sim",
			Ts:  float64(e.Start) / 1e3,
			Dur: float64(e.End-e.Start) / 1e3,
			Pid: 1, Tid: tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(records)
}
