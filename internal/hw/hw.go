// Package hw is the hardware catalog for the cluster simulation: GPU
// models, interconnect links, and the four clusters the paper evaluates on
// (TACC Longhorn, TACC Frontera "Liquid" subsystem, LLNL Lassen, OSU RI2),
// plus LLNL Sierra for the Figure 1 motivation and a hypothetical
// A100 + HDR system for what-if analyses.
//
// Every number here is either taken directly from the paper's text or from
// the public specification sheets the paper cites. Compressor kernel
// throughputs live in this package too because they are properties of the
// GPU generation (calibrated against the paper's Table III, measured on a
// V100).
package hw

import "mpicomp/internal/simtime"

// GPU describes one GPU model: raw capability plus the CUDA driver cost
// constants the paper measures (Sections III-B, IV-A, V-A).
type GPU struct {
	Name string
	// SMs is the number of streaming multiprocessors; MPC launches one
	// thread block per SM, so this controls the intra-kernel
	// synchronization overhead that MPC-OPT's partitioning attacks.
	SMs int
	// MemBWGBps is peak device-memory bandwidth in GB/s.
	MemBWGBps float64
	// FP32TFlops is peak single-precision throughput, used by the
	// AWP-ODC proxy to convert FLOP counts to compute time.
	FP32TFlops float64
	// MemoryGB is device memory capacity.
	MemoryGB int

	// Driver/runtime cost constants (simulated).
	KernelLaunch     simtime.Duration // one kernel launch
	CudaMallocBase   simtime.Duration // fixed part of cudaMalloc
	CudaMallocPerMB  simtime.Duration // size-dependent part of cudaMalloc
	CudaFree         simtime.Duration // cudaFree
	MemcpyD2HSmall   simtime.Duration // cudaMemcpy of a few bytes D2H (~20us, Sec. IV-A)
	GDRCopySmall     simtime.Duration // GDRCopy of a few bytes D2H (1-5us, Sec. IV-B)
	DevicePropsQuery simtime.Duration // cudaGetDeviceProperties (~1840us per call, Sec. V-A)
	AttributeQuery   simtime.Duration // cudaDeviceGetAttribute (~1us, Sec. V-B)
	StreamSync       simtime.Duration // cudaStreamSynchronize driver overhead
	// BlockSyncPerSM is MPC's intra-kernel busy-wait synchronization cost
	// per participating thread block (Sec. IV-B): kernels using more
	// blocks pay proportionally more.
	BlockSyncPerSM simtime.Duration

	// Compression kernel throughputs in Gb/s (bits), calibrated to
	// Table III for the V100 and scaled by relative SM count/clock for
	// other GPUs.
	MPCCompressGbps   float64
	MPCDecompressGbps float64
	ZFPCompressGbps   float64
	ZFPDecompressGbps float64
}

// Scale returns a copy of g with compute-dependent rates multiplied by f.
// Used to derive the RTX 5000 figures from the V100 calibration.
func (g GPU) scale(name string, sms int, f float64) GPU {
	s := g
	s.Name = name
	s.SMs = sms
	s.MemBWGBps *= f
	s.FP32TFlops *= f
	s.MPCCompressGbps *= f
	s.MPCDecompressGbps *= f
	s.ZFPCompressGbps *= f
	s.ZFPDecompressGbps *= f
	return s
}

// TeslaV100 is the NVIDIA Tesla V100 (Volta), the GPU on Longhorn, Lassen
// and RI2. Compressor throughputs are the geometric center of the paper's
// Table III columns.
func TeslaV100() GPU {
	return GPU{
		Name:       "NVIDIA Tesla V100",
		SMs:        80,
		MemBWGBps:  900,
		FP32TFlops: 14.0,
		MemoryGB:   16,

		KernelLaunch:     simtime.FromMicroseconds(6),
		CudaMallocBase:   simtime.FromMicroseconds(95),
		CudaMallocPerMB:  simtime.FromMicroseconds(9),
		CudaFree:         simtime.FromMicroseconds(60),
		MemcpyD2HSmall:   simtime.FromMicroseconds(20),
		GDRCopySmall:     simtime.FromMicroseconds(2),
		DevicePropsQuery: simtime.FromMicroseconds(1840),
		AttributeQuery:   simtime.FromMicroseconds(1),
		StreamSync:       simtime.FromMicroseconds(4),
		BlockSyncPerSM:   simtime.FromMicroseconds(0.55),

		MPCCompressGbps:   205,
		MPCDecompressGbps: 185,
		ZFPCompressGbps:   450,
		ZFPDecompressGbps: 720,
	}
}

// QuadroRTX5000 is the NVIDIA Quadro RTX 5000 (Turing) used on the Frontera
// Liquid submerged subsystem: 48 SMs, roughly 0.65x the V100's throughput.
func QuadroRTX5000() GPU {
	g := TeslaV100().scale("NVIDIA Quadro RTX 5000", 48, 0.65)
	g.MemoryGB = 16
	return g
}

// A100 is the NVIDIA Ampere GPU the paper's introduction motivates with
// (1,555 GB/s memory bandwidth): roughly 1.7x the V100's throughput.
// Included for what-if analyses of the widening GPU/network gap.
func A100() GPU {
	g := TeslaV100().scale("NVIDIA A100", 108, 1.7)
	g.MemoryGB = 40
	return g
}

// Link describes one interconnect: either an intra-node GPU link
// (NVLink/PCIe/X-Bus) or an inter-node network (InfiniBand).
type Link struct {
	Name string
	// BandwidthGBps is achievable one-way bandwidth in GB/s (1e9 bytes).
	BandwidthGBps float64
	// Latency is the base propagation + software latency per message.
	Latency simtime.Duration
	// PerMsgOverhead is the per-transfer fixed cost (posting a verbs work
	// request, DMA setup) in addition to Latency.
	PerMsgOverhead simtime.Duration
}

// TransferTime returns the time n bytes occupy this link (serialization
// only; latency is accounted once per message by the protocol layer).
func (l Link) TransferTime(n int) simtime.Duration {
	return simtime.TransferTime(n, l.BandwidthGBps)
}

// Interconnect catalog. Bandwidths follow Figure 1 and the cluster specs:
// 3-lane NVLink 75 GB/s, PCIe Gen3 x16 ~12 GB/s (effective), PCIe Gen4 x8
// 16 GB/s, IB EDR 12.5 GB/s, IB FDR 6.8 GB/s, IB HDR 25 GB/s.
func NVLink3Lane() Link {
	return Link{Name: "NVLink (3-lane)", BandwidthGBps: 75, Latency: simtime.FromMicroseconds(1.8), PerMsgOverhead: simtime.FromMicroseconds(0.4)}
}

func NVLink2Lane() Link {
	return Link{Name: "NVLink (2-lane)", BandwidthGBps: 50, Latency: simtime.FromMicroseconds(1.8), PerMsgOverhead: simtime.FromMicroseconds(0.4)}
}

func PCIeGen3x16() Link {
	return Link{Name: "PCIe Gen3 x16", BandwidthGBps: 12, Latency: simtime.FromMicroseconds(2.5), PerMsgOverhead: simtime.FromMicroseconds(0.6)}
}

func PCIeGen4x8() Link {
	return Link{Name: "PCIe Gen4 x8", BandwidthGBps: 16, Latency: simtime.FromMicroseconds(2.2), PerMsgOverhead: simtime.FromMicroseconds(0.6)}
}

func XBus() Link {
	return Link{Name: "X-Bus", BandwidthGBps: 64, Latency: simtime.FromMicroseconds(2.0), PerMsgOverhead: simtime.FromMicroseconds(0.5)}
}

func InfiniBandEDR() Link {
	return Link{Name: "InfiniBand EDR", BandwidthGBps: 12.5, Latency: simtime.FromMicroseconds(3.5), PerMsgOverhead: simtime.FromMicroseconds(1.0)}
}

func InfiniBandFDR() Link {
	return Link{Name: "InfiniBand FDR", BandwidthGBps: 6.8, Latency: simtime.FromMicroseconds(4.0), PerMsgOverhead: simtime.FromMicroseconds(1.0)}
}

func InfiniBandHDR() Link {
	return Link{Name: "InfiniBand HDR", BandwidthGBps: 25, Latency: simtime.FromMicroseconds(3.0), PerMsgOverhead: simtime.FromMicroseconds(1.0)}
}

// Cluster ties a GPU model and its links into a named system.
type Cluster struct {
	Name        string
	GPU         GPU
	GPUsPerNode int
	// IntraNode is the GPU-GPU link inside a node; InterNode the network.
	IntraNode Link
	InterNode Link
	// HostFlopsGFlops approximates one CPU core, for completeness.
	HostFlopsGFlops float64
}

// Longhorn: TACC IBM POWER9 + 4x V100 with NVLink, IB EDR.
func Longhorn() Cluster {
	return Cluster{
		Name:        "Longhorn",
		GPU:         TeslaV100(),
		GPUsPerNode: 4,
		IntraNode:   NVLink3Lane(),
		InterNode:   InfiniBandEDR(),
	}
}

// FronteraLiquid: TACC liquid-submerged subsystem, 4x Quadro RTX 5000 on
// PCIe, IB FDR.
func FronteraLiquid() Cluster {
	return Cluster{
		Name:        "Frontera Liquid",
		GPU:         QuadroRTX5000(),
		GPUsPerNode: 4,
		IntraNode:   PCIeGen3x16(),
		InterNode:   InfiniBandFDR(),
	}
}

// Lassen: LLNL POWER9 + 4x V100 (Sierra-class), NVLink intra-node, IB EDR.
func Lassen() Cluster {
	return Cluster{
		Name:        "Lassen",
		GPU:         TeslaV100(),
		GPUsPerNode: 4,
		IntraNode:   NVLink3Lane(),
		InterNode:   InfiniBandEDR(),
	}
}

// RI2: OSU NOWLAB cluster, 1x V100 per node on PCIe, IB EDR.
func RI2() Cluster {
	return Cluster{
		Name:        "RI2",
		GPU:         TeslaV100(),
		GPUsPerNode: 1,
		IntraNode:   PCIeGen3x16(),
		InterNode:   InfiniBandEDR(),
	}
}

// Sierra: the Figure 1 system (same node architecture as Lassen). Included
// for the Fig. 1 disparity report.
func Sierra() Cluster {
	return Cluster{
		Name:        "Sierra",
		GPU:         TeslaV100(),
		GPUsPerNode: 4,
		IntraNode:   NVLink3Lane(),
		InterNode:   InfiniBandEDR(),
	}
}

// AmpereHDR is a hypothetical A100 + IB HDR cluster for the introduction's
// what-if question: faster GPUs raise compression throughput more than
// HDR raises network bandwidth, widening the regime where on-the-fly
// compression wins.
func AmpereHDR() Cluster {
	return Cluster{
		Name:        "Ampere-HDR",
		GPU:         A100(),
		GPUsPerNode: 4,
		IntraNode:   NVLink3Lane(),
		InterNode:   InfiniBandHDR(),
	}
}

// Clusters returns the full catalog keyed by lower-case name.
func Clusters() map[string]Cluster {
	return map[string]Cluster{
		"longhorn": Longhorn(),
		"frontera": FronteraLiquid(),
		"lassen":   Lassen(),
		"ri2":      RI2(),
		"sierra":   Sierra(),
		"ampere":   AmpereHDR(),
	}
}
