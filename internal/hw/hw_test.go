package hw

import (
	"testing"

	"mpicomp/internal/simtime"
)

func TestCatalogComplete(t *testing.T) {
	cs := Clusters()
	for _, name := range []string{"longhorn", "frontera", "lassen", "ri2", "sierra"} {
		c, ok := cs[name]
		if !ok {
			t.Fatalf("missing cluster %s", name)
		}
		if c.GPU.SMs <= 0 || c.GPU.MPCCompressGbps <= 0 || c.GPUsPerNode <= 0 {
			t.Fatalf("%s: incomplete spec %+v", name, c)
		}
	}
}

func TestFigure1Disparity(t *testing.T) {
	// Figure 1: intra-node NVLink (75 GB/s) vastly outpaces the
	// inter-node IB EDR (12.5 GB/s) on Sierra-class nodes.
	s := Sierra()
	if s.IntraNode.BandwidthGBps != 75 {
		t.Fatalf("NVLink bandwidth: %v", s.IntraNode.BandwidthGBps)
	}
	if s.InterNode.BandwidthGBps != 12.5 {
		t.Fatalf("EDR bandwidth: %v", s.InterNode.BandwidthGBps)
	}
	if ratio := s.IntraNode.BandwidthGBps / s.InterNode.BandwidthGBps; ratio < 5 {
		t.Fatalf("disparity ratio %f too small", ratio)
	}
}

func TestV100CalibratedToPaper(t *testing.T) {
	g := TeslaV100()
	// Driver constants quoted in the paper's text.
	if g.MemcpyD2HSmall != simtime.FromMicroseconds(20) {
		t.Errorf("cudaMemcpy small: %v", g.MemcpyD2HSmall)
	}
	if g.GDRCopySmall < simtime.FromMicroseconds(1) || g.GDRCopySmall > simtime.FromMicroseconds(5) {
		t.Errorf("GDRCopy should be 1-5us: %v", g.GDRCopySmall)
	}
	if g.DevicePropsQuery != simtime.FromMicroseconds(1840) {
		t.Errorf("cudaGetDeviceProperties: %v", g.DevicePropsQuery)
	}
	if g.AttributeQuery != simtime.FromMicroseconds(1) {
		t.Errorf("cudaDeviceGetAttribute: %v", g.AttributeQuery)
	}
	// Table III throughput calibration: MPC ~170-212 Gb/s, ZFP 280-822.
	if g.MPCCompressGbps < 168 || g.MPCCompressGbps > 212 {
		t.Errorf("MPC compress throughput out of Table III range: %v", g.MPCCompressGbps)
	}
	if g.ZFPCompressGbps < 280 || g.ZFPCompressGbps > 586 {
		t.Errorf("ZFP compress throughput out of Table III range: %v", g.ZFPCompressGbps)
	}
	if g.ZFPDecompressGbps <= g.ZFPCompressGbps {
		t.Error("ZFP decompression should outpace compression (Table III)")
	}
}

func TestRTX5000SlowerThanV100(t *testing.T) {
	v, r := TeslaV100(), QuadroRTX5000()
	if r.SMs >= v.SMs || r.MPCCompressGbps >= v.MPCCompressGbps || r.FP32TFlops >= v.FP32TFlops {
		t.Fatalf("RTX 5000 should be the smaller GPU: %+v", r)
	}
}

func TestLinkTransferTime(t *testing.T) {
	edr := InfiniBandEDR()
	// 12.5 GB/s moving 1 MB ≈ 83.9us.
	got := edr.TransferTime(1 << 20)
	if got < simtime.FromMicroseconds(80) || got > simtime.FromMicroseconds(90) {
		t.Fatalf("EDR 1MB: %v", got)
	}
	if edr.TransferTime(0) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
}

func TestClusterInterconnects(t *testing.T) {
	// Longhorn/Lassen: NVLink + EDR. Frontera Liquid: PCIe + FDR.
	if Longhorn().IntraNode.Name != "NVLink (3-lane)" || Longhorn().InterNode.Name != "InfiniBand EDR" {
		t.Error("Longhorn links wrong")
	}
	if FronteraLiquid().IntraNode.Name != "PCIe Gen3 x16" || FronteraLiquid().InterNode.Name != "InfiniBand FDR" {
		t.Error("Frontera Liquid links wrong")
	}
	if FronteraLiquid().GPU.Name != "NVIDIA Quadro RTX 5000" {
		t.Error("Frontera Liquid GPU wrong")
	}
	if RI2().GPUsPerNode != 1 {
		t.Error("RI2 has 1 GPU per node")
	}
}

func TestAmpereWhatIf(t *testing.T) {
	a := AmpereHDR()
	if a.GPU.Name != "NVIDIA A100" || a.InterNode.Name != "InfiniBand HDR" {
		t.Fatalf("Ampere cluster misconfigured: %+v", a)
	}
	v := TeslaV100()
	// The introduction's point: GPU capability (and with it, compression
	// throughput) grows faster than the network. A100/HDR widens the
	// compute:network ratio over V100/EDR.
	v100Ratio := v.MPCCompressGbps / (InfiniBandEDR().BandwidthGBps * 8)
	a100Ratio := a.GPU.MPCCompressGbps / (a.InterNode.BandwidthGBps * 8)
	if a100Ratio <= v100Ratio*0.8 {
		t.Fatalf("A100/HDR should keep compression viable: %0.2f vs %0.2f", a100Ratio, v100Ratio)
	}
	if _, ok := Clusters()["ampere"]; !ok {
		t.Fatal("ampere missing from catalog")
	}
}
