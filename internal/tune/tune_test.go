package tune

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"mpicomp/internal/hw"
	"mpicomp/internal/mpi"
	"mpicomp/internal/simtime"
)

// flatPoint is an 8-rank flat world point (ppn=1) at the given size.
func flatPoint(bytes int, op uint64) mpi.TunePoint {
	return mpi.TunePoint{Bytes: bytes, Ranks: 8, Nodes: 8, PPN: 1, Op: op}
}

func TestSizeClass(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := sizeClass(c.n); got != c.want {
			t.Errorf("sizeClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestEstimateSample(t *testing.T) {
	// Constant words: every XOR delta is zero, so each word after the
	// first costs one tag byte — ratio approaches 4x.
	smooth := make([]byte, 4096)
	for i := 0; i < len(smooth); i += 4 {
		binary.LittleEndian.PutUint32(smooth[i:], 0x3f800000)
	}
	orig, est := estimateSample(smooth)
	if orig != 4096 {
		t.Fatalf("orig = %d, want 4096", orig)
	}
	if ratio := orig * 1000 / est; ratio < 3000 {
		t.Errorf("smooth ratio = %d milli, want >= 3000", ratio)
	}

	// Words that flip their high byte every step leave no leading
	// zeros to elide: ratio stays at (or below) 1:1 before the floor.
	noisy := make([]byte, 4096)
	for i := 0; i < len(noisy); i += 4 {
		binary.LittleEndian.PutUint32(noisy[i:], uint32(i)*0x9e3779b9)
	}
	orig, est = estimateSample(noisy)
	if ratio := orig * 1000 / est; ratio > 1100 {
		t.Errorf("noisy ratio = %d milli, want <= 1100", ratio)
	}

	// Degenerate inputs never divide by zero.
	for _, n := range []int{0, 1, 3, 4, 7} {
		o, e := estimateSample(make([]byte, n))
		if o < 0 || e < 0 || (o > 0 && e == 0) {
			t.Errorf("estimateSample(len %d) = (%d, %d)", n, o, e)
		}
	}
}

// runEpoch plays one epoch against the tuner the way ombrun does:
// every rank probes if asked, picks, observes the latency table's
// value for the picked algorithm (with a per-rank sub-quantum wobble
// to mimic calendar swaps), then the world advances.
func runEpoch(tn *Tuner, p mpi.TunePoint, lat map[mpi.AllreduceAlgo]int64) mpi.AllreduceAlgo {
	if tn.NeedProbe(p) {
		sample := make([]byte, 1024)
		for i := 0; i < len(sample); i += 4 {
			binary.LittleEndian.PutUint32(sample[i:], 0x3f800000+uint32(i/64))
		}
		for rank := 0; rank < p.Ranks; rank++ {
			tn.ObserveProbeSample(p, sample)
		}
	}
	algo := tn.PickAllreduce(p)
	for rank := 0; rank < p.Ranks; rank++ {
		tn.ObserveAllreduce(p, algo, simtime.Duration(lat[algo]+int64(rank%3)*17))
	}
	tn.Advance()
	return algo
}

func TestExploreThenExploit(t *testing.T) {
	tn := NewTuner(Options{Seed: 0, Cluster: hw.Longhorn()})
	p := flatPoint(1<<20, 1)
	lat := map[mpi.AllreduceAlgo]int64{
		mpi.AllreduceRing:              3_000_000,
		mpi.AllreduceRecursiveDoubling: 1_000_000,
		mpi.AllreduceRabenseifner:      2_000_000,
	}
	seen := make(map[mpi.AllreduceAlgo]bool)
	for epoch := 0; epoch < 3; epoch++ {
		p.Op = uint64(epoch)
		seen[runEpoch(tn, p, lat)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("exploration covered %d candidates, want all 3", len(seen))
	}
	for epoch := 3; epoch < 8; epoch++ {
		p.Op = uint64(epoch)
		if got := runEpoch(tn, p, lat); got != mpi.AllreduceRecursiveDoubling {
			t.Fatalf("epoch %d picked %s, want rd (the measured winner)", epoch, got)
		}
	}
}

func TestAdvanceFoldOrderInvariance(t *testing.T) {
	p := flatPoint(256<<10, 7)
	build := func(reverse bool) []byte {
		tn := NewTuner(Options{Seed: 3, Cluster: hw.Longhorn()})
		var obs []func()
		for rank := 0; rank < p.Ranks; rank++ {
			r := rank
			obs = append(obs,
				func() { tn.ObserveProbeSample(p, make([]byte, 512)) },
				func() {
					tn.ObserveAllreduce(p, mpi.AllreduceRing, simtime.Duration(900_000+int64(r)*31))
				},
				func() {
					tn.ObserveAllreduce(p, mpi.AllreduceRabenseifner, simtime.Duration(700_000+int64(r)*13))
				},
			)
		}
		if reverse {
			for i, j := 0, len(obs)-1; i < j; i, j = i+1, j-1 {
				obs[i], obs[j] = obs[j], obs[i]
			}
		}
		for _, f := range obs {
			f()
		}
		tn.NoteCounters(Counters{Compressions: 40, PoolFallbacks: 2})
		tn.Advance()
		out, err := tn.Snapshot().Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return out
	}
	fwd, rev := build(false), build(true)
	if !bytes.Equal(fwd, rev) {
		t.Fatalf("snapshot depends on observation arrival order:\n%s\nvs\n%s", fwd, rev)
	}
}

func TestQuantizeAbsorbsSubQuantumJitter(t *testing.T) {
	p := flatPoint(128<<10, 2)
	build := func(extra int64) []byte {
		tn := NewTuner(Options{Seed: 0, Cluster: hw.Longhorn()})
		for rank := 0; rank < p.Ranks; rank++ {
			tn.ObserveAllreduce(p, mpi.AllreduceRing, simtime.Duration(500_000+extra))
		}
		tn.Advance()
		out, err := tn.Snapshot().Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return out
	}
	// 500000 and 500500 share a latQuantum bucket (499712..500735).
	if !bytes.Equal(build(0), build(500)) {
		t.Fatal("sub-quantum latency jitter leaked into the committed snapshot")
	}
}

func TestWarmStartSkipsProbeAndExploration(t *testing.T) {
	tn := NewTuner(Options{Seed: 0, Cluster: hw.Longhorn()})
	p := flatPoint(1<<20, 0)
	lat := map[mpi.AllreduceAlgo]int64{
		mpi.AllreduceRing:              3_000_000,
		mpi.AllreduceRecursiveDoubling: 1_000_000,
		mpi.AllreduceRabenseifner:      2_000_000,
	}
	for epoch := 0; epoch < 5; epoch++ {
		p.Op = uint64(epoch)
		runEpoch(tn, p, lat)
	}
	data, err := tn.Snapshot().Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	tab, err := ParseTable(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	warm := NewTuner(Options{Seed: 0, Cluster: hw.Longhorn(), Table: tab})
	if warm.NeedProbe(p) {
		t.Fatal("warm-started tuner re-probes a loaded key")
	}
	// All candidates carry samples, so the very first pick exploits.
	if got := warm.PickAllreduce(p); got != mpi.AllreduceRecursiveDoubling {
		t.Fatalf("warm pick = %s, want rd", got)
	}
	// An unseen key still probes and explores.
	q := mpi.TunePoint{Bytes: 4 << 20, Ranks: 16, Nodes: 16, PPN: 1, Op: 9}
	if !warm.NeedProbe(q) {
		t.Fatal("warm-started tuner skipped probing an unseen key")
	}
}

func TestSeedRotatesExploration(t *testing.T) {
	p := flatPoint(512<<10, 0)
	picks := make(map[mpi.AllreduceAlgo]bool)
	for seed := int64(0); seed < 3; seed++ {
		tn := NewTuner(Options{Seed: seed, Cluster: hw.Longhorn()})
		picks[tn.PickAllreduce(p)] = true
	}
	if len(picks) < 2 {
		t.Fatalf("seeds 0..2 all explored the same first candidate; want rotation")
	}
	// And a fixed seed is exactly reproducible.
	a := NewTuner(Options{Seed: 42, Cluster: hw.Longhorn()})
	b := NewTuner(Options{Seed: 42, Cluster: hw.Longhorn()})
	if x, y := a.PickAllreduce(p), b.PickAllreduce(p); x != y {
		t.Fatalf("same seed diverged: %s vs %s", x, y)
	}
}

func TestTwoLevelOnlyOnHierarchical(t *testing.T) {
	flat := flatPoint(1<<20, 0)
	hier := mpi.TunePoint{Bytes: 1 << 20, Ranks: 8, Nodes: 4, PPN: 2, Op: 0}
	for _, a := range candidatesFor(flat) {
		if a == mpi.AllreduceTwoLevel {
			t.Fatal("two-level offered on a flat topology")
		}
	}
	found := false
	for _, a := range candidatesFor(hier) {
		if a == mpi.AllreduceTwoLevel {
			found = true
		}
	}
	if !found {
		t.Fatal("two-level missing from the hierarchical candidate set")
	}
}

func TestCountersDiscountEffectiveRatio(t *testing.T) {
	p := flatPoint(4<<20, 0)
	lat := map[mpi.AllreduceAlgo]int64{
		mpi.AllreduceRing:              1_000_000,
		mpi.AllreduceRecursiveDoubling: 1_000_000,
		mpi.AllreduceRabenseifner:      1_000_000,
	}
	mk := func(c Counters) *Tuner {
		tn := NewTuner(Options{Seed: 0, Cluster: hw.Longhorn()})
		runEpoch(tn, p, lat) // installs a measured ratio > 1
		tn.NoteCounters(c)
		tn.Advance()
		return tn
	}
	healthy := mk(Counters{Compressions: 100})
	degraded := mk(Counters{Compressions: 10, PoolFallbacks: 90})
	h := healthy.PredictNanos(mpi.AllreduceRing, p)
	d := degraded.PredictNanos(mpi.AllreduceRing, p)
	if d <= h {
		t.Fatalf("fallback-heavy counters should raise predicted wire cost: healthy=%d degraded=%d", h, d)
	}
}

func TestRecommendChunkScalesWithMessage(t *testing.T) {
	tn := NewTuner(Options{Seed: 0, Cluster: hw.Longhorn()})
	small := tn.RecommendChunk(flatPoint(256<<10, 0))
	big := tn.RecommendChunk(mpi.TunePoint{Bytes: 64 << 20, Ranks: 2, Nodes: 2, PPN: 1})
	if small != chunkCandidates[0] {
		t.Errorf("small-message chunk = %d, want %d (alpha-bound)", small, chunkCandidates[0])
	}
	if big <= small {
		t.Errorf("large-message chunk %d not above small-message chunk %d", big, small)
	}
}

func TestStatsLineDeterministic(t *testing.T) {
	tn := NewTuner(Options{Seed: 0, Cluster: hw.Longhorn()})
	p := flatPoint(1<<20, 0)
	lat := map[mpi.AllreduceAlgo]int64{
		mpi.AllreduceRing:              3_000_000,
		mpi.AllreduceRecursiveDoubling: 1_000_000,
		mpi.AllreduceRabenseifner:      2_000_000,
	}
	for epoch := 0; epoch < 4; epoch++ {
		p.Op = uint64(epoch)
		runEpoch(tn, p, lat)
	}
	line := tn.StatsLine()
	want := "# tune: epochs=4 probes=8 entries=1 picks={ring:1 rd:2 rab:1} fallback_milli=0"
	if line != want {
		t.Fatalf("stats line:\n got %q\nwant %q", line, want)
	}
}

func TestParseTableRejectsMalformed(t *testing.T) {
	valid := func() []byte {
		tn := NewTuner(Options{Seed: 1, Cluster: hw.Longhorn()})
		p := flatPoint(1<<20, 0)
		runEpoch(tn, p, map[mpi.AllreduceAlgo]int64{
			mpi.AllreduceRing: 1, mpi.AllreduceRecursiveDoubling: 1, mpi.AllreduceRabenseifner: 1,
		})
		out, err := tn.Snapshot().Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return out
	}()
	if _, err := ParseTable(valid); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}

	cases := map[string][]byte{
		"not json":       []byte("not json"),
		"wrong version":  []byte(`{"version": 2, "seed": 0, "entries": []}`),
		"unknown field":  []byte(`{"version": 1, "seed": 0, "entries": [], "bogus": 1}`),
		"trailing data":  append(append([]byte{}, valid...), []byte("{}")...),
		"bad topo":       []byte(`{"version":1,"seed":0,"entries":[{"size_class":10,"ranks":4,"topo":"mesh","ratio_milli":1000,"chunk_bytes":0,"codec_hint":"","scores":[]}]}`),
		"bad algo":       []byte(`{"version":1,"seed":0,"entries":[{"size_class":10,"ranks":4,"topo":"flat","ratio_milli":1000,"chunk_bytes":0,"codec_hint":"","scores":[{"algo":"warp","ema_nanos":1,"samples":1}]}]}`),
		"negative ranks": []byte(`{"version":1,"seed":0,"entries":[{"size_class":10,"ranks":-1,"topo":"flat","ratio_milli":1000,"chunk_bytes":0,"codec_hint":"","scores":[]}]}`),
		"duplicate key":  []byte(`{"version":1,"seed":0,"entries":[{"size_class":10,"ranks":4,"topo":"flat","ratio_milli":1000,"chunk_bytes":0,"codec_hint":"","scores":[]},{"size_class":10,"ranks":4,"topo":"flat","ratio_milli":1000,"chunk_bytes":0,"codec_hint":"","scores":[]}]}`),
	}
	for name, data := range cases {
		if _, err := ParseTable(data); !errors.Is(err, ErrBadTable) {
			t.Errorf("%s: err = %v, want ErrBadTable", name, err)
		}
	}
}

func TestMarshalFixpoint(t *testing.T) {
	tn := NewTuner(Options{Seed: 9, Cluster: hw.Longhorn()})
	lat := map[mpi.AllreduceAlgo]int64{
		mpi.AllreduceRing: 2_000_000, mpi.AllreduceRecursiveDoubling: 1_000_000,
		mpi.AllreduceRabenseifner: 3_000_000, mpi.AllreduceTwoLevel: 1_500_000,
	}
	points := []mpi.TunePoint{
		flatPoint(64<<10, 0),
		flatPoint(4<<20, 1),
		{Bytes: 1 << 20, Ranks: 6, Nodes: 3, PPN: 2, Op: 2},
	}
	for epoch := 0; epoch < 4; epoch++ {
		for i := range points {
			points[i].Op = uint64(epoch*len(points) + i)
			runEpoch(tn, points[i], lat)
		}
	}
	out1, err := tn.Snapshot().Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	tab, err := ParseTable(out1)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out2, err := tab.Marshal()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("marshal is not a fixpoint:\n%s\nvs\n%s", out1, out2)
	}
}
