// Versioned on-disk tuning tables. A Table is the canonical JSON form
// of a Tuner's committed snapshot: Marshal always emits entries sorted
// by key and scores sorted by algorithm name, so marshaling is a
// fixpoint (ParseTable(Marshal(t)) marshals back byte-identically) and
// tables diff cleanly under version control. ParseTable is strict —
// unknown fields, unknown algorithm or topology names, duplicate keys,
// and out-of-range numbers are all errors, never panics — so a table
// that loads is a table the Tuner can warm-start from unconditionally.
package tune

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"mpicomp/internal/mpi"
	"mpicomp/internal/netsim"
)

// TableVersion is the current tuning-table schema version. ParseTable
// rejects any other value: schema evolution means bumping this and
// teaching ParseTable the migration, not silently reinterpreting
// fields.
const TableVersion = 1

// ErrBadTable is the sentinel all table parse/validate failures wrap.
var ErrBadTable = errors.New("tune: bad table")

// Table is the persisted tuning state.
type Table struct {
	Version int     `json:"version"`
	Seed    int64   `json:"seed"`
	Entries []Entry `json:"entries"`
}

// Entry is one key's committed state.
type Entry struct {
	SizeClass  int     `json:"size_class"`
	Ranks      int     `json:"ranks"`
	Topo       string  `json:"topo"`
	RatioMilli int64   `json:"ratio_milli"`
	ChunkBytes int     `json:"chunk_bytes"`
	CodecHint  string  `json:"codec_hint"`
	Scores     []Score `json:"scores"`
}

// Score is one candidate's standing within an entry.
type Score struct {
	Algo     string `json:"algo"`
	EmaNanos int64  `json:"ema_nanos"`
	Samples  int64  `json:"samples"`
}

// algoNames maps table algorithm names back to their enum values; it
// is derived from String() so the two can never drift.
var algoNames = func() map[string]mpi.AllreduceAlgo {
	m := make(map[string]mpi.AllreduceAlgo)
	for _, a := range []mpi.AllreduceAlgo{
		mpi.AllreduceReduceBcast, mpi.AllreduceRing, mpi.AllreduceRingBlocking,
		mpi.AllreduceRecursiveDoubling, mpi.AllreduceRabenseifner, mpi.AllreduceTwoLevel,
	} {
		m[a.String()] = a
	}
	return m
}()

func parseAlgoName(s string) (mpi.AllreduceAlgo, error) {
	a, ok := algoNames[s]
	if !ok {
		return 0, fmt.Errorf("%w: unknown algorithm %q", ErrBadTable, s)
	}
	return a, nil
}

func validTopo(s string) bool {
	switch netsim.TopoClass(s) {
	case netsim.TopoSingleNode, netsim.TopoFlat, netsim.TopoHierarchical:
		return true
	}
	return false
}

func validCodecHint(s string) bool {
	switch s {
	case "", "none", "mpc", "zfp":
		return true
	}
	return false
}

// ParseTable decodes, validates, and canonicalizes a table. The
// returned table always satisfies Validate and marshals to the
// canonical byte form.
func ParseTable(data []byte) (*Table, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t Table
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTable, err)
	}
	// A second document after the first is garbage, not a table.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after table document", ErrBadTable)
	}
	t.canonicalize()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// canonicalize sorts entries by key and scores by algorithm name so
// Marshal output is unique for a given logical table.
func (t *Table) canonicalize() {
	for i := range t.Entries {
		e := &t.Entries[i]
		sort.Slice(e.Scores, func(a, b int) bool { return e.Scores[a].Algo < e.Scores[b].Algo })
	}
	sort.Slice(t.Entries, func(a, b int) bool {
		x, y := &t.Entries[a], &t.Entries[b]
		if x.SizeClass != y.SizeClass {
			return x.SizeClass < y.SizeClass
		}
		if x.Ranks != y.Ranks {
			return x.Ranks < y.Ranks
		}
		return x.Topo < y.Topo
	})
}

// Validate checks the table is loadable: known version, known names,
// in-range numbers, unique keys and score algorithms. All failures
// wrap ErrBadTable.
func (t *Table) Validate() error {
	if t.Version != TableVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadTable, t.Version, TableVersion)
	}
	seenKey := make(map[Key]bool)
	for i := range t.Entries {
		e := &t.Entries[i]
		if e.SizeClass < 0 || e.SizeClass > 62 {
			return fmt.Errorf("%w: entry %d: size_class %d out of range", ErrBadTable, i, e.SizeClass)
		}
		if e.Ranks < 1 || e.Ranks > 1<<20 {
			return fmt.Errorf("%w: entry %d: ranks %d out of range", ErrBadTable, i, e.Ranks)
		}
		if !validTopo(e.Topo) {
			return fmt.Errorf("%w: entry %d: unknown topo %q", ErrBadTable, i, e.Topo)
		}
		if e.RatioMilli < 0 || e.RatioMilli > 1<<20 {
			return fmt.Errorf("%w: entry %d: ratio_milli %d out of range", ErrBadTable, i, e.RatioMilli)
		}
		if e.ChunkBytes < 0 || e.ChunkBytes > 1<<30 {
			return fmt.Errorf("%w: entry %d: chunk_bytes %d out of range", ErrBadTable, i, e.ChunkBytes)
		}
		if !validCodecHint(e.CodecHint) {
			return fmt.Errorf("%w: entry %d: unknown codec hint %q", ErrBadTable, i, e.CodecHint)
		}
		k := Key{SizeClass: e.SizeClass, Ranks: e.Ranks, Topo: netsim.TopoClass(e.Topo)}
		if seenKey[k] {
			return fmt.Errorf("%w: duplicate entry for size_class=%d ranks=%d topo=%s", ErrBadTable, e.SizeClass, e.Ranks, e.Topo)
		}
		seenKey[k] = true
		seenAlgo := make(map[string]bool)
		for j := range e.Scores {
			s := &e.Scores[j]
			if _, err := parseAlgoName(s.Algo); err != nil {
				return fmt.Errorf("%w: entry %d score %d: unknown algorithm %q", ErrBadTable, i, j, s.Algo)
			}
			if seenAlgo[s.Algo] {
				return fmt.Errorf("%w: entry %d: duplicate score for %q", ErrBadTable, i, s.Algo)
			}
			seenAlgo[s.Algo] = true
			if s.EmaNanos < 0 {
				return fmt.Errorf("%w: entry %d score %d: negative ema_nanos", ErrBadTable, i, j)
			}
			if s.Samples < 0 {
				return fmt.Errorf("%w: entry %d score %d: negative samples", ErrBadTable, i, j)
			}
		}
	}
	return nil
}

// Marshal renders the canonical JSON byte form (sorted, indented,
// trailing newline). The table must already be canonical — every table
// produced by ParseTable or Tuner.Snapshot is.
func (t *Table) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTable, err)
	}
	return append(out, '\n'), nil
}
