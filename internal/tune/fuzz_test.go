package tune

import (
	"bytes"
	"testing"
)

// FuzzTableJSON drives ParseTable with arbitrary bytes: malformed
// input must be rejected with an error (never a panic), and any input
// that parses must re-encode to a canonical fixpoint — Marshal of the
// parsed table parses again and marshals byte-identically.
func FuzzTableJSON(f *testing.F) {
	f.Add([]byte(`{"version":1,"seed":0,"entries":[]}`))
	f.Add([]byte(`{"version":1,"seed":42,"entries":[{"size_class":20,"ranks":8,"topo":"flat","ratio_milli":1430,"chunk_bytes":131072,"codec_hint":"mpc","scores":[{"algo":"rd","ema_nanos":1048576,"samples":3},{"algo":"ring","ema_nanos":2097152,"samples":1}]}]}`))
	f.Add([]byte(`{"version":1,"seed":0,"entries":[{"size_class":12,"ranks":6,"topo":"hierarchical","ratio_milli":1000,"chunk_bytes":65536,"codec_hint":"none","scores":[{"algo":"two-level","ema_nanos":4096,"samples":9}]}]}`))
	f.Add([]byte(`{"version":2,"seed":0,"entries":[]}`))
	f.Add([]byte(`{"version":1,"seed":0,"entries":[{"size_class":-3,"ranks":0,"topo":"mesh","ratio_milli":-1,"chunk_bytes":-1,"codec_hint":"lz4","scores":null}]}`))
	f.Add([]byte(`not a table`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("{\"version\":1,\"seed\":0,\"entries\":[]}\n{\"version\":1}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := ParseTable(data)
		if err != nil {
			if tab != nil {
				t.Fatal("ParseTable returned a table alongside an error")
			}
			return
		}
		out1, err := tab.Marshal()
		if err != nil {
			t.Fatalf("parsed table failed to marshal: %v", err)
		}
		tab2, err := ParseTable(out1)
		if err != nil {
			t.Fatalf("canonical output failed to re-parse: %v\n%s", err, out1)
		}
		out2, err := tab2.Marshal()
		if err != nil {
			t.Fatalf("re-parsed table failed to marshal: %v", err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("marshal not a fixpoint:\n%s\nvs\n%s", out1, out2)
		}
	})
}
