// Package tune implements a deterministic online autotuner for the
// collective algorithm space mpi.AllreduceSum dispatches over. One
// Tuner instance is shared by every rank in a world (it is the
// concrete mpi.CollTuner); picks are pure functions of a committed
// epoch snapshot, and everything learned during an epoch — latency
// observations, compressibility probe samples, engine counters — sits
// in a pending set that folds into the snapshot only at Advance, in
// sorted order, so the tuner's state after N epochs is independent of
// goroutine scheduling, codec worker count, and the order ranks happen
// to report in.
//
// The selector keys on (size class, rank count, topology class) and
// scores each candidate schedule with an EMA of measured virtual-time
// latency, seeded by an alpha-beta cost model whose effective
// bandwidth term is discounted by the measured compressibility (a
// cheap first-touch probe: XOR-delta leading-zero-byte coding over a
// bounded sample, the same value locality MPC exploits) and by the
// fraction of traffic that actually compressed (pool fallbacks and
// breaker bypasses shrink the effective ratio toward 1). Until every
// candidate for a key has at least one folded sample the tuner
// explores: unsampled candidates are tried in ascending predicted
// cost, with the configured seed rotating the starting point, so
// different seeds walk the space in different orders while any fixed
// seed is exactly reproducible. Warm-started keys (loaded from a
// persisted Table) arrive with samples and a ratio, so they neither
// re-probe nor re-explore.
package tune

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"mpicomp/internal/hw"
	"mpicomp/internal/mpi"
	"mpicomp/internal/netsim"
	"mpicomp/internal/simtime"
)

// autoCandidates is the schedule space the tuner searches, in the
// deterministic order used for tie-breaks. Two-level is appended for
// hierarchical topologies; the historical reduce+broadcast and the
// blocking ring oracle are excluded (they exist for baselines and
// bit-identity checks, not as contenders).
var autoCandidates = []mpi.AllreduceAlgo{
	mpi.AllreduceRing,
	mpi.AllreduceRecursiveDoubling,
	mpi.AllreduceRabenseifner,
}

// chunkCandidates is the pipeline chunk-size menu RecommendChunk
// scores with the cost model.
var chunkCandidates = []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}

// latQuantum quantizes folded latency observations. Ragged compressed
// transfers racing a shared adapter calendar can swap sub-microsecond
// interval assignments between ranks (see DESIGN.md §13); quantizing
// before the EMA fold keeps scores — and therefore future picks —
// stable across those swaps.
const latQuantum = 1024 // nanoseconds

// emaShift is the EMA decay: new = old + (sample-old)/2^emaShift.
const emaShift = 2

// Key identifies one tuning-table bucket.
type Key struct {
	// SizeClass is ceil(log2(bytes)): messages within a power-of-two
	// band share a bucket.
	SizeClass int
	// Ranks is the communicator size.
	Ranks int
	// Topo is the netsim topology class of the world's node grouping.
	Topo netsim.TopoClass
}

// sizeClass buckets a byte count: 0 for <=1 byte, else ceil(log2 n).
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func keyOf(p mpi.TunePoint) Key {
	return Key{SizeClass: sizeClass(p.Bytes), Ranks: p.Ranks, Topo: netsim.ClassifyTopo(p.Nodes, p.PPN)}
}

// score is one candidate's committed standing within a key.
type score struct {
	emaNanos int64
	samples  int64
}

// entry is the committed state for one key.
type entry struct {
	ratioMilli int64 // measured compressibility x1000; 0 = not yet probed
	scores     map[mpi.AllreduceAlgo]*score
}

// latObs is one rank's pending latency report.
type latObs struct {
	key   Key
	algo  mpi.AllreduceAlgo
	op    uint64
	nanos int64
}

// probeObs is one pending compressibility sample, reduced to the two
// integers whose sums the fold needs (sums commute, so arrival order
// cannot matter).
type probeObs struct {
	key       Key
	origBytes int64
	estBytes  int64
}

// Counters carries engine activity the tuner adapts from: the
// compressed/fallback split discounts the effective ratio the cost
// model uses, and cache/pipeline figures ride into the stats line.
type Counters struct {
	Compressions    int64
	Bypasses        int64
	PoolFallbacks   int64
	CacheHits       int64
	CacheMisses     int64
	PipelinedChunks int64
}

func (c *Counters) add(d Counters) {
	c.Compressions += d.Compressions
	c.Bypasses += d.Bypasses
	c.PoolFallbacks += d.PoolFallbacks
	c.CacheHits += d.CacheHits
	c.CacheMisses += d.CacheMisses
	c.PipelinedChunks += d.PipelinedChunks
}

// Options configures NewTuner.
type Options struct {
	// Seed rotates the exploration order among candidates whose
	// predicted costs tie. Any fixed seed is exactly reproducible.
	Seed int64
	// Cluster supplies the link parameters the cost model prices
	// schedules with.
	Cluster hw.Cluster
	// Table, when non-nil, warm-starts the tuner: its entries become
	// the committed snapshot, so loaded keys skip both the ratio probe
	// and the exploration phase.
	Table *Table
}

// Tuner is a deterministic online selector for AllreduceSum schedules.
// One instance is shared across all ranks of a world; it satisfies
// mpi.CollTuner.
type Tuner struct {
	mu      sync.Mutex
	seed    int64
	cluster hw.Cluster

	// Committed snapshot: the only state Pick and NeedProbe read.
	entries       map[Key]*entry
	ctr           Counters
	fallbackMilli int64 // fraction (x1000) of messages that fell back uncompressed
	epochs        int64
	probeCount    int64
	pickCount     map[mpi.AllreduceAlgo]int64

	// Pending: appended during an epoch, folded at Advance.
	pendLat   []latObs
	pendProbe []probeObs
	pendCtr   Counters
}

// NewTuner builds a tuner, optionally warm-started from a table. The
// table must already have passed Validate (ParseTable guarantees it).
func NewTuner(opt Options) *Tuner {
	t := &Tuner{
		seed:      opt.Seed,
		cluster:   opt.Cluster,
		entries:   make(map[Key]*entry),
		pickCount: make(map[mpi.AllreduceAlgo]int64),
	}
	if opt.Table != nil {
		for _, te := range opt.Table.Entries {
			e := &entry{ratioMilli: te.RatioMilli, scores: make(map[mpi.AllreduceAlgo]*score)}
			for _, s := range te.Scores {
				a, err := parseAlgoName(s.Algo)
				if err != nil {
					continue // Validate rejects unknown names; belt and braces
				}
				e.scores[a] = &score{emaNanos: s.EmaNanos, samples: s.Samples}
			}
			t.entries[Key{SizeClass: te.SizeClass, Ranks: te.Ranks, Topo: netsim.TopoClass(te.Topo)}] = e
		}
	}
	return t
}

// candidatesFor returns the schedule space for a point, in tie-break
// order.
func candidatesFor(p mpi.TunePoint) []mpi.AllreduceAlgo {
	cands := make([]mpi.AllreduceAlgo, len(autoCandidates), len(autoCandidates)+1)
	copy(cands, autoCandidates)
	if netsim.ClassifyTopo(p.Nodes, p.PPN) == netsim.TopoHierarchical {
		cands = append(cands, mpi.AllreduceTwoLevel)
	}
	return cands
}

// PickAllreduce selects the schedule for one collective call. It reads
// only the committed snapshot, so every rank of the same op computes
// the same answer regardless of interleaving.
func (t *Tuner) PickAllreduce(p mpi.TunePoint) mpi.AllreduceAlgo {
	t.mu.Lock()
	defer t.mu.Unlock()
	cands := candidatesFor(p)
	e := t.entries[keyOf(p)]
	ratio := int64(1000)
	if e != nil && e.ratioMilli > 0 {
		ratio = t.effRatioMilliLocked(e.ratioMilli)
	}

	// Exploration phase: while any candidate lacks a folded sample,
	// walk the unsampled set in ascending predicted cost, starting at
	// a seed-rotated offset.
	var unsampled []mpi.AllreduceAlgo
	for _, a := range cands {
		if e == nil || e.scores[a] == nil || e.scores[a].samples == 0 {
			unsampled = append(unsampled, a)
		}
	}
	if len(unsampled) > 0 {
		sort.SliceStable(unsampled, func(i, j int) bool {
			ci := t.predictNanos(unsampled[i], p, ratio)
			cj := t.predictNanos(unsampled[j], p, ratio)
			if ci != cj {
				return ci < cj
			}
			return unsampled[i] < unsampled[j]
		})
		idx := int(uint64(t.seed) % uint64(len(unsampled)))
		return unsampled[idx]
	}

	// Exploitation: argmin committed EMA, enum order breaking ties.
	best := cands[0]
	bestScore := e.scores[best].emaNanos
	for _, a := range cands[1:] {
		if s := e.scores[a].emaNanos; s < bestScore {
			best, bestScore = a, s
		}
	}
	return best
}

// ObserveAllreduce queues one rank's measured latency; it is folded at
// the next Advance.
func (t *Tuner) ObserveAllreduce(p mpi.TunePoint, algo mpi.AllreduceAlgo, elapsed simtime.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pendLat = append(t.pendLat, latObs{key: keyOf(p), algo: algo, op: p.Op, nanos: int64(elapsed)})
}

// NeedProbe reports whether the point's key still lacks a
// compressibility estimate. Warm-started keys arrive with one, so they
// never re-probe.
func (t *Tuner) NeedProbe(p mpi.TunePoint) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[keyOf(p)]
	return e == nil || e.ratioMilli == 0
}

// ObserveProbeSample reduces a first-touch sample to (original,
// estimated) byte sums and queues them; the ratio commits at Advance.
func (t *Tuner) ObserveProbeSample(p mpi.TunePoint, sample []byte) {
	orig, est := estimateSample(sample)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pendProbe = append(t.pendProbe, probeObs{key: keyOf(p), origBytes: orig, estBytes: est})
}

// NoteCounters queues engine activity totals (summed over all ranks'
// engines by the caller) for folding at Advance.
func (t *Tuner) NoteCounters(c Counters) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pendCtr.add(c)
}

// Advance folds everything pending into the committed snapshot. Call
// it only at world-synchronous points (between World.Run invocations);
// the fold sorts each pending set first, so the committed state is
// independent of the order observations arrived in.
func (t *Tuner) Advance() {
	t.mu.Lock()
	defer t.mu.Unlock()

	// Probes: per-key integer sums (commutative), then one ratio.
	sort.Slice(t.pendProbe, func(i, j int) bool { return probeLess(t.pendProbe[i], t.pendProbe[j]) })
	for i := 0; i < len(t.pendProbe); {
		j := i
		var orig, est int64
		for ; j < len(t.pendProbe) && t.pendProbe[j].key == t.pendProbe[i].key; j++ {
			orig += t.pendProbe[j].origBytes
			est += t.pendProbe[j].estBytes
		}
		e := t.entryLocked(t.pendProbe[i].key)
		if e.ratioMilli == 0 && est > 0 {
			e.ratioMilli = orig * 1000 / est
			if e.ratioMilli < 1000 {
				e.ratioMilli = 1000 // estimator overhead never expands on the wire: bypass floor
			}
		}
		t.probeCount += int64(j - i)
		i = j
	}
	t.pendProbe = t.pendProbe[:0]

	// Latencies: group by (key, algo, op), take the max across ranks
	// (a collective is as slow as its slowest rank), quantize, and
	// EMA-fold groups in ascending op order.
	sort.Slice(t.pendLat, func(i, j int) bool { return latLess(t.pendLat[i], t.pendLat[j]) })
	for i := 0; i < len(t.pendLat); {
		o := t.pendLat[i]
		j := i
		var maxNanos int64
		for ; j < len(t.pendLat) && t.pendLat[j].key == o.key && t.pendLat[j].algo == o.algo && t.pendLat[j].op == o.op; j++ {
			if t.pendLat[j].nanos > maxNanos {
				maxNanos = t.pendLat[j].nanos
			}
		}
		x := maxNanos - maxNanos%latQuantum
		e := t.entryLocked(o.key)
		s := e.scores[o.algo]
		if s == nil {
			s = &score{}
			e.scores[o.algo] = s
		}
		if s.samples == 0 {
			s.emaNanos = x
		} else {
			s.emaNanos += (x - s.emaNanos) >> emaShift
		}
		s.samples++
		t.pickCount[o.algo]++
		i = j
	}
	t.pendLat = t.pendLat[:0]

	// Counters: running totals plus the fallback fraction the cost
	// model discounts compressibility by.
	t.ctr.add(t.pendCtr)
	t.pendCtr = Counters{}
	if total := t.ctr.Compressions + t.ctr.PoolFallbacks; total > 0 {
		t.fallbackMilli = t.ctr.PoolFallbacks * 1000 / total
	}
	t.epochs++
}

func probeLess(a, b probeObs) bool {
	if a.key != b.key {
		return keyLess(a.key, b.key)
	}
	if a.origBytes != b.origBytes {
		return a.origBytes < b.origBytes
	}
	return a.estBytes < b.estBytes
}

func latLess(a, b latObs) bool {
	if a.key != b.key {
		return keyLess(a.key, b.key)
	}
	if a.algo != b.algo {
		return a.algo < b.algo
	}
	if a.op != b.op {
		return a.op < b.op
	}
	return a.nanos < b.nanos
}

func keyLess(a, b Key) bool {
	if a.SizeClass != b.SizeClass {
		return a.SizeClass < b.SizeClass
	}
	if a.Ranks != b.Ranks {
		return a.Ranks < b.Ranks
	}
	return a.Topo < b.Topo
}

func (t *Tuner) entryLocked(k Key) *entry {
	e := t.entries[k]
	if e == nil {
		e = &entry{scores: make(map[mpi.AllreduceAlgo]*score)}
		t.entries[k] = e
	}
	return e
}

// effRatioMilliLocked discounts a measured ratio by the fraction of
// traffic that fell back uncompressed (pool exhaustion): wire bytes
// saved only apply to the messages that actually compressed.
func (t *Tuner) effRatioMilliLocked(ratioMilli int64) int64 {
	return 1000 + (ratioMilli-1000)*(1000-t.fallbackMilli)/1000
}

// estimateSample prices a buffer prefix under an XOR-delta
// leading-zero-byte code — the same word-neighbor value locality MPC
// exploits — using only integer ops. Returns (original, estimated)
// byte counts for commutative sum-folding.
func estimateSample(sample []byte) (orig, est int64) {
	words := len(sample) / 4
	if words < 2 {
		return int64(len(sample)), int64(len(sample))
	}
	prev := binary.LittleEndian.Uint32(sample[0:4])
	est = 5 // first word: tag byte + raw word
	for i := 1; i < words; i++ {
		w := binary.LittleEndian.Uint32(sample[4*i:])
		lzBytes := bits.LeadingZeros32(w^prev) / 8
		est += int64(1 + 4 - lzBytes)
		prev = w
	}
	return int64(words * 4), est
}

// predictNanos prices one schedule with the alpha-beta model.
// ratioMilli is the effective compression ratio (x1000) applied to
// wire bytes on the compressed (inter-node, or only) link.
func (t *Tuner) predictNanos(algo mpi.AllreduceAlgo, p mpi.TunePoint, ratioMilli int64) int64 {
	link := t.cluster.InterNode
	if netsim.ClassifyTopo(p.Nodes, p.PPN) == netsim.TopoSingleNode {
		link = t.cluster.IntraNode
	}
	alpha := int64(link.Latency + link.PerMsgOverhead)
	n := int64(p.Bytes)
	nw := n * 1000 / ratioMilli
	pp := int64(p.Ranks)
	if pp < 2 {
		return alpha
	}
	logP := int64(bits.Len(uint(pp - 1))) // ceil(log2 P)
	wire := func(bytes int64) int64 {
		if bytes <= 0 {
			return 0
		}
		return int64(simtime.TransferTime(int(bytes), link.BandwidthGBps))
	}
	switch algo {
	case mpi.AllreduceRing:
		return 2*(pp-1)*alpha + wire(2*nw*(pp-1)/pp)
	case mpi.AllreduceRecursiveDoubling:
		return logP * (alpha + wire(nw))
	case mpi.AllreduceRabenseifner:
		return 2*logP*alpha + wire(2*nw*(pp-1)/pp)
	case mpi.AllreduceTwoLevel:
		intra := t.cluster.IntraNode
		ai := int64(intra.Latency + intra.PerMsgOverhead)
		ppn := int64(p.PPN)
		nodes := int64(p.Nodes)
		if ppn < 1 {
			ppn = 1
		}
		if nodes < 1 {
			nodes = 1
		}
		intraWire := func(bytes int64) int64 {
			if bytes <= 0 {
				return 0
			}
			return int64(simtime.TransferTime(int(bytes), intra.BandwidthGBps))
		}
		local := 2 * (ppn - 1) * (ai + intraWire(n))
		logN := int64(bits.Len(uint(nodes - 1)))
		return local + logN*(alpha+wire(nw))
	default:
		// Historical reduce+broadcast: two binomial trees moving the
		// whole vector per hop.
		return 2 * logP * (alpha + wire(nw))
	}
}

// PredictNanos exposes the cost model for benches and the recommend
// helpers: the schedule's predicted latency at the tuner's current
// effective ratio for the point's key.
func (t *Tuner) PredictNanos(algo mpi.AllreduceAlgo, p mpi.TunePoint) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	ratio := int64(1000)
	if e := t.entries[keyOf(p)]; e != nil && e.ratioMilli > 0 {
		ratio = t.effRatioMilliLocked(e.ratioMilli)
	}
	return t.predictNanos(algo, p, ratio)
}

// RecommendChunk scores the pipeline chunk-size menu for a point with
// the cost model: chunks pay a per-chunk alpha but overlap the wire,
// so the winner balances (P-1+numChunks) pipeline stages against
// per-stage cost. Ties go to the smaller chunk.
func (t *Tuner) RecommendChunk(p mpi.TunePoint) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	ratio := int64(1000)
	if e := t.entries[keyOf(p)]; e != nil && e.ratioMilli > 0 {
		ratio = t.effRatioMilliLocked(e.ratioMilli)
	}
	return t.recommendChunkLocked(p, ratio)
}

func (t *Tuner) recommendChunkLocked(p mpi.TunePoint, ratioMilli int64) int {
	link := t.cluster.InterNode
	if netsim.ClassifyTopo(p.Nodes, p.PPN) == netsim.TopoSingleNode {
		link = t.cluster.IntraNode
	}
	alpha := int64(link.Latency + link.PerMsgOverhead)
	pp := int64(p.Ranks)
	if pp < 2 {
		pp = 2
	}
	per := int64(p.Bytes) / pp // ring block each stage relays
	if per < 1 {
		per = 1
	}
	perWire := per * 1000 / ratioMilli
	best, bestCost := chunkCandidates[0], int64(-1)
	for _, c := range chunkCandidates {
		chunks := (perWire + int64(c) - 1) / int64(c)
		if chunks < 1 {
			chunks = 1
		}
		stage := alpha + int64(simtime.TransferTime(int(minInt64(perWire, int64(c))), link.BandwidthGBps))
		cost := (pp - 1 + chunks) * stage
		if bestCost < 0 || cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best
}

// codecHint names the codec the measured ratio justifies: below ~5%
// savings the compression pipeline is pure overhead.
func codecHint(ratioMilli int64) string {
	if ratioMilli >= 1050 {
		return "mpc"
	}
	return "none"
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Snapshot exports the committed state as a canonical Table (entries
// and scores sorted), suitable for Marshal and a later warm start.
func (t *Tuner) Snapshot() *Table {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]Key, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	tab := &Table{Version: TableVersion, Seed: t.seed}
	for _, k := range keys {
		e := t.entries[k]
		te := Entry{
			SizeClass:  k.SizeClass,
			Ranks:      k.Ranks,
			Topo:       string(k.Topo),
			RatioMilli: e.ratioMilli,
			ChunkBytes: t.recommendChunkForKeyLocked(k, e),
			CodecHint:  codecHint(e.ratioMilli),
		}
		algos := make([]mpi.AllreduceAlgo, 0, len(e.scores))
		for a := range e.scores {
			algos = append(algos, a)
		}
		// Canonical order is by name, matching ParseTable, so Marshal
		// of a snapshot is already the fixpoint form.
		sort.Slice(algos, func(i, j int) bool { return algos[i].String() < algos[j].String() })
		for _, a := range algos {
			s := e.scores[a]
			te.Scores = append(te.Scores, Score{Algo: a.String(), EmaNanos: s.emaNanos, Samples: s.samples})
		}
		tab.Entries = append(tab.Entries, te)
	}
	return tab
}

// recommendChunkForKeyLocked reconstructs a representative point from
// the key (2^sizeClass bytes, flat vs hierarchical shape) and scores
// the chunk menu for the snapshot's chunk_bytes column.
func (t *Tuner) recommendChunkForKeyLocked(k Key, e *entry) int {
	bytes := 1
	if k.SizeClass > 0 && k.SizeClass < 31 {
		bytes = 1 << k.SizeClass
	}
	nodes, ppn := k.Ranks, 1
	switch k.Topo {
	case netsim.TopoSingleNode:
		nodes, ppn = 1, k.Ranks
	case netsim.TopoHierarchical:
		if k.Ranks%2 == 0 {
			nodes, ppn = k.Ranks/2, 2
		}
	}
	p := mpi.TunePoint{Bytes: bytes, Ranks: k.Ranks, Nodes: nodes, PPN: ppn}
	ratio := int64(1000)
	if e.ratioMilli > 0 {
		ratio = t.effRatioMilliLocked(e.ratioMilli)
	}
	return t.recommendChunkLocked(p, ratio)
}

// StatsLine renders the deterministic one-line summary ombrun prints
// as "# tune: ...": epochs folded, probes taken, table size, per-algo
// folded pick counts (enum order), and the fallback discount.
func (t *Tuner) StatsLine() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	picks := ""
	for _, a := range []mpi.AllreduceAlgo{
		mpi.AllreduceReduceBcast, mpi.AllreduceRing, mpi.AllreduceRingBlocking,
		mpi.AllreduceRecursiveDoubling, mpi.AllreduceRabenseifner, mpi.AllreduceTwoLevel,
	} {
		if n := t.pickCount[a]; n > 0 {
			if picks != "" {
				picks += " "
			}
			picks += fmt.Sprintf("%s:%d", a, n)
		}
	}
	if picks == "" {
		picks = "-"
	}
	return fmt.Sprintf("# tune: epochs=%d probes=%d entries=%d picks={%s} fallback_milli=%d",
		t.epochs, t.probeCount, len(t.entries), picks, t.fallbackMilli)
}
