// Package sz implements an SZ-style error-bounded lossy floating-point
// compressor (Di & Cappello, IPDPS 2016; Tao et al.) — the second lossy
// GPU codec in the paper's Table I comparison. The design follows the SZ
// 2.x single-precision pipeline:
//
//  1. Lorenzo prediction: each value is predicted from the *decompressed*
//     predecessor, keeping encoder and decoder in lockstep.
//  2. Linear-scale quantization: the prediction residual is quantized to
//     an integer code with bin width 2*eb, guaranteeing |v - v'| <= eb
//     for predictable values.
//  3. Entropy coding: the quantization codes are Huffman coded
//     (canonical codes, table carried in the stream).
//  4. Unpredictable values (residual outside the code range) are stored
//     verbatim and flagged with a reserved symbol — exact, not lossy.
//
// The guarantee tested by the property suite: every reconstructed value
// differs from its original by at most the error bound.
package sz

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"mpicomp/internal/bitstream"
)

// DefaultBins is the quantization code range (SZ's default interval
// capacity). The reserved symbol DefaultBins marks unpredictable values.
const DefaultBins = 1 << 16

var (
	// ErrBadBound reports a non-positive error bound.
	ErrBadBound = errors.New("sz: error bound must be positive")
	// ErrCorrupt reports an undecodable stream.
	ErrCorrupt = errors.New("sz: corrupt compressed data")
)

// Compress compresses src with the given absolute error bound, appending
// to dst.
func Compress(dst []byte, src []float32, eb float64) ([]byte, error) {
	if !(eb > 0) {
		return dst, ErrBadBound
	}
	const bins = DefaultBins
	const marker = bins // reserved symbol
	half := bins / 2

	codes := make([]int, 0, len(src))
	var exact []float32
	prev := 0.0 // decompressed predecessor
	for i, v := range src {
		pred := prev
		if i == 0 {
			pred = 0
		}
		q := math.Round((float64(v) - pred) / (2 * eb))
		// The decoder reconstructs in float64 and stores float32, so the
		// encoder must track the identical rounded value — otherwise the
		// histories diverge and the bound silently erodes.
		recon := float64(float32(pred + q*2*eb))
		if q >= float64(-half) && q < float64(half) &&
			math.Abs(recon-float64(v)) <= eb &&
			!math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) {
			codes = append(codes, int(q)+half)
			prev = recon
		} else {
			codes = append(codes, marker)
			exact = append(exact, v)
			prev = float64(v)
		}
	}

	// Huffman-code the symbol stream.
	table := buildHuffman(codes)
	w := bitstream.NewWriter()
	for _, c := range codes {
		e := table[c]
		// Emit MSB-first so canonical decoding works.
		for b := int(e.length) - 1; b >= 0; b-- {
			w.WriteBit(uint(e.code>>uint(b)) & 1)
		}
	}
	payload := w.Bytes()

	// Serialize: table, bit length, payload, exact values.
	out := dst
	syms := make([]int, 0, len(table))
	for s := range table {
		syms = append(syms, s)
	}
	sort.Ints(syms)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(syms)))
	for _, s := range syms {
		out = binary.LittleEndian.AppendUint32(out, uint32(s))
		out = append(out, table[s].length)
	}
	out = binary.LittleEndian.AppendUint64(out, w.BitLen())
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(exact)))
	for _, v := range exact {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out, nil
}

// Decompress reconstructs exactly n values from comp with the error bound
// used at compression time.
func Decompress(dst []float32, comp []byte, n int, eb float64) ([]float32, error) {
	if !(eb > 0) {
		return dst, ErrBadBound
	}
	const bins = DefaultBins
	const marker = bins
	half := bins / 2

	pos := 0
	need := func(k int) error {
		if pos+k > len(comp) {
			return fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, pos)
		}
		return nil
	}
	if err := need(4); err != nil {
		return dst, err
	}
	nSyms := int(binary.LittleEndian.Uint32(comp[pos:]))
	pos += 4
	if nSyms > bins+1 {
		return dst, fmt.Errorf("%w: %d symbols", ErrCorrupt, nSyms)
	}
	entries := make([]tableEntry, nSyms)
	for i := range entries {
		if err := need(5); err != nil {
			return dst, err
		}
		entries[i].symbol = int(binary.LittleEndian.Uint32(comp[pos:]))
		entries[i].length = comp[pos+4]
		if entries[i].symbol > marker || entries[i].length == 0 || entries[i].length > 64 {
			return dst, fmt.Errorf("%w: bad table entry", ErrCorrupt)
		}
		pos += 5
	}
	if err := need(12); err != nil {
		return dst, err
	}
	bitLen := binary.LittleEndian.Uint64(comp[pos:])
	pos += 8
	payloadLen := int(binary.LittleEndian.Uint32(comp[pos:]))
	pos += 4
	if err := need(payloadLen); err != nil {
		return dst, err
	}
	payload := comp[pos : pos+payloadLen]
	pos += payloadLen
	if err := need(4); err != nil {
		return dst, err
	}
	nExact := int(binary.LittleEndian.Uint32(comp[pos:]))
	pos += 4
	if err := need(4 * nExact); err != nil {
		return dst, err
	}
	exact := make([]float32, nExact)
	for i := range exact {
		exact[i] = math.Float32frombits(binary.LittleEndian.Uint32(comp[pos:]))
		pos += 4
	}
	if pos != len(comp) {
		return dst, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(comp)-pos)
	}

	dec, err := newCanonicalDecoder(entries)
	if err != nil {
		return dst, err
	}
	r := bitstream.NewReader(payload)
	prev := 0.0
	exactIdx := 0
	var readBits uint64
	for i := 0; i < n; i++ {
		sym, used, err := dec.decode(r, bitLen-readBits)
		if err != nil {
			return dst, err
		}
		readBits += used
		if sym == marker {
			if exactIdx >= len(exact) {
				return dst, fmt.Errorf("%w: missing exact value", ErrCorrupt)
			}
			v := exact[exactIdx]
			exactIdx++
			dst = append(dst, v)
			prev = float64(v)
			continue
		}
		recon := prev + float64(sym-half)*2*eb
		dst = append(dst, float32(recon))
		prev = float64(float32(recon))
	}
	return dst, nil
}

// Ratio reports original/compressed size of src at the given bound.
func Ratio(src []float32, eb float64) (float64, error) {
	comp, err := Compress(nil, src, eb)
	if err != nil {
		return 0, err
	}
	if len(comp) == 0 {
		return 1, nil
	}
	return float64(len(src)*4) / float64(len(comp)), nil
}

// --- Huffman machinery ---

type huffEntry struct {
	code   uint64
	length byte
}

type tableEntry struct {
	symbol int
	length byte
}

type hNode struct {
	freq        int
	symbol      int // -1 for internal
	left, right *hNode
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].symbol < h[j].symbol // deterministic tie-break
}
func (h hHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x interface{}) { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// buildHuffman computes canonical Huffman codes for the symbols in codes.
func buildHuffman(codes []int) map[int]huffEntry {
	freq := map[int]int{}
	for _, c := range codes {
		freq[c]++
	}
	if len(freq) == 0 {
		return map[int]huffEntry{}
	}
	// Seed the heap in symbol order. Map iteration order must not leak
	// into tree construction: equal-frequency internal nodes compare as
	// ties in hHeap.Less (both carry symbol -1), so the pop order — and
	// with it the code lengths, the compressed size, and the simulated
	// ratios in results_table3.txt — would otherwise depend on Go's
	// per-run map ordering.
	syms := make([]int, 0, len(freq))
	for s := range freq {
		syms = append(syms, s)
	}
	sort.Ints(syms)
	if len(syms) == 1 {
		return map[int]huffEntry{syms[0]: {code: 0, length: 1}}
	}
	h := make(hHeap, 0, len(freq))
	for _, s := range syms {
		h = append(h, &hNode{freq: freq[s], symbol: s})
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hNode)
		b := heap.Pop(&h).(*hNode)
		heap.Push(&h, &hNode{freq: a.freq + b.freq, symbol: -1, left: a, right: b})
	}
	// Extract code lengths.
	lengths := map[int]byte{}
	var walk func(n *hNode, depth byte)
	walk = func(n *hNode, depth byte) {
		if n.symbol >= 0 {
			if depth == 0 {
				depth = 1
			}
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(h[0], 0)
	return canonicalCodes(lengths)
}

// canonicalCodes assigns canonical codes given lengths (sorted by
// (length, symbol)).
func canonicalCodes(lengths map[int]byte) map[int]huffEntry {
	type sl struct {
		symbol int
		length byte
	}
	items := make([]sl, 0, len(lengths))
	for s, l := range lengths {
		items = append(items, sl{s, l})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].length != items[j].length {
			return items[i].length < items[j].length
		}
		return items[i].symbol < items[j].symbol
	})
	out := make(map[int]huffEntry, len(items))
	code := uint64(0)
	prevLen := byte(0)
	for _, it := range items {
		if prevLen != 0 {
			code = (code + 1) << (it.length - prevLen)
		}
		out[it.symbol] = huffEntry{code: code, length: it.length}
		prevLen = it.length
	}
	return out
}

// canonicalDecoder decodes canonical Huffman bit-by-bit using first-code
// tables per length.
type canonicalDecoder struct {
	// perLength[l] = (firstCode, firstIndex) for codes of length l.
	firstCode  [65]uint64
	firstIndex [65]int
	count      [65]int
	symbols    []int // sorted by (length, symbol)
	maxLen     byte
}

func newCanonicalDecoder(entries []tableEntry) (*canonicalDecoder, error) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].length != entries[j].length {
			return entries[i].length < entries[j].length
		}
		return entries[i].symbol < entries[j].symbol
	})
	d := &canonicalDecoder{}
	for _, e := range entries {
		d.count[e.length]++
		d.symbols = append(d.symbols, e.symbol)
		if e.length > d.maxLen {
			d.maxLen = e.length
		}
	}
	// Canonical progression, mirroring the encoder: the first code of
	// each populated length is (last code of previous length + 1)
	// shifted left by the length difference.
	code := uint64(0)
	prevLen := byte(0)
	idx := 0
	for l := byte(1); l <= d.maxLen; l++ {
		if d.count[l] == 0 {
			continue
		}
		if prevLen != 0 {
			code = (code + 1) << (l - prevLen)
		}
		d.firstCode[l] = code
		d.firstIndex[l] = idx
		code += uint64(d.count[l]) - 1
		idx += d.count[l]
		prevLen = l
	}
	return d, nil
}

// decode reads one symbol, returning it and the number of bits consumed.
func (d *canonicalDecoder) decode(r *bitstream.Reader, budget uint64) (int, uint64, error) {
	var code uint64
	var used uint64
	for l := byte(1); l <= d.maxLen; l++ {
		if used >= budget {
			return 0, used, fmt.Errorf("%w: bit budget exhausted", ErrCorrupt)
		}
		code = code<<1 | uint64(r.ReadBit())
		used++
		if d.count[l] == 0 {
			continue
		}
		offset := int64(code) - int64(d.firstCode[l])
		if offset >= 0 && offset < int64(d.count[l]) {
			return d.symbols[d.firstIndex[l]+int(offset)], used, nil
		}
	}
	return 0, used, fmt.Errorf("%w: invalid code", ErrCorrupt)
}

// CompressRel compresses with a value-range-relative error bound, SZ's
// REL mode: the absolute bound is rel times the sample's value range.
// The derived absolute bound is returned — the decompressor needs it.
func CompressRel(dst []byte, src []float32, rel float64) ([]byte, float64, error) {
	if !(rel > 0) {
		return dst, 0, ErrBadBound
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range src {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	eb := rel * (hi - lo)
	if !(eb > 0) {
		eb = rel // constant or empty data: any positive bound works
	}
	out, err := Compress(dst, src, eb)
	return out, eb, err
}
