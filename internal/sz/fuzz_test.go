package sz

import (
	"math/rand"
	"testing"
)

// FuzzDecompress: arbitrary bytes must decode fully or error — no panics,
// no silent truncation.
func FuzzDecompress(f *testing.F) {
	good, _ := Compress(nil, []float32{1, 2, 3, 4, 5}, 1e-3)
	f.Add(good, 5)
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 0, 0, 0, 5}, 3)
	f.Fuzz(func(t *testing.T, comp []byte, n int) {
		if n < 0 || n > 1<<14 {
			return
		}
		out, err := Decompress(nil, comp, n, 1e-3)
		if err == nil && len(out) != n {
			t.Fatalf("decoded %d values, want %d", len(out), n)
		}
	})
}

func TestDecompressRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		comp := make([]byte, rng.Intn(400))
		rng.Read(comp)
		n := rng.Intn(200)
		out, err := Decompress(nil, comp, n, 1e-3)
		if err == nil && len(out) != n {
			t.Fatal("silent mis-size on garbage input")
		}
	}
}
