package sz

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func checkBound(t *testing.T, src, got []float32, eb float64) {
	t.Helper()
	if len(got) != len(src) {
		t.Fatalf("length %d want %d", len(got), len(src))
	}
	for i := range src {
		if math.IsNaN(float64(src[i])) || math.IsInf(float64(src[i]), 0) {
			if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
				t.Fatalf("non-finite value %d must round-trip exactly", i)
			}
			continue
		}
		// Allow one float32 ULP of slack on top of the bound for the
		// final float64->float32 rounding.
		slack := math.Abs(float64(src[i])) * 1.2e-7
		if e := math.Abs(float64(got[i]) - float64(src[i])); e > eb+slack {
			t.Fatalf("value %d: error %g exceeds bound %g (%v -> %v)", i, e, eb, src[i], got[i])
		}
	}
}

func roundTrip(t *testing.T, src []float32, eb float64) []byte {
	t.Helper()
	comp, err := Compress(nil, src, eb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(nil, comp, len(src), eb)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, src, got, eb)
	return comp
}

func TestRoundTripShapes(t *testing.T) {
	roundTrip(t, nil, 1e-3)
	roundTrip(t, []float32{42}, 1e-3)
	roundTrip(t, make([]float32, 1000), 1e-3) // zeros
	vals := make([]float32, 500)
	for i := range vals {
		vals[i] = float32(i) * 0.25
	}
	roundTrip(t, vals, 1e-2)
}

func TestErrorBoundHonored(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 10000)
	v := float32(0)
	for i := range src {
		v += float32(rng.NormFloat64())
		src[i] = v
	}
	for _, eb := range []float64{1e-1, 1e-2, 1e-4} {
		roundTrip(t, src, eb)
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]float32, 1<<16)
	v := 100.0
	for i := range src {
		v += rng.NormFloat64() * 1e-4
		src[i] = float32(v)
	}
	r, err := Ratio(src, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// Residuals fit in a handful of quantization bins: high ratio.
	if r < 4 {
		t.Fatalf("smooth data should compress > 4x at loose bound: %.2f", r)
	}
	// Tighter bound -> lower ratio.
	rTight, _ := Ratio(src, 1e-6)
	if rTight >= r {
		t.Fatalf("tighter bound should compress less: %.2f vs %.2f", rTight, r)
	}
}

func TestUnpredictableValuesExact(t *testing.T) {
	// Wild jumps exceed the quantization range and must be stored
	// verbatim (bit-exact).
	rng := rand.New(rand.NewSource(3))
	src := make([]float32, 2000)
	for i := range src {
		src[i] = float32(rng.NormFloat64()) * 1e20
	}
	comp, err := Compress(nil, src, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(nil, comp, len(src), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
			t.Fatalf("unpredictable value %d must be exact", i)
		}
	}
}

func TestNonFiniteHandled(t *testing.T) {
	src := []float32{1, float32(math.Inf(1)), 2, float32(math.Inf(-1)), 3}
	roundTrip(t, src, 1e-3)
}

func TestBadBound(t *testing.T) {
	if _, err := Compress(nil, []float32{1}, 0); err == nil {
		t.Fatal("zero bound should fail")
	}
	if _, err := Decompress(nil, nil, 1, -1); err == nil {
		t.Fatal("negative bound should fail")
	}
}

func TestCorruptRejected(t *testing.T) {
	src := make([]float32, 256)
	for i := range src {
		src[i] = float32(i)
	}
	comp, _ := Compress(nil, src, 1e-3)
	if _, err := Decompress(nil, comp[:len(comp)-2], 256, 1e-3); err == nil {
		t.Fatal("truncated should fail")
	}
	if _, err := Decompress(nil, append(comp, 1), 256, 1e-3); err == nil {
		t.Fatal("trailing should fail")
	}
	if _, err := Decompress(nil, comp[:3], 256, 1e-3); err == nil {
		t.Fatal("tiny buffer should fail")
	}
	// Corrupt the symbol table length.
	bad := append([]byte(nil), comp...)
	bad[0] = 0xff
	bad[1] = 0xff
	bad[2] = 0xff
	bad[3] = 0xff
	if _, err := Decompress(nil, bad, 256, 1e-3); err == nil {
		t.Fatal("absurd symbol count should fail")
	}
}

// Property: the bound holds for arbitrary finite data and bounds.
func TestBoundProperty(t *testing.T) {
	f := func(seed int64, ebRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eb := math.Pow(10, -float64(ebRaw%6)) // 1 .. 1e-5
		n := 1 + rng.Intn(300)
		src := make([]float32, n)
		v := 0.0
		for i := range src {
			switch rng.Intn(4) {
			case 0:
				v = rng.NormFloat64() * 1000
			default:
				v += rng.NormFloat64() * eb * 10
			}
			src[i] = float32(v)
		}
		comp, err := Compress(nil, src, eb)
		if err != nil {
			return false
		}
		got, err := Decompress(nil, comp, n, eb)
		if err != nil {
			return false
		}
		for i := range src {
			slack := math.Abs(float64(src[i])) * 1.2e-7
			if math.Abs(float64(got[i])-float64(src[i])) > eb+slack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	// Constant data yields a single-symbol alphabet.
	src := make([]float32, 100)
	for i := range src {
		src[i] = 5
	}
	comp := roundTrip(t, src, 1e-3)
	// 100 values in ~1 bit each plus table: tiny.
	if len(comp) > 64 {
		t.Fatalf("constant data should compress to a few bytes: %d", len(comp))
	}
}

func BenchmarkCompress1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 1<<18)
	v := 0.0
	for i := range src {
		v += rng.NormFloat64() * 0.001
		src[i] = float32(v)
	}
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(nil, src, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCompressRel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	src := make([]float32, 5000)
	v := 0.0
	for i := range src {
		v += rng.NormFloat64() * 3
		src[i] = float32(v)
	}
	comp, eb, err := CompressRel(nil, src, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if eb <= 0 {
		t.Fatalf("derived bound: %g", eb)
	}
	got, err := Decompress(nil, comp, len(src), eb)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, src, got, eb)
	// Constant data still works (fallback bound).
	flat := make([]float32, 100)
	comp2, eb2, err := CompressRel(nil, flat, 1e-3)
	if err != nil || eb2 <= 0 {
		t.Fatalf("flat data: %v %g", err, eb2)
	}
	got2, err := Decompress(nil, comp2, 100, eb2)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, flat, got2, eb2)
	if _, _, err := CompressRel(nil, src, 0); err == nil {
		t.Fatal("zero relative bound should fail")
	}
}

// TestHuffmanDeterministic guards the Huffman-construction fix: the
// tree used to be seeded in map-iteration order, and once three or
// more equal-frequency internal nodes tie in the heap (all carrying
// symbol -1, so hHeap.Less cannot break the tie), which pair merges
// first — and therefore which symbols land at which code length —
// depended on Go's per-run map ordering. Eight symbols of frequency
// one manufacture exactly that situation: four internal 2-nodes tie,
// and under the old seeding the resulting code table differed between
// builds of the very same input. Six frequency-one symbols produce
// three tied internal 2-nodes — a non-power-of-two count, so the tree
// cannot balance symmetrically and two distinct length assignments
// ({2,2,3,3,3,3} rotated across symbols) are reachable; exhaustive
// permutation of the seeding order shows exactly two outcomes.
func TestHuffmanDeterministic(t *testing.T) {
	codes := []int{10, 11, 12, 13, 14, 15}
	first := buildHuffman(codes)
	for run := 0; run < 50; run++ {
		again := buildHuffman(codes)
		if len(again) != len(first) {
			t.Fatalf("run %d: table size %d, want %d", run, len(again), len(first))
		}
		for sym, want := range first {
			if got := again[sym]; got != want {
				t.Fatalf("run %d: symbol %d got code %+v, first build had %+v: Huffman construction leaked map order", run, sym, got, want)
			}
		}
	}
}

// TestCompressDeterministic asserts the same property end-to-end: every
// build of a stream over tie-heavy data must be bit-identical.
func TestCompressDeterministic(t *testing.T) {
	vals := make([]float32, 8192)
	for i := range vals {
		vals[i] = float32(i%97) * 0.25
	}
	first, err := Compress(nil, vals, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 25; run++ {
		again, err := Compress(nil, vals, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("run %d: compressed stream differs from first build (%d vs %d bytes): Huffman construction leaked map order", run, len(again), len(first))
		}
	}
}
