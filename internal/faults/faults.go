// Package faults is the deterministic fault-injection fabric for the
// simulated cluster. A real deployment of the paper's library rides on
// InfiniBand retransmission and MVAPICH2's progress engine for reliability;
// the simulation has neither, so this package supplies the adversary those
// layers defend against: dropped control/data messages, bit flips on wire
// payloads, and transient link-bandwidth degradation.
//
// Every decision is a pure function of (seed, event identity) — a hash of
// the message kind, endpoints, per-sender sequence number, and transmission
// attempt — never a draw from a shared sequential RNG. Rank goroutines
// reach the injector in arbitrary wall-clock order, so sequential draws
// would make fault placement depend on the host scheduler; hashing keeps
// every run bit-for-bit reproducible from the seed alone, which is what
// lets the chaos soak tests assert exact outcomes.
package faults

import (
	"fmt"
	"sync/atomic"

	"mpicomp/internal/simtime"
)

// Kind identifies the class of wire event a decision applies to. Distinct
// kinds hash independently, so (for example) an RTS and the data transfer
// of the same message attempt see independent fates.
type Kind uint8

const (
	// KindRTS is the rendezvous ready-to-send control packet.
	KindRTS Kind = iota + 1
	// KindCTS is the rendezvous clear-to-send control packet.
	KindCTS
	// KindData is the rendezvous payload transfer.
	KindData
	// KindEager is an eager-protocol message (header + payload in one).
	KindEager
	// KindCrash is a crash-stop process failure: the rank halts at a
	// seeded onset instant and never communicates again.
	KindCrash
	// KindSilence is a silent-peer failure: the rank's process survives
	// but from the onset instant none of its traffic reaches the fabric
	// (a partitioned NIC, a wedged progress thread).
	KindSilence
	// KindCodec is a compression-path fault: the compressed payload of a
	// transfer attempt is corrupted by the codec stage itself (a flaky
	// compression engine), so falling back to the uncompressed path
	// genuinely avoids it — unlike wire corruption, which hits any bytes.
	KindCodec
	// KindChunk is one chunk of a pipelined (or chunked-relay) transfer.
	// Chunk decisions key on a dedicated identity that carries the chunk
	// index as its own hash field (chunkKey), so chunk fates never alias
	// each other or any whole-message event regardless of how large the
	// sequence number or chunk count grows.
	KindChunk
	// KindChunkFate covers the chunk-specific delivery fates — duplicate
	// and reorder — drawn once per chunk (not per attempt).
	KindChunkFate
	// KindLink is a link-level fabric fate: a node pair's link goes hard
	// down for a seeded outage window (and deterministically heals), or
	// flaps with a seeded phase — periodically down for a duty fraction of
	// each cycle. Link fates are drawn once per unordered node pair.
	KindLink
	// KindPartition is an operator-specified network partition: every link
	// crossing the configured node groups is down for the [PartitionAt,
	// PartitionHeal) window. No randomness — the plan IS the fate.
	KindPartition
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRTS:
		return "RTS"
	case KindCTS:
		return "CTS"
	case KindData:
		return "data"
	case KindEager:
		return "eager"
	case KindCrash:
		return "crash"
	case KindSilence:
		return "silence"
	case KindCodec:
		return "codec"
	case KindChunk:
		return "chunk"
	case KindChunkFate:
		return "chunk-fate"
	case KindLink:
		return "link"
	case KindPartition:
		return "partition"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultDegradeFactor is the bandwidth multiplier applied during a
// degraded window when Config.DegradeFactor is zero.
const DefaultDegradeFactor = 0.25

// DefaultDegradeWindow is the duration of one degrade decision window when
// Config.DegradeWindow is zero: the link's fate is re-rolled per window.
const DefaultDegradeWindow = simtime.Millisecond

// DefaultMaxFlips bounds the bit flips applied to one corrupted payload
// when Config.MaxFlips is zero.
const DefaultMaxFlips = 4

// DefaultFailWindow is the virtual-time horizon within which a fated
// rank's crash/silence onset is drawn when Config.FailWindow is zero.
const DefaultFailWindow = 2 * simtime.Millisecond

// Config describes the fault model of one run. The zero value injects
// nothing (Enabled reports false).
type Config struct {
	// Seed drives every decision; two runs with equal seeds and equal
	// communication plans see identical faults.
	Seed int64
	// CorruptRate is the per-attempt probability that a payload transfer
	// (rendezvous data or eager message) arrives with flipped bits.
	CorruptRate float64
	// DropRate is the per-attempt probability that a message (RTS, CTS,
	// data, or eager) is lost on the wire.
	DropRate float64
	// DegradeRate is the per-window probability that a node pair's link
	// runs at DegradeFactor of its nominal bandwidth.
	DegradeRate float64
	// DegradeFactor is the bandwidth multiplier inside a degraded window
	// (0 means DefaultDegradeFactor).
	DegradeFactor float64
	// DegradeWindow is the granularity of degrade decisions on the
	// virtual clock (0 means DefaultDegradeWindow).
	DegradeWindow simtime.Duration
	// MaxFlips bounds the bit flips per corrupted payload (0 means
	// DefaultMaxFlips).
	MaxFlips int
	// CrashRate is the per-rank probability of a crash-stop failure: the
	// rank halts at a seeded onset instant within FailWindow.
	CrashRate float64
	// SilentRate is the per-rank probability of a silent-peer failure
	// (evaluated only for ranks that did not draw a crash): the rank's
	// traffic stops reaching the fabric at the onset instant.
	SilentRate float64
	// FailWindow is the virtual-time horizon for crash/silence onsets
	// (0 means DefaultFailWindow).
	FailWindow simtime.Duration
	// CodecRate is the per-attempt probability that the codec stage
	// corrupts a *compressed* payload transfer. Uncompressed payloads are
	// immune, which is what makes circuit-breaker fallback effective.
	CodecRate float64
	// CodecUntil, when positive, limits codec faults to transfer attempts
	// whose ready instant is before this virtual time — a flaky codec
	// that heals, used to exercise breaker half-open -> closed.
	CodecUntil simtime.Duration
	// ChunkDropRate / ChunkCorruptRate are the per-attempt probabilities
	// that one chunk of a pipelined transfer is lost or bit-flipped.
	// Zero falls back to DropRate / CorruptRate, so a generic lossy-wire
	// config exercises the chunked path too; a non-zero value targets
	// chunks specifically.
	ChunkDropRate    float64
	ChunkCorruptRate float64
	// ChunkDuplicateRate is the per-chunk probability that the fabric
	// delivers a chunk twice: the duplicate burns wire bandwidth but the
	// receiver discards it by (seq, chunk) identity.
	ChunkDuplicateRate float64
	// ChunkReorderRate is the per-chunk probability that a chunk is held
	// back in the fabric by ReorderDelay, landing after its successors —
	// the receiver must reassemble out of order.
	ChunkReorderRate float64
	// ReorderDelay is the holdback applied to a reordered chunk (0 means
	// DefaultReorderDelay).
	ReorderDelay simtime.Duration
	// LinkDownRate is the per-node-pair probability that the pair's link
	// suffers a hard outage: down from a seeded onset within LinkWindow,
	// healed deterministically LinkOutage later. Intra-node "links" (a
	// rank pair on one node) never draw link fates.
	LinkDownRate float64
	// LinkOutage is the duration of a hard link outage (0 means
	// DefaultLinkOutage).
	LinkOutage simtime.Duration
	// LinkFlapRate is the per-node-pair probability the link flaps:
	// periodically down for FlapDuty of each FlapPeriod cycle, with a
	// seeded phase. Evaluated only for pairs that did not draw an outage.
	LinkFlapRate float64
	// FlapPeriod is the flap cycle length (0 means DefaultFlapPeriod).
	FlapPeriod simtime.Duration
	// FlapDuty is the down fraction of each flap cycle, clamped to
	// (0, 1); 0 means DefaultFlapDuty.
	FlapDuty float64
	// LinkWindow is the virtual-time horizon within which outage onsets
	// are drawn (0 means DefaultFailWindow, matching rank fates).
	LinkWindow simtime.Duration
	// PartitionGroups, when non-empty, is an explicit partition plan over
	// node ids: during [PartitionAt, PartitionHeal) every link between
	// nodes in *different* groups is down. Nodes absent from every group
	// keep all their links (only listed cross-group pairs sever).
	PartitionGroups [][]int
	// PartitionAt / PartitionHeal bound the partition window. A heal at
	// or before the onset gets DefaultPartitionSpan added at the onset.
	PartitionAt   simtime.Duration
	PartitionHeal simtime.Duration
}

// DefaultReorderDelay is the fabric holdback of a reordered chunk when
// Config.ReorderDelay is zero: long enough to land a chunk after several
// successors at realistic chunk transfer times.
const DefaultReorderDelay = 200 * simtime.Microsecond

// DefaultLinkOutage is a hard link outage's duration when Config.LinkOutage
// is zero: long enough that several delivery attempts hit the dead link,
// short enough that the transport's exponential backoff (20us doubling to a
// 10ms cap, 8 attempts) can ride it out without exhausting the budget.
const DefaultLinkOutage = 600 * simtime.Microsecond

// DefaultFlapPeriod is the flap cycle length when Config.FlapPeriod is zero.
const DefaultFlapPeriod = 400 * simtime.Microsecond

// DefaultFlapDuty is the down fraction of a flap cycle when Config.FlapDuty
// is zero or out of range: down 1/4 of every cycle.
const DefaultFlapDuty = 0.25

// DefaultPartitionSpan is the partition window length when the configured
// heal instant does not lie after the onset.
const DefaultPartitionSpan = simtime.Millisecond

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.CorruptRate > 0 || c.DropRate > 0 || c.DegradeRate > 0 ||
		c.CrashRate > 0 || c.SilentRate > 0 || c.CodecRate > 0 ||
		c.ChunkDropRate > 0 || c.ChunkCorruptRate > 0 ||
		c.ChunkDuplicateRate > 0 || c.ChunkReorderRate > 0 ||
		c.LinkDownRate > 0 || c.LinkFlapRate > 0 || len(c.PartitionGroups) > 0
}

// LinkFaults reports whether the configuration can take links down at all
// (outages, flaps, or an explicit partition plan). The transport only
// consults the link model — and collectives only build a non-identity
// routing view — when this is set, so fault-free runs stay bit-identical.
func (c Config) LinkFaults() bool {
	return c.LinkDownRate > 0 || c.LinkFlapRate > 0 || len(c.PartitionGroups) > 0
}

func (c Config) withDefaults() Config {
	if c.DegradeFactor <= 0 || c.DegradeFactor > 1 {
		c.DegradeFactor = DefaultDegradeFactor
	}
	if c.DegradeWindow <= 0 {
		c.DegradeWindow = DefaultDegradeWindow
	}
	if c.MaxFlips <= 0 {
		c.MaxFlips = DefaultMaxFlips
	}
	if c.FailWindow <= 0 {
		c.FailWindow = DefaultFailWindow
	}
	if c.ReorderDelay <= 0 {
		c.ReorderDelay = DefaultReorderDelay
	}
	if c.LinkOutage <= 0 {
		c.LinkOutage = DefaultLinkOutage
	}
	if c.FlapPeriod <= 0 {
		c.FlapPeriod = DefaultFlapPeriod
	}
	if c.FlapDuty <= 0 || c.FlapDuty >= 1 {
		c.FlapDuty = DefaultFlapDuty
	}
	if c.LinkWindow <= 0 {
		c.LinkWindow = c.FailWindow
	}
	if len(c.PartitionGroups) > 0 && c.PartitionHeal <= c.PartitionAt {
		c.PartitionHeal = c.PartitionAt + DefaultPartitionSpan
	}
	return c
}

// Stats is a snapshot of injected-fault counters.
type Stats struct {
	// Drops / Corruptions / Degrades count injected faults by class.
	Drops       int64
	Corruptions int64
	Degrades    int64
	// BitsFlipped totals the flipped bits over all corruptions (wire and
	// codec alike).
	BitsFlipped int64
	// Crashes / Silences count ranks fated to crash-stop or go silent
	// this run (counted when RankFate assigns the fate, once per rank,
	// so the counters are identical for any host scheduling or worker-
	// pool size).
	Crashes  int64
	Silences int64
	// CodecCorruptions counts compressed-payload corruptions injected by
	// the codec fault path.
	CodecCorruptions int64
	// Duplicates / Reorders count the chunk-specific delivery fates:
	// chunks the fabric delivered twice, and chunks held back to land
	// after their successors.
	Duplicates int64
	Reorders   int64
	// LinkOutages / LinkFlaps count node pairs fated to a hard outage or
	// to flap this run (counted when LinkFate assigns the fate, once per
	// pair, like Crashes/Silences — they survive ResetStats).
	LinkOutages int64
	LinkFlaps   int64
	// LinkDrops counts transmission attempts refused because the link was
	// down at the attempt's ready instant (outage, flap window, or
	// partition alike). Per-event, so ResetStats zeroes it.
	LinkDrops int64
}

// Injector makes the per-event fault decisions. All methods are safe for
// concurrent use and are nil-safe: a nil *Injector injects nothing, so
// call sites need no guards.
type Injector struct {
	cfg Config

	drops       atomic.Int64
	corruptions atomic.Int64
	degrades    atomic.Int64
	bitsFlipped atomic.Int64
	crashes     atomic.Int64
	silences    atomic.Int64
	codecCorr   atomic.Int64
	duplicates  atomic.Int64
	reorders    atomic.Int64
	linkOutages atomic.Int64
	linkFlaps   atomic.Int64
	linkDrops   atomic.Int64
}

// New builds an injector for cfg. It returns nil when cfg injects nothing,
// which callers treat as "fault injection off".
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration (zero value for nil).
func (i *Injector) Config() Config {
	if i == nil {
		return Config{}
	}
	return i.cfg
}

// Stats snapshots the fault counters (zero for nil).
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return Stats{
		Drops:            i.drops.Load(),
		Corruptions:      i.corruptions.Load(),
		Degrades:         i.degrades.Load(),
		BitsFlipped:      i.bitsFlipped.Load(),
		Crashes:          i.crashes.Load(),
		Silences:         i.silences.Load(),
		CodecCorruptions: i.codecCorr.Load(),
		Duplicates:       i.duplicates.Load(),
		Reorders:         i.reorders.Load(),
		LinkOutages:      i.linkOutages.Load(),
		LinkFlaps:        i.linkFlaps.Load(),
		LinkDrops:        i.linkDrops.Load(),
	}
}

// ResetStats zeroes the fault counters (between benchmark repetitions).
// Decisions are stateless, so resetting counters does not change outcomes.
func (i *Injector) ResetStats() {
	if i == nil {
		return
	}
	i.drops.Store(0)
	i.corruptions.Store(0)
	i.degrades.Store(0)
	i.bitsFlipped.Store(0)
	i.codecCorr.Store(0)
	i.duplicates.Store(0)
	i.reorders.Store(0)
	i.linkDrops.Store(0)
	// Crashes/Silences and LinkOutages/LinkFlaps are per-run fate counts,
	// not per-event counters, so they survive a reset: a benchmark
	// repetition does not re-roll fates.
}

// ShouldDrop decides whether transmission attempt `attempt` of message
// (kind, src rank, dst rank, seq) is lost, counting the drop when it is.
func (i *Injector) ShouldDrop(kind Kind, src, dst int, seq uint64, attempt int) bool {
	if i == nil || i.cfg.DropRate <= 0 {
		return false
	}
	if i.uniform(eventKey(uint64(kind), 0x7d0b, src, dst, seq, attempt)) < i.cfg.DropRate {
		i.drops.Add(1)
		return true
	}
	return false
}

// Corrupt decides whether attempt `attempt` of the payload transfer
// (src, dst, seq) is corrupted; when it is, it returns a copy of payload
// with 1..MaxFlips deterministic bit flips and true. Otherwise it returns
// payload unchanged and false. The original slice is never modified — the
// intact bytes must survive for the retransmission.
func (i *Injector) Corrupt(payload []byte, src, dst int, seq uint64, attempt int) ([]byte, bool) {
	if i == nil || i.cfg.CorruptRate <= 0 || len(payload) == 0 {
		return payload, false
	}
	key := eventKey(0xc0, 0x1232, src, dst, seq, attempt)
	if i.uniform(key) >= i.cfg.CorruptRate {
		return payload, false
	}
	wire, flips := i.flipBits(payload, key)
	i.corruptions.Add(1)
	i.bitsFlipped.Add(int64(flips))
	return wire, true
}

// flipBits returns a copy of payload with 1..MaxFlips deterministic bit
// flips derived from the event key, plus the flip count. Shared by the
// wire-corruption and codec-corruption paths.
func (i *Injector) flipBits(payload []byte, key uint64) ([]byte, int) {
	wire := append([]byte(nil), payload...)
	h := splitmix64(uint64(i.cfg.Seed) ^ key ^ 0x9e3779b97f4a7c15)
	flips := 1 + int(h%uint64(i.cfg.MaxFlips))
	for f := 0; f < flips; f++ {
		h = splitmix64(h)
		bit := h % uint64(len(wire)*8)
		wire[bit/8] ^= 1 << (bit % 8)
	}
	return wire, flips
}

// CorruptCodec decides whether the codec stage corrupts attempt `attempt`
// of the *compressed* payload transfer (src, dst, seq) whose transmission
// starts at `at` on the virtual clock; when it does, it returns a flipped
// copy and true. Callers must only invoke it for compressed payloads —
// the uncompressed path bypasses the codec entirely, which is exactly the
// escape hatch the circuit breaker exploits. With Config.CodecUntil set,
// faults stop once `at` passes it (the codec "heals").
func (i *Injector) CorruptCodec(payload []byte, src, dst int, seq uint64, attempt int, at simtime.Time) ([]byte, bool) {
	if i == nil || i.cfg.CodecRate <= 0 || len(payload) == 0 {
		return payload, false
	}
	if i.cfg.CodecUntil > 0 && at >= simtime.Time(i.cfg.CodecUntil) {
		return payload, false
	}
	key := eventKey(uint64(KindCodec), 0x5ec7, src, dst, seq, attempt)
	if i.uniform(key) >= i.cfg.CodecRate {
		return payload, false
	}
	wire, flips := i.flipBits(payload, key)
	i.codecCorr.Add(1)
	i.bitsFlipped.Add(int64(flips))
	return wire, true
}

// RankFate draws rank's process-failure fate: failed=false for a healthy
// rank; otherwise the rank crash-stops (silent=false) or goes silent
// (silent=true) at the returned onset instant, drawn uniformly within
// Config.FailWindow. The crash roll is evaluated first; silence only for
// ranks that did not draw a crash. Fate assignment IS the injection, so
// the Crashes/Silences counters are bumped here — call it exactly once
// per rank per run (mpi.NewWorld does).
func (i *Injector) RankFate(rank int) (onset simtime.Time, silent, failed bool) {
	if i == nil {
		return 0, false, false
	}
	window := i.cfg.FailWindow
	if i.cfg.CrashRate > 0 &&
		i.uniform(eventKey(uint64(KindCrash), 0xc4a5, rank, 0, 0, 0)) < i.cfg.CrashRate {
		u := i.uniform(eventKey(uint64(KindCrash), 0x0a5e, rank, 0, 1, 0))
		i.crashes.Add(1)
		return simtime.Time(float64(window) * u), false, true
	}
	if i.cfg.SilentRate > 0 &&
		i.uniform(eventKey(uint64(KindSilence), 0x511e, rank, 0, 0, 0)) < i.cfg.SilentRate {
		u := i.uniform(eventKey(uint64(KindSilence), 0x0a5e, rank, 0, 1, 0))
		i.silences.Add(1)
		return simtime.Time(float64(window) * u), true, true
	}
	return 0, false, false
}

// BandwidthFactor returns the link-bandwidth multiplier for a transfer
// between srcNode and dstNode starting at `at`: 1 on a healthy window,
// Config.DegradeFactor inside a degraded one. Windows are DegradeWindow
// long on the virtual clock, so degradation is transient and, like every
// other decision, reproducible from the seed.
func (i *Injector) BandwidthFactor(srcNode, dstNode int, at simtime.Time) float64 {
	if i == nil || i.cfg.DegradeRate <= 0 {
		return 1
	}
	window := uint64(at / simtime.Time(i.cfg.DegradeWindow))
	if i.uniform(eventKey(0xde, 0x6a3d, srcNode, dstNode, window, 0)) < i.cfg.DegradeRate {
		i.degrades.Add(1)
		return i.cfg.DegradeFactor
	}
	return 1
}

// --- chunk-granular fates ---
//
// Chunk decisions hash a dedicated identity (chunkKey) that mixes the
// chunk index as its own field, never packed into the sequence number:
// the old seq<<16|index packing aliased (seq=0, chunk=65536) with
// (seq=1, chunk=0) and silently truncated once a sequence number reached
// the high bits. Distinct (seq, chunk) pairs now feed distinct hash
// inputs, so chunk fates are collision-free and independent of every
// whole-message event of the same message.

// ShouldDropChunk decides whether attempt `attempt` of chunk `chunk` of
// message (src, dst, seq) is lost. ChunkDropRate governs when set;
// otherwise the generic DropRate applies to chunks too.
func (i *Injector) ShouldDropChunk(src, dst int, seq uint64, chunk, attempt int) bool {
	if i == nil {
		return false
	}
	rate := i.cfg.ChunkDropRate
	if rate <= 0 {
		rate = i.cfg.DropRate
	}
	if rate <= 0 {
		return false
	}
	if i.uniform(chunkKey(uint64(KindChunk), 0x7d0b, src, dst, seq, chunk, attempt)) < rate {
		i.drops.Add(1)
		return true
	}
	return false
}

// CorruptChunk is Corrupt for one chunk of a pipelined transfer, keyed by
// the collision-free chunk identity. ChunkCorruptRate governs when set;
// otherwise the generic CorruptRate applies.
func (i *Injector) CorruptChunk(payload []byte, src, dst int, seq uint64, chunk, attempt int) ([]byte, bool) {
	if i == nil || len(payload) == 0 {
		return payload, false
	}
	rate := i.cfg.ChunkCorruptRate
	if rate <= 0 {
		rate = i.cfg.CorruptRate
	}
	if rate <= 0 {
		return payload, false
	}
	key := chunkKey(0xc0, 0x1232, src, dst, seq, chunk, attempt)
	if i.uniform(key) >= rate {
		return payload, false
	}
	wire, flips := i.flipBits(payload, key)
	i.corruptions.Add(1)
	i.bitsFlipped.Add(int64(flips))
	return wire, true
}

// CorruptCodecChunk is CorruptCodec for one chunk: same CodecRate and
// CodecUntil healing, chunk-granular identity. Callers must only invoke it
// for compressed chunks.
func (i *Injector) CorruptCodecChunk(payload []byte, src, dst int, seq uint64, chunk, attempt int, at simtime.Time) ([]byte, bool) {
	if i == nil || i.cfg.CodecRate <= 0 || len(payload) == 0 {
		return payload, false
	}
	if i.cfg.CodecUntil > 0 && at >= simtime.Time(i.cfg.CodecUntil) {
		return payload, false
	}
	key := chunkKey(uint64(KindCodec), 0x5ec7, src, dst, seq, chunk, attempt)
	if i.uniform(key) >= i.cfg.CodecRate {
		return payload, false
	}
	wire, flips := i.flipBits(payload, key)
	i.codecCorr.Add(1)
	i.bitsFlipped.Add(int64(flips))
	return wire, true
}

// ChunkFate draws chunk (src, dst, seq, chunk)'s delivery fate, once per
// chunk (not per attempt): duplicate means the fabric delivers the chunk
// twice (the copy burns bandwidth; the receiver discards it by identity);
// reorder means the chunk is held back by Config.ReorderDelay so it lands
// after its successors. The fates are independent rolls and may combine.
func (i *Injector) ChunkFate(src, dst int, seq uint64, chunk int) (duplicate, reorder bool) {
	if i == nil {
		return false, false
	}
	if i.cfg.ChunkDuplicateRate > 0 &&
		i.uniform(chunkKey(uint64(KindChunkFate), 0xd0b1, src, dst, seq, chunk, 0)) < i.cfg.ChunkDuplicateRate {
		i.duplicates.Add(1)
		duplicate = true
	}
	if i.cfg.ChunkReorderRate > 0 &&
		i.uniform(chunkKey(uint64(KindChunkFate), 0x0ede, src, dst, seq, chunk, 0)) < i.cfg.ChunkReorderRate {
		i.reorders.Add(1)
		reorder = true
	}
	return duplicate, reorder
}

// --- link-level fates ---
//
// Link fates are per unordered node pair and, like rank fates, static: the
// draw is a pure hash of (seed, pair), the outage/flap windows are pure
// arithmetic on the virtual clock, and healing is deterministic. Whether a
// transfer attempt sees a dead link therefore depends only on the plan —
// never on host scheduling — which is what lets the self-healing
// collectives promise bit-identical recovery across worker counts.

// LinkFate describes a node pair's static link fate.
type LinkFate struct {
	// Down reports a hard outage: the link is dead during
	// [DownAt, HealAt) and healthy outside it.
	Down   bool
	DownAt simtime.Time
	HealAt simtime.Time
	// Flap reports a flapping link: down whenever
	// ((at - Phase) mod Period) < Duty*Period.
	Flap   bool
	Period simtime.Duration
	Duty   float64
	Phase  simtime.Duration
}

// LinkFate draws the static fate of the (a, b) node link, counting outage/
// flap fates as it does (fate assignment IS the injection, like RankFate) —
// call it exactly once per unordered pair per run (mpi.NewWorld does).
// Intra-node pairs (a == b) and nil injectors are always healthy. Use
// LinkDown / LinkLost for per-attempt queries; they redraw the fate without
// touching the counters.
func (i *Injector) LinkFate(a, b int) LinkFate {
	f := i.linkFate(a, b)
	if f.Down {
		i.linkOutages.Add(1)
	}
	if f.Flap {
		i.linkFlaps.Add(1)
	}
	return f
}

// linkFate is the pure (uncounted) fate draw behind LinkFate and LinkDown.
func (i *Injector) linkFate(a, b int) LinkFate {
	if i == nil || a == b {
		return LinkFate{}
	}
	if a > b {
		a, b = b, a
	}
	var f LinkFate
	if i.cfg.LinkDownRate > 0 &&
		i.uniform(eventKey(uint64(KindLink), 0xdead, a, b, 0, 0)) < i.cfg.LinkDownRate {
		u := i.uniform(eventKey(uint64(KindLink), 0x0a5e, a, b, 1, 0))
		f.Down = true
		f.DownAt = simtime.Time(float64(i.cfg.LinkWindow) * u)
		f.HealAt = f.DownAt.Add(i.cfg.LinkOutage)
		return f
	}
	if i.cfg.LinkFlapRate > 0 &&
		i.uniform(eventKey(uint64(KindLink), 0xf1a9, a, b, 0, 0)) < i.cfg.LinkFlapRate {
		u := i.uniform(eventKey(uint64(KindLink), 0x9a5e, a, b, 1, 0))
		f.Flap = true
		f.Period = i.cfg.FlapPeriod
		f.Duty = i.cfg.FlapDuty
		f.Phase = simtime.Duration(float64(f.Period) * u)
	}
	return f
}

// IsDown reports whether the fate makes the link dead at instant `at`.
func (f LinkFate) IsDown(at simtime.Time) bool {
	if f.Down && at >= f.DownAt && at < f.HealAt {
		return true
	}
	if f.Flap {
		pos := (simtime.Duration(at) - f.Phase) % f.Period
		if pos < 0 {
			pos += f.Period
		}
		if float64(pos) < f.Duty*float64(f.Period) {
			return true
		}
	}
	return false
}

// partitioned reports whether the explicit partition plan severs the (a, b)
// node link at instant `at`: both nodes listed, in different groups, inside
// the [PartitionAt, PartitionHeal) window.
func (c Config) partitioned(a, b int, at simtime.Time) bool {
	if len(c.PartitionGroups) == 0 ||
		at < simtime.Time(c.PartitionAt) || at >= simtime.Time(c.PartitionHeal) {
		return false
	}
	ga, gb := -1, -1
	for g, nodes := range c.PartitionGroups {
		for _, n := range nodes {
			if n == a {
				ga = g
			}
			if n == b {
				gb = g
			}
		}
	}
	return ga >= 0 && gb >= 0 && ga != gb
}

// LinkDown reports whether the (a, b) node link is down at instant `at` —
// hard outage window, flap down-phase, or explicit partition. Pure query:
// no counters move, so routing views and tests can probe freely.
func (i *Injector) LinkDown(a, b int, at simtime.Time) bool {
	if i == nil || a == b {
		return false
	}
	if i.cfg.partitioned(a, b, at) {
		return true
	}
	return i.linkFate(a, b).IsDown(at)
}

// PeekLinkFate is LinkFate without the counter side effects: the pure
// static fate of the (a, b) node link, for routing views and monitors that
// probe pairs repeatedly.
func (i *Injector) PeekLinkFate(a, b int) LinkFate {
	return i.linkFate(a, b)
}

// LinkFaulted reports whether the (a, b) node link is fated to go down at
// any point this run — hard outage, flap, or severed by the partition plan.
// Static (no time argument): this is what routing views are rebuilt from,
// so a rebuilt route is itself a pure function of the seed.
func (i *Injector) LinkFaulted(a, b int) bool {
	if i == nil || a == b {
		return false
	}
	f := i.linkFate(a, b)
	return f.Down || f.Flap || i.cfg.partitioned(a, b, simtime.Time(i.cfg.PartitionAt))
}

// LinkLost is LinkDown for an actual transmission attempt: when the link is
// down it counts the refused attempt in Stats.LinkDrops and returns true.
// The transport calls this, treats true as a wire drop, and retries after
// backoff — deterministic heal times mean the retry schedule can ride out
// an outage.
func (i *Injector) LinkLost(a, b int, at simtime.Time) bool {
	if i != nil && i.LinkDown(a, b, at) {
		i.linkDrops.Add(1)
		return true
	}
	return false
}

// chunkKey is eventKey with the chunk index as a dedicated hash field —
// the collision-free chunk identity space.
func chunkKey(kind, salt uint64, src, dst int, seq uint64, chunk, attempt int) uint64 {
	h := splitmix64(kind ^ salt<<8)
	h = splitmix64(h ^ uint64(uint32(src)))
	h = splitmix64(h ^ uint64(uint32(dst)))
	h = splitmix64(h ^ seq)
	h = splitmix64(h ^ uint64(uint32(chunk)))
	h = splitmix64(h ^ uint64(uint32(attempt)))
	return h
}

// uniform maps an event key to [0, 1) under the injector's seed.
func (i *Injector) uniform(key uint64) float64 {
	h := splitmix64(uint64(i.cfg.Seed) ^ key)
	return float64(h>>11) / float64(1<<53)
}

// eventKey packs an event's identity into one well-mixed 64-bit value.
func eventKey(kind, salt uint64, src, dst int, seq uint64, attempt int) uint64 {
	h := splitmix64(kind ^ salt<<8)
	h = splitmix64(h ^ uint64(uint32(src)))
	h = splitmix64(h ^ uint64(uint32(dst)))
	h = splitmix64(h ^ seq)
	h = splitmix64(h ^ uint64(uint32(attempt)))
	return h
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-distributed 64-bit
// mixing function (Steele, Lea, Flood — "Fast splittable pseudorandom
// number generators", OOPSLA 2014).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
