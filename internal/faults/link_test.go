package faults

import (
	"testing"

	"mpicomp/internal/simtime"
)

// findLinkSeed returns a seed for which the (0,1) node pair draws a hard
// outage under cfg, so tests can pin behavior without hardcoding a seed
// that a hash tweak would silently invalidate.
func findLinkSeed(t *testing.T, cfg Config) int64 {
	t.Helper()
	for seed := int64(1); seed < 20000; seed++ {
		c := cfg
		c.Seed = seed
		if New(c).linkFate(0, 1).Down {
			return seed
		}
	}
	t.Fatal("no seed under 20000 fates link (0,1) down")
	return 0
}

func TestLinkFateDeterministicAndSymmetric(t *testing.T) {
	cfg := Config{Seed: 7, LinkDownRate: 0.3, LinkFlapRate: 0.3}
	a := New(cfg)
	b := New(cfg)
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			fa := a.linkFate(x, y)
			if fb := b.linkFate(x, y); fa != fb {
				t.Fatalf("fate(%d,%d) differs across injectors: %+v vs %+v", x, y, fa, fb)
			}
			if sym := a.linkFate(y, x); fa != sym {
				t.Fatalf("fate(%d,%d) not symmetric: %+v vs %+v", x, y, fa, sym)
			}
		}
	}
	if f := a.linkFate(3, 3); f.Down || f.Flap {
		t.Fatalf("intra-node pair drew a link fate: %+v", f)
	}
}

func TestLinkOutageWindowAndHeal(t *testing.T) {
	cfg := Config{LinkDownRate: 0.5, LinkOutage: 300 * simtime.Microsecond}
	cfg.Seed = findLinkSeed(t, cfg)
	inj := New(cfg)
	f := inj.linkFate(0, 1)
	if !f.Down || f.HealAt != f.DownAt.Add(300*simtime.Microsecond) {
		t.Fatalf("outage fate wrong: %+v", f)
	}
	if inj.LinkDown(0, 1, f.DownAt.Add(-1)) {
		t.Fatal("down before onset")
	}
	if !inj.LinkDown(0, 1, f.DownAt) || !inj.LinkDown(0, 1, f.HealAt.Add(-1)) {
		t.Fatal("not down inside the outage window")
	}
	if inj.LinkDown(0, 1, f.HealAt) {
		t.Fatal("heal is not deterministic: still down at HealAt")
	}
}

func TestLinkFlapDuty(t *testing.T) {
	cfg := Config{Seed: 1, LinkFlapRate: 1, FlapPeriod: 100 * simtime.Microsecond, FlapDuty: 0.25}
	inj := New(cfg)
	f := inj.linkFate(0, 1)
	if !f.Flap || f.Phase < 0 || f.Phase >= f.Period {
		t.Fatalf("flap fate wrong: %+v", f)
	}
	// Sample one full cycle at 1us granularity: the down fraction must
	// match the duty, and the pattern must repeat each period.
	down := 0
	for us := 0; us < 100; us++ {
		at := f.DownAt.Add(simtime.Duration(us) * simtime.Microsecond)
		if f.IsDown(at) {
			down++
		}
		if f.IsDown(at) != f.IsDown(at.Add(f.Period)) {
			t.Fatalf("flap pattern not periodic at %v", at)
		}
	}
	if down != 25 {
		t.Fatalf("duty 0.25 over a 100us period: %d samples down, want 25", down)
	}
}

func TestPartitionWindow(t *testing.T) {
	cfg := Config{
		Seed:            3,
		PartitionGroups: [][]int{{0, 1}, {2, 3}},
		PartitionAt:     500 * simtime.Microsecond,
		PartitionHeal:   simtime.Duration(1500 * simtime.Microsecond),
	}
	inj := New(cfg)
	mid := simtime.Time(simtime.Millisecond)
	if inj.LinkDown(0, 1, mid) || inj.LinkDown(2, 3, mid) {
		t.Fatal("intra-group link severed")
	}
	if !inj.LinkDown(0, 2, mid) || !inj.LinkDown(1, 3, mid) || !inj.LinkDown(2, 0, mid) {
		t.Fatal("cross-group link up inside the partition window")
	}
	if inj.LinkDown(0, 2, simtime.Time(cfg.PartitionAt)-1) {
		t.Fatal("partitioned before onset")
	}
	if inj.LinkDown(0, 2, simtime.Time(cfg.PartitionHeal)) {
		t.Fatal("partitioned at heal instant")
	}
	// Node 4 appears in no group: all its links survive.
	if inj.LinkDown(0, 4, mid) || inj.LinkDown(4, 2, mid) {
		t.Fatal("unlisted node lost links")
	}
}

func TestPartitionHealDefault(t *testing.T) {
	cfg := Config{Seed: 1, PartitionGroups: [][]int{{0}, {1}}, PartitionAt: simtime.Duration(simtime.Millisecond)}
	inj := New(cfg)
	eff := inj.Config()
	if eff.PartitionHeal != cfg.PartitionAt+DefaultPartitionSpan {
		t.Fatalf("heal default: %v", eff.PartitionHeal)
	}
}

func TestLinkLostCountsAndFateCounters(t *testing.T) {
	cfg := Config{LinkDownRate: 0.5}
	cfg.Seed = findLinkSeed(t, cfg)
	inj := New(cfg)
	f := inj.LinkFate(0, 1) // the one counted draw
	if got := inj.Stats().LinkOutages; got != 1 {
		t.Fatalf("LinkOutages after fate draw: %d", got)
	}
	if !inj.LinkLost(0, 1, f.DownAt) || !inj.LinkLost(1, 0, f.DownAt) {
		t.Fatal("LinkLost false inside outage")
	}
	if inj.LinkLost(0, 1, f.HealAt) {
		t.Fatal("LinkLost true after heal")
	}
	s := inj.Stats()
	if s.LinkDrops != 2 {
		t.Fatalf("LinkDrops: %d, want 2", s.LinkDrops)
	}
	inj.ResetStats()
	s = inj.Stats()
	if s.LinkDrops != 0 || s.LinkOutages != 1 {
		t.Fatalf("after reset: drops=%d outages=%d (fates must survive, events must not)", s.LinkDrops, s.LinkOutages)
	}
}

func TestLinkFaultsEnabled(t *testing.T) {
	if (Config{}).LinkFaults() {
		t.Fatal("zero config reports link faults")
	}
	if !(Config{LinkFlapRate: 0.1}).Enabled() {
		t.Fatal("flap-only config not Enabled")
	}
	if New(Config{PartitionGroups: [][]int{{0}, {1}}}) == nil {
		t.Fatal("partition-only config yields nil injector")
	}
	var nilInj *Injector
	if nilInj.LinkDown(0, 1, 0) || nilInj.LinkLost(0, 1, 0) {
		t.Fatal("nil injector takes links down")
	}
	if f := nilInj.LinkFate(0, 1); f.Down || f.Flap {
		t.Fatal("nil injector draws link fates")
	}
}
