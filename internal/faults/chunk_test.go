package faults

import (
	"bytes"
	"testing"
)

// TestChunkIdentityCollisionFree is the regression test for the packed
// chunk identity the transport used to hash: deliverData was called with
// seq<<16|chunk, so (seq=1, chunk=0) and (seq=0, chunk=65536) were the
// same event and always shared one fate. Distinct (seq, chunk) pairs that
// collide under that packing must now decide independently.
func TestChunkIdentityCollisionFree(t *testing.T) {
	inj := New(Config{Seed: 7, ChunkDropRate: 0.5})
	type id struct {
		seq   uint64
		chunk int
	}
	agree, n := 0, 0
	for s := uint64(1); s <= 64; s++ {
		// Both identities pack to s<<16 under the old scheme.
		a := id{seq: s, chunk: 0}
		b := id{seq: 0, chunk: int(s << 16)}
		da := inj.ShouldDropChunk(1, 2, a.seq, a.chunk, 0)
		db := inj.ShouldDropChunk(1, 2, b.seq, b.chunk, 0)
		if da == db {
			agree++
		}
		n++
	}
	if agree == n {
		t.Fatalf("all %d old-scheme-colliding chunk pairs share a fate; chunk identity still aliases", n)
	}
}

// TestChunkDecisionsDeterministic: identical (seed, identity) tuples must
// decide identically across injectors and call orders, for every
// chunk-granular fate.
func TestChunkDecisionsDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 21, ChunkDropRate: 0.3, ChunkCorruptRate: 0.3,
		ChunkDuplicateRate: 0.3, ChunkReorderRate: 0.3, CodecRate: 0.3,
	}
	a, b := New(cfg), New(cfg)
	payload := bytes.Repeat([]byte{0x5A}, 64)
	type result struct {
		drop, corrupted, codec, dup, reorder bool
		wire, codecWire                      []byte
	}
	query := func(inj *Injector, seq uint64, chunk, attempt int) result {
		var r result
		r.drop = inj.ShouldDropChunk(0, 1, seq, chunk, attempt)
		r.wire, r.corrupted = inj.CorruptChunk(payload, 0, 1, seq, chunk, attempt)
		r.codecWire, r.codec = inj.CorruptCodecChunk(payload, 0, 1, seq, chunk, attempt, 0)
		r.dup, r.reorder = inj.ChunkFate(0, 1, seq, chunk)
		return r
	}
	const n = 64
	got := make([]result, n)
	for i := 0; i < n; i++ {
		got[i] = query(a, uint64(i/8), i%8, i%3)
	}
	for i := n - 1; i >= 0; i-- {
		r := query(b, uint64(i/8), i%8, i%3)
		if r.drop != got[i].drop || r.corrupted != got[i].corrupted ||
			r.codec != got[i].codec || r.dup != got[i].dup || r.reorder != got[i].reorder {
			t.Fatalf("event %d: chunk decisions diverged between injectors", i)
		}
		if !bytes.Equal(r.wire, got[i].wire) || !bytes.Equal(r.codecWire, got[i].codecWire) {
			t.Fatalf("event %d: chunk corruption pattern diverged", i)
		}
	}
}

// TestChunkRatesFallBackToMessageRates: with no chunk-specific rate set,
// the generic drop/corrupt rates govern chunks too, so "drop=0.01" in a
// fault spec exercises the pipelined path without extra keys.
func TestChunkRatesFallBackToMessageRates(t *testing.T) {
	inj := New(Config{Seed: 3, DropRate: 1, CorruptRate: 1})
	if !inj.ShouldDropChunk(0, 1, 9, 2, 0) {
		t.Error("DropRate=1 did not drop a chunk")
	}
	payload := []byte{1, 2, 3, 4}
	if _, hit := inj.CorruptChunk(payload, 0, 1, 9, 2, 1); !hit {
		t.Error("CorruptRate=1 did not corrupt a chunk")
	}
	// Chunk-specific rates win when set.
	quiet := New(Config{Seed: 3, DropRate: 1, ChunkDropRate: 0.0000001})
	drops := 0
	for c := 0; c < 64; c++ {
		if quiet.ShouldDropChunk(0, 1, 9, c, 0) {
			drops++
		}
	}
	if drops > 1 {
		t.Errorf("near-zero ChunkDropRate dropped %d/64 chunks under DropRate=1", drops)
	}
}

// TestChunkFateCountsAndRates: fates draw once per chunk at roughly the
// configured rates, land in the stats, and clear on reset.
func TestChunkFateCountsAndRates(t *testing.T) {
	inj := New(Config{Seed: 13, ChunkDuplicateRate: 0.25, ChunkReorderRate: 0.1})
	const n = 20000
	dups, reorders := 0, 0
	for c := 0; c < n; c++ {
		d, r := inj.ChunkFate(0, 1, uint64(c/64), c%64)
		if d {
			dups++
		}
		if r {
			reorders++
		}
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if frac < want*0.85 || frac > want*1.15 {
			t.Errorf("%s rate %.4f, want ~%.2f", name, frac, want)
		}
	}
	check("duplicate", dups, 0.25)
	check("reorder", reorders, 0.1)
	st := inj.Stats()
	if st.Duplicates != int64(dups) || st.Reorders != int64(reorders) {
		t.Fatalf("stats %+v disagree with observed %d/%d", st, dups, reorders)
	}
	inj.ResetStats()
	st = inj.Stats()
	if st.Duplicates != 0 || st.Reorders != 0 {
		t.Errorf("fate counters survived reset: %+v", st)
	}
}

// TestChunkNilAndDisabled: the nil injector and chunk-rate-free configs
// must leave chunks untouched, and chunk rates alone must enable a config.
func TestChunkNilAndDisabled(t *testing.T) {
	var nilInj *Injector
	if nilInj.ShouldDropChunk(0, 1, 0, 0, 0) {
		t.Error("nil injector dropped a chunk")
	}
	p := []byte{1, 2, 3}
	if _, hit := nilInj.CorruptChunk(p, 0, 1, 0, 0, 0); hit {
		t.Error("nil injector corrupted a chunk")
	}
	if _, hit := nilInj.CorruptCodecChunk(p, 0, 1, 0, 0, 0, 0); hit {
		t.Error("nil injector codec-corrupted a chunk")
	}
	if d, r := nilInj.ChunkFate(0, 1, 0, 0); d || r {
		t.Error("nil injector drew a chunk fate")
	}
	for _, cfg := range []Config{
		{ChunkDropRate: 0.1},
		{ChunkCorruptRate: 0.1},
		{ChunkDuplicateRate: 0.1},
		{ChunkReorderRate: 0.1},
	} {
		if !cfg.Enabled() {
			t.Errorf("config %+v not enabled", cfg)
		}
		if New(cfg) == nil {
			t.Errorf("config %+v yielded a nil injector", cfg)
		}
	}
	// ReorderDelay defaults when any chunk fate is possible.
	if got := New(Config{ChunkReorderRate: 0.1}).Config().ReorderDelay; got != DefaultReorderDelay {
		t.Errorf("ReorderDelay defaulted to %v, want %v", got, DefaultReorderDelay)
	}
}

// TestChunkKindsDecideIndependently: a chunk's drop, corruption, and fate
// draws must not correlate with each other or with the whole-message data
// fate of the same (src, dst, seq).
func TestChunkKindsDecideIndependently(t *testing.T) {
	inj := New(Config{Seed: 5, DropRate: 0.5, ChunkDropRate: 0.5, ChunkDuplicateRate: 0.5})
	sameMsg, sameFate := 0, 0
	const n = 4096
	for i := 0; i < n; i++ {
		chunkDrop := inj.ShouldDropChunk(1, 2, uint64(i), 0, 0)
		msgDrop := inj.ShouldDrop(KindData, 1, 2, uint64(i), 0)
		dup, _ := inj.ChunkFate(1, 2, uint64(i), 0)
		if chunkDrop == msgDrop {
			sameMsg++
		}
		if chunkDrop == dup {
			sameFate++
		}
	}
	//simlint:orderok error reporting over a 2-entry map; order does not affect outcomes
	for name, same := range map[string]int{"chunk-vs-message": sameMsg, "drop-vs-fate": sameFate} {
		if same < n*2/5 || same > n*3/5 {
			t.Errorf("%s correlated: %d/%d agreements at rate 0.5", name, same, n)
		}
	}
}
