package faults

import (
	"bytes"
	"testing"

	"mpicomp/internal/simtime"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var i *Injector
	if i.ShouldDrop(KindData, 0, 1, 0, 0) {
		t.Fatal("nil injector dropped a message")
	}
	p := []byte{1, 2, 3}
	if _, corrupted := i.Corrupt(p, 0, 1, 0, 0); corrupted {
		t.Fatal("nil injector corrupted a payload")
	}
	if f := i.BandwidthFactor(0, 1, 0); f != 1 {
		t.Fatalf("nil injector degraded bandwidth: %v", f)
	}
	if s := i.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector has stats: %+v", s)
	}
}

func TestDisabledConfigYieldsNil(t *testing.T) {
	if New(Config{Seed: 42}) != nil {
		t.Fatal("config with no rates must yield a nil injector")
	}
	if !(Config{DropRate: 0.1}).Enabled() {
		t.Fatal("drop rate must enable the config")
	}
}

// TestDecisionsAreDeterministic: the same (seed, event) tuple must decide
// identically across injector instances and call orders.
func TestDecisionsAreDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, DropRate: 0.3, CorruptRate: 0.3, DegradeRate: 0.3}
	a, b := New(cfg), New(cfg)
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Query b in reverse order to prove order independence.
	type result struct {
		drop      bool
		corrupted bool
		wire      []byte
		factor    float64
	}
	query := func(inj *Injector, seq uint64, attempt int) result {
		var r result
		r.drop = inj.ShouldDrop(KindData, 3, 5, seq, attempt)
		r.wire, r.corrupted = inj.Corrupt(payload, 3, 5, seq, attempt)
		r.factor = inj.BandwidthFactor(0, 1, simtime.Time(seq)*simtime.Time(simtime.Millisecond))
		return r
	}
	const n = 64
	got := make([]result, n)
	for i := 0; i < n; i++ {
		got[i] = query(a, uint64(i), i%3)
	}
	for i := n - 1; i >= 0; i-- {
		r := query(b, uint64(i), i%3)
		if r.drop != got[i].drop || r.corrupted != got[i].corrupted || r.factor != got[i].factor {
			t.Fatalf("event %d: decisions diverged between injectors", i)
		}
		if !bytes.Equal(r.wire, got[i].wire) {
			t.Fatalf("event %d: corruption pattern diverged", i)
		}
	}
}

func TestCorruptPreservesOriginal(t *testing.T) {
	inj := New(Config{Seed: 1, CorruptRate: 1})
	payload := bytes.Repeat([]byte{0xAA}, 128)
	orig := append([]byte(nil), payload...)
	wire, corrupted := inj.Corrupt(payload, 0, 1, 9, 0)
	if !corrupted {
		t.Fatal("rate-1 corruption did not fire")
	}
	if !bytes.Equal(payload, orig) {
		t.Fatal("Corrupt modified the caller's payload")
	}
	if bytes.Equal(wire, orig) {
		t.Fatal("corrupted wire copy equals the original")
	}
	maxFlips := inj.Config().MaxFlips
	flips := 0
	for i := range wire {
		for b := 0; b < 8; b++ {
			if (wire[i]^orig[i])>>b&1 == 1 {
				flips++
			}
		}
	}
	if flips < 1 || flips > maxFlips {
		t.Fatalf("flipped %d bits, want 1..%d", flips, maxFlips)
	}
}

// TestRatesApproximatelyHonored: over many independent events the empirical
// rates must land near the configured probabilities.
func TestRatesApproximatelyHonored(t *testing.T) {
	inj := New(Config{Seed: 99, DropRate: 0.25, CorruptRate: 0.1, DegradeRate: 0.5})
	payload := []byte{1, 2, 3, 4}
	const n = 20000
	var drops, corrupts, degrades int
	for i := 0; i < n; i++ {
		if inj.ShouldDrop(KindRTS, 0, 1, uint64(i), 0) {
			drops++
		}
		if _, c := inj.Corrupt(payload, 0, 1, uint64(i), 0); c {
			corrupts++
		}
		if inj.BandwidthFactor(0, 1, simtime.Time(i)*simtime.Time(simtime.Millisecond)) < 1 {
			degrades++
		}
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if frac < want*0.85 || frac > want*1.15 {
			t.Errorf("%s rate %.4f, want ~%.2f", name, frac, want)
		}
	}
	check("drop", drops, 0.25)
	check("corrupt", corrupts, 0.1)
	check("degrade", degrades, 0.5)
	s := inj.Stats()
	if s.Drops != int64(drops) || s.Corruptions != int64(corrupts) || s.Degrades != int64(degrades) {
		t.Fatalf("stats %+v disagree with observed counts %d/%d/%d", s, drops, corrupts, degrades)
	}
	inj.ResetStats()
	if inj.Stats() != (Stats{}) {
		t.Fatal("ResetStats left counters nonzero")
	}
}

// TestKindsDecideIndependently: the same (src,dst,seq,attempt) must not
// share one fate across kinds, or an RTS drop would always imply a CTS drop.
func TestKindsDecideIndependently(t *testing.T) {
	inj := New(Config{Seed: 5, DropRate: 0.5})
	same := 0
	const n = 4096
	for i := 0; i < n; i++ {
		a := inj.ShouldDrop(KindRTS, 1, 2, uint64(i), 0)
		b := inj.ShouldDrop(KindCTS, 1, 2, uint64(i), 0)
		if a == b {
			same++
		}
	}
	if same < n*2/5 || same > n*3/5 {
		t.Fatalf("kinds correlated: %d/%d agreements at rate 0.5", same, n)
	}
}

// TestDegradeWindowsAreTransient: with rate 0.5 a node pair must see both
// healthy and degraded windows over time.
func TestDegradeWindowsAreTransient(t *testing.T) {
	inj := New(Config{Seed: 11, DegradeRate: 0.5})
	healthy, degraded := 0, 0
	for wdw := 0; wdw < 200; wdw++ {
		at := simtime.Time(wdw) * simtime.Time(DefaultDegradeWindow)
		if inj.BandwidthFactor(2, 3, at) < 1 {
			degraded++
		} else {
			healthy++
		}
		// Within one window the decision must be stable.
		if inj.BandwidthFactor(2, 3, at) != inj.BandwidthFactor(2, 3, at.Add(DefaultDegradeWindow/2)) {
			t.Fatal("decision flipped inside one window")
		}
	}
	if healthy == 0 || degraded == 0 {
		t.Fatalf("degradation not transient: %d healthy, %d degraded", healthy, degraded)
	}
}

func TestRankFateDeterministicAndCounted(t *testing.T) {
	cfg := Config{Seed: 17, CrashRate: 0.3, SilentRate: 0.3, FailWindow: 500 * simtime.Microsecond}
	const ranks = 64
	draw := func() (onsets []simtime.Time, silents, faileds []bool, st Stats) {
		i := New(cfg)
		for r := 0; r < ranks; r++ {
			onset, silent, failed := i.RankFate(r)
			onsets = append(onsets, onset)
			silents = append(silents, silent)
			faileds = append(faileds, failed)
		}
		return onsets, silents, faileds, i.Stats()
	}
	onsets, silents, faileds, st := draw()
	o2, s2, f2, st2 := draw()
	crashes, silences := int64(0), int64(0)
	for r := 0; r < ranks; r++ {
		if onsets[r] != o2[r] || silents[r] != s2[r] || faileds[r] != f2[r] {
			t.Fatalf("rank %d fate differs across identical injectors", r)
		}
		if !faileds[r] {
			if onsets[r] != 0 || silents[r] {
				t.Errorf("healthy rank %d got onset=%v silent=%v", r, onsets[r], silents[r])
			}
			continue
		}
		if onsets[r] < 0 || onsets[r] >= simtime.Time(cfg.FailWindow) {
			t.Errorf("rank %d onset %v outside [0, %v)", r, onsets[r], cfg.FailWindow)
		}
		if silents[r] {
			silences++
		} else {
			crashes++
		}
	}
	if crashes == 0 || silences == 0 {
		t.Fatalf("seed produced crashes=%d silences=%d; pick rates that exercise both", crashes, silences)
	}
	if st.Crashes != crashes || st.Silences != silences {
		t.Errorf("stats crashes=%d silences=%d, counted %d and %d", st.Crashes, st.Silences, crashes, silences)
	}
	if st != st2 {
		t.Errorf("fate counters differ across identical injectors: %+v vs %+v", st, st2)
	}
}

func TestResetStatsKeepsFateCounters(t *testing.T) {
	i := New(Config{Seed: 17, CrashRate: 1, CodecRate: 1})
	i.RankFate(0)
	if _, hit := i.CorruptCodec([]byte{1, 2, 3, 4}, 0, 1, 0, 0, 0); !hit {
		t.Fatal("CodecRate=1 did not corrupt")
	}
	st := i.Stats()
	if st.Crashes != 1 || st.CodecCorruptions != 1 {
		t.Fatalf("precondition: %+v", st)
	}
	i.ResetStats()
	st = i.Stats()
	if st.CodecCorruptions != 0 || st.BitsFlipped != 0 {
		t.Errorf("per-event counters survived reset: %+v", st)
	}
	if st.Crashes != 1 {
		t.Errorf("per-run fate counter was cleared by reset: %+v", st)
	}
}

func TestCorruptCodec(t *testing.T) {
	payload := []byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80}

	// Rate 1: every compressed payload corrupts, the original is preserved.
	i := New(Config{Seed: 3, CodecRate: 1})
	orig := append([]byte(nil), payload...)
	wire, hit := i.CorruptCodec(payload, 0, 1, 9, 0, 0)
	if !hit {
		t.Fatal("CodecRate=1 did not corrupt")
	}
	if !bytes.Equal(payload, orig) {
		t.Fatal("CorruptCodec mutated the caller's payload")
	}
	if bytes.Equal(wire, payload) {
		t.Fatal("corrupted wire equals the original payload")
	}
	if st := i.Stats(); st.CodecCorruptions != 1 || st.BitsFlipped == 0 {
		t.Errorf("stats after one corruption: %+v", st)
	}

	// Identical identity -> identical corruption; a different attempt
	// draws independently.
	wire2, _ := New(Config{Seed: 3, CodecRate: 1}).CorruptCodec(payload, 0, 1, 9, 0, 0)
	if !bytes.Equal(wire, wire2) {
		t.Error("same event identity corrupted differently")
	}

	// Rate 0 and the nil injector are no-ops.
	if _, hit := New(Config{Seed: 3, DropRate: 0.5}).CorruptCodec(payload, 0, 1, 9, 0, 0); hit {
		t.Error("CodecRate=0 corrupted")
	}
	var nilInj *Injector
	if w, hit := nilInj.CorruptCodec(payload, 0, 1, 9, 0, 0); hit || !bytes.Equal(w, payload) {
		t.Error("nil injector corrupted")
	}

	// CodecUntil heals the codec: instants at or past the bound pass
	// untouched, instants before it still corrupt.
	h := New(Config{Seed: 3, CodecRate: 1, CodecUntil: 100 * simtime.Microsecond})
	if _, hit := h.CorruptCodec(payload, 0, 1, 9, 0, simtime.Time(100*simtime.Microsecond)); hit {
		t.Error("healed codec still corrupts at the bound")
	}
	if _, hit := h.CorruptCodec(payload, 0, 1, 9, 0, simtime.Time(99*simtime.Microsecond)); !hit {
		t.Error("codec already healed before CodecUntil")
	}

	// Empty payloads cannot corrupt.
	if _, hit := i.CorruptCodec(nil, 0, 1, 9, 0, 0); hit {
		t.Error("empty payload corrupted")
	}
}

func TestCrashConfigEnables(t *testing.T) {
	for _, cfg := range []Config{
		{CrashRate: 0.1},
		{SilentRate: 0.1},
		{CodecRate: 0.1},
	} {
		if New(cfg) == nil {
			t.Errorf("config %+v yielded a nil injector", cfg)
		}
	}
	if New(Config{Seed: 5}) != nil {
		t.Error("seed alone enabled injection")
	}
	// FailWindow defaults when a failure rate is set.
	if got := New(Config{CrashRate: 0.1}).Config().FailWindow; got != DefaultFailWindow {
		t.Errorf("FailWindow defaulted to %v, want %v", got, DefaultFailWindow)
	}
}
