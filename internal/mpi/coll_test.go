package mpi

import (
	"fmt"
	"strings"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/datasets"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
)

func runColl(t *testing.T, opt Options, fn func(r *Rank) error) []simtime.Time {
	t.Helper()
	w := mustWorld(t, opt)
	times, err := w.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	return times
}

func TestBarrier(t *testing.T) {
	for _, size := range []struct{ nodes, ppn int }{{1, 1}, {2, 2}, {3, 2}, {4, 4}} {
		runColl(t, Options{Cluster: hw.Longhorn(), Nodes: size.nodes, PPN: size.ppn}, func(r *Rank) error {
			// Skew the clocks, then barrier; afterwards all ranks
			// must have advanced past the maximum skew.
			r.Clock.Advance(simtime.Duration(r.ID()) * simtime.Millisecond)
			if err := r.Barrier(); err != nil {
				return err
			}
			minAfter := simtime.Duration(r.Size()-1) * simtime.Millisecond
			if r.Clock.Now() < simtime.Time(minAfter) {
				t.Errorf("rank %d finished barrier at %v before slowest rank's start", r.ID(), r.Clock.Now())
			}
			return nil
		})
	}
}

func TestBcastCorrectness(t *testing.T) {
	vals := datasets.Smooth(1<<19, 1, 1e-3) // 2 MB
	for _, root := range []int{0, 3} {
		for _, cfg := range []core.Config{
			{},
			{Mode: core.ModeOpt, Algorithm: core.AlgoMPC},
		} {
			runColl(t, Options{Cluster: hw.FronteraLiquid(), Nodes: 4, PPN: 2, Engine: cfg}, func(r *Rank) error {
				buf := emptyDevBuf(r, len(vals))
				if r.ID() == root {
					copy(buf.Data, core.FloatsToBytes(nil, vals))
				}
				if err := r.Bcast(root, buf); err != nil {
					return err
				}
				got := core.BytesToFloats(buf.Data)
				for i := range vals {
					if got[i] != vals[i] {
						t.Errorf("rank %d: bcast(root=%d) value %d wrong", r.ID(), root, i)
						return nil
					}
				}
				return nil
			})
		}
	}
}

func TestAllgatherCorrectness(t *testing.T) {
	const blkVals = 1 << 17 // 512 KB blocks
	for _, cfg := range []core.Config{
		{},
		{Mode: core.ModeOpt, Algorithm: core.AlgoMPC},
	} {
		runColl(t, Options{Cluster: hw.FronteraLiquid(), Nodes: 4, PPN: 2, Engine: cfg}, func(r *Rank) error {
			mine := datasets.Smooth(blkVals, uint64(r.ID()+1), 1e-3)
			send := devBuf(r, mine)
			recv := emptyDevBuf(r, blkVals*r.Size())
			if err := r.Allgather(send, recv); err != nil {
				return err
			}
			all := core.BytesToFloats(recv.Data)
			for rank := 0; rank < r.Size(); rank++ {
				want := datasets.Smooth(blkVals, uint64(rank+1), 1e-3)
				for i := 0; i < blkVals; i += blkVals / 7 {
					if all[rank*blkVals+i] != want[i] {
						t.Errorf("rank %d: allgather block %d value %d wrong", r.ID(), rank, i)
						return nil
					}
				}
			}
			return nil
		})
	}
}

func TestGatherScatter(t *testing.T) {
	const blkVals = 1024
	runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 2}, func(r *Rank) error {
		// Gather: rank i contributes constant vector of value i.
		mine := make([]float32, blkVals)
		for i := range mine {
			mine[i] = float32(r.ID())
		}
		var gathered *gpusim.Buffer
		if r.ID() == 1 {
			gathered = emptyDevBuf(r, blkVals*r.Size())
		} else {
			gathered = emptyDevBuf(r, 0)
		}
		if err := r.Gather(1, devBuf(r, mine), gathered); err != nil {
			return err
		}
		if r.ID() == 1 {
			all := core.BytesToFloats(gathered.Data)
			for rank := 0; rank < r.Size(); rank++ {
				if all[rank*blkVals] != float32(rank) {
					t.Errorf("gather block %d wrong: %v", rank, all[rank*blkVals])
				}
			}
		}
		// Scatter back: rank 1 distributes blocks labeled by target.
		var src *gpusim.Buffer
		if r.ID() == 1 {
			payload := make([]float32, blkVals*r.Size())
			for rank := 0; rank < r.Size(); rank++ {
				for i := 0; i < blkVals; i++ {
					payload[rank*blkVals+i] = float32(10 + rank)
				}
			}
			src = devBuf(r, payload)
		} else {
			src = emptyDevBuf(r, 0)
		}
		dst := emptyDevBuf(r, blkVals)
		if err := r.Scatter(1, src, dst); err != nil {
			return err
		}
		got := core.BytesToFloats(dst.Data)
		if got[0] != float32(10+r.ID()) || got[blkVals-1] != float32(10+r.ID()) {
			t.Errorf("rank %d: scatter payload wrong: %v", r.ID(), got[0])
		}
		return nil
	})
}

func TestReduceAndAllreduceSum(t *testing.T) {
	const n = 4096
	runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 2}, func(r *Rank) error {
		mine := make([]float32, n)
		for i := range mine {
			mine[i] = float32(r.ID() + 1)
		}
		want := float32(1 + 2 + 3 + 4)
		out := emptyDevBuf(r, n)
		if err := r.ReduceSum(0, devBuf(r, mine), out); err != nil {
			return err
		}
		if r.ID() == 0 {
			got := core.BytesToFloats(out.Data)
			if got[0] != want || got[n-1] != want {
				t.Errorf("reduce sum wrong: %v want %v", got[0], want)
			}
		}
		out2 := emptyDevBuf(r, n)
		if err := r.AllreduceSum(devBuf(r, mine), out2); err != nil {
			return err
		}
		got := core.BytesToFloats(out2.Data)
		if got[0] != want || got[n/2] != want {
			t.Errorf("rank %d: allreduce sum wrong: %v want %v", r.ID(), got[0], want)
		}
		return nil
	})
}

func TestAlltoallCorrectness(t *testing.T) {
	const blkVals = 2048
	for _, layout := range []struct{ nodes, ppn int }{{4, 1}, {3, 1}} { // pow2 and non-pow2
		runColl(t, Options{Cluster: hw.Longhorn(), Nodes: layout.nodes, PPN: layout.ppn}, func(r *Rank) error {
			size := r.Size()
			send := make([]float32, blkVals*size)
			for dst := 0; dst < size; dst++ {
				for i := 0; i < blkVals; i++ {
					send[dst*blkVals+i] = float32(100*r.ID() + dst)
				}
			}
			recv := emptyDevBuf(r, blkVals*size)
			if err := r.Alltoall(devBuf(r, send), recv); err != nil {
				return err
			}
			got := core.BytesToFloats(recv.Data)
			for src := 0; src < size; src++ {
				want := float32(100*src + r.ID())
				if got[src*blkVals] != want || got[src*blkVals+blkVals-1] != want {
					t.Errorf("rank %d: alltoall block from %d wrong: %v want %v (size %d)",
						r.ID(), src, got[src*blkVals], want, size)
					return nil
				}
			}
			return nil
		})
	}
}

func TestBcastCompressionSpeedsUpLargeMessages(t *testing.T) {
	vals := datasets.Smooth(2<<20, 9, 1e-4) // 8 MB, smooth -> compressible
	measure := func(cfg core.Config) simtime.Duration {
		w := mustWorld(t, Options{Cluster: hw.FronteraLiquid(), Nodes: 4, PPN: 2, Engine: cfg})
		times, err := w.Run(func(r *Rank) error {
			buf := devBuf(r, vals)
			return r.Bcast(0, buf)
		})
		if err != nil {
			t.Fatal(err)
		}
		return simtime.Duration(MaxTime(times))
	}
	base := measure(core.Config{Mode: core.ModeOff})
	comp := measure(core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 8})
	if comp >= base {
		t.Fatalf("compressed bcast (%v) should beat baseline (%v)", comp, base)
	}
}

func TestWorldAccessors(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 3, PPN: 2})
	if w.Nodes() != 3 || w.PPN() != 2 || w.Cluster().Name != "Longhorn" {
		t.Fatalf("accessors wrong: %d %d %s", w.Nodes(), w.PPN(), w.Cluster().Name)
	}
	if w.Fabric() == nil {
		t.Fatal("fabric missing")
	}
	_, err := w.Run(func(r *Rank) error {
		if r.World() != w {
			t.Error("rank.World mismatch")
		}
		r.Clock.Advance(100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w.ResetClocks()
	for i := 0; i < w.Size(); i++ {
		if w.Rank(i).Clock.Now() != 0 {
			t.Fatal("ResetClocks failed")
		}
	}
}

func TestCollectiveValidation(t *testing.T) {
	runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 1, PPN: 2}, func(r *Rank) error {
		if err := r.Bcast(9, emptyDevBuf(r, 4)); err == nil {
			t.Error("bcast bad root should fail")
		}
		if err := r.Allgather(emptyDevBuf(r, 4), emptyDevBuf(r, 4)); err == nil {
			t.Error("allgather size mismatch should fail")
		}
		odd := &gpusim.Buffer{Data: make([]byte, 5), Loc: gpusim.Device, Dev: r.Dev}
		if err := r.Alltoall(odd, odd); err == nil {
			t.Error("alltoall indivisible buffer should fail")
		}
		if err := r.Gather(-2, emptyDevBuf(r, 4), emptyDevBuf(r, 8)); err == nil {
			t.Error("gather bad root should fail")
		}
		if err := r.Scatter(99, emptyDevBuf(r, 8), emptyDevBuf(r, 4)); err == nil {
			t.Error("scatter bad root should fail")
		}
		if err := r.ReduceSum(42, emptyDevBuf(r, 4), emptyDevBuf(r, 4)); err == nil {
			t.Error("reduce bad root should fail")
		}
		return nil
	})
	// Size-mismatch at the root rank only.
	runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 1, PPN: 2}, func(r *Rank) error {
		if r.ID() == 0 {
			if err := r.Gather(0, emptyDevBuf(r, 4), emptyDevBuf(r, 4)); err == nil {
				t.Error("gather recv size mismatch should fail at root")
			}
			// Unblock peer's send (internal tag namespace, so the
			// unexported variant).
			buf := emptyDevBuf(r, 4)
			return r.recv(1, internalTagBase-3 /* tagGather */, buf)
		}
		return r.Gather(0, emptyDevBuf(r, 4), nil)
	})
}

func TestAllreduceSingleRank(t *testing.T) {
	runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 1, PPN: 1}, func(r *Rank) error {
		in := devBuf(r, []float32{3, 4})
		out := emptyDevBuf(r, 2)
		if err := r.AllreduceSum(in, out); err != nil {
			return err
		}
		got := core.BytesToFloats(out.Data)
		if got[0] != 3 || got[1] != 4 {
			t.Errorf("single-rank allreduce wrong: %v", got)
		}
		return nil
	})
}

func TestBcastScatterAllgather(t *testing.T) {
	vals := datasets.Smooth(1<<20, 41, 1e-3) // 4 MB
	for _, cfg := range []core.Config{
		{},
		{Mode: core.ModeOpt, Algorithm: core.AlgoMPC},
	} {
		runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 4, PPN: 2, Engine: cfg}, func(r *Rank) error {
			buf := emptyDevBuf(r, len(vals))
			if r.ID() == 2 {
				copy(buf.Data, core.FloatsToBytes(nil, vals))
			}
			if err := r.BcastScatterAllgather(2, buf); err != nil {
				return err
			}
			got := core.BytesToFloats(buf.Data)
			for i := 0; i < len(vals); i += 997 {
				if got[i] != vals[i] {
					t.Errorf("rank %d: value %d wrong", r.ID(), i)
					return nil
				}
			}
			return nil
		})
	}
	// Non-divisible sizes fall back to the binomial tree.
	runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 3, PPN: 1}, func(r *Rank) error {
		odd := &gpusim.Buffer{Data: make([]byte, 100), Loc: gpusim.Device, Dev: r.Dev}
		if r.ID() == 0 {
			for i := range odd.Data {
				odd.Data[i] = 7
			}
		}
		if err := r.BcastScatterAllgather(0, odd); err != nil {
			return err
		}
		if odd.Data[50] != 7 {
			t.Errorf("rank %d: fallback bcast wrong", r.ID())
		}
		return nil
	})
}

func TestScatterAllgatherBeatsBinomialUncompressed(t *testing.T) {
	// Without compression, the bandwidth-optimal algorithm must beat the
	// binomial tree for large messages at 8 ranks (2S/B vs 3S/B).
	vals := datasets.Smooth(4<<20, 43, 1e-3) // 16 MB
	measure := func(f func(r *Rank, buf *gpusim.Buffer) error) simtime.Duration {
		w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 8, PPN: 1})
		times, err := w.Run(func(r *Rank) error {
			buf := devBuf(r, vals)
			return f(r, buf)
		})
		if err != nil {
			t.Fatal(err)
		}
		return simtime.Duration(MaxTime(times))
	}
	binomial := measure(func(r *Rank, buf *gpusim.Buffer) error { return r.Bcast(0, buf) })
	sag := measure(func(r *Rank, buf *gpusim.Buffer) error { return r.BcastScatterAllgather(0, buf) })
	if sag >= binomial {
		t.Fatalf("scatter-allgather (%v) should beat binomial (%v) at 16MB x 8 ranks", sag, binomial)
	}
}

func TestBcastHierarchical(t *testing.T) {
	vals := datasets.Smooth(1<<19, 53, 1e-3) // 2 MB
	for _, root := range []int{0, 5} {
		for _, cfg := range []core.Config{
			{},
			{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, Dynamic: true},
		} {
			runColl(t, Options{Cluster: hw.Lassen(), Nodes: 3, PPN: 4, Engine: cfg}, func(r *Rank) error {
				buf := emptyDevBuf(r, len(vals))
				if r.ID() == root {
					copy(buf.Data, core.FloatsToBytes(nil, vals))
				}
				if err := r.BcastHierarchical(root, buf); err != nil {
					return err
				}
				got := core.BytesToFloats(buf.Data)
				for i := 0; i < len(vals); i += 1013 {
					if got[i] != vals[i] {
						t.Errorf("rank %d root %d: value %d wrong", r.ID(), root, i)
						return nil
					}
				}
				return nil
			})
		}
	}
	// Degenerate layouts fall back to the flat tree.
	runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 4, PPN: 1}, func(r *Rank) error {
		buf := devBuf(r, []float32{float32(7)})
		return r.BcastHierarchical(0, buf)
	})
}

func TestRunPropagatesErrors(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 1, PPN: 2})
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			return fmt.Errorf("rank 1 exploded")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("rank error should propagate: %v", err)
	}
	// Panics are recovered into errors.
	w2 := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 1, PPN: 2})
	_, err = w2.Run(func(r *Rank) error {
		if r.ID() == 0 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic should become an error: %v", err)
	}
}

func TestRingAllreduceSum(t *testing.T) {
	const n = 1 << 16 // 256 KB, divisible by every size below
	for _, layout := range []struct{ nodes, ppn int }{{1, 1}, {2, 2}, {3, 1}, {4, 2}} {
		for _, cfg := range []core.Config{
			{},
			{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, Threshold: 16 << 10, PoolBufBytes: 1 << 20},
		} {
			runColl(t, Options{Cluster: hw.Longhorn(), Nodes: layout.nodes, PPN: layout.ppn, Engine: cfg}, func(r *Rank) error {
				mine := make([]float32, n)
				for i := range mine {
					mine[i] = float32(r.ID() + 1)
				}
				want := float32(r.Size() * (r.Size() + 1) / 2)
				out := emptyDevBuf(r, n)
				if err := r.RingAllreduceSum(devBuf(r, mine), out); err != nil {
					return err
				}
				got := core.BytesToFloats(out.Data)
				for i := 0; i < n; i += 509 {
					if got[i] != want {
						t.Errorf("rank %d/%d: value %d = %v want %v", r.ID(), r.Size(), i, got[i], want)
						return nil
					}
				}
				return nil
			})
		}
	}
	// Indivisible sizes fall back to reduce+bcast.
	runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 3, PPN: 1}, func(r *Rank) error {
		odd := devBuf(r, []float32{1, 2, 3, 4, 5})
		out := emptyDevBuf(r, 5)
		if err := r.RingAllreduceSum(odd, out); err != nil {
			return err
		}
		if core.BytesToFloats(out.Data)[4] != 15 {
			t.Errorf("rank %d: fallback allreduce wrong", r.ID())
		}
		return nil
	})
}

func TestRingAllreduceBeatsTreeAtLargeSizes(t *testing.T) {
	const n = 4 << 20 // 16 MB
	measure := func(f func(r *Rank, in, out *gpusim.Buffer) error) simtime.Duration {
		w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 8, PPN: 1})
		times, err := w.Run(func(r *Rank) error {
			in := emptyDevBuf(r, n)
			out := emptyDevBuf(r, n)
			return f(r, in, out)
		})
		if err != nil {
			t.Fatal(err)
		}
		return simtime.Duration(MaxTime(times))
	}
	tree := measure(func(r *Rank, in, out *gpusim.Buffer) error { return r.AllreduceSum(in, out) })
	ring := measure(func(r *Rank, in, out *gpusim.Buffer) error { return r.RingAllreduceSum(in, out) })
	if ring >= tree {
		t.Fatalf("ring allreduce (%v) should beat reduce+bcast (%v) at 16MB x 8 ranks", ring, tree)
	}
}
