package mpi

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"mpicomp/internal/core"
	"mpicomp/internal/datasets"
	"mpicomp/internal/dtype"
	"mpicomp/internal/faults"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
)

// Chaos soak: the fault injector supplies drops, bit flips, and degraded
// links; these tests assert the transport's contract under that adversary —
// either a message is delivered with exactly the bytes that were sent
// (MPC, lossless) or within the codec's error bound (ZFP), or Wait returns
// a typed error; never a hang, never silent corruption.

// TestChaosP2PSweep replays a seeded random point-to-point plan (eager,
// rendezvous, and compressed sizes) through a faulty fabric and verifies
// every delivered message bit-exactly.
func TestChaosP2PSweep(t *testing.T) {
	const (
		ranks = 8
		msgs  = 80
	)
	type transfer struct {
		src, dst, tag, words int
	}
	rng := rand.New(rand.NewSource(99))
	plan := make([]transfer, msgs)
	for i := range plan {
		src := rng.Intn(ranks)
		dst := rng.Intn(ranks - 1)
		if dst >= src {
			dst++
		}
		var words int
		switch rng.Intn(3) {
		case 0:
			words = 1 + rng.Intn(1024) // eager
		case 1:
			words = 4096 + rng.Intn(1<<14) // rendezvous, below threshold
		default:
			words = 1<<16 + rng.Intn(1<<16) // compressed
		}
		plan[i] = transfer{src: src, dst: dst, tag: i, words: words}
	}

	w := mustWorld(t, Options{
		Cluster: hw.Lassen(), Nodes: 2, PPN: 4,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			Threshold: 128 << 10, PoolBufBytes: 2 << 20},
		Faults: &faults.Config{
			Seed: 7, DropRate: 0.08, CorruptRate: 0.08,
			DegradeRate: 0.5, DegradeFactor: 0.5,
		},
	})
	_, err := w.Run(func(r *Rank) error {
		var reqs []*Request
		var checks []func()
		for _, tr := range plan {
			if tr.dst == r.ID() {
				buf := emptyDevBuf(r, tr.words)
				req, err := r.Irecv(tr.src, tr.tag, buf)
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
				tr := tr
				checks = append(checks, func() {
					got := core.BytesToFloats(buf.Data)
					want := float32(tr.src*1000 + tr.tag)
					for i := 0; i < tr.words; i += 499 {
						if got[i] != want+float32(i) {
							t.Errorf("msg %d word %d = %v want %v (lossless path must stay bit-exact under faults)",
								tr.tag, i, got[i], want+float32(i))
							return
						}
					}
				})
			}
		}
		for _, tr := range plan {
			if tr.src == r.ID() {
				vals := make([]float32, tr.words)
				base := float32(tr.src*1000 + tr.tag)
				for i := range vals {
					vals[i] = base + float32(i)
				}
				req, err := r.Isend(tr.dst, tr.tag, devBuf(r, vals))
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
			}
		}
		if err := r.Waitall(reqs...); err != nil {
			return err
		}
		for _, c := range checks {
			c()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("chaos sweep failed: %v", err)
	}
	st := w.FaultStats()
	if st.Drops == 0 || st.Corruptions == 0 || st.Degrades == 0 {
		t.Fatalf("the adversary never showed up: %+v", st)
	}
}

// TestChaosCollectivesZFP pushes the compression-aware collectives (relay
// chains included) through a faulty fabric with a lossy codec: results
// must stay within ZFP's error bound, not merely "look plausible".
func TestChaosCollectivesZFP(t *testing.T) {
	// PipelineChunkBytes routes the ring reduce-scatter (and large
	// point-to-point sends) through the chunk pipeline, so the drop and
	// corruption adversary hits individual chunks too.
	w := mustWorld(t, Options{
		Cluster: hw.FronteraLiquid(), Nodes: 2, PPN: 2,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 16,
			Threshold: 16 << 10, PoolBufBytes: 4 << 20,
			PipelineChunkBytes: 16 << 10},
		Faults: &faults.Config{Seed: 11, DropRate: 0.1, CorruptRate: 0.1},
	})
	const n = 1 << 15 // float32 words
	const tol = 1e-2  // generous bound for rate-16 ZFP on smooth data
	want := make([]float32, n)
	for i := range want {
		want[i] = float32(math.Sin(float64(i) * 0.01))
	}
	_, err := w.Run(func(r *Rank) error {
		buf := emptyDevBuf(r, n)
		if r.ID() == 0 {
			core.FloatsToBytes(buf.Data[:0], want)
		}
		if err := r.Bcast(0, buf); err != nil {
			return err
		}
		got := core.BytesToFloats(buf.Data)
		for i := range got {
			if e := math.Abs(float64(got[i] - want[i])); e > tol {
				t.Errorf("rank %d: bcast word %d off by %g (> %g)", r.ID(), i, e, tol)
				break
			}
		}
		// Every rank now holds ≈want; the ring allreduce must produce
		// ≈size*want on all ranks despite faulty hops.
		out := emptyDevBuf(r, n)
		if err := r.RingAllreduceSum(buf, out); err != nil {
			return err
		}
		sum := core.BytesToFloats(out.Data)
		scale := float64(r.Size())
		for i := 0; i < n; i += 257 {
			if e := math.Abs(float64(sum[i]) - scale*float64(want[i])); e > scale*2*tol {
				t.Errorf("rank %d: allreduce word %d off by %g", r.ID(), i, e)
				break
			}
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatalf("chaos collectives failed: %v", err)
	}
	if st := w.FaultStats(); st.Drops == 0 && st.Corruptions == 0 {
		t.Fatalf("no faults injected: %+v", st)
	}
}

// chaosPingPong runs a deterministic two-rank ping-pong (one message in
// flight at a time, so calendar bookings cannot race) and returns the
// makespan and fault counters.
func chaosPingPong(t *testing.T, cfg *faults.Config) (simtime.Time, faults.Stats) {
	t.Helper()
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			Threshold: 32 << 10, PoolBufBytes: 2 << 20},
		Faults: cfg,
	})
	times, err := w.Run(func(r *Rank) error {
		for it := 0; it < 12; it++ {
			words := 256 << (it % 5) // straddles eager and rendezvous
			vals := make([]float32, words)
			for i := range vals {
				vals[i] = float32(it*words + i)
			}
			if r.ID() == 0 {
				if err := r.Send(1, it, devBuf(r, vals)); err != nil {
					return err
				}
				buf := emptyDevBuf(r, words)
				if err := r.Recv(1, it, buf); err != nil {
					return err
				}
			} else {
				buf := emptyDevBuf(r, words)
				if err := r.Recv(0, it, buf); err != nil {
					return err
				}
				if err := r.Send(0, it, devBuf(r, vals)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return MaxTime(times), w.FaultStats()
}

// TestChaosDeterministic: equal seeds must reproduce the run exactly —
// same makespan, same fault counters — and injected faults can only push
// the virtual timeline later, never earlier, than the clean run.
func TestChaosDeterministic(t *testing.T) {
	cfg := &faults.Config{Seed: 21, DropRate: 0.2, CorruptRate: 0.2}
	m1, s1 := chaosPingPong(t, cfg)
	m2, s2 := chaosPingPong(t, cfg)
	if m1 != m2 {
		t.Fatalf("same seed, different makespans: %v vs %v", m1, m2)
	}
	if s1 != s2 {
		t.Fatalf("same seed, different fault stats: %+v vs %+v", s1, s2)
	}
	if s1.Drops == 0 && s1.Corruptions == 0 {
		t.Fatalf("fault rates of 0.2 injected nothing: %+v", s1)
	}
	clean, cleanStats := chaosPingPong(t, nil)
	if cleanStats != (faults.Stats{}) {
		t.Fatalf("fault-free run counted faults: %+v", cleanStats)
	}
	if m1 < clean {
		t.Fatalf("retries made the timeline shorter: faulty %v < clean %v", m1, clean)
	}
	other, _ := chaosPingPong(t, &faults.Config{Seed: 22, DropRate: 0.2, CorruptRate: 0.2})
	if other == m1 {
		t.Logf("warning: different seeds produced identical makespans (%v); legal but suspicious", m1)
	}
}

// TestRetriesDisabledSurfacesError: with the retry budget off and a fully
// lossy wire, Wait must return a wrapped ErrDeliveryFailed on both sides
// instead of deadlocking. The wall-clock guard is the assertion: the seed
// runtime hung forever here.
func TestRetriesDisabledSurfacesError(t *testing.T) {
	cases := []struct {
		name  string
		words int
		cfg   faults.Config
	}{
		{"eager-dropped", 64, faults.Config{Seed: 3, DropRate: 1}},
		{"rendezvous-dropped", 1 << 16, faults.Config{Seed: 3, DropRate: 1}},
		{"rendezvous-corrupted", 1 << 16, faults.Config{Seed: 3, CorruptRate: 1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w := mustWorld(t, Options{
				Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
				Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
					Threshold: 32 << 10, PoolBufBytes: 2 << 20},
				Faults: &tc.cfg,
				Retry:  RetryPolicy{Limit: -1},
			})
			errc := make(chan error, 1)
			go func() {
				_, err := w.Run(func(r *Rank) error {
					buf := emptyDevBuf(r, tc.words)
					if r.ID() == 0 {
						return r.Send(1, 0, buf)
					}
					return r.Recv(0, 0, buf)
				})
				errc <- err
			}()
			select {
			case err := <-errc:
				if !errors.Is(err, ErrDeliveryFailed) {
					t.Fatalf("want ErrDeliveryFailed, got %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("delivery failure did not unblock the ranks (deadlock)")
			}
		})
	}
}

// TestRetryBudgetRecovers: a finite budget rides out a partially lossy
// wire — the same plan that fails with retries off completes with them on.
func TestRetryBudgetRecovers(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			Threshold: 32 << 10, PoolBufBytes: 2 << 20},
		Faults: &faults.Config{Seed: 5, DropRate: 0.4, CorruptRate: 0.4},
		Retry:  RetryPolicy{Limit: 12, Backoff: 5 * simtime.Microsecond},
	})
	vals := make([]float32, 1<<16)
	for i := range vals {
		vals[i] = float32(i % 777)
	}
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, devBuf(r, vals))
		}
		buf := emptyDevBuf(r, len(vals))
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		got := core.BytesToFloats(buf.Data)
		for i := range got {
			if got[i] != vals[i] {
				t.Errorf("word %d = %v want %v", i, got[i], vals[i])
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry budget should have absorbed the losses: %v", err)
	}
	if st := w.FaultStats(); st.Drops == 0 && st.Corruptions == 0 {
		t.Fatalf("no faults injected: %+v", st)
	}
}

// TestUserTagValidation is the regression test for the tag-range check:
// `tag < 0 && tag > internalTagBase` let any tag at or below
// internalTagBase slip into the collectives' reserved namespace.
func TestUserTagValidation(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 1, PPN: 2})
	_, err := w.Run(func(r *Rank) error {
		buf := emptyDevBuf(r, 16)
		if r.ID() == 0 {
			bad := []int{-1, AnyTag, internalTagBase, internalTagBase - 3, internalTagBase + 1}
			for _, tag := range bad {
				if _, err := r.Isend(1, tag, buf); err == nil {
					t.Errorf("Isend accepted negative user tag %d", tag)
				}
			}
			if _, err := r.Irecv(1, -7, buf); err == nil {
				t.Error("Irecv accepted negative tag")
			}
			// AnyTag stays legal on the receive side.
			req, err := r.Irecv(1, AnyTag, buf)
			if err != nil {
				t.Errorf("Irecv rejected AnyTag: %v", err)
				return nil
			}
			return r.Wait(req)
		}
		return r.Send(0, 5, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosTypedHaloCrash drives the fused typed halo pattern — ring
// neighbors exchanging Subarray3D faces via SendrecvTyped — under
// seeded crash-stop and silent-peer fates, on both the rendezvous and
// the chunk-pipelined tier. The contract matches the collective soak:
// failures only in worlds with fated ranks, every error wraps a typed
// sentinel, and no rank goroutine outlives the run. Seeds can be
// overridden with CHAOS_SEED.
func TestChaosTypedHaloCrash(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		seeds = nil
		for _, s := range strings.Split(env, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				t.Fatalf("CHAOS_SEED %q: %v", env, err)
			}
			seeds = append(seeds, v)
		}
	}
	const nx, ny, nz = 40, 32, 32
	sendFace := dtype.Subarray3D{Dims: [3]int{nx, ny, nz}, Sub: [3]int{4, ny, nz}, Start: [3]int{4, 0, 0}}
	recvFace := dtype.Subarray3D{Dims: [3]int{nx, ny, nz}, Sub: [3]int{4, ny, nz}, Start: [3]int{0, 0, 0}}
	engines := []struct {
		name   string
		engine core.Config
	}{
		{"rendezvous", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, Threshold: 2 << 10}},
		{"pipelined", core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			Threshold: 2 << 10, PipelineChunkBytes: 4 << 10}},
	}
	for _, seed := range seeds {
		for _, eng := range engines {
			fcfg := &faults.Config{
				Seed: seed, CrashRate: 0.18, SilentRate: 0.08,
				FailWindow: 200 * simtime.Microsecond,
			}
			w := mustWorld(t, Options{
				Cluster: hw.Longhorn(), Nodes: 2, PPN: 2,
				Engine: eng.engine, Faults: fcfg,
				Health: HealthPolicy{Deadline: 150 * simtime.Microsecond},
			})
			doomed := w.HealthStats().Doomed
			_, errs := w.RunAll(func(r *Rank) error {
				vals := datasets.Smooth(nx*ny*nz, uint64(seed)+uint64(r.ID()), 1e-3)
				grid := devBuf(r, vals)
				right := (r.ID() + 1) % r.Size()
				left := (r.ID() - 1 + r.Size()) % r.Size()
				for it := 0; it < 6; it++ {
					if err := r.SendrecvTyped(right, it, grid, sendFace, left, it, grid, recvFace); err != nil {
						return err
					}
				}
				return nil
			})
			assertNoRankGoroutines(t)
			for id, err := range errs {
				if err == nil {
					continue
				}
				if len(doomed) == 0 {
					t.Errorf("seed %d %s: rank %d failed in a fault-free world: %v", seed, eng.name, id, err)
					continue
				}
				if !(errors.Is(err, ErrPeerFailed) || errors.Is(err, ErrRankCrashed) || errors.Is(err, ErrRankSilent)) {
					t.Errorf("seed %d %s: rank %d returned an untyped error: %v", seed, eng.name, id, err)
				}
			}
		}
	}
}

// TestChaosCrashSoakCollectives hammers every collective with seeded
// crash-stop and silent-peer fates across several worlds. The contract
// under this adversary: every error wraps one of the typed failure
// sentinels, errors only appear in worlds that actually have fated ranks,
// and no rank goroutine ever hangs. Seeds can be overridden with
// CHAOS_SEED (comma-separated); CHAOS_STATS names a file to receive a
// per-cell summary for CI artifacts.
func TestChaosCrashSoakCollectives(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		seeds = nil
		for _, s := range strings.Split(env, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				t.Fatalf("CHAOS_SEED %q: %v", env, err)
			}
			seeds = append(seeds, v)
		}
	}
	const (
		nodes = 4
		ppn   = 2
		words = 8 << 10
		iters = 8
	)
	colls := []struct {
		name   string
		engine core.Config
		run    func(r *Rank, send, recv *gpusim.Buffer) error
	}{
		{name: "barrier", run: func(r *Rank, _, _ *gpusim.Buffer) error { return r.Barrier() }},
		{name: "bcast", run: func(r *Rank, send, _ *gpusim.Buffer) error { return r.Bcast(0, send) }},
		{name: "allgather", run: func(r *Rank, send, recv *gpusim.Buffer) error {
			return r.Allgather(send.Slice(0, send.Len()/r.Size()), recv)
		}},
		{name: "gather", run: func(r *Rank, send, recv *gpusim.Buffer) error {
			return r.Gather(0, send.Slice(0, send.Len()/r.Size()), recv)
		}},
		{name: "scatter", run: func(r *Rank, send, recv *gpusim.Buffer) error {
			return r.Scatter(0, send, recv.Slice(0, recv.Len()/r.Size()))
		}},
		{name: "reduce", run: func(r *Rank, send, recv *gpusim.Buffer) error { return r.ReduceSum(0, send, recv) }},
		{name: "allreduce", run: func(r *Rank, send, recv *gpusim.Buffer) error { return r.AllreduceSum(send, recv) }},
		{name: "ringallreduce", run: func(r *Rank, send, recv *gpusim.Buffer) error {
			return r.RingAllreduceSum(send, recv)
		}},
		// The pipelined-ring cell crashes ranks mid-stream while the
		// reduce-scatter has several chunk messages in flight per step —
		// the chunk plumbing must surface the same typed errors.
		{name: "ringallreduce-pipelined",
			engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
				Threshold: 2 << 10, PipelineChunkBytes: 1 << 10},
			run: func(r *Rank, send, recv *gpusim.Buffer) error {
				return r.RingAllreduceSum(send, recv)
			}},
		{name: "alltoall", run: func(r *Rank, send, recv *gpusim.Buffer) error { return r.Alltoall(send, recv) }},
	}

	var report strings.Builder
	totalFailures := 0
	for _, seed := range seeds {
		for _, coll := range colls {
			fcfg := &faults.Config{
				Seed: seed, CrashRate: 0.18, SilentRate: 0.08,
				FailWindow: 200 * simtime.Microsecond,
			}
			w := mustWorld(t, Options{
				Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn,
				Engine: coll.engine, Faults: fcfg,
				Health: HealthPolicy{Deadline: 150 * simtime.Microsecond},
			})
			doomed := w.HealthStats().Doomed
			fated := make(map[int]bool, len(doomed))
			for _, id := range doomed {
				fated[id] = true
			}
			vals := make([]float32, words)
			for i := range vals {
				vals[i] = float32(seed) + float32(i%29)
			}
			times, errs := w.RunAll(func(r *Rank) error {
				send := devBuf(r, vals)
				recv := emptyDevBuf(r, words)
				for it := 0; it < iters; it++ {
					if err := coll.run(r, send, recv); err != nil {
						return err
					}
				}
				return nil
			})
			assertNoRankGoroutines(t)
			cellFailures := 0
			for id, err := range errs {
				if err == nil {
					continue
				}
				cellFailures++
				if len(doomed) == 0 {
					t.Errorf("seed %d %s: rank %d failed in a fault-free world: %v", seed, coll.name, id, err)
					continue
				}
				if !(errors.Is(err, ErrPeerFailed) || errors.Is(err, ErrRankCrashed) || errors.Is(err, ErrRankSilent)) {
					t.Errorf("seed %d %s: rank %d returned an untyped error: %v", seed, coll.name, id, err)
				}
			}
			// A fated rank may legitimately finish a cheap collective
			// before its onset arrives, but once its clock passes onset
			// it must not keep reporting success: every MPI entry point
			// checks health, so a nil error with a finish time past the
			// fail window means a missed self-announcement.
			inj := faults.New(*fcfg)
			for id := range fated {
				onset, _, _ := inj.RankFate(id)
				if errs[id] == nil && times[id] > onset+simtime.Time(fcfg.FailWindow) {
					t.Errorf("seed %d %s: fated rank %d (onset %v) completed at %v without noticing its own failure",
						seed, coll.name, id, onset, times[id])
				}
			}
			totalFailures += cellFailures
			hs := w.HealthStats()
			fmt.Fprintf(&report, "seed=%d coll=%s doomed=%v failures=%d wakeups=%d quiets=%d\n",
				seed, coll.name, doomed, cellFailures, hs.WatchdogWakeups, hs.CascadeQuiets)
		}
	}
	if totalFailures == 0 {
		t.Error("soak produced zero failures across all seeds — fault rates too low to exercise anything")
	}
	if path := os.Getenv("CHAOS_STATS"); path != "" {
		if err := os.WriteFile(path, []byte(report.String()), 0o644); err != nil {
			t.Errorf("writing CHAOS_STATS: %v", err)
		}
	}
}
