package mpi

import (
	"hash/crc32"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/faults"
	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
)

// workerSoak replays a fixed traffic mix — compressed point-to-point
// ping-pong plus a bcast and a ring allreduce, over a faulty fabric — with
// the given codec worker-pool size, and returns the makespan, the fault
// counters, and a CRC of every rank's final receive buffers. Everything
// returned must be independent of the worker count.
func workerSoak(t *testing.T, workers int) (simtime.Time, faults.Stats, []uint32) {
	t.Helper()
	const ranks = 4
	w := mustWorld(t, Options{
		Cluster: hw.Lassen(), Nodes: 2, PPN: 2,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			Threshold: 64 << 10, PoolBufBytes: 8 << 20, Workers: workers},
		Faults: &faults.Config{Seed: 33, DropRate: 0.05, CorruptRate: 0.05},
	})
	crcs := make([]uint32, ranks)
	times, err := w.Run(func(r *Rank) error {
		const words = 1 << 18 // 1 MB: compressed, 2 MPC partitions
		peer := r.ID() ^ 1
		vals := make([]float32, words)
		for i := range vals {
			vals[i] = float32(r.ID()*7919) + float32(i%4093)*0.5
		}
		recvBuf := emptyDevBuf(r, words)
		rreq, err := r.Irecv(peer, 1, recvBuf)
		if err != nil {
			return err
		}
		sreq, err := r.Isend(peer, 1, devBuf(r, vals))
		if err != nil {
			return err
		}
		if err := r.Waitall(rreq, sreq); err != nil {
			return err
		}

		bcastBuf := emptyDevBuf(r, words)
		if r.ID() == 0 {
			core.FloatsToBytes(bcastBuf.Data[:0], vals)
		}
		if err := r.Bcast(0, bcastBuf); err != nil {
			return err
		}

		sumBuf := emptyDevBuf(r, words)
		if err := r.RingAllreduceSum(bcastBuf, sumBuf); err != nil {
			return err
		}

		h := crc32.NewIEEE()
		h.Write(recvBuf.Data)
		h.Write(bcastBuf.Data)
		h.Write(sumBuf.Data)
		crcs[r.ID()] = h.Sum32()
		return r.Barrier()
	})
	if err != nil {
		t.Fatalf("workers=%d: soak failed: %v", workers, err)
	}
	return MaxTime(times), w.FaultStats(), crcs
}

// TestWorkerCountSoakDeterminism is the transport-level half of the
// determinism guarantee: the same seeded faulty run produces identical
// makespans, fault counters, and received bytes for codec pool sizes 1,
// 2, and 8 — host parallelism is invisible above the virtual clock.
func TestWorkerCountSoakDeterminism(t *testing.T) {
	refTime, refStats, refCRCs := workerSoak(t, 1)
	if refStats.Drops == 0 && refStats.Corruptions == 0 {
		t.Fatalf("the adversary never showed up: %+v", refStats)
	}
	for _, workers := range []int{2, 8} {
		mt, st, crcs := workerSoak(t, workers)
		if mt != refTime {
			t.Errorf("workers=%d: makespan %v, serial %v", workers, mt, refTime)
		}
		if st != refStats {
			t.Errorf("workers=%d: fault stats %+v, serial %+v", workers, st, refStats)
		}
		for rank, c := range crcs {
			if c != refCRCs[rank] {
				t.Errorf("workers=%d: rank %d data CRC %08x, serial %08x", workers, rank, c, refCRCs[rank])
			}
		}
	}
}
