package mpi

import (
	"errors"
	"fmt"
	"sort"

	"mpicomp/internal/core"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/simtime"
)

// Self-healing collectives (DESIGN.md §14): when a collective loses a rank
// or a link mid-operation, the attempt is revoked, the surviving members
// run a verdict round, the route is rebuilt on the shrunken (or rerouted)
// view, and the operation retries until it completes — the degrade
// ladder's final reroute -> shrink-and-complete rung.
//
// Everything here is deterministic on the virtual clock:
//
//   - Collective tags encode (algorithm, recovery epoch, operation index).
//     The operation index advances in program order on every rank, and the
//     epoch advances only on an agreed retry verdict, so both stay in
//     lockstep without communication and a stale envelope from a revoked
//     attempt can never match a retry's receive.
//   - Revocation propagates like the watchdog's failure announcements:
//     each rank that abandons the attempt publishes a quit record in every
//     mailbox in its own program order, waking partners blocked on it at
//     max(their post time, its abort instant) + Deadline. Real messages a
//     rank sent before quitting stay consumable, and both sides of every
//     quit-vs-traffic race compute the same wake instant, so host
//     scheduling cannot reorder or reshape the cascade.
//   - The verdict round's coordinator and member order come from the fixed
//     live set, and its decision is a pure OR over member failure votes.

// Per-algorithm tag base offsets. The first nine match the historical
// fixed-tag iota order, so operation 0 at epoch 0 produces exactly the
// pre-heal tag values. The two verdict bases are the recovery control
// plane; they are exempt from revocation (the verdict must outlive the
// attempt it judges).
const (
	baseBarrier = iota
	baseBcast
	baseAllgather
	baseGather
	baseScatter
	baseReduce
	baseAlltoall
	baseAllreduce
	baseAlltoallv
	baseVerdictFlag
	baseVerdictReply
	numCollBases
)

// collTagStride spaces the (epoch, op) contexts in the tag namespace;
// healMaxEpochs bounds recovery epochs per run (a backstop far above
// MaxAttempts, not a tunable).
const (
	collTagStride = 16
	healMaxEpochs = 64
)

// collTag builds the wire tag for one algorithm step of this rank's
// current collective operation at its current recovery epoch.
func (r *Rank) collTag(base int) int {
	return internalTagBase - (base + collTagStride*(r.healEpoch+healMaxEpochs*int(r.curOp)))
}

// collTagInfo inverts collTag. ok is false for tags outside the collective
// namespace (user tags, AnyTag).
func collTagInfo(tag int) (base, epoch int, op uint64, ok bool) {
	d := internalTagBase - tag
	if d < 0 {
		return 0, 0, 0, false
	}
	rest := d / collTagStride
	return d % collTagStride, rest % healMaxEpochs, uint64(rest / healMaxEpochs), true
}

// opEnter opens a collective-operation scope, reporting whether this is
// the outermost one. Nested collectives (AllreduceSum's reduce+bcast, the
// barriers inside Alltoallv) inherit the outer operation's context, so
// every tag of one user-visible collective revokes together.
func (r *Rank) opEnter() bool {
	r.opDepth++
	if r.opDepth > 1 {
		return false
	}
	r.curOp = r.nextOp
	r.nextOp++
	return true
}

func (r *Rank) opExit() { r.opDepth-- }

// revokeErr is the error a woken or refused operation surfaces.
func (w *World) revokeErr() error {
	return fmt.Errorf("mpi: operation belongs to a revoked attempt: %w", ErrCollRevoked)
}

// attemptQuit records one rank abandoning a revoked collective attempt:
// operations of `epoch` with index >= fromOp will never be served by src
// again, and partners blocked on src wake at max(their post time, at) +
// Deadline. In src's own mailbox the record instead refuses inbound
// traffic of the attempt, failing senders at the same at-derived instant.
type attemptQuit struct {
	src    int
	epoch  int
	fromOp uint64
	at     simtime.Time
}

// quitCovers reports whether a quit record covers tag. Verdict-plane tags
// are never covered (the verdict must outlive the attempt it judges).
func quitCovers(q attemptQuit, tag int) bool {
	base, epoch, op, ok := collTagInfo(tag)
	return ok && base < baseVerdictFlag && epoch == q.epoch && op >= q.fromOp
}

// abortAttempt is this rank abandoning the attempt (epoch, ops >= fromOp)
// — the runtime's MPIX_Comm_revoke, called by every member whose attempt
// failed, at its own clock instant. It mirrors the watchdog's sweep
// discipline so the cascade is free of host-scheduling races:
//
//   - A quit record lands in every mailbox under its lock, atomically with
//     the wake pass over that box, so a concurrent post or deliver either
//     precedes the record (and is swept) or observes it (and is refused) —
//     both at the same virtual instant.
//   - Real messages this rank sent before aborting are never removed from
//     peers' unexpected queues: by program order they were all injected
//     before the abort, so a partner that can still consume them does, and
//     a posted receive the sweep wakes provably has nothing to receive.
//   - Only the rank's own mailbox drops queued inbound traffic of the
//     attempt (it will never post those receives), unblocking rendezvous
//     senders exactly as a later deliver-side refusal would.
func (w *World) abortAttempt(r *Rank, epoch int, fromOp uint64) {
	at := r.Clock.Now()
	w.revMu.Lock()
	if cur, ok := w.revoked[epoch]; !ok || fromOp < cur {
		if w.revoked == nil {
			w.revoked = make(map[int]uint64)
		}
		w.revoked[epoch] = fromOp
		w.revokedOps.Add(1)
	}
	w.revMu.Unlock()

	q := attemptQuit{src: r.id, epoch: epoch, fromOp: fromOp, at: at}
	for _, peer := range w.ranks {
		box := peer.box
		box.mu.Lock()
		if peer == r {
			box.ownQuits = append(box.ownQuits, q)
			var failed []*envelope
			keep := box.unexpected[:0]
			for _, env := range box.unexpected {
				if quitCovers(q, env.tag) {
					failed = append(failed, env)
				} else {
					keep = append(keep, env)
				}
			}
			box.unexpected = keep
			box.mu.Unlock()
			for _, env := range failed {
				w.failSend(env, at, w.revokeErr())
			}
			continue
		}
		box.quits = append(box.quits, q)
		var woken []*recvPost
		rest := box.posted[:0]
		for _, p := range box.posted {
			if p.src == r.id && quitCovers(q, p.tag) {
				woken = append(woken, p)
			} else {
				rest = append(rest, p)
			}
		}
		box.posted = rest
		box.mu.Unlock()
		for _, p := range woken {
			p.matched <- failEnvelope(r.id, p.tag, simtime.Max(p.postTime, at).Add(w.health.Deadline), w.revokeErr())
			w.watchdogWakeups.Add(1)
		}
	}
}

// healActive reports whether this run can need mid-collective recovery at
// all: some rank is fated, or links can fail. Worlds injecting only wire
// drops/corruption keep the transport-level retry ladder and abort
// semantics of earlier revisions — a verdict round per collective would
// change their timelines for no recovery benefit.
func (w *World) healActive() bool {
	return len(w.doomed) > 0 || w.linkFaults
}

// healShrunk reports whether collectives are running on the post-recovery
// shrunken view, which is when the world-indexed collectives (Gather,
// Scatter, Alltoall, Alltoallv) skip fated peers and leave their blocks
// untouched. Gated on healOn so ShrinkCollectives-mode worlds keep their
// documented abort semantics for these collectives.
func (w *World) healShrunk() bool {
	return w.healOn && w.shrunk.Load() && len(w.doomed) > 0
}

// healMembers is the verdict round's membership: the fixed live set (fated
// ranks never self-heal), or every rank when no fates were drawn
// (link-fault-only runs).
func (w *World) healMembers() []int {
	if len(w.doomed) > 0 {
		return w.live
	}
	return w.everyone
}

// routeOrdered reorders a world-rank list by the fabric's fault-avoiding
// node order (stable within a node), producing the view a recovered
// collective runs over. Identity when no routing view exists.
func (w *World) routeOrdered(ids []int) []int {
	if w.routeView == nil {
		return ids
	}
	pos := make([]int, w.nodes)
	for i, n := range w.routeView {
		pos[n] = i
	}
	out := append([]int(nil), ids...)
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := pos[w.nodeOf(out[i])], pos[w.nodeOf(out[j])]
		if pi != pj {
			return pi < pj
		}
		return out[i] < out[j]
	})
	return out
}

// healable reports whether an error is recoverable by shrink-and-retry:
// a peer death, a spent delivery budget (link outage), or the revocation
// those trigger on other ranks.
func healable(err error) bool {
	return errors.Is(err, ErrPeerFailed) || errors.Is(err, ErrDeliveryFailed) || errors.Is(err, ErrCollRevoked)
}

// healRun wraps one collective operation in the self-healing protocol.
//
// The fast paths pay nothing: nested calls, worlds without SelfHeal, and
// SelfHeal worlds whose fault config cannot kill a rank or a link all run
// fn directly. A fated rank also runs fn directly — it never self-heals;
// its abort is the failure the survivors recover around.
//
// Otherwise each attempt is followed by a verdict round among the live
// members (coordinator = first live rank): a failed attempt revokes the
// epoch's remaining operations first, so members still blocked inside it
// wake and vote. On a retry verdict every member drains its aborted
// requests, agrees on the failed set, shrinks the world, advances its
// recovery epoch, and reruns fn on the rebuilt view.
func (r *Rank) healRun(fn func() error) error {
	outermost := r.opEnter()
	defer r.opExit()
	w := r.world
	if !outermost || !w.healOn || !w.healActive() || r.fate != nil {
		return fn()
	}
	coord := w.healMembers()[0]
	startEpoch := r.healEpoch
	for attempt := 0; ; attempt++ {
		var cacheHits int64
		if attempt > 0 {
			cacheHits = int64(r.Engine.CacheSnapshot().Hits)
		}
		err := fn()
		if err != nil && !healable(err) {
			return err
		}
		if attempt > 0 && err == nil {
			// Blocks the retry re-sourced from the compress-once cache
			// instead of re-encoding (the failure cost the wire transfer,
			// not the codec work).
			w.resourcedChunks.Add(int64(r.Engine.CacheSnapshot().Hits) - cacheHits)
		}
		if err != nil {
			w.abortAttempt(r, r.healEpoch, r.curOp)
		}
		verdictStart := r.Clock.Now()
		retry, verr := r.healVerdict(err != nil)
		if verr != nil {
			if err != nil {
				return err
			}
			return verr
		}
		if !retry {
			if r.id == coord && r.healEpoch > startEpoch {
				w.shrinkCompletions.Add(1)
			}
			return nil
		}
		if attempt+1 >= w.health.MaxAttempts || r.healEpoch+1 >= healMaxEpochs {
			if err != nil {
				return err
			}
			return fmt.Errorf("mpi: collective not recovered after %d attempts: %w", attempt+1, ErrPeerFailed)
		}
		r.healRecover()
		if r.id == coord {
			w.reroutes.Add(1)
			w.recoveryTime.Add(int64(r.Clock.Now().Sub(verdictStart)))
		}
	}
}

// healVerdict is the per-operation agreement round among live members:
// every member reports its attempt outcome to the coordinator as a
// Heartbeat control packet, the coordinator ORs the failure votes (a
// member it cannot hear from votes "failed" by that very failure) and
// replies with a RouteUpdate carrying the decision and, on retry, the
// surviving view in route order.
//
// Control packets ride the ordinary eager path, so they are subject to the
// same fault model as data — a flag that cannot be delivered becomes a
// retry vote. The one non-recoverable spot is the coordinator's reply: a
// member that cannot read it no longer knows whether the group retried,
// so it aborts (the documented limitation; partition-soak configurations
// keep wire-drop fates off the verdict plane).
func (r *Rank) healVerdict(failed bool) (bool, error) {
	w := r.world
	members := w.healMembers()
	coord := members[0]
	flagTag := r.collTag(baseVerdictFlag)
	replyTag := r.collTag(baseVerdictReply)

	if r.id != coord {
		hb := core.Heartbeat{
			Src:      r.id,
			Epoch:    r.healEpoch,
			Op:       r.curOp,
			LeaseNS:  uint64(w.health.Detector.Lease),
			SentAtNS: uint64(r.Clock.Now()),
			Failed:   failed,
			Suspect:  r.det.suspecting(),
		}
		flag := gpusim.NewHostBuffer(core.HeartbeatSize)
		copy(flag.Data, hb.EncodeHeartbeat())
		// A flag that cannot be delivered is not fatal here: the
		// coordinator observes the same delivery failure and counts it as
		// a retry vote.
		_ = r.send(coord, flagTag, flag)
		reply := gpusim.NewHostBuffer(routeUpdateFixedSize + 4*w.size)
		if err := r.recv(coord, replyTag, reply); err != nil {
			return false, fmt.Errorf("mpi: rank %d lost the recovery verdict: %w", r.id, err)
		}
		u, err := core.DecodeRouteUpdate(reply.Data)
		if err != nil || u.Epoch != r.healEpoch || u.Op != r.curOp {
			return false, fmt.Errorf("mpi: rank %d got an unusable recovery verdict (%v)", r.id, err)
		}
		return u.Retry, nil
	}

	retry := failed
	flag := gpusim.NewHostBuffer(core.HeartbeatSize)
	for _, m := range members {
		if m == r.id {
			continue
		}
		if err := r.recv(m, flagTag, flag); err != nil {
			retry = true
			continue
		}
		hb, err := core.DecodeHeartbeat(flag.Data)
		if err != nil || hb.Src != m || hb.Epoch != r.healEpoch || hb.Op != r.curOp || hb.Failed {
			retry = true
		}
	}
	u := core.RouteUpdate{Epoch: r.healEpoch, Op: r.curOp, Retry: retry}
	if retry {
		u.View = w.routeOrdered(members)
	}
	wire := u.EncodeRouteUpdate()
	reply := gpusim.NewHostBuffer(len(wire))
	copy(reply.Data, wire)
	for _, m := range members {
		if m == r.id {
			continue
		}
		// A failed reply delivery is the member's problem to surface (it
		// aborts); the coordinator's decision stands for everyone else.
		_ = r.send(m, replyTag, reply)
	}
	return retry, nil
}

// routeUpdateFixedSize mirrors core's unexported routeUpdateFixed so the
// member can size its reply buffer for the largest possible view.
const routeUpdateFixedSize = 16

// healRecover transitions this rank into the next recovery epoch after a
// retry verdict: drain the aborted attempt's requests (revocation already
// woke them, so every Wait resolves at a bounded instant), release parked
// raw staging, agree on the failed set (charged like MPIX_Comm_agree),
// shrink the world when ranks died, and advance the epoch.
func (r *Rank) healRecover() {
	w := r.world
	r.drainAborted()
	_, _ = r.Agree() // r is live: Agree only errors for fated callers
	if len(w.doomed) > 0 {
		w.Shrink()
	}
	r.healEpoch++
}

// drainAborted completes every incomplete request this rank still holds
// and releases raw staging parked between Wait and consumeRaw. Bounded
// because the preceding revocation (and any failure announcements) already
// queued an envelope or outcome for everything in flight.
func (r *Rank) drainAborted() {
	for len(r.inflight) > 0 {
		_ = r.Wait(r.inflight[len(r.inflight)-1]) // Wait untracks the request
	}
	for _, b := range r.rawStaged {
		r.Engine.ReleaseRecv(r.Clock, b)
	}
	r.rawStaged = nil
}

// RecoveryStats is the world's self-healing activity snapshot. Read it
// after the run completes (detector counters are per-rank goroutine
// state).
type RecoveryStats struct {
	// Reroutes counts agreed retry verdicts (route rebuilds);
	// ShrinkCompletions counts collectives that completed on a shrunken or
	// rerouted view after at least one retry.
	Reroutes          int64
	ShrinkCompletions int64
	// RevokedOps counts revocation sweeps (MPIX_Comm_revoke equivalents).
	RevokedOps int64
	// Suspects / FalseSuspects / Confirms aggregate the per-rank failure
	// detectors (zero unless DetectorPolicy is enabled).
	Suspects      int64
	FalseSuspects int64
	Confirms      int64
	// ResourcedChunks counts payload blocks retries re-sourced from the
	// compress-once cache instead of re-encoding.
	ResourcedChunks int64
	// LinkDrops counts transport attempts refused by downed or flapping
	// links (from the fault injector).
	LinkDrops int64
	// RecoveryTime is the total virtual time the recovery coordinator
	// spent between failure observation and agreed verdicts.
	RecoveryTime simtime.Duration
}

// RecoveryStats snapshots the self-healing counters.
func (w *World) RecoveryStats() RecoveryStats {
	st := RecoveryStats{
		Reroutes:          w.reroutes.Load(),
		ShrinkCompletions: w.shrinkCompletions.Load(),
		RevokedOps:        w.revokedOps.Load(),
		ResourcedChunks:   w.resourcedChunks.Load(),
		LinkDrops:         w.inj.Stats().LinkDrops,
		RecoveryTime:      simtime.Duration(w.recoveryTime.Load()),
	}
	for _, r := range w.ranks {
		if r.det != nil {
			st.Suspects += r.det.suspects
			st.FalseSuspects += r.det.falseSuspects
			st.Confirms += r.det.confirms
		}
	}
	return st
}
