package mpi

import (
	"math"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/datasets"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
)

func mustWorld(t testing.TB, opt Options) *World {
	t.Helper()
	w, err := NewWorld(opt)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func devBuf(r *Rank, vals []float32) *gpusim.Buffer {
	return &gpusim.Buffer{Data: core.FloatsToBytes(nil, vals), Loc: gpusim.Device, Dev: r.Dev}
}

func emptyDevBuf(r *Rank, n int) *gpusim.Buffer {
	return &gpusim.Buffer{Data: make([]byte, 4*n), Loc: gpusim.Device, Dev: r.Dev}
}

func TestWorldLayout(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 4, PPN: 2})
	if w.Size() != 8 {
		t.Fatalf("size: %d", w.Size())
	}
	if w.nodeOf(0) != 0 || w.nodeOf(1) != 0 || w.nodeOf(2) != 1 || w.nodeOf(7) != 3 {
		t.Fatal("block rank->node mapping wrong")
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(Options{Nodes: 0, PPN: 1}); err == nil {
		t.Fatal("0 nodes should fail")
	}
	if _, err := NewWorld(Options{Cluster: hw.Longhorn(), Nodes: 1, PPN: 99}); err == nil {
		t.Fatal("ppn over GPUs/node should fail")
	}
}

func TestEagerSendRecv(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1})
	vals := datasets.Smooth(128, 1, 1e-3) // 512 B — below eager limit
	_, err := w.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			return r.Send(1, 7, devBuf(r, vals))
		case 1:
			buf := emptyDevBuf(r, len(vals))
			if err := r.Recv(0, 7, buf); err != nil {
				return err
			}
			got := core.BytesToFloats(buf.Data)
			for i := range vals {
				if got[i] != vals[i] {
					t.Errorf("eager value %d mismatch", i)
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousBaselineIntegrity(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1})
	vals := datasets.Smooth(1<<20, 2, 1e-3) // 4 MB
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, devBuf(r, vals))
		}
		buf := emptyDevBuf(r, len(vals))
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		got := core.BytesToFloats(buf.Data)
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("value %d mismatch", i)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousMPCLossless(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC},
	})
	vals := datasets.Smooth(2<<20, 3, 1e-3) // 8 MB
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, devBuf(r, vals))
		}
		buf := emptyDevBuf(r, len(vals))
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		got := core.BytesToFloats(buf.Data)
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("MPC transfer must be lossless: value %d differs", i)
				break
			}
		}
		if r.Engine.Decompressions != 1 {
			t.Errorf("expected 1 decompression, got %d", r.Engine.Decompressions)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Rank(0).Engine.Compressions != 1 {
		t.Fatalf("sender should have compressed once, got %d", w.Rank(0).Engine.Compressions)
	}
}

func TestRendezvousZFPWithinTolerance(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 16},
	})
	vals := datasets.Smooth(1<<20, 4, 1e-3)
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, devBuf(r, vals))
		}
		buf := emptyDevBuf(r, len(vals))
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		got := core.BytesToFloats(buf.Data)
		for i := range vals {
			rel := math.Abs(float64(got[i]-vals[i])) / math.Abs(float64(vals[i]))
			if rel > 2e-3 {
				t.Errorf("ZFP rate 16 error too large at %d: %g", i, rel)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompressionReducesLatencyOnEDR(t *testing.T) {
	// 16 MB over IB EDR, reproducing Figure 9(a)'s conditions: OMB sends
	// dummy (constant) buffers, on which MPC achieves a very high
	// compression ratio; ZFP's ratio is fixed by the rate regardless of
	// content. Both OPT schemes must beat the no-compression baseline.
	latency := func(cfg core.Config, vals []float32) simtime.Duration {
		w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1, Engine: cfg})
		times, err := w.Run(func(r *Rank) error {
			if r.ID() == 0 {
				return r.Send(1, 0, devBuf(r, vals))
			}
			return r.Recv(0, 0, emptyDevBuf(r, len(vals)))
		})
		if err != nil {
			t.Fatal(err)
		}
		return simtime.Duration(MaxTime(times))
	}
	dummy := datasets.Dummy(4 << 20)
	smooth := datasets.Smooth(4<<20, 5, 1e-4)
	base := latency(core.Config{Mode: core.ModeOff}, dummy)
	mpcOpt := latency(core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}, dummy)
	zfpOpt := latency(core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 8}, smooth)
	if mpcOpt >= base {
		t.Fatalf("MPC-OPT (%v) should beat baseline (%v) on EDR", mpcOpt, base)
	}
	if zfpOpt >= base {
		t.Fatalf("ZFP-OPT (%v) should beat baseline (%v) on EDR", zfpOpt, base)
	}
	// MPC-OPT on low-compressibility data must NOT beat the baseline at
	// this size — the tradeoff the paper's analytical model captures.
	noisy := datasets.Random(4<<20, 3)
	mpcNoisy := latency(core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}, noisy)
	if mpcNoisy < base {
		t.Fatalf("MPC-OPT on incompressible data (%v) should not beat baseline (%v)", mpcNoisy, base)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 2})
	_, err := w.Run(func(r *Rank) error {
		if r.ID() != 0 {
			v := []float32{float32(r.ID())}
			return r.Send(0, 100+r.ID(), devBuf(r, v))
		}
		seen := map[float32]bool{}
		for i := 0; i < 3; i++ {
			buf := emptyDevBuf(r, 1)
			if err := r.Recv(AnySource, AnyTag, buf); err != nil {
				return err
			}
			seen[core.BytesToFloats(buf.Data)[0]] = true
		}
		if len(seen) != 3 {
			t.Errorf("expected 3 distinct senders, got %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 1, PPN: 2})
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			a, _ := r.Isend(1, 1, devBuf(r, []float32{1}))
			b, _ := r.Isend(1, 2, devBuf(r, []float32{2}))
			return r.Waitall(a, b)
		}
		// Receive in reverse tag order: matching must be by tag.
		buf2 := emptyDevBuf(r, 1)
		if err := r.Recv(0, 2, buf2); err != nil {
			return err
		}
		buf1 := emptyDevBuf(r, 1)
		if err := r.Recv(0, 1, buf1); err != nil {
			return err
		}
		if core.BytesToFloats(buf2.Data)[0] != 2 || core.BytesToFloats(buf1.Data)[0] != 1 {
			t.Error("tag matching delivered wrong payloads")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBidirectionalExchangeNoDeadlock(t *testing.T) {
	// The classic halo-exchange pattern: both ranks Isend+Irecv then
	// Waitall. Must complete despite rendezvous handshakes.
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC},
	})
	vals := datasets.Smooth(1<<20, 6, 1e-3) // 4 MB each way
	_, err := w.Run(func(r *Rank) error {
		peer := 1 - r.ID()
		recvBuf := emptyDevBuf(r, len(vals))
		rreq, err := r.Irecv(peer, 5, recvBuf)
		if err != nil {
			return err
		}
		sreq, err := r.Isend(peer, 5, devBuf(r, vals))
		if err != nil {
			return err
		}
		if err := r.Waitall(sreq, rreq); err != nil {
			return err
		}
		got := core.BytesToFloats(recvBuf.Data)
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("rank %d: exchange corrupted value %d", r.ID(), i)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	// Sender sends before receiver posts: the message must wait in the
	// unexpected queue and match later.
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1})
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 3, devBuf(r, []float32{42}))
		}
		// Delay posting the receive (simulated compute).
		r.Clock.Advance(simtime.FromSeconds(0.001))
		buf := emptyDevBuf(r, 1)
		if err := r.Recv(0, 3, buf); err != nil {
			return err
		}
		if core.BytesToFloats(buf.Data)[0] != 42 {
			t.Error("unexpected-queue payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTruncationError(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1})
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, devBuf(r, make([]float32, 100)))
		}
		err := r.Recv(0, 0, emptyDevBuf(r, 10))
		if err == nil {
			t.Error("truncated receive should error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidArgs(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 1, PPN: 1})
	_, err := w.Run(func(r *Rank) error {
		if _, err := r.Isend(5, 0, devBuf(r, []float32{1})); err == nil {
			t.Error("out-of-range dst should fail")
		}
		if _, err := r.Isend(0, -5, devBuf(r, []float32{1})); err == nil {
			t.Error("negative user tag should fail")
		}
		if err := r.Wait(nil); err == nil {
			t.Error("nil request should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotonic(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 2,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC},
	})
	vals := datasets.Smooth(1<<19, 7, 1e-3)
	_, err := w.Run(func(r *Rank) error {
		last := r.Clock.Now()
		check := func() {
			if r.Clock.Now() < last {
				t.Errorf("rank %d clock went backwards", r.ID())
			}
			last = r.Clock.Now()
		}
		peer := r.ID() ^ 1
		for i := 0; i < 3; i++ {
			rb := emptyDevBuf(r, len(vals))
			rreq, err := r.Irecv(peer, 9, rb)
			if err != nil {
				return err
			}
			check()
			sreq, err := r.Isend(peer, 9, devBuf(r, vals))
			if err != nil {
				return err
			}
			check()
			if err := r.Waitall(sreq, rreq); err != nil {
				return err
			}
			check()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPingPongLatencySanity(t *testing.T) {
	// 4 MB ping-pong on EDR: one-way latency should be in the low
	// milliseconds (4MB / 12.5 GB/s = 336us serialization + overheads),
	// definitely under 10 ms and over 300 us.
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1})
	n := 1 << 20
	var oneWay simtime.Duration
	_, err := w.Run(func(r *Rank) error {
		buf := emptyDevBuf(r, n)
		if r.ID() == 0 {
			start := r.Clock.Now()
			if err := r.Send(1, 0, buf); err != nil {
				return err
			}
			if err := r.Recv(1, 0, buf); err != nil {
				return err
			}
			oneWay = r.Clock.Now().Sub(start) / 2
			return nil
		}
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		return r.Send(0, 0, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	if oneWay < simtime.FromMicroseconds(300) || oneWay > simtime.FromMicroseconds(10000) {
		t.Fatalf("4MB EDR one-way latency out of range: %v", oneWay)
	}
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	n := 4 << 20 // 16 MB message
	measure := func(nodes, ppn int) simtime.Duration {
		w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn})
		times, err := w.Run(func(r *Rank) error {
			buf := emptyDevBuf(r, n/4)
			if r.ID() == 0 {
				return r.Send(1, 0, buf)
			}
			return r.Recv(0, 0, buf)
		})
		if err != nil {
			t.Fatal(err)
		}
		return simtime.Duration(MaxTime(times))
	}
	intra := measure(1, 2) // NVLink
	inter := measure(2, 1) // EDR
	if intra >= inter {
		t.Fatalf("NVLink (%v) should beat EDR (%v)", intra, inter)
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	// Two sends with the same (src, tag) must match receives in order.
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1})
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			a, _ := r.Isend(1, 5, devBuf(r, []float32{1}))
			b, _ := r.Isend(1, 5, devBuf(r, []float32{2}))
			return r.Waitall(a, b)
		}
		first := emptyDevBuf(r, 1)
		second := emptyDevBuf(r, 1)
		if err := r.Recv(0, 5, first); err != nil {
			return err
		}
		if err := r.Recv(0, 5, second); err != nil {
			return err
		}
		if core.BytesToFloats(first.Data)[0] != 1 || core.BytesToFloats(second.Data)[0] != 2 {
			t.Errorf("FIFO violated: %v %v",
				core.BytesToFloats(first.Data)[0], core.BytesToFloats(second.Data)[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDynamicEngineEndToEnd(t *testing.T) {
	// An 8 MB dummy-data message with the dynamic engine: compressed on
	// the inter-node path, bypassed on NVLink — and both latencies must
	// match or beat the corresponding static extremes.
	vals := datasets.Dummy(2 << 20)
	run := func(nodes, ppn int, cfg core.Config) (simtime.Duration, int, int) {
		w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn, Engine: cfg})
		times, err := w.Run(func(r *Rank) error {
			if r.ID() == 0 {
				return r.Send(1, 0, devBuf(r, vals))
			}
			return r.Recv(0, 0, emptyDevBuf(r, len(vals)))
		})
		if err != nil {
			t.Fatal(err)
		}
		e := w.Rank(0).Engine
		return simtime.Duration(MaxTime(times)), e.Compressions, e.Bypasses
	}
	dyn := core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, Dynamic: true}

	_, comps, _ := run(2, 1, dyn) // EDR
	if comps != 1 {
		t.Fatalf("dynamic engine should compress on EDR, compressions=%d", comps)
	}
	latIntra, comps, bypasses := run(1, 2, dyn) // NVLink
	if comps != 0 || bypasses != 1 {
		t.Fatalf("dynamic engine should bypass on NVLink: comps=%d bypasses=%d", comps, bypasses)
	}
	latBase, _, _ := run(1, 2, core.Config{})
	// The probe costs a few microseconds; within 10% of baseline.
	if float64(latIntra) > float64(latBase)*1.35 {
		t.Fatalf("dynamic NVLink latency %v too far above baseline %v", latIntra, latBase)
	}
}

func TestManyRanksSmoke(t *testing.T) {
	// 64 ranks ring-exchange with compression: no deadlock, no data loss.
	w := mustWorld(t, Options{
		Cluster: hw.Lassen(), Nodes: 16, PPN: 4,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, Threshold: 64 << 10, PoolBufBytes: 1 << 20},
	})
	const n = 64 << 10 // 256 KB messages
	_, err := w.Run(func(r *Rank) error {
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = float32(r.ID())
		}
		recv := emptyDevBuf(r, n)
		rq, err := r.Irecv(left, 0, recv)
		if err != nil {
			return err
		}
		sq, err := r.Isend(right, 0, devBuf(r, vals))
		if err != nil {
			return err
		}
		if err := r.Waitall(sq, rq); err != nil {
			return err
		}
		got := core.BytesToFloats(recv.Data)
		if got[0] != float32(left) || got[n-1] != float32(left) {
			t.Errorf("rank %d: ring payload wrong: %v", r.ID(), got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompressionReducesWireBytes(t *testing.T) {
	// End-to-end INAM-style verification: the same logical message moves
	// ~8x fewer bytes over the network with ZFP-OPT rate 4.
	vals := datasets.Smooth(4<<20, 11, 1e-4) // 16 MB
	traffic := func(cfg core.Config) int64 {
		w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1, Engine: cfg})
		_, err := w.Run(func(r *Rank) error {
			if r.ID() == 0 {
				return r.Send(1, 0, devBuf(r, vals))
			}
			return r.Recv(0, 0, emptyDevBuf(r, len(vals)))
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Fabric().TotalInterNodeBytes()
	}
	raw := traffic(core.Config{})
	comp := traffic(core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 4})
	if raw < 16<<20 {
		t.Fatalf("baseline should move the full message: %d", raw)
	}
	want := raw / 8
	if comp < want-4096 || comp > want+4096 {
		t.Fatalf("ZFP rate 4 should move ~1/8 the bytes: %d vs raw %d", comp, raw)
	}
}
