package mpi

import (
	"bytes"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/datasets"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
)

// algoLayouts covers power-of-two and folded (non-power-of-two) world
// sizes, flat and hierarchical shapes.
var algoLayouts = []struct{ nodes, ppn int }{
	{1, 1}, {2, 1}, {3, 1}, {2, 2}, {3, 2}, {4, 2},
}

func checkConstantSum(t *testing.T, name string, coll func(r *Rank, in, out *gpusim.Buffer) error) {
	t.Helper()
	const n = 1 << 16 // 256 KB
	for _, layout := range algoLayouts {
		for _, cfg := range []core.Config{
			{},
			{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, Threshold: 16 << 10, PoolBufBytes: 1 << 20},
		} {
			runColl(t, Options{Cluster: hw.Longhorn(), Nodes: layout.nodes, PPN: layout.ppn, Engine: cfg}, func(r *Rank) error {
				mine := make([]float32, n)
				for i := range mine {
					mine[i] = float32(r.ID() + 1)
				}
				want := float32(r.Size() * (r.Size() + 1) / 2)
				out := emptyDevBuf(r, n)
				if err := coll(r, devBuf(r, mine), out); err != nil {
					return err
				}
				got := core.BytesToFloats(out.Data)
				for i := 0; i < n; i += 509 {
					if got[i] != want {
						t.Errorf("%s rank %d/%d (%dx%d): value %d = %v want %v",
							name, r.ID(), r.Size(), layout.nodes, layout.ppn, i, got[i], want)
						return nil
					}
				}
				return nil
			})
		}
	}
}

func TestRecursiveDoublingAllreduceSum(t *testing.T) {
	checkConstantSum(t, "rd", func(r *Rank, in, out *gpusim.Buffer) error {
		return r.RecursiveDoublingAllreduceSum(in, out)
	})
	checkConstantSum(t, "rd-blocking", func(r *Rank, in, out *gpusim.Buffer) error {
		return r.RecursiveDoublingAllreduceSumBlocking(in, out)
	})
}

func TestRabenseifnerAllreduceSum(t *testing.T) {
	checkConstantSum(t, "rab", func(r *Rank, in, out *gpusim.Buffer) error {
		return r.RabenseifnerAllreduceSum(in, out)
	})
	checkConstantSum(t, "rab-blocking", func(r *Rank, in, out *gpusim.Buffer) error {
		return r.RabenseifnerAllreduceSumBlocking(in, out)
	})
	// Fewer words than ranks: falls back to reduce+broadcast.
	runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 3, PPN: 2}, func(r *Rank) error {
		tiny := devBuf(r, []float32{1, 2, 3})
		out := emptyDevBuf(r, 3)
		if err := r.RabenseifnerAllreduceSum(tiny, out); err != nil {
			return err
		}
		if got := core.BytesToFloats(out.Data)[2]; got != 18 {
			t.Errorf("rank %d: rab fallback = %v want 18", r.ID(), got)
		}
		return nil
	})
}

func TestTwoLevelAllreduceSum(t *testing.T) {
	checkConstantSum(t, "two-level", func(r *Rank, in, out *gpusim.Buffer) error {
		return r.AllreduceSumHierarchical(in, out)
	})
}

func TestTwoLevelAllgather(t *testing.T) {
	const blkVals = 1 << 15 // 128 KB blocks
	// Includes degenerate shapes that must fall back to the flat ring.
	for _, layout := range []struct{ nodes, ppn int }{{1, 4}, {4, 1}, {2, 2}, {4, 2}} {
		for _, cfg := range []core.Config{
			{},
			{Mode: core.ModeOpt, Algorithm: core.AlgoMPC},
		} {
			runColl(t, Options{Cluster: hw.Longhorn(), Nodes: layout.nodes, PPN: layout.ppn, Engine: cfg}, func(r *Rank) error {
				mine := datasets.Smooth(blkVals, uint64(r.ID()+1), 1e-3)
				send := devBuf(r, mine)
				recv := emptyDevBuf(r, blkVals*r.Size())
				if err := r.AllgatherHierarchical(send, recv); err != nil {
					return err
				}
				all := core.BytesToFloats(recv.Data)
				for rank := 0; rank < r.Size(); rank++ {
					want := datasets.Smooth(blkVals, uint64(rank+1), 1e-3)
					for i := 0; i < blkVals; i += blkVals / 7 {
						if all[rank*blkVals+i] != want[i] {
							t.Errorf("rank %d (%dx%d): two-level allgather block %d value %d wrong",
								r.ID(), layout.nodes, layout.ppn, rank, i)
							return nil
						}
					}
				}
				return nil
			})
		}
	}
}

// TestAllreduceOraclesBitIdentical runs each pipelined schedule and its
// blocking oracle over rounding-sensitive data in one world: float32
// addition is commutative but not associative, so byte equality proves
// the fast path performs the oracle's additions in the oracle's order.
func TestAllreduceOraclesBitIdentical(t *testing.T) {
	const n = 1 << 17 // 512 KB: compressed, chunk-pipelined
	pairs := []struct {
		name string
		fast func(r *Rank, in, out *gpusim.Buffer) error
		slow func(r *Rank, in, out *gpusim.Buffer) error
	}{
		{"rd",
			func(r *Rank, in, out *gpusim.Buffer) error { return r.RecursiveDoublingAllreduceSum(in, out) },
			func(r *Rank, in, out *gpusim.Buffer) error { return r.RecursiveDoublingAllreduceSumBlocking(in, out) }},
		{"rab",
			func(r *Rank, in, out *gpusim.Buffer) error { return r.RabenseifnerAllreduceSum(in, out) },
			func(r *Rank, in, out *gpusim.Buffer) error { return r.RabenseifnerAllreduceSumBlocking(in, out) }},
	}
	for _, layout := range []struct{ nodes, ppn int }{{4, 2}, {3, 2}} {
		for _, pair := range pairs {
			runColl(t, Options{Cluster: hw.Longhorn(), Nodes: layout.nodes, PPN: layout.ppn,
				Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
					Threshold: 64 << 10, PoolBufBytes: 4 << 20, PipelineChunkBytes: 64 << 10},
			}, func(r *Rank) error {
				vals := datasets.Smooth(n, uint64(r.ID()+7), 1e-2)
				in := devBuf(r, vals)
				fastOut := emptyDevBuf(r, n)
				slowOut := emptyDevBuf(r, n)
				if err := pair.fast(r, in, fastOut); err != nil {
					return err
				}
				if err := pair.slow(r, in, slowOut); err != nil {
					return err
				}
				if !bytes.Equal(fastOut.Data, slowOut.Data) {
					t.Errorf("%s rank %d (%dx%d): pipelined result differs from blocking oracle",
						pair.name, r.ID(), layout.nodes, layout.ppn)
				}
				return nil
			})
		}
	}
}

// TestAllreduceAlgoPin pins each schedule through Options.Allreduce and
// checks AllreduceSum dispatches to it (same bytes as the direct call).
func TestAllreduceAlgoPin(t *testing.T) {
	const n = 1 << 15
	direct := map[AllreduceAlgo]func(r *Rank, in, out *gpusim.Buffer) error{
		AllreduceReduceBcast: func(r *Rank, in, out *gpusim.Buffer) error {
			return r.healRun(func() error { return r.allreduceSum(in, out) })
		},
		AllreduceRing:              func(r *Rank, in, out *gpusim.Buffer) error { return r.RingAllreduceSum(in, out) },
		AllreduceRingBlocking:      func(r *Rank, in, out *gpusim.Buffer) error { return r.RingAllreduceSumBlocking(in, out) },
		AllreduceRecursiveDoubling: func(r *Rank, in, out *gpusim.Buffer) error { return r.RecursiveDoublingAllreduceSum(in, out) },
		AllreduceRabenseifner:      func(r *Rank, in, out *gpusim.Buffer) error { return r.RabenseifnerAllreduceSum(in, out) },
		AllreduceTwoLevel:          func(r *Rank, in, out *gpusim.Buffer) error { return r.AllreduceSumHierarchical(in, out) },
	}
	for algo, call := range direct {
		runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 2, Allreduce: algo}, func(r *Rank) error {
			vals := datasets.Smooth(n, uint64(r.ID()+3), 1e-2)
			in := devBuf(r, vals)
			viaDispatch := emptyDevBuf(r, n)
			viaDirect := emptyDevBuf(r, n)
			if err := r.AllreduceSum(in, viaDispatch); err != nil {
				return err
			}
			if err := call(r, in, viaDirect); err != nil {
				return err
			}
			if !bytes.Equal(viaDispatch.Data, viaDirect.Data) {
				t.Errorf("rank %d: pinned %v dispatch differs from direct call", r.ID(), algo)
			}
			return nil
		})
	}
}

// recordingTuner pins one algorithm and counts the dispatch callbacks —
// enough to verify AllreduceSum's tuner wiring without internal/tune.
type recordingTuner struct {
	algo     AllreduceAlgo
	picks    atomic.Int64
	observes atomic.Int64
	probes   atomic.Int64
	mu       sync.Mutex
	points   map[TunePoint]bool
}

func (rt *recordingTuner) PickAllreduce(p TunePoint) AllreduceAlgo {
	rt.picks.Add(1)
	rt.mu.Lock()
	if rt.points == nil {
		rt.points = make(map[TunePoint]bool)
	}
	rt.points[p] = true
	rt.mu.Unlock()
	return rt.algo
}

func (rt *recordingTuner) ObserveAllreduce(p TunePoint, algo AllreduceAlgo, elapsed simtime.Duration) {
	if algo != rt.algo || elapsed <= 0 {
		return
	}
	rt.observes.Add(1)
}

func (rt *recordingTuner) NeedProbe(p TunePoint) bool { return true }

func (rt *recordingTuner) ObserveProbeSample(p TunePoint, sample []byte) {
	if len(sample) > 0 {
		rt.probes.Add(1)
	}
}

func TestAllreduceTunerDispatch(t *testing.T) {
	const n = 1 << 15
	tuner := &recordingTuner{algo: AllreduceRecursiveDoubling}
	runColl(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 2, Tuner: tuner}, func(r *Rank) error {
		vals := datasets.Smooth(n, uint64(r.ID()+3), 1e-2)
		in := devBuf(r, vals)
		tuned := emptyDevBuf(r, n)
		pinned := emptyDevBuf(r, n)
		if err := r.AllreduceSum(in, tuned); err != nil {
			return err
		}
		if err := r.RecursiveDoublingAllreduceSum(in, pinned); err != nil {
			return err
		}
		if !bytes.Equal(tuned.Data, pinned.Data) {
			t.Errorf("rank %d: tuner-dispatched result differs from picked algorithm", r.ID())
		}
		return nil
	})
	if got := tuner.picks.Load(); got != 4 {
		t.Errorf("picks = %d, want one per rank (4)", got)
	}
	if got := tuner.observes.Load(); got != 4 {
		t.Errorf("observes = %d, want one per rank (4)", got)
	}
	if got := tuner.probes.Load(); got != 4 {
		t.Errorf("probes = %d, want one per rank (4)", got)
	}
	// All ranks must describe the same collective with the same point.
	if len(tuner.points) != 1 {
		t.Errorf("ranks disagreed on the TunePoint: %v", tuner.points)
	}
}

// TestRingBlocksEdgeCases pins the ragged word partition the ring and
// Rabenseifner reduce-scatter schedules share: counts smaller than the
// rank count (trailing empty blocks), non-divisible counts (first rem
// blocks one word larger), and the single-rank world.
func TestRingBlocksEdgeCases(t *testing.T) {
	cases := []struct {
		n, size int
		want    []int
	}{
		{0, 1, []int{0, 0}},
		{4, 1, []int{0, 4}},
		{20, 1, []int{0, 20}},            // single-rank world: one block, all bytes
		{8, 4, []int{0, 4, 8, 8, 8}},     // fewer words than ranks: empty tail blocks
		{4, 3, []int{0, 4, 4, 4}},        // one word, three ranks
		{20, 3, []int{0, 8, 16, 20}},     // 5 words over 3: 2,2,1
		{28, 3, []int{0, 12, 20, 28}},    // 7 words over 3: 3,2,2
		{24, 4, []int{0, 8, 16, 20, 24}}, // 6 words over 4: 2,2,1,1
		{1 << 20, 8, nil},                // large divisible: checked structurally
	}
	for _, tc := range cases {
		offs := ringBlocks(tc.n, tc.size)
		if len(offs) != tc.size+1 {
			t.Fatalf("ringBlocks(%d,%d): %d offsets, want %d", tc.n, tc.size, len(offs), tc.size+1)
		}
		if offs[0] != 0 || offs[tc.size] != tc.n/4*4 {
			t.Errorf("ringBlocks(%d,%d): range [%d,%d), want [0,%d)", tc.n, tc.size, offs[0], offs[tc.size], tc.n/4*4)
		}
		words, rem := tc.n/4/tc.size, tc.n/4%tc.size
		for i := 0; i < tc.size; i++ {
			blk := offs[i+1] - offs[i]
			if blk < 0 || blk%4 != 0 {
				t.Errorf("ringBlocks(%d,%d): block %d spans %d bytes", tc.n, tc.size, i, blk)
			}
			want := 4 * words
			if i < rem {
				want += 4
			}
			if blk != want {
				t.Errorf("ringBlocks(%d,%d): block %d = %d bytes, want %d", tc.n, tc.size, i, blk, want)
			}
		}
		if tc.want != nil {
			for i := range tc.want {
				if offs[i] != tc.want[i] {
					t.Errorf("ringBlocks(%d,%d) = %v, want %v", tc.n, tc.size, offs, tc.want)
					break
				}
			}
		}
	}
}

// algoSoakWorld runs the given collectives over compressible data on one
// world layout and returns the makespan plus a CRC per rank. It fails the
// test if any rank's engine recorded a pool fallback: the soak layouts
// are chosen so the staging pool never exhausts (see rdWindow), because
// which rank a racing fallback lands on is wall-clock dependent and
// would move the makespan between runs.
func algoSoakWorld(t *testing.T, workers, nodes, ppn int, colls ...func(*Rank) func(*gpusim.Buffer, *gpusim.Buffer) error) (simtime.Time, []uint32) {
	t.Helper()
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			Threshold: 64 << 10, Workers: workers,
			PipelineChunkBytes: 128 << 10},
	})
	crcs := make([]uint32, w.Size())
	times, err := w.Run(func(r *Rank) error {
		const n = 1 << 18 // 1 MB
		vals := datasets.Smooth(n, uint64(r.ID()+11), 1e-2)
		in := devBuf(r, vals)
		h := crc32.NewIEEE()
		for _, coll := range colls {
			out := emptyDevBuf(r, n)
			if err := coll(r)(in, out); err != nil {
				return err
			}
			h.Write(out.Data)
		}
		crcs[r.ID()] = h.Sum32()
		return nil
	})
	if err != nil {
		t.Fatalf("workers=%d: algo soak failed: %v", workers, err)
	}
	for rk := 0; rk < w.Size(); rk++ {
		if fb := w.Rank(rk).Engine.PoolFallbacks; fb != 0 {
			t.Errorf("workers=%d: rank %d saw %d pool fallbacks; soak must stay under the pool budget", workers, rk, fb)
		}
	}
	return MaxTime(times), crcs
}

// algoSoak replays the new schedules with the given codec worker count
// and returns the combined makespan plus per-rank CRCs. Each schedule
// runs on a layout inside the fabric's timing-determinism envelope
// (DESIGN.md's determinism boundary): recursive doubling and
// Rabenseifner exchange pairwise, so they soak on a flat 6x1 world
// where every rank owns its node's full-duplex egress and ingress
// adapters; the two-level schedule keeps intra-node links single-
// occupancy by construction, so it soaks on the hierarchical 3x2 world
// it exists for. (On layouts where ragged compressed transfers share
// an adapter calendar — e.g. pairwise intra-node exchanges — booking is
// arrival-order sensitive and only payloads, not makespans, are
// guaranteed; the value-exact correctness tests above pin those.)
func algoSoak(t *testing.T, workers int) (simtime.Time, []uint32) {
	t.Helper()
	flatTime, flatCRCs := algoSoakWorld(t, workers, 6, 1,
		func(r *Rank) func(*gpusim.Buffer, *gpusim.Buffer) error { return r.RecursiveDoublingAllreduceSum },
		func(r *Rank) func(*gpusim.Buffer, *gpusim.Buffer) error { return r.RabenseifnerAllreduceSum },
	)
	hierTime, hierCRCs := algoSoakWorld(t, workers, 3, 2,
		func(r *Rank) func(*gpusim.Buffer, *gpusim.Buffer) error { return r.AllreduceSumHierarchical },
	)
	return flatTime.Add(simtime.Duration(hierTime)), append(flatCRCs, hierCRCs...)
}

// TestAlgoWorkerCountDeterminism extends the worker-count guarantee to
// the new schedules: payloads and makespans are identical for codec pool
// sizes 1, 2, and 8.
func TestAlgoWorkerCountDeterminism(t *testing.T) {
	refTime, refCRCs := algoSoak(t, 1)
	for _, workers := range []int{2, 8} {
		tm, crcs := algoSoak(t, workers)
		if tm != refTime {
			t.Errorf("workers=%d: makespan %v differs from workers=1 %v", workers, tm, refTime)
		}
		for i := range crcs {
			if crcs[i] != refCRCs[i] {
				t.Errorf("workers=%d: rank %d payload CRC differs", workers, i)
			}
		}
	}
}
