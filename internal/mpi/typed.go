package mpi

import (
	"fmt"

	"mpicomp/internal/core"
	"mpicomp/internal/dtype"
	"mpicomp/internal/faults"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/simtime"
)

// Typed point-to-point: derived-datatype sends and receives with
// pack+compress fusion (TEMPI-style, DESIGN.md §13).
//
// IsendTyped transmits the words a dtype layout selects from a source
// buffer without ever materializing a packed copy on the send side: the
// compression engine's typed entry points gather the strided runs
// during the codec's own read pass, so the wire carries exactly the
// bytes Pack-then-Isend would have produced — bit-identical payloads,
// headers, and checksums — minus the pack kernel and the staging
// allocation. IrecvTyped is the mirror: decoded words scatter into the
// layout's positions during the decoder's write-back pass.
//
// The protocol tiers all carry over: layouts packing below the eager
// limit travel as one eager message, large ones take the rendezvous
// path (breaker fallback and dynamic gating included), and messages at
// least twice the pipeline chunk size move chunk by chunk, each chunk
// gathered/compressed/scattered independently at its packed offset.

// SendTyped is the blocking form of IsendTyped.
func (r *Rank) SendTyped(dst, tag int, buf *gpusim.Buffer, t dtype.Type) error {
	req, err := r.IsendTyped(dst, tag, buf, t)
	if err != nil {
		return err
	}
	return r.Wait(req)
}

// RecvTyped is the blocking form of IrecvTyped.
func (r *Rank) RecvTyped(src, tag int, buf *gpusim.Buffer, t dtype.Type) error {
	req, err := r.IrecvTyped(src, tag, buf, t)
	if err != nil {
		return err
	}
	return r.Wait(req)
}

// IsendTyped starts a nonblocking send of the words t selects from buf.
// The layout is validated against the buffer here, at the API boundary:
// invalid layouts (negative stride, zero block length, subarray
// exceeding the buffer extent) surface a wrapped dtype.ErrInvalid
// before any protocol state is created.
func (r *Rank) IsendTyped(dst, tag int, buf *gpusim.Buffer, t dtype.Type) (*Request, error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpi: user tags must be non-negative (got %d)", tag)
	}
	if err := t.Validate(buf.Len()); err != nil {
		return nil, fmt.Errorf("mpi: typed send to rank %d: %w", dst, err)
	}
	return r.isendTyped(dst, tag, buf, t)
}

// IrecvTyped starts a nonblocking receive that scatters the incoming
// packed words into the positions t selects in buf. Validation matches
// IsendTyped.
func (r *Rank) IrecvTyped(src, tag int, buf *gpusim.Buffer, t dtype.Type) (*Request, error) {
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("mpi: user tags must be non-negative or AnyTag (got %d)", tag)
	}
	if err := t.Validate(buf.Len()); err != nil {
		return nil, fmt.Errorf("mpi: typed receive from rank %d: %w", src, err)
	}
	req, err := r.irecv(src, tag, buf)
	if err != nil {
		return nil, err
	}
	req.typ = t
	return req, nil
}

// SendrecvTyped is the typed simultaneous exchange — the halo-exchange
// primitive: each side sends one face view and receives into another.
func (r *Rank) SendrecvTyped(dst, sendTag int, sendBuf *gpusim.Buffer, st dtype.Type,
	src, recvTag int, recvBuf *gpusim.Buffer, rt dtype.Type) error {
	rreq, err := r.IrecvTyped(src, recvTag, recvBuf, rt)
	if err != nil {
		return err
	}
	sreq, err := r.IsendTyped(dst, sendTag, sendBuf, st)
	if err != nil {
		return err
	}
	return r.Waitall(sreq, rreq)
}

// isendTyped is the typed mirror of isend: same protocol tiers, with
// every engine call replaced by its fused typed counterpart.
func (r *Rank) isendTyped(dst, tag int, buf *gpusim.Buffer, t dtype.Type) (*Request, error) {
	if err := r.checkPeer(dst); err != nil {
		return nil, err
	}
	if err := r.checkHealth(); err != nil {
		return nil, err
	}
	w := r.world
	dstRank := w.ranks[dst]
	seq := r.nextSeq(dst)
	total := t.Size()

	if total < w.eagerLimit {
		// Eager: the message travels packed (there is nothing to fuse the
		// gather into on this tier), produced straight from the strided
		// source into the wire copy every eager send makes anyway.
		payload := make([]byte, total)
		if err := dtype.Pack(payload, buf.Data, t); err != nil {
			return nil, fmt.Errorf("mpi: typed send to rank %d: %w", dst, err)
		}
		crc := r.Engine.ChecksumWire(r.Clock, payload)
		wire, arrival, err := w.deliverPayload(faults.KindEager, r.id, dst, seq,
			r.Node(), w.nodeOf(dst), r.Clock.Now(), payload, crc)
		env := &envelope{
			src: r.id, tag: tag, eager: true, seq: seq,
			payload: wire, crc: crc, arrival: arrival, deliveryErr: err,
		}
		r.Clock.Advance(simtime.FromMicroseconds(0.5))
		dstRank.box.deliver(env)
		return &Request{rank: r, isSend: true, done: true, err: err}, nil
	}

	if r.pipelineEligible(dst, total) {
		return r.isendTypedPipelined(dst, tag, buf, t, seq)
	}

	// Rendezvous: fused compress (the gather rides the codec's read
	// pass), then RTS with the piggybacked header — structurally
	// identical to isend, including breaker fallback and dynamic gating.
	var payload []byte
	var hdr core.Header
	var fb wireFallback
	link := w.fabric.LinkFor(r.Node(), w.nodeOf(dst))
	eligible := r.Engine.ShouldCompressTyped(buf, t)
	if eligible && !r.Engine.BreakerAllow(dst, r.Clock.Now()) {
		payload, hdr = r.Engine.BypassTyped(r.Clock, buf, t)
		hdr.Fallback = true
	} else {
		payload, hdr = r.Engine.CompressTypedForLinkCached(r.Clock, buf, t, link.BandwidthGBps)
		switch {
		case hdr.Compressed && r.Engine.BreakerEnabled():
			// Mid-message degradation hook: regenerate uncompressed (which
			// for a typed message means packed) if the breaker opens while
			// this message retries. MPI semantics keep buf frozen until
			// Wait, so the closure's gather sees the sent bytes.
			eng, src, ty := r.Engine, buf, t
			fb = func(at simtime.Time) ([]byte, core.Header, simtime.Duration) {
				clk := simtime.NewClock(at)
				p, h := eng.BypassTyped(clk, src, ty)
				h.Fallback = true
				return p, h, clk.Now().Sub(at)
			}
		case eligible && !hdr.Compressed:
			r.Engine.BreakerProbeAborted(dst)
		}
	}
	rtsArrival, rtsErr := w.controlArrival(faults.KindRTS, r.id, dst, seq,
		r.Node(), w.nodeOf(dst), r.Clock.Now())
	env := &envelope{
		src: r.id, tag: tag, seq: seq,
		payload:     payload,
		hdr:         hdr,
		rtsArrival:  rtsArrival,
		sendPost:    r.Clock.Now(),
		senderDone:  make(chan sendOutcome, 1),
		deliveryErr: rtsErr,
		fb:          fb,
	}
	req := &Request{rank: r, isSend: true, env: env}
	dstRank.box.deliver(env)
	return req, nil
}

// isendTypedPipelined is the typed mirror of isendPipelined: the packed
// stream is cut into PipelineChunkBytes-sized spans and each span is
// gathered+compressed in one fused pass at its packed offset. Chunk
// control headers describe packed offsets, so the receiver's scatter
// (DecompressTypedChunk) places each chunk without seeing the others.
func (r *Rank) isendTypedPipelined(dst, tag int, buf *gpusim.Buffer, t dtype.Type, seq uint64) (*Request, error) {
	w := r.world
	chunkBytes := r.Engine.Config().PipelineChunkBytes
	link := w.fabric.LinkFor(r.Node(), w.nodeOf(dst))
	total := t.Size()

	rtsArrival, rtsErr := w.controlArrival(faults.KindRTS, r.id, dst, seq,
		r.Node(), w.nodeOf(dst), r.Clock.Now())
	env := &envelope{
		src: r.id, dst: dst, tag: tag, seq: seq,
		rtsArrival:  rtsArrival,
		sendPost:    r.Clock.Now(),
		senderDone:  make(chan sendOutcome, 1),
		hdr:         core.Header{Algo: core.AlgoNone, OrigBytes: total, CompBytes: total},
		pipelined:   true,
		deliveryErr: rtsErr,
		ticket:      r.pipeTx[dst].issue(),
		done:        make(chan struct{}),
	}
	bypassAll := r.Engine.BreakerEnabled() && !r.Engine.BreakerAllow(dst, r.Clock.Now())
	anyCompressed := false
	for off := 0; off < total; off += chunkBytes {
		n := chunkBytes
		if off+n > total {
			n = total - off
		}
		var payload []byte
		var hdr core.Header
		if bypassAll && off%4 == 0 && r.Engine.ShouldCompressPacked(buf, n) {
			payload, hdr = r.Engine.BypassTypedChunk(r.Clock, buf, t, off, n)
			hdr.Fallback = true
		} else {
			payload, hdr = r.Engine.CompressTypedChunkCached(r.Clock, buf, t, off, n, link.BandwidthGBps)
		}
		if hdr.Compressed {
			anyCompressed = true
		}
		ch := core.ChunkHeader{
			Seq: seq, Index: len(env.chunks), Offset: off,
			OrigBytes: n, WireBytes: len(payload), Checksum: hdr.Checksum,
			Last: off+n == total,
		}
		env.chunks = append(env.chunks, chunkPart{
			payload: payload, hdr: hdr, ctrl: ch.EncodeChunk(), crc: hdr.Checksum,
			off: off, origBytes: n, compressed: hdr.Compressed,
			ready: r.Clock.Now(),
		})
	}
	if !bypassAll && !anyCompressed && r.Engine.BreakerEnabled() {
		r.Engine.BreakerProbeAborted(dst)
	}
	r.Engine.NotePipelinedChunks(len(env.chunks))
	req := &Request{rank: r, isSend: true, env: env}
	w.ranks[dst].box.deliver(env)
	return req, nil
}
