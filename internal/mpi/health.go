package mpi

import (
	"errors"
	"fmt"
	"sort"

	"mpicomp/internal/simtime"
)

// ErrPeerFailed is the sentinel every peer-failure error wraps: a blocking
// operation could not complete because another rank crash-stopped, went
// silent, or aborted. It is the runtime's ULFM-style MPI_ERR_PROC_FAILED.
var ErrPeerFailed = errors.New("mpi: peer rank failed")

// ErrRankCrashed is returned by a rank's own MPI calls once its seeded
// crash-stop onset has passed: the process halts and communicates no more.
var ErrRankCrashed = errors.New("mpi: rank crash-stopped")

// ErrRankSilent is returned by a rank's own MPI calls once its seeded
// silence onset has passed: the process survives but its traffic no longer
// reaches the fabric (a partitioned NIC), so no operation can complete.
var ErrRankSilent = errors.New("mpi: rank silent (partitioned)")

// ErrCollRevoked is the sentinel a point-to-point operation surfaces when
// the collective attempt it belongs to has been revoked for recovery: a
// peer observed a failure mid-operation and every rank still blocked
// inside the attempt is woken so it can join the retry verdict instead of
// waiting on traffic that will never come — the runtime's
// MPIX_Comm_revoke.
var ErrCollRevoked = errors.New("mpi: collective attempt revoked")

// PeerError is the failure a surviving rank observes from a blocking
// operation involving dead peers. Ranks always carries the run's complete
// fated set (or the single quiesced rank for pure cascades), so every
// survivor reports the identical failed-rank list — the agreement property
// ULFM's MPIX_Comm_agree provides.
type PeerError struct {
	// Ranks is the sorted set of failed ranks.
	Ranks []int
}

// Error implements error.
func (e *PeerError) Error() string {
	return fmt.Sprintf("mpi: peer ranks %v failed", e.Ranks)
}

// Unwrap makes errors.Is(err, ErrPeerFailed) hold.
func (e *PeerError) Unwrap() error { return ErrPeerFailed }

// DefaultHealthDeadline is the watchdog's failure-detection deadline when
// HealthPolicy.Deadline is zero: a blocking operation involving a dead
// peer surfaces ErrPeerFailed this long (virtual time) after the later of
// the operation's post and the peer's failure onset.
const DefaultHealthDeadline = 500 * simtime.Microsecond

// DefaultDetectorLease and DefaultDetectorConfirm split the watchdog
// deadline into the failure detector's two phases when DetectorPolicy is
// enabled with zero fields: a peer whose traffic is silent past the lease
// is suspected; a suspect not retracted within the confirm window is
// confirmed dead. Lease + Confirm equals DefaultHealthDeadline, so turning
// the detector on with defaults leaves detection latency unchanged.
const (
	DefaultDetectorLease   = 300 * simtime.Microsecond
	DefaultDetectorConfirm = 200 * simtime.Microsecond
)

// DetectorPolicy configures the heartbeat-lease failure detector. The
// detector is deterministic on the virtual clock: liveness evidence is the
// completion instants of ordinary operations (heartbeats piggyback on the
// control packets the run already exchanges — no extra wire traffic), a
// peer is suspected when evidence arrives later than its lease allows, and
// a suspicion either retracts on fresh evidence (a false suspicion — the
// bounded cost of link flap) or confirms at Lease + Confirm past the
// failure onset. The zero value disables the detector.
type DetectorPolicy struct {
	// Lease is how stale a peer's liveness evidence may grow before the
	// detector suspects it (0 with Confirm set selects
	// DefaultDetectorLease).
	Lease simtime.Duration
	// Confirm is the suspect-to-confirm window (0 with Lease set selects
	// DefaultDetectorConfirm).
	Confirm simtime.Duration
}

// Enabled reports whether the detector was configured at all.
func (p DetectorPolicy) Enabled() bool { return p.Lease > 0 || p.Confirm > 0 }

// HealthPolicy is the per-world failure-handling configuration.
//
// The watchdog is event-driven on the virtual clock — there are no
// real-time timers. A fated rank's own goroutine announces the failure at
// its first MPI call past the onset; the announcement sweeps every
// mailbox, waking blocked waiters with failure envelopes stamped at
// max(waiter's post time, onset) + Deadline. Because all of a rank's real
// messages are injected synchronously in its program order before it can
// announce, whether a given receive matches a real message or a failure
// envelope is a pure function of the communication plan — host scheduling
// cannot change it, and fault-free runs never touch any of this code.
type HealthPolicy struct {
	// Deadline is the simulated failure-detection latency (0 means
	// DefaultHealthDeadline). It models the timeout a real progress
	// engine would need to declare a peer dead.
	Deadline simtime.Duration
	// ShrinkCollectives re-routes collectives around fated ranks (ring
	// and tree algorithms run on the surviving subset, as after a ULFM
	// MPIX_Comm_shrink) instead of the default abort-cleanly semantics
	// where every survivor returns PeerError with the same failed set.
	ShrinkCollectives bool
	// SelfHeal arms mid-collective recovery: a collective that loses a
	// rank or a link mid-operation revokes the attempt, runs a verdict
	// round among survivors, rebuilds its route on the shrunken view, and
	// completes — the degrade ladder's final reroute -> shrink-and-
	// complete rung (DESIGN.md §14). Implies shrink semantics for the
	// retried attempt.
	SelfHeal bool
	// MaxAttempts bounds how many times one collective may be retried
	// under SelfHeal (0 means DefaultHealAttempts). The bound is a
	// backstop; each retry runs on a strictly smaller or rerouted view.
	MaxAttempts int
	// Detector tunes the failure detector feeding the watchdog. When
	// enabled, the effective Deadline becomes Lease + Confirm — detection
	// is the lease expiring plus the confirm window.
	Detector DetectorPolicy
}

// DefaultHealAttempts bounds self-heal retries when MaxAttempts is zero.
const DefaultHealAttempts = 4

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.Detector.Enabled() {
		if p.Detector.Lease <= 0 {
			p.Detector.Lease = DefaultDetectorLease
		}
		if p.Detector.Confirm <= 0 {
			p.Detector.Confirm = DefaultDetectorConfirm
		}
		p.Deadline = p.Detector.Lease + p.Detector.Confirm
	}
	if p.Deadline <= 0 {
		p.Deadline = DefaultHealthDeadline
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultHealAttempts
	}
	return p
}

// rankFate is a rank's precomputed process failure (from faults.RankFate).
type rankFate struct {
	onset  simtime.Time
	silent bool
}

// srcFail records an announced failure for a mailbox's future receives.
type srcFail struct {
	onset simtime.Time
	err   error
}

// HealthStats is the world's failure-handling activity snapshot.
type HealthStats struct {
	// Doomed is the sorted set of ranks fated to fail this run.
	Doomed []int
	// Crashes and Silences split Doomed by failure mode.
	Crashes, Silences int
	// WatchdogWakeups counts blocked operations unblocked with failure
	// envelopes; CascadeQuiets counts ranks whose error return quiesced
	// their mailbox to propagate the failure.
	WatchdogWakeups int64
	CascadeQuiets   int64
}

// HealthStats snapshots the failure-handling counters.
func (w *World) HealthStats() HealthStats {
	st := HealthStats{
		Doomed:          append([]int(nil), w.doomed...),
		WatchdogWakeups: w.watchdogWakeups.Load(),
		CascadeQuiets:   w.cascadeQuiets.Load(),
	}
	for _, id := range w.doomed {
		if w.ranks[id].fate.silent {
			st.Silences++
		} else {
			st.Crashes++
		}
	}
	return st
}

// Shrink switches the world's collectives to re-route around fated ranks
// from now on — the application-driven MPIX_Comm_shrink. (Setting
// HealthPolicy.ShrinkCollectives does the same from the start.)
func (w *World) Shrink() { w.shrunk.Store(true) }

// shrinkEnabled reports whether collectives run on the surviving subset.
func (w *World) shrinkEnabled() bool {
	return w.health.ShrinkCollectives || w.shrunk.Load()
}

// peerError builds the error survivors observe: the run's doomed set, or
// the single quiesced rank when no fates were drawn (pure error cascade).
func (w *World) peerError(id int) error {
	ranks := w.doomed
	if len(ranks) == 0 {
		ranks = []int{id}
	}
	return &PeerError{Ranks: append([]int(nil), ranks...)}
}

// checkHealth is the fate gate at every MPI call boundary: past its onset
// a fated rank announces the failure to the world and returns its own
// terminal error. One pointer test for healthy ranks — fault-free runs
// pay nothing.
func (r *Rank) checkHealth() error {
	f := r.fate
	if f == nil || r.Clock.Now() < f.onset {
		return nil
	}
	w := r.world
	w.announce(r.id, f.onset, w.peerError(r.id))
	if f.silent {
		return fmt.Errorf("mpi: rank %d partitioned at %v: %w", r.id, f.onset, ErrRankSilent)
	}
	return fmt.Errorf("mpi: rank %d halted at %v: %w", r.id, f.onset, ErrRankCrashed)
}

// announceQuiet quiesces a rank that returned an error from Run's fn: it
// will issue no further sends, so peers blocked on it must be woken or
// they hang — the failure cascades deterministically through collectives.
// The quiesce instant is the rank's own clock at the error return.
func (w *World) announceQuiet(id int) {
	r := w.ranks[id]
	if w.markAnnounced(id) {
		return
	}
	w.cascadeQuiets.Add(1)
	w.sweep(id, r.Clock.Now(), w.peerError(id))
}

// announce publishes rank id's failure at onset (idempotent).
func (w *World) announce(id int, onset simtime.Time, err error) {
	if w.markAnnounced(id) {
		return
	}
	w.sweep(id, onset, err)
}

// markAnnounced records the announcement, reporting true if it already
// happened.
func (w *World) markAnnounced(id int) bool {
	w.announceMu.Lock()
	defer w.announceMu.Unlock()
	if w.announced == nil {
		w.announced = make(map[int]bool)
	}
	if w.announced[id] {
		return true
	}
	w.announced[id] = true
	return false
}

// sweep is the watchdog's wake pass for rank id failing at onset:
//
//  1. id's own mailbox goes dead — senders already queued there (and any
//     arriving later) get their senderDone signaled with err at
//     max(RTS arrival, onset) + Deadline, the instant a real transport's
//     retransmission timeout would declare the peer gone.
//  2. every other mailbox records id as failed and wakes posted receives
//     matching id (or AnySource — a wildcard receive cannot rule the dead
//     rank out, exactly ULFM's MPI_ANY_SOURCE semantics) with a failure
//     envelope at max(post time, onset) + Deadline.
//
// All of id's real messages were injected synchronously in its program
// order before the sweep, and post() consults the unexpected queue before
// the failed-source table, so no real message is ever displaced by a
// failure envelope.
func (w *World) sweep(id int, onset simtime.Time, err error) {
	own := w.ranks[id].box
	own.mu.Lock()
	own.dead = true
	own.deadAt = onset
	own.failErr = err
	pending := own.unexpected
	own.unexpected = nil
	own.posted = nil // the dead rank's own waits never resume
	own.mu.Unlock()
	for _, env := range pending {
		w.failSend(env, onset, err)
	}

	for _, peer := range w.ranks {
		if peer.id == id {
			continue
		}
		box := peer.box
		box.mu.Lock()
		if box.failedSrcs == nil {
			box.failedSrcs = make(map[int]srcFail)
		}
		box.failedSrcs[id] = srcFail{onset: onset, err: err}
		var woken []*recvPost
		rest := box.posted[:0]
		for _, p := range box.posted {
			if srcMatches(p.src, id) {
				woken = append(woken, p)
			} else {
				rest = append(rest, p)
			}
		}
		box.posted = rest
		box.mu.Unlock()
		for _, p := range woken {
			t := simtime.Max(p.postTime, onset).Add(w.health.Deadline)
			p.matched <- failEnvelope(id, p.tag, t, err)
			w.watchdogWakeups.Add(1)
		}
	}
}

// failSend completes a sender blocked on an envelope the dead rank will
// never match: the send "times out" at max(RTS arrival, onset) + Deadline.
// Eager envelopes complete locally at injection, so there is no waiter.
func (w *World) failSend(env *envelope, onset simtime.Time, err error) {
	if env.eager || env.senderDone == nil {
		return
	}
	t := simtime.Max(env.rtsArrival, onset).Add(w.health.Deadline)
	if env.pipelined {
		// Retire the envelope's lane ticket so later pipelined sends to
		// the pair — which will fail the same way — are not parked behind
		// it forever.
		lane := &w.ranks[env.src].pipeTx[env.dst]
		lane.retire(env.ticket, func() {
			env.senderDone <- sendOutcome{t: t, err: err}
			close(env.done)
		})
		w.watchdogWakeups.Add(1)
		return
	}
	env.senderDone <- sendOutcome{t: t, err: err}
	w.watchdogWakeups.Add(1)
}

// failEnvelope synthesizes the envelope a woken receive consumes: it flows
// through the ordinary waitRecv paths (advance to the detection instant,
// surface the wrapped error) with no staging buffer and no payload.
func failEnvelope(src, tag int, t simtime.Time, err error) *envelope {
	return &envelope{
		src: src, tag: tag,
		matchTime: t, dataArrival: t,
		deliveryErr: err,
	}
}

// Agree reaches agreement on the failed-rank set among survivors — the
// runtime's MPIX_Comm_agree. The returned set is identical on every
// caller (it is the fated set, fixed at initialization); the cost charged
// is an allreduce over one machine word: 2*ceil(log2 live) control-message
// rounds on the caller's clock.
func (r *Rank) Agree() ([]int, error) {
	if err := r.checkHealth(); err != nil {
		return nil, err
	}
	w := r.world
	live := w.size - len(w.doomed)
	if live > 1 {
		rounds := 0
		for n := 1; n < live; n <<= 1 {
			rounds++
		}
		link := w.cluster.InterNode
		r.Clock.Advance(simtime.Duration(2*rounds) * (link.PerMsgOverhead + link.Latency))
	}
	return append([]int(nil), w.doomed...), nil
}

// buildLive precomputes the sorted live set at initialization.
func (w *World) buildLive() {
	sort.Ints(w.doomed)
	w.live = w.live[:0]
	fated := make(map[int]bool, len(w.doomed))
	for _, id := range w.doomed {
		fated[id] = true
	}
	for id := 0; id < w.size; id++ {
		if !fated[id] {
			w.live = append(w.live, id)
		}
	}
}
