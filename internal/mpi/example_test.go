package mpi_test

import (
	"fmt"
	"log"

	"mpicomp/internal/core"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/mpi"
)

// A two-rank job on simulated Longhorn exchanging a compressed
// GPU-resident message. The framework compresses inside the rendezvous
// protocol; MPC guarantees the payload is restored bit-exactly.
func Example() {
	world, err := mpi.NewWorld(mpi.Options{
		Cluster: hw.Longhorn(),
		Nodes:   2,
		PPN:     1,
		Engine:  core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC},
	})
	if err != nil {
		log.Fatal(err)
	}

	values := make([]float32, 1<<20) // 4 MB, constant -> compresses hard
	for i := range values {
		values[i] = 2.5
	}

	_, err = world.Run(func(r *mpi.Rank) error {
		buf := &gpusim.Buffer{Data: core.FloatsToBytes(nil, values), Loc: gpusim.Device, Dev: r.Dev}
		if r.ID() == 0 {
			return r.Send(1, 0, buf)
		}
		recv := &gpusim.Buffer{Data: make([]byte, len(values)*4), Loc: gpusim.Device, Dev: r.Dev}
		if err := r.Recv(0, 0, recv); err != nil {
			return err
		}
		fmt.Println("first value:", core.BytesToFloats(recv.Data)[0])
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compression ratio: %.0fx\n", world.Rank(0).Engine.RatioAchieved())
	// Output:
	// first value: 2.5
	// compression ratio: 32x
}

// Collectives ride the same compressed path: a broadcast relays the
// compressed payload through the tree and decompresses once per rank.
func ExampleRank_Bcast() {
	world, err := mpi.NewWorld(mpi.Options{
		Cluster: hw.FronteraLiquid(),
		Nodes:   2,
		PPN:     2,
		Engine:  core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	const n = 1 << 18 // 1 MB
	_, err = world.Run(func(r *mpi.Rank) error {
		buf := &gpusim.Buffer{Data: make([]byte, 4*n), Loc: gpusim.Device, Dev: r.Dev}
		if r.ID() == 0 {
			vals := make([]float32, n)
			for i := range vals {
				vals[i] = 1.0
			}
			copy(buf.Data, core.FloatsToBytes(nil, vals))
		}
		if err := r.Bcast(0, buf); err != nil {
			return err
		}
		if r.ID() == world.Size()-1 {
			fmt.Println("last rank got:", core.BytesToFloats(buf.Data)[n-1])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// last rank got: 1
}
