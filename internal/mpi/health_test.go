package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"mpicomp/internal/core"
	"mpicomp/internal/faults"
	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
)

// findFateSeed scans for a seed whose fate draws produce exactly the
// requested crash/silence split over ranks ranks. Fates are a pure
// function of (seed, rank), so the scan exactly predicts what NewWorld
// will draw.
func findFateSeed(t *testing.T, ranks int, cfg faults.Config, wantCrashes, wantSilences int) int64 {
	t.Helper()
	for seed := int64(1); seed < 20000; seed++ {
		c := cfg
		c.Seed = seed
		inj := faults.New(c)
		crashes, silences := 0, 0
		for id := 0; id < ranks; id++ {
			if _, silent, failed := inj.RankFate(id); failed {
				if silent {
					silences++
				} else {
					crashes++
				}
			}
		}
		if crashes == wantCrashes && silences == wantSilences {
			return seed
		}
	}
	t.Fatalf("no seed yields crashes=%d silences=%d over %d ranks", wantCrashes, wantSilences, ranks)
	return 0
}

// assertNoRankGoroutines fails the test if rank goroutines from a
// completed RunAll are still alive — a blocked waiter the watchdog
// missed. RunAll joins its goroutines, so any survivor here is a real
// leak, not a straggler; a short grace period absorbs exit latency.
func assertNoRankGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		leaked := 0
		for _, g := range strings.Split(stacks, "\n\n") {
			if strings.Contains(g, "(*World).RunAll") {
				leaked++
			}
		}
		if leaked == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d rank goroutines leaked after RunAll returned:\n%s", leaked, stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashStopAllReduceAbort is the tentpole acceptance scenario: a
// 16-rank allreduce with one seeded crash-stop. Every survivor must
// return a PeerError carrying the identical failed-rank set within a
// bounded simulated time, the fated rank must observe its own crash, and
// no goroutine may hang.
func TestCrashStopAllReduceAbort(t *testing.T) {
	const nodes, ppn = 8, 2
	fcfg := faults.Config{CrashRate: 0.12, FailWindow: 400 * simtime.Microsecond}
	fcfg.Seed = findFateSeed(t, nodes*ppn, fcfg, 1, 0)
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn,
		Faults: &fcfg,
		Health: HealthPolicy{Deadline: 200 * simtime.Microsecond},
	})
	doomed := w.HealthStats().Doomed
	if len(doomed) != 1 {
		t.Fatalf("doomed = %v, want exactly one fated rank", doomed)
	}

	vals := make([]float32, 16<<10) // 64 KiB: rendezvous path
	for i := range vals {
		vals[i] = 1
	}
	times, errs := w.RunAll(func(r *Rank) error {
		send := devBuf(r, vals)
		recv := emptyDevBuf(r, len(vals))
		for iter := 0; iter < 50; iter++ {
			if err := r.AllreduceSum(send, recv); err != nil {
				return err
			}
		}
		return errors.New("no failure surfaced in 50 allreduces")
	})
	assertNoRankGoroutines(t)

	for id, err := range errs {
		if err == nil {
			t.Fatalf("rank %d returned nil, want a failure", id)
		}
		if id == doomed[0] {
			if !errors.Is(err, ErrRankCrashed) {
				t.Errorf("fated rank %d: %v, want ErrRankCrashed", id, err)
			}
			continue
		}
		var pe *PeerError
		if !errors.As(err, &pe) || !errors.Is(err, ErrPeerFailed) {
			t.Errorf("survivor %d: %v, want a PeerError wrapping ErrPeerFailed", id, err)
			continue
		}
		if len(pe.Ranks) != 1 || pe.Ranks[0] != doomed[0] {
			t.Errorf("survivor %d observed failed set %v, want %v (agreement property)", id, pe.Ranks, doomed)
		}
		if times[id] >= simtime.Time(simtime.Second) {
			t.Errorf("survivor %d finished at %v — watchdog deadline not bounded", id, times[id])
		}
	}
	if st := w.HealthStats(); st.WatchdogWakeups == 0 {
		t.Error("watchdog never woke a blocked operation")
	}
}

// TestCrashShrinkAllReduceCompletes is the shrink half of the acceptance
// scenario: with ShrinkCollectives the survivors complete the allreduce
// over the surviving subset and compute the exact sum of the live
// contributions; the fated ranks error out instead of participating.
func TestCrashShrinkAllReduceCompletes(t *testing.T) {
	const nodes, ppn = 8, 2
	fcfg := faults.Config{CrashRate: 0.12}
	fcfg.Seed = findFateSeed(t, nodes*ppn, fcfg, 2, 0)
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn,
		Faults: &fcfg,
		Health: HealthPolicy{ShrinkCollectives: true},
	})
	doomed := w.HealthStats().Doomed
	if len(doomed) != 2 {
		t.Fatalf("doomed = %v, want two fated ranks", doomed)
	}
	fated := map[int]bool{doomed[0]: true, doomed[1]: true}
	var wantSum float32
	for id := 0; id < nodes*ppn; id++ {
		if !fated[id] {
			wantSum += float32(id + 1)
		}
	}

	const words = 16 << 10
	_, errs := w.RunAll(func(r *Rank) error {
		vals := make([]float32, words)
		for i := range vals {
			vals[i] = float32(r.ID() + 1)
		}
		send := devBuf(r, vals)
		recv := emptyDevBuf(r, words)
		if err := r.AllreduceSum(send, recv); err != nil {
			return err
		}
		got := core.BytesToFloats(recv.Data)
		for i := 0; i < len(got); i += 997 {
			if got[i] != wantSum {
				return fmt.Errorf("rank %d word %d = %v, want %v", r.ID(), i, got[i], wantSum)
			}
		}
		return nil
	})
	assertNoRankGoroutines(t)
	for id, err := range errs {
		if fated[id] {
			if err == nil || !(errors.Is(err, ErrPeerFailed) || errors.Is(err, ErrRankCrashed)) {
				t.Errorf("fated rank %d: %v, want exclusion or crash error", id, err)
			}
		} else if err != nil {
			t.Errorf("survivor %d failed under shrink: %v", id, err)
		}
	}
}

// TestSilentPeerWatchdog pins the watchdog timeline for a silent
// (partitioned) peer: the receiver unblocks with ErrPeerFailed close to
// onset + Deadline instead of hanging, and the silent rank observes its
// own partition.
func TestSilentPeerWatchdog(t *testing.T) {
	fcfg := faults.Config{SilentRate: 0.5, FailWindow: 150 * simtime.Microsecond}
	for seed := int64(1); ; seed++ {
		if seed > 20000 {
			t.Fatal("no seed leaves rank 0 healthy and silences rank 1")
		}
		c := fcfg
		c.Seed = seed
		inj := faults.New(c)
		_, _, failed0 := inj.RankFate(0)
		_, silent1, failed1 := inj.RankFate(1)
		if !failed0 && failed1 && silent1 {
			fcfg.Seed = seed
			break
		}
	}
	const deadline = 250 * simtime.Microsecond
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Faults: &fcfg,
		Health: HealthPolicy{Deadline: deadline},
	})

	times, errs := w.RunAll(func(r *Rank) error {
		buf := emptyDevBuf(r, 1024) // 4 KiB: eager path
		vals := make([]float32, 1024)
		for i := 0; i < 1000; i++ {
			var err error
			if r.ID() == 0 {
				err = r.Recv(1, i, buf)
			} else {
				err = r.Send(0, i, devBuf(r, vals))
			}
			if err != nil {
				return err
			}
		}
		return errors.New("silence never surfaced")
	})
	assertNoRankGoroutines(t)
	if !errors.Is(errs[0], ErrPeerFailed) {
		t.Errorf("receiver: %v, want ErrPeerFailed", errs[0])
	}
	if !errors.Is(errs[1], ErrRankSilent) {
		t.Errorf("silent rank: %v, want ErrRankSilent", errs[1])
	}
	// The receiver's failure is detected at max(post, onset) + Deadline;
	// with onset under FailWindow and eager traffic before it, the finish
	// time must stay within a small multiple of that horizon.
	if bound := simtime.Time(2 * (fcfg.FailWindow + deadline)); times[0] >= bound {
		t.Errorf("receiver finished at %v, want under %v", times[0], bound)
	}
}

// TestAgreeConsistentDoomedSet exercises the ULFM-style agreement: every
// caller gets the identical failed set, and the call charges simulated
// communication rounds.
func TestAgreeConsistentDoomedSet(t *testing.T) {
	const nodes, ppn = 8, 2
	fcfg := faults.Config{CrashRate: 0.1, SilentRate: 0.1}
	fcfg.Seed = findFateSeed(t, nodes*ppn, fcfg, 1, 1)
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn, Faults: &fcfg})
	doomed := w.HealthStats().Doomed
	if len(doomed) != 2 {
		t.Fatalf("doomed = %v, want two fated ranks", doomed)
	}

	sets := make([][]int, nodes*ppn)
	times, errs := w.RunAll(func(r *Rank) error {
		s, err := r.Agree()
		if err != nil {
			return err
		}
		sets[r.ID()] = s
		return nil
	})
	for id, err := range errs {
		if err != nil {
			t.Fatalf("rank %d Agree: %v", id, err)
		}
		if len(sets[id]) != len(doomed) {
			t.Fatalf("rank %d agreed on %v, want %v", id, sets[id], doomed)
		}
		for i := range doomed {
			if sets[id][i] != doomed[i] {
				t.Errorf("rank %d agreed on %v, want %v", id, sets[id], doomed)
				break
			}
		}
		if times[id] == 0 {
			t.Errorf("rank %d Agree charged no simulated time", id)
		}
	}
	st := w.HealthStats()
	if st.Crashes != 1 || st.Silences != 1 {
		t.Errorf("HealthStats crashes=%d silences=%d, want 1 and 1", st.Crashes, st.Silences)
	}
}

// TestBreakerDegradesCodecFaults is the degradation acceptance scenario:
// a codec that corrupts every compressed transfer must not exhaust the
// retry budget — the per-peer breaker opens and the pair completes its
// traffic uncompressed, bit-exactly, with deterministic transitions.
func TestBreakerDegradesCodecFaults(t *testing.T) {
	const msgs = 6
	const words = 32 << 10 // 128 KiB, above the compression threshold
	vals := make([]float32, words)
	for i := range vals {
		vals[i] = float32(i % 251)
	}
	run := func() (core.BreakerStats, int, []simtime.Time) {
		w := mustWorld(t, Options{
			Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
			Engine: core.Config{
				Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
				Threshold: 32 << 10, PoolBufBytes: 2 << 20,
				Breaker: core.BreakerPolicy{Threshold: 3, Cooldown: simtime.Millisecond, Seed: 11},
			},
			Faults: &faults.Config{Seed: 5, CodecRate: 1},
		})
		times, errs := w.RunAll(func(r *Rank) error {
			if r.ID() == 0 {
				for m := 0; m < msgs; m++ {
					if err := r.Send(1, m, devBuf(r, vals)); err != nil {
						return err
					}
				}
				return nil
			}
			for m := 0; m < msgs; m++ {
				buf := emptyDevBuf(r, words)
				if err := r.Recv(0, m, buf); err != nil {
					return err
				}
				got := core.BytesToFloats(buf.Data)
				for i := 0; i < len(got); i += 997 {
					if got[i] != vals[i] {
						return fmt.Errorf("msg %d word %d = %v, want %v", m, i, got[i], vals[i])
					}
				}
			}
			return nil
		})
		for id, err := range errs {
			if err != nil {
				t.Fatalf("rank %d under total codec failure: %v (breaker must keep delivery alive)", id, err)
			}
		}
		return w.Rank(0).Engine.BreakerSnapshot(), w.Rank(1).Engine.FallbackRecvs, times
	}

	bs, recvs, times := run()
	if bs.Opens == 0 {
		t.Error("breaker never opened under a 100% codec fault rate")
	}
	if bs.FallbackSends == 0 {
		t.Error("no sends were forced onto the uncompressed path")
	}
	if recvs == 0 {
		t.Error("receiver never saw the Fallback negotiation bit")
	}

	bs2, recvs2, times2 := run()
	if bs != bs2 || recvs != recvs2 {
		t.Errorf("breaker transitions not deterministic: %+v/%d vs %+v/%d", bs, recvs, bs2, recvs2)
	}
	for i := range times {
		if times[i] != times2[i] {
			t.Errorf("rank %d timeline differs across identical runs: %v vs %v", i, times[i], times2[i])
		}
	}
}

// TestBreakerHalfOpenCloses drives the full state cycle against a codec
// that heals: closed -> open (consecutive failures) -> half-open probe
// after the cooldown -> closed again once the probe succeeds.
func TestBreakerHalfOpenCloses(t *testing.T) {
	const words = 32 << 10
	vals := make([]float32, words)
	for i := range vals {
		vals[i] = float32(i % 17)
	}
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{
			Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			Threshold: 32 << 10, PoolBufBytes: 2 << 20,
			Breaker: core.BreakerPolicy{Threshold: 2, Cooldown: 300 * simtime.Microsecond, Seed: 3},
		},
		Faults: &faults.Config{
			Seed: 9, CodecRate: 1,
			CodecUntil: 200 * simtime.Microsecond, // the codec heals here
		},
	})
	const msgs = 3
	_, errs := w.RunAll(func(r *Rank) error {
		for m := 0; m < msgs; m++ {
			if r.ID() == 0 {
				if m == 1 {
					// Idle past the heal instant and the open cooldown so
					// the next send becomes the half-open probe.
					r.Clock.Advance(simtime.Millisecond)
				}
				if err := r.Send(1, m, devBuf(r, vals)); err != nil {
					return err
				}
			} else {
				buf := emptyDevBuf(r, words)
				if err := r.Recv(0, m, buf); err != nil {
					return err
				}
				got := core.BytesToFloats(buf.Data)
				for i := 0; i < len(got); i += 499 {
					if got[i] != vals[i] {
						return fmt.Errorf("msg %d word %d = %v, want %v", m, i, got[i], vals[i])
					}
				}
			}
		}
		return nil
	})
	for id, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", id, err)
		}
	}
	bs := w.Rank(0).Engine.BreakerSnapshot()
	if bs.Opens == 0 || bs.Probes == 0 || bs.Closes == 0 {
		t.Errorf("expected a full open -> probe -> close cycle, got %+v", bs)
	}
}

// TestRetryDelayClamp pins the backoff clamp: delay() must saturate at
// maxRetryBackoff for any attempt count (the doubling previously
// overflowed for attempts past 62) and stay monotone below the cap.
func TestRetryDelayClamp(t *testing.T) {
	p := RetryPolicy{}
	prev := simtime.Duration(0)
	for a := 0; a < 70; a++ {
		d := p.delay(a)
		if d <= 0 || d > maxRetryBackoff {
			t.Fatalf("delay(%d) = %v, out of (0, %v]", a, d, maxRetryBackoff)
		}
		if d < prev {
			t.Fatalf("delay(%d) = %v < delay(%d) = %v: non-monotone", a, d, a-1, prev)
		}
		prev = d
	}
	for _, a := range []int{62, 63, 64, 100, 1 << 20, 1 << 30} {
		if d := p.delay(a); d != maxRetryBackoff {
			t.Errorf("delay(%d) = %v, want clamp at %v", a, d, maxRetryBackoff)
		}
	}
	if d := (RetryPolicy{Backoff: 2 * maxRetryBackoff}).delay(0); d != maxRetryBackoff {
		t.Errorf("oversized base backoff: delay(0) = %v, want %v", d, maxRetryBackoff)
	}
	if d := (RetryPolicy{Backoff: 3 * simtime.Microsecond}).delay(2); d != 12*simtime.Microsecond {
		t.Errorf("delay(2) with 3us base = %v, want 12us", d)
	}
}

// TestCrashDeterminismAcrossWorkers asserts the failure machinery is
// scheduling-independent: the same seeded chaos run produces identical
// fault counters, health counters, per-rank errors and clocks whether the
// host codec pool runs 1, 2 or 8 workers.
func TestCrashDeterminismAcrossWorkers(t *testing.T) {
	const nodes, ppn = 4, 2
	fcfg := faults.Config{CrashRate: 0.15, CodecRate: 0.3, FailWindow: 300 * simtime.Microsecond}
	fcfg.Seed = findFateSeed(t, nodes*ppn, fcfg, 1, 0)

	type outcome struct {
		fs    faults.Stats
		hs    HealthStats
		times []simtime.Time
		errs  []string
	}
	run := func(workers int) outcome {
		f := fcfg
		w := mustWorld(t, Options{
			Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn,
			Engine: core.Config{
				Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
				Threshold: 32 << 10, PoolBufBytes: 2 << 20, Workers: workers,
				Breaker: core.BreakerPolicy{Threshold: 2, Seed: 7},
			},
			Faults: &f,
			Health: HealthPolicy{Deadline: 200 * simtime.Microsecond},
		})
		vals := make([]float32, 32<<10)
		for i := range vals {
			vals[i] = float32(i % 101)
		}
		times, errs := w.RunAll(func(r *Rank) error {
			send := devBuf(r, vals)
			recv := emptyDevBuf(r, len(vals))
			for iter := 0; iter < 12; iter++ {
				if err := r.AllreduceSum(send, recv); err != nil {
					return err
				}
			}
			return nil
		})
		out := outcome{fs: w.FaultStats(), hs: w.HealthStats(), times: times}
		for _, err := range errs {
			out.errs = append(out.errs, fmt.Sprint(err))
		}
		return out
	}

	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.fs != base.fs {
			t.Errorf("workers=%d fault stats %+v != workers=1 %+v", workers, got.fs, base.fs)
		}
		if got.hs.WatchdogWakeups != base.hs.WatchdogWakeups || got.hs.CascadeQuiets != base.hs.CascadeQuiets ||
			got.hs.Crashes != base.hs.Crashes || got.hs.Silences != base.hs.Silences {
			t.Errorf("workers=%d health stats %+v != workers=1 %+v", workers, got.hs, base.hs)
		}
		for i := range base.times {
			if got.times[i] != base.times[i] {
				t.Errorf("workers=%d rank %d clock %v != %v", workers, i, got.times[i], base.times[i])
			}
		}
		for i := range base.errs {
			if got.errs[i] != base.errs[i] {
				t.Errorf("workers=%d rank %d error %q != %q", workers, i, got.errs[i], base.errs[i])
			}
		}
	}
}
