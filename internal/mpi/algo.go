package mpi

// Allreduce algorithm dispatch. AllreduceSum owns an algorithm *space* —
// reduce+broadcast, pipelined and blocking rings, recursive doubling,
// Rabenseifner, and the two-level leader schedule — and the choice
// routes through a pluggable tuner (internal/tune implements one) unless
// the world pins a schedule. The dispatch also brackets each schedule
// with an engine cache tag, so cached compressed payloads never leak
// between algorithms being compared over the same unchanged buffer.

import (
	"fmt"

	"mpicomp/internal/gpusim"
	"mpicomp/internal/simtime"
)

// AllreduceAlgo names an AllreduceSum schedule, for pinning, tuner
// tables, and CLI flags.
type AllreduceAlgo int

const (
	// AllreduceAuto (the zero value) routes through the world's tuner
	// when one is wired and the historical reduce+broadcast otherwise.
	AllreduceAuto AllreduceAlgo = iota
	// AllreduceReduceBcast is the original schedule: binomial reduce to
	// the first rank, binomial broadcast back out.
	AllreduceReduceBcast
	// AllreduceRing is the pipelined/relay ring (RingAllreduceSum).
	AllreduceRing
	// AllreduceRingBlocking is the whole-block ring oracle.
	AllreduceRingBlocking
	// AllreduceRecursiveDoubling is the latency-optimal log2 P schedule.
	AllreduceRecursiveDoubling
	// AllreduceRabenseifner is reduce-scatter + allgather over halving/
	// doubling distances.
	AllreduceRabenseifner
	// AllreduceTwoLevel is the topology-aware leader schedule.
	AllreduceTwoLevel
)

// String returns the CLI name of the schedule (cli.ParseAlgo inverts it).
func (a AllreduceAlgo) String() string {
	switch a {
	case AllreduceAuto:
		return "auto"
	case AllreduceReduceBcast:
		return "reduce-bcast"
	case AllreduceRing:
		return "ring"
	case AllreduceRingBlocking:
		return "ring-blocking"
	case AllreduceRecursiveDoubling:
		return "rd"
	case AllreduceRabenseifner:
		return "rab"
	case AllreduceTwoLevel:
		return "two-level"
	}
	return fmt.Sprintf("algo(%d)", int(a))
}

// scheduleTag is the engine cache namespace the schedule runs under.
// The historical default keeps tag 0 — the namespace every other
// collective uses — so pre-dispatch cache behavior is unchanged.
func (a AllreduceAlgo) scheduleTag() uint32 {
	if a == AllreduceReduceBcast {
		return 0
	}
	return uint32(a)
}

// TunePoint describes one AllreduceSum call to the tuner: the shape the
// selector keys on, plus the operation index that lets observations of
// the same call merge across ranks (every rank reports the same Op for
// the same collective — program order is lockstep).
type TunePoint struct {
	Bytes int
	Ranks int
	Nodes int
	PPN   int
	Op    uint64
}

// CollTuner is the autotuner hook AllreduceSum dispatches through when
// the world's algorithm is AllreduceAuto. Implementations must make Pick
// a pure function of state that changes only at world-synchronous points
// (internal/tune folds observations in its Advance), because every rank
// calls Pick independently and they must all run the same schedule.
type CollTuner interface {
	// PickAllreduce selects the schedule for one collective call. It is
	// called by every rank with an identical TunePoint and must return
	// an identical answer on each.
	PickAllreduce(p TunePoint) AllreduceAlgo
	// ObserveAllreduce reports one rank's measured virtual-clock latency
	// for a completed collective. Implementations merge observations of
	// the same (point, algo, op) commutatively — call order across ranks
	// is scheduling-dependent.
	ObserveAllreduce(p TunePoint, algo AllreduceAlgo, elapsed simtime.Duration)
	// NeedProbe reports whether the tuner still wants a compressibility
	// probe for this point's size class (false once warm-started).
	NeedProbe(p TunePoint) bool
	// ObserveProbeSample feeds the first-touch ratio probe a bounded
	// prefix of the rank's send buffer. Merged commutatively, like
	// ObserveAllreduce.
	ObserveProbeSample(p TunePoint, sample []byte)
}

// probeSampleBytes bounds the compressibility probe's input: enough
// bytes for a stable ratio estimate, cheap enough to ride along any
// collective's first touch of a size class.
const probeSampleBytes = 64 << 10

func probeSample(buf *gpusim.Buffer) []byte {
	n := buf.Len()
	if n > probeSampleBytes {
		n = probeSampleBytes
	}
	return buf.Data[:n]
}

// runAllreduce executes one pinned schedule under its cache tag.
func (r *Rank) runAllreduce(algo AllreduceAlgo, sendBuf, recvBuf *gpusim.Buffer) error {
	r.Engine.SetScheduleTag(algo.scheduleTag())
	defer r.Engine.SetScheduleTag(0)
	switch algo {
	case AllreduceRing:
		return r.ringAllreduceSum(sendBuf, recvBuf)
	case AllreduceRingBlocking:
		return r.ringAllreduceSumBlocking(sendBuf, recvBuf)
	case AllreduceRecursiveDoubling:
		return r.rdAllreduce(sendBuf, recvBuf, true)
	case AllreduceRabenseifner:
		return r.rabAllreduce(sendBuf, recvBuf, true)
	case AllreduceTwoLevel:
		return r.allreduceSumHierarchical(sendBuf, recvBuf)
	default:
		return r.allreduceSum(sendBuf, recvBuf)
	}
}
