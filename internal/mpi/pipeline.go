package mpi

import (
	"fmt"

	"mpicomp/internal/core"
	"mpicomp/internal/faults"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/simtime"
)

// Pipelined rendezvous (extension). MVAPICH2-GDR moves large GPU messages
// through a chunk pipeline; composing that with on-the-fly compression
// lets chunk k's network transfer overlap chunk k+1's compression kernel
// on the sender and chunk k-1's decompression on the receiver. The
// whole-message path of the paper's Figure 4 serializes
// compress -> transfer -> decompress; the pipeline's end-to-end time
// approaches max(compress, transfer, decompress) plus a fill term.
//
// Each chunk carries its own compression header, so mixed chunks
// (compressed and bypassed) are fine and the existing engine is reused
// unchanged.

// chunkPart is one pipeline stage's payload.
type chunkPart struct {
	payload []byte
	hdr     core.Header
	// origBytes is the chunk's span in the original message.
	origBytes int
	// ready is when the sender finished compressing this chunk.
	ready simtime.Time
	// arrival is when the chunk's last byte reaches the receiver
	// (filled at match time).
	arrival simtime.Time
}

// pipelineEligible reports whether a message should take the chunked path.
func (r *Rank) pipelineEligible(buf *gpusim.Buffer) bool {
	chunk := r.Engine.Config().PipelineChunkBytes
	return chunk > 0 && buf.Len() >= 2*chunk && buf.Len()%4 == 0
}

// isendPipelined starts a chunked rendezvous send: chunks are compressed
// in order on the caller's clock, each becoming ready for transfer as its
// kernel completes.
func (r *Rank) isendPipelined(dst, tag int, buf *gpusim.Buffer, seq uint64) (*Request, error) {
	w := r.world
	chunkBytes := r.Engine.Config().PipelineChunkBytes
	link := w.fabric.LinkFor(r.Node(), w.nodeOf(dst))

	// The RTS goes out first — the receiver can match, stage, and
	// return the CTS while the sender is still compressing chunks.
	rtsArrival, rtsErr := w.controlArrival(faults.KindRTS, r.id, dst, seq,
		r.Node(), w.nodeOf(dst), r.Clock.Now())
	env := &envelope{
		src: r.id, tag: tag, seq: seq,
		rtsArrival:  rtsArrival,
		sendPost:    r.Clock.Now(),
		senderDone:  make(chan sendOutcome, 1),
		hdr:         core.Header{Algo: core.AlgoNone, OrigBytes: buf.Len(), CompBytes: buf.Len()},
		pipelined:   true,
		deliveryErr: rtsErr,
	}
	for off := 0; off < buf.Len(); off += chunkBytes {
		n := chunkBytes
		if off+n > buf.Len() {
			n = buf.Len() - off
		}
		view := buf.Slice(off, n)
		payload, hdr := r.Engine.CompressForLinkCached(r.Clock, view, link.BandwidthGBps)
		env.chunks = append(env.chunks, chunkPart{
			payload:   payload,
			hdr:       hdr,
			origBytes: n,
			ready:     r.Clock.Now(),
		})
	}
	r.Engine.NotePipelinedChunks(len(env.chunks))
	req := &Request{rank: r, isSend: true, env: env}
	w.ranks[dst].box.deliver(env)
	return req, nil
}

// completePipelinedMatch resolves the chunk transfer timeline at match
// time (the pipelined analogue of completeMatch).
func completePipelinedMatch(p *recvPost, env *envelope) {
	r := p.rank
	w := r.world
	match := simtime.Max(p.postTime, env.rtsArrival)
	if env.deliveryErr != nil {
		env.matchTime = match
		env.dataArrival = match
		env.senderDone <- sendOutcome{t: match, err: env.deliveryErr}
		return
	}
	// One staging buffer covers the largest chunk; it is recycled per
	// chunk on the receive side.
	biggest := 0
	for _, c := range env.chunks {
		if len(c.payload) > biggest {
			biggest = len(c.payload)
		}
	}
	stageClk := simtime.NewClock(match)
	env.staged = r.Engine.StageRecv(stageClk, core.Header{
		Algo: core.AlgoMPC, Compressed: true,
		OrigBytes: biggest, CompBytes: biggest,
	})
	env.matchTime = stageClk.Now()
	srcNode := w.nodeOf(env.src)
	dstNode := w.nodeOf(r.id)
	cts, err := w.controlArrival(faults.KindCTS, env.src, r.id, env.seq, dstNode, srcNode, env.matchTime)
	if err != nil {
		env.deliveryErr = err
		env.dataArrival = cts
		env.senderDone <- sendOutcome{t: cts, err: err}
		return
	}
	last := simtime.Time(0)
	track := fmt.Sprintf("net %d->%d", env.src, r.id)
	for i := range env.chunks {
		c := &env.chunks[i]
		ready := simtime.Max(c.ready, cts)
		// Each chunk gets its own fault identity: the message seq shifted
		// left with the chunk index mixed in, so chunk fates are
		// independent and still deterministic.
		wire, hdr, arrival, err := w.deliverData(env.src, r.id,
			env.seq<<16|uint64(i), srcNode, dstNode, ready, c.payload, c.hdr, nil)
		if err != nil {
			// One chunk out of budget fails the whole message; later
			// chunks are not transferred.
			env.deliveryErr = err
			env.dataArrival = simtime.Max(last, arrival)
			env.senderDone <- sendOutcome{t: env.dataArrival, err: err}
			return
		}
		c.payload = wire
		c.hdr = hdr
		c.arrival = arrival
		w.tracer.Add(track, fmt.Sprintf("chunk %d", i), ready, c.arrival)
		if c.arrival > last {
			last = c.arrival
		}
	}
	env.dataArrival = last
	env.senderDone <- sendOutcome{t: last}
}

// waitRecvPipelined consumes the chunk stream: each chunk is decompressed
// into its slice of the user buffer as it arrives, overlapping with the
// transfers of later chunks.
func (r *Rank) waitRecvPipelined(req *Request, env *envelope) error {
	total := 0
	for _, c := range env.chunks {
		total += c.origBytes
	}
	if total > req.buf.Len() {
		return fmt.Errorf("mpi: pipelined message of %d bytes truncated into %d-byte buffer", total, req.buf.Len())
	}
	r.Clock.AdvanceTo(env.matchTime)
	if env.deliveryErr != nil {
		r.Clock.AdvanceTo(env.dataArrival)
		r.Engine.ReleaseRecv(r.Clock, env.staged)
		return env.deliveryErr
	}
	off := 0
	for i := range env.chunks {
		c := &env.chunks[i]
		r.Clock.AdvanceTo(c.arrival)
		if env.staged != nil && c.hdr.Compressed {
			copy(env.staged.Data, c.payload)
		}
		dst := req.buf.Slice(off, c.origBytes)
		// Verify, then decode, chunk by chunk.
		if err := r.Engine.VerifyPayload(r.Clock, c.hdr, c.payload); err != nil {
			r.Engine.ReleaseRecv(r.Clock, env.staged)
			return fmt.Errorf("mpi: pipelined chunk %d: %w", i, err)
		}
		if err := r.Engine.Decompress(r.Clock, c.hdr, c.payload, dst); err != nil {
			r.Engine.ReleaseRecv(r.Clock, env.staged)
			return fmt.Errorf("mpi: pipelined chunk %d: %w", i, err)
		}
		off += c.origBytes
	}
	r.Engine.ReleaseRecv(r.Clock, env.staged)
	return nil
}
