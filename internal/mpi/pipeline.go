package mpi

import (
	"fmt"
	"sort"
	"sync"

	"mpicomp/internal/core"
	"mpicomp/internal/faults"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/simtime"
)

// Pipelined rendezvous (extension). MVAPICH2-GDR moves large GPU messages
// through a chunk pipeline; composing that with on-the-fly compression
// lets chunk k's network transfer overlap chunk k+1's compression kernel
// on the sender and chunk k-1's decompression on the receiver. The
// whole-message path of the paper's Figure 4 serializes
// compress -> transfer -> decompress; the pipeline's end-to-end time
// approaches max(compress, transfer, decompress) plus a fill term.
//
// Reliability is chunk-granular (DESIGN.md §12): every chunk carries its
// own control header and CRC, retries independently within its own budget
// (a corrupted chunk is selectively NACKed; delivered chunks never cross
// the wire again), and the receiver reassembles completions in arrival
// order. A credit window sized by the receiver's staging pool bounds the
// chunks in flight — pool pressure becomes backpressure, not a mode
// switch — and a three-step degrade ladder (selective retransmit, window
// shrink, per-peer fallback to the blocking whole-message path) keeps a
// lossy pair live. Relayed collective payloads ride the same path as
// chunked wire segments.

// chunkPart is one pipeline stage's payload.
type chunkPart struct {
	payload []byte
	// hdr is the chunk's compression header (zero for relay segments,
	// which decode against the message's own header after reassembly).
	hdr core.Header
	// ctrl is the encoded core.ChunkHeader the chunk travels with; the
	// receiver decodes and validates it before placing the chunk.
	ctrl []byte
	// crc protects the chunk's wire payload (hdr.Checksum for compressed
	// chunks, a per-segment CRC for relay segments).
	crc uint32
	// off and origBytes locate the chunk's span: in the original message
	// for compressed chunks, in the relayed wire payload for segments.
	off, origBytes int
	// compressed routes the chunk through the codec fault model and the
	// sender's circuit breaker.
	compressed bool
	// ready is when the sender finished preparing this chunk.
	ready simtime.Time
	// arrival is when the chunk's last byte reaches the receiver
	// (filled at match time).
	arrival simtime.Time
}

// Degrade ladder step 3 tuning: a pipelined send needing at least
// pipeLossyRetrans chunk retransmissions (or failing outright) counts as a
// lossy stream; pipeDegradeStreak consecutive lossy streams demote the
// peer to the blocking whole-message path for pipeDegradeCooldown of
// virtual time.
const (
	pipeLossyRetrans    = 3
	pipeDegradeStreak   = 2
	pipeDegradeCooldown = 5 * simtime.Millisecond
)

// pipeShrinkThreshold is the cumulative retransmission count within one
// message at which the credit window first halves (degrade ladder step 2);
// each subsequent halving needs double the count.
const pipeShrinkThreshold = 2

// pipePeer is a rank's chunk-stream health record toward one peer. It is
// touched only from the owning rank's goroutine (program order), so the
// ladder's decisions are deterministic.
type pipePeer struct {
	lossyStreak   int
	degradedUntil simtime.Time
}

// pipeLane serializes pipelined match completions toward one destination
// in the sender's program order. A match completes in whichever goroutine
// reaches it first — the sender's at deliver (receive already posted) or
// the receiver's at post (envelope was queued unexpected) — so with
// several sends to the same peer in flight, two chunk timelines would
// otherwise interleave their calendar reservations in host-scheduling
// order and the fabric's gap-backfill placement would vary run to run.
// Tickets are issued at isend (program order); completions retire as
// deferred closures in ticket order, so the shared per-node calendars see
// one deterministic reservation sequence per pair. retire never blocks: a
// completion arriving early parks its closure, and whichever goroutine
// fills the gap drains the backlog — no waiting, so no new deadlock
// surface.
//
// Consequence: a receiver must not Wait on a later pipelined message from
// a sender before posting the receive for an earlier one. Posting all
// receives first and then waiting in any order is fine — completions run
// at match time, not at Wait — and every collective and benchmark here
// already follows that non-overtaking discipline.
type pipeLane struct {
	mu      sync.Mutex
	issued  uint64
	next    uint64
	pending map[uint64]func()
}

// issue hands out the next ticket; called only from the owning rank's
// goroutine, so tickets follow its program order.
func (l *pipeLane) issue() uint64 {
	l.mu.Lock()
	t := l.issued
	l.issued++
	l.mu.Unlock()
	return t
}

// retire parks fn under its ticket, then runs every contiguous parked
// completion from the lane's head in ticket order, all under the lane
// lock.
func (l *pipeLane) retire(ticket uint64, fn func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pending == nil {
		l.pending = make(map[uint64]func())
	}
	l.pending[ticket] = fn
	for {
		f, ok := l.pending[l.next]
		if !ok {
			return
		}
		delete(l.pending, l.next)
		l.next++
		f()
	}
}

// pipeDegraded reports whether dst is currently demoted to the blocking
// whole-message path (degrade ladder step 3).
func (r *Rank) pipeDegraded(dst int) bool {
	return r.Clock.Now() < r.pipe[dst].degradedUntil
}

// notePipeOutcome feeds one completed pipelined send into the degrade
// ladder: consecutive lossy chunk streams demote the peer for a cooldown.
// Called from Wait, in the sender's program order.
func (r *Rank) notePipeOutcome(dst, retransmits int, failed bool) {
	p := &r.pipe[dst]
	if !failed && retransmits < pipeLossyRetrans {
		p.lossyStreak = 0
		return
	}
	p.lossyStreak++
	if p.lossyStreak >= pipeDegradeStreak {
		p.degradedUntil = r.Clock.Now().Add(pipeDegradeCooldown)
		p.lossyStreak = 0
		r.Engine.NotePipeDegrade()
	}
}

// pipelineEligible reports whether an n-byte rendezvous message to dst
// should take the chunked path, counting every bypass by reason so tuning
// can see what the pipeline skipped. Ragged tails are fine — the final
// chunk is simply short (and engine-bypassed when unaligned) — so size is
// the only data-shape gate.
func (r *Rank) pipelineEligible(dst, n int) bool {
	chunk := r.Engine.Config().PipelineChunkBytes
	if chunk <= 0 {
		return false
	}
	if n < 2*chunk {
		r.Engine.NotePipeBypass(true)
		return false
	}
	if r.pipeDegraded(dst) {
		r.Engine.NotePipeBypass(false)
		return false
	}
	return true
}

// isendPipelined starts a chunked rendezvous send: chunks are compressed
// in order on the caller's clock, each becoming ready for transfer as its
// kernel completes. An open codec circuit breaker for dst degrades every
// chunk to its uncompressed form (Fallback set), exactly as on the
// whole-message path.
func (r *Rank) isendPipelined(dst, tag int, buf *gpusim.Buffer, seq uint64) (*Request, error) {
	w := r.world
	chunkBytes := r.Engine.Config().PipelineChunkBytes
	link := w.fabric.LinkFor(r.Node(), w.nodeOf(dst))

	// The RTS goes out first — the receiver can match, stage, and
	// return the CTS while the sender is still compressing chunks.
	rtsArrival, rtsErr := w.controlArrival(faults.KindRTS, r.id, dst, seq,
		r.Node(), w.nodeOf(dst), r.Clock.Now())
	env := &envelope{
		src: r.id, dst: dst, tag: tag, seq: seq,
		rtsArrival:  rtsArrival,
		sendPost:    r.Clock.Now(),
		senderDone:  make(chan sendOutcome, 1),
		hdr:         core.Header{Algo: core.AlgoNone, OrigBytes: buf.Len(), CompBytes: buf.Len()},
		pipelined:   true,
		deliveryErr: rtsErr,
		ticket:      r.pipeTx[dst].issue(),
		done:        make(chan struct{}),
	}
	// BreakerAllow is one cheap check while the breaker is closed; open,
	// it degrades the whole chunk stream to the uncompressed wire form.
	bypassAll := r.Engine.BreakerEnabled() && !r.Engine.BreakerAllow(dst, r.Clock.Now())
	anyCompressed := false
	for off := 0; off < buf.Len(); off += chunkBytes {
		n := chunkBytes
		if off+n > buf.Len() {
			n = buf.Len() - off
		}
		view := buf.Slice(off, n)
		var payload []byte
		var hdr core.Header
		if bypassAll && r.Engine.ShouldCompress(view) {
			payload, hdr = r.Engine.Bypass(r.Clock, view)
			hdr.Fallback = true
		} else {
			payload, hdr = r.Engine.CompressForLinkCached(r.Clock, view, link.BandwidthGBps)
		}
		if hdr.Compressed {
			anyCompressed = true
		}
		ch := core.ChunkHeader{
			Seq: seq, Index: len(env.chunks), Offset: off,
			OrigBytes: n, WireBytes: len(payload), Checksum: hdr.Checksum,
			Last: off+n == buf.Len(),
		}
		env.chunks = append(env.chunks, chunkPart{
			payload: payload, hdr: hdr, ctrl: ch.EncodeChunk(), crc: hdr.Checksum,
			off: off, origBytes: n, compressed: hdr.Compressed,
			ready: r.Clock.Now(),
		})
	}
	if !bypassAll && !anyCompressed && r.Engine.BreakerEnabled() {
		// The breaker allowed the stream — possibly consuming its
		// half-open probe — but no chunk compressed, proving nothing
		// about the codec; rearm so the next send probes again.
		r.Engine.BreakerProbeAborted(dst)
	}
	r.Engine.NotePipelinedChunks(len(env.chunks))
	req := &Request{rank: r, isSend: true, env: env}
	w.ranks[dst].box.deliver(env)
	return req, nil
}

// isendPayloadChunked is the chunked-relay send: an already-prepared wire
// payload (a forwarded compressed message) is segmented into chunks, each
// with its own CRC and control header, and moved under the same
// chunk-granular reliability as a pipelined compression send. The receiver
// reassembles the segments into the original payload before decoding it
// against the message's own header.
func (r *Rank) isendPayloadChunked(dst, tag int, payload []byte, hdr core.Header, seq uint64) (*Request, error) {
	w := r.world
	chunkBytes := r.Engine.Config().PipelineChunkBytes
	// One checksum pass over the payload pays for stamping the
	// per-segment CRCs (the bytes are scanned once either way).
	r.Engine.ChecksumWire(r.Clock, payload)
	rtsArrival, rtsErr := w.controlArrival(faults.KindRTS, r.id, dst, seq,
		r.Node(), w.nodeOf(dst), r.Clock.Now())
	env := &envelope{
		src: r.id, dst: dst, tag: tag, seq: seq,
		payload:     nil, // travels as chunks
		hdr:         hdr,
		rtsArrival:  rtsArrival,
		sendPost:    r.Clock.Now(),
		senderDone:  make(chan sendOutcome, 1),
		pipelined:   true,
		relayChunks: true,
		deliveryErr: rtsErr,
		ticket:      r.pipeTx[dst].issue(),
		done:        make(chan struct{}),
	}
	for off := 0; off < len(payload); off += chunkBytes {
		n := chunkBytes
		if off+n > len(payload) {
			n = len(payload) - off
		}
		seg := payload[off : off+n]
		ch := core.ChunkHeader{
			Seq: seq, Index: len(env.chunks), Offset: off,
			OrigBytes: n, WireBytes: n, Checksum: core.Checksum(seg),
			Relay: true, Last: off+n == len(payload),
		}
		env.chunks = append(env.chunks, chunkPart{
			payload: seg, ctrl: ch.EncodeChunk(), crc: ch.Checksum,
			off: off, origBytes: n, compressed: hdr.Compressed,
			ready: r.Clock.Now(),
		})
	}
	r.Engine.NotePipeRelayChunks(len(env.chunks))
	req := &Request{rank: r, isSend: true, env: env}
	w.ranks[dst].box.deliver(env)
	return req, nil
}

// deliverChunk simulates the bounded-retry transfer of one chunk: attempts
// may be dropped (discovered by the sender's per-chunk retransmission
// timeout) or corrupted (detected by the receiver's checksum pass and
// selectively NACKed — the NACK names exactly this (seq, chunk)); each
// retransmission backs off exponentially on the virtual clock within the
// chunk's own budget. Chunk-specific fates apply on top: a duplicated
// chunk burns the wire twice (the receiver discards the copy by identity),
// a reordered one is held back to land after its successors. It returns
// the delivered bytes, the arrival, and the retransmission count/bytes the
// chunk consumed, or a wrapped ErrDeliveryFailed at a bounded instant once
// the budget is spent.
//
//simlint:nocharge the verification pass is costed on the arrival timestamp (ThroughputTime below), not the rank clock
func (w *World) deliverChunk(src, dst int, seq uint64, chunk, srcNode, dstNode int, ready simtime.Time, payload []byte, crc uint32, compressed bool) ([]byte, simtime.Time, int, int64, error) {
	eng := w.ranks[src].Engine
	limit := w.retry.chunkLimit()
	retrans := 0
	var retransBytes int64
	dup, reorder := w.inj.ChunkFate(src, dst, seq, chunk)
	if reorder {
		ready = ready.Add(w.inj.Config().ReorderDelay)
	}
	for attempt := 0; ; attempt++ {
		if w.linkLost(srcNode, dstNode, ready) || w.inj.ShouldDropChunk(src, dst, seq, chunk, attempt) {
			if attempt >= limit {
				return nil, ready, retrans, retransBytes, fmt.Errorf("mpi: %v %d->%d seq %d chunk %d lost after %d attempts: %w",
					faults.KindChunk, src, dst, seq, chunk, attempt+1, ErrDeliveryFailed)
			}
			ready = ready.Add(w.retry.delay(attempt))
			retrans++
			retransBytes += int64(len(payload))
			continue
		}
		wire, corrupted := w.inj.CorruptChunk(payload, src, dst, seq, chunk, attempt)
		if !corrupted && compressed {
			wire, corrupted = w.inj.CorruptCodecChunk(wire, src, dst, seq, chunk, attempt, ready)
		}
		arrival := w.fabric.Transfer(srcNode, dstNode, ready, len(wire))
		if dup && attempt == 0 {
			// The fabric delivers the chunk twice: the copy occupies the
			// link after the original and the receiver drops it by
			// (seq, chunk) identity — only bandwidth is lost.
			w.fabric.Transfer(srcNode, dstNode, arrival, len(wire))
		}
		if !corrupted || core.Checksum(wire) == crc {
			// Intact — or an undetectable checksum collision, which is
			// exactly how a real CRC fails; the garbage then surfaces
			// from the decoder, never as a hang.
			if compressed {
				eng.BreakerSuccess(dst)
			}
			return wire, arrival, retrans, retransBytes, nil
		}
		// The receiver's verification pass detects the corruption and
		// sends a selective NACK for exactly this chunk; the sender
		// decodes it and retransmits after backoff while later chunks
		// keep flowing.
		verified := arrival.Add(simtime.ThroughputTime(len(wire), w.cluster.GPU.MemBWGBps*8))
		if compressed {
			eng.BreakerFailure(dst, verified)
		}
		if attempt >= limit {
			return nil, verified, retrans, retransBytes, fmt.Errorf("mpi: %v %d->%d seq %d chunk %d corrupted after %d attempts: %w",
				faults.KindChunk, src, dst, seq, chunk, attempt+1, ErrDeliveryFailed)
		}
		nk, err := core.DecodeChunkNack(core.ChunkNack{
			Seq: seq, Index: chunk, Attempt: attempt, Reason: core.NackCorrupt,
		}.EncodeNack())
		if err != nil || nk.Index != chunk || nk.Seq != seq {
			return nil, verified, retrans, retransBytes, fmt.Errorf("mpi: chunk NACK decode %d->%d seq %d chunk %d: %w",
				src, dst, seq, chunk, ErrDeliveryFailed)
		}
		nack := w.fabric.ControlMessage(dstNode, srcNode, verified)
		ready = simtime.Max(ready, nack.Add(w.retry.delay(nk.Attempt)))
		retrans++
		retransBytes += int64(len(payload))
	}
}

// completePipelinedMatch routes the chunk-timeline resolution through the
// sender's per-destination pipeLane so concurrent matches toward the same
// peer reserve fabric bandwidth in sender program order; closing env.done
// publishes the filled envelope to the receiver's Wait.
func completePipelinedMatch(p *recvPost, env *envelope) {
	lane := &p.rank.world.ranks[env.src].pipeTx[env.dst]
	lane.retire(env.ticket, func() {
		runPipelinedMatch(p, env)
		close(env.done)
	})
}

// runPipelinedMatch resolves the chunk transfer timeline at match time
// (the pipelined analogue of completeMatch): stage the credit window's
// worth of receive buffers, send the CTS, then move each chunk under the
// credit window and its own retry budget. A chunk out of budget fails the
// message at a bounded instant — max(arrivals so far, the failing chunk's
// give-up instant) — and both endpoints observe the wrapped
// ErrDeliveryFailed from Wait; chunks already delivered are never re-sent.
func runPipelinedMatch(p *recvPost, env *envelope) {
	r := p.rank
	w := r.world
	match := simtime.Max(p.postTime, env.rtsArrival)
	if env.deliveryErr != nil {
		env.matchTime = match
		env.dataArrival = match
		env.senderDone <- sendOutcome{t: match, err: env.deliveryErr}
		return
	}
	// The credit window W: at most W chunks in flight, each holding one
	// of the receiver's staging slots; a chunk's transfer may not start
	// until the chunk W places earlier has drained its slot and the
	// credit has traveled back. PipelineCredits is clamped to the staging
	// pool size, so pool capacity is the window — exhaustion becomes
	// backpressure (a credit stall) instead of a mode switch. Negative
	// disables gating.
	credits := r.Engine.Config().PipelineCredits
	gating := credits >= 0
	window := credits
	if !gating || window > len(env.chunks) {
		window = len(env.chunks)
	}
	if window < 1 {
		window = 1
	}
	stageClk := simtime.NewClock(match)
	if env.relayChunks {
		// Relay segments reassemble into one wire payload; the staging
		// buffer covers it whole, as on the non-chunked relay path.
		env.staged = r.Engine.StageRecv(stageClk, env.hdr)
	} else {
		biggest, anyCompressed := 0, false
		for i := range env.chunks {
			if n := len(env.chunks[i].payload); n > biggest {
				biggest = n
			}
			if env.chunks[i].compressed {
				anyCompressed = true
			}
		}
		if anyCompressed {
			slots := window
			if slots > len(env.chunks) {
				slots = len(env.chunks)
			}
			for j := 0; j < slots; j++ {
				env.stagedChunks = append(env.stagedChunks, r.Engine.StageRecv(stageClk, core.Header{
					Algo: core.AlgoMPC, Compressed: true,
					OrigBytes: biggest, CompBytes: biggest,
				}))
			}
		}
	}
	env.matchTime = stageClk.Now()
	// The chunk staging slots live exactly as long as the stream: the
	// credit return already models each slot drained one memory pass
	// after its chunk arrives, so the slots go back to the pool when the
	// stream resolves — here, on the lane, which keeps the receiver
	// pool's hit/miss sequence in ticket order instead of racing against
	// the receiver's Wait. (env.staged, the relay reassembly buffer, is
	// different: the receiver may forward out of it, so it lives until
	// the receive — or the relay hop — lets it go.)
	releaseSlots := func(at simtime.Time) {
		relClk := simtime.NewClock(at)
		for _, b := range env.stagedChunks {
			r.Engine.ReleaseRecv(relClk, b)
		}
		env.stagedChunks = nil
	}
	srcNode := w.nodeOf(env.src)
	dstNode := w.nodeOf(r.id)
	cts, err := w.controlArrival(faults.KindCTS, env.src, r.id, env.seq, dstNode, srcNode, env.matchTime)
	if err != nil {
		env.deliveryErr = err
		env.dataArrival = cts
		releaseSlots(cts)
		env.senderDone <- sendOutcome{t: cts, err: err}
		return
	}
	eng := w.ranks[env.src].Engine
	memBW := w.cluster.GPU.MemBWGBps
	last := simtime.Time(0)
	track := fmt.Sprintf("net %d->%d", env.src, r.id)
	// returns[k] is when the k-th started chunk's credit is back at the
	// sender: the chunk arrived, the receiver drained its staging slot
	// (one memory pass), and the credit update crossed the wire.
	returns := make([]simtime.Time, 0, len(env.chunks))
	totRetrans, stalls, shrinks := 0, 0, 0
	var totBytes int64
	nextShrink := pipeShrinkThreshold
	for i := range env.chunks {
		c := &env.chunks[i]
		ready := simtime.Max(c.ready, cts)
		if gating && len(returns) >= window {
			if gate := returns[len(returns)-window]; gate > ready {
				// A stall is only real when the credit holds the chunk past
				// the instant the link itself frees up (the previous chunk's
				// arrival); until then the transfers serialize on bandwidth
				// and the gate is invisible.
				if gate > last {
					stalls++
				}
				ready = gate
			}
		}
		wire, arrival, retrans, rbytes, err := w.deliverChunk(env.src, r.id, env.seq, i,
			srcNode, dstNode, ready, c.payload, c.crc, c.compressed)
		totRetrans += retrans
		totBytes += rbytes
		if err != nil {
			// This chunk is out of budget: the stream stops here, at a
			// bounded instant, with delivered chunks never re-sent.
			eng.NotePipeTransfer(totRetrans, totBytes, stalls, shrinks)
			env.deliveryErr = err
			env.dataArrival = simtime.Max(last, arrival)
			releaseSlots(env.dataArrival)
			env.senderDone <- sendOutcome{t: env.dataArrival, err: err, retransmits: totRetrans}
			return
		}
		c.payload = wire
		c.arrival = arrival
		// Degrade ladder step 2: repeated loss within the message shrinks
		// the window, trading overlap for fewer bytes exposed to the
		// lossy wire; each further shrink needs double the evidence.
		for totRetrans >= nextShrink {
			nextShrink *= 2
			if gating && window > 1 {
				window /= 2
				shrinks++
			}
		}
		drained := arrival.Add(simtime.ThroughputTime(len(wire), memBW))
		returns = append(returns, w.fabric.ControlMessage(dstNode, srcNode, drained))
		w.tracer.Add(track, fmt.Sprintf("chunk %d", i), ready, c.arrival)
		if c.arrival > last {
			last = c.arrival
		}
	}
	eng.NotePipeTransfer(totRetrans, totBytes, stalls, shrinks)
	env.dataArrival = last
	releaseSlots(last)
	env.senderDone <- sendOutcome{t: last, retransmits: totRetrans}
}

// chunkOrder returns the chunk indexes sorted by (arrival, index) — the
// deterministic completion order the receiver drains the stream in.
// Retransmissions and reorder fates make arrivals non-monotonic in index;
// the index tie-break keeps equal-instant arrivals in a fixed order.
func chunkOrder(chunks []chunkPart) []int {
	order := make([]int, len(chunks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := &chunks[order[a]], &chunks[order[b]]
		if ca.arrival != cb.arrival {
			return ca.arrival < cb.arrival
		}
		return order[a] < order[b]
	})
	return order
}

// releasePipelineStaging returns every staging buffer the pipelined match
// acquired.
func (r *Rank) releasePipelineStaging(env *envelope) {
	for _, b := range env.stagedChunks {
		r.Engine.ReleaseRecv(r.Clock, b)
	}
	env.stagedChunks = nil
	r.Engine.ReleaseRecv(r.Clock, env.staged)
}

// waitRecvPipelined consumes the chunk stream: chunks are verified and
// decompressed into their slices of the user buffer in arrival order —
// out-of-order completions reassemble deterministically by the (arrival,
// index) sort — overlapping with the transfers of later chunks.
func (r *Rank) waitRecvPipelined(req *Request, env *envelope) error {
	// The match completion may still be parked on the sender's pipeLane;
	// the close publishes the filled timeline (happens-before the reads
	// below).
	<-env.done
	if env.relayChunks {
		return r.waitRecvRelayChunked(req, env)
	}
	total := 0
	for i := range env.chunks {
		total += env.chunks[i].origBytes
	}
	if total > r.recvCapacity(req) {
		return fmt.Errorf("mpi: pipelined message of %d bytes truncated into %d-byte buffer", total, r.recvCapacity(req))
	}
	r.Clock.AdvanceTo(env.matchTime)
	if env.deliveryErr != nil {
		r.Clock.AdvanceTo(env.dataArrival)
		r.releasePipelineStaging(env)
		return env.deliveryErr
	}
	sawFallback := false
	for _, i := range chunkOrder(env.chunks) {
		c := &env.chunks[i]
		r.Clock.AdvanceTo(c.arrival)
		ch, err := core.DecodeChunkHeader(c.ctrl)
		if err != nil {
			r.releasePipelineStaging(env)
			return fmt.Errorf("mpi: pipelined chunk %d: %w", i, err)
		}
		if ch.Relay || ch.Index != i || ch.Offset != c.off || ch.OrigBytes != c.origBytes || ch.WireBytes != len(c.payload) {
			r.releasePipelineStaging(env)
			return fmt.Errorf("mpi: pipelined chunk %d: control header mismatch", i)
		}
		if c.hdr.Fallback {
			sawFallback = true
		}
		// Verify, then decode, chunk by chunk. Typed receives scatter each
		// chunk's words from its packed offset; plain receives decode into
		// the matching slice of the user buffer.
		if err := r.Engine.VerifyPayload(r.Clock, c.hdr, c.payload); err != nil {
			r.releasePipelineStaging(env)
			return fmt.Errorf("mpi: pipelined chunk %d: %w", i, err)
		}
		var decErr error
		if req.typ != nil {
			decErr = r.Engine.DecompressTypedChunk(r.Clock, c.hdr, c.payload, req.buf, req.typ, ch.Offset)
		} else {
			decErr = r.Engine.Decompress(r.Clock, c.hdr, c.payload, req.buf.Slice(ch.Offset, ch.OrigBytes))
		}
		if decErr != nil {
			r.releasePipelineStaging(env)
			return fmt.Errorf("mpi: pipelined chunk %d: %w", i, decErr)
		}
	}
	if sawFallback {
		r.Engine.NoteFallbackRecv()
	}
	r.releasePipelineStaging(env)
	return nil
}

// reassembleRelay walks the relay segments in completion order, validating
// each control header and placing each verified-length segment at its wire
// offset; the caller then verifies the reassembled payload end-to-end
// against the message header's checksum.
func (r *Rank) reassembleRelay(env *envelope) ([]byte, error) {
	buf := make([]byte, env.hdr.CompBytes)
	for _, i := range chunkOrder(env.chunks) {
		c := &env.chunks[i]
		r.Clock.AdvanceTo(c.arrival)
		ch, err := core.DecodeChunkHeader(c.ctrl)
		if err != nil {
			return nil, fmt.Errorf("mpi: relay chunk %d: %w", i, err)
		}
		if !ch.Relay || ch.Index != i || ch.Offset != c.off || ch.WireBytes != len(c.payload) || ch.Offset+ch.WireBytes > len(buf) {
			return nil, fmt.Errorf("mpi: relay chunk %d: control header mismatch", i)
		}
		copy(buf[ch.Offset:], c.payload)
	}
	return buf, nil
}

// waitRecvRelayChunked completes an ordinary receive whose payload arrived
// as relay segments: reassemble, verify end-to-end, decode whole.
func (r *Rank) waitRecvRelayChunked(req *Request, env *envelope) error {
	r.Clock.AdvanceTo(env.matchTime)
	if env.deliveryErr != nil {
		r.Clock.AdvanceTo(env.dataArrival)
		r.releasePipelineStaging(env)
		return env.deliveryErr
	}
	if env.hdr.OrigBytes > r.recvCapacity(req) {
		r.releasePipelineStaging(env)
		return fmt.Errorf("mpi: message of %d bytes truncated into %d-byte buffer", env.hdr.OrigBytes, r.recvCapacity(req))
	}
	payload, err := r.reassembleRelay(env)
	if err != nil {
		r.releasePipelineStaging(env)
		return err
	}
	if env.hdr.Fallback {
		r.Engine.NoteFallbackRecv()
	}
	if env.staged != nil {
		copy(env.staged.Data, payload)
	}
	if err := r.Engine.VerifyPayload(r.Clock, env.hdr, payload); err != nil {
		r.releasePipelineStaging(env)
		return fmt.Errorf("mpi: message from rank %d: %w", env.src, err)
	}
	if err := r.decompressInto(req, env.hdr, payload); err != nil {
		r.releasePipelineStaging(env)
		return fmt.Errorf("mpi: message from rank %d: %w", env.src, err)
	}
	r.releasePipelineStaging(env)
	return nil
}

// waitRecvRawChunked completes a raw (relay) receive whose payload arrived
// as chunk segments: the reassembled, verified payload is captured for
// forwarding without decompression.
func (r *Rank) waitRecvRawChunked(req *Request, env *envelope) error {
	<-env.done
	r.Clock.AdvanceTo(env.matchTime)
	if env.deliveryErr != nil {
		r.Clock.AdvanceTo(env.dataArrival)
		r.releasePipelineStaging(env)
		return env.deliveryErr
	}
	payload, err := r.reassembleRelay(env)
	if err != nil {
		r.releasePipelineStaging(env)
		return err
	}
	if env.hdr.Fallback {
		r.Engine.NoteFallbackRecv()
	}
	if env.staged != nil {
		copy(env.staged.Data, payload)
	}
	// Verify before the payload is relayed onward: a relay chain then
	// detects corruption at the hop where it happened.
	if err := r.Engine.VerifyPayload(r.Clock, env.hdr, payload); err != nil {
		r.releasePipelineStaging(env)
		return fmt.Errorf("mpi: message from rank %d: %w", env.src, err)
	}
	req.raw = rawResult{payload: payload, hdr: env.hdr, staged: env.staged}
	r.noteRawStaged(env.staged)
	return nil
}
