package mpi

import (
	"bytes"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/datasets"
	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
	"mpicomp/internal/trace"
)

func pipelineCfg(chunk int) core.Config {
	return core.Config{
		Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
		PipelineChunkBytes: chunk,
	}
}

func TestPipelinedTransferLossless(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: pipelineCfg(1 << 20),
	})
	vals := datasets.Smooth(4<<20, 13, 1e-3) // 16 MB = 16 chunks
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, devBuf(r, vals))
		}
		buf := emptyDevBuf(r, len(vals))
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		got := core.BytesToFloats(buf.Data)
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("pipelined MPC must be lossless: value %d differs", i)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every chunk was compressed independently.
	if c := w.Rank(0).Engine.Compressions; c != 16 {
		t.Fatalf("expected 16 chunk compressions, got %d", c)
	}
}

func TestPipelinedZFPWithinTolerance(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 16, PipelineChunkBytes: 1 << 20},
	})
	vals := datasets.Smooth(2<<20, 17, 1e-3)
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, devBuf(r, vals))
		}
		buf := emptyDevBuf(r, len(vals))
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		got := core.BytesToFloats(buf.Data)
		for i := range vals {
			d := float64(got[i] - vals[i])
			if d < 0 {
				d = -d
			}
			if d > 1e-3*float64(vals[i]) {
				t.Errorf("pipelined ZFP error too large at %d", i)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPipelineOverlapsStages(t *testing.T) {
	// The pipeline must beat whole-message compression for a large
	// message whose compress/transfer/decompress stages are comparable.
	vals := datasets.Smooth(8<<20, 19, 1e-4) // 32 MB
	latency := func(cfg core.Config) simtime.Duration {
		w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1, Engine: cfg})
		times, err := w.Run(func(r *Rank) error {
			if r.ID() == 0 {
				return r.Send(1, 0, devBuf(r, vals))
			}
			return r.Recv(0, 0, emptyDevBuf(r, len(vals)))
		})
		if err != nil {
			t.Fatal(err)
		}
		return simtime.Duration(MaxTime(times))
	}
	whole := latency(core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC})
	piped := latency(pipelineCfg(2 << 20))
	if piped >= whole {
		t.Fatalf("pipelined (%v) should beat whole-message (%v)", piped, whole)
	}
}

func TestPipelineSmallMessagesFallBack(t *testing.T) {
	// Messages below 2x the chunk size take the ordinary path.
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: pipelineCfg(4 << 20),
	})
	vals := datasets.Smooth(1<<20, 23, 1e-3) // 4 MB < 2*4MB
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, devBuf(r, vals))
		}
		return r.Recv(0, 0, emptyDevBuf(r, len(vals)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := w.Rank(0).Engine.Compressions; c != 1 {
		t.Fatalf("small message should compress whole: %d compressions", c)
	}
}

func TestPipelinedBidirectionalExchange(t *testing.T) {
	// The halo pattern with pipelining enabled must stay deadlock-free.
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: pipelineCfg(512 << 10),
	})
	vals := datasets.Smooth(1<<20, 29, 1e-3)
	_, err := w.Run(func(r *Rank) error {
		peer := 1 - r.ID()
		recv := emptyDevBuf(r, len(vals))
		rq, err := r.Irecv(peer, 0, recv)
		if err != nil {
			return err
		}
		sq, err := r.Isend(peer, 0, devBuf(r, vals))
		if err != nil {
			return err
		}
		if err := r.Waitall(sq, rq); err != nil {
			return err
		}
		got := core.BytesToFloats(recv.Data)
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("rank %d: pipelined exchange corrupted %d", r.ID(), i)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTracerRecordsTimeline(t *testing.T) {
	tr := trace.New()
	w, err := NewWorld(Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC},
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := datasets.Smooth(1<<20, 31, 1e-3)
	_, err = w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, devBuf(r, vals))
		}
		return r.Recv(0, 0, emptyDevBuf(r, len(vals)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer should have recorded events")
	}
	tracks := map[string]bool{}
	names := map[string]bool{}
	for _, e := range tr.Events() {
		tracks[e.Track] = true
		names[e.Name] = true
		if e.End < e.Start {
			t.Fatal("negative interval")
		}
	}
	for _, want := range []string{"rank 0", "rank 1", "net 0->1"} {
		if !tracks[want] {
			t.Fatalf("missing track %q (have %v)", want, tracks)
		}
	}
	if !names["Compression Kernel"] || !names["transfer"] {
		t.Fatalf("missing expected event names: %v", names)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace output")
	}
}
