package mpi

import (
	"math/rand"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/hw"
)

// TestSoakRandomTraffic fuzzes the runtime: a seeded random communication
// plan (every rank knows the full plan, so matching sends/recvs exist for
// every transfer) with mixed message sizes straddling the eager and
// rendezvous paths, compressed and bypassed, verified value by value.
func TestSoakRandomTraffic(t *testing.T) {
	const (
		ranks = 8
		msgs  = 120
	)
	type transfer struct {
		src, dst, tag, words int
	}
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		plan := make([]transfer, msgs)
		for i := range plan {
			src := rng.Intn(ranks)
			dst := rng.Intn(ranks - 1)
			if dst >= src {
				dst++
			}
			var words int
			switch rng.Intn(3) {
			case 0:
				words = 1 + rng.Intn(1024) // eager
			case 1:
				words = 4096 + rng.Intn(1<<15) // rendezvous, below threshold
			default:
				words = 1<<16 + rng.Intn(1<<17) // compressed
			}
			plan[i] = transfer{src: src, dst: dst, tag: i, words: words}
		}

		w := mustWorld(t, Options{
			Cluster: hw.Lassen(), Nodes: 2, PPN: 4,
			Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
				Threshold: 256 << 10, PoolBufBytes: 2 << 20},
		})
		_, err := w.Run(func(r *Rank) error {
			// Post all receives first, then all sends, then wait —
			// the harshest legal ordering.
			var reqs []*Request
			var checks []func() error
			for _, tr := range plan {
				if tr.dst == r.ID() {
					buf := emptyDevBuf(r, tr.words)
					req, err := r.Irecv(tr.src, tr.tag, buf)
					if err != nil {
						return err
					}
					reqs = append(reqs, req)
					tr := tr
					checks = append(checks, func() error {
						got := core.BytesToFloats(buf.Data)
						want := float32(tr.src*1000 + tr.tag)
						for i := 0; i < tr.words; i += 997 {
							if got[i] != want+float32(i) {
								t.Errorf("seed %d: msg %d word %d = %v want %v",
									seed, tr.tag, i, got[i], want+float32(i))
								return nil
							}
						}
						return nil
					})
				}
			}
			for _, tr := range plan {
				if tr.src == r.ID() {
					vals := make([]float32, tr.words)
					base := float32(tr.src*1000 + tr.tag)
					for i := range vals {
						vals[i] = base + float32(i)
					}
					req, err := r.Isend(tr.dst, tr.tag, devBuf(r, vals))
					if err != nil {
						return err
					}
					reqs = append(reqs, req)
				}
			}
			if err := r.Waitall(reqs...); err != nil {
				return err
			}
			for _, c := range checks {
				if err := c(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestSoakCollectiveStorm runs every collective back to back on the same
// world to catch cross-collective tag or state leakage.
func TestSoakCollectiveStorm(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.FronteraLiquid(), Nodes: 4, PPN: 2,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 16,
			Threshold: 64 << 10, PoolBufBytes: 4 << 20},
	})
	const n = 1 << 16
	_, err := w.Run(func(r *Rank) error {
		for round := 0; round < 3; round++ {
			buf := emptyDevBuf(r, n)
			if r.ID() == 0 {
				for i := range buf.Data {
					buf.Data[i] = byte(round)
				}
			}
			if err := r.Bcast(0, buf); err != nil {
				return err
			}
			if buf.Data[n] != byte(round) {
				t.Errorf("round %d: bcast leaked state", round)
			}
			send := emptyDevBuf(r, n/8)
			recv := emptyDevBuf(r, n)
			if err := r.Allgather(send, recv); err != nil {
				return err
			}
			out := emptyDevBuf(r, n)
			if err := r.RingAllreduceSum(buf, out); err != nil {
				return err
			}
			a2aIn := emptyDevBuf(r, n)
			a2aOut := emptyDevBuf(r, n)
			if err := r.Alltoall(a2aIn, a2aOut); err != nil {
				return err
			}
			if err := r.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
