package mpi

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/faults"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
)

// findHealSeed scans for a seed whose fate draws crash exactly wantCrashes
// ranks, none of them in keep (ranks the scenario needs alive, e.g. a
// bcast root). Fates are pure functions of (seed, rank), so the scan
// exactly predicts NewWorld's draws.
func findHealSeed(t *testing.T, ranks int, cfg faults.Config, wantCrashes int, keep ...int) int64 {
	t.Helper()
	protected := make(map[int]bool, len(keep))
	for _, id := range keep {
		protected[id] = true
	}
seeds:
	for seed := int64(1); seed < 20000; seed++ {
		c := cfg
		c.Seed = seed
		inj := faults.New(c)
		crashes := 0
		for id := 0; id < ranks; id++ {
			if _, silent, failed := inj.RankFate(id); failed {
				if silent || protected[id] {
					continue seeds
				}
				crashes++
			}
		}
		if crashes == wantCrashes {
			return seed
		}
	}
	t.Fatalf("no seed crashes %d ranks (keeping %v) over %d ranks", wantCrashes, keep, ranks)
	return 0
}

// assertPoolBalance fails the test if any rank's staging pool has fewer
// free buffers than it owns — a credit leaked by an aborted or healed
// collective.
func assertPoolBalance(t *testing.T, w *World, ctx string) {
	t.Helper()
	for id := 0; id < w.Size(); id++ {
		free, total := w.Rank(id).Engine.PoolBalance()
		if free != total {
			t.Errorf("%s: rank %d staging pool free=%d total=%d — aborted collective leaked credits", ctx, id, free, total)
		}
	}
}

// hashBuf fingerprints a buffer's payload for bit-identity comparisons.
func hashBuf(b *gpusim.Buffer) uint64 {
	h := fnv.New64a()
	h.Write(b.Data)
	return h.Sum64()
}

// TestSelfHealRingAllreduceCompletes is the tentpole acceptance scenario:
// a pipelined ring allreduce loses a rank mid-run and the survivors
// revoke the attempt, agree on the failed set, splice the ring, and
// complete on the shrunken group with the exact survivor-only sum.
func TestSelfHealRingAllreduceCompletes(t *testing.T) {
	const nodes, ppn = 4, 2
	const words = 8 << 10
	const iters = 12
	fcfg := faults.Config{CrashRate: 0.15, FailWindow: 150 * simtime.Microsecond}
	fcfg.Seed = findHealSeed(t, nodes*ppn, fcfg, 1)
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			Threshold: 2 << 10, PoolBufBytes: 2 << 20, PipelineChunkBytes: 4 << 10},
		Faults: &fcfg,
		Health: HealthPolicy{SelfHeal: true, Deadline: 150 * simtime.Microsecond},
	})
	doomed := w.HealthStats().Doomed
	if len(doomed) != 1 {
		t.Fatalf("doomed = %v, want exactly one fated rank", doomed)
	}
	var survivorSum float32
	for id := 0; id < nodes*ppn; id++ {
		if id != doomed[0] {
			survivorSum += float32(id + 1)
		}
	}

	final := make([]*gpusim.Buffer, nodes*ppn)
	_, errs := w.RunAll(func(r *Rank) error {
		vals := make([]float32, words)
		for i := range vals {
			vals[i] = float32(r.ID() + 1)
		}
		send := devBuf(r, vals)
		recv := emptyDevBuf(r, words)
		final[r.ID()] = recv
		for it := 0; it < iters; it++ {
			if err := r.RingAllreduceSum(send, recv); err != nil {
				return err
			}
		}
		return nil
	})
	assertNoRankGoroutines(t)
	assertPoolBalance(t, w, "self-heal ring allreduce")
	for id, err := range errs {
		if id == doomed[0] {
			if err == nil {
				t.Errorf("fated rank %d completed all iterations", id)
			}
			continue
		}
		if err != nil {
			t.Fatalf("survivor %d failed under self-heal: %v", id, err)
		}
		got := core.BytesToFloats(final[id].Data)
		for i := 0; i < len(got); i += 499 {
			if got[i] != survivorSum {
				t.Errorf("survivor %d word %d = %v, want %v (survivor-only sum)", id, i, got[i], survivorSum)
				break
			}
		}
	}
	rs := w.RecoveryStats()
	if rs.Reroutes == 0 || rs.ShrinkCompletions == 0 || rs.RevokedOps == 0 {
		t.Errorf("recovery never engaged: %+v", rs)
	}
	if rs.RecoveryTime <= 0 {
		t.Errorf("recovery charged no simulated time: %+v", rs)
	}
}

// TestSelfHealPipelinedRingDeterminism races the shrink against in-flight
// pipelined chunks and pins scheduling independence: the same seeded
// failure produces bit-identical survivor payloads, clocks and recovery
// stats across 1/2/8 codec workers, and bit-identical payloads across
// detector timings (detection latency may move the clocks, never the
// bytes).
func TestSelfHealPipelinedRingDeterminism(t *testing.T) {
	const nodes, ppn = 4, 2
	const words = 8 << 10
	const iters = 10
	fcfg := faults.Config{CrashRate: 0.15, FailWindow: 150 * simtime.Microsecond}
	fcfg.Seed = findHealSeed(t, nodes*ppn, fcfg, 1)

	type outcome struct {
		hashes []uint64
		times  []simtime.Time
		rs     RecoveryStats
		errs   []string
	}
	run := func(workers int, det DetectorPolicy) outcome {
		f := fcfg
		w := mustWorld(t, Options{
			Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn,
			Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
				Threshold: 2 << 10, PoolBufBytes: 2 << 20,
				PipelineChunkBytes: 4 << 10, Workers: workers},
			Faults: &f,
			Health: HealthPolicy{SelfHeal: true, Deadline: 150 * simtime.Microsecond, Detector: det},
		})
		doomed := w.HealthStats().Doomed
		fated := make(map[int]bool, len(doomed))
		for _, id := range doomed {
			fated[id] = true
		}
		out := outcome{hashes: make([]uint64, nodes*ppn)}
		final := make([]*gpusim.Buffer, nodes*ppn)
		times, errs := w.RunAll(func(r *Rank) error {
			vals := make([]float32, words)
			for i := range vals {
				vals[i] = float32(r.ID()%13) + 0.5
			}
			send := devBuf(r, vals)
			recv := emptyDevBuf(r, words)
			final[r.ID()] = recv
			for it := 0; it < iters; it++ {
				if err := r.RingAllreduceSum(send, recv); err != nil {
					return err
				}
			}
			return nil
		})
		assertNoRankGoroutines(t)
		out.times = times
		out.rs = w.RecoveryStats()
		for id := range final {
			if !fated[id] {
				if errs[id] != nil {
					t.Fatalf("workers=%d det=%+v: survivor %d failed: %v", workers, det, id, errs[id])
				}
				out.hashes[id] = hashBuf(final[id])
			}
			out.errs = append(out.errs, fmt.Sprint(errs[id]))
		}
		return out
	}

	det := DetectorPolicy{Lease: 150 * simtime.Microsecond, Confirm: 150 * simtime.Microsecond}
	base := run(1, det)
	if base.rs.ShrinkCompletions == 0 {
		t.Fatalf("failure never raced the ring: %+v", base.rs)
	}
	for _, workers := range []int{2, 8} {
		got := run(workers, det)
		if got.rs != base.rs {
			t.Errorf("workers=%d recovery stats %+v != workers=1 %+v", workers, got.rs, base.rs)
		}
		for i := range base.hashes {
			if got.hashes[i] != base.hashes[i] {
				t.Errorf("workers=%d rank %d payload differs from workers=1", workers, i)
			}
			if got.times[i] != base.times[i] {
				t.Errorf("workers=%d rank %d clock %v != %v", workers, i, got.times[i], base.times[i])
			}
			if got.errs[i] != base.errs[i] {
				t.Errorf("workers=%d rank %d error %q != %q", workers, i, got.errs[i], base.errs[i])
			}
		}
	}
	// Detection latency shifts the timeline but must not change the bytes.
	for _, det := range []DetectorPolicy{
		{},
		{Lease: 80 * simtime.Microsecond, Confirm: 80 * simtime.Microsecond},
		{Lease: 400 * simtime.Microsecond, Confirm: 200 * simtime.Microsecond},
	} {
		got := run(1, det)
		for i := range base.hashes {
			if got.hashes[i] != base.hashes[i] {
				t.Errorf("det=%+v rank %d payload differs from base detector", det, i)
			}
		}
	}
}

// TestSelfHealBcastHierarchicalCompletes kills a rank under the two-stage
// hierarchical bcast: survivors must re-elect node leaders on the shrunken
// view and all end up with the root's exact payload.
func TestSelfHealBcastHierarchicalCompletes(t *testing.T) {
	const nodes, ppn = 4, 2
	const words = 8 << 10
	fcfg := faults.Config{CrashRate: 0.15, FailWindow: 150 * simtime.Microsecond}
	fcfg.Seed = findHealSeed(t, nodes*ppn, fcfg, 1, 0) // root 0 stays alive
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn,
		Faults: &fcfg,
		Health: HealthPolicy{SelfHeal: true, Deadline: 150 * simtime.Microsecond},
	})
	doomed := w.HealthStats().Doomed
	if len(doomed) != 1 || doomed[0] == 0 {
		t.Fatalf("doomed = %v, want one fated non-root rank", doomed)
	}
	vals := make([]float32, words)
	for i := range vals {
		vals[i] = float32(i%101) + 0.25
	}
	final := make([]*gpusim.Buffer, nodes*ppn)
	_, errs := w.RunAll(func(r *Rank) error {
		buf := emptyDevBuf(r, words)
		final[r.ID()] = buf
		for it := 0; it < 8; it++ {
			if r.ID() == 0 {
				core.FloatsToBytes(buf.Data[:0], vals)
			}
			if err := r.BcastHierarchical(0, buf); err != nil {
				return err
			}
		}
		return nil
	})
	assertNoRankGoroutines(t)
	for id, err := range errs {
		if id == doomed[0] {
			continue
		}
		if err != nil {
			t.Fatalf("survivor %d failed under self-heal: %v", id, err)
		}
		got := core.BytesToFloats(final[id].Data)
		for i := range got {
			if got[i] != vals[i] {
				t.Errorf("survivor %d word %d = %v, want %v", id, i, got[i], vals[i])
				break
			}
		}
	}
	if rs := w.RecoveryStats(); rs.ShrinkCompletions == 0 {
		t.Errorf("hierarchical bcast never healed: %+v", rs)
	}
}

// TestSelfHealAlltoallvCompletes kills a rank under the wave-scheduled
// vector all-to-all: survivors complete on the shrunken group and every
// live-to-live segment lands bit-exactly.
func TestSelfHealAlltoallvCompletes(t *testing.T) {
	const nodes, ppn = 4, 1
	const blkWords = 2 << 10
	fcfg := faults.Config{CrashRate: 0.25, FailWindow: 100 * simtime.Microsecond}
	fcfg.Seed = findHealSeed(t, nodes*ppn, fcfg, 1)
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn,
		Faults: &fcfg,
		Health: HealthPolicy{SelfHeal: true, Deadline: 100 * simtime.Microsecond},
	})
	doomed := w.HealthStats().Doomed
	if len(doomed) != 1 {
		t.Fatalf("doomed = %v, want exactly one fated rank", doomed)
	}
	P := w.Size()
	segVal := func(src, dst, i int) float32 { return float32(src*1000+dst*100) + float32(i%97) }
	final := make([]*gpusim.Buffer, P)
	_, errs := w.RunAll(func(r *Rank) error {
		counts := make([]int, P)
		displs := make([]int, P)
		for j := 0; j < P; j++ {
			counts[j] = 4 * blkWords
			displs[j] = j * 4 * blkWords
		}
		send := emptyDevBuf(r, P*blkWords)
		recv := emptyDevBuf(r, P*blkWords)
		final[r.ID()] = recv
		vals := make([]float32, P*blkWords)
		for j := 0; j < P; j++ {
			for i := 0; i < blkWords; i++ {
				vals[j*blkWords+i] = segVal(r.ID(), j, i)
			}
		}
		core.FloatsToBytes(send.Data[:0], vals)
		for it := 0; it < 8; it++ {
			if err := r.Alltoallv(send, counts, displs, recv, counts, displs); err != nil {
				return err
			}
		}
		return nil
	})
	assertNoRankGoroutines(t)
	for id, err := range errs {
		if id == doomed[0] {
			continue
		}
		if err != nil {
			t.Fatalf("survivor %d failed under self-heal: %v", id, err)
		}
		got := core.BytesToFloats(final[id].Data)
		for j := 0; j < P; j++ {
			if j == doomed[0] {
				continue // segment from the dead rank is undefined post-shrink
			}
			for i := 0; i < blkWords; i += 331 {
				if got[j*blkWords+i] != segVal(j, id, i) {
					t.Errorf("survivor %d segment from %d word %d = %v, want %v",
						id, j, i, got[j*blkWords+i], segVal(j, id, i))
					break
				}
			}
		}
	}
	if rs := w.RecoveryStats(); rs.ShrinkCompletions == 0 {
		t.Errorf("alltoallv never healed: %+v", rs)
	}
}

// TestPartitionRideOut runs an allreduce straight through an operator
// partition window: the transport's backoff must ride out the severed
// cross-group links without any reroute, and every rank completes with
// the exact full-world sum.
func TestPartitionRideOut(t *testing.T) {
	const nodes, ppn = 4, 1
	const words = 2 << 10
	fcfg := faults.Config{
		PartitionGroups: [][]int{{0, 1}, {2, 3}},
		PartitionAt:     100 * simtime.Microsecond,
		PartitionHeal:   300 * simtime.Microsecond,
	}
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn,
		Faults: &fcfg,
		Health: HealthPolicy{SelfHeal: true},
	})
	var wantSum float32
	for id := 0; id < nodes*ppn; id++ {
		wantSum += float32(id + 1)
	}
	final := make([]*gpusim.Buffer, nodes*ppn)
	_, errs := w.RunAll(func(r *Rank) error {
		vals := make([]float32, words)
		for i := range vals {
			vals[i] = float32(r.ID() + 1)
		}
		send := devBuf(r, vals)
		recv := emptyDevBuf(r, words)
		final[r.ID()] = recv
		for it := 0; it < 10; it++ {
			if err := r.AllreduceSum(send, recv); err != nil {
				return err
			}
		}
		return nil
	})
	assertNoRankGoroutines(t)
	for id, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed across the partition window: %v", id, err)
		}
		got := core.BytesToFloats(final[id].Data)
		for i := 0; i < len(got); i += 331 {
			if got[i] != wantSum {
				t.Errorf("rank %d word %d = %v, want %v", id, i, got[i], wantSum)
				break
			}
		}
	}
	rs := w.RecoveryStats()
	if rs.LinkDrops == 0 {
		t.Errorf("partition window never severed a transmission: %+v", rs)
	}
	if rs.Reroutes != 0 {
		t.Errorf("ride-out took %d reroutes, want the backoff to absorb the outage", rs.Reroutes)
	}
}

// TestChaosPartitionSoakCollectives is the partition-soak matrix: every
// collective under combined crash-stop and link-flap fates with self-heal
// armed. The contract: survivors always complete (nil error), fated ranks
// fail typed, no goroutine leaks, no staging-pool credit leaks — and the
// protocol-plane golden (doomed sets, reroutes, shrink-completions,
// revoked-ops, confirms, resourced-chunks, survivor error bitmap, and
// survivor payload hashes) is byte-identical when replayed, the
// golden-stats property the CI chaos job pins. Timing-plane counters
// (suspects, false-suspects, link-drops, recovery-time) are reported in
// the CHAOS_STATS artifact but not replay-compared: they inherit the
// fabric's contention-arbitration sensitivity (concurrent transfers with
// overlapping calendar windows book in arrival order — see DESIGN.md
// §14), which predates the heal layer. Seeds can be overridden with
// CHAOS_SEED; CHAOS_STATS names a file to receive the full stats report.
func TestChaosPartitionSoakCollectives(t *testing.T) {
	seeds := []int64{2, 6}
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		seeds = nil
		for _, s := range strings.Split(env, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				t.Fatalf("CHAOS_SEED %q: %v", env, err)
			}
			seeds = append(seeds, v)
		}
	}
	const (
		nodes = 4
		ppn   = 2
		words = 4 << 10
		iters = 6
	)
	colls := []struct {
		name   string
		engine core.Config
		run    func(r *Rank, send, recv *gpusim.Buffer) error
	}{
		{name: "barrier", run: func(r *Rank, _, _ *gpusim.Buffer) error { return r.Barrier() }},
		{name: "bcast", run: func(r *Rank, send, _ *gpusim.Buffer) error { return r.Bcast(0, send) }},
		{name: "bcast-hier", run: func(r *Rank, send, _ *gpusim.Buffer) error { return r.BcastHierarchical(0, send) }},
		{name: "allgather", run: func(r *Rank, send, recv *gpusim.Buffer) error {
			return r.Allgather(send.Slice(0, send.Len()/r.Size()), recv)
		}},
		{name: "gather", run: func(r *Rank, send, recv *gpusim.Buffer) error {
			return r.Gather(0, send.Slice(0, send.Len()/r.Size()), recv)
		}},
		{name: "scatter", run: func(r *Rank, send, recv *gpusim.Buffer) error {
			return r.Scatter(0, send, recv.Slice(0, recv.Len()/r.Size()))
		}},
		{name: "reduce", run: func(r *Rank, send, recv *gpusim.Buffer) error { return r.ReduceSum(0, send, recv) }},
		{name: "allreduce", run: func(r *Rank, send, recv *gpusim.Buffer) error { return r.AllreduceSum(send, recv) }},
		{name: "ringallreduce-pipelined",
			engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
				Threshold: 2 << 10, PoolBufBytes: 2 << 20, PipelineChunkBytes: 1 << 10},
			run: func(r *Rank, send, recv *gpusim.Buffer) error {
				return r.RingAllreduceSum(send, recv)
			}},
		{name: "alltoall", run: func(r *Rank, send, recv *gpusim.Buffer) error { return r.Alltoall(send, recv) }},
	}

	matrix := func() (string, string) {
		var golden, report strings.Builder
		for _, seed := range seeds {
			for _, coll := range colls {
				fcfg := &faults.Config{
					Seed: seed, CrashRate: 0.15,
					FailWindow:   200 * simtime.Microsecond,
					LinkFlapRate: 0.15,
				}
				w := mustWorld(t, Options{
					Cluster: hw.Longhorn(), Nodes: nodes, PPN: ppn,
					Engine: coll.engine, Faults: fcfg,
					Health: HealthPolicy{
						SelfHeal: true,
						Deadline: 150 * simtime.Microsecond,
						Detector: DetectorPolicy{Lease: 150 * simtime.Microsecond, Confirm: 150 * simtime.Microsecond},
					},
				})
				doomed := w.HealthStats().Doomed
				fated := make(map[int]bool, len(doomed))
				for _, id := range doomed {
					fated[id] = true
				}
				vals := make([]float32, words)
				for i := range vals {
					vals[i] = float32(seed) + float32(i%29)
				}
				sends := make([]*gpusim.Buffer, nodes*ppn)
				recvs := make([]*gpusim.Buffer, nodes*ppn)
				_, errs := w.RunAll(func(r *Rank) error {
					send := devBuf(r, vals)
					recv := emptyDevBuf(r, words)
					sends[r.ID()] = send
					recvs[r.ID()] = recv
					for it := 0; it < iters; it++ {
						if err := coll.run(r, send, recv); err != nil {
							return err
						}
					}
					return nil
				})
				assertNoRankGoroutines(t)
				assertPoolBalance(t, w, fmt.Sprintf("seed %d %s", seed, coll.name))
				for id, err := range errs {
					if fated[id] {
						continue // its own demise, any typed shape
					}
					if err != nil {
						t.Errorf("seed %d %s: survivor %d failed under self-heal: %v", seed, coll.name, id, err)
					}
				}
				rs := w.RecoveryStats()
				payload := fnv.New64a()
				ok := make([]bool, nodes*ppn)
				for id := 0; id < nodes*ppn; id++ {
					ok[id] = errs[id] == nil
					if fated[id] || errs[id] != nil {
						continue
					}
					payload.Write(sends[id].Data)
					payload.Write(recvs[id].Data)
				}
				fmt.Fprintf(&golden,
					"seed=%d coll=%s doomed=%v reroutes=%d shrink-completions=%d revoked-ops=%d confirms=%d resourced-chunks=%d ok=%v payload=%016x\n",
					seed, coll.name, doomed, rs.Reroutes, rs.ShrinkCompletions, rs.RevokedOps,
					rs.Confirms, rs.ResourcedChunks, ok, payload.Sum64())
				fmt.Fprintf(&report,
					"seed=%d coll=%s doomed=%v reroutes=%d shrink-completions=%d revoked-ops=%d suspects=%d false-suspects=%d confirms=%d resourced-chunks=%d link-drops=%d recovery-time=%.2fus\n",
					seed, coll.name, doomed, rs.Reroutes, rs.ShrinkCompletions, rs.RevokedOps,
					rs.Suspects, rs.FalseSuspects, rs.Confirms, rs.ResourcedChunks, rs.LinkDrops,
					rs.RecoveryTime.Microseconds())
			}
		}
		return golden.String(), report.String()
	}

	firstGolden, first := matrix()
	if !strings.Contains(first, "shrink-completions=1") && !strings.Contains(first, "shrink-completions=2") {
		t.Errorf("soak never exercised a shrink-completion:\n%s", first)
	}
	if secondGolden, _ := matrix(); secondGolden != firstGolden {
		t.Errorf("golden recovery stats not reproducible across identical replays:\nfirst:\n%s\nsecond:\n%s", firstGolden, secondGolden)
	}
	if path := os.Getenv("CHAOS_STATS"); path != "" {
		out := "## golden (replay-pinned)\n" + firstGolden + "## full (timing-plane counters vary with fabric contention arbitration)\n" + first
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Errorf("writing CHAOS_STATS: %v", err)
		}
	}
}

// TestHealRetryBound pins the retry backstop: a collective that keeps
// failing (every survivor doomed view change exhausted) must surface a
// typed error instead of retrying forever. A two-rank world where the
// only peer dies cannot shrink to a useful group for point-to-point
// bcast, so the survivor's heal ladder must terminate.
func TestHealRetryBound(t *testing.T) {
	fcfg := faults.Config{CrashRate: 0.5, FailWindow: 100 * simtime.Microsecond}
	for seed := int64(1); ; seed++ {
		if seed > 20000 {
			t.Fatal("no seed crashes rank 1 and keeps rank 0")
		}
		c := fcfg
		c.Seed = seed
		inj := faults.New(c)
		_, _, failed0 := inj.RankFate(0)
		_, silent1, failed1 := inj.RankFate(1)
		if !failed0 && failed1 && !silent1 {
			fcfg.Seed = seed
			break
		}
	}
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Faults: &fcfg,
		Health: HealthPolicy{SelfHeal: true, MaxAttempts: 2, Deadline: 100 * simtime.Microsecond},
	})
	_, errs := w.RunAll(func(r *Rank) error {
		buf := emptyDevBuf(r, 16<<10) // 64 KiB: rendezvous, advances the clock past onset
		for it := 0; it < 40; it++ {
			// Point-to-point against the doomed peer: rank 0's sends can
			// never complete once rank 1 dies, and a two-rank world cannot
			// shrink a p2p exchange — the bound must fire.
			var err error
			if r.ID() == 0 {
				err = r.Send(1, it, buf)
			} else {
				err = r.Recv(0, it, buf)
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	assertNoRankGoroutines(t)
	if errs[0] == nil || !errors.Is(errs[0], ErrPeerFailed) {
		t.Errorf("survivor against a dead peer: %v, want ErrPeerFailed", errs[0])
	}
	if errs[1] == nil {
		t.Error("fated rank completed all iterations")
	}
}
