package mpi

import (
	"bytes"
	"hash/crc32"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
)

// ringSoak replays a warm-iteration collective mix — hierarchical bcast
// fan-out from a persistent root buffer, plus the pipelined and blocking
// ring allreduce on every iteration — and returns the makespan, a CRC of
// each rank's results, and the aggregated cache/relay counters. The mix
// is the differential harness for the collective fast paths: inside the
// run, every iteration checks the pipelined ring against its blocking
// oracle byte for byte (both configs here are lossless, so they must
// agree exactly).
func ringSoak(t *testing.T, workers, cacheEntries int, mode core.Mode, algo core.Algorithm) (simtime.Time, []uint32, core.CacheStats) {
	t.Helper()
	const (
		ranks = 8
		words = 1 << 16 // 256 KB: 32 KB ring blocks, chunked by 16 KB
		iters = 3
	)
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 4, PPN: 2,
		Engine: core.Config{Mode: mode, Algorithm: algo,
			Threshold: 16 << 10, PoolBufBytes: 4 << 20,
			Workers: workers, CacheEntries: cacheEntries,
			PipelineChunkBytes: 16 << 10},
	})
	crcs := make([]uint32, ranks)
	times, err := w.Run(func(r *Rank) error {
		vals := make([]float32, words)
		for i := range vals {
			vals[i] = float32(r.ID()+1) + float32(i%1021)*0.25
		}
		send := devBuf(r, vals).Track()
		fan := emptyDevBuf(r, words).Track()
		if r.ID() == 0 {
			core.FloatsToBytes(fan.Data[:0], vals)
			fan.MarkDirty()
		}
		fast := emptyDevBuf(r, words)
		slow := emptyDevBuf(r, words)
		h := crc32.NewIEEE()
		for it := 0; it < iters; it++ {
			// The root's buffer is unchanged across iterations, so warm
			// fan-outs must reuse the first iteration's compression.
			if err := r.BcastHierarchical(0, fan); err != nil {
				return err
			}
			if err := r.RingAllreduceSum(send, fast); err != nil {
				return err
			}
			if err := r.RingAllreduceSumBlocking(send, slow); err != nil {
				return err
			}
			if !bytes.Equal(fast.Data, slow.Data) {
				t.Errorf("rank %d iter %d: pipelined and blocking ring allreduce disagree", r.ID(), it)
			}
			h.Write(fan.Data)
			h.Write(fast.Data)
		}
		crcs[r.ID()] = h.Sum32()
		return r.Barrier()
	})
	if err != nil {
		t.Fatalf("ring soak (workers=%d cache=%d): %v", workers, cacheEntries, err)
	}
	var cs core.CacheStats
	for i := 0; i < w.Size(); i++ {
		cs.Add(w.Rank(i).Engine.CacheSnapshot())
	}
	return MaxTime(times), crcs, cs
}

// TestRingCachedVsUncachedBitIdentical: disabling the compress-once
// cache must not change a single result byte — only the virtual clock.
// The cached run must actually exercise the machinery it claims to
// (hits, relays, pipelined chunks) and finish no later than the
// uncached run.
func TestRingCachedVsUncachedBitIdentical(t *testing.T) {
	cachedTime, cachedCRCs, cs := ringSoak(t, 1, 0, core.ModeOpt, core.AlgoMPC)
	uncachedTime, uncachedCRCs, un := ringSoak(t, 1, -1, core.ModeOpt, core.AlgoMPC)

	for rank := range cachedCRCs {
		if cachedCRCs[rank] != uncachedCRCs[rank] {
			t.Errorf("rank %d: cached CRC %08x != uncached %08x", rank, cachedCRCs[rank], uncachedCRCs[rank])
		}
	}
	if cs.Hits == 0 {
		t.Errorf("cached run recorded no hits: %+v", cs)
	}
	if cs.RelayedBytes == 0 || cs.PipelinedChunks == 0 {
		t.Errorf("fast paths not exercised: %+v", cs)
	}
	if un.Hits != 0 || un.Misses != 0 {
		t.Errorf("disabled cache recorded activity: %+v", un)
	}
	if cachedTime > uncachedTime {
		t.Errorf("cache made the run slower: %v > %v", cachedTime, uncachedTime)
	}
}

// TestRingSoakWorkerCountInvariance: the collective fast paths stay
// worker-count-invariant — codec pool sizes 1, 2, and 8 produce the
// identical makespan, bytes, and cache counters (cache behavior depends
// only on buffer versions, never on host scheduling).
func TestRingSoakWorkerCountInvariance(t *testing.T) {
	refTime, refCRCs, refStats := ringSoak(t, 1, 0, core.ModeOpt, core.AlgoMPC)
	for _, workers := range []int{2, 8} {
		mt, crcs, cs := ringSoak(t, workers, 0, core.ModeOpt, core.AlgoMPC)
		if mt != refTime {
			t.Errorf("workers=%d: makespan %v, serial %v", workers, mt, refTime)
		}
		if cs != refStats {
			t.Errorf("workers=%d: cache stats %+v, serial %+v", workers, cs, refStats)
		}
		for rank, c := range crcs {
			if c != refCRCs[rank] {
				t.Errorf("workers=%d: rank %d CRC %08x, serial %08x", workers, rank, c, refCRCs[rank])
			}
		}
	}
}

// TestRingSoakUncompressedConfig runs the same differential soak with
// compression off entirely: the relay and chunk plumbing must be
// byte-exact on raw payloads too.
func TestRingSoakUncompressedConfig(t *testing.T) {
	_, a, _ := ringSoak(t, 1, 0, core.ModeOff, core.AlgoNone)
	_, b, _ := ringSoak(t, 2, 0, core.ModeOff, core.AlgoNone)
	for rank := range a {
		if a[rank] != b[rank] {
			t.Errorf("rank %d: CRC differs across worker counts: %08x vs %08x", rank, a[rank], b[rank])
		}
	}
}
