package mpi

// The allreduce algorithm suite beyond the ring: recursive doubling
// (latency-optimal — ceil(log2 P) rounds of full-vector exchanges) and
// Rabenseifner's algorithm (reduce-scatter by recursive halving followed
// by an allgather by recursive doubling — the ring's 2n(P-1)/P bytes at
// ring latency replaced by the same bytes in 2·log2 P rounds). Both
// reuse the ring fast path's building blocks: the ragged ringBlocks
// partition, chunked pipelining (ringChunkSpans / ringReduceStep), the
// compress-once cache via a stable sendBuf compression source on the
// first round, and the heal/shrink ladder through collView + healRun.
//
// Non-power-of-two worlds use the MPICH fold: with pow2 the largest
// power of two <= P and rem = P - pow2, the first 2*rem view ranks pair
// up — each odd member folds its vector into its even neighbor, sits out
// the power-of-two core, and receives the finished result at the end;
// survivors renumber densely into [0, pow2) through foldRank/unfoldRank.
//
// Determinism: every schedule is a pure function of (view, buffer
// length, engine config), and each pipelined variant performs the exact
// per-element additions of its blocking oracle in the same order — so
// fault-free runs are bit-identical between the pair and invariant
// across codec worker counts.

import (
	"fmt"

	"mpicomp/internal/gpusim"
)

// rdPow2 returns the largest power of two not exceeding size, and the
// remainder folded away by the preamble.
func rdPow2(size int) (pow2, rem int) {
	pow2 = 1
	for pow2*2 <= size {
		pow2 *= 2
	}
	return pow2, size - pow2
}

// foldRank maps a dense participant index to its core rank in [0, pow2),
// or -1 for the folded-out odd members of the preamble pairs.
func foldRank(vrank, rem int) int {
	if vrank < 2*rem {
		if vrank&1 == 1 {
			return -1
		}
		return vrank / 2
	}
	return vrank - rem
}

// unfoldRank maps a core rank back to its dense participant index.
func unfoldRank(nr, rem int) int {
	if nr < rem {
		return 2 * nr
	}
	return nr + rem
}

// rdWindow bounds how many spans a recursive-doubling round keeps open
// (posted but unconsumed) at once. Every open span costs fixed staging:
// the outbound side holds its compressed payload in the engine's pool
// (Config.PoolBuffers slots) until delivery, and each posted receive
// lets the peer stage one inbound payload in the same pool — chunk
// credits cannot help, because every span is its own message. Posting a
// full vector's worth of spans at once therefore exhausts the pool
// mid-round and degrades the overflow to uncompressed PoolFallbacks
// sends; a window of two is all the overlap the round can use (one span
// in flight while the previous one reduces) and keeps the pool's
// worst case at 2(rdWindow+1)+1 slots, under the smallest configured
// pools.
const rdWindow = 2

// rdExchange runs one recursive-doubling round with peer: the local
// accumulator streams out chunk by chunk while the peer's accumulator
// arrives into scratch, and each received chunk is reduced into acc as
// its span closes. Because the send may read acc itself, a span's
// reduction always waits for that span's outbound send first — MPI
// semantics freeze a buffer with posted sends, and unlike the ring's
// reduce-scatter both sides here exchange the same full vector, so the
// send and reduce ranges overlap span for span. src is the buffer the
// send is compressed from — acc, except on a fresh first round where
// the caller passes the untouched sendBuf (identical bytes, stable
// epoch) so warm iterations hit the compress-once cache.
//
// Liveness: a rank opens span c only after closing span c-rdWindow, and
// posts its receive for span c before its send of span c, so a stuck
// rank would need its peer to trail by more than rdWindow spans while
// the peer needs the same of it — a contradiction; the slower side
// lags by at most the window.
func (r *Rank) rdExchange(peer int, src, acc, scratch *gpusim.Buffer, chunk, tag int) error {
	spans := ringChunkSpans(acc.Len(), chunk)
	rreqs := make([]*Request, len(spans))
	sreqs := make([]*Request, len(spans))
	closeSpan := func(c int) error {
		if err := r.Wait(sreqs[c]); err != nil {
			return err
		}
		if err := r.Wait(rreqs[c]); err != nil {
			return err
		}
		sp := spans[c]
		sumFloat32(r, acc.Slice(sp[0], sp[1]), scratch.Data[sp[0]:sp[0]+sp[1]])
		return nil
	}
	for c, sp := range spans {
		if c >= rdWindow {
			if err := closeSpan(c - rdWindow); err != nil {
				return err
			}
		}
		rreq, err := r.irecv(peer, tag, scratch.Slice(sp[0], sp[1]))
		if err != nil {
			return err
		}
		rreqs[c] = rreq
		sreq, err := r.isend(peer, tag, src.Slice(sp[0], sp[1]))
		if err != nil {
			return err
		}
		sreqs[c] = sreq
	}
	for c := len(spans) - rdWindow; c < len(spans); c++ {
		if c < 0 {
			continue
		}
		if err := closeSpan(c); err != nil {
			return err
		}
	}
	if len(spans) > 1 {
		r.Engine.NotePipelinedChunks(len(spans))
	}
	return nil
}

// rdRoundsOver runs the fold preamble plus the recursive-doubling core
// of an allreduce over an explicit world-rank list: peers in exchange
// order, me this rank's index in it. acc holds the local contribution on
// entry and the full sum on return; scratch must match its length. src0,
// when non-nil, is the stable compression source for this rank's first
// transmission (the compress-once cache trick); the two-level allreduce
// reuses these rounds for its inter-node leader stage.
func (r *Rank) rdRoundsOver(peers []int, me int, acc, scratch, src0 *gpusim.Buffer, chunk, tag int) error {
	pow2, rem := rdPow2(len(peers))
	if me < 2*rem {
		partner := peers[me^1]
		if me&1 == 1 {
			src := acc
			if src0 != nil {
				src = src0
			}
			if err := r.send(partner, tag, src); err != nil {
				return fmt.Errorf("mpi: rd fold send: %w", err)
			}
			if err := r.recv(partner, tag, acc); err != nil {
				return fmt.Errorf("mpi: rd fold result: %w", err)
			}
			return nil
		}
		if err := r.recv(partner, tag, scratch); err != nil {
			return fmt.Errorf("mpi: rd fold recv: %w", err)
		}
		sumFloat32(r, acc, scratch.Data[:acc.Len()])
	}
	nr := foldRank(me, rem)
	fresh := me >= 2*rem // acc still byte-equal to the send buffer
	for mask := 1; mask < pow2; mask <<= 1 {
		peer := peers[unfoldRank(nr^mask, rem)]
		src := acc
		if fresh && mask == 1 && src0 != nil {
			src = src0
		}
		if err := r.rdExchange(peer, src, acc, scratch, chunk, tag); err != nil {
			return fmt.Errorf("mpi: rd round (mask %d): %w", mask, err)
		}
	}
	if rem > 0 && me < 2*rem {
		// me is even here (odd members returned above): hand the
		// folded-out partner the finished result.
		if err := r.send(peers[me+1], tag, acc); err != nil {
			return fmt.Errorf("mpi: rd unfold send: %w", err)
		}
	}
	return nil
}

// RecursiveDoublingAllreduceSum is the latency-optimal allreduce: ceil(
// log2 P) rounds in which pairs at doubling distances exchange their full
// accumulators and reduce. It moves n·log2 P bytes per rank versus the
// ring's 2n(P-1)/P, but pays log2 P message latencies versus the ring's
// 2(P-1) — the winner for small messages, where per-message overhead
// dominates. Buffers must hold float32 data; non-word-aligned sizes fall
// back to reduce+broadcast. Rounds stream in Config.PipelineChunkBytes
// chunks and the first transmission compresses from the untouched
// sendBuf, so warm iterations hit the compress-once cache. Results are
// bit-identical to RecursiveDoublingAllreduceSumBlocking: both run the
// same per-element additions in the same order.
func (r *Rank) RecursiveDoublingAllreduceSum(sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.rdAllreduce(sendBuf, recvBuf, true) })
}

// RecursiveDoublingAllreduceSumBlocking is the whole-vector blocking
// form of the same schedule — no chunk pipelining, a fresh compression
// every round. It is the measured baseline for the pipelined variant and
// its differential-testing oracle.
func (r *Rank) RecursiveDoublingAllreduceSumBlocking(sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.rdAllreduce(sendBuf, recvBuf, false) })
}

func (r *Rank) rdAllreduce(sendBuf, recvBuf *gpusim.Buffer, pipelined bool) error {
	v, err := r.collView()
	if err != nil {
		return err
	}
	size := v.size
	if recvBuf.Len() != sendBuf.Len() {
		return fmt.Errorf("mpi: rd allreduce buffers differ: %d vs %d", sendBuf.Len(), recvBuf.Len())
	}
	if size == 1 {
		copy(recvBuf.Data, sendBuf.Data)
		recvBuf.MarkDirty()
		return nil
	}
	if sendBuf.Len()%4 != 0 {
		return r.allreduceSum(sendBuf, recvBuf)
	}
	copy(recvBuf.Data, sendBuf.Data)
	recvBuf.MarkDirty()
	scratch := &gpusim.Buffer{Data: make([]byte, sendBuf.Len()), Loc: recvBuf.Loc, Dev: recvBuf.Dev}
	peers := make([]int, size)
	for i := range peers {
		peers[i] = v.real(i)
	}
	chunk := 0
	var src0 *gpusim.Buffer
	if pipelined {
		chunk = ringChunk(r.Engine.Config().PipelineChunkBytes)
		if sendBuf.Loc == gpusim.Device {
			src0 = sendBuf
		}
	}
	return r.rdRoundsOver(peers, v.vrank, recvBuf, scratch, src0, chunk, r.collTag(baseAllreduce))
}

// RabenseifnerAllreduceSum is the bandwidth-optimal logarithmic
// allreduce: a reduce-scatter by recursive halving (each round sends the
// half of the current block range the rank will not keep) followed by an
// allgather by recursive doubling over the same distances. Per rank it
// moves the ring's 2n(P-1)/P bytes but in 2·log2 P rounds instead of
// 2(P-1) — ahead of the ring whenever latency matters and competitive at
// large sizes. Buffers must hold float32 data; messages with fewer words
// than ranks or non-word-aligned sizes fall back to reduce+broadcast —
// the power-of-two core uses the ragged ringBlocks partition. The
// halving rounds stream through ringReduceStep's chunk pipeline and the
// first round compresses from the untouched sendBuf (compress-once
// cache). Results are bit-identical to
// RabenseifnerAllreduceSumBlocking: same additions, same order.
func (r *Rank) RabenseifnerAllreduceSum(sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.rabAllreduce(sendBuf, recvBuf, true) })
}

// RabenseifnerAllreduceSumBlocking is the unpipelined form of the same
// schedule: whole half-ranges per round, a fresh compression per hop —
// the measured baseline and differential-testing oracle for
// RabenseifnerAllreduceSum.
func (r *Rank) RabenseifnerAllreduceSumBlocking(sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.rabAllreduce(sendBuf, recvBuf, false) })
}

func (r *Rank) rabAllreduce(sendBuf, recvBuf *gpusim.Buffer, pipelined bool) error {
	v, err := r.collView()
	if err != nil {
		return err
	}
	size := v.size
	if recvBuf.Len() != sendBuf.Len() {
		return fmt.Errorf("mpi: rabenseifner allreduce buffers differ: %d vs %d", sendBuf.Len(), recvBuf.Len())
	}
	if size == 1 {
		copy(recvBuf.Data, sendBuf.Data)
		recvBuf.MarkDirty()
		return nil
	}
	if sendBuf.Len()%4 != 0 || sendBuf.Len()/4 < size {
		return r.allreduceSum(sendBuf, recvBuf)
	}
	copy(recvBuf.Data, sendBuf.Data)
	recvBuf.MarkDirty()
	scratch := &gpusim.Buffer{Data: make([]byte, sendBuf.Len()), Loc: recvBuf.Loc, Dev: recvBuf.Dev}
	tag := r.collTag(baseAllreduce)
	chunk := 0
	if pipelined {
		chunk = ringChunk(r.Engine.Config().PipelineChunkBytes)
	}
	pow2, rem := rdPow2(size)
	offs := ringBlocks(sendBuf.Len(), pow2)
	vrank := v.vrank

	// Fold preamble (whole vector, like recursive doubling's).
	if vrank < 2*rem {
		partner := v.real(vrank ^ 1)
		if vrank&1 == 1 {
			src := recvBuf
			if pipelined && sendBuf.Loc == gpusim.Device {
				src = sendBuf
			}
			if err := r.send(partner, tag, src); err != nil {
				return fmt.Errorf("mpi: rabenseifner fold send: %w", err)
			}
			if err := r.recv(partner, tag, recvBuf); err != nil {
				return fmt.Errorf("mpi: rabenseifner fold result: %w", err)
			}
			return nil
		}
		if err := r.recv(partner, tag, scratch); err != nil {
			return fmt.Errorf("mpi: rabenseifner fold recv: %w", err)
		}
		sumFloat32(r, recvBuf, scratch.Data)
	}
	nr := foldRank(vrank, rem)
	fresh := vrank >= 2*rem

	// Phase 1: reduce-scatter by recursive halving over block ranges.
	// [lo, hi) is the block range this rank still accumulates; each round
	// sends the half it gives up and reduces the half it keeps, so after
	// log2 pow2 rounds core rank nr holds block nr fully reduced.
	lo, hi := 0, pow2
	for mask := pow2 >> 1; mask > 0; mask >>= 1 {
		peer := v.real(unfoldRank(nr^mask, rem))
		mid := (lo + hi) / 2
		keepLo, keepHi, sendLo, sendHi := lo, mid, mid, hi
		if nr&mask != 0 {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		src := recvBuf
		if fresh && mask == pow2>>1 && pipelined && sendBuf.Loc == gpusim.Device {
			src = sendBuf
		}
		if err := r.ringReduceStep(peer, peer, src, recvBuf,
			offs[sendLo], offs[sendHi]-offs[sendLo],
			offs[keepLo], offs[keepHi]-offs[keepLo],
			scratch, chunk); err != nil {
			return fmt.Errorf("mpi: rabenseifner halving (mask %d): %w", mask, err)
		}
		lo, hi = keepLo, keepHi
	}

	// Phase 2: allgather by recursive doubling — the held range doubles
	// each round by exchanging it with the partner holding the adjacent
	// aligned range.
	for mask := 1; mask < pow2; mask <<= 1 {
		peer := v.real(unfoldRank(nr^mask, rem))
		width := hi - lo
		plo, phi := hi, hi+width
		if nr&mask != 0 {
			plo, phi = lo-width, lo
		}
		sb := recvBuf.Slice(offs[lo], offs[hi]-offs[lo])
		rb := recvBuf.Slice(offs[plo], offs[phi]-offs[plo])
		if err := r.sendrecv(peer, tag, sb, peer, tag, rb); err != nil {
			return fmt.Errorf("mpi: rabenseifner doubling (mask %d): %w", mask, err)
		}
		if plo < lo {
			lo = plo
		} else {
			hi = phi
		}
	}

	if rem > 0 && vrank < 2*rem {
		if err := r.send(v.real(vrank+1), tag, recvBuf); err != nil {
			return fmt.Errorf("mpi: rabenseifner unfold send: %w", err)
		}
	}
	return nil
}
