package mpi

// Topology-aware two-level collectives (MVAPICH2's leader-based
// schedules), driven by netsim's node grouping: each node elects a
// leader, node-local traffic rides the fast intra-node link, and only
// the leaders talk across the network — so the slow inter-node link
// carries one message stream per node instead of one per rank.
// BcastHierarchical (coll.go) is the broadcast member of the family;
// this file adds the allreduce and allgather.
//
// Leader election mirrors bcastHierarchical: the first surviving rank of
// a node in view order leads it, so on the identity view the leader is
// simply each node's first rank and the schedule is deterministic; under
// a shrunken view the allreduce re-elects and completes on survivors.

import (
	"fmt"

	"mpicomp/internal/gpusim"
)

// electLeaders walks the view in order and picks each node's first
// surviving rank as its leader. nodeIdx maps a node to its dense index
// in liveNodes (-1 when no rank of the node survives), leaderOf to its
// leader's world rank.
func (w *World) electLeaders(v collView) (nodeIdx, leaderOf, liveNodes []int) {
	nodeIdx = make([]int, w.nodes)
	leaderOf = make([]int, w.nodes)
	for i := range nodeIdx {
		nodeIdx[i] = -1
	}
	for vr := 0; vr < v.size; vr++ {
		id := v.real(vr)
		if n := w.nodeOf(id); nodeIdx[n] < 0 {
			nodeIdx[n] = len(liveNodes)
			leaderOf[n] = id
			liveNodes = append(liveNodes, n)
		}
	}
	return nodeIdx, leaderOf, liveNodes
}

// AllreduceSumHierarchical is the two-level allreduce: ranks fold their
// vectors into their node leader over the intra-node link, the leaders
// run a recursive-doubling allreduce across the network, and each leader
// fans the result back out to its node. The inter-node stage reuses the
// recursive-doubling rounds (chunk pipelining, fold for non-power-of-two
// node counts), so only ceil(log2 nodes) network latencies are paid and
// each node's vector crosses the network log2(nodes) times instead of
// once per rank. Worlds with no hierarchy to exploit (one node, or one
// rank per node) run flat recursive doubling instead.
func (r *Rank) AllreduceSumHierarchical(sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.allreduceSumHierarchical(sendBuf, recvBuf) })
}

func (r *Rank) allreduceSumHierarchical(sendBuf, recvBuf *gpusim.Buffer) error {
	w := r.world
	v, err := r.collView()
	if err != nil {
		return err
	}
	if recvBuf.Len() != sendBuf.Len() {
		return fmt.Errorf("mpi: two-level allreduce buffers differ: %d vs %d", sendBuf.Len(), recvBuf.Len())
	}
	if w.ppn == 1 || w.nodes == 1 || v.size == 1 {
		return r.rdAllreduce(sendBuf, recvBuf, true)
	}
	if sendBuf.Len()%4 != 0 {
		return r.allreduceSum(sendBuf, recvBuf)
	}
	nodeIdx, leaderOf, liveNodes := w.electLeaders(v)
	myNode := r.Node()
	leader := leaderOf[myNode]
	rtag := r.collTag(baseReduce)
	btag := r.collTag(baseBcast)

	copy(recvBuf.Data, sendBuf.Data)
	recvBuf.MarkDirty()

	if r.id != leader {
		// Stage 1: fold into the node leader — sendBuf itself when
		// device-resident, for the compress-once cache's benefit — then
		// wait for the finished result from stage 3.
		src := recvBuf
		if sendBuf.Loc == gpusim.Device {
			src = sendBuf
		}
		if err := r.send(leader, rtag, src); err != nil {
			return fmt.Errorf("mpi: two-level reduce send: %w", err)
		}
		if err := r.recv(leader, btag, recvBuf); err != nil {
			return fmt.Errorf("mpi: two-level result recv: %w", err)
		}
		return nil
	}

	// Leader: accumulate the node's contributions in view order (a fixed
	// order keeps the float sum deterministic).
	scratch := &gpusim.Buffer{Data: make([]byte, sendBuf.Len()), Loc: recvBuf.Loc, Dev: recvBuf.Dev}
	for vr := 0; vr < v.size; vr++ {
		peer := v.real(vr)
		if w.nodeOf(peer) != myNode || peer == r.id {
			continue
		}
		if err := r.recv(peer, rtag, scratch); err != nil {
			return fmt.Errorf("mpi: two-level reduce recv: %w", err)
		}
		sumFloat32(r, recvBuf, scratch.Data)
	}

	// Stage 2: recursive doubling among the surviving node leaders.
	if len(liveNodes) > 1 {
		peers := make([]int, len(liveNodes))
		for i, nd := range liveNodes {
			peers[i] = leaderOf[nd]
		}
		chunk := ringChunk(r.Engine.Config().PipelineChunkBytes)
		if err := r.rdRoundsOver(peers, nodeIdx[myNode], recvBuf, scratch, nil, chunk, r.collTag(baseAllreduce)); err != nil {
			return fmt.Errorf("mpi: two-level inter-node stage: %w", err)
		}
	}

	// Stage 3: fan the result back out within the node.
	for vr := 0; vr < v.size; vr++ {
		peer := v.real(vr)
		if w.nodeOf(peer) != myNode || peer == r.id {
			continue
		}
		if err := r.send(peer, btag, recvBuf); err != nil {
			return fmt.Errorf("mpi: two-level result send: %w", err)
		}
	}
	return nil
}

// AllgatherHierarchical is the two-level allgather: node members deposit
// their blocks with the node leader, the leaders ring-exchange whole
// node superblocks across the network — relaying each superblock's
// compressed payload verbatim, exactly like the flat ring — and each
// leader hands the assembled vector back to its node. The superblock
// relay sends nodes-1 messages per leader instead of ranks-1 per rank,
// so the network pays per-message overhead per node. The schedule needs
// every node's world-indexed region contiguous and fully populated, so
// shrunken or rerouted views (and worlds with no hierarchy) fall back to
// the flat ring allgather.
func (r *Rank) AllgatherHierarchical(sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.allgatherHierarchical(sendBuf, recvBuf) })
}

func (r *Rank) allgatherHierarchical(sendBuf, recvBuf *gpusim.Buffer) error {
	w := r.world
	v, err := r.collView()
	if err != nil {
		return err
	}
	blk := sendBuf.Len()
	if recvBuf.Len() != r.Size()*blk {
		return fmt.Errorf("mpi: allgather recv buffer %d bytes, want %d", recvBuf.Len(), r.Size()*blk)
	}
	if w.ppn == 1 || w.nodes == 1 || v.live != nil || blk == 0 {
		return r.allgather(sendBuf, recvBuf)
	}
	myNode := r.Node()
	leader := myNode * w.ppn // identity view: a node's first rank leads
	gtag := r.collTag(baseGather)
	btag := r.collTag(baseBcast)

	// Own contribution (device-local copy), as in the flat ring.
	own := recvBuf.Slice(r.id*blk, blk)
	if sendBuf.Loc == gpusim.Device {
		r.Dev.MemcpyD2D(r.Clock, r.Dev.Stream(0), own.Data, sendBuf.Data)
		r.Dev.StreamSync(r.Clock, r.Dev.Stream(0))
	} else {
		copy(own.Data, sendBuf.Data)
	}
	own.MarkDirty()

	if r.id != leader {
		// Stage 1: deposit the block with the leader; stage 3: receive
		// the fully assembled vector.
		if err := r.send(leader, gtag, sendBuf); err != nil {
			return fmt.Errorf("mpi: two-level allgather send: %w", err)
		}
		if err := r.recv(leader, btag, recvBuf); err != nil {
			return fmt.Errorf("mpi: two-level allgather result: %w", err)
		}
		return nil
	}

	// Leader: collect the node's blocks into the node's region.
	for p := leader + 1; p < leader+w.ppn; p++ {
		if err := r.recv(p, gtag, recvBuf.Slice(p*blk, blk)); err != nil {
			return fmt.Errorf("mpi: two-level allgather gather: %w", err)
		}
	}

	// Stage 2: ring-relay whole node superblocks among the leaders —
	// compress once, forward the wire payload verbatim, decompress the
	// previous step's superblock while the current step's transfers are
	// in flight.
	nodes := w.nodes
	nblk := w.ppn * blk
	rightLeader := ((myNode + 1) % nodes) * w.ppn
	leftLeader := ((myNode - 1 + nodes) % nodes) * w.ppn
	region := recvBuf.Slice(myNode*nblk, nblk)
	payload, hdr := r.Engine.CompressForLinkCached(r.Clock, region, w.cluster.InterNode.BandwidthGBps)
	type pending struct {
		raw rawResult
		dst *gpusim.Buffer
	}
	var todo *pending
	atag := r.collTag(baseAllgather)
	for step := 0; step < nodes-1; step++ {
		recvNode := (myNode - step - 1 + nodes) % nodes
		rreq, err := r.irecvRaw(leftLeader, atag)
		if err != nil {
			return err
		}
		sreq, err := r.isendPayload(rightLeader, atag, payload, hdr)
		if err != nil {
			return fmt.Errorf("mpi: two-level allgather step %d: %w", step, err)
		}
		if todo != nil {
			if err := r.consumeRaw(todo.raw, todo.dst); err != nil {
				return fmt.Errorf("mpi: two-level allgather decompress: %w", err)
			}
		}
		if err := r.Waitall(sreq, rreq); err != nil {
			return fmt.Errorf("mpi: two-level allgather step %d: %w", step, err)
		}
		todo = &pending{raw: rreq.raw, dst: recvBuf.Slice(recvNode*nblk, nblk)}
		payload, hdr = rreq.raw.payload, rreq.raw.hdr
	}
	if todo != nil {
		if err := r.consumeRaw(todo.raw, todo.dst); err != nil {
			return fmt.Errorf("mpi: two-level allgather decompress: %w", err)
		}
	}

	// Stage 3: hand the assembled vector back to the node.
	for p := leader + 1; p < leader+w.ppn; p++ {
		if err := r.send(p, btag, recvBuf); err != nil {
			return fmt.Errorf("mpi: two-level allgather result send: %w", err)
		}
	}
	return nil
}
