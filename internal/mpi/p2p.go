package mpi

import (
	"fmt"
	"sync"

	"mpicomp/internal/core"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/simtime"
)

// envelope is one in-flight message's control state. For eager messages it
// carries the payload directly; for rendezvous it carries the piggybacked
// compression header (Figure 3), the payload, and the sender's post time,
// so that whichever side completes the match can compute the entire
// handshake-and-transfer timeline — modeling MVAPICH2's asynchronous
// progress engine, which transfers data as soon as the CTS arrives with no
// further sender involvement.
type envelope struct {
	src, tag int
	eager    bool

	payload []byte
	hdr     core.Header

	// rendezvous timeline inputs
	rtsArrival simtime.Time // RTS packet arrival at the receiver
	sendPost   simtime.Time // sender's clock when the send was posted

	// rendezvous timeline outputs (filled by completeMatch)
	matchTime   simtime.Time   // receive matched + staging done
	dataArrival simtime.Time   // last byte of payload at the receiver
	staged      *gpusim.Buffer // receive-side staging buffer
	// senderDone delivers the sender-side completion instant.
	senderDone chan simtime.Time

	// eager timeline
	arrival simtime.Time

	// pipelined rendezvous (chunked) state
	pipelined bool
	chunks    []chunkPart
}

// recvPost is a posted (but not yet matched) receive.
type recvPost struct {
	src, tag int
	postTime simtime.Time
	matched  chan *envelope
	rank     *Rank
}

// mailbox implements MPI matching semantics: posted receives match
// incoming envelopes in arrival order, with wildcard source/tag;
// unmatched envelopes queue as "unexpected messages".
type mailbox struct {
	mu         sync.Mutex
	unexpected []*envelope
	posted     []*recvPost
}

func newMailbox() *mailbox { return &mailbox{} }

func tagMatches(postTag, msgTag int) bool { return postTag == AnyTag || postTag == msgTag }
func srcMatches(postSrc, msgSrc int) bool { return postSrc == AnySource || postSrc == msgSrc }

// deliver hands an envelope to the mailbox. If a posted receive matches,
// the match completes immediately in the caller's goroutine (the runtime's
// progress engine): staging, CTS, and the data-transfer timeline are all
// computed here, so neither side ever depends on the other reaching Wait.
func (m *mailbox) deliver(env *envelope) {
	m.mu.Lock()
	for i, p := range m.posted {
		if srcMatches(p.src, env.src) && tagMatches(p.tag, env.tag) {
			m.posted = append(m.posted[:i], m.posted[i+1:]...)
			m.mu.Unlock()
			completeMatch(p, env)
			p.matched <- env
			return
		}
	}
	m.unexpected = append(m.unexpected, env)
	m.mu.Unlock()
}

// post registers a receive. If an unexpected envelope already matches it
// is returned immediately (match completed); otherwise the receive queues
// and the caller waits on p.matched.
func (m *mailbox) post(p *recvPost) *envelope {
	m.mu.Lock()
	for i, env := range m.unexpected {
		if srcMatches(p.src, env.src) && tagMatches(p.tag, env.tag) {
			m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
			m.mu.Unlock()
			completeMatch(p, env)
			return env
		}
	}
	m.posted = append(m.posted, p)
	m.mu.Unlock()
	return nil
}

// completeMatch performs the rendezvous protocol's receiver-side steps
// (Figure 4, steps 4-5): record the match, stage the temporary device
// buffer for the compressed payload, send the CTS, and compute the data
// transfer over the fabric. Eager envelopes need no work.
func completeMatch(p *recvPost, env *envelope) {
	if env.eager {
		return
	}
	if env.pipelined {
		completePipelinedMatch(p, env)
		return
	}
	r := p.rank
	w := r.world
	// The receive proceeds once both the RTS has arrived and the receive
	// is posted (asynchronous progress-thread semantics).
	match := simtime.Max(p.postTime, env.rtsArrival)
	// Stage the receive buffer before clearing the sender to send.
	stageClk := simtime.NewClock(match)
	env.staged = r.Engine.StageRecv(stageClk, env.hdr)
	env.matchTime = stageClk.Now()
	srcNode := w.nodeOf(env.src)
	dstNode := w.nodeOf(r.id)
	cts := w.fabric.ControlMessage(dstNode, srcNode, env.matchTime)
	// The RDMA transfer is posted by the sender's HCA when the CTS
	// arrives; the sender's CPU is not involved.
	ready := simtime.Max(env.sendPost, cts)
	env.dataArrival = w.fabric.Transfer(srcNode, dstNode, ready, len(env.payload))
	w.tracer.Add(fmt.Sprintf("net %d->%d", env.src, r.id), "transfer", ready, env.dataArrival)
	env.senderDone <- env.dataArrival
}

// Request is a handle for a nonblocking operation, completed by Wait.
type Request struct {
	rank *Rank
	done bool
	err  error

	// send side
	isSend bool
	env    *envelope

	// receive side
	buf   *gpusim.Buffer
	post  *recvPost
	early *envelope // match found at post time
	// raw receive (collective relay path)
	wantRaw bool
	raw     rawResult
}

// Send transmits buf to rank dst with the given tag, blocking until the
// local buffer is reusable (rendezvous: transfer drained).
func (r *Rank) Send(dst, tag int, buf *gpusim.Buffer) error {
	req, err := r.Isend(dst, tag, buf)
	if err != nil {
		return err
	}
	return r.Wait(req)
}

// Recv receives into buf from rank src (or AnySource) with the given tag
// (or AnyTag), blocking until the message content is available in buf.
func (r *Rank) Recv(src, tag int, buf *gpusim.Buffer) error {
	req, err := r.Irecv(src, tag, buf)
	if err != nil {
		return err
	}
	return r.Wait(req)
}

// Isend starts a nonblocking send. Compression (when eligible) happens
// now, on the caller's clock, exactly as in Figure 4 steps 1-3; the
// handshake and transfer proceed asynchronously and Wait observes their
// completion.
func (r *Rank) Isend(dst, tag int, buf *gpusim.Buffer) (*Request, error) {
	if err := r.checkPeer(dst); err != nil {
		return nil, err
	}
	if tag < 0 && tag > internalTagBase {
		return nil, fmt.Errorf("mpi: user tags must be non-negative (got %d)", tag)
	}
	w := r.world
	dstRank := w.ranks[dst]

	if buf.Len() < w.eagerLimit {
		// Eager protocol: one message carrying the payload.
		payload := append([]byte(nil), buf.Data...)
		arrival := w.fabric.Transfer(r.Node(), w.nodeOf(dst), r.Clock.Now(), len(payload))
		env := &envelope{src: r.id, tag: tag, eager: true, payload: payload, arrival: arrival}
		// The sender's CPU returns as soon as the message is injected.
		r.Clock.Advance(simtime.FromMicroseconds(0.5))
		dstRank.box.deliver(env)
		return &Request{rank: r, isSend: true, done: true}, nil
	}

	if r.pipelineEligible(buf) {
		return r.isendPipelined(dst, tag, buf)
	}

	// Rendezvous: compress (steps 1-3), then RTS with the piggybacked
	// header (step 4). The engine sees the destination link's bandwidth
	// so the dynamic-selection extension can gate per message.
	link := w.fabric.LinkFor(r.Node(), w.nodeOf(dst))
	payload, hdr := r.Engine.CompressForLink(r.Clock, buf, link.BandwidthGBps)
	env := &envelope{
		src: r.id, tag: tag,
		payload:    payload,
		hdr:        hdr,
		rtsArrival: w.fabric.ControlMessage(r.Node(), w.nodeOf(dst), r.Clock.Now()),
		sendPost:   r.Clock.Now(),
		senderDone: make(chan simtime.Time, 1),
	}
	req := &Request{rank: r, isSend: true, env: env}
	dstRank.box.deliver(env)
	return req, nil
}

// Irecv starts a nonblocking receive into buf.
func (r *Rank) Irecv(src, tag int, buf *gpusim.Buffer) (*Request, error) {
	if src != AnySource {
		if err := r.checkPeer(src); err != nil {
			return nil, err
		}
	}
	p := &recvPost{src: src, tag: tag, postTime: r.Clock.Now(), matched: make(chan *envelope, 1), rank: r}
	req := &Request{rank: r, buf: buf, post: p}
	req.early = r.box.post(p)
	r.Clock.Advance(simtime.FromMicroseconds(0.3))
	return req, nil
}

// Wait blocks until the request completes, advancing the caller's clock to
// the completion instant and (for receives) decompressing into the user
// buffer.
func (r *Rank) Wait(req *Request) error {
	if req == nil {
		return fmt.Errorf("mpi: Wait on nil request")
	}
	if req.done {
		return req.err
	}
	req.done = true
	if req.isSend {
		// Local completion: the send buffer is reusable once the
		// transfer has drained.
		done := <-req.env.senderDone
		r.Clock.AdvanceTo(done)
		return nil
	}
	if req.wantRaw {
		req.err = r.waitRecvRaw(req)
	} else {
		req.err = r.waitRecv(req)
	}
	return req.err
}

func (r *Rank) waitRecv(req *Request) error {
	env := req.early
	if env == nil {
		env = <-req.post.matched
	}
	if env.eager {
		r.Clock.AdvanceTo(env.arrival)
		r.Clock.Advance(simtime.FromMicroseconds(0.5)) // unpack
		if len(env.payload) > req.buf.Len() {
			return fmt.Errorf("mpi: message of %d bytes truncated into %d-byte buffer", len(env.payload), req.buf.Len())
		}
		copy(req.buf.Data, env.payload)
		return nil
	}
	if env.pipelined {
		return r.waitRecvPipelined(req, env)
	}
	// Rendezvous: the payload lands in the staged device buffer once the
	// transfer completes (step 5), then the decompression kernel
	// restores it into the user buffer (steps 6-7).
	r.Clock.AdvanceTo(simtime.Max(env.matchTime, env.dataArrival))
	if env.hdr.OrigBytes > req.buf.Len() {
		return fmt.Errorf("mpi: message of %d bytes truncated into %d-byte buffer", env.hdr.OrigBytes, req.buf.Len())
	}
	if env.staged != nil {
		copy(env.staged.Data, env.payload)
	}
	if err := r.Engine.Decompress(r.Clock, env.hdr, env.payload, req.buf); err != nil {
		return err
	}
	r.Engine.ReleaseRecv(r.Clock, env.staged)
	return nil
}

// Waitall completes all requests (in order).
func (r *Rank) Waitall(reqs ...*Request) error {
	var first error
	for _, req := range reqs {
		if err := r.Wait(req); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sendrecv performs a simultaneous send and receive (the classic exchange
// primitive collectives are built from).
func (r *Rank) Sendrecv(dst, sendTag int, sendBuf *gpusim.Buffer, src, recvTag int, recvBuf *gpusim.Buffer) error {
	rreq, err := r.Irecv(src, recvTag, recvBuf)
	if err != nil {
		return err
	}
	sreq, err := r.Isend(dst, sendTag, sendBuf)
	if err != nil {
		return err
	}
	return r.Waitall(sreq, rreq)
}

// --- raw payload plumbing for compression-aware collectives ---
//
// Collectives that relay data (Bcast trees, Allgather rings) would pay a
// full decompress + recompress at every hop if they used plain Send/Recv.
// The framework's header makes this unnecessary: a rank can forward the
// compressed payload it received, and every consumer decompresses exactly
// once. isendPayload and irecvRaw expose the rendezvous path at that
// level; they are internal to the collectives.

// isendPayload starts a rendezvous send of an already-prepared payload
// with its compression header (no engine work on this rank).
func (r *Rank) isendPayload(dst, tag int, payload []byte, hdr core.Header) (*Request, error) {
	if err := r.checkPeer(dst); err != nil {
		return nil, err
	}
	w := r.world
	r.Clock.Advance(simtime.FromMicroseconds(0.3))
	env := &envelope{
		src: r.id, tag: tag,
		payload:    payload,
		hdr:        hdr,
		rtsArrival: w.fabric.ControlMessage(r.Node(), w.nodeOf(dst), r.Clock.Now()),
		sendPost:   r.Clock.Now(),
		senderDone: make(chan simtime.Time, 1),
	}
	req := &Request{rank: r, isSend: true, env: env}
	w.ranks[dst].box.deliver(env)
	return req, nil
}

// rawResult is what a raw receive yields: the wire payload, its header,
// and the staging buffer to release after decompression.
type rawResult struct {
	payload []byte
	hdr     core.Header
	staged  *gpusim.Buffer
}

// irecvRaw posts a receive whose Wait captures the raw payload instead of
// decompressing into a user buffer. The result appears in req.raw.
func (r *Rank) irecvRaw(src, tag int) (*Request, error) {
	if src != AnySource {
		if err := r.checkPeer(src); err != nil {
			return nil, err
		}
	}
	p := &recvPost{src: src, tag: tag, postTime: r.Clock.Now(), matched: make(chan *envelope, 1), rank: r}
	req := &Request{rank: r, post: p, wantRaw: true}
	req.early = r.box.post(p)
	r.Clock.Advance(simtime.FromMicroseconds(0.3))
	return req, nil
}

// waitRecvRaw completes a raw receive: the clock advances to payload
// arrival but no decompression happens.
func (r *Rank) waitRecvRaw(req *Request) error {
	env := req.early
	if env == nil {
		env = <-req.post.matched
	}
	if env.eager {
		r.Clock.AdvanceTo(env.arrival)
		r.Clock.Advance(simtime.FromMicroseconds(0.5))
		req.raw = rawResult{
			payload: env.payload,
			hdr:     core.Header{Algo: core.AlgoNone, OrigBytes: len(env.payload), CompBytes: len(env.payload)},
		}
		return nil
	}
	r.Clock.AdvanceTo(simtime.Max(env.matchTime, env.dataArrival))
	if env.staged != nil {
		copy(env.staged.Data, env.payload)
	}
	req.raw = rawResult{payload: env.payload, hdr: env.hdr, staged: env.staged}
	return nil
}
