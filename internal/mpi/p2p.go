package mpi

import (
	"errors"
	"fmt"
	"sync"

	"mpicomp/internal/core"
	"mpicomp/internal/dtype"
	"mpicomp/internal/faults"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/simtime"
)

// ErrDeliveryFailed is returned (wrapped) from Wait when a message's
// retransmission budget runs out: every attempt of some protocol stage —
// RTS, CTS, data transfer, or eager message — was lost or corrupted.
// Both endpoints of the failed message observe the error; neither
// deadlocks.
var ErrDeliveryFailed = errors.New("mpi: message delivery failed (retry budget exhausted)")

// sendOutcome is the sender-side completion record: the instant the send
// buffer became reusable, the delivery error if the transport gave up, and
// (pipelined sends) the chunk retransmissions the message consumed — the
// signal Wait feeds into the per-peer degrade ladder.
type sendOutcome struct {
	t           simtime.Time
	err         error
	retransmits int
}

// envelope is one in-flight message's control state. For eager messages it
// carries the payload directly; for rendezvous it carries the piggybacked
// compression header (Figure 3), the payload, and the sender's post time,
// so that whichever side completes the match can compute the entire
// handshake-and-transfer timeline — modeling MVAPICH2's asynchronous
// progress engine, which transfers data as soon as the CTS arrives with no
// further sender involvement.
type envelope struct {
	src, tag int
	// dst is the destination rank; pipelined sends read it back in Wait to
	// feed the per-peer degrade ladder.
	dst   int
	eager bool
	// seq is the sender's per-destination message number; together with
	// (src, dst) it is the identity the fault injector hashes.
	seq uint64

	payload []byte
	hdr     core.Header
	// crc protects eager payloads (rendezvous payloads carry their
	// checksum in hdr).
	crc uint32

	// deliveryErr marks a message whose transport gave up (wrapped
	// ErrDeliveryFailed). The envelope still flows through matching so
	// the receiver unblocks with the error instead of deadlocking.
	deliveryErr error

	// rendezvous timeline inputs
	rtsArrival simtime.Time // RTS packet arrival at the receiver
	sendPost   simtime.Time // sender's clock when the send was posted

	// rendezvous timeline outputs (filled by completeMatch)
	matchTime   simtime.Time   // receive matched + staging done
	dataArrival simtime.Time   // last byte of payload at the receiver
	staged      *gpusim.Buffer // receive-side staging buffer
	// senderDone delivers the sender-side completion outcome.
	senderDone chan sendOutcome

	// eager timeline
	arrival simtime.Time

	// pipelined rendezvous (chunked) state. relayChunks marks a relayed
	// wire payload traveling as segments (reassembled, then decoded against
	// hdr); stagedChunks holds the credit window's worth of staging slots a
	// chunked compression stream cycles through.
	pipelined    bool
	relayChunks  bool
	chunks       []chunkPart
	stagedChunks []*gpusim.Buffer
	// ticket orders this envelope's match completion on the sender's
	// per-destination pipeLane (pipeline.go); done closes once the
	// completion has run, and the receiver's Wait gates on it before
	// reading the timeline it filled.
	ticket uint64
	done   chan struct{}

	// fb, when non-nil, regenerates this message as an uncompressed wire
	// payload (the sender still owns the user buffer until Wait). The
	// transport invokes it mid-retry when the codec circuit breaker opens
	// on the pair, so even the message whose failures tripped the breaker
	// completes within its retry budget.
	fb wireFallback
}

// wireFallback rebuilds a message's uncompressed wire form at virtual
// instant `at`, returning the payload, its header (Fallback set), and the
// virtual cost of producing it (the checksum pass).
type wireFallback func(at simtime.Time) ([]byte, core.Header, simtime.Duration)

// recvPost is a posted (but not yet matched) receive.
type recvPost struct {
	src, tag int
	postTime simtime.Time
	matched  chan *envelope
	rank     *Rank
}

// mailbox implements MPI matching semantics: posted receives match
// incoming envelopes in arrival order, with wildcard source/tag;
// unmatched envelopes queue as "unexpected messages".
//
// The failure fields are written only by the watchdog sweep (health.go):
// dead marks the owner itself failed — senders get failErr instead of
// queuing — and failedSrcs records announced peer failures so receives
// posted after the sweep still observe them.
//
// Every field below mu is guarded by it (enforced by simlint's
// lockorder analyzer); world alone is set once at construction and read
// lock-free.
//
//simlint:guarded
type mailbox struct {
	mu         sync.Mutex
	unexpected []*envelope
	posted     []*recvPost

	dead       bool
	deadAt     simtime.Time
	failErr    error
	failedSrcs map[int]srcFail

	// Attempt-quit records (heal.go): quits holds peers that abandoned a
	// revoked collective attempt (consulted by post, keyed by source);
	// ownQuits holds the owner's own abandonments (consulted by deliver —
	// the owner will never post the attempt's receives). Empty outside
	// self-healing recovery, so the hot paths pay one length test.
	quits    []attemptQuit
	ownQuits []attemptQuit

	// world backlinks for the watchdog (deadline, wakeup accounting).
	world *World //simlint:unguarded immutable after newMailbox
}

func newMailbox(w *World) *mailbox { return &mailbox{world: w} }

func tagMatches(postTag, msgTag int) bool { return postTag == AnyTag || postTag == msgTag }
func srcMatches(postSrc, msgSrc int) bool { return postSrc == AnySource || postSrc == msgSrc }

// deliver hands an envelope to the mailbox. If a posted receive matches,
// the match completes immediately in the caller's goroutine (the runtime's
// progress engine): staging, CTS, and the data-transfer timeline are all
// computed here, so neither side ever depends on the other reaching Wait.
func (m *mailbox) deliver(env *envelope) {
	m.mu.Lock()
	if m.dead {
		onset, err := m.deadAt, m.failErr
		m.mu.Unlock()
		// The receiver is gone: the envelope never queues, and a waiting
		// sender times out at the watchdog deadline.
		m.world.failSend(env, onset, err)
		return
	}
	for i, p := range m.posted {
		if srcMatches(p.src, env.src) && tagMatches(p.tag, env.tag) {
			m.posted = append(m.posted[:i], m.posted[i+1:]...)
			m.mu.Unlock()
			completeMatch(p, env)
			p.matched <- env
			return
		}
	}
	for _, q := range m.ownQuits {
		if quitCovers(q, env.tag) {
			// Traffic for an attempt the owner abandoned: a matching receive
			// will never be posted, so never queue it — the sender (if
			// rendezvous) unblocks at the same quit-derived instant the
			// owner's abort sweep would have used.
			m.mu.Unlock()
			m.world.failSend(env, q.at, m.world.revokeErr())
			return
		}
	}
	m.unexpected = append(m.unexpected, env)
	m.mu.Unlock()
}

// post registers a receive. If an unexpected envelope already matches it
// is returned immediately (match completed); otherwise the receive queues
// and the caller waits on p.matched. Real messages win over announced
// failures: the unexpected queue is scanned before the failed-source
// table, so a message a rank sent before dying is still received.
func (m *mailbox) post(p *recvPost) *envelope {
	m.mu.Lock()
	for i, env := range m.unexpected {
		if srcMatches(p.src, env.src) && tagMatches(p.tag, env.tag) {
			m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
			m.mu.Unlock()
			completeMatch(p, env)
			return env
		}
	}
	if q, ok := m.quitFor(p.src, p.tag); ok {
		// The source already abandoned the attempt this receive belongs to:
		// wake it immediately with the revocation error, at the same
		// instant the source's abort sweep would have used had the receive
		// been posted earlier.
		m.mu.Unlock()
		m.world.watchdogWakeups.Add(1)
		return failEnvelope(p.src, p.tag, simtime.Max(p.postTime, q.at).Add(m.world.health.Deadline), m.world.revokeErr())
	}
	if src, f, ok := m.failedFor(p.src); ok {
		m.mu.Unlock()
		t := simtime.Max(p.postTime, f.onset).Add(m.world.health.Deadline)
		m.world.watchdogWakeups.Add(1)
		return failEnvelope(src, p.tag, t, f.err)
	}
	m.posted = append(m.posted, p)
	m.mu.Unlock()
	return nil
}

// quitFor looks up a quit record covering a posted receive: its source
// abandoned the attempt the receive's tag belongs to. At most one record
// per (source, epoch) can exist, so the scan's answer is order-free.
// Called with m.mu held.
//
//simlint:lockheld callers lock m.mu before the scan
func (m *mailbox) quitFor(postSrc, tag int) (attemptQuit, bool) {
	for _, q := range m.quits {
		if q.src == postSrc && quitCovers(q, tag) {
			return q, true
		}
	}
	return attemptQuit{}, false
}

// failedFor looks up an announced failure matching a posted source: the
// exact rank, or — for AnySource, which cannot rule a dead sender out —
// the lowest announced rank, so the choice is deterministic. Called with
// m.mu held.
//
//simlint:lockheld callers lock m.mu before the scan
func (m *mailbox) failedFor(postSrc int) (int, srcFail, bool) {
	if len(m.failedSrcs) == 0 {
		return 0, srcFail{}, false
	}
	if postSrc != AnySource {
		f, ok := m.failedSrcs[postSrc]
		return postSrc, f, ok
	}
	best := -1
	//simlint:orderok computes the minimum over keys, which is order-independent
	for id := range m.failedSrcs {
		if best < 0 || id < best {
			best = id
		}
	}
	return best, m.failedSrcs[best], true
}

// controlArrival computes the arrival of a small control packet (RTS/CTS)
// under the fault model: dropped packets are discovered by the sender's
// retransmission timeout and resent after exponential backoff on the
// virtual clock, up to the retry budget. With no injector this is exactly
// one ControlMessage. src/dst identify the *message* (sender rank,
// receiver rank) regardless of which direction the packet travels.
func (w *World) controlArrival(kind faults.Kind, src, dst int, seq uint64, fromNode, toNode int, ready simtime.Time) (simtime.Time, error) {
	limit := w.retry.limit()
	for attempt := 0; ; attempt++ {
		if !w.linkLost(fromNode, toNode, ready) && !w.inj.ShouldDrop(kind, src, dst, seq, attempt) {
			return w.fabric.ControlMessage(fromNode, toNode, ready), nil
		}
		if attempt >= limit {
			return ready, fmt.Errorf("mpi: %v %d->%d seq %d lost after %d attempts: %w",
				kind, src, dst, seq, attempt+1, ErrDeliveryFailed)
		}
		ready = ready.Add(w.retry.delay(attempt))
	}
}

// linkLost asks the fabric whether the inter-node link refuses an attempt
// at instant `ready`. A refused attempt is exactly a wire drop: the sender
// discovers it by timeout and retries after backoff, so the exponential
// schedule rides out a deterministic outage or flap window instead of
// deadlocking on it. Gated so fault-free worlds never make the call.
func (w *World) linkLost(fromNode, toNode int, ready simtime.Time) bool {
	return w.linkFaults && w.fabric.LinkLost(fromNode, toNode, ready)
}

// deliverPayload simulates the bounded-retry transfer of one wire payload:
// attempts may be dropped (discovered by the sender's timeout) or
// corrupted (detected by the receiver's checksum pass and NACKed); each
// retransmission backs off exponentially on the virtual clock. It returns
// the delivered bytes and the arrival of the final attempt, or a wrapped
// ErrDeliveryFailed once the retry budget is spent. With no injector this
// is exactly one fabric Transfer.
//
//simlint:nocharge the verification pass is costed on the arrival timestamp (ThroughputTime below), not the rank clock
func (w *World) deliverPayload(kind faults.Kind, src, dst int, seq uint64, srcNode, dstNode int, ready simtime.Time, payload []byte, crc uint32) ([]byte, simtime.Time, error) {
	limit := w.retry.limit()
	for attempt := 0; ; attempt++ {
		if w.linkLost(srcNode, dstNode, ready) || w.inj.ShouldDrop(kind, src, dst, seq, attempt) {
			if attempt >= limit {
				return nil, ready, fmt.Errorf("mpi: %v %d->%d seq %d lost after %d attempts: %w",
					kind, src, dst, seq, attempt+1, ErrDeliveryFailed)
			}
			ready = ready.Add(w.retry.delay(attempt))
			continue
		}
		wire, corrupted := w.inj.Corrupt(payload, src, dst, seq, attempt)
		arrival := w.fabric.Transfer(srcNode, dstNode, ready, len(wire))
		if !corrupted || core.Checksum(wire) == crc {
			// Intact — or an undetectable checksum collision, which is
			// exactly how a real CRC fails; the garbage then surfaces (or
			// not) from the decoder, never as a hang.
			return wire, arrival, nil
		}
		// The receiver's verification pass detects the corruption and
		// NACKs; the sender retransmits after backoff.
		verified := arrival.Add(simtime.ThroughputTime(len(wire), w.cluster.GPU.MemBWGBps*8))
		if attempt >= limit {
			return nil, verified, fmt.Errorf("mpi: %v %d->%d seq %d corrupted after %d attempts: %w",
				kind, src, dst, seq, attempt+1, ErrDeliveryFailed)
		}
		nack := w.fabric.ControlMessage(dstNode, srcNode, verified)
		ready = simtime.Max(ready, nack.Add(w.retry.delay(attempt)))
	}
}

// deliverData is deliverPayload for the rendezvous data stage, where the
// payload travels with a full compression header. On top of the wire
// fault model it injects codec-stage corruption (compressed payloads
// only) and drives the sender's per-peer circuit breaker: every corrupted
// compressed attempt records a failure, every delivered one a success,
// and when the breaker opens mid-retry the remaining attempts switch to
// the uncompressed wire form via fb — so even the message whose failures
// tripped the breaker completes within its retry budget. The possibly
// swapped header is returned for the receiver to decode with.
//
//simlint:nocharge the verification pass is costed on the arrival timestamp (ThroughputTime below), not the rank clock
func (w *World) deliverData(src, dst int, seq uint64, srcNode, dstNode int, ready simtime.Time, payload []byte, hdr core.Header, fb wireFallback) ([]byte, core.Header, simtime.Time, error) {
	eng := w.ranks[src].Engine
	limit := w.retry.limit()
	for attempt := 0; ; attempt++ {
		if w.linkLost(srcNode, dstNode, ready) || w.inj.ShouldDrop(faults.KindData, src, dst, seq, attempt) {
			if attempt >= limit {
				return nil, hdr, ready, fmt.Errorf("mpi: %v %d->%d seq %d lost after %d attempts: %w",
					faults.KindData, src, dst, seq, attempt+1, ErrDeliveryFailed)
			}
			ready = ready.Add(w.retry.delay(attempt))
			continue
		}
		wire, corrupted := w.inj.Corrupt(payload, src, dst, seq, attempt)
		if !corrupted && hdr.Compressed {
			// The codec fault path only ever touches compressed payloads:
			// a flaky compression engine cannot corrupt bytes it never
			// processes, which is exactly why breaker fallback works.
			wire, corrupted = w.inj.CorruptCodec(wire, src, dst, seq, attempt, ready)
		}
		arrival := w.fabric.Transfer(srcNode, dstNode, ready, len(wire))
		if !corrupted || core.Checksum(wire) == hdr.Checksum {
			if hdr.Compressed {
				eng.BreakerSuccess(dst)
			}
			return wire, hdr, arrival, nil
		}
		// The receiver's verification pass detects the corruption and
		// NACKs; the sender retransmits after backoff.
		verified := arrival.Add(simtime.ThroughputTime(len(wire), w.cluster.GPU.MemBWGBps*8))
		if hdr.Compressed {
			eng.BreakerFailure(dst, verified)
		}
		if attempt >= limit {
			return nil, hdr, verified, fmt.Errorf("mpi: %v %d->%d seq %d corrupted after %d attempts: %w",
				faults.KindData, src, dst, seq, attempt+1, ErrDeliveryFailed)
		}
		nack := w.fabric.ControlMessage(dstNode, srcNode, verified)
		ready = simtime.Max(ready, nack.Add(w.retry.delay(attempt)))
		if fb != nil && hdr.Compressed && eng.BreakerOpen(dst, ready) {
			// The breaker just opened on this pair: degrade the in-flight
			// message to its uncompressed form for the remaining attempts.
			var cost simtime.Duration
			payload, hdr, cost = fb(ready)
			ready = ready.Add(cost)
			fb = nil
		}
	}
}

// completeMatch performs the rendezvous protocol's receiver-side steps
// (Figure 4, steps 4-5): record the match, stage the temporary device
// buffer for the compressed payload, send the CTS, and compute the data
// transfer over the fabric. Eager envelopes need no work.
func completeMatch(p *recvPost, env *envelope) {
	if env.eager {
		return
	}
	if env.pipelined {
		completePipelinedMatch(p, env)
		return
	}
	r := p.rank
	w := r.world
	// The receive proceeds once both the RTS has arrived and the receive
	// is posted (asynchronous progress-thread semantics).
	match := simtime.Max(p.postTime, env.rtsArrival)
	if env.deliveryErr != nil {
		// The RTS never made it; rtsArrival is the sender's give-up
		// instant and both sides observe the failure from there.
		env.matchTime = match
		env.dataArrival = match
		env.senderDone <- sendOutcome{t: match, err: env.deliveryErr}
		return
	}
	// Stage the receive buffer before clearing the sender to send.
	stageClk := simtime.NewClock(match)
	env.staged = r.Engine.StageRecv(stageClk, env.hdr)
	env.matchTime = stageClk.Now()
	srcNode := w.nodeOf(env.src)
	dstNode := w.nodeOf(r.id)
	cts, err := w.controlArrival(faults.KindCTS, env.src, r.id, env.seq, dstNode, srcNode, env.matchTime)
	if err != nil {
		env.deliveryErr = err
		env.dataArrival = cts
		env.senderDone <- sendOutcome{t: cts, err: err}
		return
	}
	// The RDMA transfer is posted by the sender's HCA when the CTS
	// arrives; the sender's CPU is not involved.
	ready := simtime.Max(env.sendPost, cts)
	wire, hdr, arrival, err := w.deliverData(env.src, r.id, env.seq,
		srcNode, dstNode, ready, env.payload, env.hdr, env.fb)
	if err != nil {
		env.deliveryErr = err
		env.dataArrival = arrival
		env.senderDone <- sendOutcome{t: arrival, err: err}
		return
	}
	env.payload = wire
	env.hdr = hdr
	env.dataArrival = arrival
	w.tracer.Add(fmt.Sprintf("net %d->%d", env.src, r.id), "transfer", ready, env.dataArrival)
	env.senderDone <- sendOutcome{t: env.dataArrival}
}

// Request is a handle for a nonblocking operation, completed by Wait.
type Request struct {
	rank *Rank
	done bool
	err  error
	// inf is this request's slot in the owning rank's inflight list plus
	// one (0 = untracked); see trackInflight.
	inf int

	// send side
	isSend bool
	env    *envelope

	// receive side
	buf   *gpusim.Buffer
	post  *recvPost
	early *envelope // match found at post time
	// typ, when non-nil, marks a typed receive (IrecvTyped): incoming
	// packed words scatter into the layout's positions in buf instead of
	// filling it contiguously.
	typ dtype.Type
	// raw receive (collective relay path)
	wantRaw bool
	raw     rawResult
}

// Send transmits buf to rank dst with the given tag, blocking until the
// local buffer is reusable (rendezvous: transfer drained).
func (r *Rank) Send(dst, tag int, buf *gpusim.Buffer) error {
	req, err := r.Isend(dst, tag, buf)
	if err != nil {
		return err
	}
	return r.Wait(req)
}

// Recv receives into buf from rank src (or AnySource) with the given tag
// (or AnyTag), blocking until the message content is available in buf.
func (r *Rank) Recv(src, tag int, buf *gpusim.Buffer) error {
	req, err := r.Irecv(src, tag, buf)
	if err != nil {
		return err
	}
	return r.Wait(req)
}

// Isend starts a nonblocking send. Compression (when eligible) happens
// now, on the caller's clock, exactly as in Figure 4 steps 1-3; the
// handshake and transfer proceed asynchronously and Wait observes their
// completion. User tags must be non-negative; the internal (negative) tag
// namespace is reserved for collectives.
func (r *Rank) Isend(dst, tag int, buf *gpusim.Buffer) (*Request, error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpi: user tags must be non-negative (got %d)", tag)
	}
	return r.isend(dst, tag, buf)
}

// isend is Isend without tag validation, shared with the collectives'
// internal tag namespace.
func (r *Rank) isend(dst, tag int, buf *gpusim.Buffer) (*Request, error) {
	if err := r.checkPeer(dst); err != nil {
		return nil, err
	}
	if err := r.checkHealth(); err != nil {
		return nil, err
	}
	w := r.world
	dstRank := w.ranks[dst]
	seq := r.nextSeq(dst)

	if buf.Len() < w.eagerLimit {
		// Eager protocol: one message carrying payload and checksum.
		payload := append([]byte(nil), buf.Data...)
		crc := r.Engine.ChecksumWire(r.Clock, payload)
		wire, arrival, err := w.deliverPayload(faults.KindEager, r.id, dst, seq,
			r.Node(), w.nodeOf(dst), r.Clock.Now(), payload, crc)
		env := &envelope{
			src: r.id, dst: dst, tag: tag, eager: true, seq: seq,
			payload: wire, crc: crc, arrival: arrival, deliveryErr: err,
		}
		// The sender's CPU returns as soon as the message is injected;
		// a delivery failure surfaces from Wait, as MPI semantics demand.
		r.Clock.Advance(simtime.FromMicroseconds(0.5))
		dstRank.box.deliver(env)
		return &Request{rank: r, isSend: true, done: true, err: err}, nil
	}

	if r.pipelineEligible(dst, buf.Len()) {
		req, perr := r.isendPipelined(dst, tag, buf, seq)
		if perr == nil {
			r.trackInflight(req)
		}
		return req, perr
	}

	// Rendezvous: compress (steps 1-3), then RTS with the piggybacked
	// header (step 4). The engine sees the destination link's bandwidth
	// so the dynamic-selection extension can gate per message. An open
	// codec circuit breaker for this destination overrides compression
	// entirely: the payload goes uncompressed with the Fallback bit set
	// on the RTS header (the degradation negotiation), skipping the
	// codec whose failures tripped the breaker.
	var payload []byte
	var hdr core.Header
	var fb wireFallback
	link := w.fabric.LinkFor(r.Node(), w.nodeOf(dst))
	eligible := r.Engine.ShouldCompress(buf)
	if eligible && !r.Engine.BreakerAllow(dst, r.Clock.Now()) {
		payload, hdr = r.Engine.Bypass(r.Clock, buf)
		hdr.Fallback = true
	} else {
		// The compress-once cache makes repeated sends of an unchanged
		// tracked buffer (fan-out roots, warm benchmark iterations) reuse
		// the first send's wire payload; untracked buffers take the
		// original path.
		payload, hdr = r.Engine.CompressForLinkCached(r.Clock, buf, link.BandwidthGBps)
		switch {
		case hdr.Compressed && r.Engine.BreakerEnabled():
			// Mid-message degradation hook: if the breaker opens while
			// this message retries, the transport regenerates it
			// uncompressed. The closure reads buf, which MPI semantics
			// keep frozen until Wait completes the send.
			eng, src := r.Engine, buf
			fb = func(at simtime.Time) ([]byte, core.Header, simtime.Duration) {
				clk := simtime.NewClock(at)
				p, h := eng.Bypass(clk, src)
				h.Fallback = true
				return p, h, clk.Now().Sub(at)
			}
		case eligible && !hdr.Compressed:
			// The breaker allowed this send — possibly consuming its
			// half-open probe — but the engine bypassed anyway (dynamic
			// gating, pool exhaustion), proving nothing about the codec;
			// rearm so the next send probes again.
			r.Engine.BreakerProbeAborted(dst)
		}
	}
	rtsArrival, rtsErr := w.controlArrival(faults.KindRTS, r.id, dst, seq,
		r.Node(), w.nodeOf(dst), r.Clock.Now())
	env := &envelope{
		src: r.id, dst: dst, tag: tag, seq: seq,
		payload:     payload,
		hdr:         hdr,
		rtsArrival:  rtsArrival,
		sendPost:    r.Clock.Now(),
		senderDone:  make(chan sendOutcome, 1),
		deliveryErr: rtsErr,
		fb:          fb,
	}
	req := &Request{rank: r, isSend: true, env: env}
	r.trackInflight(req)
	dstRank.box.deliver(env)
	return req, nil
}

// Irecv starts a nonblocking receive into buf. The tag must be
// non-negative or AnyTag.
func (r *Rank) Irecv(src, tag int, buf *gpusim.Buffer) (*Request, error) {
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("mpi: user tags must be non-negative or AnyTag (got %d)", tag)
	}
	return r.irecv(src, tag, buf)
}

// irecv is Irecv without tag validation, shared with the collectives'
// internal tag namespace.
func (r *Rank) irecv(src, tag int, buf *gpusim.Buffer) (*Request, error) {
	if src != AnySource {
		if err := r.checkPeer(src); err != nil {
			return nil, err
		}
	}
	if err := r.checkHealth(); err != nil {
		return nil, err
	}
	p := &recvPost{src: src, tag: tag, postTime: r.Clock.Now(), matched: make(chan *envelope, 1), rank: r}
	req := &Request{rank: r, buf: buf, post: p}
	r.trackInflight(req)
	req.early = r.box.post(p)
	r.Clock.Advance(simtime.FromMicroseconds(0.3))
	return req, nil
}

// send is the internal-tag blocking send.
func (r *Rank) send(dst, tag int, buf *gpusim.Buffer) error {
	req, err := r.isend(dst, tag, buf)
	if err != nil {
		return err
	}
	return r.Wait(req)
}

// recv is the internal-tag blocking receive.
func (r *Rank) recv(src, tag int, buf *gpusim.Buffer) error {
	req, err := r.irecv(src, tag, buf)
	if err != nil {
		return err
	}
	return r.Wait(req)
}

// sendrecv is the internal-tag simultaneous exchange.
func (r *Rank) sendrecv(dst, sendTag int, sendBuf *gpusim.Buffer, src, recvTag int, recvBuf *gpusim.Buffer) error {
	rreq, err := r.irecv(src, recvTag, recvBuf)
	if err != nil {
		return err
	}
	sreq, err := r.isend(dst, sendTag, sendBuf)
	if err != nil {
		return err
	}
	return r.Waitall(sreq, rreq)
}

// Wait blocks until the request completes, advancing the caller's clock to
// the completion instant and (for receives) decompressing into the user
// buffer. Exhausted retry budgets surface as wrapped ErrDeliveryFailed.
func (r *Rank) Wait(req *Request) error {
	if req == nil {
		return fmt.Errorf("mpi: Wait on nil request")
	}
	if req.done {
		return req.err
	}
	req.done = true
	r.untrackInflight(req)
	if req.isSend {
		// Local completion: the send buffer is reusable once the
		// transfer has drained (or the transport gave up).
		out := <-req.env.senderDone
		r.Clock.AdvanceTo(out.t)
		if req.env.pipelined {
			// Feed the degrade ladder in the sender's program order.
			r.notePipeOutcome(req.env.dst, out.retransmits, out.err != nil)
		}
		req.err = out.err
		r.det.noteOutcome(req.env.dst, r.Clock.Now(), req.err)
		return out.err
	}
	if req.wantRaw {
		req.err = r.waitRecvRaw(req)
	} else {
		req.err = r.waitRecv(req)
	}
	r.det.noteOutcome(req.post.src, r.Clock.Now(), req.err)
	return req.err
}

func (r *Rank) waitRecv(req *Request) error {
	env := req.early
	if env == nil {
		env = <-req.post.matched
	}
	if env.eager {
		r.Clock.AdvanceTo(env.arrival)
		r.Clock.Advance(simtime.FromMicroseconds(0.5)) // unpack
		if env.deliveryErr != nil {
			return env.deliveryErr
		}
		if len(env.payload) > r.recvCapacity(req) {
			return fmt.Errorf("mpi: message of %d bytes truncated into %d-byte buffer", len(env.payload), r.recvCapacity(req))
		}
		// End-to-end integrity: verify the eager payload before unpacking.
		if err := r.Engine.VerifyPayload(r.Clock, core.Header{Checksum: env.crc}, env.payload); err != nil {
			return fmt.Errorf("mpi: eager message from rank %d: %w", env.src, err)
		}
		if req.typ != nil {
			scatterPrefix(req.buf.Data, env.payload, req.typ)
		} else {
			copy(req.buf.Data, env.payload)
		}
		req.buf.MarkDirty()
		return nil
	}
	if env.pipelined {
		return r.waitRecvPipelined(req, env)
	}
	// Rendezvous: the payload lands in the staged device buffer once the
	// transfer completes (step 5), then the decompression kernel
	// restores it into the user buffer (steps 6-7).
	r.Clock.AdvanceTo(simtime.Max(env.matchTime, env.dataArrival))
	if env.deliveryErr != nil {
		r.Engine.ReleaseRecv(r.Clock, env.staged)
		return env.deliveryErr
	}
	if env.hdr.OrigBytes > r.recvCapacity(req) {
		r.Engine.ReleaseRecv(r.Clock, env.staged)
		return fmt.Errorf("mpi: message of %d bytes truncated into %d-byte buffer", env.hdr.OrigBytes, r.recvCapacity(req))
	}
	if env.hdr.Fallback {
		r.Engine.NoteFallbackRecv()
	}
	if env.staged != nil {
		copy(env.staged.Data, env.payload)
	}
	// End-to-end integrity: verify the wire payload against the header
	// checksum before handing it to the decoder.
	if err := r.Engine.VerifyPayload(r.Clock, env.hdr, env.payload); err != nil {
		r.Engine.ReleaseRecv(r.Clock, env.staged)
		return fmt.Errorf("mpi: message from rank %d: %w", env.src, err)
	}
	if err := r.decompressInto(req, env.hdr, env.payload); err != nil {
		r.Engine.ReleaseRecv(r.Clock, env.staged)
		return fmt.Errorf("mpi: message from rank %d: %w", env.src, err)
	}
	r.Engine.ReleaseRecv(r.Clock, env.staged)
	return nil
}

// recvCapacity is the number of packed bytes a receive can absorb: the
// layout's packed size for typed receives, the buffer length otherwise.
func (r *Rank) recvCapacity(req *Request) int {
	if req.typ != nil {
		return req.typ.Size()
	}
	return req.buf.Len()
}

// decompressInto routes a whole-message payload into the receive buffer:
// typed receives scatter through the layout during the decoder's
// write-back pass, plain receives fill the buffer contiguously.
func (r *Rank) decompressInto(req *Request, hdr core.Header, payload []byte) error {
	if req.typ != nil {
		return r.Engine.DecompressTyped(r.Clock, hdr, payload, req.buf, req.typ)
	}
	return r.Engine.Decompress(r.Clock, hdr, payload, req.buf)
}

// scatterPrefix places the leading len(src) packed bytes into the
// layout's positions in dst (eager typed receives; the payload may be
// shorter than the layout's full packed size, like a short contiguous
// receive).
func scatterPrefix(dst, src []byte, t dtype.Type) {
	p := 0
	for _, rg := range t.AppendRuns(nil) {
		n := rg[1]
		if p+n > len(src) {
			n = len(src) - p
		}
		if n <= 0 {
			return
		}
		copy(dst[rg[0]:rg[0]+n], src[p:p+n])
		p += n
	}
}

// Waitall completes all requests (in order).
func (r *Rank) Waitall(reqs ...*Request) error {
	var first error
	for _, req := range reqs {
		if err := r.Wait(req); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sendrecv performs a simultaneous send and receive (the classic exchange
// primitive collectives are built from).
func (r *Rank) Sendrecv(dst, sendTag int, sendBuf *gpusim.Buffer, src, recvTag int, recvBuf *gpusim.Buffer) error {
	rreq, err := r.Irecv(src, recvTag, recvBuf)
	if err != nil {
		return err
	}
	sreq, err := r.Isend(dst, sendTag, sendBuf)
	if err != nil {
		return err
	}
	return r.Waitall(sreq, rreq)
}

// --- raw payload plumbing for compression-aware collectives ---
//
// Collectives that relay data (Bcast trees, Allgather rings) would pay a
// full decompress + recompress at every hop if they used plain Send/Recv.
// The framework's header makes this unnecessary: a rank can forward the
// compressed payload it received, and every consumer decompresses exactly
// once. isendPayload and irecvRaw expose the rendezvous path at that
// level; they are internal to the collectives.

// isendPayload starts a rendezvous send of an already-prepared payload
// with its compression header (no engine work on this rank). The header's
// checksum travels with the payload, so integrity holds hop by hop across
// a relay chain.
func (r *Rank) isendPayload(dst, tag int, payload []byte, hdr core.Header) (*Request, error) {
	if err := r.checkPeer(dst); err != nil {
		return nil, err
	}
	if err := r.checkHealth(); err != nil {
		return nil, err
	}
	w := r.world
	seq := r.nextSeq(dst)
	r.Engine.NoteRelay(len(payload))
	r.Clock.Advance(simtime.FromMicroseconds(0.3))
	if r.pipelineEligible(dst, len(payload)) {
		// Large relayed payloads ride the chunk-granular reliability path:
		// segmented with per-chunk CRCs, selectively retransmitted, and
		// credit-windowed exactly like a pipelined compression stream.
		req, perr := r.isendPayloadChunked(dst, tag, payload, hdr, seq)
		if perr == nil {
			r.trackInflight(req)
		}
		return req, perr
	}
	rtsArrival, rtsErr := w.controlArrival(faults.KindRTS, r.id, dst, seq,
		r.Node(), w.nodeOf(dst), r.Clock.Now())
	env := &envelope{
		src: r.id, dst: dst, tag: tag, seq: seq,
		payload:     payload,
		hdr:         hdr,
		rtsArrival:  rtsArrival,
		sendPost:    r.Clock.Now(),
		senderDone:  make(chan sendOutcome, 1),
		deliveryErr: rtsErr,
	}
	req := &Request{rank: r, isSend: true, env: env}
	r.trackInflight(req)
	w.ranks[dst].box.deliver(env)
	return req, nil
}

// rawResult is what a raw receive yields: the wire payload, its header,
// and the staging buffer to release after decompression.
type rawResult struct {
	payload []byte
	hdr     core.Header
	staged  *gpusim.Buffer
}

// irecvRaw posts a receive whose Wait captures the raw payload instead of
// decompressing into a user buffer. The result appears in req.raw.
func (r *Rank) irecvRaw(src, tag int) (*Request, error) {
	if src != AnySource {
		if err := r.checkPeer(src); err != nil {
			return nil, err
		}
	}
	if err := r.checkHealth(); err != nil {
		return nil, err
	}
	p := &recvPost{src: src, tag: tag, postTime: r.Clock.Now(), matched: make(chan *envelope, 1), rank: r}
	req := &Request{rank: r, post: p, wantRaw: true}
	r.trackInflight(req)
	req.early = r.box.post(p)
	r.Clock.Advance(simtime.FromMicroseconds(0.3))
	return req, nil
}

// waitRecvRaw completes a raw receive: the clock advances to payload
// arrival and the payload is verified, but no decompression happens.
func (r *Rank) waitRecvRaw(req *Request) error {
	env := req.early
	if env == nil {
		env = <-req.post.matched
	}
	if env.eager {
		r.Clock.AdvanceTo(env.arrival)
		r.Clock.Advance(simtime.FromMicroseconds(0.5))
		if env.deliveryErr != nil {
			return env.deliveryErr
		}
		if err := r.Engine.VerifyPayload(r.Clock, core.Header{Checksum: env.crc}, env.payload); err != nil {
			return fmt.Errorf("mpi: eager message from rank %d: %w", env.src, err)
		}
		req.raw = rawResult{
			payload: env.payload,
			hdr:     core.Header{Algo: core.AlgoNone, OrigBytes: len(env.payload), CompBytes: len(env.payload), Checksum: env.crc},
		}
		return nil
	}
	if env.pipelined {
		return r.waitRecvRawChunked(req, env)
	}
	r.Clock.AdvanceTo(simtime.Max(env.matchTime, env.dataArrival))
	if env.deliveryErr != nil {
		r.Engine.ReleaseRecv(r.Clock, env.staged)
		return env.deliveryErr
	}
	if env.hdr.Fallback {
		r.Engine.NoteFallbackRecv()
	}
	if env.staged != nil {
		copy(env.staged.Data, env.payload)
	}
	// Verify before the payload is relayed onward: a relay chain then
	// detects corruption at the hop where it happened.
	if err := r.Engine.VerifyPayload(r.Clock, env.hdr, env.payload); err != nil {
		r.Engine.ReleaseRecv(r.Clock, env.staged)
		return fmt.Errorf("mpi: message from rank %d: %w", env.src, err)
	}
	req.raw = rawResult{payload: env.payload, hdr: env.hdr, staged: env.staged}
	r.noteRawStaged(env.staged)
	return nil
}

// noteRawStaged / dropRawStaged bracket the window where a completed raw
// receive's staging buffer is parked on the request: between Wait and
// consumeRaw an abort would otherwise leak the slot, so the reap
// (reapInflight) and the self-heal drain release whatever is still noted.
func (r *Rank) noteRawStaged(b *gpusim.Buffer) {
	if b != nil {
		r.rawStaged = append(r.rawStaged, b)
	}
}

func (r *Rank) dropRawStaged(b *gpusim.Buffer) {
	for i, x := range r.rawStaged {
		if x == b {
			r.rawStaged = append(r.rawStaged[:i], r.rawStaged[i+1:]...)
			return
		}
	}
}
