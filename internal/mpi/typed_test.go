package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/datasets"
	"mpicomp/internal/dtype"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
)

// typedP2PLayout builds a layout sized to exercise one protocol tier:
// eager (< 16 KB packed), rendezvous, or pipelined (>= 2 chunks).
func typedP2PLayout(packedWords int) (dtype.Type, int) {
	// A vector of 64-word blocks with a 96-word stride: strided enough to
	// differ from contiguous, coarse enough for word-run gathers.
	count := packedWords / 64
	ty := dtype.Vector{Count: count, BlockLen: 64, Stride: 96}
	return ty, (count-1)*96 + 64
}

// TestTypedSendRecvMatchesPacked is the end-to-end differential oracle
// over every protocol tier: a typed send must deliver exactly the bytes
// an explicit Pack + contiguous send delivers, into exactly the
// layout's positions, for eager, rendezvous, and pipelined messages.
func TestTypedSendRecvMatchesPacked(t *testing.T) {
	cases := []struct {
		name        string
		packedWords int
		cfg         core.Config
	}{
		{"eager", 1 << 10, core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}},
		{"rendezvous", 1 << 18, core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}},
		{"rendezvous-zfp", 1 << 18, core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoZFP, ZFPRate: 8}},
		{"rendezvous-off", 1 << 18, core.Config{}},
		{"pipelined", 1 << 18, core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, PipelineChunkBytes: 256 << 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ty, extentWords := typedP2PLayout(tc.packedWords)
			vals := datasets.Smooth(extentWords, 7, 1e-3)
			w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1, Engine: tc.cfg})
			var typedDst, packedDst []byte
			_, err := w.Run(func(r *Rank) error {
				if r.ID() == 0 {
					src := devBuf(r, vals)
					if err := r.SendTyped(1, 1, src, ty); err != nil {
						return err
					}
					// Reference message: explicitly packed, sent contiguously.
					packed := emptyDevBuf(r, ty.Size()/4)
					if err := dtype.Pack(packed.Data, src.Data, ty); err != nil {
						return err
					}
					return r.Send(1, 2, packed)
				}
				dst := emptyDevBuf(r, extentWords)
				if err := r.RecvTyped(0, 1, dst, ty); err != nil {
					return err
				}
				ref := emptyDevBuf(r, ty.Size()/4)
				if err := r.Recv(0, 2, ref); err != nil {
					return err
				}
				typedDst = make([]byte, ty.Size())
				if err := dtype.Pack(typedDst, dst.Data, ty); err != nil {
					return err
				}
				packedDst = ref.Data
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(typedDst, packedDst) {
				t.Fatalf("%s: typed transfer differs from pack-then-send", tc.name)
			}
		})
	}
}

// TestTypedSendWireBytesIdentical pins the acceptance gate at the wire
// level: the typed rendezvous send must put the same number of bytes on
// the wire (same compressed payload) as pack-then-send — compression
// stats on both sides must agree exactly.
func TestTypedSendWireBytesIdentical(t *testing.T) {
	ty, extentWords := typedP2PLayout(1 << 18)
	vals := datasets.Smooth(extentWords, 3, 1e-3)
	cfg := core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}

	wireBytes := func(typed bool) int64 {
		w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1, Engine: cfg})
		if _, err := w.Run(func(r *Rank) error {
			if r.ID() == 0 {
				src := devBuf(r, vals)
				if typed {
					return r.SendTyped(1, 1, src, ty)
				}
				packed := emptyDevBuf(r, ty.Size()/4)
				if err := dtype.Pack(packed.Data, src.Data, ty); err != nil {
					return err
				}
				return r.Send(1, 1, packed)
			}
			dst := emptyDevBuf(r, extentWords)
			if typed {
				return r.RecvTyped(0, 1, dst, ty)
			}
			return r.Recv(0, 1, dst.Slice(0, ty.Size()))
		}); err != nil {
			t.Fatal(err)
		}
		return w.Rank(0).Engine.BytesOut
	}

	typed, packed := wireBytes(true), wireBytes(false)
	if typed != packed || typed == 0 {
		t.Fatalf("typed send put %d bytes on the wire, pack-then-send %d", typed, packed)
	}
}

// TestTypedValidationAtBoundary: invalid layouts are rejected before any
// protocol state exists, wrapping dtype.ErrInvalid like the negative-tag
// errors wrap nothing but carry the same boundary discipline.
func TestTypedValidationAtBoundary(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1})
	if _, err := w.Run(func(r *Rank) error {
		if r.ID() != 0 {
			return nil
		}
		buf := emptyDevBuf(r, 256)
		bad := []dtype.Type{
			dtype.Vector{Count: 2, BlockLen: 1, Stride: -3},                                       // negative stride
			dtype.Vector{Count: 2, BlockLen: 0, Stride: 1},                                        // zero blocklen
			dtype.Contiguous{Words: 1 << 20},                                                      // exceeds buffer
			dtype.Subarray3D{Dims: [3]int{8, 8, 8}, Sub: [3]int{4, 4, 4}, Start: [3]int{6, 0, 0}}, // sub exceeds dims
		}
		for i, ty := range bad {
			if _, err := r.IsendTyped(1, 0, buf, ty); !errors.Is(err, dtype.ErrInvalid) {
				return fmt.Errorf("layout %d: Isend error %v does not wrap dtype.ErrInvalid", i, err)
			}
			if _, err := r.IrecvTyped(1, 0, buf, ty); !errors.Is(err, dtype.ErrInvalid) {
				return fmt.Errorf("layout %d: Irecv error %v does not wrap dtype.ErrInvalid", i, err)
			}
		}
		if _, err := r.IsendTyped(1, -5, buf, dtype.Contiguous{Words: 4}); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTypedHaloExchange drives SendrecvTyped with subarray faces on a
// 2-rank brick — the awpodc pattern in miniature.
func TestTypedHaloExchange(t *testing.T) {
	const nx, ny, nz = 36, 32, 32
	sendFace := dtype.Subarray3D{Dims: [3]int{nx, ny, nz}, Sub: [3]int{2, ny, nz}, Start: [3]int{2, 0, 0}}
	recvFace := dtype.Subarray3D{Dims: [3]int{nx, ny, nz}, Sub: [3]int{2, ny, nz}, Start: [3]int{0, 0, 0}}
	cfg := core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC}
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1, Engine: cfg})
	if _, err := w.Run(func(r *Rank) error {
		vals := datasets.Smooth(nx*ny*nz, uint64(r.ID()+1), 1e-3)
		grid := devBuf(r, vals)
		peer := 1 - r.ID()
		if err := r.SendrecvTyped(peer, 3, grid, sendFace, peer, 3, grid, recvFace); err != nil {
			return err
		}
		// The received ghost face must equal the peer's interior face.
		peerVals := datasets.Smooth(nx*ny*nz, uint64(peer+1), 1e-3)
		peerGrid := core.FloatsToBytes(nil, peerVals)
		want := make([]byte, sendFace.Size())
		if err := dtype.Pack(want, peerGrid, sendFace); err != nil {
			return err
		}
		got := make([]byte, recvFace.Size())
		if err := dtype.Pack(got, grid.Data, recvFace); err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("rank %d: ghost face does not match peer interior", r.ID())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallvCorrectness checks the vector all-to-all with ragged
// per-peer segment sizes on pow2 and non-pow2 worlds, compressed and
// not.
func TestAlltoallvCorrectness(t *testing.T) {
	for _, size := range []struct{ nodes, ppn int }{{4, 1}, {3, 2}} {
		for _, cfg := range []core.Config{
			{},
			{Mode: core.ModeOpt, Algorithm: core.AlgoMPC, Threshold: 1 << 10},
		} {
			w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: size.nodes, PPN: size.ppn, Engine: cfg})
			P := w.Size()
			// Segment i->j holds 4*(1024*(i+j+1)) bytes of smooth data
			// seeded by (i, j): ragged, and both ends can compute it.
			segWords := func(i, j int) int { return 1024 * (i + j + 1) }
			segData := func(i, j int) []byte {
				return core.FloatsToBytes(nil, datasets.Smooth(segWords(i, j), uint64(101+i*31+j), 1e-3))
			}
			if _, err := w.Run(func(r *Rank) error {
				sendCounts := make([]int, P)
				sendDispls := make([]int, P)
				recvCounts := make([]int, P)
				recvDispls := make([]int, P)
				stot, rtot := 0, 0
				for j := 0; j < P; j++ {
					sendDispls[j], recvDispls[j] = stot, rtot
					sendCounts[j] = 4 * segWords(r.ID(), j)
					recvCounts[j] = 4 * segWords(j, r.ID())
					stot += sendCounts[j]
					rtot += recvCounts[j]
				}
				sendBuf := &gpusim.Buffer{Data: make([]byte, stot), Loc: gpusim.Device, Dev: r.Dev}
				recvBuf := &gpusim.Buffer{Data: make([]byte, rtot), Loc: gpusim.Device, Dev: r.Dev}
				for j := 0; j < P; j++ {
					copy(sendBuf.Data[sendDispls[j]:], segData(r.ID(), j))
				}
				if err := r.Alltoallv(sendBuf, sendCounts, sendDispls, recvBuf, recvCounts, recvDispls); err != nil {
					return err
				}
				for j := 0; j < P; j++ {
					got := recvBuf.Data[recvDispls[j] : recvDispls[j]+recvCounts[j]]
					if !bytes.Equal(got, segData(j, r.ID())) {
						return fmt.Errorf("rank %d: segment from %d corrupted", r.ID(), j)
					}
				}
				return nil
			}); err != nil {
				t.Fatalf("world %dx%d cfg %+v: %v", size.nodes, size.ppn, cfg.Algorithm, err)
			}
		}
	}
}

// TestAlltoallvValidation: malformed count/displacement vectors fail
// fast on every rank, before any message moves.
func TestAlltoallvValidation(t *testing.T) {
	w := mustWorld(t, Options{Cluster: hw.Longhorn(), Nodes: 2, PPN: 1})
	if _, err := w.Run(func(r *Rank) error {
		buf := emptyDevBuf(r, 1024)
		good := []int{2048, 2048}
		goodD := []int{0, 2048}
		cases := []struct {
			name   string
			sc, sd []int
		}{
			{"short vectors", []int{2048}, []int{0}},
			{"negative count", []int{-4, 2048}, goodD},
			{"segment past end", good, []int{0, 4000}},
		}
		for _, tc := range cases {
			if err := r.Alltoallv(buf, tc.sc, tc.sd, buf, good, goodD); err == nil {
				return fmt.Errorf("%s accepted", tc.name)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
