// Package mpi is a GPU-aware MPI-style message-passing runtime over the
// simulated cluster: ranks are goroutines with logical clocks, point-to-
// point communication uses an eager protocol for small messages and the
// RTS/CTS rendezvous protocol for large ones, and the on-the-fly
// compression engine of package core hooks the rendezvous path exactly as
// the paper describes (header piggybacked on RTS, compressed payload
// transferred after CTS, decompression after the last byte arrives).
//
// Real bytes move between ranks; only time is simulated, so messages are
// bit-exact (lossless codecs) or within codec error bounds (ZFP) while
// latencies follow the calibrated hardware model.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mpicomp/internal/core"
	"mpicomp/internal/faults"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/netsim"
	"mpicomp/internal/simtime"
	"mpicomp/internal/trace"
)

// AnySource matches a message from any sender in Recv/Irecv.
const AnySource = -1

// AnyTag matches any tag in Recv/Irecv.
const AnyTag = -2

// internalTagBase namespaces tags used by collectives and barriers so they
// cannot collide with user tags (which must be >= 0).
const internalTagBase = -1 << 20

// DefaultEagerLimit is the rendezvous threshold: messages at or above this
// size use RTS/CTS, below it they are sent eagerly.
const DefaultEagerLimit = 16 << 10

// DefaultRetryLimit is the per-protocol-stage retransmission budget when
// RetryPolicy.Limit is zero: each RTS, CTS, data transfer, or eager
// message makes at most 1 + DefaultRetryLimit attempts.
const DefaultRetryLimit = 8

// DefaultRetryBackoff is the delay before the first retransmission when
// RetryPolicy.Backoff is zero. It doubles per attempt (exponential
// backoff on the virtual clock), capped at maxRetryBackoff.
const DefaultRetryBackoff = 20 * simtime.Microsecond

// maxRetryBackoff caps the exponential backoff so a deep retry chain
// cannot push the virtual timeline absurdly far out.
const maxRetryBackoff = 10 * simtime.Millisecond

// RetryPolicy bounds the transport's retransmission behavior under
// injected faults. The zero value means defaults.
type RetryPolicy struct {
	// Limit is the maximum retransmissions per protocol stage of one
	// message. Zero selects DefaultRetryLimit; any negative value
	// disables retries entirely (a single lost or corrupted attempt
	// surfaces ErrDeliveryFailed from Wait).
	Limit int
	// Backoff is the delay before the first retransmission, doubling
	// with each subsequent one. Zero selects DefaultRetryBackoff.
	Backoff simtime.Duration
	// ChunkLimit is the per-chunk retransmission budget of the pipelined
	// path: each chunk of a chunked transfer retries independently up to
	// this many times (selective retransmission — delivered chunks never
	// cross the wire again). Zero inherits the effective Limit; negative
	// disables chunk retries.
	ChunkLimit int
}

// limit returns the effective retransmission budget.
func (p RetryPolicy) limit() int {
	if p.Limit < 0 {
		return 0
	}
	if p.Limit == 0 {
		return DefaultRetryLimit
	}
	return p.Limit
}

// chunkLimit returns the effective per-chunk retransmission budget.
func (p RetryPolicy) chunkLimit() int {
	if p.ChunkLimit < 0 {
		return 0
	}
	if p.ChunkLimit == 0 {
		return p.limit()
	}
	return p.ChunkLimit
}

// delay returns the backoff before retransmission attempt+1 (attempt is
// the zero-based attempt that just failed). The doubling is clamped at
// maxRetryBackoff with an explicit wrap guard, so arbitrarily large
// attempt counts (or a huge configured Backoff) cannot overflow the
// virtual Duration into a negative delay.
func (p RetryPolicy) delay(attempt int) simtime.Duration {
	d := p.Backoff
	if d <= 0 {
		d = DefaultRetryBackoff
	}
	if d >= maxRetryBackoff {
		return maxRetryBackoff
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= maxRetryBackoff || d < 0 {
			return maxRetryBackoff
		}
	}
	return d
}

// Options configures a World.
type Options struct {
	// Cluster selects the hardware model (default: hw.Longhorn()).
	Cluster hw.Cluster
	// Nodes and PPN (processes per node) define the job layout;
	// world size = Nodes * PPN.
	Nodes int
	PPN   int
	// Engine is the compression framework configuration applied to
	// every rank.
	Engine core.Config
	// EagerLimit overrides the rendezvous threshold (0 = default).
	EagerLimit int
	// Streams is the number of CUDA streams per device (0 = 8, enough
	// for MPC-OPT's maximum partitioning).
	Streams int
	// Tracer, when non-nil, records every engine phase and network
	// transfer for timeline inspection (trace.WriteChromeTrace).
	Tracer *trace.Collector
	// Faults, when non-nil and enabled, injects deterministic wire
	// faults (drops, bit flips, degraded links) into the run; see
	// package faults. Nil or a zero config runs a perfect fabric.
	Faults *faults.Config
	// Retry bounds the transport's retransmission protocol. Only
	// consulted when faults are injected (a perfect fabric never
	// retries). The zero value selects the defaults.
	Retry RetryPolicy
	// Health configures the progress watchdog and collective failure
	// semantics (see HealthPolicy). The zero value selects the defaults;
	// it only matters when Faults draws crash/silence fates.
	Health HealthPolicy
	// Allreduce pins the AllreduceSum schedule for the whole world.
	// AllreduceAuto (the zero value) routes through Tuner when wired and
	// the historical reduce+broadcast otherwise.
	Allreduce AllreduceAlgo
	// Tuner, when non-nil, picks the AllreduceSum schedule per call
	// while Allreduce is AllreduceAuto (see CollTuner; internal/tune
	// implements it).
	Tuner CollTuner
}

// World is one simulated MPI job.
type World struct {
	cluster    hw.Cluster
	nodes, ppn int
	size       int
	eagerLimit int
	fabric     *netsim.Fabric
	ranks      []*Rank
	tracer     *trace.Collector
	inj        *faults.Injector
	retry      RetryPolicy
	allreduce  AllreduceAlgo
	tuner      CollTuner

	// Failure handling (see health.go). doomed/live are fixed at
	// initialization — fate assignment is deterministic per seed — so
	// every survivor observes the identical failed set.
	health   HealthPolicy
	doomed   []int
	live     []int
	everyone []int
	shrunk   atomic.Bool

	announceMu sync.Mutex
	announced  map[int]bool

	watchdogWakeups atomic.Int64
	cascadeQuiets   atomic.Int64

	// Self-healing state (see heal.go). healOn gates every hot-path check
	// — a world without SelfHeal never takes the revocation branches.
	// linkFaults gates the transport's per-attempt link queries the same
	// way. routeView is the fabric's static fault-avoiding node order
	// (nil = identity); revoked maps recovery epoch -> lowest revoked
	// collective-op index at that epoch.
	healOn     bool
	linkFaults bool
	routeView  []int
	revMu      sync.Mutex
	revoked    map[int]uint64

	reroutes          atomic.Int64
	shrinkCompletions atomic.Int64
	revokedOps        atomic.Int64
	resourcedChunks   atomic.Int64
	recoveryTime      atomic.Int64
}

// isDoomed reports whether rank id is fated to fail this run.
func (w *World) isDoomed(id int) bool {
	return w.ranks[id].fate != nil
}

// NewWorld builds the job: fabric, devices, per-rank engines (paying
// initialization-time costs such as ModeOpt's pool allocation).
func NewWorld(opt Options) (*World, error) {
	if opt.Cluster.Name == "" {
		opt.Cluster = hw.Longhorn()
	}
	if opt.Nodes < 1 || opt.PPN < 1 {
		return nil, fmt.Errorf("mpi: need at least 1 node and 1 ppn (got %d, %d)", opt.Nodes, opt.PPN)
	}
	if opt.PPN > opt.Cluster.GPUsPerNode {
		return nil, fmt.Errorf("mpi: ppn %d exceeds %s's %d GPUs/node", opt.PPN, opt.Cluster.Name, opt.Cluster.GPUsPerNode)
	}
	eager := opt.EagerLimit
	if eager == 0 {
		eager = DefaultEagerLimit
	}
	streams := opt.Streams
	if streams == 0 {
		streams = 8
	}
	w := &World{
		cluster:    opt.Cluster,
		nodes:      opt.Nodes,
		ppn:        opt.PPN,
		size:       opt.Nodes * opt.PPN,
		eagerLimit: eager,
		fabric:     netsim.NewFabric(opt.Cluster, opt.Nodes),
		tracer:     opt.Tracer,
		retry:      opt.Retry,
		health:     opt.Health.withDefaults(),
		allreduce:  opt.Allreduce,
		tuner:      opt.Tuner,
	}
	if opt.Faults != nil {
		w.inj = faults.New(*opt.Faults) // nil when the config is disabled
		w.fabric.SetFaults(w.inj)
	}
	for id := 0; id < w.size; id++ {
		dev := gpusim.NewDevice(opt.Cluster.GPU, streams)
		// Engine construction (including ModeOpt's pool allocation) is
		// MPI_Init-time work: it happens before the simulated timeline
		// starts, exactly as the paper moves it off the critical path.
		initClk := simtime.NewClock(0)
		eng := core.NewEngine(initClk, dev, opt.Engine)
		eng.Tracer = opt.Tracer
		eng.Track = fmt.Sprintf("rank %d", id)
		r := &Rank{
			id:      id,
			world:   w,
			Clock:   simtime.NewClock(0),
			Dev:     dev,
			Engine:  eng,
			box:     newMailbox(w),
			sendSeq: make([]uint64, w.size),
			pipe:    make([]pipePeer, w.size),
			pipeTx:  make([]pipeLane, w.size),
		}
		w.ranks = append(w.ranks, r)
	}
	w.everyone = make([]int, w.size)
	for i := range w.everyone {
		w.everyone[i] = i
	}
	// Draw process-failure fates once per rank (fate assignment IS the
	// injection; see faults.RankFate). Purely seed-driven, so doomed/live
	// are identical for any host scheduling or worker-pool size.
	if w.inj != nil {
		for id := 0; id < w.size; id++ {
			if onset, silent, failed := w.inj.RankFate(id); failed {
				w.ranks[id].fate = &rankFate{onset: onset, silent: silent}
				w.doomed = append(w.doomed, id)
			}
		}
		if len(w.doomed) > 0 {
			w.buildLive()
		}
		// Draw link fates once per node pair (the counted draw) and take
		// the fabric's static fault-avoiding node order. Both are pure
		// functions of the seed, so the routing view every recovery epoch
		// activates is identical across ranks and host schedules.
		if w.inj.Config().LinkFaults() {
			w.linkFaults = true
			for a := 0; a < w.nodes; a++ {
				for b := a + 1; b < w.nodes; b++ {
					w.inj.LinkFate(a, b)
				}
			}
			w.routeView = w.fabric.RouteAround()
		}
	}
	w.healOn = w.health.SelfHeal && w.inj != nil
	if w.health.Detector.Enabled() {
		for _, r := range w.ranks {
			r.det = newDetector(r, w.health.Detector)
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Nodes returns the node count.
func (w *World) Nodes() int { return w.nodes }

// PPN returns processes per node.
func (w *World) PPN() int { return w.ppn }

// Cluster returns the hardware model.
func (w *World) Cluster() hw.Cluster { return w.cluster }

// TopoClass classifies the world's node grouping for algorithm
// selection (see netsim.ClassifyTopo).
func (w *World) TopoClass() netsim.TopoClass { return w.fabric.TopoClass(w.ppn) }

// Fabric exposes the interconnect (for inspection in tests).
func (w *World) Fabric() *netsim.Fabric { return w.fabric }

// FaultStats snapshots the injected-fault counters (zero when fault
// injection is off).
func (w *World) FaultStats() faults.Stats { return w.inj.Stats() }

// FaultsEnabled reports whether this world injects faults.
func (w *World) FaultsEnabled() bool { return w.inj != nil }

// SelfHealing reports whether mid-collective recovery is armed (SelfHeal
// policy with an active fault injector).
func (w *World) SelfHealing() bool { return w.healOn }

// Fated reports whether rank id is fated to fail this run. Harnesses use
// it to tell a fated rank's own demise apart from a survivor's failure:
// under SelfHeal the survivors complete and only fated ranks error out.
func (w *World) Fated(id int) bool { return w.isDoomed(id) }

// Rank returns rank id's state (for post-run inspection).
func (w *World) Rank(id int) *Rank { return w.ranks[id] }

// nodeOf maps a rank to its node (block distribution, as mpirun does).
func (w *World) nodeOf(rank int) int { return rank / w.ppn }

// ResetClocks rewinds all clocks, stream timelines, and fabric state to
// zero, keeping engine pools warm — used between measurement repetitions.
func (w *World) ResetClocks() {
	for _, r := range w.ranks {
		*r.Clock = *simtime.NewClock(0)
		r.Dev.ResetStreams()
	}
	w.fabric.Reset()
}

// Run executes fn concurrently on every rank and waits for completion.
// It returns the final per-rank clock values (the job's simulated
// timeline) and the first error any rank produced.
func (w *World) Run(fn func(r *Rank) error) ([]simtime.Time, error) {
	times, errs := w.RunAll(fn)
	for _, err := range errs {
		if err != nil {
			return times, err
		}
	}
	return times, nil
}

// RunAll is Run exposing every rank's error — failure tests assert that
// all survivors observe the same failed set, not just the first.
//
// A rank returning an error (or panicking) quiesces: it will issue no
// further sends, so its mailbox is swept and peers blocked on it are
// woken with PeerError instead of hanging — the cascade that propagates
// a crash through a collective deterministically (see health.go). Ranks
// that return nil trigger no sweep, so healthy runs are untouched.
func (w *World) RunAll(fn func(r *Rank) error) ([]simtime.Time, []error) {
	var wg sync.WaitGroup
	errs := make([]error, w.size)
	for _, r := range w.ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r.id] = fmt.Errorf("mpi: rank %d panicked: %v", r.id, p)
					w.announceQuiet(r.id)
				}
			}()
			errs[r.id] = fn(r)
			if errs[r.id] != nil {
				w.announceQuiet(r.id)
			}
		}(r)
	}
	wg.Wait()
	w.reapInflight()
	times := make([]simtime.Time, w.size)
	for i, r := range w.ranks {
		times[i] = r.Clock.Now()
	}
	return times, errs
}

// reapInflight reclaims the staging buffers of requests abandoned by
// aborted collectives once every rank goroutine has joined: a receive that
// matched a rendezvous or pipelined envelope holds pool slots its Wait
// would have released. The pass is single-threaded and walks ranks and
// requests in order, resolving only channels that already settled, so it
// adds no blocking and no nondeterminism — each release lands at the
// owning rank's final clock.
func (w *World) reapInflight() {
	for _, r := range w.ranks {
		for _, req := range r.inflight {
			env := req.env
			if env == nil && req.early != nil {
				env = req.early
			}
			if env == nil && req.post != nil {
				select {
				case env = <-req.post.matched:
				default:
				}
			}
			if env == nil {
				continue
			}
			if req.isSend {
				continue // senders hold no staging
			}
			if env.pipelined {
				select {
				case <-env.done:
				default:
					continue // match never completed; nothing staged
				}
			}
			r.releasePipelineStaging(env)
		}
		r.inflight = nil
		// A raw receive completed by Wait parks its staging buffer until
		// consumeRaw hands it back; an abort between the two leaks it.
		for _, b := range r.rawStaged {
			r.Engine.ReleaseRecv(r.Clock, b)
		}
		r.rawStaged = nil
	}
}

// MaxTime returns the latest of the given instants (the job makespan).
func MaxTime(times []simtime.Time) simtime.Time {
	var m simtime.Time
	for _, t := range times {
		if t > m {
			m = t
		}
	}
	return m
}

// Rank is one MPI process: a logical clock, a GPU, a compression engine,
// and a mailbox.
type Rank struct {
	id    int
	world *World
	// Clock is the rank's logical time; every operation advances it.
	Clock *simtime.Clock
	// Dev is the rank's GPU.
	Dev *gpusim.GPUDevice
	// Engine is the rank's on-the-fly compression engine.
	Engine *core.Engine
	box    *mailbox
	// fate is this rank's precomputed process failure (nil for a healthy
	// rank — the common case, checked with one pointer test per call).
	fate *rankFate
	// sendSeq[dst] numbers this rank's messages to dst. The counter
	// advances in the rank goroutine's program order, so a message's
	// (src, dst, seq) identity — which the fault injector hashes — is
	// deterministic regardless of host scheduling.
	sendSeq []uint64
	// pipe[dst] tracks the chunk-stream health toward each peer for the
	// transport's degrade ladder (pipeline.go). It is read and written
	// only from this rank's own goroutine — at send eligibility checks
	// and at Wait — so the ladder's decisions follow program order and
	// stay deterministic.
	pipe []pipePeer
	// pipeTx[dst] orders pipelined match completions toward dst in this
	// rank's program order, keeping concurrent chunk timelines' fabric
	// reservations deterministic (see pipeLane in pipeline.go).
	pipeTx []pipeLane
	// Collective-operation context (heal.go). Collectives are called in
	// the same program order on every rank, so the per-rank op counter
	// stays in lockstep without communication; healEpoch advances only on
	// an agreed recovery verdict, keeping it in lockstep too. opDepth
	// makes nested collectives inherit the outermost operation's context.
	opDepth   int
	curOp     uint64
	nextOp    uint64
	healEpoch int
	// inflight tracks this rank's incomplete requests so an aborted
	// collective's staging buffers can be reclaimed — drained in place on
	// a self-heal retry, reaped after the join in abort mode. Touched only
	// by the owning goroutine (and by RunAll after the join). rawStaged
	// holds staging buffers of raw receives completed by Wait but not yet
	// handed back through consumeRaw.
	inflight  []*Request
	rawStaged []*gpusim.Buffer
	// det is the rank's failure detector (nil unless configured).
	det *detector
}

// trackInflight registers an incomplete request for abort reclamation.
// req.inf stores index+1 so the zero value means "untracked".
func (r *Rank) trackInflight(req *Request) {
	r.inflight = append(r.inflight, req)
	req.inf = len(r.inflight)
}

// untrackInflight drops a request that completed (swap-delete; order of
// the survivors follows program order of completion, which is
// deterministic).
func (r *Rank) untrackInflight(req *Request) {
	i := req.inf - 1
	if i < 0 || i >= len(r.inflight) || r.inflight[i] != req {
		return
	}
	last := len(r.inflight) - 1
	r.inflight[i] = r.inflight[last]
	r.inflight[i].inf = i + 1
	r.inflight = r.inflight[:last]
	req.inf = 0
}

// nextSeq allocates the next per-destination message sequence number.
func (r *Rank) nextSeq(dst int) uint64 {
	s := r.sendSeq[dst]
	r.sendSeq[dst]++
	return s
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.size }

// Node returns the node hosting this rank.
func (r *Rank) Node() int { return r.world.nodeOf(r.id) }

// World returns the enclosing world.
func (r *Rank) World() *World { return r.world }

func (r *Rank) checkPeer(peer int) error {
	if peer < 0 || peer >= r.world.size {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", peer, r.world.size)
	}
	return nil
}
