package mpi

import (
	"errors"

	"mpicomp/internal/simtime"
)

// detector is one rank's deterministic heartbeat-lease failure detector.
// There are no timers and no extra wire traffic: liveness evidence is the
// virtual completion instant of the operations the rank already runs
// (every completed receive or send outcome involving a peer is an implicit
// heartbeat, exactly the piggybacking DESIGN.md §14 describes), so every
// transition is a pure function of the communication plan.
//
//   - Evidence arriving later than the peer's lease allows raises a
//     suspicion. Fresh successful evidence retracts it — a false
//     suspicion, the bounded cost of link flap stretching delivery times.
//   - A failure outcome (watchdog envelope, delivery exhaustion) suspects
//     the peer; when the peer really is fated the suspicion confirms at
//     the detection instant, which the watchdog places Lease + Confirm
//     past the onset.
//
// The detector is advisory: it counts, it never announces. Announcement
// stays with the fated rank's own goroutine (health.go) — that invariant
// is what keeps whether a receive matches a real message or a failure
// envelope independent of host scheduling.
type detector struct {
	rank  *Rank
	lease simtime.Duration
	// lastOK[peer] is the freshest successful evidence instant; seen marks
	// peers with at least one observation (so the first contact cannot be
	// "late").
	lastOK []simtime.Time
	seen   []bool
	// suspected / confirmed latch per-peer detector state.
	suspected []bool
	confirmed []bool

	suspects      int64
	falseSuspects int64
	confirms      int64
}

func newDetector(r *Rank, p DetectorPolicy) *detector {
	n := r.world.size
	return &detector{
		rank:      r,
		lease:     p.Lease,
		lastOK:    make([]simtime.Time, n),
		seen:      make([]bool, n),
		suspected: make([]bool, n),
		confirmed: make([]bool, n),
	}
}

// noteOutcome feeds one completed operation involving peer at virtual
// instant t. Called only from the owning rank's goroutine, in program
// order.
func (d *detector) noteOutcome(peer int, t simtime.Time, err error) {
	if d == nil || peer < 0 || peer >= len(d.lastOK) || peer == d.rank.id {
		return
	}
	if err == nil {
		if d.seen[peer] && !d.confirmed[peer] && t > d.lastOK[peer].Add(d.lease) {
			// The lease expired before this evidence arrived: a real
			// detector would have suspected the peer and retracted now.
			d.suspects++
			d.falseSuspects++
		}
		if d.suspected[peer] && !d.confirmed[peer] {
			d.suspected[peer] = false
			d.falseSuspects++
		}
		d.seen[peer] = true
		if t > d.lastOK[peer] {
			d.lastOK[peer] = t
		}
		return
	}
	if !errors.Is(err, ErrPeerFailed) && !errors.Is(err, ErrDeliveryFailed) && !errors.Is(err, ErrCollRevoked) {
		return
	}
	if !d.suspected[peer] {
		d.suspected[peer] = true
		d.suspects++
	}
	if d.confirmed[peer] {
		return
	}
	// A watchdog envelope names a genuinely fated peer: the suspicion
	// confirms. Delivery exhaustion and revocation stay suspicions — the
	// peer may be fine behind a flapping link.
	if errors.Is(err, ErrPeerFailed) && d.rank.world.isDoomed(peer) {
		d.confirmed[peer] = true
		d.confirms++
	}
}

// suspecting reports whether any live suspicion is outstanding (heartbeat
// telemetry for the verdict round).
func (d *detector) suspecting() bool {
	if d == nil {
		return false
	}
	for p, s := range d.suspected {
		if s && !d.confirmed[p] {
			return true
		}
	}
	return false
}
