package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"mpicomp/internal/core"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/simtime"
)

// Collective tags live in their own namespace, built by collTag (heal.go)
// from the algorithm's base offset plus this rank's (recovery epoch,
// operation index) context. Ranks execute collectives in program order, so
// the context stays in lockstep without communication; a retried attempt
// after a mid-operation failure uses a fresh epoch, which is what keeps a
// revoked attempt's stale envelopes from ever matching the retry.

// collView is the dense rank space a collective runs over: the full world
// normally, or the surviving subset once the world has shrunk (ULFM's
// MPIX_Comm_shrink). Algorithms compute neighbors and tree edges in view
// coordinates [0, size) and translate to world ranks through real(); the
// identity view (live == nil) translates to the same world ranks — and
// therefore the same message pattern and timings — as the pre-shrink code.
type collView struct {
	size  int
	vrank int
	live  []int // nil: identity (the full world)
}

// real maps a view coordinate to its world rank.
func (v collView) real(vr int) int {
	if v.live == nil {
		return vr
	}
	return v.live[vr]
}

// vof maps a world rank to its view coordinate, -1 if excluded.
func (v collView) vof(world int) int {
	if v.live == nil {
		return world
	}
	for i, id := range v.live {
		if id == world {
			return i
		}
	}
	return -1
}

// collView computes this rank's collective view. Fault-free worlds (and
// worlds that have not shrunk) take the identity fast path; under an
// active shrink, fated ranks are excluded and get an immediate error
// (their quiesce cascades so survivors never wait on them). Once a
// self-heal recovery has advanced this rank's epoch, the view follows the
// fabric's fault-avoiding route order (heal.go), so a rebuilt ring walks
// healthy links.
func (r *Rank) collView() (collView, error) {
	if err := r.checkHealth(); err != nil {
		return collView{}, err
	}
	w := r.world
	if len(w.doomed) == 0 || !w.shrinkEnabled() {
		if w.healOn && r.healEpoch > 0 && w.routeView != nil {
			// Link-only recovery: every rank survives, but the ring order
			// reroutes around the failed links.
			v := collView{size: w.size, live: w.routeOrdered(w.everyone)}
			v.vrank = v.vof(r.id)
			return v, nil
		}
		return collView{size: w.size, vrank: r.id}, nil
	}
	live := w.live
	if w.healOn && r.healEpoch > 0 {
		live = w.routeOrdered(live)
	}
	v := collView{size: len(live), live: live}
	v.vrank = v.vof(r.id)
	if v.vrank < 0 {
		return collView{}, fmt.Errorf("mpi: rank %d is fated and excluded from the shrunk communicator: %w", r.id, ErrPeerFailed)
	}
	return v, nil
}

// Barrier synchronizes all ranks (dissemination algorithm, O(log P)
// rounds of small host messages).
func (r *Rank) Barrier() error {
	return r.healRun(r.barrier)
}

func (r *Rank) barrier() error {
	v, err := r.collView()
	if err != nil {
		return err
	}
	size := v.size
	if size == 1 {
		return nil
	}
	tag := r.collTag(baseBarrier)
	token := gpusim.NewHostBuffer(1)
	scratch := gpusim.NewHostBuffer(1)
	for k := 1; k < size; k <<= 1 {
		dst := v.real((v.vrank + k) % size)
		src := v.real((v.vrank - k + size) % size)
		if err := r.sendrecv(dst, tag, token, src, tag, scratch); err != nil {
			return fmt.Errorf("mpi: barrier: %w", err)
		}
	}
	return nil
}

// consumeRaw decompresses a relayed raw payload into dst and releases its
// staging buffer — the per-hop consume step shared by the
// compression-aware collectives. The engine fans the real decode work of
// each hop across the codec worker pool (MPC partitions / ZFP chunk rows
// run host-parallel), while the simulated kernel accounting stays on this
// rank's goroutine.
func (r *Rank) consumeRaw(raw rawResult, dst *gpusim.Buffer) error {
	err := r.Engine.Decompress(r.Clock, raw.hdr, raw.payload, dst)
	// Hand the staging slot back even when the decode fails — an aborting
	// collective must not leak pool credits.
	r.Engine.ReleaseRecv(r.Clock, raw.staged)
	r.dropRawStaged(raw.staged)
	return err
}

// Bcast broadcasts root's buf to every rank using a binomial tree — the
// algorithm osu_bcast exercises for large messages.
//
// The collective is compression-aware: the root compresses the message
// once, interior ranks forward the compressed payload (relaying it before
// decompressing their own copy), and every rank decompresses exactly once.
// This is the collective co-design the paper's framework enables — the
// header carried with each payload makes relayed messages self-describing.
// Relayed payloads at least twice the pipeline chunk size ride the
// chunk-granular reliability path (per-chunk CRC, selective retransmit,
// credit window) hop by hop, exactly like pipelined point-to-point sends.
func (r *Rank) Bcast(root int, buf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.bcast(root, buf) })
}

func (r *Rank) bcast(root int, buf *gpusim.Buffer) error {
	if err := r.checkPeer(root); err != nil {
		return err
	}
	v, err := r.collView()
	if err != nil {
		return err
	}
	vroot := v.vof(root)
	if vroot < 0 {
		return r.world.peerError(root)
	}
	size := v.size
	if size == 1 {
		return nil
	}
	vrank := (v.vrank - vroot + size) % size
	tag := r.collTag(baseBcast)

	var payload []byte
	var hdr core.Header
	var raw rawResult

	// Obtain the payload: the root compresses, everyone else receives
	// the raw compressed bytes from the parent.
	mask := 1
	if vrank == 0 {
		payload, hdr = r.Engine.CompressForLinkCached(r.Clock, buf, r.world.cluster.InterNode.BandwidthGBps)
		for mask < size {
			mask <<= 1
		}
	} else {
		for mask < size {
			if vrank&mask != 0 {
				parent := v.real(((vrank - mask) + vroot) % size)
				req, err := r.irecvRaw(parent, tag)
				if err != nil {
					return err
				}
				if err := r.Wait(req); err != nil {
					return fmt.Errorf("mpi: bcast recv: %w", err)
				}
				raw = req.raw
				payload, hdr = raw.payload, raw.hdr
				break
			}
			mask <<= 1
		}
	}

	// Relay to children first (decreasing mask order), then decompress
	// locally — the decompression kernel runs while the forwards drain.
	var sends []*Request
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < size {
			child := v.real((vrank + mask + vroot) % size)
			req, err := r.isendPayload(child, tag, payload, hdr)
			if err != nil {
				return fmt.Errorf("mpi: bcast send: %w", err)
			}
			sends = append(sends, req)
		}
	}
	if vrank != 0 {
		if err := r.consumeRaw(raw, buf); err != nil {
			return fmt.Errorf("mpi: bcast decompress: %w", err)
		}
	}
	return r.Waitall(sends...)
}

// Allgather gathers each rank's sendBuf into every rank's recvBuf
// (recvBuf holds world-size * len(sendBuf) bytes, rank i's block at
// offset i*len(sendBuf)) using the ring algorithm MVAPICH2 uses for
// large messages. Under an active shrink the ring runs over the
// surviving subset; block offsets stay world-rank indexed, so fated
// ranks' blocks are simply left untouched.
func (r *Rank) Allgather(sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.allgather(sendBuf, recvBuf) })
}

func (r *Rank) allgather(sendBuf, recvBuf *gpusim.Buffer) error {
	v, err := r.collView()
	if err != nil {
		return err
	}
	size := v.size
	blk := sendBuf.Len()
	if recvBuf.Len() != r.Size()*blk {
		return fmt.Errorf("mpi: allgather recv buffer %d bytes, want %d", recvBuf.Len(), r.Size()*blk)
	}
	// Own contribution (device-local copy).
	own := recvBuf.Slice(r.id*blk, blk)
	if sendBuf.Loc == gpusim.Device {
		r.Dev.MemcpyD2D(r.Clock, r.Dev.Stream(0), own.Data, sendBuf.Data)
		r.Dev.StreamSync(r.Clock, r.Dev.Stream(0))
	} else {
		copy(own.Data, sendBuf.Data)
	}
	own.MarkDirty()
	if size == 1 {
		return nil
	}
	right := v.real((v.vrank + 1) % size)
	left := v.real((v.vrank - 1 + size) % size)

	// Compression-aware ring: each rank compresses its own block once;
	// at every step it forwards the compressed payload received in the
	// previous step and decompresses it into place while the transfers
	// of the current step are in flight. The compression source is
	// sendBuf when possible — its bytes equal the just-copied own block,
	// and an unchanged tracked sendBuf hits the compress-once cache on
	// warm iterations, whereas the own block's epoch was just bumped.
	srcBlk := own
	if sendBuf.Loc == gpusim.Device {
		srcBlk = sendBuf
	}
	payload, hdr := r.Engine.CompressForLinkCached(r.Clock, srcBlk, r.world.cluster.InterNode.BandwidthGBps)
	type pending struct {
		raw rawResult
		dst *gpusim.Buffer
	}
	var todo *pending
	tag := r.collTag(baseAllgather)
	for step := 0; step < size-1; step++ {
		recvIdx := v.real((v.vrank - step - 1 + size) % size)
		rreq, err := r.irecvRaw(left, tag)
		if err != nil {
			return err
		}
		sreq, err := r.isendPayload(right, tag, payload, hdr)
		if err != nil {
			return fmt.Errorf("mpi: allgather step %d: %w", step, err)
		}
		// Decompress the previous step's block while this step's
		// transfers progress.
		if todo != nil {
			if err := r.consumeRaw(todo.raw, todo.dst); err != nil {
				return fmt.Errorf("mpi: allgather decompress: %w", err)
			}
		}
		if err := r.Waitall(sreq, rreq); err != nil {
			return fmt.Errorf("mpi: allgather step %d: %w", step, err)
		}
		todo = &pending{raw: rreq.raw, dst: recvBuf.Slice(recvIdx*blk, blk)}
		payload, hdr = rreq.raw.payload, rreq.raw.hdr
	}
	if todo != nil {
		if err := r.consumeRaw(todo.raw, todo.dst); err != nil {
			return fmt.Errorf("mpi: allgather decompress: %w", err)
		}
	}
	return nil
}

// Gather collects every rank's sendBuf into root's recvBuf (rank i's block
// at offset i*len(sendBuf)). recvBuf is ignored on non-root ranks.
//
// Gather keeps abort semantics under failures (its block layout is
// world-rank indexed, so there is no meaningful shrunk form): with a
// fated rank in the world, every survivor's call surfaces ErrPeerFailed
// within the watchdog deadline rather than hanging. Under a self-heal
// recovery the retry completes on the surviving group instead: fated
// ranks' blocks are skipped and left untouched.
func (r *Rank) Gather(root int, sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.gather(root, sendBuf, recvBuf) })
}

func (r *Rank) gather(root int, sendBuf, recvBuf *gpusim.Buffer) error {
	if err := r.checkPeer(root); err != nil {
		return err
	}
	if err := r.checkHealth(); err != nil {
		return err
	}
	w := r.world
	shr := w.healShrunk()
	if shr && w.isDoomed(root) {
		return w.peerError(root)
	}
	tag := r.collTag(baseGather)
	blk := sendBuf.Len()
	if r.id == root {
		if recvBuf.Len() != r.Size()*blk {
			return fmt.Errorf("mpi: gather recv buffer %d bytes, want %d", recvBuf.Len(), r.Size()*blk)
		}
		reqs := make([]*Request, 0, r.Size()-1)
		for src := 0; src < r.Size(); src++ {
			if shr && w.isDoomed(src) {
				continue
			}
			dst := recvBuf.Slice(src*blk, blk)
			if src == root {
				copy(dst.Data, sendBuf.Data)
				dst.MarkDirty()
				continue
			}
			req, err := r.irecv(src, tag, dst)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		return r.Waitall(reqs...)
	}
	return r.send(root, tag, sendBuf)
}

// Scatter distributes root's sendBuf (rank i's block at offset
// i*len(recvBuf)) into every rank's recvBuf. sendBuf is ignored on
// non-root ranks. Like Gather, Scatter keeps abort semantics under
// failures, and like Gather a self-heal retry completes on the surviving
// group, skipping fated destinations.
func (r *Rank) Scatter(root int, sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.scatter(root, sendBuf, recvBuf) })
}

func (r *Rank) scatter(root int, sendBuf, recvBuf *gpusim.Buffer) error {
	if err := r.checkPeer(root); err != nil {
		return err
	}
	if err := r.checkHealth(); err != nil {
		return err
	}
	w := r.world
	shr := w.healShrunk()
	if shr && w.isDoomed(root) {
		return w.peerError(root)
	}
	tag := r.collTag(baseScatter)
	blk := recvBuf.Len()
	if r.id == root {
		if sendBuf.Len() != r.Size()*blk {
			return fmt.Errorf("mpi: scatter send buffer %d bytes, want %d", sendBuf.Len(), r.Size()*blk)
		}
		reqs := make([]*Request, 0, r.Size()-1)
		for dst := 0; dst < r.Size(); dst++ {
			if shr && w.isDoomed(dst) {
				continue
			}
			src := sendBuf.Slice(dst*blk, blk)
			if dst == root {
				copy(recvBuf.Data, src.Data)
				recvBuf.MarkDirty()
				continue
			}
			req, err := r.isend(dst, tag, src)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		return r.Waitall(reqs...)
	}
	return r.recv(root, tag, recvBuf)
}

// ReduceSum computes the element-wise float32 sum of every rank's sendBuf
// into root's recvBuf (binomial tree). Buffers must hold float32 data.
func (r *Rank) ReduceSum(root int, sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.reduceSum(root, sendBuf, recvBuf) })
}

func (r *Rank) reduceSum(root int, sendBuf, recvBuf *gpusim.Buffer) error {
	if err := r.checkPeer(root); err != nil {
		return err
	}
	v, err := r.collView()
	if err != nil {
		return err
	}
	vroot := v.vof(root)
	if vroot < 0 {
		return r.world.peerError(root)
	}
	size := v.size
	vrank := (v.vrank - vroot + size) % size
	tag := r.collTag(baseReduce)
	// Leaf ranks (odd view rank) forward their contribution unmodified:
	// sending sendBuf itself instead of a scratch copy lets a tracked,
	// unchanged buffer reuse its cached compressed form across calls.
	if size > 1 && vrank&1 == 1 {
		parent := v.real(((vrank &^ 1) + vroot) % size)
		return r.send(parent, tag, sendBuf)
	}
	// Accumulator starts as a copy of the local contribution.
	acc := append([]byte(nil), sendBuf.Data...)
	tmp := &gpusim.Buffer{Data: make([]byte, len(acc)), Loc: sendBuf.Loc, Dev: sendBuf.Dev}
	accBuf := &gpusim.Buffer{Data: acc, Loc: sendBuf.Loc, Dev: sendBuf.Dev}

	for mask := 1; mask < size; mask <<= 1 {
		if vrank&mask != 0 {
			parent := v.real(((vrank &^ mask) + vroot) % size)
			return r.send(parent, tag, accBuf)
		}
		if vrank+mask < size {
			child := v.real((vrank + mask + vroot) % size)
			if err := r.recv(child, tag, tmp); err != nil {
				return fmt.Errorf("mpi: reduce recv: %w", err)
			}
			sumFloat32(r, accBuf, tmp.Data)
		}
	}
	if r.id == root {
		if recvBuf.Len() != len(acc) {
			return fmt.Errorf("mpi: reduce recv buffer %d bytes, want %d", recvBuf.Len(), len(acc))
		}
		copy(recvBuf.Data, acc)
		recvBuf.MarkDirty()
	}
	return nil
}

// AllreduceSum computes the element-wise float32 sum into every rank's
// recvBuf. The schedule is the world's pinned algorithm
// (Options.Allreduce) when one is set; with AllreduceAuto it routes
// through the wired tuner (Options.Tuner) and, absent one, runs the
// historical reduce+broadcast (reduce to the first rank + broadcast —
// the paper leaves compressed Allreduce as future work; this gives it
// the compressed p2p edges). Under an active shrink the reduce roots at
// the lowest surviving rank. Tuner-dispatched calls also report their
// measured virtual-clock latency back, and feed the first-touch
// compressibility probe when the tuner asks for one.
func (r *Rank) AllreduceSum(sendBuf, recvBuf *gpusim.Buffer) error {
	algo := r.world.allreduce
	var (
		t     CollTuner
		p     TunePoint
		start simtime.Time
	)
	if algo == AllreduceAuto {
		if t = r.world.tuner; t == nil {
			algo = AllreduceReduceBcast
		} else {
			w := r.world
			p = TunePoint{Bytes: sendBuf.Len(), Ranks: w.size, Nodes: w.nodes, PPN: w.ppn, Op: r.nextOp}
			if t.NeedProbe(p) {
				t.ObserveProbeSample(p, probeSample(sendBuf))
			}
			algo = t.PickAllreduce(p)
			start = r.Clock.Now()
		}
	}
	err := r.healRun(func() error { return r.runAllreduce(algo, sendBuf, recvBuf) })
	if err == nil && t != nil {
		t.ObserveAllreduce(p, algo, r.Clock.Now().Sub(start))
	}
	return err
}

func (r *Rank) allreduceSum(sendBuf, recvBuf *gpusim.Buffer) error {
	root := 0
	if w := r.world; w.shrinkEnabled() && len(w.live) > 0 {
		root = w.live[0]
	}
	if err := r.reduceSum(root, sendBuf, recvBuf); err != nil {
		return err
	}
	return r.bcast(root, recvBuf)
}

// Alltoall exchanges blocks between all pairs: rank i's j-th send block
// lands in rank j's i-th receive block. Pairwise-exchange algorithm.
// Alltoall keeps abort semantics under failures (world-indexed blocks);
// a self-heal retry completes on the surviving group, skipping exchanges
// with fated peers and leaving their blocks untouched.
func (r *Rank) Alltoall(sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.alltoall(sendBuf, recvBuf) })
}

func (r *Rank) alltoall(sendBuf, recvBuf *gpusim.Buffer) error {
	if err := r.checkHealth(); err != nil {
		return err
	}
	w := r.world
	shr := w.healShrunk()
	size := r.Size()
	if sendBuf.Len()%size != 0 || recvBuf.Len() != sendBuf.Len() {
		return fmt.Errorf("mpi: alltoall buffers must be equal and divisible by %d ranks", size)
	}
	tag := r.collTag(baseAlltoall)
	blk := sendBuf.Len() / size
	// Local block.
	copy(recvBuf.Slice(r.id*blk, blk).Data, sendBuf.Slice(r.id*blk, blk).Data)
	recvBuf.MarkDirty()
	pow2 := size&(size-1) == 0
	for step := 1; step < size; step++ {
		if pow2 {
			// XOR pairing: both sides of each pair exchange directly.
			peer := r.id ^ step
			if shr && w.isDoomed(peer) {
				continue
			}
			sb := sendBuf.Slice(peer*blk, blk)
			rb := recvBuf.Slice(peer*blk, blk)
			if err := r.sendrecv(peer, tag, sb, peer, tag, rb); err != nil {
				return fmt.Errorf("mpi: alltoall step %d: %w", step, err)
			}
			continue
		}
		// General ring: send to rank+step, receive from rank-step. Post
		// and wait orders match sendrecv's (receive posted first, send
		// waited first) so the skip-free path's timeline is unchanged.
		dst := (r.id + step) % size
		src := (r.id - step + size) % size
		var sreq, rreq *Request
		if !(shr && w.isDoomed(src)) {
			req, err := r.irecv(src, tag, recvBuf.Slice(src*blk, blk))
			if err != nil {
				return fmt.Errorf("mpi: alltoall step %d: %w", step, err)
			}
			rreq = req
		}
		if !(shr && w.isDoomed(dst)) {
			req, err := r.isend(dst, tag, sendBuf.Slice(dst*blk, blk))
			if err != nil {
				return fmt.Errorf("mpi: alltoall step %d: %w", step, err)
			}
			sreq = req
		}
		reqs := make([]*Request, 0, 2)
		for _, req := range []*Request{sreq, rreq} {
			if req != nil {
				reqs = append(reqs, req)
			}
		}
		if err := r.Waitall(reqs...); err != nil {
			return fmt.Errorf("mpi: alltoall step %d: %w", step, err)
		}
	}
	return nil
}

// sendBlocking is a blocking send on the collectives' internal tag
// namespace: it returns only once every fabric booking of the transfer
// has been placed (the wave discipline in Alltoallv depends on that).
func (r *Rank) sendBlocking(dst int, buf *gpusim.Buffer) error {
	req, err := r.isend(dst, r.collTag(baseAlltoallv), buf)
	if err != nil {
		return err
	}
	return r.Wait(req)
}

// checkAlltoallv validates one side's count/displacement vectors against
// its buffer: world-size length, non-negative entries, every segment
// within the buffer.
func checkAlltoallv(side string, buf *gpusim.Buffer, counts, displs []int, size int) error {
	if len(counts) != size || len(displs) != size {
		return fmt.Errorf("mpi: alltoallv %s vectors must have %d entries (got %d counts, %d displacements)",
			side, size, len(counts), len(displs))
	}
	for i := 0; i < size; i++ {
		if counts[i] < 0 || displs[i] < 0 {
			return fmt.Errorf("mpi: alltoallv %s segment %d is negative (count %d, displacement %d)",
				side, i, counts[i], displs[i])
		}
		if displs[i] > buf.Len()-counts[i] {
			return fmt.Errorf("mpi: alltoallv %s segment %d [%d, %d) exceeds %d-byte buffer",
				side, i, displs[i], displs[i]+counts[i], buf.Len())
		}
	}
	return nil
}

// Alltoallv is the vector all-to-all: rank i sends sendCounts[j] bytes
// at sendDispls[j] of sendBuf to each rank j, receiving recvCounts[j]
// bytes at recvDispls[j] of recvBuf from it (counts and displacements
// in bytes). Pairwise-exchange schedule, the same as Alltoall's; every
// per-destination segment rides the compression-enabled point-to-point
// path, so each peer's segment is compressed independently — the
// TEMPI-style compressed Alltoallv. Like the other world-indexed
// collectives, it keeps abort semantics under failures.
//
// Unlike the symmetric collectives, alltoallv's ragged segments make
// adapter contention order-sensitive: two co-located ranks booking
// different-sized transfers on their node's shared egress calendar
// would serialize in host-scheduling order, not a deterministic one
// (equal-sized transfers mask this — any arrival order yields the
// same timeline — which is why Alltoall needs no special care). Each
// exchange step therefore runs in barrier-separated waves, one per
// node-local rank index: within a wave no two in-flight transfers
// share an egress, ingress, or intra-node calendar (pairs span
// distinct nodes; ring-schedule senders with the same local index
// target distinct nodes), and an intra-node pair serializes its two
// directions (lower rank sends first) because both would otherwise
// share the node's one GPU-link calendar. The barrier tokens are
// 1-byte messages whose transfer time truncates to zero, so they
// reserve no calendar time themselves. This models one active port
// per adapter — the cost of determinism is lost overlap between
// co-located senders, which the shared HCA would serialize anyway.
func (r *Rank) Alltoallv(sendBuf *gpusim.Buffer, sendCounts, sendDispls []int, recvBuf *gpusim.Buffer, recvCounts, recvDispls []int) error {
	return r.healRun(func() error {
		return r.alltoallv(sendBuf, sendCounts, sendDispls, recvBuf, recvCounts, recvDispls)
	})
}

func (r *Rank) alltoallv(sendBuf *gpusim.Buffer, sendCounts, sendDispls []int, recvBuf *gpusim.Buffer, recvCounts, recvDispls []int) error {
	if err := r.checkHealth(); err != nil {
		return err
	}
	w := r.world
	shr := w.healShrunk()
	size := r.Size()
	if err := checkAlltoallv("send", sendBuf, sendCounts, sendDispls, size); err != nil {
		return err
	}
	if err := checkAlltoallv("recv", recvBuf, recvCounts, recvDispls, size); err != nil {
		return err
	}
	if sendCounts[r.id] != recvCounts[r.id] {
		return fmt.Errorf("mpi: alltoallv self segment mismatch: sending %d bytes, receiving %d",
			sendCounts[r.id], recvCounts[r.id])
	}
	// Local segment (device-local copy).
	if n := sendCounts[r.id]; n > 0 {
		copy(recvBuf.Slice(recvDispls[r.id], n).Data, sendBuf.Slice(sendDispls[r.id], n).Data)
		recvBuf.MarkDirty()
	}
	if size == 1 {
		return nil
	}
	pow2 := size&(size-1) == 0
	ppn := r.world.ppn
	tag := r.collTag(baseAlltoallv)
	for step := 1; step < size; step++ {
		var dst, src int
		if pow2 {
			// XOR pairing: both sides of each pair exchange directly.
			dst = r.id ^ step
			src = dst
		} else {
			// General ring: send to rank+step, receive from rank-step.
			dst = (r.id + step) % size
			src = (r.id - step + size) % size
		}
		// On a self-heal retry, exchanges with fated peers are skipped and
		// their segments left untouched — but every live rank still runs
		// each step's full barrier-wave schedule, so the wave discipline
		// stays globally aligned.
		sendOK := !(shr && w.isDoomed(dst))
		recvOK := !(shr && w.isDoomed(src))
		sb := sendBuf.Slice(sendDispls[dst], sendCounts[dst])
		var rreq *Request
		if recvOK {
			rb := recvBuf.Slice(recvDispls[src], recvCounts[src])
			// Post the receive before any wave: a sender whose wave comes
			// earlier than ours must find it matched.
			req, err := r.irecv(src, tag, rb)
			if err != nil {
				return fmt.Errorf("mpi: alltoallv step %d: %w", step, err)
			}
			rreq = req
		}
		// Our active wave: XOR pairs act in the pair's wave (both sides
		// agree on the lower rank's local index); ring senders act in
		// their own local index's wave.
		wave := r.id % ppn
		if pow2 && dst < r.id {
			wave = dst % ppn
		}
		recvDone := false
		for wv := 0; wv < ppn; wv++ {
			if err := r.Barrier(); err != nil {
				return fmt.Errorf("mpi: alltoallv step %d: %w", step, err)
			}
			if wv != wave || !sendOK {
				continue
			}
			if pow2 && r.world.nodeOf(dst) == r.Node() {
				// Intra-node pair: both directions would share the
				// node's GPU-link calendar, so they go one at a time.
				if r.id < dst {
					if err := r.sendBlocking(dst, sb); err != nil {
						return fmt.Errorf("mpi: alltoallv step %d: %w", step, err)
					}
					if err := r.Wait(rreq); err != nil {
						return fmt.Errorf("mpi: alltoallv step %d: %w", step, err)
					}
				} else {
					if err := r.Wait(rreq); err != nil {
						return fmt.Errorf("mpi: alltoallv step %d: %w", step, err)
					}
					if err := r.sendBlocking(dst, sb); err != nil {
						return fmt.Errorf("mpi: alltoallv step %d: %w", step, err)
					}
				}
				recvDone = true
				continue
			}
			sreq, err := r.isend(dst, tag, sb)
			if err != nil {
				return fmt.Errorf("mpi: alltoallv step %d: %w", step, err)
			}
			if pow2 {
				// The peer acts in this same wave; wait the whole
				// exchange here so every booking lands inside it.
				if err := r.Waitall(sreq, rreq); err != nil {
					return fmt.Errorf("mpi: alltoallv step %d: %w", step, err)
				}
				recvDone = true
			} else if err := r.Wait(sreq); err != nil {
				// Ring: our source may act in a later wave — waiting
				// for the receive here would stall its barrier. Only
				// the send must complete inside the wave.
				return fmt.Errorf("mpi: alltoallv step %d: %w", step, err)
			}
		}
		if !recvDone && rreq != nil {
			if err := r.Wait(rreq); err != nil {
				return fmt.Errorf("mpi: alltoallv step %d: %w", step, err)
			}
		}
	}
	return nil
}

// sumFloat32 adds src into dst element-wise (float32), charging the GPU a
// memory-bound vector-add kernel (reads two floats, writes one per
// element). dst's content epoch is bumped, invalidating cached
// compressed forms.
func sumFloat32(r *Rank, dst *gpusim.Buffer, src []byte) {
	n := dst.Len() / 4
	r.Dev.LaunchKernel(r.Clock, r.Dev.Stream(0), gpusim.KernelSpec{
		Blocks:         r.Dev.Spec.SMs,
		Bytes:          12 * n,
		ThroughputGbps: r.Dev.Spec.MemBWGBps * 8, // GB/s -> Gb/s
	})
	r.Dev.StreamSync(r.Clock, r.Dev.Stream(0))
	for i := 0; i < n; i++ {
		a := math.Float32frombits(binary.LittleEndian.Uint32(dst.Data[4*i:]))
		b := math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
		binary.LittleEndian.PutUint32(dst.Data[4*i:], math.Float32bits(a+b))
	}
	dst.MarkDirty()
}

// BcastScatterAllgather is the bandwidth-optimal large-message broadcast
// MVAPICH2 switches to above its binomial-tree threshold: the message is
// scattered into per-rank blocks from the root, then ring-allgathered.
// Each stage rides the compression-enabled point-to-point path. Messages
// whose size is not divisible into aligned blocks fall back to the
// binomial tree.
func (r *Rank) BcastScatterAllgather(root int, buf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.bcastScatterAllgather(root, buf) })
}

func (r *Rank) bcastScatterAllgather(root int, buf *gpusim.Buffer) error {
	if err := r.checkPeer(root); err != nil {
		return err
	}
	// Scatter's block layout has no shrunk form; once the world has
	// shrunk around failures, fall back to the (view-aware) binomial tree.
	if w := r.world; w.shrinkEnabled() && len(w.doomed) > 0 {
		return r.bcast(root, buf)
	}
	size := r.Size()
	if size == 1 {
		return nil
	}
	if buf.Len()%(4*size) != 0 {
		return r.bcast(root, buf)
	}
	blk := buf.Len() / size
	mine := buf.Slice(r.id*blk, blk)
	var src *gpusim.Buffer
	if r.id == root {
		src = buf
	} else {
		src = buf.Slice(0, 0)
	}
	if err := r.scatter(root, src, mine); err != nil {
		return fmt.Errorf("mpi: bcast-sag scatter: %w", err)
	}
	if err := r.allgather(mine, buf); err != nil {
		return fmt.Errorf("mpi: bcast-sag allgather: %w", err)
	}
	return nil
}

// BcastHierarchical is MVAPICH2's two-level broadcast: the message first
// moves between node leaders over the network (binomial tree among the
// first rank of each node), then fans out inside each node over the fast
// intra-node link. With compression enabled, the inter-node stage moves
// compressed payloads while the NVLink/PCIe stage can stay uncompressed
// (pair it with Config.Dynamic for exactly that split).
//
// Under a shrunken or rerouted view the topology self-heals instead of
// degrading to the flat tree: each node re-elects its lowest surviving
// rank as leader, nodes with no survivor drop out of the inter-node
// tree, and the leader order follows the view (route order after a link
// recovery). On the identity view this reproduces the historical
// leader = first-rank-per-node schedule exactly.
func (r *Rank) BcastHierarchical(root int, buf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.bcastHierarchical(root, buf) })
}

func (r *Rank) bcastHierarchical(root int, buf *gpusim.Buffer) error {
	if err := r.checkPeer(root); err != nil {
		return err
	}
	w := r.world
	v, err := r.collView()
	if err != nil {
		return err
	}
	if v.vof(root) < 0 {
		return w.peerError(root)
	}
	ppn := w.ppn
	if ppn == 1 || w.nodes == 1 || v.size == 1 {
		return r.bcast(root, buf)
	}
	tag := r.collTag(baseBcast)

	// Leader (re-)election over the view: the first surviving rank of a
	// node in view order leads it (view order within a node is ascending
	// rank order, so this is the lowest live rank); leaderless nodes drop
	// out. liveNodes fixes the inter-node tree's node order.
	nodeIdx, leaderOf, liveNodes := w.electLeaders(v)
	rootNode := w.nodeOf(root)
	myNode := r.Node()
	leader := leaderOf[myNode]
	onRootNode := myNode == rootNode

	// Stage 0: move the message to the root node's leader if needed.
	if onRootNode && root != leader {
		if r.id == root {
			if err := r.send(leader, tag, buf); err != nil {
				return err
			}
		} else if r.id == leader {
			if err := r.recv(root, tag, buf); err != nil {
				return err
			}
		}
	}

	// Stage 1: binomial tree among the surviving node leaders.
	if r.id == leader {
		nodes := len(liveNodes)
		rootIdx := nodeIdx[rootNode]
		vnode := (nodeIdx[myNode] - rootIdx + nodes) % nodes
		mask := 1
		for mask < nodes {
			if vnode&mask != 0 {
				parentNode := liveNodes[((vnode-mask)+rootIdx)%nodes]
				if err := r.recv(leaderOf[parentNode], tag, buf); err != nil {
					return err
				}
				break
			}
			mask <<= 1
		}
		for mask >>= 1; mask > 0; mask >>= 1 {
			if vnode+mask < nodes {
				childNode := liveNodes[(vnode+mask+rootIdx)%nodes]
				if err := r.send(leaderOf[childNode], tag, buf); err != nil {
					return err
				}
			}
		}
	}

	// Stage 2: node-local fan-out from the leader to the node's surviving
	// ranks (view order within a node is ascending rank order).
	if r.id == leader {
		for vr := 0; vr < v.size; vr++ {
			peer := v.real(vr)
			if w.nodeOf(peer) != myNode || peer == leader || (onRootNode && peer == root) {
				continue
			}
			if err := r.send(peer, tag, buf); err != nil {
				return err
			}
		}
		return nil
	}
	if onRootNode && r.id == root {
		return nil
	}
	return r.recv(leader, tag, buf)
}

// ringBlocks partitions n bytes of float32 data into size contiguous
// 4-byte-aligned blocks, as even as possible: block i covers bytes
// [offs[i], offs[i+1]), with the first n/4 mod size blocks one word
// larger. All ranks compute the identical partition, so senders and
// receivers agree on every block's extent without negotiation.
func ringBlocks(n, size int) []int {
	words := n / 4
	base, rem := words/size, words%size
	offs := make([]int, size+1)
	for i := 0; i < size; i++ {
		w := base
		if i < rem {
			w++
		}
		offs[i+1] = offs[i] + 4*w
	}
	return offs
}

// ringChunk normalizes the pipeline chunk granularity for a ring step:
// word-aligned, and 0 (single chunk) when pipelining is off or the
// configured chunk cannot hold a word.
func ringChunk(chunkBytes int) int {
	chunkBytes &^= 3
	if chunkBytes < 4 {
		return 0
	}
	return chunkBytes
}

// ringChunkSpans splits a block of n bytes into pipeline chunk spans
// ([offset, length] pairs); one span when chunking is off.
func ringChunkSpans(n, chunk int) [][2]int {
	if chunk <= 0 || n <= chunk {
		return [][2]int{{0, n}}
	}
	var spans [][2]int
	for off := 0; off < n; off += chunk {
		c := chunk
		if off+c > n {
			c = n - off
		}
		spans = append(spans, [2]int{off, c})
	}
	return spans
}

// ringReduceStep runs one pipelined reduce-scatter step: the send block
// streams to the right neighbor chunk by chunk while the block arriving
// from the left is reduced into place chunk by chunk — chunk k's
// sumFloat32 overlaps chunk k+1's transfer and decompression, the
// overlap the whole-block sendrecv serializes away. Sender and receiver
// derive identical chunk boundaries from the world-uniform engine
// config, so the per-chunk messages pair up by FIFO matching. src is
// the buffer the send block is compressed from — recvBuf, except at
// step 0 where the caller may pass the untouched sendBuf (identical
// bytes, stable epoch) so warm iterations hit the compress-once cache.
func (r *Rank) ringReduceStep(right, left int, src, recvBuf *gpusim.Buffer, sOff, sN, dOff, dN int, scratch *gpusim.Buffer, chunk int) error {
	tag := r.collTag(baseAllreduce)
	rspans := ringChunkSpans(dN, chunk)
	sspans := ringChunkSpans(sN, chunk)
	rreqs := make([]*Request, len(rspans))
	for c, sp := range rspans {
		req, err := r.irecv(left, tag, scratch.Slice(sp[0], sp[1]))
		if err != nil {
			return err
		}
		rreqs[c] = req
	}
	sreqs := make([]*Request, len(sspans))
	for c, sp := range sspans {
		req, err := r.isend(right, tag, src.Slice(sOff+sp[0], sp[1]))
		if err != nil {
			return err
		}
		sreqs[c] = req
	}
	for c, sp := range rspans {
		if err := r.Wait(rreqs[c]); err != nil {
			return err
		}
		sumFloat32(r, recvBuf.Slice(dOff+sp[0], sp[1]), scratch.Data[sp[0]:sp[0]+sp[1]])
	}
	if len(rspans) > 1 {
		r.Engine.NotePipelinedChunks(len(rspans))
	}
	return r.Waitall(sreqs...)
}

// RingAllreduceSum is the bandwidth-optimal allreduce (ring
// reduce-scatter followed by ring allgather), the algorithm large-message
// reductions use in practice. Buffers must hold float32 data; only
// genuinely tiny messages (fewer words than ranks) or non-word-aligned
// sizes fall back to reduce+broadcast — uneven sizes get a ragged
// word-aligned partition (ringBlocks).
//
// Both phases are fast paths. The reduce-scatter streams each block in
// Config.PipelineChunkBytes-sized chunks, overlapping reduction with
// transfer (ringReduceStep). The allgather relays each fully reduced
// block's compressed payload verbatim around the ring — one compression
// at the block's origin, one decompression per rank, no per-hop
// recompression — exactly like Bcast's relay path. Reduction results
// are bit-identical to RingAllreduceSumBlocking for lossless configs:
// the per-element float additions happen in the same order.
//
// Both phases inherit the transport's chunk-granular reliability: every
// point-to-point step above twice the chunk size moves as independently
// CRC-protected, selectively retransmitted, credit-windowed chunks, so a
// lossy link slows one step instead of failing the collective.
func (r *Rank) RingAllreduceSum(sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.ringAllreduceSum(sendBuf, recvBuf) })
}

func (r *Rank) ringAllreduceSum(sendBuf, recvBuf *gpusim.Buffer) error {
	v, err := r.collView()
	if err != nil {
		return err
	}
	size := v.size
	if recvBuf.Len() != sendBuf.Len() {
		return fmt.Errorf("mpi: ring allreduce buffers differ: %d vs %d", sendBuf.Len(), recvBuf.Len())
	}
	if size == 1 {
		copy(recvBuf.Data, sendBuf.Data)
		recvBuf.MarkDirty()
		return nil
	}
	if sendBuf.Len()%4 != 0 || sendBuf.Len()/4 < size {
		return r.allreduceSum(sendBuf, recvBuf)
	}
	offs := ringBlocks(sendBuf.Len(), size)
	copy(recvBuf.Data, sendBuf.Data)
	recvBuf.MarkDirty()
	right := v.real((v.vrank + 1) % size)
	left := v.real((v.vrank - 1 + size) % size)
	maxBlk := 0
	for i := 0; i < size; i++ {
		if n := offs[i+1] - offs[i]; n > maxBlk {
			maxBlk = n
		}
	}
	scratch := &gpusim.Buffer{Data: make([]byte, maxBlk), Loc: recvBuf.Loc, Dev: recvBuf.Dev}
	chunk := ringChunk(r.Engine.Config().PipelineChunkBytes)

	// Phase 1: pipelined reduce-scatter. After step s, the block each
	// rank just received accumulates one more contribution; after P-1
	// steps view rank i holds the fully reduced block (i+1) mod P.
	// Block indices are view coordinates — all participants agree on
	// the partition.
	for step := 0; step < size-1; step++ {
		sendIdx := (v.vrank - step + size) % size
		recvIdx := (v.vrank - step - 1 + size) % size
		// Step 0 sends the rank's own block, which no reduction has
		// touched yet — its bytes in recvBuf still equal sendBuf's, so
		// compress from sendBuf: a persistent send buffer keeps a stable
		// epoch across iterations and step 0's compression becomes a
		// cache hit on every warm iteration.
		src := recvBuf
		if step == 0 && sendBuf.Loc == gpusim.Device {
			src = sendBuf
		}
		if err := r.ringReduceStep(right, left, src, recvBuf,
			offs[sendIdx], offs[sendIdx+1]-offs[sendIdx],
			offs[recvIdx], offs[recvIdx+1]-offs[recvIdx],
			scratch, chunk); err != nil {
			return fmt.Errorf("mpi: ring reduce-scatter step %d: %w", step, err)
		}
	}

	// Phase 2: relay allgather. Each rank compresses its fully reduced
	// block once and every subsequent hop forwards the received wire
	// payload verbatim, decompressing the previous step's block while
	// the current step's transfers are in flight (the Allgather/Bcast
	// relay pattern).
	ownIdx := (v.vrank + 1) % size
	own := recvBuf.Slice(offs[ownIdx], offs[ownIdx+1]-offs[ownIdx])
	payload, hdr := r.Engine.CompressForLinkCached(r.Clock, own, r.world.cluster.InterNode.BandwidthGBps)
	type pending struct {
		raw rawResult
		dst *gpusim.Buffer
	}
	var todo *pending
	tag := r.collTag(baseAllreduce)
	for step := 0; step < size-1; step++ {
		recvIdx := (v.vrank - step + size) % size
		rreq, err := r.irecvRaw(left, tag)
		if err != nil {
			return err
		}
		sreq, err := r.isendPayload(right, tag, payload, hdr)
		if err != nil {
			return fmt.Errorf("mpi: ring allgather step %d: %w", step, err)
		}
		if todo != nil {
			if err := r.consumeRaw(todo.raw, todo.dst); err != nil {
				return fmt.Errorf("mpi: ring allgather decompress: %w", err)
			}
		}
		if err := r.Waitall(sreq, rreq); err != nil {
			return fmt.Errorf("mpi: ring allgather step %d: %w", step, err)
		}
		todo = &pending{raw: rreq.raw, dst: recvBuf.Slice(offs[recvIdx], offs[recvIdx+1]-offs[recvIdx])}
		payload, hdr = rreq.raw.payload, rreq.raw.hdr
	}
	if todo != nil {
		if err := r.consumeRaw(todo.raw, todo.dst); err != nil {
			return fmt.Errorf("mpi: ring allgather decompress: %w", err)
		}
	}
	return nil
}

// RingAllreduceSumBlocking is the pre-fast-path ring allreduce: whole
// blocks move through blocking sendrecv exchanges, every hop of the
// allgather phase paying a fresh compress + decompress. It uses the
// same ragged partition and the same reduction order as
// RingAllreduceSum, so lossless configs produce bit-identical results —
// it exists as the measured baseline for the pipelined/relay fast path
// and as its differential-testing oracle.
func (r *Rank) RingAllreduceSumBlocking(sendBuf, recvBuf *gpusim.Buffer) error {
	return r.healRun(func() error { return r.ringAllreduceSumBlocking(sendBuf, recvBuf) })
}

func (r *Rank) ringAllreduceSumBlocking(sendBuf, recvBuf *gpusim.Buffer) error {
	v, err := r.collView()
	if err != nil {
		return err
	}
	size := v.size
	if recvBuf.Len() != sendBuf.Len() {
		return fmt.Errorf("mpi: ring allreduce buffers differ: %d vs %d", sendBuf.Len(), recvBuf.Len())
	}
	if size == 1 {
		copy(recvBuf.Data, sendBuf.Data)
		recvBuf.MarkDirty()
		return nil
	}
	if sendBuf.Len()%4 != 0 || sendBuf.Len()/4 < size {
		return r.allreduceSum(sendBuf, recvBuf)
	}
	offs := ringBlocks(sendBuf.Len(), size)
	copy(recvBuf.Data, sendBuf.Data)
	recvBuf.MarkDirty()
	right := v.real((v.vrank + 1) % size)
	left := v.real((v.vrank - 1 + size) % size)
	maxBlk := 0
	for i := 0; i < size; i++ {
		if n := offs[i+1] - offs[i]; n > maxBlk {
			maxBlk = n
		}
	}
	scratch := &gpusim.Buffer{Data: make([]byte, maxBlk), Loc: recvBuf.Loc, Dev: recvBuf.Dev}
	tag := r.collTag(baseAllreduce)

	// Phase 1: reduce-scatter with whole-block blocking exchanges.
	for step := 0; step < size-1; step++ {
		sendIdx := (v.vrank - step + size) % size
		recvIdx := (v.vrank - step - 1 + size) % size
		sb := recvBuf.Slice(offs[sendIdx], offs[sendIdx+1]-offs[sendIdx])
		dN := offs[recvIdx+1] - offs[recvIdx]
		sc := scratch.Slice(0, dN)
		if err := r.sendrecv(right, tag, sb, left, tag, sc); err != nil {
			return fmt.Errorf("mpi: ring reduce-scatter step %d: %w", step, err)
		}
		sumFloat32(r, recvBuf.Slice(offs[recvIdx], dN), sc.Data)
	}
	// Phase 2: allgather the reduced blocks around the ring,
	// recompressing at every hop.
	for step := 0; step < size-1; step++ {
		sendIdx := (v.vrank + 1 - step + size) % size
		recvIdx := (v.vrank - step + size) % size
		sb := recvBuf.Slice(offs[sendIdx], offs[sendIdx+1]-offs[sendIdx])
		rb := recvBuf.Slice(offs[recvIdx], offs[recvIdx+1]-offs[recvIdx])
		if err := r.sendrecv(right, tag, sb, left, tag, rb); err != nil {
			return fmt.Errorf("mpi: ring allgather step %d: %w", step, err)
		}
	}
	return nil
}
