package mpi

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"

	"mpicomp/internal/core"
	"mpicomp/internal/faults"
	"mpicomp/internal/gpusim"
	"mpicomp/internal/hw"
	"mpicomp/internal/simtime"
)

// Chunk-granular transport reliability (DESIGN.md §12): every chunk of a
// pipelined transfer carries its own CRC and retry budget, failed chunks
// are selectively retransmitted while the rest of the stream keeps
// flowing, a credit window bounds chunks in flight by staging capacity,
// and repeated loss walks the degrade ladder (retransmit -> shrink window
// -> per-peer whole-message fallback). These tests pin that contract.

// pipeTotals sums every rank's chunk-reliability counters.
func pipeTotals(w *World) core.PipelineStats {
	var ps core.PipelineStats
	for r := 0; r < w.Size(); r++ {
		ps.Add(w.Rank(r).Engine.PipeSnapshot())
	}
	return ps
}

// chunkExchange sends one pipelined message rank 0 -> rank 1 and verifies
// byte-identical delivery; returns the world for counter assertions.
func chunkExchange(t *testing.T, opt Options, words int) *World {
	t.Helper()
	w := mustWorld(t, opt)
	vals := make([]float32, words)
	for i := range vals {
		vals[i] = float32(i%8191) * 0.25
	}
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, devBuf(r, vals))
		}
		if r.ID() != 1 {
			return nil
		}
		buf := emptyDevBuf(r, words)
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		got := core.BytesToFloats(buf.Data)
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("word %d = %v want %v (chunked delivery must be byte-identical)", i, got[i], vals[i])
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("chunk exchange failed: %v", err)
	}
	return w
}

// TestChunkFaultMatrixP2P: each per-chunk fate — drop, corrupt, duplicate,
// reorder, and all four at once — against the pipelined point-to-point
// path. Delivery must stay byte-identical and each adversary must actually
// show up in the fault counters.
func TestChunkFaultMatrixP2P(t *testing.T) {
	cells := []struct {
		name  string
		fcfg  faults.Config
		fired func(faults.Stats, core.PipelineStats) bool
	}{
		{"drop", faults.Config{Seed: 5, ChunkDropRate: 0.08},
			func(st faults.Stats, ps core.PipelineStats) bool { return st.Drops > 0 && ps.Retransmits > 0 }},
		{"corrupt", faults.Config{Seed: 6, ChunkCorruptRate: 0.08},
			func(st faults.Stats, ps core.PipelineStats) bool { return st.Corruptions > 0 && ps.Retransmits > 0 }},
		{"duplicate", faults.Config{Seed: 7, ChunkDuplicateRate: 0.15},
			func(st faults.Stats, ps core.PipelineStats) bool { return st.Duplicates > 0 }},
		{"reorder", faults.Config{Seed: 8, ChunkReorderRate: 0.15},
			func(st faults.Stats, ps core.PipelineStats) bool { return st.Reorders > 0 }},
		{"all", faults.Config{Seed: 9, ChunkDropRate: 0.05, ChunkCorruptRate: 0.05,
			ChunkDuplicateRate: 0.1, ChunkReorderRate: 0.1},
			func(st faults.Stats, ps core.PipelineStats) bool {
				return st.Drops > 0 && st.Corruptions > 0 && st.Duplicates > 0 && st.Reorders > 0
			}},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			fcfg := cell.fcfg
			w := chunkExchange(t, Options{
				Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
				Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
					PipelineChunkBytes: 256 << 10},
				Faults: &fcfg,
			}, 2<<20) // 8 MB = 32 chunks
			st, ps := w.FaultStats(), pipeTotals(w)
			if ps.Chunks == 0 {
				t.Fatal("the message did not take the chunked path")
			}
			if !cell.fired(st, ps) {
				t.Fatalf("adversary never showed up: faults=%+v pipe=%+v", st, ps)
			}
		})
	}
}

// TestChunkFaultMatrixRelayRing: the same per-chunk adversaries against
// the chunked-relay path (binomial-tree bcast forwarding whole wire
// payloads) and the relay ring allreduce. Content must survive bit-exactly
// and the relayed segments must ride the chunk path.
func TestChunkFaultMatrixRelayRing(t *testing.T) {
	for _, cell := range []struct {
		name string
		fcfg faults.Config
	}{
		{"drop", faults.Config{Seed: 15, ChunkDropRate: 0.04}},
		{"corrupt", faults.Config{Seed: 16, ChunkCorruptRate: 0.04}},
		{"duplicate", faults.Config{Seed: 17, ChunkDuplicateRate: 0.1}},
		{"reorder", faults.Config{Seed: 18, ChunkReorderRate: 0.1}},
	} {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			fcfg := cell.fcfg
			// Mode off keeps the relayed wire payload at full size, so the
			// bcast relay hops move it as chunk segments.
			w := mustWorld(t, Options{
				Cluster: hw.Lassen(), Nodes: 2, PPN: 2,
				Engine: core.Config{Mode: core.ModeOff, PipelineChunkBytes: 256 << 10},
				Faults: &fcfg,
			})
			const words = 1 << 18 // 1 MB payload, 4 segments per hop
			want := make([]float32, words)
			for i := range want {
				want[i] = float32(i%4093) + 0.5
			}
			_, err := w.Run(func(r *Rank) error {
				buf := emptyDevBuf(r, words)
				if r.ID() == 0 {
					core.FloatsToBytes(buf.Data[:0], want)
				}
				if err := r.Bcast(0, buf); err != nil {
					return err
				}
				got := core.BytesToFloats(buf.Data)
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("rank %d: bcast word %d = %v want %v", r.ID(), i, got[i], want[i])
						break
					}
				}
				// The ring allreduce's relay phase rides the same path.
				out := emptyDevBuf(r, words)
				if err := r.RingAllreduceSum(buf, out); err != nil {
					return err
				}
				sum := core.BytesToFloats(out.Data)
				scale := float32(r.Size())
				for i := 0; i < words; i += 101 {
					if sum[i] != scale*want[i] {
						t.Errorf("rank %d: allreduce word %d = %v want %v", r.ID(), i, sum[i], scale*want[i])
						break
					}
				}
				return r.Barrier()
			})
			if err != nil {
				t.Fatalf("relay ring under %s failed: %v", cell.name, err)
			}
			if ps := pipeTotals(w); ps.RelayChunks == 0 {
				t.Fatalf("relay payloads skipped the chunked path: %+v", ps)
			}
		})
	}
}

// TestChunkRetransmitBytesBounded pins the selective-retransmission win:
// at 1% per-chunk loss (plus 0.5% corruption) the bytes that cross the
// wire twice must stay under 15% of the payload — the whole-message
// alternative would resend 100% per lost attempt.
func TestChunkRetransmitBytesBounded(t *testing.T) {
	const (
		words    = 4 << 20 // 16 MB per message
		messages = 4
	)
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOff, PipelineChunkBytes: 512 << 10},
		Faults: &faults.Config{Seed: 12, ChunkDropRate: 0.01, ChunkCorruptRate: 0.005},
	})
	vals := make([]float32, words)
	for i := range vals {
		vals[i] = float32(i % 65537)
	}
	_, err := w.Run(func(r *Rank) error {
		for m := 0; m < messages; m++ {
			if r.ID() == 0 {
				if err := r.Send(1, m, devBuf(r, vals)); err != nil {
					return err
				}
			} else {
				buf := emptyDevBuf(r, words)
				if err := r.Recv(0, m, buf); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := pipeTotals(w)
	if ps.Retransmits == 0 {
		t.Fatalf("1%% chunk loss never retransmitted: %+v", ps)
	}
	total := int64(messages) * int64(words) * 4
	if ps.RetransmitBytes >= total*15/100 {
		t.Fatalf("retransmitted %d of %d payload bytes (%.1f%%), want < 15%%",
			ps.RetransmitBytes, total, 100*float64(ps.RetransmitBytes)/float64(total))
	}
}

// TestCreditBackpressure: a one-credit window over a three-buffer pool
// lets the sender compress ahead while the receiver admits one chunk at a
// time, so the stream stalls on credits — never by overrunning the
// staging pool or flipping to the uncompressed whole-message path
// (PoolFallbacks stays zero while CreditStalls counts the backpressure).
// The window also clamps to pool capacity when left at its default.
func TestCreditBackpressure(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			PipelineChunkBytes: 1 << 20, PipelineCredits: 1,
			PoolBuffers: 3, PoolBufBytes: 4 << 20},
	})
	const words = 4 << 20 // 16 MB = 16 chunks through a 1-slot window
	vals := make([]float32, words)
	for i := range vals {
		vals[i] = float32(i%8191) * 0.25
	}
	_, err := w.Run(func(r *Rank) error {
		// The same tracked buffer twice: the second message's chunks come
		// out of the compress-once cache, ready the instant CTS lands, so
		// only the credit window paces them onto the wire.
		if r.ID() == 0 {
			src := devBuf(r, vals).Track()
			for m := 0; m < 2; m++ {
				if err := r.Send(1, m, src); err != nil {
					return err
				}
			}
			return nil
		}
		if r.ID() != 1 {
			return nil
		}
		for m := 0; m < 2; m++ {
			buf := emptyDevBuf(r, words)
			if err := r.Recv(0, m, buf); err != nil {
				return err
			}
			got := core.BytesToFloats(buf.Data)
			for i := range vals {
				if got[i] != vals[i] {
					t.Errorf("msg %d word %d = %v want %v", m, i, got[i], vals[i])
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := pipeTotals(w)
	if ps.CreditStalls == 0 {
		t.Fatalf("a cache-fed 16-chunk stream through a 1-slot window never stalled: %+v", ps)
	}
	for r := 0; r < w.Size(); r++ {
		if fb := w.Rank(r).Engine.PoolFallbacks; fb != 0 {
			t.Fatalf("rank %d fell back to the uncompressed path %d times; credits should backpressure instead", r, fb)
		}
	}
	// Default credits clamp to the staging pool's capacity.
	clamped := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			PipelineChunkBytes: 512 << 10, PoolBuffers: 2, PoolBufBytes: 2 << 20},
	})
	if got := clamped.Rank(1).Engine.Config().PipelineCredits; got != 2 {
		t.Fatalf("credit window = %d, want 2 (clamped to PoolBuffers)", got)
	}
}

// TestCreditsDisabledAndWindowShrink: negative credits disable gating
// entirely (no stalls even with a tiny pool), and under heavy per-chunk
// corruption the window halves (degrade ladder step 2).
func TestCreditsDisabledAndWindowShrink(t *testing.T) {
	w := chunkExchange(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			PipelineChunkBytes: 512 << 10, PipelineCredits: -1},
	}, 4<<20)
	if ps := pipeTotals(w); ps.CreditStalls != 0 {
		t.Fatalf("disabled credits still stalled: %+v", ps)
	}

	w = chunkExchange(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			PipelineChunkBytes: 256 << 10},
		Faults: &faults.Config{Seed: 23, ChunkCorruptRate: 0.2},
		Retry:  RetryPolicy{ChunkLimit: 24},
	}, 4<<20)
	if ps := pipeTotals(w); ps.WindowShrinks == 0 {
		t.Fatalf("heavy loss never shrank the credit window: %+v", ps)
	}
}

// TestDegradeLadderDemotesAndRecovers: consecutive lossy chunk streams
// demote the peer to the blocking whole-message path (step 3); after the
// cooldown the chunked path is retried.
func TestDegradeLadderDemotesAndRecovers(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			PipelineChunkBytes: 256 << 10},
		Faults: &faults.Config{Seed: 31, ChunkDropRate: 0.5},
		Retry:  RetryPolicy{ChunkLimit: 40},
	})
	const words = 1 << 20 // 4 MB = 16 chunks; rate-0.5 loss forces >= 3 retransmits
	vals := make([]float32, words)
	for i := range vals {
		vals[i] = float32(i % 1021)
	}
	_, err := w.Run(func(r *Rank) error {
		recvOne := func(tag int) error {
			buf := emptyDevBuf(r, words)
			return r.Recv(0, tag, buf)
		}
		if r.ID() == 1 {
			for tag := 0; tag < 4; tag++ {
				if err := recvOne(tag); err != nil {
					return err
				}
			}
			return nil
		}
		if r.ID() != 0 {
			return nil
		}
		// Two lossy chunk streams trip the ladder...
		for tag := 0; tag < 2; tag++ {
			if err := r.Send(1, tag, devBuf(r, vals)); err != nil {
				return err
			}
		}
		if !r.pipeDegraded(1) {
			t.Error("two lossy streams did not demote the peer")
		}
		// ...the next send bypasses chunking (whole-message path sees no
		// chunk faults, so it flows clean)...
		before := r.Engine.PipeSnapshot()
		if err := r.Send(1, 2, devBuf(r, vals)); err != nil {
			return err
		}
		after := r.Engine.PipeSnapshot()
		if after.BypassDegraded != before.BypassDegraded+1 {
			t.Errorf("degraded peer bypass not counted: %+v -> %+v", before, after)
		}
		if after.Chunks != before.Chunks {
			t.Error("demoted peer still received a chunk stream")
		}
		// ...and after the cooldown the chunked path is retried.
		r.Clock.Advance(pipeDegradeCooldown)
		if r.pipeDegraded(1) {
			t.Error("peer still degraded after the cooldown")
		}
		if err := r.Send(1, 3, devBuf(r, vals)); err != nil {
			return err
		}
		if got := r.Engine.PipeSnapshot(); got.Chunks == after.Chunks {
			t.Error("chunked path not retried after cooldown")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("degrade ladder run failed: %v", err)
	}
	if ps := pipeTotals(w); ps.DegradeEvents == 0 {
		t.Fatalf("no degrade event counted: %+v", ps)
	}
}

// TestChunkStreamFailsBounded: a chunk whose retry budget runs out fails
// the message at a bounded simulated instant — both endpoints observe the
// wrapped ErrDeliveryFailed from Wait, nobody hangs, and chunks already
// delivered are not re-sent afterward.
func TestChunkStreamFailsBounded(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			PipelineChunkBytes: 256 << 10},
		Faults: &faults.Config{Seed: 41, ChunkDropRate: 1},
		Retry:  RetryPolicy{ChunkLimit: 2},
	})
	const words = 1 << 20
	times, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			err := r.Send(1, 0, devBuf(r, make([]float32, words)))
			if !errors.Is(err, ErrDeliveryFailed) {
				t.Errorf("sender got %v, want ErrDeliveryFailed", err)
			}
		} else if r.ID() == 1 {
			err := r.Recv(0, 0, emptyDevBuf(r, words))
			if !errors.Is(err, ErrDeliveryFailed) {
				t.Errorf("receiver got %v, want ErrDeliveryFailed", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	// Bounded: 3 attempts of one chunk with capped backoff lands well
	// under a simulated second.
	if mt := MaxTime(times); mt > simtime.Time(simtime.Second) {
		t.Fatalf("failure surfaced at %v; the give-up instant must stay bounded", mt)
	}
}

// TestRaggedTailTakesChunkedPath: a message whose length is not a multiple
// of four still pipelines — the final chunk is short (and engine-bypassed
// when unaligned) — and arrives byte-identical.
func TestRaggedTailTakesChunkedPath(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			PipelineChunkBytes: 256 << 10},
	})
	const n = 2*(256<<10) + 999 // two full chunks + unaligned ragged tail
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i * 31)
	}
	rawDevBuf := func(r *Rank) *gpusim.Buffer {
		return &gpusim.Buffer{Data: make([]byte, n), Loc: gpusim.Device, Dev: r.Dev}
	}
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			buf := rawDevBuf(r)
			copy(buf.Data, src)
			return r.Send(1, 0, buf)
		}
		if r.ID() != 1 {
			return nil
		}
		buf := rawDevBuf(r)
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf.Data, src) {
			t.Error("ragged-tail message corrupted in transit")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := pipeTotals(w)
	if ps.Chunks != 3 {
		t.Fatalf("ragged message moved as %d chunks, want 3 (two full + short tail)", ps.Chunks)
	}
	if ps.BypassSmall != 0 {
		t.Fatalf("ragged message was bypassed as small: %+v", ps)
	}
}

// TestPipelineBypassesCounted: messages that skip the chunked path are
// counted by reason.
func TestPipelineBypassesCounted(t *testing.T) {
	w := mustWorld(t, Options{
		Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			PipelineChunkBytes: 1 << 20},
	})
	const words = 1 << 17 // 512 KB: rendezvous, under 2x chunk
	_, err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, devBuf(r, make([]float32, words)))
		}
		if r.ID() == 1 {
			return r.Recv(0, 0, emptyDevBuf(r, words))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := pipeTotals(w)
	if ps.BypassSmall != 1 || ps.Chunks != 0 {
		t.Fatalf("under-2x-chunk message: %+v, want exactly one small bypass and no chunks", ps)
	}
}

// chunkWorkerSoak is workerSoak with the chunk-granular adversary: a
// pipelined exchange, a chunked-relay bcast, and a ring allreduce under
// per-chunk drop/corrupt/duplicate/reorder, returning everything that must
// be identical across codec worker-pool sizes.
func chunkWorkerSoak(t *testing.T, workers int) (simtime.Time, faults.Stats, core.PipelineStats, []uint32) {
	t.Helper()
	const ranks = 4
	w := mustWorld(t, Options{
		Cluster: hw.Lassen(), Nodes: 2, PPN: 2,
		Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
			Threshold: 64 << 10, PoolBufBytes: 8 << 20, Workers: workers,
			PipelineChunkBytes: 128 << 10},
		Faults: &faults.Config{Seed: 57, ChunkDropRate: 0.05, ChunkCorruptRate: 0.05,
			ChunkDuplicateRate: 0.08, ChunkReorderRate: 0.08},
	})
	crcs := make([]uint32, ranks)
	times, err := w.Run(func(r *Rank) error {
		const words = 1 << 18        // 1 MB: 8 chunks
		peer := (r.ID() + 2) % ranks // cross-node pairing (PPN 2): the fabric adversary sees every chunk
		vals := make([]float32, words)
		for i := range vals {
			vals[i] = float32(r.ID()*7919) + float32(i%4093)*0.5
		}
		recvBuf := emptyDevBuf(r, words)
		rreq, err := r.Irecv(peer, 1, recvBuf)
		if err != nil {
			return err
		}
		sreq, err := r.Isend(peer, 1, devBuf(r, vals))
		if err != nil {
			return err
		}
		if err := r.Waitall(rreq, sreq); err != nil {
			return err
		}
		bcastBuf := emptyDevBuf(r, words)
		if r.ID() == 0 {
			core.FloatsToBytes(bcastBuf.Data[:0], vals)
		}
		if err := r.Bcast(0, bcastBuf); err != nil {
			return err
		}
		sumBuf := emptyDevBuf(r, words)
		if err := r.RingAllreduceSum(bcastBuf, sumBuf); err != nil {
			return err
		}
		h := crc32.NewIEEE()
		h.Write(recvBuf.Data)
		h.Write(bcastBuf.Data)
		h.Write(sumBuf.Data)
		crcs[r.ID()] = h.Sum32()
		return r.Barrier()
	})
	if err != nil {
		t.Fatalf("workers=%d: chunk soak failed: %v", workers, err)
	}
	return MaxTime(times), w.FaultStats(), pipeTotals(w), crcs
}

// TestChunkWorkerCountDeterminism: the chunk-reliability counters, fault
// counters, makespan, and delivered bytes are identical for codec pool
// sizes 1, 2, and 8 — per-chunk retries, credit stalls, and reassembly
// order all derive from the virtual clock, never from host scheduling.
func TestChunkWorkerCountDeterminism(t *testing.T) {
	refTime, refStats, refPipe, refCRCs := chunkWorkerSoak(t, 1)
	if refStats.Drops == 0 || refStats.Corruptions == 0 || refStats.Duplicates == 0 || refStats.Reorders == 0 {
		t.Fatalf("adversary incomplete: %+v", refStats)
	}
	if refPipe.Retransmits == 0 {
		t.Fatalf("no chunk retransmissions: %+v", refPipe)
	}
	for _, workers := range []int{2, 8} {
		gotTime, gotStats, gotPipe, gotCRCs := chunkWorkerSoak(t, workers)
		if gotTime != refTime {
			t.Errorf("workers=%d: makespan %v != %v", workers, gotTime, refTime)
		}
		if gotStats != refStats {
			t.Errorf("workers=%d: fault stats %+v != %+v", workers, gotStats, refStats)
		}
		if gotPipe != refPipe {
			t.Errorf("workers=%d: pipeline stats %+v != %+v", workers, gotPipe, refPipe)
		}
		for r, crc := range gotCRCs {
			if crc != refCRCs[r] {
				t.Errorf("workers=%d: rank %d delivered different bytes", workers, r)
			}
		}
	}
}

// TestChunkHighLossSoakGolden is the CI high-loss soak: ~1.5% per-chunk
// drop plus 1% corruption over repeated pipelined transfers. The run must
// deliver bit-exactly, and the pinned stats below are golden — any drift
// means the seeded fault schedule, the retry arithmetic, or the counter
// accounting changed and must be understood before re-pinning.
func TestChunkHighLossSoakGolden(t *testing.T) {
	run := func() (simtime.Time, faults.Stats, core.PipelineStats) {
		w := mustWorld(t, Options{
			Cluster: hw.Longhorn(), Nodes: 2, PPN: 1,
			Engine: core.Config{Mode: core.ModeOpt, Algorithm: core.AlgoMPC,
				PipelineChunkBytes: 256 << 10},
			Faults: &faults.Config{Seed: 77, ChunkDropRate: 0.015, ChunkCorruptRate: 0.01},
		})
		vals := make([]float32, 1<<20) // 4 MB = 16 chunks per message
		for i := range vals {
			vals[i] = float32(i%2039) * 1.5
		}
		times, err := w.Run(func(r *Rank) error {
			for m := 0; m < 8; m++ {
				if r.ID() == 0 {
					if err := r.Send(1, m, devBuf(r, vals)); err != nil {
						return err
					}
				} else {
					buf := emptyDevBuf(r, len(vals))
					if err := r.Recv(0, m, buf); err != nil {
						return err
					}
					got := core.BytesToFloats(buf.Data)
					for i := 0; i < len(vals); i += 997 {
						if got[i] != vals[i] {
							t.Errorf("msg %d word %d differs under high loss", m, i)
							break
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("high-loss soak failed: %v", err)
		}
		return MaxTime(times), w.FaultStats(), pipeTotals(w)
	}
	mt, st, ps := run()
	mt2, st2, ps2 := run()
	if mt != mt2 || st != st2 || ps != ps2 {
		t.Fatalf("high-loss soak not reproducible:\n%v %+v %+v\n%v %+v %+v", mt, st, ps, mt2, st2, ps2)
	}
	if st.Drops == 0 || st.Corruptions == 0 {
		t.Fatalf("adversary never showed up: %+v", st)
	}
	if ps.Retransmits == 0 || ps.Chunks != 128 {
		t.Fatalf("unexpected pipeline activity: %+v", ps)
	}
	// Selective retransmission bound at this loss rate.
	total := int64(8) * int64(4<<20)
	if ps.RetransmitBytes >= total*15/100 {
		t.Fatalf("retransmitted %d of %d bytes, want < 15%%", ps.RetransmitBytes, total)
	}
}
